#include "ring/hash.h"

namespace rfh {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

constexpr std::uint64_t finalize(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t hash64(std::string_view bytes) noexcept {
  std::uint64_t h = kFnvOffset;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return finalize(h);
}

std::uint64_t hash64(std::uint64_t value) noexcept {
  return finalize(value + 0x9e3779b97f4a7c15ULL);
}

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  return finalize(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

}  // namespace rfh
