#include "common/availability.h"

#include <cmath>

#include "common/assert.h"

namespace rfh {

double availability(std::uint32_t replicas, double failure_prob) noexcept {
  RFH_ASSERT(failure_prob >= 0.0 && failure_prob <= 1.0);
  if (replicas == 0) return 0.0;
  return 1.0 - std::pow(failure_prob, static_cast<double>(replicas));
}

double availability_eq14_literal(std::uint32_t replicas,
                                 double failure_prob) noexcept {
  RFH_ASSERT(failure_prob >= 0.0 && failure_prob <= 1.0);
  // 1 - sum_{j>=1} (-1)^{j+1} C(r,j) f^j = sum_{j>=0} C(r,j) (-f)^j
  //                                      = (1 - f)^r.
  return std::pow(1.0 - failure_prob, static_cast<double>(replicas));
}

std::uint32_t min_replicas(double target, double failure_prob,
                           std::uint32_t floor_copies) noexcept {
  RFH_ASSERT(target >= 0.0 && target < 1.0);
  RFH_ASSERT(failure_prob >= 0.0 && failure_prob < 1.0);
  std::uint32_t r = floor_copies > 0 ? floor_copies : 1;
  while (availability(r, failure_prob) < target) {
    ++r;
    RFH_ASSERT_MSG(r < 1u << 16, "min_replicas diverged");
  }
  return r;
}

double ec_availability(std::uint32_t fragments, std::uint32_t k,
                       double failure_prob) noexcept {
  RFH_ASSERT(failure_prob >= 0.0 && failure_prob <= 1.0);
  RFH_ASSERT(k >= 1);
  if (fragments < k) return 0.0;
  // P(Bin(n, p) >= k) with p = per-fragment survival. Sum the small head
  // P(Bin < k) and complement; C(n, i) grows by the multiplicative
  // recurrence so no factorials are materialized.
  const auto n = static_cast<double>(fragments);
  const double p = 1.0 - failure_prob;
  const double q = failure_prob;
  double coeff = 1.0;  // C(n, 0)
  double head = 0.0;   // sum_{i < k} C(n, i) p^i q^(n - i)
  for (std::uint32_t i = 0; i < k; ++i) {
    if (i > 0) {
      coeff *= (n - static_cast<double>(i - 1)) / static_cast<double>(i);
    }
    head += coeff * std::pow(p, static_cast<double>(i)) *
            std::pow(q, n - static_cast<double>(i));
  }
  if (head < 0.0) head = 0.0;
  if (head > 1.0) head = 1.0;
  return 1.0 - head;
}

std::uint32_t min_fragments(double target, double failure_prob,
                            std::uint32_t k,
                            std::uint32_t floor_fragments) noexcept {
  RFH_ASSERT(target >= 0.0 && target < 1.0);
  RFH_ASSERT(failure_prob >= 0.0 && failure_prob < 1.0);
  RFH_ASSERT(k >= 1);
  std::uint32_t n = floor_fragments > k ? floor_fragments : k;
  while (ec_availability(n, k, failure_prob) < target) {
    ++n;
    RFH_ASSERT_MSG(n < 1u << 16, "min_fragments diverged");
  }
  return n;
}

}  // namespace rfh
