// Telemetry registry + phase profiler: unit behaviour, export formats,
// and end-to-end reconciliation against the event-trace counters and the
// engine's own EpochReport over the same run.
#include <gtest/gtest.h>

#include <chrono>
#include <sstream>

#include "harness/runner.h"
#include "harness/scenario.h"
#include "obs/sinks.h"
#include "telemetry/profiler.h"
#include "telemetry/registry.h"

namespace rfh {
namespace {

Scenario small_scenario() {
  Scenario scenario = Scenario::paper_random_query();
  scenario.epochs = 60;
  return scenario;
}

// --- registry ----------------------------------------------------------

TEST(MetricRegistry, FindOrCreateReturnsStableHandles) {
  MetricRegistry reg;
  Counter& c = reg.counter("rfh_test_total");
  c.inc();
  c.inc(2.5);
  // Same (name, labels) -> same instrument.
  EXPECT_EQ(&reg.counter("rfh_test_total"), &c);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);

  // Handles survive registry growth (instruments are heap-allocated).
  for (int i = 0; i < 100; ++i) {
    reg.counter("rfh_filler_total", {{"i", std::to_string(i)}});
  }
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
  EXPECT_EQ(&reg.counter("rfh_test_total"), &c);
  EXPECT_EQ(reg.size(), 101u);
}

TEST(MetricRegistry, LabelsDistinguishSeries) {
  MetricRegistry reg;
  Counter& a = reg.counter("rfh_actions_total", {{"kind", "replicate"}});
  Counter& b = reg.counter("rfh_actions_total", {{"kind", "migrate"}});
  EXPECT_NE(&a, &b);
  a.inc(5.0);
  b.inc(7.0);
  const Counter* found =
      reg.find_counter("rfh_actions_total", {{"kind", "migrate"}});
  ASSERT_NE(found, nullptr);
  EXPECT_DOUBLE_EQ(found->value(), 7.0);
  EXPECT_EQ(reg.find_counter("rfh_actions_total", {{"kind", "suicide"}}),
            nullptr);
  EXPECT_EQ(reg.find_counter("rfh_absent_total"), nullptr);
}

TEST(MetricRegistry, GaugeAndHistogram) {
  MetricRegistry reg;
  Gauge& g = reg.gauge("rfh_replicas");
  g.set(42.0);
  g.set(17.0);  // last write wins
  EXPECT_DOUBLE_EQ(reg.find_gauge("rfh_replicas")->value(), 17.0);

  HistogramMetric& h = reg.histogram("rfh_latency_ms");
  h.observe(10.0);
  h.observe(20.0, 3.0);
  const HistogramMetric* found = reg.find_histogram("rfh_latency_ms");
  ASSERT_NE(found, nullptr);
  EXPECT_DOUBLE_EQ(found->histogram().total_weight(), 4.0);
  EXPECT_DOUBLE_EQ(found->histogram().mean(), (10.0 + 60.0) / 4.0);
}

TEST(MetricRegistryDeath, TypeMismatchAsserts) {
  MetricRegistry reg;
  reg.counter("rfh_mixed");
  EXPECT_DEATH(reg.gauge("rfh_mixed"), "");
}

TEST(MetricRegistry, PrometheusExposition) {
  MetricRegistry reg;
  reg.counter("rfh_queries_total", {}, "Queries offered").inc(123.0);
  reg.gauge("rfh_epoch").set(59.0);
  reg.counter("rfh_actions_total", {{"kind", "replicate"}}).inc(4.0);
  reg.histogram("rfh_phase_ms", {{"phase", "routing"}}).observe(2.5);

  std::ostringstream out;
  reg.write_prometheus(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# HELP rfh_queries_total Queries offered"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE rfh_queries_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("rfh_queries_total 123"), std::string::npos);
  EXPECT_NE(text.find("# TYPE rfh_epoch gauge"), std::string::npos);
  EXPECT_NE(text.find("rfh_epoch 59"), std::string::npos);
  EXPECT_NE(text.find("rfh_actions_total{kind=\"replicate\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE rfh_phase_ms summary"), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.5\""), std::string::npos);
  EXPECT_NE(text.find("rfh_phase_ms_count{phase=\"routing\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("rfh_phase_ms_sum{phase=\"routing\"} 2.5"),
            std::string::npos);
}

TEST(MetricRegistry, JsonExport) {
  MetricRegistry reg;
  reg.counter("rfh_queries_total", {}, "Queries offered").inc(123.0);
  reg.counter("rfh_actions_total", {{"kind", "migrate"}}).inc(9.0);
  reg.histogram("rfh_phase_ms").observe(1.0);

  std::ostringstream out;
  reg.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"schema\":\"rfh-metrics/1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rfh_queries_total\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":123"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"migrate\""), std::string::npos);
  EXPECT_NE(json.find("\"summary\":{\"count\":1"), std::string::npos);
  // Well-formed document boundaries.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
}

// --- profiler ----------------------------------------------------------

TEST(PhaseProfiler, DisabledTimerNeverTouchesAProfiler) {
  // The zero-cost path: a null profiler reduces ScopedTimer to a pointer
  // test at both ends.
  for (int i = 0; i < 1000; ++i) {
    const ScopedTimer timer(nullptr, Phase::kRouting);
  }
  SUCCEED();
}

TEST(PhaseProfiler, RecordAccumulatesPerPhaseTotals) {
  PhaseProfiler profiler;
  profiler.begin_epoch(0);
  const auto t0 = PhaseProfiler::Clock::now();
  profiler.record(Phase::kRouting, t0, t0 + std::chrono::milliseconds(5));
  profiler.record(Phase::kRouting, t0, t0 + std::chrono::milliseconds(3));
  profiler.record(Phase::kPolicyDecide, t0,
                  t0 + std::chrono::microseconds(250));
  profiler.finalize();

  const PhaseProfiler::PhaseTotals routing =
      profiler.totals(Phase::kRouting);
  EXPECT_EQ(routing.calls, 2u);
  EXPECT_NEAR(routing.total_ms, 8.0, 1e-6);
  EXPECT_NEAR(routing.max_ms, 5.0, 1e-6);
  const PhaseProfiler::PhaseTotals decide =
      profiler.totals(Phase::kPolicyDecide);
  EXPECT_EQ(decide.calls, 1u);
  EXPECT_NEAR(decide.total_ms, 0.25, 1e-6);
  EXPECT_EQ(profiler.totals(Phase::kWorkloadGen).calls, 0u);
  EXPECT_EQ(profiler.epochs(), 1u);
}

TEST(PhaseProfiler, FinalizeIsIdempotent) {
  PhaseProfiler profiler;
  profiler.begin_epoch(0);
  profiler.finalize();
  profiler.finalize();
  EXPECT_EQ(profiler.epochs(), 1u);
}

TEST(PhaseProfiler, ProfiledSimulationCoversTheEpochWall) {
  const Scenario scenario = small_scenario();
  auto sim = make_simulation(scenario, PolicyKind::kRfh);
  PhaseProfiler profiler;
  sim->set_profiler(&profiler);
  for (Epoch e = 0; e < scenario.epochs; ++e) sim->step();
  profiler.finalize();

  EXPECT_EQ(profiler.epochs(), scenario.epochs);
  for (const Phase phase :
       {Phase::kWorkloadGen, Phase::kRouting, Phase::kStatsUpdate,
        Phase::kPolicyDecide, Phase::kActionApply}) {
    EXPECT_EQ(profiler.totals(phase).calls, scenario.epochs)
        << phase_name(phase);
  }
  // The five engine phases blanket step(); anything else in the loop is
  // glue. 0.9 leaves slack for noisy CI machines (rfh_cli shows ~0.99).
  EXPECT_GT(profiler.coverage(), 0.9);
  EXPECT_GT(profiler.epoch_wall_ms(), 0.0);

  std::ostringstream table;
  profiler.write_table(table, "# ");
  EXPECT_NE(table.str().find("# workload_gen"), std::string::npos);
  EXPECT_NE(table.str().find("cover"), std::string::npos);
}

TEST(PhaseProfiler, EmitsPhaseSpansIntoTheTrace) {
  const Scenario scenario = small_scenario();
  auto sim = make_simulation(scenario, PolicyKind::kRfh);
  CounterSink counters;
  sim->events().add_sink(&counters);
  PhaseProfiler profiler;
  profiler.set_trace(&sim->events());
  sim->set_profiler(&profiler);
  for (Epoch e = 0; e < 10; ++e) sim->step();
  profiler.finalize();

  // Five engine phases ran in every one of the 10 closed windows.
  EXPECT_EQ(counters.count<PhaseSpan>(), 50u);
}

TEST(PhaseProfiler, RecordsHistogramsIntoAnAttachedRegistry) {
  const Scenario scenario = small_scenario();
  auto sim = make_simulation(scenario, PolicyKind::kRfh);
  MetricRegistry registry;
  PhaseProfiler profiler;
  profiler.attach_registry(registry);
  sim->set_profiler(&profiler);
  for (Epoch e = 0; e < 20; ++e) sim->step();
  profiler.finalize();

  const HistogramMetric* routing = registry.find_histogram(
      "rfh_phase_duration_ms", {{"phase", "routing"}});
  ASSERT_NE(routing, nullptr);
  EXPECT_DOUBLE_EQ(routing->histogram().total_weight(), 20.0);
  const HistogramMetric* epoch =
      registry.find_histogram("rfh_epoch_duration_ms");
  ASSERT_NE(epoch, nullptr);
  EXPECT_DOUBLE_EQ(epoch->histogram().total_weight(), 20.0);
}

// --- reconciliation ----------------------------------------------------

TEST(TelemetryIntegration, RegistryReconcilesWithTraceAndReports) {
  // One run, three observers: the trace CounterSink, the EpochReport
  // stream, and the metric registry must tell the same story. A starved
  // replication budget plus a failure exercises drops and losses.
  Scenario scenario = small_scenario();
  scenario.world.replication_bandwidth = 1;
  auto sim = make_simulation(scenario, PolicyKind::kRfh);
  CounterSink counters;
  sim->events().add_sink(&counters);
  MetricRegistry registry;
  sim->set_telemetry(&registry);

  double queries = 0.0;
  std::uint64_t replications = 0;
  std::uint64_t migrations = 0;
  std::uint64_t suicides = 0;
  std::array<std::uint64_t, kDropReasonCount> dropped{};
  std::uint32_t last_replicas = 0;
  for (Epoch e = 0; e < scenario.epochs; ++e) {
    if (e == 30) sim->fail_random_servers(20);
    const EpochReport report = sim->step();
    queries += report.total_queries;
    replications += report.replications;
    migrations += report.migrations;
    suicides += report.suicides;
    for (std::size_t r = 0; r < kDropReasonCount; ++r) {
      dropped[r] += report.dropped_by_reason[r];
    }
    last_replicas = report.total_replicas;
  }

  const auto counter_value = [&](const char* name, MetricLabels labels) {
    const Counter* c = registry.find_counter(name, labels);
    EXPECT_NE(c, nullptr) << name;
    return c != nullptr ? c->value() : -1.0;
  };

  // Registry vs. EpochReport sums.
  EXPECT_DOUBLE_EQ(counter_value("rfh_queries_total", {}), queries);
  EXPECT_DOUBLE_EQ(counter_value("rfh_epochs_total", {}),
                   static_cast<double>(scenario.epochs));
  // Registry vs. the PR-1 CounterSink over the same event stream.
  EXPECT_DOUBLE_EQ(
      counter_value("rfh_actions_applied_total", {{"kind", "replicate"}}),
      static_cast<double>(counters.count<ReplicaAdded>()));
  EXPECT_DOUBLE_EQ(
      counter_value("rfh_actions_applied_total", {{"kind", "migrate"}}),
      static_cast<double>(counters.count<MigrationExecuted>()));
  EXPECT_DOUBLE_EQ(
      counter_value("rfh_actions_applied_total", {{"kind", "suicide"}}),
      static_cast<double>(counters.count<Suicide>()));
  EXPECT_EQ(counters.count<ReplicaAdded>(), replications);
  EXPECT_EQ(counters.count<MigrationExecuted>(), migrations);
  EXPECT_EQ(counters.count<Suicide>(), suicides);
  // Per-reason drops agree three ways.
  double dropped_total = 0.0;
  for (std::size_t r = 0; r < kDropReasonCount; ++r) {
    const auto reason = static_cast<DropReason>(r);
    const double v = counter_value("rfh_actions_dropped_total",
                                   {{"reason", drop_reason_name(reason)}});
    EXPECT_DOUBLE_EQ(v, static_cast<double>(dropped[r]))
        << drop_reason_name(reason);
    EXPECT_EQ(counters.dropped(reason), dropped[r])
        << drop_reason_name(reason);
    dropped_total += v;
  }
  EXPECT_GT(dropped_total, 0.0);  // the starved budget must actually bite
  // Gauges mirror the last report / live state.
  EXPECT_DOUBLE_EQ(registry.find_gauge("rfh_replicas")->value(),
                   static_cast<double>(last_replicas));
  EXPECT_DOUBLE_EQ(registry.find_gauge("rfh_epoch")->value(),
                   static_cast<double>(scenario.epochs - 1));
  EXPECT_DOUBLE_EQ(
      registry.find_gauge("rfh_live_servers")->value(),
      static_cast<double>(sim->cluster().live_server_count()));
  // Data losses counted where the engine counts them.
  EXPECT_DOUBLE_EQ(counter_value("rfh_data_losses_total", {}),
                   static_cast<double>(sim->data_losses()));
  // Router and policy exported their own counters into the same registry.
  EXPECT_GT(counter_value("rfh_router_routes_total", {}), 0.0);
  EXPECT_DOUBLE_EQ(counter_value("rfh_policy_decide_calls_total", {}),
                   static_cast<double>(scenario.epochs));
}

TEST(TelemetryIntegration, RunPolicyWiresRegistryAndProfiler) {
  Scenario scenario = small_scenario();
  scenario.epochs = 30;
  MetricRegistry registry;
  PhaseProfiler profiler;
  const PolicyRun run =
      run_policy(scenario, PolicyKind::kRfh, {}, RfhPolicy::Options{},
                 nullptr, &registry, &profiler);
  EXPECT_EQ(run.series.size(), 30u);
  EXPECT_EQ(profiler.epochs(), 30u);
  // The runner times its own metric collection into the profile.
  EXPECT_EQ(profiler.totals(Phase::kMetricsCollect).calls, 30u);
  EXPECT_GT(profiler.coverage(), 0.9);
  // The profiler's histograms landed in the run's registry.
  EXPECT_NE(registry.find_histogram("rfh_epoch_duration_ms"), nullptr);
  EXPECT_DOUBLE_EQ(
      registry.find_counter("rfh_epochs_total", {})->value(), 30.0);
}

// --- determinism regression under a chaos plan -------------------------

namespace {

Scenario chaos_scenario() {
  Scenario scenario = Scenario::paper_random_query();
  scenario.epochs = 60;
  FaultEvent crash;
  crash.kind = FaultKind::kCrash;
  crash.at = 10;
  crash.count = 4;
  scenario.fault_plan.add(crash);
  FaultEvent churn;
  churn.kind = FaultKind::kChurn;
  churn.at = 20;
  churn.until = 50;
  churn.period = 5;
  churn.kill = 1;
  churn.recover = 1;
  scenario.fault_plan.add(churn);
  FaultEvent crowd;
  crowd.kind = FaultKind::kFlashCrowd;
  crowd.at = 30;
  crowd.duration = 10;
  crowd.factor = 2.5;
  scenario.fault_plan.add(crowd);
  return scenario;
}

void expect_identical_series(const PolicyRun& a, const PolicyRun& b) {
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t i = 0; i < a.series.size(); ++i) {
    EXPECT_EQ(a.series[i].total_replicas, b.series[i].total_replicas) << i;
    EXPECT_EQ(a.series[i].migrations_total, b.series[i].migrations_total)
        << i;
    EXPECT_DOUBLE_EQ(a.series[i].utilization, b.series[i].utilization) << i;
    EXPECT_DOUBLE_EQ(a.series[i].latency_mean_ms, b.series[i].latency_mean_ms)
        << i;
    EXPECT_DOUBLE_EQ(a.series[i].replication_cost_total,
                     b.series[i].replication_cost_total)
        << i;
  }
  EXPECT_EQ(a.killed, b.killed);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.faults_by_kind, b.faults_by_kind);
}

}  // namespace

TEST(ChaosDeterminism, ObserversNeverPerturbAPlannedRun) {
  const Scenario scenario = chaos_scenario();
  // Bare run: no observers at all.
  const PolicyRun bare = run_policy(scenario, PolicyKind::kRfh);

  // Fully instrumented run: trace sink + registry + profiler + checker.
  std::ostringstream trace;
  JsonlSink sink(trace);
  MetricRegistry registry;
  PhaseProfiler profiler;
  InvariantChecker checker(InvariantChecker::Mode::kRecord);
  const PolicyRun instrumented =
      run_policy(scenario, PolicyKind::kRfh, {}, RfhPolicy::Options{}, &sink,
                 &registry, &profiler, &checker);

  expect_identical_series(bare, instrumented);
  EXPECT_TRUE(checker.violations().empty()) << checker.summary();
  // The chaos injections really showed up in trace and telemetry.
  EXPECT_NE(trace.str().find("FaultInjected"), std::string::npos);
  EXPECT_GT(instrumented.faults_injected, 0u);
  const Counter* injected = registry.find_counter(
      "rfh_faults_injected_total", {{"kind", "churn"}});
  ASSERT_NE(injected, nullptr);
  EXPECT_GT(injected->value(), 0.0);
}

TEST(ChaosDeterminism, ConsecutiveRunsAreBitIdentical) {
  const Scenario scenario = chaos_scenario();
  const PolicyRun a = run_policy(scenario, PolicyKind::kRfh);
  const PolicyRun b = run_policy(scenario, PolicyKind::kRfh);
  expect_identical_series(a, b);
}

}  // namespace
}  // namespace rfh
