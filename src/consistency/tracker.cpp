#include "consistency/tracker.h"

#include <algorithm>

#include "common/assert.h"

namespace rfh {

ConsistencyTracker::ConsistencyTracker(std::uint32_t partitions,
                                       std::uint32_t servers,
                                       std::uint32_t history)
    : partitions_(partitions),
      servers_(servers),
      history_(history),
      version_(static_cast<std::size_t>(partitions) * servers, 0.0),
      primary_history_(static_cast<std::size_t>(partitions) * history, 0.0),
      primary_now_(partitions, 0.0) {
  RFH_ASSERT(history_ > 1);
}

std::size_t ConsistencyTracker::index(PartitionId p, ServerId s) const {
  RFH_ASSERT(p.value() < partitions_ && s.value() < servers_);
  return static_cast<std::size_t>(p.value()) * servers_ + s.value();
}

double ConsistencyTracker::historic_version(PartitionId p,
                                            std::uint32_t age) const {
  RFH_ASSERT(p.value() < partitions_);
  const std::uint32_t clamped =
      std::min(age, std::min(epoch_, history_ - 1));
  const std::uint32_t slot = (epoch_ - clamped) % history_;
  return primary_history_[static_cast<std::size_t>(p.value()) * history_ +
                          slot];
}

void ConsistencyTracker::advance(const ClusterState& cluster,
                                 const Topology& topology,
                                 const ShortestPaths& paths,
                                 std::span<const double> writes) {
  RFH_ASSERT(writes.size() == partitions_);
  ++epoch_;

  for (std::uint32_t pv = 0; pv < partitions_; ++pv) {
    const PartitionId p{pv};
    const ServerId primary = cluster.primary_of(p);

    // Accept this epoch's writes at the primary.
    if (primary.valid()) {
      primary_now_[pv] += writes[pv];
      version_[index(p, primary)] = primary_now_[pv];
    }
    primary_history_[static_cast<std::size_t>(pv) * history_ +
                     epoch_ % history_] = primary_now_[pv];

    if (!primary.valid()) continue;
    const DatacenterId primary_dc = topology.server(primary).datacenter;

    // Replicas catch up to the primary version as of `delay` epochs ago.
    for (const Replica& replica : cluster.replicas_of(p)) {
      if (replica.primary) continue;
      const DatacenterId dc = topology.server(replica.server).datacenter;
      const auto hops = paths.hop_count(primary_dc, dc);
      const std::uint32_t delay = std::max(1u, hops);
      double& v = version_[index(p, replica.server)];
      // Versions only move forward (a straggler copy never regresses).
      v = std::max(v, historic_version(p, delay));
    }
  }
}

double ConsistencyTracker::on_promote(PartitionId p, ServerId new_primary) {
  RFH_ASSERT(p.value() < partitions_);
  const double survivor_version = version_[index(p, new_primary)];
  const double lost = std::max(0.0, primary_now_[p.value()] -
                                        survivor_version);
  lost_writes_ += lost;
  primary_now_[p.value()] = survivor_version;
  // The surviving version becomes the truth for the whole history window,
  // so replicas never "catch up" to discarded writes.
  for (std::uint32_t h = 0; h < history_; ++h) {
    double& slot =
        primary_history_[static_cast<std::size_t>(p.value()) * history_ + h];
    slot = std::min(slot, survivor_version);
  }
  return lost;
}

void ConsistencyTracker::on_server_failed(ServerId s) {
  RFH_ASSERT(s.value() < servers_);
  for (std::uint32_t pv = 0; pv < partitions_; ++pv) {
    version_[index(PartitionId{pv}, s)] = 0.0;
  }
}

double ConsistencyTracker::primary_version(PartitionId p) const {
  RFH_ASSERT(p.value() < partitions_);
  return primary_now_[p.value()];
}

double ConsistencyTracker::replica_version(PartitionId p, ServerId s) const {
  return version_[index(p, s)];
}

double ConsistencyTracker::lag(PartitionId p, ServerId s) const {
  return std::max(0.0, primary_now_[p.value()] - version_[index(p, s)]);
}

double ConsistencyTracker::mean_replica_lag(
    const ClusterState& cluster) const {
  double sum = 0.0;
  std::size_t count = 0;
  for (std::uint32_t pv = 0; pv < partitions_; ++pv) {
    const PartitionId p{pv};
    for (const Replica& replica : cluster.replicas_of(p)) {
      if (replica.primary) continue;
      sum += lag(p, replica.server);
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double ConsistencyTracker::stale_read_fraction(const EpochTraffic& traffic,
                                               const ClusterState& cluster,
                                               double tolerance) const {
  double stale = 0.0;
  double served = 0.0;
  for (std::uint32_t pv = 0; pv < partitions_; ++pv) {
    const PartitionId p{pv};
    for (const Replica& replica : cluster.replicas_of(p)) {
      const double q = traffic.served(p, replica.server);
      served += q;
      if (!replica.primary && lag(p, replica.server) > tolerance) {
        stale += q;
      }
    }
  }
  return served == 0.0 ? 0.0 : stale / served;
}

}  // namespace rfh
