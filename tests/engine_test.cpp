#include "sim/engine.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/rfh_policy.h"
#include "test_util.h"

namespace rfh {
namespace {

TEST(Engine, SeedsOnePrimaryPerPartition) {
  SimConfig config;
  config.partitions = 16;
  auto sim = test::make_fixed_sim({}, std::make_unique<test::NullPolicy>(),
                                  config);
  EXPECT_EQ(sim->cluster().total_replicas(), 16u);
  for (std::uint32_t p = 0; p < 16; ++p) {
    const ServerId primary = sim->cluster().primary_of(PartitionId{p});
    ASSERT_TRUE(primary.valid());
    EXPECT_EQ(sim->cluster().replica_count(PartitionId{p}), 1u);
    // Ring ownership drives the initial placement.
    EXPECT_EQ(primary, sim->cluster().ring().partition_owner(PartitionId{p}));
  }
  sim->cluster().check_invariants();
}

TEST(Engine, StepAdvancesEpochAndReports) {
  auto sim = test::make_fixed_sim({QueryFlow{PartitionId{0}, DatacenterId{1}, 3.0}},
                                  std::make_unique<test::NullPolicy>());
  EXPECT_EQ(sim->epoch(), 0u);
  const EpochReport r0 = sim->step();
  EXPECT_EQ(r0.epoch, 0u);
  EXPECT_EQ(sim->epoch(), 1u);
  EXPECT_DOUBLE_EQ(r0.total_queries, 3.0);
  EXPECT_EQ(r0.replications, 0u);
  EXPECT_EQ(r0.total_replicas, sim->cluster().total_replicas());
  const EpochReport r1 = sim->step();
  EXPECT_EQ(r1.epoch, 1u);
}

TEST(Engine, RunStepsManyEpochs) {
  auto sim = test::make_fixed_sim({}, std::make_unique<test::NullPolicy>());
  sim->run(25);
  EXPECT_EQ(sim->epoch(), 25u);
}

TEST(Engine, AppliesValidReplicationWithCost) {
  const PartitionId p{0};
  auto probe = test::make_fixed_sim({}, std::make_unique<test::NullPolicy>());
  const ServerId holder = probe->cluster().primary_of(p);
  const DatacenterId holder_dc = probe->topology().server(holder).datacenter;
  // Pick a target in another datacenter.
  ServerId target;
  for (const Datacenter& dc : probe->topology().datacenters()) {
    if (dc.id != holder_dc) {
      target = dc.servers.front();
      break;
    }
  }

  Actions script;
  script.replications.push_back(ReplicateAction{p, target, {}});
  auto sim = test::make_fixed_sim(
      {}, std::make_unique<test::ScriptedPolicy>(std::vector<Actions>{script}));
  const EpochReport report = sim->step();
  EXPECT_EQ(report.replications, 1u);
  EXPECT_EQ(report.dropped_actions, 0u);
  EXPECT_GT(report.replication_cost, 0.0);
  EXPECT_TRUE(sim->cluster().has_replica(p, target));
  EXPECT_DOUBLE_EQ(sim->cumulative_replication_cost(),
                   report.replication_cost);
  EXPECT_EQ(sim->cumulative_replications(), 1u);
}

TEST(Engine, DropsInvalidActionsInsteadOfCrashing) {
  const PartitionId p{0};
  auto probe = test::make_fixed_sim({}, std::make_unique<test::NullPolicy>());
  const ServerId holder = probe->cluster().primary_of(p);

  Actions bad;
  bad.replications.push_back(ReplicateAction{p, holder, {}});  // already hosts
  bad.replications.push_back(ReplicateAction{p, ServerId::invalid(), {}});
  bad.migrations.push_back(
      MigrateAction{p, ServerId{7}, ServerId{8}, {}});  // from doesn't host
  bad.migrations.push_back(
      MigrateAction{p, holder, ServerId{8}, {}});  // can't migrate primary
  bad.suicides.push_back(SuicideAction{p, holder, {}});  // can't kill primary
  bad.suicides.push_back(SuicideAction{p, ServerId{9}, {}});  // doesn't host

  auto sim = test::make_fixed_sim(
      {}, std::make_unique<test::ScriptedPolicy>(std::vector<Actions>{bad}));
  const EpochReport report = sim->step();
  EXPECT_EQ(report.dropped_actions, 6u);
  EXPECT_EQ(report.replications, 0u);
  EXPECT_EQ(report.migrations, 0u);
  EXPECT_EQ(report.suicides, 0u);
  sim->cluster().check_invariants();
}

TEST(Engine, MigrationMovesTheCopy) {
  const PartitionId p{0};
  auto probe = test::make_fixed_sim({}, std::make_unique<test::NullPolicy>());
  const ServerId holder = probe->cluster().primary_of(p);
  ServerId a;
  ServerId b;
  for (const Server& s : probe->topology().servers()) {
    if (s.id == holder) continue;
    if (!a.valid()) {
      a = s.id;
    } else if (s.datacenter != probe->topology().server(a).datacenter) {
      b = s.id;
      break;
    }
  }

  Actions e0;
  e0.replications.push_back(ReplicateAction{p, a, {}});
  Actions e1;
  e1.migrations.push_back(MigrateAction{p, a, b, {}});
  auto sim = test::make_fixed_sim(
      {}, std::make_unique<test::ScriptedPolicy>(std::vector<Actions>{e0, e1}));
  sim->step();
  const EpochReport report = sim->step();
  EXPECT_EQ(report.migrations, 1u);
  EXPECT_GT(report.migration_cost, 0.0);
  EXPECT_FALSE(sim->cluster().has_replica(p, a));
  EXPECT_TRUE(sim->cluster().has_replica(p, b));
  EXPECT_EQ(sim->cumulative_migrations(), 1u);
  sim->cluster().check_invariants();
}

TEST(Engine, SuicideRemovesTheCopy) {
  const PartitionId p{0};
  auto probe = test::make_fixed_sim({}, std::make_unique<test::NullPolicy>());
  const ServerId holder = probe->cluster().primary_of(p);
  const ServerId extra{holder.value() == 0 ? 1u : 0u};

  Actions e0;
  e0.replications.push_back(ReplicateAction{p, extra, {}});
  Actions e1;
  e1.suicides.push_back(SuicideAction{p, extra, {}});
  auto sim = test::make_fixed_sim(
      {}, std::make_unique<test::ScriptedPolicy>(std::vector<Actions>{e0, e1}));
  sim->step();
  EXPECT_TRUE(sim->cluster().has_replica(p, extra));
  const EpochReport report = sim->step();
  EXPECT_EQ(report.suicides, 1u);
  EXPECT_FALSE(sim->cluster().has_replica(p, extra));
}

TEST(Engine, ReplicationBandwidthBudgetIsEnforced) {
  // Partition size of half the replication bandwidth: only 2 copies can
  // leave one source per epoch; the third replication is dropped.
  SimConfig config;
  config.partitions = 1;
  WorldOptions options = test::uniform_world_options();
  config.partition_size = options.replication_bandwidth / 2;

  auto probe = test::make_fixed_sim({}, std::make_unique<test::NullPolicy>(),
                                    config, options);
  const PartitionId p{0};
  const ServerId holder = probe->cluster().primary_of(p);
  std::vector<ServerId> targets;
  for (const Server& s : probe->topology().servers()) {
    if (s.id != holder && targets.size() < 3) targets.push_back(s.id);
  }

  Actions script;
  for (const ServerId t : targets) {
    script.replications.push_back(ReplicateAction{p, t, {}});
  }
  auto sim = test::make_fixed_sim(
      {}, std::make_unique<test::ScriptedPolicy>(std::vector<Actions>{script}),
      config, options);
  const EpochReport report = sim->step();
  EXPECT_EQ(report.replications, 2u);
  EXPECT_EQ(report.dropped_actions, 1u);
}

TEST(Engine, TransferCostFollowsEq1) {
  auto sim = test::make_fixed_sim({}, std::make_unique<test::NullPolicy>());
  const DatacenterId a{0};
  const DatacenterId b{7};
  const double d = sim->topology().distance_km(a, b);
  const Bytes s = kib(512);
  const BytesPerEpoch bw = mib(300);
  const double expected = d * sim->config().failure_rate *
                          (static_cast<double>(s) / static_cast<double>(bw));
  EXPECT_NEAR(sim->transfer_cost(a, b, s, bw), expected, 1e-12);
  // Intra-datacenter transfers cost as if 1 km, never zero.
  EXPECT_GT(sim->transfer_cost(a, a, s, bw), 0.0);
  // Migration bandwidth (smaller) makes the same transfer dearer.
  EXPECT_GT(sim->transfer_cost(a, b, s, mib(100)),
            sim->transfer_cost(a, b, s, mib(300)));
}

TEST(Engine, FailoverPromotesSurvivingReplica) {
  const PartitionId p{0};
  auto probe = test::make_fixed_sim({}, std::make_unique<test::NullPolicy>());
  const ServerId holder = probe->cluster().primary_of(p);
  const ServerId backup{holder.value() == 0 ? 1u : 0u};

  Actions e0;
  e0.replications.push_back(ReplicateAction{p, backup, {}});
  auto sim = test::make_fixed_sim(
      {QueryFlow{p, DatacenterId{4}, 3.0}},
      std::make_unique<test::ScriptedPolicy>(std::vector<Actions>{e0}));
  sim->step();
  sim->step();

  const ServerId victims[] = {holder};
  sim->fail_servers(victims);
  EXPECT_EQ(sim->cluster().primary_of(p), backup);
  EXPECT_EQ(sim->data_losses(), 0u);
  sim->cluster().check_invariants();
  sim->step();  // keeps running after failover
}

TEST(Engine, TotalLossReseedsAndCounts) {
  const PartitionId p{0};
  auto sim = test::make_fixed_sim({}, std::make_unique<test::NullPolicy>());
  const ServerId holder = sim->cluster().primary_of(p);
  const ServerId victims[] = {holder};
  sim->fail_servers(victims);
  EXPECT_GE(sim->data_losses(), 1u);
  const ServerId reseeded = sim->cluster().primary_of(p);
  EXPECT_TRUE(reseeded.valid());
  EXPECT_TRUE(sim->cluster().alive(reseeded));
  sim->cluster().check_invariants();
}

TEST(Engine, FailureClearsDeadServerStatistics) {
  // Regression: the engine must forget a dead server's smoothed series.
  // Without TrafficStats::clear_server on failure, the victim's
  // exponentially decaying tr-bar entries keep inflating Eq. 17's
  // numerator while mean_node_traffic() divides by the *live* server
  // count, skewing the Eq. 16 migration-benefit bar for many epochs.
  const PartitionId p{0};
  auto sim = test::make_fixed_sim({QueryFlow{p, DatacenterId{4}, 50.0}},
                                  std::make_unique<test::NullPolicy>());
  sim->step();
  sim->step();
  const ServerId holder = sim->cluster().primary_of(p);
  ASSERT_GT(sim->stats().node_traffic(p, holder), 0.0);
  ASSERT_GT(sim->stats().server_arrival(holder), 0.0);

  const ServerId victims[] = {holder};
  sim->fail_servers(victims);
  EXPECT_DOUBLE_EQ(sim->stats().node_traffic(p, holder), 0.0);
  EXPECT_DOUBLE_EQ(sim->stats().server_arrival(holder), 0.0);

  // Eq. 17's mean now reconciles exactly with a manual sum over the
  // live servers — no stale dead-server traffic left in the numerator.
  const std::uint32_t live = sim->cluster().live_server_count();
  double live_sum = 0.0;
  for (const Server& s : sim->topology().servers()) {
    if (sim->cluster().alive(s.id)) {
      live_sum += sim->stats().node_traffic(p, s.id);
    }
  }
  EXPECT_DOUBLE_EQ(sim->stats().mean_node_traffic(p, live),
                   live_sum / static_cast<double>(live));
}

TEST(Engine, FailRandomServersKillsExactlyN) {
  auto sim = test::make_fixed_sim({}, std::make_unique<test::NullPolicy>());
  const auto victims = sim->fail_random_servers(30);
  EXPECT_EQ(victims.size(), 30u);
  EXPECT_EQ(sim->cluster().live_server_count(), 70u);
  for (const ServerId v : victims) {
    EXPECT_FALSE(sim->cluster().alive(v));
  }
  sim->recover_servers(victims);
  EXPECT_EQ(sim->cluster().live_server_count(), 100u);
  sim->cluster().check_invariants();
}

TEST(Engine, RecoverIsIdempotent) {
  auto sim = test::make_fixed_sim({}, std::make_unique<test::NullPolicy>());
  const auto victims = sim->fail_random_servers(5);
  sim->recover_servers(victims);
  sim->recover_servers(victims);  // second call is a no-op
  EXPECT_EQ(sim->cluster().live_server_count(), 100u);
}

TEST(Engine, DeterministicAcrossIdenticalRuns) {
  SimConfig config;
  config.partitions = 8;
  WorkloadParams params;
  params.partitions = 8;
  params.datacenters = 10;
  auto make = [&]() {
    return std::make_unique<Simulation>(
        build_paper_world(), config, std::make_unique<UniformWorkload>(params),
        std::make_unique<test::NullPolicy>());
  };
  auto a = make();
  auto b = make();
  for (int e = 0; e < 10; ++e) {
    const EpochReport ra = a->step();
    const EpochReport rb = b->step();
    EXPECT_DOUBLE_EQ(ra.total_queries, rb.total_queries);
    EXPECT_DOUBLE_EQ(ra.mean_path_length, rb.mean_path_length);
  }
}

TEST(Engine, LargeClusterThreadedEpochsMatchSerialAndStayInvariant) {
  // Large-N smoke for the sharded epoch phases: a 4,000-server world
  // stepped with an 8-worker pool must agree with the serial engine on
  // every per-epoch aggregate and keep the cluster invariants. This is
  // also the engine-side workload the TSan CI job races: propagate,
  // stats_update and policy_decide all fan out across real threads here.
  WorldOptions world_options;
  world_options.rooms_per_datacenter = 4;
  world_options.racks_per_room = 10;
  world_options.servers_per_rack = 10;
  SimConfig config;
  config.partitions = 128;
  WorkloadParams params;
  params.partitions = config.partitions;
  params.datacenters = 10;
  params.mean_queries_per_epoch = 600.0;
  auto make = [&]() {
    return std::make_unique<Simulation>(
        build_paper_world(world_options), config,
        std::make_unique<UniformWorkload>(params),
        std::make_unique<RfhPolicy>());
  };
  auto serial = make();
  auto threaded = make();
  threaded->set_jobs(8);
  EXPECT_EQ(threaded->jobs(), 8u);
  ASSERT_NE(threaded->pool(), nullptr);
  EXPECT_EQ(serial->pool(), nullptr);
  for (int e = 0; e < 8; ++e) {
    const EpochReport rs = serial->step();
    const EpochReport rt = threaded->step();
    EXPECT_DOUBLE_EQ(rt.total_queries, rs.total_queries) << "epoch " << e;
    EXPECT_DOUBLE_EQ(rt.mean_path_length, rs.mean_path_length)
        << "epoch " << e;
    EXPECT_DOUBLE_EQ(rt.unserved_queries, rs.unserved_queries)
        << "epoch " << e;
    EXPECT_EQ(rt.replications, rs.replications) << "epoch " << e;
    EXPECT_EQ(rt.migrations, rs.migrations) << "epoch " << e;
    EXPECT_EQ(rt.suicides, rs.suicides) << "epoch " << e;
    EXPECT_EQ(rt.total_replicas, rs.total_replicas) << "epoch " << e;
  }
  threaded->cluster().check_invariants();
}

}  // namespace
}  // namespace rfh
