// Physical-server selection inside a datacenter (paper Eqs. 18-19).
//
// "Among the physical nodes in the same datacenter, RFH chooses a node
// with the lowest blocking probability." Each server's offered load is
// its smoothed arrival rate divided by its per-replica service rate; the
// M/G/c blocking probability is Erlang-B. Servers over the phi storage
// limit or their virtual-node cap are excluded (Eq. 19: "if the current
// storage rate of a server is the upper limit, any replication or
// migration request will not be allowed").
#pragma once

#include "common/ids.h"
#include "sim/policy.h"

namespace rfh {

/// Blocking probability of server `s` given the current smoothed arrival
/// rate (Eq. 18).
double blocking_probability(const PolicyContext& ctx, ServerId s);

/// The feasible server in `dc` with the lowest blocking probability for a
/// new copy of `p` (ties broken by lower id); invalid if none is feasible.
ServerId select_server_erlang_b(const PolicyContext& ctx, DatacenterId dc,
                                PartitionId p);

/// The first feasible server in `dc` in creation order (used by
/// comparators that do not balance load); invalid if none.
ServerId select_server_first_fit(const PolicyContext& ctx, DatacenterId dc,
                                 PartitionId p);

/// A uniformly random feasible server in `dc` (the request-oriented
/// comparator's "random choosing method"); invalid if none.
ServerId select_server_random(const PolicyContext& ctx, DatacenterId dc,
                              PartitionId p, Rng& rng);

}  // namespace rfh
