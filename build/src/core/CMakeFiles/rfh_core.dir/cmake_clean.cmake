file(REMOVE_RECURSE
  "CMakeFiles/rfh_core.dir/rfh_policy.cpp.o"
  "CMakeFiles/rfh_core.dir/rfh_policy.cpp.o.d"
  "CMakeFiles/rfh_core.dir/selection.cpp.o"
  "CMakeFiles/rfh_core.dir/selection.cpp.o.d"
  "librfh_core.a"
  "librfh_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfh_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
