// The chaos engine: applies a FaultPlan to a running Simulation.
//
// A ChaosController is invoked once per epoch, *before* the engine steps
// that epoch, and translates the plan's due events into calls on the
// existing failure-injection primitives (fail_servers, fail_datacenter,
// fail_link / restore_link, recover_servers, set_traffic_multiplier).
// Every injected fault is published as a FaultInjected obs event and
// counted in rfh_faults_injected_total{kind=...} when a registry is
// attached, so traces, telemetry and the controller's own tallies always
// agree.
//
// Determinism: random victim selection draws from a dedicated generator
// forked from the scenario seed with its own tag (like the engine's
// rng_failures_ stream), so a chaos plan never perturbs workload, policy
// or ad-hoc failure randomness — the same seed and plan reproduce the
// same injection sequence bit-for-bit, with or without observers.
//
// Safety: the controller never violates engine preconditions. Kills are
// capped at live_count - 1 (the engine refuses to kill the last server),
// and link events probe link_failure_would_partition() first, skipping a
// down transition that would disconnect the datacenter graph rather than
// tripping the engine's assertion.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/rng.h"
#include "fault/plan.h"
#include "sim/engine.h"

namespace rfh {

class ChaosController {
 public:
  /// The controller copies the plan; `seed` is the scenario seed (the
  /// chaos stream is forked from it with a dedicated tag).
  ChaosController(const FaultPlan& plan, std::uint64_t seed);

  /// What before_epoch() did, for the caller's bookkeeping.
  struct Applied {
    std::vector<ServerId> killed;
    std::vector<ServerId> recovered;
    std::uint32_t faults = 0;  // FaultInjected events emitted
  };

  /// Invoked after every batch of kills, before any further injection —
  /// callers that consume Simulation::last_promotions() (the consistency
  /// tracker) hook in here, since the next kill batch resets it.
  using KillCallback = std::function<void(std::span<const ServerId>)>;

  /// Apply every event due at `epoch`. Call once per epoch, immediately
  /// before Simulation::step() for that epoch.
  Applied before_epoch(Simulation& sim, Epoch epoch,
                       const KillCallback& on_kill = {});

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  /// True once no event (including scheduled recoveries / restores) can
  /// act at or after `epoch`.
  [[nodiscard]] bool exhausted(Epoch epoch) const noexcept;

  /// Faults injected so far, total and per kind (indexed by FaultKind).
  [[nodiscard]] std::uint64_t injected_total() const noexcept;
  [[nodiscard]] const std::array<std::uint64_t, kFaultKindCount>&
  injected_by_kind() const noexcept {
    return injected_by_kind_;
  }

 private:
  /// Kill `victims` (already validated live) inside a CauseScope rooted
  /// at `cause` (the FaultInjected id), then notify and account.
  void kill_batch(Simulation& sim, std::vector<ServerId> victims,
                  FaultKind kind, Applied& applied,
                  const KillCallback& on_kill, std::uint64_t cause);
  /// Pick `n` seeded-random live servers, capped at live_count - 1.
  std::vector<ServerId> pick_live(const Simulation& sim, std::uint32_t n);
  /// Pop up to `n` longest-dead chaos victims that are still dead.
  std::vector<ServerId> pop_dead(const Simulation& sim, std::uint32_t n);
  /// Emit the FaultInjected event (the root of the injection's cause
  /// chain — call *before* applying the side effects, scoped to the
  /// returned id), set it as the ambient cause, and bump the counters.
  /// Returns the event's cause id (0 with no sinks installed).
  std::uint64_t record(Simulation& sim, Epoch epoch, FaultKind kind,
                       Applied& applied, std::uint32_t servers,
                       DatacenterId dc = {}, DatacenterId a = {},
                       DatacenterId b = {}, double magnitude = 0.0);

  FaultPlan plan_;
  Rng rng_;
  /// Chaos-killed servers with no scheduled recovery, oldest first —
  /// the pool `recover` events and churn revivals draw from.
  std::vector<ServerId> dead_pool_;
  struct PendingRecovery {
    Epoch at = 0;
    std::vector<ServerId> servers;
  };
  std::vector<PendingRecovery> pending_;
  /// Whether the i-th plan event (a flap or linkdown) currently holds its
  /// link down, so transitions fire exactly once.
  std::vector<char> link_down_;
  /// Servers the i-th plan event (a stalestats) currently holds frozen;
  /// thawed (and cleared) when the event's window closes.
  std::vector<std::vector<ServerId>> frozen_victims_;
  std::array<std::uint64_t, kFaultKindCount> injected_by_kind_{};
};

}  // namespace rfh
