#include "core/selection.h"

#include <vector>

#include "common/erlang.h"

namespace rfh {

double blocking_probability(const PolicyContext& ctx, ServerId s) {
  const ServerSpec& spec = ctx.topology.server(s).spec;
  const double service_rate = std::max(spec.per_replica_capacity, 1e-9);
  const double offered = ctx.stats.server_arrival(s) / service_rate;
  return erlang_b(offered, spec.service_channels);
}

ServerId select_server_erlang_b(const PolicyContext& ctx, DatacenterId dc,
                                PartitionId p) {
  ServerId best;
  double best_bp = 0.0;
  for (const ServerId s : ctx.cluster.live_by_dc()[dc.value()]) {
    if (!ctx.cluster.can_accept(s, p)) continue;
    const double bp = blocking_probability(ctx, s);
    if (!best.valid() || bp < best_bp) {
      best = s;
      best_bp = bp;
    }
  }
  return best;
}

ServerId select_server_first_fit(const PolicyContext& ctx, DatacenterId dc,
                                 PartitionId p) {
  for (const ServerId s : ctx.cluster.live_by_dc()[dc.value()]) {
    if (ctx.cluster.can_accept(s, p)) return s;
  }
  return ServerId::invalid();
}

ServerId select_server_random(const PolicyContext& ctx, DatacenterId dc,
                              PartitionId p, Rng& rng) {
  std::vector<ServerId> feasible;
  for (const ServerId s : ctx.cluster.live_by_dc()[dc.value()]) {
    if (ctx.cluster.can_accept(s, p)) feasible.push_back(s);
  }
  if (feasible.empty()) return ServerId::invalid();
  return feasible[rng.uniform(feasible.size())];
}

}  // namespace rfh
