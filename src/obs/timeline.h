// The causal flight recorder: a compact, always-bounded, in-memory
// record of *why* the simulation did what it did.
//
// A TimelineStore is an EventSink that condenses every dispatched event
// into a fixed-size binary TimelineRecord (64 bytes: the causal envelope,
// the entities involved, and the observed-vs-threshold pair that
// justified the decision) and keeps them in per-partition ring buffers
// plus one global ring for partition-less events (faults, link changes,
// SLO breaches). Records evicted from a ring are offered to a
// deterministic reservoir — bottom-k by splitmix64(cause id) — so a
// bounded uniform sample of deep history survives arbitrarily long runs.
// Everything lives under a byte budget fixed at construction; at the
// 100k–1M-server scale where JSONL sinks explode, the recorder's cost
// stays O(budget) memory and O(1) per event.
//
// Determinism: insertion order, ring contents and the reservoir are pure
// functions of the (single-threaded) emission sequence — the reservoir's
// keep-set depends only on the multiset of evicted ids, not on timing —
// so digest() is byte-identical across --jobs values
// (tests/determinism_test.cpp).
//
// TimelineQuery builds id/partition/epoch/DC indexes over a snapshot and
// answers the forensic questions ("why did partition P drop to one
// replica at epoch E?") as cause chains, rendered by render_chain() as
// indented trees with the Eq. 12-17 context attached.
#pragma once

#include <cstdint>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "obs/event_bus.h"

namespace rfh {

/// Variant alternative index of an event type, as stored in
/// TimelineRecord::type.
template <typename E>
[[nodiscard]] constexpr std::uint8_t event_type_index() noexcept {
  return static_cast<std::uint8_t>(Event(std::in_place_type<E>).index());
}

/// One condensed event. Fixed-size POD — no heap, trivially copyable.
/// Unused entity fields hold kNoEntity / kNoDc; `label` is either
/// nullptr or a static-duration string (fault kind, phase, objective).
struct TimelineRecord {
  static constexpr std::uint32_t kNoEntity = 0xffffffffu;
  static constexpr std::uint16_t kNoDc = 0xffffu;

  std::uint64_t id = 0;      // bus cause id (0: recorded without a bus)
  std::uint64_t parent = 0;  // causing record's id (0: root)
  const char* label = nullptr;
  /// The event's two headline numbers — for decision events the two
  /// sides of the fired inequality (observed vs threshold).
  double a = 0.0;
  double b = 0.0;
  Epoch epoch = 0;
  std::uint32_t partition = kNoEntity;
  std::uint32_t server = kNoEntity;  // primary server involved (target)
  std::uint32_t aux = kNoEntity;     // second server / link endpoint
  std::uint16_t dc = kNoDc;
  std::uint8_t type = 0;  // Event variant index
  std::uint8_t code = 0;  // DecisionRule / DropReason, per type
};

/// Condense one event (+ its causal envelope) into a record.
[[nodiscard]] TimelineRecord make_timeline_record(const Event& event,
                                                  const TraceMeta& meta);

struct TimelineOptions {
  /// Total memory target across rings and reservoir. The store never
  /// allocates record storage beyond ~this many bytes. The default is
  /// deliberately cache-friendly: the recorder rides along on the
  /// simulation hot path, and measurements show the overhead is
  /// dominated by the store's cache footprint, not per-record work
  /// (~4 MB costs ~11% of step wall, 256 KB under 5%). Forensic deep
  /// dives that want more history should raise the budget explicitly.
  std::size_t byte_budget = std::size_t{256} << 10;
  /// Per-partition ring capacity clamp (records).
  std::size_t min_ring = 8;
  std::size_t max_ring = 256;
  /// Keep per-epoch summary events (QueryRoutedSummary, EpochCompleted,
  /// PhaseSpan)? Off by default: they are observational snapshots with
  /// no causal value, and at one per epoch they would crowd the rings.
  bool keep_summaries = false;
};

class TimelineStore final : public EventSink {
 public:
  explicit TimelineStore(std::uint32_t partitions,
                         TimelineOptions options = {});

  void on_event(const Event& event) override;
  void on_record(const Event& event, const TraceMeta& meta) override;

  // --- observers --------------------------------------------------------
  [[nodiscard]] std::size_t ring_capacity() const noexcept { return cap_; }
  [[nodiscard]] std::size_t global_capacity() const noexcept {
    return global_cap_;
  }
  [[nodiscard]] std::size_t reservoir_capacity() const noexcept {
    return reservoir_cap_;
  }
  /// Records accepted (post filter), offered to the reservoir, and
  /// currently sampled there.
  [[nodiscard]] std::uint64_t total_recorded() const noexcept {
    return total_;
  }
  [[nodiscard]] std::uint64_t evicted() const noexcept { return evicted_; }
  [[nodiscard]] std::size_t sampled() const noexcept {
    return reservoir_.size();
  }
  /// True when any retained record carries a bus cause id — false for
  /// traces recorded without an EventBus (the flat-timeline fallback).
  [[nodiscard]] bool has_cause_ids() const noexcept { return any_id_; }
  /// Upper bound on record storage currently allocated.
  [[nodiscard]] std::size_t approx_bytes() const noexcept;

  /// Every retained record (rings + reservoir), cause-id ascending;
  /// id-less records (on_event path) come first in arrival order.
  [[nodiscard]] std::vector<TimelineRecord> snapshot() const;

  /// FNV-1a fingerprint over the canonical text of every retained record
  /// in deterministic order — the byte-identity witness for
  /// determinism_test.
  [[nodiscard]] std::uint64_t digest() const;

  /// One JSON object per retained record (cause-id ascending), for
  /// --blackbox-out archives.
  void dump_jsonl(std::ostream& out) const;

 private:
  struct Ring {
    std::vector<TimelineRecord> buf;
    std::size_t head = 0;  // oldest slot once full
  };

  void insert(Ring& ring, std::size_t cap, const TimelineRecord& rec);
  void offer_reservoir(const TimelineRecord& rec);
  void append_ring(std::vector<TimelineRecord>& out, const Ring& ring) const;

  TimelineOptions options_;
  std::size_t cap_ = 0;         // per-partition ring capacity
  std::size_t global_cap_ = 0;  // partition-less ring capacity
  std::size_t reservoir_cap_ = 0;
  std::vector<Ring> rings_;  // one per partition
  Ring global_;
  /// (splitmix64(id), record) pairs kept as a max-heap on the key; a
  /// record replaces the heap top when its key is smaller (bottom-k).
  std::vector<std::pair<std::uint64_t, TimelineRecord>> reservoir_;
  std::uint64_t total_ = 0;
  std::uint64_t evicted_ = 0;
  std::uint64_t arrival_ = 0;  // tiebreak for id-less records
  bool any_id_ = false;
};

// ---------------------------------------------------------------------------
// Forensic queries
// ---------------------------------------------------------------------------

/// Read-side index over a TimelineStore snapshot. Build once per query
/// session (O(n log n)); the store itself stays write-optimized.
class TimelineQuery {
 public:
  static constexpr Epoch kAnyEpoch = ~Epoch{0};

  explicit TimelineQuery(const TimelineStore& store);
  explicit TimelineQuery(std::vector<TimelineRecord> records);

  [[nodiscard]] const std::vector<TimelineRecord>& records() const noexcept {
    return records_;
  }
  /// Record by cause id (nullptr when unknown/evicted or id == 0).
  [[nodiscard]] const TimelineRecord* find(std::uint64_t id) const;

  /// All records touching partition p (chronological), optionally capped
  /// at epoch `until`.
  [[nodiscard]] std::vector<TimelineRecord> partition_records(
      PartitionId p, Epoch until = kAnyEpoch) const;
  /// All records stamped with epoch e (chronological).
  [[nodiscard]] std::vector<TimelineRecord> at_epoch(Epoch e) const;
  /// All records touching datacenter `dc` (chronological).
  [[nodiscard]] std::vector<TimelineRecord> dc_records(DatacenterId dc) const;

  /// The cause chain ending at `id`, root first. Walks parent links;
  /// stops at a root or at the first evicted/unknown ancestor.
  [[nodiscard]] std::vector<TimelineRecord> chain(std::uint64_t id) const;
  /// True when chain(id)'s root still has a nonzero parent — an ancestor
  /// was evicted (or never recorded), so the chain is a suffix.
  [[nodiscard]] bool chain_truncated(std::uint64_t id) const;

  /// "Why?": the cause chain of the most causally significant record for
  /// partition p at or before `at` — the latest state-changing outcome
  /// (action applied/refused, promotion, reseed), falling back to the
  /// latest record of any kind. Empty when the partition has no history.
  [[nodiscard]] std::vector<TimelineRecord> why(PartitionId p,
                                                Epoch at = kAnyEpoch) const;

 private:
  void build();

  std::vector<TimelineRecord> records_;  // cause-id ascending
  std::vector<std::uint32_t> by_partition_index_;  // indexes into records_
  std::vector<std::uint32_t> partition_offsets_;   // CSR offsets
  std::uint32_t partitions_ = 0;
};

/// One-line human rendering of a record ("partition 12 replicated ...
/// because r < r_min (Eq. 14): 1 vs 2").
[[nodiscard]] std::string describe_record(const TimelineRecord& rec);

/// Indented cause tree, root first (two spaces per causal hop). When
/// `truncated`, the first line notes that deeper ancestors were evicted.
[[nodiscard]] std::string render_chain(std::span<const TimelineRecord> chain,
                                       bool truncated = false);

}  // namespace rfh
