// Quickstart: build the paper's world (Table I defaults), run the RFH
// policy for 100 epochs of uniform query load, and watch the system
// adapt: replicas grow to the availability floor, hot partitions gain
// hub copies, the lookup path shortens, and cold replicas suicide.
//
//   $ ./quickstart
#include <cstdio>

#include "harness/runner.h"
#include "harness/scenario.h"

int main() {
  rfh::Scenario scenario = rfh::Scenario::paper_random_query();
  scenario.epochs = 100;

  auto sim = rfh::make_simulation(scenario, rfh::PolicyKind::kRfh);
  rfh::MetricsCollector collector;

  std::printf("epoch  replicas  avg/part  utilization  path  unserved%%\n");
  for (rfh::Epoch e = 0; e < scenario.epochs; ++e) {
    const rfh::EpochReport report = sim->step();
    const rfh::EpochMetrics m = collector.collect(*sim, report);
    if (e % 10 == 0 || e + 1 == scenario.epochs) {
      std::printf("%5u  %8u  %8.2f  %11.3f  %4.2f  %8.2f\n", m.epoch,
                  m.total_replicas, m.avg_replicas_per_partition,
                  m.utilization, m.path_length, 100.0 * m.unserved_fraction);
    }
  }

  std::printf("\ncumulative: %u replications (cost %.1f), %u migrations "
              "(cost %.1f)\n",
              sim->cumulative_replications(),
              sim->cumulative_replication_cost(),
              sim->cumulative_migrations(), sim->cumulative_migration_cost());
  return 0;
}
