// Simulation configuration (paper Table I).
//
// Field-by-field mapping to Table I:
//   partitions = 64, partition size 512 KB, failure rate 0.1, minimum
//   availability 0.8, alpha 0.2, beta 2, gamma 1.5, delta 0.2, mu 1,
//   storage limit phi 70 %. Server-level capacities (10 GB storage,
//   300 MB/epoch replication, 100 MB/epoch migration) live in
//   topology::ServerSpec / WorldOptions.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/availability.h"
#include "common/units.h"

namespace rfh {

/// Redundancy scheme for a partition's copies.
///  * kReplica: each copy is a full replica (the paper's scheme); any one
///    live copy can serve a read.
///  * kErasure: copies are (k+m) erasure-coded fragments of size
///    ceil(partition_size / k); any k live fragments reconstruct the
///    partition (reads fan out to k fragments, so served traffic is
///    counted in fragment units internally and folded back to logical
///    queries at the edges).
enum class RedundancyMode : std::uint8_t { kReplica = 0, kErasure = 1 };

struct SimConfig {
  std::uint32_t partitions = 64;
  Bytes partition_size = kib(512);

  /// Redundancy scheme. kReplica reproduces the paper byte-for-byte;
  /// kErasure generalizes Eq. 14 to a k-of-n binomial tail and Eq. 1's
  /// unit of transfer/storage to the fragment size partition_size / k.
  RedundancyMode redundancy = RedundancyMode::kReplica;
  /// Data fragments per stripe (EC mode only): any k of the n placed
  /// fragments reconstruct the partition.
  std::uint32_t ec_k = 4;
  /// Parity fragments per stripe (EC mode only): the stripe is written
  /// as n = k + m fragments.
  std::uint32_t ec_m = 2;

  /// Size of one placed unit: a full replica, or one EC fragment
  /// (ceil(partition_size / k), matching Eq. 1's cost c = d * f * s / b
  /// with s shrunk to s/k).
  [[nodiscard]] Bytes unit_size() const noexcept {
    if (redundancy == RedundancyMode::kErasure && ec_k > 1) {
      return (partition_size + ec_k - 1) / ec_k;
    }
    return partition_size;
  }
  /// Live units needed to serve a read: 1 replica, or k fragments.
  [[nodiscard]] std::uint32_t reconstruction_threshold() const noexcept {
    return redundancy == RedundancyMode::kErasure ? ec_k : 1u;
  }
  /// The Eq. 14 copy floor for this config: min_replicas in replica
  /// mode, or the k-of-n binomial-tail floor in EC mode (never below the
  /// full k + m stripe, so a healthy stripe always carries its parity
  /// budget). Every layer that reasons about "enough copies" — policy,
  /// reference oracle, invariant checker, mean-field model — calls this
  /// one helper.
  [[nodiscard]] std::uint32_t availability_floor() const noexcept {
    if (redundancy == RedundancyMode::kErasure) {
      return min_fragments(min_availability, failure_rate, ec_k,
                           ec_k + ec_m);
    }
    return min_replicas(min_availability, failure_rate);
  }

  /// Per-copy failure probability f in the availability window.
  double failure_rate = 0.1;
  /// Target availability A_expect (Eq. 14).
  double min_availability = 0.8;

  /// Smoothing factor (Eqs. 10-11).
  double alpha = 0.2;
  /// Eq. 10 as printed weights *history* by alpha (so alpha = 0.2 adapts
  /// fast); the surrounding prose ("take historical data into account")
  /// suggests the opposite orientation may have been intended. True =
  /// as printed; false = alpha weights the new sample
  /// (v = (1-alpha)*v_old + alpha*x). bench_ablation_thresholds measures
  /// both.
  bool alpha_weights_history = true;
  /// Holder overload threshold (Eq. 12): tr_ii >= beta * q_bar_i.
  double beta = 2.0;
  /// Traffic-hub threshold (Eq. 13): tr_ik >= gamma * q_bar_i.
  double gamma = 1.5;
  /// Suicide threshold (Eq. 15): tr_ik <= delta * q_bar_i.
  double delta = 0.2;
  /// Migration benefit threshold (Eq. 16): tr_j - tr_k >= mu * tr_bar_i.
  double mu = 1.0;
  /// Storage occupancy upper limit phi (Eq. 19).
  double storage_limit = 0.7;

  /// Safety cap on copies per partition (the adaptive loop stops well
  /// below this; the cap only guards against runaway configurations).
  std::uint32_t max_replicas_per_partition = 16;

  /// Ring tokens per physical server (virtual-node granularity).
  std::uint32_t ring_tokens_per_server = 16;

  /// Memoize computed routes per (partition, requester) between placement
  /// mutations (see DESIGN.md §11). Purely a speed knob: outputs are
  /// bit-identical either way, which tests/determinism_test.cpp enforces.
  bool route_memo = true;

  /// SLA target: the paper's motivating requirement is a response within
  /// 300 ms for 99.9 % of requests.
  double sla_target_ms = 300.0;
  /// Latency charged to a query the system could not serve this epoch
  /// (every copy saturated): it waits out the overload.
  double blocked_penalty_ms = 1000.0;

  std::uint64_t seed = 42;
};

/// Canonical spelling of a config's redundancy scheme: "replica" or
/// "ec(k,m)". parse_redundancy accepts exactly these spellings.
[[nodiscard]] std::string redundancy_spec(const SimConfig& config);

/// Parse a redundancy spec ("replica" or "ec(k,m)" with k >= 2, m >= 1,
/// k + m <= 16) into config.redundancy / ec_k / ec_m. Returns false and
/// sets `error` on any other input — an unsupported mode must be
/// rejected loudly, never silently defaulted to replica.
[[nodiscard]] bool parse_redundancy(std::string_view text, SimConfig& config,
                                    std::string& error);

}  // namespace rfh
