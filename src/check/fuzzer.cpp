#include "check/fuzzer.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace rfh {

namespace {

constexpr std::uint32_t kDatacenters = 10;  // build_paper_world is fixed

std::uint32_t u32_in(Rng& rng, std::uint32_t lo, std::uint32_t hi) {
  return lo + static_cast<std::uint32_t>(rng.uniform(hi - lo + 1));
}

FaultEvent make_fault_event(Rng& rng, Epoch epochs, bool allow_outage) {
  FaultEvent ev;
  // Inject somewhere in [1, epochs - 2] so at least one epoch runs before
  // and after the fault.
  ev.at = u32_in(rng, 1, std::max<Epoch>(1, epochs - 2));

  std::uint32_t kind = static_cast<std::uint32_t>(rng.uniform(9));
  // At most one correlated mass-kill (datacenter outage or zone outage)
  // per case: a second one could take down every zone.
  if (!allow_outage && (kind == 2 || kind == 7)) kind = 0;
  switch (kind) {
    case 0:  // crash
      ev.kind = FaultKind::kCrash;
      ev.count = u32_in(rng, 1, 3);
      break;
    case 1:  // recover (a no-op without prior chaos kills; still valid)
      ev.kind = FaultKind::kRecover;
      ev.count = u32_in(rng, 1, 2);
      break;
    case 2:  // outage
      ev.kind = FaultKind::kDatacenterOutage;
      ev.dc = DatacenterId{static_cast<std::uint32_t>(
          rng.uniform(kDatacenters))};
      ev.recover_after = rng.uniform(2) == 0 ? 0 : u32_in(rng, 2, 6);
      break;
    case 3: {  // linkdown
      ev.kind = FaultKind::kLinkDown;
      const auto a = static_cast<std::uint32_t>(rng.uniform(kDatacenters));
      const auto b =
          (a + 1 + static_cast<std::uint32_t>(rng.uniform(kDatacenters - 1))) %
          kDatacenters;
      ev.link_a = DatacenterId{a};
      ev.link_b = DatacenterId{b};
      ev.restore_at = rng.uniform(2) == 0 ? 0 : ev.at + u32_in(rng, 1, 6);
      break;
    }
    case 4: {  // flap
      ev.kind = FaultKind::kLinkFlap;
      const auto a = static_cast<std::uint32_t>(rng.uniform(kDatacenters));
      const auto b =
          (a + 1 + static_cast<std::uint32_t>(rng.uniform(kDatacenters - 1))) %
          kDatacenters;
      ev.link_a = DatacenterId{a};
      ev.link_b = DatacenterId{b};
      ev.until = ev.at + u32_in(rng, 2, 9);
      ev.period = u32_in(rng, 2, 4);
      ev.down = u32_in(rng, 1, ev.period);
      break;
    }
    case 5:  // churn
      ev.kind = FaultKind::kChurn;
      ev.until = ev.at + u32_in(rng, 2, 11);
      ev.period = u32_in(rng, 1, 4);
      ev.kill = u32_in(rng, 1, 3);
      ev.recover = static_cast<std::uint32_t>(rng.uniform(ev.kill + 1));
      break;
    case 6:  // flashcrowd
      ev.kind = FaultKind::kFlashCrowd;
      ev.duration = u32_in(rng, 1, 5);
      // Quantize to 2 decimals so the factor survives FaultPlan's %.12g
      // text serialization bit-exactly (canonical round-trip guarantee).
      ev.factor =
          std::round(rng.uniform_real_range(1.5, 6.0) * 100.0) / 100.0;
      break;
    case 7:  // zoneoutage (correlated regional kill)
      ev.kind = FaultKind::kZoneOutage;
      // Any geo::Continent index; a zone the paper world leaves empty is
      // a validated non-event, same as an outage of a dead datacenter.
      ev.zone = static_cast<std::uint32_t>(rng.uniform(6));
      ev.recover_after = rng.uniform(2) == 0 ? 0 : u32_in(rng, 2, 6);
      break;
    default:  // stalestats (Byzantine stale load reports)
      ev.kind = FaultKind::kStaleStats;
      ev.until = ev.at + u32_in(rng, 2, 9);
      ev.count = u32_in(rng, 1, 3);
      break;
  }
  return ev;
}

}  // namespace

CheckCase make_fuzz_case(std::uint64_t seed) {
  Rng rng = Rng(seed).fork(kFuzzStreamTag);

  CheckCase c;
  c.seed = seed;

  // Small worlds find divergences as well as big ones and run much
  // faster: 20-50 servers across the fixed 10 datacenters.
  c.rooms_per_datacenter = 1;
  c.racks_per_room = u32_in(rng, 1, 2);
  c.servers_per_rack = u32_in(rng, 2, 5);

  c.partitions = u32_in(rng, 4, 48);
  c.epochs = u32_in(rng, 10, 40);
  switch (rng.uniform(3)) {
    case 0:
      c.workload = WorkloadKind::kUniform;
      break;
    case 1:
      c.workload = WorkloadKind::kFlashCrowd;
      break;
    default:
      c.workload = WorkloadKind::kHotspotShift;
      break;
  }
  c.zipf = rng.uniform_real_range(0.4, 1.2);

  c.alpha = rng.uniform_real_range(0.05, 0.9);
  c.alpha_weights_history = rng.uniform(2) == 0;
  c.beta = rng.uniform_real_range(1.0, 4.0);
  c.gamma = rng.uniform_real_range(0.5, 3.0);
  c.delta = rng.uniform_real_range(0.02, 0.45);
  c.mu = rng.uniform_real_range(0.25, 2.0);
  c.phi = rng.uniform_real_range(0.35, 0.95);
  c.failure_rate = rng.uniform_real_range(0.05, 0.3);
  c.min_availability = rng.uniform_real_range(0.55, 0.95);

  const auto n_events = static_cast<std::uint32_t>(rng.uniform(4));  // 0..3
  bool allow_outage = true;
  for (std::uint32_t i = 0; i < n_events; ++i) {
    const FaultEvent ev = make_fault_event(rng, c.epochs, allow_outage);
    if (ev.kind == FaultKind::kDatacenterOutage ||
        ev.kind == FaultKind::kZoneOutage) {
      allow_outage = false;
    }
    c.fault_plan.add(ev);
  }

  // Redundancy axis, drawn after everything else so replica-mode cases
  // reproduce the pre-EC generator exactly (same draw prefix): ~1/3 of
  // cases run erasure-coded with a small stripe.
  if (rng.uniform(3) == 0) {
    c.redundancy = RedundancyMode::kErasure;
    c.ec_k = u32_in(rng, 2, 4);
    c.ec_m = u32_in(rng, 1, 2);
  }
  return c;
}

}  // namespace rfh
