// The residual-traffic propagation of Eqs. 2-8, exercised through
// controlled single-partition simulations with degenerate (uniform)
// capacities so every quantity is exactly predictable.
#include <gtest/gtest.h>

#include <memory>

#include "test_util.h"

namespace rfh {
namespace {

constexpr double kCap = 2.0;  // per-replica capacity everywhere

SimConfig one_partition_config() {
  SimConfig config;
  config.partitions = 1;
  return config;
}

double total_served(const EpochTraffic& traffic, PartitionId p) {
  double sum = 0.0;
  for (std::uint32_t s = 0; s < traffic.servers(); ++s) {
    sum += traffic.served(p, ServerId{s});
  }
  return sum;
}

/// A requester datacenter that is NOT the holder's own.
DatacenterId remote_requester(const Simulation& sim, PartitionId p) {
  const DatacenterId holder_dc =
      sim.topology().server(sim.cluster().primary_of(p)).datacenter;
  for (const Datacenter& dc : sim.topology().datacenters()) {
    if (dc.id != holder_dc &&
        sim.paths().hop_count(dc.id, holder_dc) >= 2) {
      return dc.id;
    }
  }
  return DatacenterId::invalid();
}

TEST(TrafficPropagation, PrimaryAloneAbsorbsUpToCapacity) {
  const PartitionId p{0};
  // Demand 5 > capacity 2: exactly 2 served, 3 blocked.
  auto sim = test::make_fixed_sim(
      {QueryFlow{p, DatacenterId{1}, 5.0}},
      std::make_unique<test::NullPolicy>(), one_partition_config(),
      test::uniform_world_options(kCap));
  // Requester must differ from holder DC for a meaningful route; if it is
  // the holder's DC the numbers below are unchanged anyway.
  sim->step();
  const EpochTraffic& traffic = sim->traffic();
  EXPECT_DOUBLE_EQ(total_served(traffic, p), kCap);
  EXPECT_DOUBLE_EQ(traffic.unserved(p), 5.0 - kCap);
  EXPECT_DOUBLE_EQ(traffic.partition_queries(p), 5.0);
  // The holder sees the full residual (no upstream replicas): tr_ii = 5.
  const ServerId holder = sim->cluster().primary_of(p);
  EXPECT_DOUBLE_EQ(traffic.node_traffic(p, holder), 5.0);
  EXPECT_DOUBLE_EQ(traffic.served(p, holder), kCap);
}

TEST(TrafficPropagation, ConservationAcrossArbitraryEpochs) {
  SimConfig config;
  config.partitions = 8;
  World world = build_paper_world(test::uniform_world_options(kCap));
  WorkloadParams params;
  params.partitions = 8;
  params.datacenters = 10;
  auto sim = std::make_unique<Simulation>(
      std::move(world), config, std::make_unique<UniformWorkload>(params),
      std::make_unique<test::NullPolicy>());
  for (int e = 0; e < 10; ++e) {
    sim->step();
    const EpochTraffic& traffic = sim->traffic();
    for (std::uint32_t pv = 0; pv < config.partitions; ++pv) {
      const PartitionId p{pv};
      EXPECT_NEAR(total_served(traffic, p) + traffic.unserved(p),
                  traffic.partition_queries(p), 1e-9);
    }
  }
}

TEST(TrafficPropagation, ServedNeverExceedsPerReplicaCapacity) {
  SimConfig config;
  config.partitions = 4;
  World world = build_paper_world(test::uniform_world_options(kCap));
  WorkloadParams params;
  params.partitions = 4;
  params.datacenters = 10;
  params.mean_queries_per_epoch = 800.0;  // heavy overload
  auto sim = std::make_unique<Simulation>(
      std::move(world), config, std::make_unique<UniformWorkload>(params),
      std::make_unique<test::NullPolicy>());
  for (int e = 0; e < 5; ++e) {
    sim->step();
    for (std::uint32_t pv = 0; pv < config.partitions; ++pv) {
      for (std::uint32_t sv = 0; sv < sim->topology().server_count(); ++sv) {
        EXPECT_LE(sim->traffic().served(PartitionId{pv}, ServerId{sv}),
                  kCap + 1e-9);
      }
    }
  }
}

TEST(TrafficPropagation, UpstreamReplicaReducesHolderResidual) {
  // Eq. 2: tr at the holder = max(0, q - sum of upstream capacities).
  const PartitionId p{0};
  SimConfig config = one_partition_config();

  // First, find the route so we can place a replica on a transit DC.
  auto probe = test::make_fixed_sim({}, std::make_unique<test::NullPolicy>(),
                                    config, test::uniform_world_options(kCap));
  const ServerId holder = probe->cluster().primary_of(p);
  const DatacenterId holder_dc = probe->topology().server(holder).datacenter;
  const DatacenterId requester = remote_requester(*probe, p);
  ASSERT_TRUE(requester.valid());
  const auto dc_path = probe->paths().path(requester, holder_dc);
  ASSERT_GE(dc_path.size(), 3u);
  const DatacenterId transit = dc_path[1];
  const ServerId target = probe->topology().servers_in(transit).front();

  // Now run with a scripted replication onto that transit server.
  Actions epoch0;
  epoch0.replications.push_back(ReplicateAction{p, target, {}});
  auto sim = test::make_fixed_sim(
      {QueryFlow{p, requester, 5.0}},
      std::make_unique<test::ScriptedPolicy>(std::vector<Actions>{epoch0}),
      config, test::uniform_world_options(kCap));
  ASSERT_EQ(sim->cluster().primary_of(p), holder);

  sim->step();  // epoch 0: replica is placed after propagation
  ASSERT_TRUE(sim->cluster().has_replica(p, target));
  sim->step();  // epoch 1: replica absorbs en route

  const EpochTraffic& traffic = sim->traffic();
  EXPECT_DOUBLE_EQ(traffic.served(p, target), kCap);
  // Holder's residual is Eq. 2's max(0, 5 - 2) = 3.
  EXPECT_DOUBLE_EQ(traffic.node_traffic(p, holder), 5.0 - kCap);
  EXPECT_DOUBLE_EQ(traffic.served(p, holder), kCap);
  EXPECT_DOUBLE_EQ(traffic.unserved(p), 5.0 - 2.0 * kCap);
}

TEST(TrafficPropagation, PathLengthShortensWhenReplicaAbsorbsEarly) {
  const PartitionId p{0};
  SimConfig config = one_partition_config();

  auto probe = test::make_fixed_sim({}, std::make_unique<test::NullPolicy>(),
                                    config, test::uniform_world_options(kCap));
  const ServerId holder = probe->cluster().primary_of(p);
  const DatacenterId requester = remote_requester(*probe, p);
  ASSERT_TRUE(requester.valid());
  // Replica in the requester's own datacenter: absorbed at hop 1.
  const ServerId target = probe->topology().servers_in(requester).front();

  Actions epoch0;
  epoch0.replications.push_back(ReplicateAction{p, target, {}});
  auto sim = test::make_fixed_sim(
      {QueryFlow{p, requester, 2.0}},  // exactly the replica capacity
      std::make_unique<test::ScriptedPolicy>(std::vector<Actions>{epoch0}),
      config, test::uniform_world_options(kCap));
  ASSERT_EQ(sim->cluster().primary_of(p), holder);

  const EpochReport before = sim->step();
  const EpochReport after = sim->step();
  EXPECT_GT(before.mean_path_length, 1.0);
  EXPECT_DOUBLE_EQ(after.mean_path_length, 1.0);  // all absorbed at entry
  EXPECT_DOUBLE_EQ(sim->traffic().unserved(p), 0.0);
}

TEST(TrafficPropagation, NonPrimariesAbsorbBeforeThePrimary) {
  // A second copy in the holder's own datacenter takes load first, so the
  // primary only sees what is left (Eq. 20's sequential fill).
  const PartitionId p{0};
  SimConfig config = one_partition_config();

  auto probe = test::make_fixed_sim({}, std::make_unique<test::NullPolicy>(),
                                    config, test::uniform_world_options(kCap));
  const ServerId holder = probe->cluster().primary_of(p);
  const DatacenterId holder_dc = probe->topology().server(holder).datacenter;
  ServerId sibling;
  for (const ServerId s : probe->topology().servers_in(holder_dc)) {
    if (s != holder) {
      sibling = s;
      break;
    }
  }
  ASSERT_TRUE(sibling.valid());

  Actions epoch0;
  epoch0.replications.push_back(ReplicateAction{p, sibling, {}});
  auto sim = test::make_fixed_sim(
      {QueryFlow{p, holder_dc, 3.0}},
      std::make_unique<test::ScriptedPolicy>(std::vector<Actions>{epoch0}),
      config, test::uniform_world_options(kCap));
  sim->step();
  sim->step();
  // Sibling (non-primary) fills to capacity first; primary takes the rest.
  EXPECT_DOUBLE_EQ(sim->traffic().served(p, sibling), kCap);
  EXPECT_DOUBLE_EQ(sim->traffic().served(p, holder), 1.0);
}

TEST(TrafficPropagation, RequesterQueriesAreRecordedPerFlow) {
  const PartitionId p{0};
  auto sim = test::make_fixed_sim(
      {QueryFlow{p, DatacenterId{2}, 4.0}, QueryFlow{p, DatacenterId{5}, 6.0}},
      std::make_unique<test::NullPolicy>(), one_partition_config(),
      test::uniform_world_options(kCap));
  sim->step();
  EXPECT_DOUBLE_EQ(sim->traffic().requester_queries(p, DatacenterId{2}), 4.0);
  EXPECT_DOUBLE_EQ(sim->traffic().requester_queries(p, DatacenterId{5}), 6.0);
  EXPECT_DOUBLE_EQ(sim->traffic().partition_queries(p), 10.0);
  EXPECT_DOUBLE_EQ(sim->traffic().total_queries(), 10.0);
}

}  // namespace
}  // namespace rfh
