// Flight-recorder forensics: run a scenario with the causal TimelineStore
// attached (obs/timeline.h), then interrogate the record — whole cause
// chains, not isolated log lines.
//
//   $ ./rfh_blackbox --why partition=7 epoch=120
//       # built-in failure drill; why did partition 7 end up where it was?
//   $ ./rfh_blackbox --fault-plan=chaos.plan --why partition=3
//   $ ./rfh_blackbox --case=tests/data/corpus/link_flap_churn.json --storm
//       # which fault chain caused the migration storm?
//   $ ./rfh_blackbox --kill=30@100 --slo=avail=0.99 --out=flight.jsonl
//       # archive the record (and SLO breaches) for offline analysis
//
// Flags:
//   --case=FILE       run a committed rfh-check-case/1 corpus scenario
//   --fault-plan=FILE run the paper scenario under a chaos plan
//   --kill=N@E        kill N random servers at epoch E (repeatable)
//   --seed=N --epochs=N --partitions=N   scenario overrides
//   --slo=SPEC        arm the SLO watchdog (telemetry/slo.h grammar)
//   --why partition=P [epoch=E]   print the cause chain behind partition
//                     P's latest state change at or before E
//   --storm           find the heaviest migration epoch and print the
//                     distinct cause chains feeding it
//   --out=FILE        dump the whole record as JSONL
// With no query flag the tool prints a summary of the record.
#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "check/case.h"
#include "harness/runner.h"
#include "obs/timeline.h"

namespace {

constexpr const char* kDefaultDrill =
    "# rfh-fault-plan/1\n"
    "crash at=60 count=20\n"
    "linkdown at=80 a=0 b=1 restore_at=100\n"
    "recover at=110 count=20\n";

bool consume(const char* arg, const char* name, std::string& value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  value = arg + len;
  return true;
}

bool parse_u64(const std::string& text, std::uint64_t& out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

int usage(const char* error) {
  if (error != nullptr) std::fprintf(stderr, "rfh_blackbox: %s\n", error);
  std::fprintf(stderr,
               "usage: rfh_blackbox [--case=FILE | --fault-plan=FILE] "
               "[--kill=N@E]... [--seed=N] [--epochs=N] [--partitions=N] "
               "[--slo=SPEC] [--out=FILE] "
               "[--why partition=P [epoch=E] | --storm]\n");
  return 2;
}

void print_chain(const rfh::TimelineQuery& query,
                 std::span<const rfh::TimelineRecord> chain) {
  const bool truncated = !chain.empty() && chain.front().parent != 0 &&
                         query.find(chain.front().parent) == nullptr;
  std::fputs(rfh::render_chain(chain, truncated).c_str(), stdout);
}

}  // namespace

int main(int argc, char** argv) {
  std::string case_path;
  std::string plan_path;
  std::string slo_spec;
  std::string out_path;
  std::uint64_t seed = 0;
  bool seed_set = false;
  std::uint64_t epochs = 0;
  std::uint64_t partitions = 0;
  std::vector<rfh::FailureEvent> failures;
  bool why_mode = false;
  bool storm_mode = false;
  std::uint64_t why_partition = 0;
  bool why_partition_set = false;
  std::uint64_t why_epoch = rfh::TimelineQuery::kAnyEpoch;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    std::string value;
    if (consume(arg, "--case=", value)) {
      case_path = value;
    } else if (consume(arg, "--fault-plan=", value)) {
      plan_path = value;
    } else if (consume(arg, "--slo=", value)) {
      slo_spec = value;
    } else if (consume(arg, "--out=", value)) {
      out_path = value;
    } else if (consume(arg, "--seed=", value)) {
      if (!parse_u64(value, seed)) return usage("--seed expects an integer");
      seed_set = true;
    } else if (consume(arg, "--epochs=", value)) {
      if (!parse_u64(value, epochs) || epochs == 0) {
        return usage("--epochs expects a positive integer");
      }
    } else if (consume(arg, "--partitions=", value)) {
      if (!parse_u64(value, partitions) || partitions == 0) {
        return usage("--partitions expects a positive integer");
      }
    } else if (consume(arg, "--kill=", value)) {
      const std::size_t at = value.find('@');
      std::uint64_t n = 0;
      std::uint64_t epoch = 0;
      if (at == std::string::npos || !parse_u64(value.substr(0, at), n) ||
          !parse_u64(value.substr(at + 1), epoch) || n == 0) {
        return usage("--kill expects N@E with positive N");
      }
      rfh::FailureEvent event;
      event.kill_random = static_cast<std::uint32_t>(n);
      event.epoch = static_cast<rfh::Epoch>(epoch);
      failures.push_back(event);
    } else if (std::strcmp(arg, "--why") == 0) {
      why_mode = true;
    } else if (std::strcmp(arg, "--storm") == 0) {
      storm_mode = true;
    } else if (consume(arg, "partition=", value)) {
      if (!why_mode || !parse_u64(value, why_partition)) {
        return usage("partition=P belongs after --why");
      }
      why_partition_set = true;
    } else if (consume(arg, "epoch=", value)) {
      if (!why_mode || !parse_u64(value, why_epoch)) {
        return usage("epoch=E belongs after --why");
      }
    } else {
      return usage((std::string("unknown argument '") + arg + "'").c_str());
    }
  }
  if (why_mode && !why_partition_set) {
    return usage("--why needs partition=P");
  }
  if (why_mode && storm_mode) return usage("--why and --storm conflict");
  if (!case_path.empty() && !plan_path.empty()) {
    return usage("--case and --fault-plan conflict");
  }

  // --- assemble the scenario --------------------------------------------
  rfh::Scenario scenario;
  if (!case_path.empty()) {
    const rfh::CheckCase::ParseResult parsed = rfh::CheckCase::load(case_path);
    if (!parsed.ok) {
      return usage(("--case: " + parsed.error).c_str());
    }
    scenario = parsed.value.to_scenario();
  } else {
    scenario = rfh::Scenario::paper_random_query();
    rfh::FaultPlan::ParseResult plan =
        plan_path.empty() ? rfh::FaultPlan::parse(kDefaultDrill)
                          : rfh::FaultPlan::parse_file(plan_path);
    if (!plan.ok) {
      return usage(("--fault-plan: " + plan.error).c_str());
    }
    // --kill alone replaces the built-in drill instead of stacking on it.
    if (!plan_path.empty() || failures.empty()) {
      scenario.fault_plan = std::move(plan.plan);
    }
  }
  if (seed_set) {
    scenario.sim.seed = seed;
    scenario.world.seed = seed;
  }
  if (epochs != 0) scenario.epochs = static_cast<rfh::Epoch>(epochs);
  if (partitions != 0) {
    scenario.sim.partitions = static_cast<std::uint32_t>(partitions);
  }
  if (!slo_spec.empty()) {
    const rfh::SloParseResult parsed = rfh::parse_slo(slo_spec);
    if (!parsed.ok) return usage(("--slo: " + parsed.error).c_str());
    scenario.slo = parsed.spec;
  }

  // --- fly the scenario with the recorder attached ----------------------
  rfh::TimelineStore store(scenario.sim.partitions);
  const rfh::PolicyRun run = rfh::run_policy(
      scenario, rfh::PolicyKind::kRfh, failures, rfh::RfhPolicy::Options{},
      /*trace_sink=*/nullptr, /*metrics=*/nullptr, /*profiler=*/nullptr,
      /*checker=*/nullptr, &store);

  std::printf("# %u epochs, %llu events recorded (%zu retained, %zu "
              "sampled from %llu evicted)\n",
              scenario.epochs,
              static_cast<unsigned long long>(store.total_recorded()),
              store.snapshot().size(), store.sampled(),
              static_cast<unsigned long long>(store.evicted()));
  if (scenario.slo.enabled()) {
    std::printf("# slo breaches: %zu\n", run.slo_breaches.size());
  }

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "rfh_blackbox: cannot open '%s' for writing\n",
                   out_path.c_str());
      return 2;
    }
    store.dump_jsonl(out);
    std::printf("# flight record written to %s\n", out_path.c_str());
  }

  const rfh::TimelineQuery query(store);

  if (why_mode) {
    const rfh::PartitionId p{static_cast<std::uint32_t>(why_partition)};
    const auto at = static_cast<rfh::Epoch>(why_epoch);
    const std::vector<rfh::TimelineRecord> chain = query.why(p, at);
    if (chain.empty()) {
      std::printf("partition %llu has no recorded history",
                  static_cast<unsigned long long>(why_partition));
      if (at != rfh::TimelineQuery::kAnyEpoch) {
        std::printf(" at or before epoch %u", at);
      }
      std::printf("\n");
      return 1;
    }
    std::printf("\n=== why: partition %llu",
                static_cast<unsigned long long>(why_partition));
    if (at != rfh::TimelineQuery::kAnyEpoch) std::printf(" @ epoch %u", at);
    std::printf(" ===\n");
    print_chain(query, chain);
    // Recent history gives the chain its surroundings: what else the
    // partition went through on the way here.
    const std::vector<rfh::TimelineRecord> recent =
        query.partition_records(p, at);
    const std::size_t n = std::min<std::size_t>(8, recent.size());
    std::printf("\n--- last %zu records for partition %llu ---\n", n,
                static_cast<unsigned long long>(why_partition));
    for (std::size_t i = recent.size() - n; i < recent.size(); ++i) {
      std::printf("epoch %4u  %s\n", recent[i].epoch,
                  rfh::describe_record(recent[i]).c_str());
    }
    return 0;
  }

  if (storm_mode) {
    // The storm epoch: where the most migrations landed in the record.
    constexpr std::uint8_t kMigration =
        rfh::event_type_index<rfh::MigrationExecuted>();
    std::map<rfh::Epoch, std::uint32_t> migrations_at;
    for (const rfh::TimelineRecord& rec : query.records()) {
      if (rec.type == kMigration) ++migrations_at[rec.epoch];
    }
    if (migrations_at.empty()) {
      std::printf("no migrations in the record — no storm to explain\n");
      return 1;
    }
    auto storm = migrations_at.begin();
    for (auto it = migrations_at.begin(); it != migrations_at.end(); ++it) {
      if (it->second > storm->second) storm = it;
    }
    std::printf("\n=== storm: %u migrations at epoch %u ===\n", storm->second,
                storm->first);
    // One tree per distinct root cause; count how many migrations each
    // root accounts for instead of repeating near-identical chains.
    std::map<std::uint64_t, std::uint32_t> by_root;
    std::map<std::uint64_t, std::vector<rfh::TimelineRecord>> chain_of;
    for (const rfh::TimelineRecord& rec : query.at_epoch(storm->first)) {
      if (rec.type != kMigration) continue;
      std::vector<rfh::TimelineRecord> chain = query.chain(rec.id);
      const std::uint64_t root = chain.empty() ? 0 : chain.front().id;
      if (++by_root[root] == 1) chain_of[root] = std::move(chain);
    }
    for (const auto& [root, count] : by_root) {
      std::printf("\n%u migration(s) traced to:\n", count);
      print_chain(query, chain_of[root]);
    }
    return 0;
  }

  // --- default: summarize the record ------------------------------------
  std::map<std::string, std::uint32_t> by_type;
  for (const rfh::TimelineRecord& rec : query.records()) {
    ++by_type[std::string(
        rfh::event_index_name(static_cast<std::size_t>(rec.type)))];
  }
  std::printf("\nretained records by type:\n");
  for (const auto& [name, count] : by_type) {
    std::printf("  %-22s %u\n", name.c_str(), count);
  }
  for (const rfh::SloBreachRecord& b : run.slo_breaches) {
    std::printf("slo breach: epoch %u %s observed=%.4g target=%.4g\n",
                b.epoch, rfh::slo_objective_name(b.objective), b.observed,
                b.target);
  }
  std::printf("\n(ask a question: --why partition=P [epoch=E], or --storm)\n");
  return 0;
}
