# Empty compiler generated dependencies file for bench_fig5_replication_cost.
# This may be replaced when dependencies are built.
