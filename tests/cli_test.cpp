#include "harness/cli.h"

#include <gtest/gtest.h>

#include <vector>

namespace rfh {
namespace {

CliParseResult parse(std::vector<const char*> args) {
  return parse_cli(std::span<const char* const>(args.data(), args.size()));
}

TEST(Cli, DefaultsMatchPaperRandomQuery) {
  const CliParseResult r = parse({});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.options.policy, PolicyKind::kRfh);
  EXPECT_FALSE(r.options.compare);
  EXPECT_FALSE(r.options.quiet);
  EXPECT_EQ(r.options.metric, "utilization");
  EXPECT_EQ(r.options.scenario.epochs, 250u);
  EXPECT_TRUE(r.options.failures.empty());
}

TEST(Cli, ParsesEveryPolicy) {
  EXPECT_EQ(parse({"--policy=rfh"}).options.policy, PolicyKind::kRfh);
  EXPECT_EQ(parse({"--policy=random"}).options.policy, PolicyKind::kRandom);
  EXPECT_EQ(parse({"--policy=owner"}).options.policy, PolicyKind::kOwner);
  EXPECT_EQ(parse({"--policy=request"}).options.policy, PolicyKind::kRequest);
  EXPECT_FALSE(parse({"--policy=magic"}).ok);
}

TEST(Cli, WorkloadFlashSwitchesHorizon) {
  const CliParseResult r = parse({"--workload=flash"});
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.options.scenario.workload, WorkloadKind::kFlashCrowd);
  EXPECT_EQ(r.options.scenario.epochs, 400u);
}

TEST(Cli, ExplicitEpochsOverrideTheFlashDefault) {
  const CliParseResult r = parse({"--epochs=77", "--workload=flash"});
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.options.scenario.epochs, 77u);
}

TEST(Cli, NumericFlags) {
  const CliParseResult r =
      parse({"--epochs=123", "--seed=9", "--partitions=32",
             "--write-fraction=0.25"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.options.scenario.epochs, 123u);
  EXPECT_EQ(r.options.scenario.sim.seed, 9u);
  EXPECT_EQ(r.options.scenario.world.seed, 9u);
  EXPECT_EQ(r.options.scenario.sim.partitions, 32u);
  EXPECT_DOUBLE_EQ(r.options.scenario.write_fraction, 0.25);
}

TEST(Cli, RejectsMalformedNumbers) {
  EXPECT_FALSE(parse({"--epochs=0"}).ok);
  EXPECT_FALSE(parse({"--epochs=ten"}).ok);
  EXPECT_FALSE(parse({"--partitions=0"}).ok);
  EXPECT_FALSE(parse({"--seed=abc"}).ok);
  EXPECT_FALSE(parse({"--write-fraction=1.5"}).ok);
  EXPECT_FALSE(parse({"--write-fraction=-0.1"}).ok);
}

TEST(Cli, JobsAcceptsAutoAndExplicitCounts) {
  EXPECT_EQ(parse({"--jobs=auto"}).options.jobs, 0u);
  EXPECT_EQ(parse({"--jobs=1"}).options.jobs, 1u);
  EXPECT_EQ(parse({"--jobs=16"}).options.jobs, 16u);
  EXPECT_EQ(parse({"--jobs=1024"}).options.jobs, 1024u);
}

TEST(Cli, JobsRejectsZeroNegativeAndGarbage) {
  // 0 is not a valid worker count — 'auto' is the explicit spelling for
  // "one worker per hardware thread", so a literal 0 is most likely a
  // script bug and must not silently mean something else.
  EXPECT_FALSE(parse({"--jobs=0"}).ok);
  EXPECT_FALSE(parse({"--jobs=-4"}).ok);
  EXPECT_FALSE(parse({"--jobs=four"}).ok);
  EXPECT_FALSE(parse({"--jobs="}).ok);
  EXPECT_FALSE(parse({"--jobs=2x"}).ok);
  EXPECT_FALSE(parse({"--jobs=1025"}).ok);  // above the sanity cap
}

TEST(Cli, TableOneThresholdsAreRangeChecked) {
  // In-range values parse and land in the scenario.
  const CliParseResult r =
      parse({"--alpha=0.3", "--beta=1.5", "--gamma=2.5", "--delta=0.1",
             "--mu=0.5", "--phi=1"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(r.options.scenario.sim.alpha, 0.3);
  EXPECT_DOUBLE_EQ(r.options.scenario.sim.beta, 1.5);
  EXPECT_DOUBLE_EQ(r.options.scenario.sim.gamma, 2.5);
  EXPECT_DOUBLE_EQ(r.options.scenario.sim.delta, 0.1);
  EXPECT_DOUBLE_EQ(r.options.scenario.sim.mu, 0.5);
  EXPECT_DOUBLE_EQ(r.options.scenario.sim.storage_limit, 1.0);

  // alpha is an EWMA weight: the open interval (0, 1).
  EXPECT_FALSE(parse({"--alpha=0"}).ok);
  EXPECT_FALSE(parse({"--alpha=1"}).ok);
  EXPECT_FALSE(parse({"--alpha=-0.2"}).ok);
  EXPECT_FALSE(parse({"--alpha=nope"}).ok);
  // beta / gamma must be positive, delta / mu non-negative.
  EXPECT_FALSE(parse({"--beta=0"}).ok);
  EXPECT_FALSE(parse({"--beta=-1"}).ok);
  EXPECT_FALSE(parse({"--gamma=0"}).ok);
  EXPECT_FALSE(parse({"--delta=-0.1"}).ok);
  EXPECT_FALSE(parse({"--mu=-1"}).ok);
  // phi is a storage fraction: the half-open interval (0, 1].
  EXPECT_FALSE(parse({"--phi=0"}).ok);
  EXPECT_FALSE(parse({"--phi=1.2"}).ok);
  EXPECT_FALSE(parse({"--phi=-0.5"}).ok);
}

TEST(Cli, ConflictingDuplicateFlagsAreErrors) {
  // Last-one-wins would silently discard the user's earlier intent.
  EXPECT_FALSE(parse({"--epochs=10", "--epochs=20"}).ok);
  EXPECT_FALSE(parse({"--seed=1", "--seed=2"}).ok);
  EXPECT_FALSE(parse({"--policy=rfh", "--policy=random"}).ok);
  EXPECT_FALSE(parse({"--jobs=2", "--jobs=4"}).ok);
  const CliParseResult r = parse({"--alpha=0.2", "--alpha=0.9"});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("conflicting duplicate"), std::string::npos);
}

TEST(Cli, IdenticalDuplicateFlagsAreHarmless) {
  const CliParseResult r = parse({"--epochs=10", "--epochs=10"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.options.scenario.epochs, 10u);
}

TEST(Cli, KillStaysRepeatableWithDifferentValues) {
  const CliParseResult r = parse({"--kill=3@5", "--kill=2@9"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.options.failures.size(), 2u);
}

TEST(Cli, KillEventsAreRepeatable) {
  const CliParseResult r = parse({"--kill=30@290", "--kill=5@10"});
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.options.failures.size(), 2u);
  EXPECT_EQ(r.options.failures[0].kill_random, 30u);
  EXPECT_EQ(r.options.failures[0].epoch, 290u);
  EXPECT_EQ(r.options.failures[1].kill_random, 5u);
  EXPECT_EQ(r.options.failures[1].epoch, 10u);
}

TEST(Cli, RejectsMalformedKill) {
  EXPECT_FALSE(parse({"--kill=30"}).ok);
  EXPECT_FALSE(parse({"--kill=@5"}).ok);
  EXPECT_FALSE(parse({"--kill=0@5"}).ok);
  EXPECT_FALSE(parse({"--kill=a@b"}).ok);
}

TEST(Cli, MetricsAreValidated) {
  for (const std::string& name : metric_names()) {
    const CliParseResult r = parse({("--metric=" + name).c_str()});
    EXPECT_TRUE(r.ok) << name;
    EXPECT_EQ(r.options.metric, name);
  }
  EXPECT_FALSE(parse({"--metric=nonsense"}).ok);
}

TEST(Cli, BooleanFlags) {
  const CliParseResult r = parse({"--compare", "--quiet"});
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.options.compare);
  EXPECT_TRUE(r.options.quiet);
}

TEST(Cli, UnknownArgumentIsAnError) {
  const CliParseResult r = parse({"--frobnicate"});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("frobnicate"), std::string::npos);
}

TEST(Cli, MetricValueExtractsEveryKnownName) {
  EpochMetrics m;
  m.utilization = 0.5;
  m.total_replicas = 7;
  m.path_length = 2.5;
  m.load_imbalance = 1.1;
  m.latency_mean_ms = 42.0;
  m.sla_attainment = 0.99;
  m.replication_cost_total = 100.0;
  m.migrations_total = 3;
  m.mean_replica_lag = 1.5;
  m.stale_read_fraction = 0.2;
  m.diversity_level = 4.5;
  m.dropped_this_epoch = 6;
  m.stream_max_queue_depth = 9;
  m.stream_dropped = 11.0;
  m.stream_wait_mean_ms = 12.5;
  m.stream_p99_ms = 250.0;
  bool ok = false;
  EXPECT_DOUBLE_EQ(metric_value(m, "utilization", &ok), 0.5);
  EXPECT_DOUBLE_EQ(metric_value(m, "replicas", &ok), 7.0);
  EXPECT_DOUBLE_EQ(metric_value(m, "path", &ok), 2.5);
  EXPECT_DOUBLE_EQ(metric_value(m, "imbalance", &ok), 1.1);
  EXPECT_DOUBLE_EQ(metric_value(m, "latency", &ok), 42.0);
  EXPECT_DOUBLE_EQ(metric_value(m, "sla", &ok), 0.99);
  EXPECT_DOUBLE_EQ(metric_value(m, "cost", &ok), 100.0);
  EXPECT_DOUBLE_EQ(metric_value(m, "migrations", &ok), 3.0);
  EXPECT_DOUBLE_EQ(metric_value(m, "lag", &ok), 1.5);
  EXPECT_DOUBLE_EQ(metric_value(m, "stale", &ok), 0.2);
  EXPECT_DOUBLE_EQ(metric_value(m, "diversity", &ok), 4.5);
  EXPECT_DOUBLE_EQ(metric_value(m, "dropped", &ok), 6.0);
  EXPECT_DOUBLE_EQ(metric_value(m, "qdepth", &ok), 9.0);
  EXPECT_DOUBLE_EQ(metric_value(m, "qdrop", &ok), 11.0);
  EXPECT_DOUBLE_EQ(metric_value(m, "qwait", &ok), 12.5);
  EXPECT_DOUBLE_EQ(metric_value(m, "qp99", &ok), 250.0);
  EXPECT_TRUE(ok);
  (void)metric_value(m, "bogus", &ok);
  EXPECT_FALSE(ok);
}

TEST(Cli, TraceFlags) {
  const CliParseResult r =
      parse({"--trace-out=run.jsonl", "--trace-format=chrome",
             "--trace-filter=ReplicaAdded,ActionDropped"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.options.trace_out, "run.jsonl");
  EXPECT_EQ(r.options.trace_format, TraceFormat::kChrome);
  EXPECT_EQ(r.options.trace_filter, "ReplicaAdded,ActionDropped");
}

TEST(Cli, TraceDefaultsToJsonlAndNoFilter) {
  const CliParseResult r = parse({"--trace-out=t.jsonl"});
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.options.trace_format, TraceFormat::kJsonl);
  EXPECT_TRUE(r.options.trace_filter.empty());
}

TEST(Cli, TraceRejectsBadFormatEmptyPathAndCompare) {
  EXPECT_FALSE(parse({"--trace-format=xml"}).ok);
  EXPECT_FALSE(parse({"--trace-out="}).ok);
  EXPECT_FALSE(parse({"--trace-out=t.jsonl", "--compare"}).ok);
  // --compare alone stays legal.
  EXPECT_TRUE(parse({"--compare"}).ok);
}

TEST(Cli, MetricsFlags) {
  const CliParseResult r =
      parse({"--metrics-out=metrics.json", "--metrics-format=json"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.options.metrics_out, "metrics.json");
  EXPECT_EQ(r.options.metrics_format, MetricsFormat::kJson);
}

TEST(Cli, MetricsDefaultsToPrometheusAndOff) {
  const CliParseResult defaults = parse({});
  ASSERT_TRUE(defaults.ok);
  EXPECT_TRUE(defaults.options.metrics_out.empty());
  EXPECT_EQ(defaults.options.metrics_format, MetricsFormat::kProm);
  EXPECT_FALSE(defaults.options.profile);

  const CliParseResult r = parse({"--metrics-out=m.prom"});
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.options.metrics_format, MetricsFormat::kProm);
}

TEST(Cli, ProfileFlag) {
  const CliParseResult r = parse({"--profile", "--quiet"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.options.profile);
  // Profiling composes with tracing (PhaseSpans land in the trace).
  EXPECT_TRUE(parse({"--profile", "--trace-out=t.json",
                     "--trace-format=chrome"})
                  .ok);
}

TEST(Cli, TelemetryRejectsBadInputAndCompare) {
  EXPECT_FALSE(parse({"--metrics-out="}).ok);
  EXPECT_FALSE(parse({"--metrics-format=xml"}).ok);
  EXPECT_FALSE(parse({"--metrics-out=m.prom", "--compare"}).ok);
  EXPECT_FALSE(parse({"--profile", "--compare"}).ok);
}

TEST(Cli, MetricsOutDashMeansStdout) {
  const CliParseResult r = parse({"--metrics-out=-"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.options.metrics_out, "-");
}

TEST(Cli, StreamWorkloadAndFlags) {
  const CliParseResult r =
      parse({"--workload=stream", "--arrival-rate=600", "--queue-cap=16",
             "--service-cv=2"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.options.scenario.workload, WorkloadKind::kStream);
  EXPECT_DOUBLE_EQ(r.options.scenario.stream.arrival_rate, 600.0);
  EXPECT_EQ(r.options.scenario.stream.queue_cap, 16u);
  EXPECT_DOUBLE_EQ(r.options.scenario.stream.service_cv, 2.0);
}

TEST(Cli, StreamDefaultsMatchTableOne) {
  const CliParseResult r = parse({"--workload=stream"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(r.options.scenario.stream.arrival_rate, 300.0);
  EXPECT_EQ(r.options.scenario.stream.queue_cap, 32u);
  EXPECT_DOUBLE_EQ(r.options.scenario.stream.service_cv, 1.0);
}

TEST(Cli, StreamFlagsRequireStreamWorkload) {
  // Flag order must not matter: the check runs after the whole parse.
  EXPECT_FALSE(parse({"--arrival-rate=600"}).ok);
  EXPECT_FALSE(parse({"--queue-cap=16", "--workload=flash"}).ok);
  EXPECT_FALSE(parse({"--service-cv=2", "--workload=uniform"}).ok);
  EXPECT_TRUE(parse({"--arrival-rate=600", "--workload=stream"}).ok);
}

TEST(Cli, StreamFlagsAreRangeChecked) {
  EXPECT_FALSE(parse({"--workload=stream", "--arrival-rate=0"}).ok);
  EXPECT_FALSE(parse({"--workload=stream", "--arrival-rate=-5"}).ok);
  EXPECT_FALSE(parse({"--workload=stream", "--arrival-rate=lots"}).ok);
  EXPECT_FALSE(parse({"--workload=stream", "--queue-cap=0"}).ok);
  EXPECT_FALSE(parse({"--workload=stream", "--queue-cap=1000001"}).ok);
  EXPECT_FALSE(parse({"--workload=stream", "--service-cv=-1"}).ok);
  // cv = 0 (deterministic service) is legal.
  EXPECT_TRUE(parse({"--workload=stream", "--service-cv=0"}).ok);
}

}  // namespace
}  // namespace rfh
