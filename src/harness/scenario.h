// Scenario construction: Table I defaults bundled with a workload setting
// and a policy choice, producing ready-to-run Simulations.
#pragma once

#include <memory>
#include <string_view>

#include "core/rfh_policy.h"
#include "fault/plan.h"
#include "sim/engine.h"
#include "stream/config.h"
#include "telemetry/slo.h"
#include "topology/world.h"
#include "workload/generator.h"

namespace rfh {

enum class PolicyKind { kRequest, kOwner, kRandom, kRfh };
/// kStream generates the same per-epoch batches as kUniform (identical
/// RNG consumption, mean = stream.arrival_rate) and additionally runs
/// the src/stream/ queueing layer over them in the runner.
enum class WorkloadKind { kUniform, kFlashCrowd, kHotspotShift, kStream };

std::string_view policy_name(PolicyKind kind) noexcept;

struct Scenario {
  WorldOptions world;
  SimConfig sim;
  WorkloadKind workload = WorkloadKind::kUniform;
  /// Horizon: the paper runs 250 epochs under random query and 400 under
  /// flash crowd.
  Epoch epochs = 250;
  double zipf_exponent = 0.8;
  /// When positive, this fraction of every partition's queries are
  /// writes, and the runner tracks eventual-consistency metrics (replica
  /// lag, stale reads, failover write loss) via ConsistencyTracker.
  /// Purely observational: placement decisions are unaffected.
  double write_fraction = 0.0;
  /// Scheduled chaos (fault/plan.h). When non-empty, the runner drives a
  /// ChaosController seeded from `sim.seed`, so the same scenario injects
  /// the same faults into every compared policy's run.
  FaultPlan fault_plan;
  /// Streaming-load knobs; only consulted when workload == kStream
  /// (--arrival-rate / --queue-cap / --service-cv in the CLI).
  StreamConfig stream;
  /// Service-level objectives (--slo=<spec> in the CLI). When any
  /// objective is enabled the runner drives an SloWatchdog over the
  /// per-epoch metrics and collects its breach episodes. Observational
  /// only: placement decisions are unaffected.
  SloSpec slo;
  /// Intra-epoch worker threads (Simulation::set_jobs): 0 = one per
  /// hardware thread, 1 = serial. Results are byte-identical for every
  /// value, so this is a wall-clock knob only — and deliberately NOT
  /// part of SimConfig, which is serialized into fuzzer case files.
  unsigned engine_jobs = 1;

  /// Table I defaults with the paper's horizons per workload kind.
  static Scenario paper_random_query();
  static Scenario paper_flash_crowd();
  /// Fig. 10: 500 epochs, 30 random servers killed at epoch 290.
  static Scenario paper_failure_recovery();
};

/// Options for the RFH policy when `PolicyKind::kRfh` is instantiated
/// (ablation benches override these).
std::unique_ptr<ReplicationPolicy> make_policy(PolicyKind kind,
                                               const RfhPolicy::Options& rfh =
                                                   {});

std::unique_ptr<WorkloadGenerator> make_workload(const Scenario& scenario,
                                                 const World& world);

/// Fresh world + workload + policy, ready to step().
std::unique_ptr<Simulation> make_simulation(const Scenario& scenario,
                                            PolicyKind kind,
                                            const RfhPolicy::Options& rfh =
                                                {});

}  // namespace rfh
