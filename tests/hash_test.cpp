#include "ring/hash.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace rfh {
namespace {

TEST(Hash64, Deterministic) {
  EXPECT_EQ(hash64("hello"), hash64("hello"));
  EXPECT_EQ(hash64(std::uint64_t{42}), hash64(std::uint64_t{42}));
}

TEST(Hash64, DifferentInputsDiffer) {
  EXPECT_NE(hash64("hello"), hash64("hellp"));
  EXPECT_NE(hash64("hello"), hash64("hell"));
  EXPECT_NE(hash64(std::uint64_t{1}), hash64(std::uint64_t{2}));
  EXPECT_NE(hash64(""), hash64("a"));
}

TEST(Hash64, IntegerAndStringDomainsAreIndependent) {
  // No accidental equality between hash64(uint) and hash64(decimal text).
  EXPECT_NE(hash64(std::uint64_t{123}), hash64("123"));
}

TEST(Hash64, SequentialIntegersSpreadAcrossRange) {
  // Consistent-hashing positions come from sequential ids; they must not
  // cluster. Check that the top byte takes many distinct values.
  std::set<std::uint8_t> top_bytes;
  for (std::uint64_t i = 0; i < 256; ++i) {
    top_bytes.insert(static_cast<std::uint8_t>(hash64(i) >> 56));
  }
  EXPECT_GT(top_bytes.size(), 150u);
}

TEST(Hash64, NoCollisionsOnSmallDomain) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 100000; ++i) {
    seen.insert(hash64(i));
  }
  EXPECT_EQ(seen.size(), 100000u);
}

TEST(HashCombine, OrderDependent) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(HashCombine, Deterministic) {
  EXPECT_EQ(hash_combine(17, 99), hash_combine(17, 99));
}

TEST(HashCombine, SensitiveToBothInputs) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(1, 3));
  EXPECT_NE(hash_combine(1, 2), hash_combine(4, 2));
}

}  // namespace
}  // namespace rfh
