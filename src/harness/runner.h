// Comparative experiment runner: the same scenario (identical world seed,
// workload stream and failure schedule) executed once per policy, so the
// four curves in every figure face byte-identical demand.
#pragma once

#include <array>
#include <vector>

#include "fault/invariants.h"
#include "harness/scenario.h"
#include "metrics/collector.h"
#include "telemetry/profiler.h"
#include "telemetry/registry.h"

namespace rfh {

/// Failure injection applied *before* the given epoch's step.
struct FailureEvent {
  Epoch epoch = 0;
  /// Kill this many uniformly-random live servers.
  std::uint32_t kill_random = 0;
  /// Explicit victims (in addition to kill_random).
  std::vector<ServerId> kill;
  /// Servers to bring back.
  std::vector<ServerId> recover;
};

struct PolicyRun {
  PolicyKind kind = PolicyKind::kRfh;
  std::vector<EpochMetrics> series;
  /// Servers killed by `kill_random` events and by the scenario's fault
  /// plan, in order.
  std::vector<ServerId> killed;
  /// FaultInjected tallies from the scenario's chaos plan (zero without
  /// one), total and per FaultKind.
  std::uint64_t faults_injected = 0;
  std::array<std::uint64_t, kFaultKindCount> faults_by_kind{};
  /// SLO breach episodes flagged by the watchdog, in epoch order (empty
  /// unless the scenario enables objectives via Scenario::slo).
  std::vector<SloBreachRecord> slo_breaches;
};

struct ComparativeResult {
  std::vector<PolicyRun> runs;

  [[nodiscard]] const PolicyRun& run(PolicyKind kind) const;
};

/// Run one policy through the scenario with the failure schedule.
///
/// `trace_sink`, when non-null, is attached to the simulation's EventBus
/// before the first epoch and flushed after the last, so the whole run —
/// failure injection included — lands in the trace.
///
/// `metrics`, when non-null, receives the engine/router/policy counters
/// and gauges (see DESIGN.md "Telemetry") for the whole run. `profiler`,
/// when non-null, times every hot-path phase — including the harness's
/// own metric collection — and is finalized before this returns; it also
/// emits PhaseSpan events into the trace when one is attached. Both are
/// observational only: simulation outputs are bit-identical with or
/// without them.
///
/// When the scenario carries a FaultPlan, a ChaosController applies it
/// before each epoch's step. `checker`, when non-null, verifies the
/// cross-cutting invariants (fault/invariants.h) after every step.
///
/// `recorder`, when non-null, is attached as a second sink — typically a
/// TimelineStore (obs/timeline.h), so the run leaves a bounded causal
/// flight record next to (or instead of) the full trace. When the
/// scenario enables SLO objectives, an SloWatchdog observes every epoch
/// and its breach episodes land in PolicyRun::slo_breaches.
PolicyRun run_policy(const Scenario& scenario, PolicyKind kind,
                     const std::vector<FailureEvent>& failures = {},
                     const RfhPolicy::Options& rfh = {},
                     EventSink* trace_sink = nullptr,
                     MetricRegistry* metrics = nullptr,
                     PhaseProfiler* profiler = nullptr,
                     InvariantChecker* checker = nullptr,
                     EventSink* recorder = nullptr);

/// The paper's standard comparison: Request, Owner, Random, RFH. The four
/// runs are fully independent (each has its own world, generators and
/// seeds), so they execute on concurrent threads; results are
/// bit-identical to running them sequentially.
ComparativeResult run_comparison(const Scenario& scenario,
                                 const std::vector<FailureEvent>& failures =
                                     {});

/// Sequential variant (used by tests to pin down determinism and by
/// callers that must stay single-threaded).
ComparativeResult run_comparison_sequential(
    const Scenario& scenario,
    const std::vector<FailureEvent>& failures = {});

}  // namespace rfh
