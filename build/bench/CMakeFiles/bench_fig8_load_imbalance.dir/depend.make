# Empty dependencies file for bench_fig8_load_imbalance.
# This may be replaced when dependencies are built.
