file(REMOVE_RECURSE
  "CMakeFiles/diversity_test.dir/diversity_test.cpp.o"
  "CMakeFiles/diversity_test.dir/diversity_test.cpp.o.d"
  "diversity_test"
  "diversity_test.pdb"
  "diversity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diversity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
