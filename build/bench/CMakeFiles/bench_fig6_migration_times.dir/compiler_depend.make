# Empty compiler generated dependencies file for bench_fig6_migration_times.
# This may be replaced when dependencies are built.
