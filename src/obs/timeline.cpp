#include "obs/timeline.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstring>

namespace rfh {

namespace {

constexpr std::size_t kRecordBytes = sizeof(TimelineRecord);

/// Finalizer from the splitmix64 generator — a cheap, high-quality
/// 64-bit mix used as the reservoir's sampling key. Keying on the cause
/// id makes the bottom-k keep-set a pure function of *which* records
/// were evicted, independent of eviction order or thread count.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

[[nodiscard]] std::uint16_t to_dc16(DatacenterId dc) noexcept {
  if (!dc.valid() || dc.value() >= TimelineRecord::kNoDc) {
    return TimelineRecord::kNoDc;
  }
  return static_cast<std::uint16_t>(dc.value());
}

struct CondenseVisitor {
  TimelineRecord& rec;

  void operator()(const QueryRoutedSummary& e) const {
    rec.a = e.total_queries;
    rec.b = e.unserved_queries;
  }
  void operator()(const ReplicaAdded& e) const {
    rec.partition = e.partition.value();
    rec.server = e.target.value();
    rec.aux = e.source.value();
    rec.a = e.why.observed;
    rec.b = e.why.threshold;
    rec.code = static_cast<std::uint8_t>(e.why.rule);
  }
  void operator()(const MigrationExecuted& e) const {
    rec.partition = e.partition.value();
    rec.server = e.to.value();
    rec.aux = e.from.value();
    rec.a = e.why.observed;
    rec.b = e.why.threshold;
    rec.code = static_cast<std::uint8_t>(e.why.rule);
  }
  void operator()(const Suicide& e) const {
    rec.partition = e.partition.value();
    rec.server = e.server.value();
    rec.a = e.why.observed;
    rec.b = e.why.threshold;
    rec.code = static_cast<std::uint8_t>(e.why.rule);
  }
  void operator()(const ActionDropped& e) const {
    rec.partition = e.partition.value();
    rec.server = e.target.value();
    rec.code = static_cast<std::uint8_t>(e.reason);
    rec.label = action_kind_name(e.kind);
  }
  void operator()(const ServerFailed& e) const { rec.server = e.server.value(); }
  void operator()(const ServerRecovered& e) const {
    rec.server = e.server.value();
  }
  void operator()(const PrimaryPromoted& e) const {
    rec.partition = e.partition.value();
    rec.server = e.new_primary.value();
  }
  void operator()(const Reseeded& e) const {
    rec.partition = e.partition.value();
    rec.server = e.new_home.value();
  }
  void operator()(const LinkFailed& e) const {
    rec.dc = to_dc16(e.a);
    rec.aux = e.b.value();
  }
  void operator()(const LinkRestored& e) const {
    rec.dc = to_dc16(e.a);
    rec.aux = e.b.value();
  }
  void operator()(const FaultInjected& e) const {
    rec.label = e.kind;
    rec.dc = to_dc16(e.dc);
    rec.server = e.link_a.value();  // link endpoints, when applicable
    rec.aux = e.link_b.value();
    rec.a = static_cast<double>(e.servers);
    rec.b = e.magnitude;
  }
  void operator()(const EpochCompleted& e) const {
    rec.a = static_cast<double>(e.total_replicas);
    rec.b = static_cast<double>(e.dropped_actions);
  }
  void operator()(const PhaseSpan& e) const {
    rec.label = e.phase;
    rec.a = e.wall_ms;
  }
  void operator()(const StreamEpochSummary& e) const {
    rec.a = e.arrivals;
    rec.b = e.dropped;
  }
  void operator()(const QueueSaturated& e) const {
    rec.server = e.server.value();
    rec.dc = to_dc16(e.dc);
    rec.aux = e.cap;
    rec.a = e.dropped;
    rec.b = static_cast<double>(e.max_depth);
  }
  void operator()(const TrafficShift& e) const {
    rec.partition = e.partition.value();
    rec.a = e.q_bar_before;
    rec.b = e.q_bar_after;
  }
  void operator()(const RuleFired& e) const {
    rec.partition = e.partition.value();
    rec.code = static_cast<std::uint8_t>(e.rule);
    rec.a = e.observed;
    rec.b = e.threshold;
  }
  void operator()(const SloBreach& e) const {
    rec.label = e.objective;
    rec.a = e.observed;
    rec.b = e.target;
  }
  void operator()(const StatsFrozen& e) const {
    rec.server = e.server.value();
    rec.a = e.frozen ? 1.0 : 0.0;
  }
  void operator()(const StripeLost& e) const {
    rec.partition = e.partition.value();
    rec.a = static_cast<double>(e.fragments_alive);
  }
  void operator()(const StripeReconstructed& e) const {
    rec.partition = e.partition.value();
  }
};

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  char buf[256];
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  return buf;
}

}  // namespace

TimelineRecord make_timeline_record(const Event& event, const TraceMeta& meta) {
  TimelineRecord rec;
  rec.id = meta.id;
  rec.parent = meta.parent;
  rec.epoch = event_epoch(event);
  rec.type = static_cast<std::uint8_t>(event.index());
  std::visit(CondenseVisitor{rec}, event);
  return rec;
}

// ---------------------------------------------------------------------------
// TimelineStore
// ---------------------------------------------------------------------------

TimelineStore::TimelineStore(std::uint32_t partitions, TimelineOptions options)
    : options_(options) {
  // Budget split: a quarter for the reservoir, an eighth for the global
  // ring, the rest spread over the per-partition rings (clamped so tiny
  // fleets still get history and huge ones stay bounded).
  reservoir_cap_ =
      std::max<std::size_t>(64, options_.byte_budget / 4 / kRecordBytes);
  global_cap_ = std::clamp<std::size_t>(
      options_.byte_budget / 8 / kRecordBytes, std::size_t{64},
      std::size_t{65536});
  const std::size_t fixed = (reservoir_cap_ + global_cap_) * kRecordBytes;
  const std::size_t ring_bytes =
      options_.byte_budget > fixed ? options_.byte_budget - fixed : 0;
  const std::size_t per_partition =
      partitions > 0 ? ring_bytes / partitions / kRecordBytes : 0;
  cap_ = std::clamp(per_partition, options_.min_ring, options_.max_ring);
  rings_.resize(partitions);
}

void TimelineStore::on_event(const Event& event) {
  on_record(event, TraceMeta{});
}

void TimelineStore::on_record(const Event& event, const TraceMeta& meta) {
  if (!options_.keep_summaries) {
    const std::size_t type = event.index();
    if (type == event_type_index<QueryRoutedSummary>() ||
        type == event_type_index<EpochCompleted>() ||
        type == event_type_index<PhaseSpan>()) {
      return;
    }
  }
  const TimelineRecord rec = make_timeline_record(event, meta);
  ++total_;
  ++arrival_;
  if (rec.id != 0) any_id_ = true;
  if (rec.partition != TimelineRecord::kNoEntity &&
      rec.partition < rings_.size()) {
    insert(rings_[rec.partition], cap_, rec);
  } else {
    insert(global_, global_cap_, rec);
  }
}

void TimelineStore::insert(Ring& ring, std::size_t cap,
                           const TimelineRecord& rec) {
  if (cap == 0) return;
  if (ring.buf.size() < cap) {
    ring.buf.push_back(rec);
    return;
  }
  offer_reservoir(ring.buf[ring.head]);
  ring.buf[ring.head] = rec;
  ring.head = ring.head + 1 == cap ? 0 : ring.head + 1;  // no div on hot path
}

void TimelineStore::offer_reservoir(const TimelineRecord& rec) {
  ++evicted_;
  // Id-less records (no bus) get a synthetic key from the eviction
  // counter — still deterministic, since eviction order is.
  const std::uint64_t key =
      splitmix64(rec.id != 0 ? rec.id : (0x8000000000000000ULL | evicted_));
  const auto by_key = [](const auto& lhs, const auto& rhs) {
    return lhs.first < rhs.first;
  };
  if (reservoir_.size() < reservoir_cap_) {
    reservoir_.emplace_back(key, rec);
    std::push_heap(reservoir_.begin(), reservoir_.end(), by_key);
    return;
  }
  if (key >= reservoir_.front().first) return;  // not in the bottom-k
  std::pop_heap(reservoir_.begin(), reservoir_.end(), by_key);
  reservoir_.back() = {key, rec};
  std::push_heap(reservoir_.begin(), reservoir_.end(), by_key);
}

std::size_t TimelineStore::approx_bytes() const noexcept {
  std::size_t records = global_.buf.size() + reservoir_.size();
  for (const Ring& ring : rings_) records += ring.buf.size();
  return records * kRecordBytes;
}

void TimelineStore::append_ring(std::vector<TimelineRecord>& out,
                                const Ring& ring) const {
  // Oldest first: [head, end) then [0, head).
  for (std::size_t i = ring.head; i < ring.buf.size(); ++i) {
    out.push_back(ring.buf[i]);
  }
  for (std::size_t i = 0; i < ring.head; ++i) out.push_back(ring.buf[i]);
}

std::vector<TimelineRecord> TimelineStore::snapshot() const {
  std::vector<TimelineRecord> out;
  out.reserve(approx_bytes() / kRecordBytes);
  for (const Ring& ring : rings_) append_ring(out, ring);
  append_ring(out, global_);
  // Reservoir in deterministic (key, id) order before the merge sort.
  std::vector<std::pair<std::uint64_t, TimelineRecord>> sampled = reservoir_;
  std::sort(sampled.begin(), sampled.end(),
            [](const auto& lhs, const auto& rhs) {
              if (lhs.first != rhs.first) return lhs.first < rhs.first;
              return lhs.second.id < rhs.second.id;
            });
  for (const auto& [key, rec] : sampled) out.push_back(rec);
  // Cause ids are assigned in emission order, so sorting by id restores
  // chronology; id-less records keep their collection order up front.
  std::stable_sort(out.begin(), out.end(),
                   [](const TimelineRecord& lhs, const TimelineRecord& rhs) {
                     return lhs.id < rhs.id;
                   });
  return out;
}

std::uint64_t TimelineStore::digest() const {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  const auto mix = [&hash](const char* text) {
    for (const char* c = text; *c != '\0'; ++c) {
      hash ^= static_cast<unsigned char>(*c);
      hash *= 0x100000001b3ULL;
    }
  };
  char buf[256];
  for (const TimelineRecord& rec : snapshot()) {
    std::snprintf(buf, sizeof buf,
                  "%llu|%llu|%s|%.17g|%.17g|%u|%u|%u|%u|%u|%u|%u\n",
                  static_cast<unsigned long long>(rec.id),
                  static_cast<unsigned long long>(rec.parent),
                  rec.label != nullptr ? rec.label : "", rec.a, rec.b,
                  rec.epoch, rec.partition, rec.server, rec.aux,
                  static_cast<unsigned>(rec.dc),
                  static_cast<unsigned>(rec.type),
                  static_cast<unsigned>(rec.code));
    mix(buf);
  }
  return hash;
}

void TimelineStore::dump_jsonl(std::ostream& out) const {
  char buf[512];
  for (const TimelineRecord& rec : snapshot()) {
    std::string line = format(
        "{\"id\":%llu,\"parent\":%llu,\"type\":\"%s\",\"epoch\":%u",
        static_cast<unsigned long long>(rec.id),
        static_cast<unsigned long long>(rec.parent),
        event_index_name(rec.type), rec.epoch);
    if (rec.partition != TimelineRecord::kNoEntity) {
      line += format(",\"partition\":%u", rec.partition);
    }
    if (rec.server != TimelineRecord::kNoEntity) {
      line += format(",\"server\":%u", rec.server);
    }
    if (rec.aux != TimelineRecord::kNoEntity) {
      line += format(",\"aux\":%u", rec.aux);
    }
    if (rec.dc != TimelineRecord::kNoDc) {
      line += format(",\"dc\":%u", static_cast<unsigned>(rec.dc));
    }
    if (rec.label != nullptr && rec.label[0] != '\0') {
      line += format(",\"label\":\"%s\"", rec.label);
    }
    if (rec.code != 0) line += format(",\"code\":%u",
                                      static_cast<unsigned>(rec.code));
    std::snprintf(buf, sizeof buf, ",\"a\":%.17g,\"b\":%.17g}", rec.a, rec.b);
    line += buf;
    out << line << '\n';
  }
}

// ---------------------------------------------------------------------------
// TimelineQuery
// ---------------------------------------------------------------------------

TimelineQuery::TimelineQuery(const TimelineStore& store)
    : records_(store.snapshot()) {
  build();
}

TimelineQuery::TimelineQuery(std::vector<TimelineRecord> records)
    : records_(std::move(records)) {
  std::stable_sort(records_.begin(), records_.end(),
                   [](const TimelineRecord& lhs, const TimelineRecord& rhs) {
                     return lhs.id < rhs.id;
                   });
  build();
}

void TimelineQuery::build() {
  for (const TimelineRecord& rec : records_) {
    if (rec.partition != TimelineRecord::kNoEntity) {
      partitions_ = std::max(partitions_, rec.partition + 1);
    }
  }
  // CSR: count per partition, prefix-sum, fill (stable, so per-partition
  // lists stay in id order).
  partition_offsets_.assign(partitions_ + 1, 0);
  for (const TimelineRecord& rec : records_) {
    if (rec.partition != TimelineRecord::kNoEntity) {
      ++partition_offsets_[rec.partition + 1];
    }
  }
  for (std::size_t p = 1; p < partition_offsets_.size(); ++p) {
    partition_offsets_[p] += partition_offsets_[p - 1];
  }
  by_partition_index_.resize(partition_offsets_.back());
  std::vector<std::uint32_t> cursor(partition_offsets_.begin(),
                                    partition_offsets_.end() - 1);
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const TimelineRecord& rec = records_[i];
    if (rec.partition != TimelineRecord::kNoEntity) {
      by_partition_index_[cursor[rec.partition]++] =
          static_cast<std::uint32_t>(i);
    }
  }
}

const TimelineRecord* TimelineQuery::find(std::uint64_t id) const {
  if (id == 0) return nullptr;
  const auto it = std::lower_bound(
      records_.begin(), records_.end(), id,
      [](const TimelineRecord& rec, std::uint64_t key) {
        return rec.id < key;
      });
  if (it == records_.end() || it->id != id) return nullptr;
  return &*it;
}

std::vector<TimelineRecord> TimelineQuery::partition_records(
    PartitionId p, Epoch until) const {
  std::vector<TimelineRecord> out;
  if (!p.valid() || p.value() >= partitions_) return out;
  const std::uint32_t begin = partition_offsets_[p.value()];
  const std::uint32_t end = partition_offsets_[p.value() + 1];
  for (std::uint32_t i = begin; i < end; ++i) {
    const TimelineRecord& rec = records_[by_partition_index_[i]];
    if (rec.epoch <= until) out.push_back(rec);
  }
  return out;
}

std::vector<TimelineRecord> TimelineQuery::at_epoch(Epoch e) const {
  std::vector<TimelineRecord> out;
  for (const TimelineRecord& rec : records_) {
    if (rec.epoch == e) out.push_back(rec);
  }
  return out;
}

std::vector<TimelineRecord> TimelineQuery::dc_records(DatacenterId dc) const {
  std::vector<TimelineRecord> out;
  if (!dc.valid()) return out;
  for (const TimelineRecord& rec : records_) {
    const bool as_dc = rec.dc != TimelineRecord::kNoDc && rec.dc == dc.value();
    // Link records store endpoints in (dc, aux) / (server, aux).
    const bool as_link =
        (rec.type == event_type_index<LinkFailed>() ||
         rec.type == event_type_index<LinkRestored>()) &&
        rec.aux == dc.value();
    if (as_dc || as_link) out.push_back(rec);
  }
  return out;
}

std::vector<TimelineRecord> TimelineQuery::chain(std::uint64_t id) const {
  std::vector<TimelineRecord> reversed;
  // Parents always have smaller ids, so chains cannot cycle; the hop cap
  // only guards against corrupted input.
  constexpr std::size_t kMaxHops = 1024;
  const TimelineRecord* rec = find(id);
  while (rec != nullptr && reversed.size() < kMaxHops) {
    reversed.push_back(*rec);
    rec = rec->parent != 0 ? find(rec->parent) : nullptr;
  }
  return {reversed.rbegin(), reversed.rend()};
}

bool TimelineQuery::chain_truncated(std::uint64_t id) const {
  const std::vector<TimelineRecord> links = chain(id);
  return !links.empty() && links.front().parent != 0;
}

std::vector<TimelineRecord> TimelineQuery::why(PartitionId p, Epoch at) const {
  const std::vector<TimelineRecord> history = partition_records(p, at);
  if (history.empty()) return {};
  const auto is_outcome = [](const TimelineRecord& rec) {
    return rec.type == event_type_index<ReplicaAdded>() ||
           rec.type == event_type_index<MigrationExecuted>() ||
           rec.type == event_type_index<Suicide>() ||
           rec.type == event_type_index<ActionDropped>() ||
           rec.type == event_type_index<PrimaryPromoted>() ||
           rec.type == event_type_index<Reseeded>();
  };
  const TimelineRecord* pick = nullptr;
  for (const TimelineRecord& rec : history) {
    if (is_outcome(rec)) pick = &rec;  // latest outcome wins
  }
  if (pick == nullptr) pick = &history.back();
  if (pick->id == 0) return {*pick};  // flat timeline: no chain to walk
  return chain(pick->id);
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

namespace {

std::string rule_suffix(const TimelineRecord& rec) {
  const auto rule = static_cast<DecisionRule>(rec.code);
  if (rule == DecisionRule::kNone) return "";
  return format(" because %s (%s): %.3g vs %.3g", rule_name(rule),
                rule_inequality(rule), rec.a, rec.b);
}

std::string server_or_dash(std::uint32_t server) {
  return server != TimelineRecord::kNoEntity ? format("%u", server) : "-";
}

}  // namespace

std::string describe_record(const TimelineRecord& rec) {
  const std::size_t t = rec.type;
  if (t == event_type_index<ServerFailed>()) {
    return format("server %u failed", rec.server);
  }
  if (t == event_type_index<ServerRecovered>()) {
    return format("server %u recovered", rec.server);
  }
  if (t == event_type_index<ReplicaAdded>()) {
    return format("partition %u replicated: server %u -> server %u",
                  rec.partition, rec.aux, rec.server) +
           rule_suffix(rec);
  }
  if (t == event_type_index<MigrationExecuted>()) {
    return format("partition %u migrated: server %u -> server %u",
                  rec.partition, rec.aux, rec.server) +
           rule_suffix(rec);
  }
  if (t == event_type_index<Suicide>()) {
    return format("partition %u copy on server %u suicided", rec.partition,
                  rec.server) +
           rule_suffix(rec);
  }
  if (t == event_type_index<ActionDropped>()) {
    return format("partition %u %s dropped (%s, target server %s)",
                  rec.partition, rec.label != nullptr ? rec.label : "action",
                  drop_reason_name(static_cast<DropReason>(rec.code)),
                  server_or_dash(rec.server).c_str());
  }
  if (t == event_type_index<PrimaryPromoted>()) {
    return format("partition %u promoted server %u to primary", rec.partition,
                  rec.server);
  }
  if (t == event_type_index<Reseeded>()) {
    return format("partition %u lost all copies; reseeded empty at "
                  "server %u (data loss)",
                  rec.partition, rec.server);
  }
  if (t == event_type_index<LinkFailed>()) {
    return format("link between datacenters %u and %u failed",
                  static_cast<unsigned>(rec.dc), rec.aux);
  }
  if (t == event_type_index<LinkRestored>()) {
    return format("link between datacenters %u and %u restored",
                  static_cast<unsigned>(rec.dc), rec.aux);
  }
  if (t == event_type_index<FaultInjected>()) {
    std::string text =
        format("chaos injected %s", rec.label != nullptr ? rec.label : "?");
    if (rec.a > 0) text += format(" (%.0f servers)", rec.a);
    if (rec.dc != TimelineRecord::kNoDc) {
      text += format(" [dc %u]", static_cast<unsigned>(rec.dc));
    }
    if (rec.server != TimelineRecord::kNoEntity &&
        rec.aux != TimelineRecord::kNoEntity) {
      text += format(" [link %u-%u]", rec.server, rec.aux);
    }
    if (rec.b != 0.0) text += format(" [x%.3g traffic]", rec.b);
    return text;
  }
  if (t == event_type_index<TrafficShift>()) {
    return format("partition %u demand shifted: q_bar %.3g -> %.3g",
                  rec.partition, rec.a, rec.b);
  }
  if (t == event_type_index<RuleFired>()) {
    const auto rule = static_cast<DecisionRule>(rec.code);
    return format("partition %u rule %s fired: %s — %.3g vs %.3g",
                  rec.partition, rule_name(rule), rule_inequality(rule),
                  rec.a, rec.b);
  }
  if (t == event_type_index<SloBreach>()) {
    return format("SLO %s breached: %.4g vs target %.4g",
                  rec.label != nullptr ? rec.label : "?", rec.a, rec.b);
  }
  if (t == event_type_index<StatsFrozen>()) {
    return format("server %u traffic stats %s", rec.server,
                  rec.a != 0.0 ? "frozen (stale reports)" : "thawed");
  }
  if (t == event_type_index<StripeLost>()) {
    return format("partition %u stripe lost: %.0f fragments alive, below "
                  "the reconstruction threshold k (data loss)",
                  rec.partition, rec.a);
  }
  if (t == event_type_index<StripeReconstructed>()) {
    return format("partition %u stripe reconstructed: k live fragments "
                  "restored",
                  rec.partition);
  }
  if (t == event_type_index<QueueSaturated>()) {
    return format("server %u (dc %u) queue saturated: depth %.0f/%u, "
                  "%.0f dropped",
                  rec.server, static_cast<unsigned>(rec.dc), rec.b, rec.aux,
                  rec.a);
  }
  if (t == event_type_index<StreamEpochSummary>()) {
    return format("stream: %.0f arrivals, %.0f dropped", rec.a, rec.b);
  }
  if (t == event_type_index<QueryRoutedSummary>()) {
    return format("routed %.0f queries (%.0f unserved)", rec.a, rec.b);
  }
  if (t == event_type_index<EpochCompleted>()) {
    return format("epoch done: %.0f replicas, %.0f dropped actions", rec.a,
                  rec.b);
  }
  if (t == event_type_index<PhaseSpan>()) {
    return format("phase %s took %.3f ms",
                  rec.label != nullptr ? rec.label : "?", rec.a);
  }
  return event_index_name(t);
}

std::string render_chain(std::span<const TimelineRecord> chain,
                         bool truncated) {
  std::string out;
  if (chain.empty()) return out;
  if (truncated) {
    out += "(earlier causes evicted from the flight recorder)\n";
  }
  for (std::size_t depth = 0; depth < chain.size(); ++depth) {
    const TimelineRecord& rec = chain[depth];
    out.append(2 * depth, ' ');
    if (depth > 0) out += "`- ";
    out += format("[#%llu] epoch %4u %-18s ",
                  static_cast<unsigned long long>(rec.id), rec.epoch,
                  event_index_name(rec.type));
    out += describe_record(rec);
    out += '\n';
  }
  return out;
}

}  // namespace rfh
