// RAII wall-clock profiler for the epoch hot path.
//
// The engine's step() is a fixed pipeline (workload generation -> routing
// -> smoothed-stats update -> policy decide -> action apply) and the
// runner appends metric collection; each of those is a Phase. A
// PhaseProfiler accumulates per-phase wall time across epochs, and the
// breakdown is reported three ways:
//
//  * write_table() — the rfh_cli --profile per-phase table;
//  * attach_registry() — rfh_phase_duration_ms{phase=...} and
//    rfh_epoch_duration_ms histograms in a MetricRegistry;
//  * set_trace() — PhaseSpan events into the simulation's EventBus, so a
//    Chrome trace opens each epoch slice into nested phase slices in
//    Perfetto.
//
// Zero-cost when disabled: every instrumentation site holds a
// PhaseProfiler* that is null unless profiling was requested, and
// ScopedTimer's constructor/destructor reduce to one pointer test each —
// the same guard pattern as EventBus::emit. Timing is observational only:
// measured durations never feed simulation state, so profiled and
// unprofiled runs are bit-identical (asserted by obs_integration_test).
//
// Epoch windows: begin_epoch(e) closes the previous window and opens a
// new one, so a window spans one full runner-loop iteration (step plus
// metric collection plus anything between steps). finalize() closes the
// last window; it is idempotent and implied by write_table().
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <ostream>

#include "common/units.h"

namespace rfh {

class EventBus;
class MetricRegistry;
class HistogramMetric;

/// The epoch hot-path phases, in execution order.
enum class Phase : std::uint8_t {
  kWorkloadGen = 0,  // WorkloadGenerator::generate
  kRouting,          // Simulation::propagate (route + absorb every flow)
  kStatsUpdate,      // TrafficStats::update + routing summary
  kPolicyDecide,     // ReplicationPolicy::decide
  kActionApply,      // apply_actions + epoch bookkeeping
  kStreamAssign,     // StreamSimulator::process_epoch (runner side)
  kMetricsCollect,   // MetricsCollector::collect (runner side)
};
inline constexpr std::size_t kPhaseCount = 7;

[[nodiscard]] const char* phase_name(Phase phase) noexcept;

class PhaseProfiler {
 public:
  using Clock = std::chrono::steady_clock;

  PhaseProfiler() = default;
  PhaseProfiler(const PhaseProfiler&) = delete;
  PhaseProfiler& operator=(const PhaseProfiler&) = delete;

  /// Emit PhaseSpan events for each closed epoch window into `bus`
  /// (nullptr detaches). Spans are only built when the bus has sinks.
  void set_trace(EventBus* bus) noexcept { trace_ = bus; }

  /// Record phase/epoch duration histograms into `registry` from now on.
  void attach_registry(MetricRegistry& registry);

  /// Close the previous epoch window (if any) and open one for `epoch`.
  void begin_epoch(Epoch epoch);
  /// Close the open window. Idempotent; call after the last epoch.
  void finalize();

  /// One ScopedTimer completion for `phase` over [start, end).
  void record(Phase phase, Clock::time_point start, Clock::time_point end);

  struct PhaseTotals {
    std::uint64_t calls = 0;
    double total_ms = 0.0;
    double max_ms = 0.0;
  };
  [[nodiscard]] PhaseTotals totals(Phase phase) const noexcept;
  /// Closed epoch windows so far.
  [[nodiscard]] std::uint64_t epochs() const noexcept { return epochs_; }
  /// Wall time inside closed epoch windows, ms.
  [[nodiscard]] double epoch_wall_ms() const noexcept;
  /// Sum of per-phase totals / epoch_wall_ms (0 before any window
  /// closes). The phases blanket step(), so this sits near 1.0; the
  /// remainder is loop glue outside any timer.
  [[nodiscard]] double coverage() const noexcept;

  /// Per-phase breakdown table (finalizes first). Every line is prefixed
  /// with `line_prefix` so the CLI can keep its output CSV-comment-safe.
  void write_table(std::ostream& out, const char* line_prefix = "");

 private:
  void close_window();

  struct Lifetime {
    std::uint64_t calls = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;
  };
  struct InEpoch {
    std::uint64_t accum_ns = 0;
    std::uint64_t first_start_ns = 0;  // offset from the window start
    bool seen = false;
  };

  std::array<Lifetime, kPhaseCount> lifetime_{};
  std::array<InEpoch, kPhaseCount> in_epoch_{};
  bool window_open_ = false;
  Epoch window_epoch_ = 0;
  Clock::time_point window_start_{};
  std::uint64_t epochs_ = 0;
  std::uint64_t epoch_wall_ns_ = 0;

  EventBus* trace_ = nullptr;
  MetricRegistry* registry_ = nullptr;
  std::array<HistogramMetric*, kPhaseCount> phase_hist_{};
  HistogramMetric* epoch_hist_ = nullptr;
};

/// Times one scope into a phase; a null profiler makes both ends a single
/// pointer test (the disabled path never reads the clock).
class ScopedTimer {
 public:
  ScopedTimer(PhaseProfiler* profiler, Phase phase) noexcept
      : profiler_(profiler), phase_(phase) {
    if (profiler_ != nullptr) start_ = PhaseProfiler::Clock::now();
  }
  ~ScopedTimer() {
    if (profiler_ != nullptr) {
      profiler_->record(phase_, start_, PhaseProfiler::Clock::now());
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  PhaseProfiler* profiler_;
  Phase phase_;
  PhaseProfiler::Clock::time_point start_{};
};

}  // namespace rfh
