// FaultPlan: grammar parsing, validation, error reporting, and the
// golden-file round-trip (parse -> serialize -> parse is the identity).
#include <gtest/gtest.h>

#include <string>

#include "fault/plan.h"

namespace rfh {
namespace {

FaultEvent crash_at(Epoch at, std::uint32_t count) {
  FaultEvent e;
  e.kind = FaultKind::kCrash;
  e.at = at;
  e.count = count;
  return e;
}

// --- programmatic construction and validation --------------------------

TEST(FaultPlanValidate, AcceptsEveryWellFormedKind) {
  FaultEvent recover;
  recover.kind = FaultKind::kRecover;
  recover.at = 9;
  recover.servers = {ServerId{1}, ServerId{2}};

  FaultEvent outage;
  outage.kind = FaultKind::kDatacenterOutage;
  outage.at = 5;
  outage.dc = DatacenterId{3};

  FaultEvent link;
  link.kind = FaultKind::kLinkDown;
  link.at = 2;
  link.link_a = DatacenterId{0};
  link.link_b = DatacenterId{4};
  link.restore_at = 8;

  FaultEvent flap;
  flap.kind = FaultKind::kLinkFlap;
  flap.at = 1;
  flap.until = 21;
  flap.link_a = DatacenterId{1};
  flap.link_b = DatacenterId{2};
  flap.period = 5;
  flap.down = 5;  // boundary: down == period is legal

  FaultEvent churn;
  churn.kind = FaultKind::kChurn;
  churn.at = 0;
  churn.until = 50;
  churn.period = 10;
  churn.kill = 2;

  FaultEvent crowd;
  crowd.kind = FaultKind::kFlashCrowd;
  crowd.at = 7;
  crowd.duration = 3;
  crowd.factor = 5.0;

  for (const FaultEvent& e :
       {crash_at(4, 2), recover, outage, link, flap, churn, crowd}) {
    EXPECT_EQ(validate_fault_event(e), "") << fault_kind_name(e.kind);
  }
}

TEST(FaultPlanValidate, RejectsMalformedEvents) {
  // crash: count and servers are mutually exclusive, one required.
  FaultEvent both = crash_at(1, 2);
  both.servers = {ServerId{1}};
  EXPECT_NE(validate_fault_event(both), "");
  EXPECT_NE(validate_fault_event(crash_at(1, 0)), "");

  FaultEvent outage;
  outage.kind = FaultKind::kDatacenterOutage;
  outage.at = 5;  // dc missing
  EXPECT_NE(validate_fault_event(outage), "");

  FaultEvent self_link;
  self_link.kind = FaultKind::kLinkDown;
  self_link.at = 1;
  self_link.link_a = DatacenterId{2};
  self_link.link_b = DatacenterId{2};
  EXPECT_NE(validate_fault_event(self_link), "");

  FaultEvent flap;
  flap.kind = FaultKind::kLinkFlap;
  flap.at = 10;
  flap.until = 5;  // window ends before it starts
  flap.link_a = DatacenterId{0};
  flap.link_b = DatacenterId{1};
  flap.period = 4;
  flap.down = 2;
  EXPECT_NE(validate_fault_event(flap), "");
  flap.until = 30;
  flap.down = 5;  // down > period
  EXPECT_NE(validate_fault_event(flap), "");

  FaultEvent churn;
  churn.kind = FaultKind::kChurn;
  churn.at = 0;
  churn.until = 10;
  churn.period = 2;
  churn.kill = 0;  // must kill someone
  EXPECT_NE(validate_fault_event(churn), "");

  FaultEvent crowd;
  crowd.kind = FaultKind::kFlashCrowd;
  crowd.at = 0;
  crowd.duration = 5;
  crowd.factor = 0.0;  // must be positive
  EXPECT_NE(validate_fault_event(crowd), "");
}

TEST(FaultPlan, HorizonCoversDelayedEffects) {
  FaultPlan plan;
  plan.add(crash_at(30, 1));
  EXPECT_EQ(plan.horizon(), 30u);

  FaultEvent outage;
  outage.kind = FaultKind::kDatacenterOutage;
  outage.at = 40;
  outage.dc = DatacenterId{1};
  outage.recover_after = 25;
  plan.add(outage);
  EXPECT_EQ(plan.horizon(), 65u);  // recovery epoch, not injection epoch

  FaultEvent crowd;
  crowd.kind = FaultKind::kFlashCrowd;
  crowd.at = 60;
  crowd.duration = 10;
  crowd.factor = 2.0;
  plan.add(crowd);
  EXPECT_EQ(plan.horizon(), 70u);
}

// --- parse errors -------------------------------------------------------

TEST(FaultPlanParse, ReportsLineAndField) {
  const auto bad_kind = FaultPlan::parse("crash at=1 count=1\nboom at=2\n");
  ASSERT_FALSE(bad_kind.ok);
  EXPECT_NE(bad_kind.error.find("line 2"), std::string::npos)
      << bad_kind.error;
  EXPECT_NE(bad_kind.error.find("boom"), std::string::npos);

  const auto bad_value = FaultPlan::parse("crash at=1 count=zero\n");
  ASSERT_FALSE(bad_value.ok);
  EXPECT_NE(bad_value.error.find("line 1"), std::string::npos);
  EXPECT_NE(bad_value.error.find("'count'"), std::string::npos)
      << bad_value.error;
  EXPECT_NE(bad_value.error.find("zero"), std::string::npos);

  const auto missing_at = FaultPlan::parse("# header\n\ncrash count=3\n");
  ASSERT_FALSE(missing_at.ok);
  EXPECT_NE(missing_at.error.find("line 3"), std::string::npos)
      << missing_at.error;
  EXPECT_NE(missing_at.error.find("'at'"), std::string::npos);

  const auto bad_semantics =
      FaultPlan::parse("flap at=5 until=50 a=1 b=1 period=4 down=2\n");
  ASSERT_FALSE(bad_semantics.ok);
  EXPECT_NE(bad_semantics.error.find("line 1"), std::string::npos);
  EXPECT_NE(bad_semantics.error.find("must differ"), std::string::npos)
      << bad_semantics.error;

  const auto unknown_field = FaultPlan::parse("crash at=1 count=2 wat=3\n");
  ASSERT_FALSE(unknown_field.ok);
  EXPECT_NE(unknown_field.error.find("'wat'"), std::string::npos)
      << unknown_field.error;

  const auto missing_file = FaultPlan::parse_file("/no/such/plan.txt");
  ASSERT_FALSE(missing_file.ok);
  EXPECT_NE(missing_file.error.find("/no/such/plan.txt"), std::string::npos);
}

TEST(FaultPlanParse, ToleratesCommentsAndWhitespace) {
  const auto parsed = FaultPlan::parse(
      "# full-line comment\n"
      "\n"
      "  crash   at=3\tcount=2   # trailing comment\n"
      "\t\n");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  ASSERT_EQ(parsed.plan.size(), 1u);
  EXPECT_EQ(parsed.plan.events()[0].at, 3u);
  EXPECT_EQ(parsed.plan.events()[0].count, 2u);
}

TEST(FaultPlanParse, ExplicitServerLists) {
  const auto parsed = FaultPlan::parse("recover at=9 servers=4,0,19\n");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const std::vector<ServerId> want{ServerId{4}, ServerId{0}, ServerId{19}};
  EXPECT_EQ(parsed.plan.events()[0].servers, want);

  const auto bad = FaultPlan::parse("recover at=9 servers=4,x\n");
  ASSERT_FALSE(bad.ok);
  EXPECT_NE(bad.error.find("'servers'"), std::string::npos) << bad.error;
}

// --- golden round-trip --------------------------------------------------

TEST(FaultPlanGolden, CheckedInSpecRoundTrips) {
  const std::string path =
      std::string(RFH_TEST_DATA_DIR) + "/fault_plan_golden.plan";
  const auto first = FaultPlan::parse_file(path);
  ASSERT_TRUE(first.ok) << first.error;

  // The golden file exercises every event kind.
  bool seen[kFaultKindCount] = {};
  for (const FaultEvent& e : first.plan.events()) {
    seen[static_cast<std::size_t>(e.kind)] = true;
  }
  for (std::size_t k = 0; k < kFaultKindCount; ++k) {
    EXPECT_TRUE(seen[k]) << "golden plan misses kind "
                         << fault_kind_name(static_cast<FaultKind>(k));
  }

  // parse -> serialize -> parse is the identity on the event list...
  const std::string canonical = first.plan.serialize();
  const auto second = FaultPlan::parse(canonical);
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_EQ(first.plan, second.plan);

  // ...and serialize itself is a fixed point from then on.
  EXPECT_EQ(second.plan.serialize(), canonical);
}

}  // namespace
}  // namespace rfh
