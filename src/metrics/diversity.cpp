#include "metrics/diversity.h"

#include <algorithm>

namespace rfh {

std::uint32_t partition_diversity_level(const ClusterState& cluster,
                                        const Topology& topology,
                                        PartitionId p) {
  const auto replicas = cluster.replicas_of(p);
  if (replicas.size() < 2) return 0;
  std::uint32_t best = 1;
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    for (std::size_t j = i + 1; j < replicas.size(); ++j) {
      best = std::max(best, topology.availability_level(replicas[i].server,
                                                        replicas[j].server));
      if (best == 5) return 5;  // cannot improve further
    }
  }
  return best;
}

double mean_diversity_level(const ClusterState& cluster,
                            const Topology& topology) {
  const std::uint32_t partitions = cluster.config().partitions;
  if (partitions == 0) return 0.0;
  double sum = 0.0;
  for (std::uint32_t p = 0; p < partitions; ++p) {
    sum += partition_diversity_level(cluster, topology, PartitionId{p});
  }
  return sum / partitions;
}

double datacenter_survivable_fraction(const ClusterState& cluster,
                                      const Topology& topology) {
  const std::uint32_t partitions = cluster.config().partitions;
  if (partitions == 0) return 0.0;
  std::uint32_t survivable = 0;
  for (std::uint32_t p = 0; p < partitions; ++p) {
    if (partition_diversity_level(cluster, topology, PartitionId{p}) == 5) {
      ++survivable;
    }
  }
  return static_cast<double>(survivable) / partitions;
}

}  // namespace rfh
