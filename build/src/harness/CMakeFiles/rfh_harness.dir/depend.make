# Empty dependencies file for rfh_harness.
# This may be replaced when dependencies are built.
