// The differential harness: runs the optimized engine and the naive
// ReferenceEngine in lock-step over one CheckCase and cross-checks them
// after every epoch — placements, applied decisions (with their
// DecisionRule), traffic totals, smoothed statistics, drop tallies and
// replica counts must match exactly (doubles compared bit-for-bit: both
// sides perform the same FP operations in the same order, so any
// difference is a real behavioural divergence, not rounding).
//
// Fault mirroring: the engine run is driven by a ChaosController when
// the case carries a fault plan; the harness replays the engine's
// pre-step event stream (ServerFailed batches, ServerRecovered,
// LinkFailed / LinkRestored, the traffic multiplier) into the reference
// engine, so both sides see the identical failure schedule without the
// reference depending on the chaos RNG.
//
// On divergence the harness stops and reports the first mismatch:
// epoch, quantity, and the partition / server / values involved. The
// InvariantChecker (fault/invariants.h) runs after every epoch too, so
// a case that breaks an invariant without diverging still fails.
#pragma once

#include <string>

#include "check/case.h"

namespace rfh {

struct DiffOutcome {
  /// True when every epoch matched and no invariant fired.
  bool ok = true;
  /// Epochs actually executed (== the case's horizon when ok).
  Epoch epochs_run = 0;

  // --- set when !ok ------------------------------------------------------
  /// First divergent epoch.
  Epoch epoch = 0;
  /// The mismatching quantity ("node_traffic", "applied[2].rule", ...),
  /// or the invariant name when invariant_failure is set.
  std::string quantity;
  /// Human-readable specifics: partition / server and both sides' values.
  std::string detail;
  /// True when the InvariantChecker (not the engine/reference diff)
  /// flagged the epoch.
  bool invariant_failure = false;

  /// One-line report ("ok after N epochs" / "divergence at epoch E: ...").
  [[nodiscard]] std::string to_string() const;
};

/// Execute the case end-to-end, stopping at the first divergence or
/// invariant violation.
[[nodiscard]] DiffOutcome run_check_case(const CheckCase& c);

}  // namespace rfh
