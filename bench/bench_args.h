// Shared argument handling for the bench_* drivers.
//
// Every bench accepts --jobs=N (worker threads for its sweep fan-out;
// exec/sweep.h semantics: 0 = one per hardware thread, 1 = serial) or the
// RFH_JOBS environment variable when the flag is absent. Parallelism is
// purely a scheduling knob: every bench's figures and BENCH_*.json
// metrics are bit-identical for every jobs value.
#pragma once

#include <cstdlib>
#include <cstring>

namespace rfh {

/// First --jobs=N among argv[1..], else $RFH_JOBS, else 0 (hardware).
inline unsigned bench_jobs(int argc, char** argv) {
  const char* text = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--jobs=", 7) == 0) text = argv[i] + 7;
  }
  if (text == nullptr) text = std::getenv("RFH_JOBS");
  if (text == nullptr) return 0;
  const long value = std::strtol(text, nullptr, 10);
  return value > 0 ? static_cast<unsigned>(value) : 0;
}

}  // namespace rfh
