#include "harness/scenario.h"

#include "baselines/owner_policy.h"
#include "baselines/random_policy.h"
#include "baselines/request_policy.h"
#include "common/assert.h"

namespace rfh {

std::string_view policy_name(PolicyKind kind) noexcept {
  switch (kind) {
    case PolicyKind::kRequest: return "Request";
    case PolicyKind::kOwner: return "Owner";
    case PolicyKind::kRandom: return "Random";
    case PolicyKind::kRfh: return "RFH";
  }
  return "?";
}

Scenario Scenario::paper_random_query() {
  Scenario s;
  s.workload = WorkloadKind::kUniform;
  s.epochs = 250;
  return s;
}

Scenario Scenario::paper_flash_crowd() {
  Scenario s;
  s.workload = WorkloadKind::kFlashCrowd;
  s.epochs = 400;
  return s;
}

Scenario Scenario::paper_failure_recovery() {
  Scenario s;
  s.workload = WorkloadKind::kUniform;
  s.epochs = 500;
  return s;
}

std::unique_ptr<ReplicationPolicy> make_policy(PolicyKind kind,
                                               const RfhPolicy::Options& rfh) {
  switch (kind) {
    case PolicyKind::kRequest:
      return std::make_unique<RequestOrientedPolicy>();
    case PolicyKind::kOwner:
      return std::make_unique<OwnerOrientedPolicy>();
    case PolicyKind::kRandom:
      return std::make_unique<RandomPolicy>();
    case PolicyKind::kRfh:
      return std::make_unique<RfhPolicy>(rfh);
  }
  RFH_UNREACHABLE("unknown policy kind");
}

std::unique_ptr<WorkloadGenerator> make_workload(const Scenario& scenario,
                                                 const World& world) {
  WorkloadParams params;
  params.partitions = scenario.sim.partitions;
  params.datacenters =
      static_cast<std::uint32_t>(world.topology.datacenter_count());
  params.zipf_exponent = scenario.zipf_exponent;
  switch (scenario.workload) {
    case WorkloadKind::kUniform:
      return std::make_unique<UniformWorkload>(params);
    case WorkloadKind::kFlashCrowd:
      return std::make_unique<FlashCrowdWorkload>(
          params, FlashCrowdWorkload::paper_stages(world.dc),
          scenario.epochs);
    case WorkloadKind::kHotspotShift:
      return std::make_unique<HotspotShiftWorkload>(
          params, /*phase_epochs=*/scenario.epochs / 4 + 1);
    case WorkloadKind::kStream:
      // Batch equivalence by construction: the stream workload *is* the
      // uniform generator (same RNG stream, mean = arrival_rate, which
      // defaults to the Table I lambda), so stream and uniform runs at
      // the same seed produce identical batches and the queueing layer
      // only decides arrival times. Popularity drift opts into the
      // hotspot-shift generator instead.
      params.mean_queries_per_epoch = scenario.stream.arrival_rate;
      if (scenario.stream.drift_period > 0) {
        return std::make_unique<HotspotShiftWorkload>(
            params, scenario.stream.drift_period,
            scenario.stream.hotspot_drift);
      }
      return std::make_unique<UniformWorkload>(params);
  }
  RFH_UNREACHABLE("unknown workload kind");
}

std::unique_ptr<Simulation> make_simulation(const Scenario& scenario,
                                            PolicyKind kind,
                                            const RfhPolicy::Options& rfh) {
  World world = build_paper_world(scenario.world);
  auto workload = make_workload(scenario, world);
  auto policy = make_policy(kind, rfh);
  auto sim = std::make_unique<Simulation>(std::move(world), scenario.sim,
                                          std::move(workload),
                                          std::move(policy));
  if (scenario.engine_jobs != 1) sim->set_jobs(scenario.engine_jobs);
  return sim;
}

}  // namespace rfh
