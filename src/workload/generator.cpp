#include "workload/generator.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace rfh {

QueryBatch sample_batch(double mean_total, const ZipfSampler& partitions,
                        std::span<const double> requester_weights,
                        std::uint32_t partition_rotation, Rng& rng) {
  const std::uint64_t total = rng.poisson(mean_total);
  const DiscreteSampler requesters(requester_weights);

  // Aggregate counts per (partition, requester).
  const std::size_t n_partitions = partitions.size();
  const std::size_t n_requesters = requester_weights.size();
  std::vector<double> counts(n_partitions * n_requesters, 0.0);
  for (std::uint64_t q = 0; q < total; ++q) {
    const std::size_t rank = partitions.sample(rng);
    const std::size_t partition =
        (rank + partition_rotation) % n_partitions;
    const std::size_t requester = requesters.sample(rng);
    counts[partition * n_requesters + requester] += 1.0;
  }

  QueryBatch batch;
  for (std::size_t p = 0; p < n_partitions; ++p) {
    for (std::size_t r = 0; r < n_requesters; ++r) {
      const double c = counts[p * n_requesters + r];
      if (c > 0.0) {
        batch.push_back(QueryFlow{
            PartitionId{static_cast<std::uint32_t>(p)},
            DatacenterId{static_cast<std::uint32_t>(r)}, c});
      }
    }
  }
  return batch;
}

namespace {

std::vector<double> uniform_weights(std::uint32_t n) {
  return std::vector<double>(n, 1.0);
}

std::vector<double> stage_weights(const FlashStage& stage,
                                  std::uint32_t n_datacenters) {
  if (stage.hot_dcs.empty()) return uniform_weights(n_datacenters);
  RFH_ASSERT(stage.hot_share > 0.0 && stage.hot_share < 1.0);
  RFH_ASSERT(stage.hot_dcs.size() < n_datacenters);
  const double hot_each =
      stage.hot_share / static_cast<double>(stage.hot_dcs.size());
  const double cold_each =
      (1.0 - stage.hot_share) /
      static_cast<double>(n_datacenters - stage.hot_dcs.size());
  std::vector<double> weights(n_datacenters, cold_each);
  for (const DatacenterId dc : stage.hot_dcs) {
    RFH_ASSERT(dc.value() < n_datacenters);
    weights[dc.value()] = hot_each;
  }
  return weights;
}

}  // namespace

UniformWorkload::UniformWorkload(const WorkloadParams& params)
    : params_(params),
      partition_sampler_(params.partitions, params.zipf_exponent) {}

QueryBatch UniformWorkload::generate(Epoch /*epoch*/, Rng& rng) {
  const auto weights = uniform_weights(params_.datacenters);
  return sample_batch(params_.mean_queries_per_epoch, partition_sampler_,
                      weights, /*partition_rotation=*/0, rng);
}

FlashCrowdWorkload::FlashCrowdWorkload(const WorkloadParams& params,
                                       std::vector<FlashStage> stages,
                                       Epoch total_epochs)
    : params_(params),
      partition_sampler_(params.partitions, params.zipf_exponent),
      stages_(std::move(stages)),
      total_epochs_(total_epochs) {
  RFH_ASSERT(!stages_.empty());
  RFH_ASSERT(total_epochs_ > 0);
}

std::size_t FlashCrowdWorkload::stage_at(Epoch epoch) const noexcept {
  const Epoch clamped = std::min(epoch, static_cast<Epoch>(total_epochs_ - 1));
  const std::size_t stage =
      static_cast<std::size_t>(clamped) * stages_.size() / total_epochs_;
  return std::min(stage, stages_.size() - 1);
}

QueryBatch FlashCrowdWorkload::generate(Epoch epoch, Rng& rng) {
  const auto weights =
      stage_weights(stages_[stage_at(epoch)], params_.datacenters);
  return sample_batch(params_.mean_queries_per_epoch, partition_sampler_,
                      weights, /*partition_rotation=*/0, rng);
}

std::vector<FlashStage> FlashCrowdWorkload::paper_stages(
    const std::vector<DatacenterId>& dc_by_letter) {
  RFH_ASSERT(dc_by_letter.size() >= 10);
  auto dcs = [&](const char* letters) {
    std::vector<DatacenterId> out;
    for (const char* c = letters; *c != '\0'; ++c) {
      out.push_back(dc_by_letter[static_cast<std::size_t>(*c - 'A')]);
    }
    return out;
  };
  return {
      FlashStage{dcs("HIJ"), 0.8},
      FlashStage{dcs("ABC"), 0.8},
      FlashStage{dcs("EFG"), 0.8},
      FlashStage{{}, 0.8},  // uniform
  };
}

DiurnalWorkload::DiurnalWorkload(const WorkloadParams& params,
                                 Epoch period_epochs, double amplitude)
    : params_(params),
      partition_sampler_(params.partitions, params.zipf_exponent),
      period_epochs_(period_epochs),
      amplitude_(amplitude) {
  RFH_ASSERT(period_epochs_ > 0);
  RFH_ASSERT(amplitude_ >= 0.0 && amplitude_ < 1.0);
}

double DiurnalWorkload::mean_at(Epoch epoch) const noexcept {
  constexpr double kTwoPi = 6.283185307179586;
  const double phase = kTwoPi * static_cast<double>(epoch % period_epochs_) /
                       static_cast<double>(period_epochs_);
  return params_.mean_queries_per_epoch *
         (1.0 + amplitude_ * std::sin(phase));
}

QueryBatch DiurnalWorkload::generate(Epoch epoch, Rng& rng) {
  const std::vector<double> weights(params_.datacenters, 1.0);
  return sample_batch(mean_at(epoch), partition_sampler_, weights,
                      /*partition_rotation=*/0, rng);
}

SpikeWorkload::SpikeWorkload(const WorkloadParams& params, Epoch spike_period,
                             double spike_factor, Epoch spike_width)
    : params_(params),
      partition_sampler_(params.partitions, params.zipf_exponent),
      spike_period_(spike_period),
      spike_factor_(spike_factor),
      spike_width_(spike_width) {
  RFH_ASSERT(spike_period_ > spike_width_);
  RFH_ASSERT(spike_factor_ >= 1.0);
  RFH_ASSERT(spike_width_ > 0);
}

bool SpikeWorkload::is_spike(Epoch epoch) const noexcept {
  return epoch % spike_period_ < spike_width_;
}

QueryBatch SpikeWorkload::generate(Epoch epoch, Rng& rng) {
  const double mean = params_.mean_queries_per_epoch *
                      (is_spike(epoch) ? spike_factor_ : 1.0);
  const std::vector<double> weights(params_.datacenters, 1.0);
  return sample_batch(mean, partition_sampler_, weights,
                      /*partition_rotation=*/0, rng);
}

HotspotShiftWorkload::HotspotShiftWorkload(const WorkloadParams& params,
                                           Epoch phase_epochs,
                                           std::uint32_t shift_per_phase)
    : params_(params),
      partition_sampler_(params.partitions, params.zipf_exponent),
      phase_epochs_(phase_epochs),
      shift_per_phase_(shift_per_phase) {
  RFH_ASSERT(phase_epochs_ > 0);
}

QueryBatch HotspotShiftWorkload::generate(Epoch epoch, Rng& rng) {
  const std::uint32_t phase = epoch / phase_epochs_;
  const std::uint32_t rotation =
      (phase * shift_per_phase_) % params_.partitions;
  const auto weights = uniform_weights(params_.datacenters);
  return sample_batch(params_.mean_queries_per_epoch, partition_sampler_,
                      weights, rotation, rng);
}

}  // namespace rfh
