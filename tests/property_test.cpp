// Cross-module property sweeps (parameterized): invariants that must hold
// for any seed, size, or threshold configuration.
#include <gtest/gtest.h>

#include <memory>

#include "common/availability.h"
#include "core/rfh_policy.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "net/graph.h"
#include "ring/ring.h"
#include "test_util.h"

namespace rfh {
namespace {

// ---------------------------------------------------------------------
// Ring balance across sizes and token counts.
class RingBalanceTest
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
};

TEST_P(RingBalanceTest, TokenCountControlsSpread) {
  const auto [servers, tokens] = GetParam();
  HashRing ring(tokens);
  for (std::uint32_t s = 0; s < servers; ++s) ring.add_server(ServerId{s});

  std::vector<int> counts(servers, 0);
  Rng rng(1234);
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    ++counts[ring.primary(rng.next()).value()];
  }
  // Every server owns keyspace, and nobody owns more than a small
  // multiple of its fair share (looser for fewer tokens).
  const double fair = static_cast<double>(n) / servers;
  const double slack = tokens >= 16 ? 3.0 : 6.0;
  for (std::uint32_t s = 0; s < servers; ++s) {
    EXPECT_GT(counts[s], 0) << "server " << s << " owns nothing";
    EXPECT_LT(counts[s], slack * fair) << "server " << s << " over-owns";
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndTokens, RingBalanceTest,
    ::testing::Combine(::testing::Values<std::uint32_t>(3, 10, 50),
                       ::testing::Values<std::uint32_t>(4, 16, 64)));

// ---------------------------------------------------------------------
// Traffic propagation invariants under random demand and capacities.
class PropagationInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(PropagationInvariantTest, ConservationCapacityAndNonNegativity) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 17);
  SimConfig config;
  config.partitions = 6;
  WorldOptions options;
  options.per_replica_capacity_lo = 0.5 + rng.uniform_real() * 2.0;
  options.per_replica_capacity_hi =
      options.per_replica_capacity_lo + rng.uniform_real() * 4.0;
  options.seed = rng.next();

  // Random fixed demand.
  QueryBatch batch;
  for (std::uint32_t p = 0; p < config.partitions; ++p) {
    const auto requesters = 1 + rng.uniform(4);
    for (std::uint64_t j = 0; j < requesters; ++j) {
      batch.push_back(QueryFlow{
          PartitionId{p},
          DatacenterId{static_cast<std::uint32_t>(rng.uniform(10))},
          1.0 + rng.uniform_real() * 20.0});
    }
  }
  // Random policy so replica sets evolve while we check.
  auto sim = test::make_fixed_sim(batch, std::make_unique<RfhPolicy>(),
                                  config, options);
  for (int e = 0; e < 20; ++e) {
    sim->step();
    const EpochTraffic& traffic = sim->traffic();
    for (std::uint32_t pv = 0; pv < config.partitions; ++pv) {
      const PartitionId p{pv};
      double served = 0.0;
      for (std::uint32_t sv = 0; sv < traffic.servers(); ++sv) {
        const ServerId s{sv};
        EXPECT_GE(traffic.served(p, s), 0.0);
        EXPECT_GE(traffic.node_traffic(p, s), 0.0);
        EXPECT_LE(traffic.served(p, s),
                  sim->topology().server(s).spec.per_replica_capacity + 1e-9);
        served += traffic.served(p, s);
      }
      EXPECT_NEAR(served + traffic.unserved(p), traffic.partition_queries(p),
                  1e-6);
    }
    sim->cluster().check_invariants();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropagationInvariantTest,
                         ::testing::Range(0, 6));

// ---------------------------------------------------------------------
// Threshold sweeps: the decision tree must stay sane for any reasonable
// beta/gamma/delta/mu.
struct ThresholdCase {
  double beta;
  double gamma;
  double delta;
  double mu;
};

class ThresholdSweepTest : public ::testing::TestWithParam<ThresholdCase> {};

TEST_P(ThresholdSweepTest, RfhStaysWithinFloorAndCap) {
  const ThresholdCase& c = GetParam();
  Scenario scenario = Scenario::paper_random_query();
  scenario.epochs = 60;
  scenario.sim.beta = c.beta;
  scenario.sim.gamma = c.gamma;
  scenario.sim.delta = c.delta;
  scenario.sim.mu = c.mu;
  const PolicyRun run = run_policy(scenario, PolicyKind::kRfh);
  const std::uint32_t floor =
      min_replicas(scenario.sim.min_availability, scenario.sim.failure_rate);
  // Tail census bounded by floor and cap.
  const double avg_tail =
      tail_mean(run, &EpochMetrics::avg_replicas_per_partition, 15);
  EXPECT_GE(avg_tail, static_cast<double>(floor) - 0.1);
  EXPECT_LE(avg_tail,
            static_cast<double>(scenario.sim.max_replicas_per_partition));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ThresholdSweepTest,
    ::testing::Values(ThresholdCase{1.2, 1.1, 0.1, 0.5},
                      ThresholdCase{2.0, 1.5, 0.2, 1.0},
                      ThresholdCase{3.0, 2.0, 0.4, 2.0},
                      ThresholdCase{4.0, 3.0, 0.05, 4.0},
                      ThresholdCase{1.5, 2.5, 0.6, 0.25}));

// ---------------------------------------------------------------------
// Availability floor inverse property over a grid.
class FloorGridTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(FloorGridTest, MinReplicasIsTheLeastSufficientCount) {
  const auto [target, f] = GetParam();
  const std::uint32_t r = min_replicas(target, f);
  EXPECT_GE(availability(r, f), target);
  if (r > 2) {
    EXPECT_LT(availability(r - 1, f), target);
  }
}

INSTANTIATE_TEST_SUITE_P(
    TargetsAndFailureRates, FloorGridTest,
    ::testing::Combine(::testing::Values(0.8, 0.9, 0.99, 0.9999),
                       ::testing::Values(0.01, 0.1, 0.25, 0.5, 0.75)));

// ---------------------------------------------------------------------
// Scenario determinism across every policy and workload kind.
struct DeterminismCase {
  PolicyKind policy;
  WorkloadKind workload;
};

class DeterminismTest : public ::testing::TestWithParam<DeterminismCase> {};

TEST_P(DeterminismTest, IdenticalRunsProduceIdenticalSeries) {
  Scenario scenario = Scenario::paper_random_query();
  scenario.workload = GetParam().workload;
  scenario.epochs = 40;
  const PolicyRun a = run_policy(scenario, GetParam().policy);
  const PolicyRun b = run_policy(scenario, GetParam().policy);
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t i = 0; i < a.series.size(); ++i) {
    EXPECT_EQ(a.series[i].total_replicas, b.series[i].total_replicas);
    EXPECT_EQ(a.series[i].migrations_total, b.series[i].migrations_total);
    EXPECT_DOUBLE_EQ(a.series[i].utilization, b.series[i].utilization);
    EXPECT_DOUBLE_EQ(a.series[i].replication_cost_total,
                     b.series[i].replication_cost_total);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PolicyWorkloadGrid, DeterminismTest,
    ::testing::Values(
        DeterminismCase{PolicyKind::kRequest, WorkloadKind::kUniform},
        DeterminismCase{PolicyKind::kOwner, WorkloadKind::kFlashCrowd},
        DeterminismCase{PolicyKind::kRandom, WorkloadKind::kHotspotShift},
        DeterminismCase{PolicyKind::kRfh, WorkloadKind::kUniform},
        DeterminismCase{PolicyKind::kRfh, WorkloadKind::kFlashCrowd}));

// ---------------------------------------------------------------------
// The simulation scales to bigger synthetic worlds without violating
// invariants.
class WorldScaleTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(WorldScaleTest, BiggerWorldsRunCleanly) {
  const std::uint32_t n_dcs = GetParam();
  World world = build_synthetic_world(n_dcs);
  SimConfig config;
  config.partitions = 16;
  WorkloadParams params;
  params.partitions = 16;
  params.datacenters = n_dcs;
  params.mean_queries_per_epoch = 30.0 * n_dcs;
  auto sim = std::make_unique<Simulation>(
      std::move(world), config, std::make_unique<UniformWorkload>(params),
      std::make_unique<RfhPolicy>());
  for (int e = 0; e < 25; ++e) sim->step();
  sim->cluster().check_invariants();
  EXPECT_GT(sim->cluster().total_replicas(), 16u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, WorldScaleTest,
                         ::testing::Values<std::uint32_t>(2, 5, 10, 25));

}  // namespace
}  // namespace rfh
