// Small statistical helpers shared by metrics and tests.
#pragma once

#include <cstdint>
#include <span>

namespace rfh {

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> values) noexcept;

/// Population standard deviation (divide by n, as in paper Eq. 25);
/// 0 for spans with fewer than one element.
double population_stddev(std::span<const double> values) noexcept;

/// Coefficient of variation (stddev / mean); 0 when the mean is 0.
double coefficient_of_variation(std::span<const double> values) noexcept;

/// Binomial coefficient C(n, k) as a double (exact for the small n used
/// by the availability formulas).
double binomial(std::uint32_t n, std::uint32_t k) noexcept;

}  // namespace rfh
