#include "topology/world.h"

#include <gtest/gtest.h>

#include <map>

#include "net/graph.h"

namespace rfh {
namespace {

TEST(PaperWorld, HasPaperScale) {
  const World world = build_paper_world();
  EXPECT_EQ(world.topology.datacenter_count(), 10u);
  EXPECT_EQ(world.topology.server_count(), 100u);  // 10 x 1 x 2 x 5
  EXPECT_EQ(world.dc.size(), 10u);
}

TEST(PaperWorld, CountryComposition) {
  // Section III-A: three in America, two in Canada, two in Switzerland,
  // the rest three in China and Japan.
  const World world = build_paper_world();
  std::map<std::string, int> by_country;
  for (const Datacenter& dc : world.topology.datacenters()) {
    ++by_country[dc.country_code];
  }
  EXPECT_EQ(by_country["USA"], 3);
  EXPECT_EQ(by_country["CAN"], 2);
  EXPECT_EQ(by_country["CHE"], 2);
  EXPECT_EQ(by_country["CHN"] + by_country["JPN"], 3);
}

TEST(PaperWorld, ByLetterMapsInOrder) {
  const World world = build_paper_world();
  EXPECT_EQ(world.by_letter('A'), world.dc[0]);
  EXPECT_EQ(world.by_letter('J'), world.dc[9]);
  EXPECT_EQ(world.topology.datacenter(world.by_letter('H')).country_code,
            "CHN");
}

TEST(PaperWorld, GraphIsConnectedWithPositiveWeights) {
  const World world = build_paper_world();
  for (const Link& link : world.links) {
    EXPECT_GT(link.km, 0.0);
    EXPECT_NE(link.a, link.b);
  }
  const DcGraph graph(world.topology.datacenter_count(), world.links);
  EXPECT_TRUE(graph.connected());
}

TEST(PaperWorld, HeterogeneousCapacitiesWithinConfiguredRanges) {
  WorldOptions o;
  const World world = build_paper_world(o);
  bool any_difference = false;
  double first_cap = -1.0;
  for (const Server& s : world.topology.servers()) {
    EXPECT_GE(s.spec.storage_capacity, o.storage_capacity_lo);
    EXPECT_LE(s.spec.storage_capacity, o.storage_capacity_hi);
    EXPECT_GE(s.spec.per_replica_capacity, o.per_replica_capacity_lo);
    EXPECT_LE(s.spec.per_replica_capacity, o.per_replica_capacity_hi);
    EXPECT_GE(s.spec.service_channels, o.service_channels_lo);
    EXPECT_LE(s.spec.service_channels, o.service_channels_hi);
    EXPECT_EQ(s.spec.replication_bandwidth, o.replication_bandwidth);
    EXPECT_EQ(s.spec.migration_bandwidth, o.migration_bandwidth);
    if (first_cap < 0.0) {
      first_cap = s.spec.per_replica_capacity;
    } else if (s.spec.per_replica_capacity != first_cap) {
      any_difference = true;
    }
  }
  // "for every server, their capacities are different from each other"
  EXPECT_TRUE(any_difference);
}

TEST(PaperWorld, DeterministicUnderSeed) {
  const World a = build_paper_world();
  const World b = build_paper_world();
  ASSERT_EQ(a.topology.server_count(), b.topology.server_count());
  for (std::uint32_t i = 0; i < a.topology.server_count(); ++i) {
    const ServerId id{i};
    EXPECT_DOUBLE_EQ(a.topology.server(id).spec.per_replica_capacity,
                     b.topology.server(id).spec.per_replica_capacity);
  }
}

TEST(PaperWorld, DifferentSeedsChangeCapacities) {
  WorldOptions o1;
  WorldOptions o2;
  o2.seed = o1.seed + 1;
  const World a = build_paper_world(o1);
  const World b = build_paper_world(o2);
  bool any_diff = false;
  for (std::uint32_t i = 0; i < a.topology.server_count(); ++i) {
    const ServerId id{i};
    if (a.topology.server(id).spec.per_replica_capacity !=
        b.topology.server(id).spec.per_replica_capacity) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(PaperWorld, LabelsFollowPaperScheme) {
  const World world = build_paper_world();
  const ServerId first = world.topology.servers_in(world.by_letter('A'))[0];
  EXPECT_EQ(world.topology.server(first).label.to_string(),
            "NA-USA-GA1-C01-R01-S1");
}

class SyntheticWorldTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SyntheticWorldTest, ConnectedAtEverySize) {
  const std::uint32_t n = GetParam();
  const World world = build_synthetic_world(n);
  EXPECT_EQ(world.topology.datacenter_count(), n);
  const DcGraph graph(world.topology.datacenter_count(), world.links);
  EXPECT_TRUE(graph.connected());
}

INSTANTIATE_TEST_SUITE_P(Sizes, SyntheticWorldTest,
                         ::testing::Values<std::uint32_t>(1, 2, 3, 4, 5, 8, 13,
                                                          20, 40));

TEST(SyntheticWorld, CustomRackLayout) {
  WorldOptions o;
  o.rooms_per_datacenter = 2;
  o.racks_per_room = 3;
  o.servers_per_rack = 4;
  const World world = build_synthetic_world(5, o);
  EXPECT_EQ(world.topology.server_count(), 5u * 2 * 3 * 4);
}

}  // namespace
}  // namespace rfh
