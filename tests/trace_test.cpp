#include "workload/trace.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

namespace rfh {
namespace {

QueryBatch batch(std::initializer_list<QueryFlow> flows) { return flows; }

TEST(TraceWorkload, ReplaysScheduleAndRunsDryAfterwards) {
  std::vector<QueryBatch> epochs;
  epochs.push_back(batch({QueryFlow{PartitionId{0}, DatacenterId{1}, 5.0}}));
  epochs.push_back({});
  epochs.push_back(batch({QueryFlow{PartitionId{2}, DatacenterId{3}, 7.5}}));
  TraceWorkload trace(std::move(epochs));
  Rng rng(1);

  const QueryBatch e0 = trace.generate(0, rng);
  ASSERT_EQ(e0.size(), 1u);
  EXPECT_EQ(e0[0].partition, PartitionId{0});
  EXPECT_TRUE(trace.generate(1, rng).empty());
  EXPECT_DOUBLE_EQ(trace.generate(2, rng)[0].queries, 7.5);
  EXPECT_TRUE(trace.generate(3, rng).empty());
  EXPECT_TRUE(trace.generate(1000, rng).empty());
}

TEST(TraceWorkload, CsvRoundTrip) {
  std::vector<QueryBatch> epochs(3);
  epochs[0] = batch({QueryFlow{PartitionId{0}, DatacenterId{1}, 5.0},
                     QueryFlow{PartitionId{1}, DatacenterId{2}, 0.25}});
  epochs[2] = batch({QueryFlow{PartitionId{7}, DatacenterId{9}, 12.0}});

  std::stringstream csv;
  write_trace_csv(csv, epochs);
  TraceWorkload replay = TraceWorkload::from_csv(csv);
  Rng rng(1);

  ASSERT_EQ(replay.epoch_count(), 3u);
  for (Epoch e = 0; e < 3; ++e) {
    const QueryBatch got = replay.generate(e, rng);
    ASSERT_EQ(got.size(), epochs[e].size()) << "epoch " << e;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].partition, epochs[e][i].partition);
      EXPECT_EQ(got[i].requester, epochs[e][i].requester);
      EXPECT_DOUBLE_EQ(got[i].queries, epochs[e][i].queries);
    }
  }
}

TEST(TraceWorkload, ParserSkipsHeaderCommentsAndBlanks) {
  std::stringstream csv(
      "epoch,partition,requester,queries\n"
      "# a comment\n"
      "\n"
      "0,1,2,3.5\n"
      "  \n"
      "4,0,0,1\n");
  TraceWorkload trace = TraceWorkload::from_csv(csv);
  Rng rng(1);
  ASSERT_EQ(trace.epoch_count(), 5u);  // sparse epochs filled with empties
  EXPECT_EQ(trace.generate(0, rng).size(), 1u);
  EXPECT_TRUE(trace.generate(2, rng).empty());
  EXPECT_DOUBLE_EQ(trace.generate(4, rng)[0].queries, 1.0);
}

TEST(TraceWorkload, OutOfOrderEpochsAreReorderedBySchedule) {
  // Rows may arrive in any epoch order (e.g. a trace merged from
  // per-server logs); replay is by epoch index, not file order.
  std::stringstream csv(
      "5,1,2,10\n"
      "0,3,4,1.5\n"
      "5,0,0,2\n"
      "2,7,8,4\n");
  TraceWorkload trace = TraceWorkload::from_csv(csv);
  Rng rng(1);
  ASSERT_EQ(trace.epoch_count(), 6u);
  EXPECT_DOUBLE_EQ(trace.generate(0, rng)[0].queries, 1.5);
  EXPECT_DOUBLE_EQ(trace.generate(2, rng)[0].queries, 4.0);
  ASSERT_EQ(trace.generate(5, rng).size(), 2u);  // both epoch-5 rows kept
  EXPECT_TRUE(trace.generate(1, rng).empty());
  EXPECT_TRUE(trace.generate(3, rng).empty());
}

TEST(TraceWorkload, SparseEpochsReplayAsEmpty) {
  std::stringstream csv("9,0,0,1\n");
  TraceWorkload trace = TraceWorkload::from_csv(csv);
  Rng rng(1);
  ASSERT_EQ(trace.epoch_count(), 10u);
  for (Epoch e = 0; e < 9; ++e) {
    EXPECT_TRUE(trace.generate(e, rng).empty()) << "epoch " << e;
  }
  EXPECT_EQ(trace.generate(9, rng).size(), 1u);
}

TEST(TraceWorkload, NoTrailingNewlineOnLastRow) {
  std::stringstream csv("0,1,2,3.5\n1,2,3,4.5");  // EOF right after a row
  TraceWorkload trace = TraceWorkload::from_csv(csv);
  Rng rng(1);
  ASSERT_EQ(trace.epoch_count(), 2u);
  EXPECT_DOUBLE_EQ(trace.generate(1, rng)[0].queries, 4.5);
}

TEST(TraceWorkload, CrlfLineEndingsAndTrailingBlankLines) {
  std::stringstream csv(
      "epoch,partition,requester,queries\r\n"
      "0,1,2,3.5\r\n"
      "\r\n"
      "\n");
  TraceWorkload trace = TraceWorkload::from_csv(csv);
  Rng rng(1);
  ASSERT_EQ(trace.epoch_count(), 1u);
  EXPECT_DOUBLE_EQ(trace.generate(0, rng)[0].queries, 3.5);
}

TEST(TraceWorkload, HeaderOnlyAfterCommentsIsStillSkipped) {
  // The header is recognized on the first *content* line even when
  // comments and blanks precede it.
  std::stringstream csv(
      "# produced by rfh trace_replay\n"
      "\n"
      "epoch,partition,requester,queries\n"
      "0,1,2,3\n");
  TraceWorkload trace = TraceWorkload::from_csv(csv);
  Rng rng(1);
  ASSERT_EQ(trace.epoch_count(), 1u);
  EXPECT_EQ(trace.generate(0, rng).size(), 1u);
}

TEST(TraceWorkload, EmptyAndCommentOnlyInputsYieldAnEmptySchedule) {
  {
    std::stringstream csv("");
    EXPECT_EQ(TraceWorkload::from_csv(csv).epoch_count(), 0u);
  }
  {
    std::stringstream csv("# nothing but comments\n#\n\n");
    EXPECT_EQ(TraceWorkload::from_csv(csv).epoch_count(), 0u);
  }
  {
    std::stringstream csv("epoch,partition,requester,queries\n");
    EXPECT_EQ(TraceWorkload::from_csv(csv).epoch_count(), 0u);
  }
}

TEST(TraceWorkload, PropertyRecordSerializeReplayRoundTrip) {
  // Property test over seeds: record a stochastic run, serialize to CSV,
  // replay — every flow (partition, requester, queries) must survive the
  // round trip exactly, per epoch and in order.
  for (const std::uint64_t seed : {1ull, 17ull, 92ull, 4096ull}) {
    WorkloadParams params;
    params.partitions = 16;
    params.datacenters = 10;
    RecordingWorkload recording(std::make_unique<UniformWorkload>(params));
    Rng rng(seed);
    constexpr Epoch kEpochs = 7;
    for (Epoch e = 0; e < kEpochs; ++e) (void)recording.generate(e, rng);

    std::stringstream csv;
    write_trace_csv(csv, recording.recorded());
    TraceWorkload replay = TraceWorkload::from_csv(csv);
    Rng rng2(seed + 1);  // replay must ignore the rng entirely

    ASSERT_EQ(replay.epoch_count(), recording.recorded().size());
    for (Epoch e = 0; e < kEpochs; ++e) {
      const QueryBatch& want = recording.recorded()[e];
      const QueryBatch got = replay.generate(e, rng2);
      ASSERT_EQ(got.size(), want.size()) << "seed " << seed << " epoch " << e;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].partition, want[i].partition);
        EXPECT_EQ(got[i].requester, want[i].requester);
        EXPECT_DOUBLE_EQ(got[i].queries, want[i].queries);
      }
    }
  }
}

TEST(TraceWorkloadDeath, MalformedRows) {
  {
    std::stringstream csv("0,1,2\n");
    EXPECT_DEATH(TraceWorkload::from_csv(csv), "");
  }
  {
    std::stringstream csv("0,1,2,3,4\n");
    EXPECT_DEATH(TraceWorkload::from_csv(csv), "");
  }
  {
    std::stringstream csv("zero,1,2,3\n");
    EXPECT_DEATH(TraceWorkload::from_csv(csv), "");
  }
  {
    std::stringstream csv("0,1,2,-5\n");
    EXPECT_DEATH(TraceWorkload::from_csv(csv), "");
  }
}

TEST(RecordingWorkload, CapturesExactlyWhatTheInnerEmits) {
  WorkloadParams params;
  params.partitions = 8;
  params.datacenters = 10;
  RecordingWorkload recording(std::make_unique<UniformWorkload>(params));
  Rng rng(55);
  std::vector<QueryBatch> emitted;
  for (Epoch e = 0; e < 5; ++e) {
    emitted.push_back(recording.generate(e, rng));
  }
  ASSERT_EQ(recording.recorded().size(), 5u);
  for (Epoch e = 0; e < 5; ++e) {
    ASSERT_EQ(recording.recorded()[e].size(), emitted[e].size());
    for (std::size_t i = 0; i < emitted[e].size(); ++i) {
      EXPECT_DOUBLE_EQ(recording.recorded()[e][i].queries,
                       emitted[e][i].queries);
    }
  }
}

TEST(RecordingWorkload, RoundTripThroughCsvReproducesTheRun) {
  // Record a stochastic run, serialize, replay: identical demand.
  WorkloadParams params;
  params.partitions = 4;
  params.datacenters = 10;
  RecordingWorkload recording(std::make_unique<UniformWorkload>(params));
  Rng rng(56);
  for (Epoch e = 0; e < 4; ++e) (void)recording.generate(e, rng);

  std::stringstream csv;
  write_trace_csv(csv, recording.recorded());
  TraceWorkload replay = TraceWorkload::from_csv(csv);
  Rng rng2(999);  // replay ignores the rng
  for (Epoch e = 0; e < 4; ++e) {
    const QueryBatch a = recording.recorded()[e];
    const QueryBatch b = replay.generate(e, rng2);
    ASSERT_EQ(a.size(), b.size());
    double total_a = 0.0;
    double total_b = 0.0;
    for (const QueryFlow& f : a) total_a += f.queries;
    for (const QueryFlow& f : b) total_b += f.queries;
    EXPECT_DOUBLE_EQ(total_a, total_b);
  }
}

}  // namespace
}  // namespace rfh
