// Rendezvous (highest-random-weight) hashing.
//
// Used to pick the per-partition relay server inside a transit datacenter:
// deterministic, uniformly spread across the datacenter's servers, and
// stable under unrelated membership changes (only keys whose winner left
// move).
#pragma once

#include <span>

#include "common/ids.h"

namespace rfh {

/// The server in `candidates` with the highest hash weight for `key`.
/// `candidates` must be non-empty.
ServerId rendezvous_pick(std::uint64_t key, std::span<const ServerId> candidates);

}  // namespace rfh
