// Geographic-diversity metric and datacenter-level failure injection.
#include <gtest/gtest.h>

#include <memory>

#include "core/rfh_policy.h"
#include "harness/runner.h"
#include "metrics/diversity.h"
#include "test_util.h"

namespace rfh {
namespace {

class DiversityTest : public ::testing::Test {
 protected:
  DiversityTest() : world_(build_paper_world(test::uniform_world_options())) {
    config_.partitions = 2;
    cluster_ = std::make_unique<ClusterState>(world_.topology, config_);
  }

  World world_;
  SimConfig config_;
  std::unique_ptr<ClusterState> cluster_;
};

TEST_F(DiversityTest, SingleCopyHasNoDiversity) {
  cluster_->add_replica(PartitionId{0}, ServerId{0}, true);
  EXPECT_EQ(partition_diversity_level(*cluster_, world_.topology,
                                      PartitionId{0}),
            0u);
}

TEST_F(DiversityTest, SameRackPairIsLevelTwo) {
  const auto& servers = world_.topology.servers_in(world_.dc[0]);
  // Servers 0 and 1 share the first rack (5 per rack).
  cluster_->add_replica(PartitionId{0}, servers[0], true);
  cluster_->add_replica(PartitionId{0}, servers[1]);
  EXPECT_EQ(partition_diversity_level(*cluster_, world_.topology,
                                      PartitionId{0}),
            2u);
}

TEST_F(DiversityTest, CrossRackPairIsLevelThree) {
  const auto& servers = world_.topology.servers_in(world_.dc[0]);
  // One room, two racks of five: indices 0 and 5 are different racks.
  cluster_->add_replica(PartitionId{0}, servers[0], true);
  cluster_->add_replica(PartitionId{0}, servers[5]);
  EXPECT_EQ(partition_diversity_level(*cluster_, world_.topology,
                                      PartitionId{0}),
            3u);
}

TEST_F(DiversityTest, CrossDatacenterPairIsLevelFive) {
  cluster_->add_replica(PartitionId{0},
                        world_.topology.servers_in(world_.dc[0])[0], true);
  cluster_->add_replica(PartitionId{0},
                        world_.topology.servers_in(world_.dc[7])[0]);
  EXPECT_EQ(partition_diversity_level(*cluster_, world_.topology,
                                      PartitionId{0}),
            5u);
}

TEST_F(DiversityTest, BestPairWins) {
  // Two same-rack copies plus one remote copy: the remote pair dominates.
  const auto& local = world_.topology.servers_in(world_.dc[0]);
  cluster_->add_replica(PartitionId{0}, local[0], true);
  cluster_->add_replica(PartitionId{0}, local[1]);
  cluster_->add_replica(PartitionId{0},
                        world_.topology.servers_in(world_.dc[3])[0]);
  EXPECT_EQ(partition_diversity_level(*cluster_, world_.topology,
                                      PartitionId{0}),
            5u);
}

TEST_F(DiversityTest, MeanAndSurvivabilityAggregate) {
  // Partition 0: cross-DC (level 5); partition 1: single copy (level 0).
  cluster_->add_replica(PartitionId{0},
                        world_.topology.servers_in(world_.dc[0])[0], true);
  cluster_->add_replica(PartitionId{0},
                        world_.topology.servers_in(world_.dc[1])[0]);
  cluster_->add_replica(PartitionId{1},
                        world_.topology.servers_in(world_.dc[2])[0], true);
  EXPECT_DOUBLE_EQ(mean_diversity_level(*cluster_, world_.topology), 2.5);
  EXPECT_DOUBLE_EQ(datacenter_survivable_fraction(*cluster_, world_.topology),
                   0.5);
}

TEST(DatacenterFailure, DiversePlacementSurvivesAWholeDatacenterLoss) {
  // Warm up RFH (which places copies across datacenters), then destroy
  // the datacenter holding the most copies: no partition may lose data.
  SimConfig config;
  config.partitions = 16;
  WorkloadParams params;
  params.partitions = 16;
  params.datacenters = 10;
  auto sim = std::make_unique<Simulation>(
      build_paper_world(test::uniform_world_options()), config,
      std::make_unique<UniformWorkload>(params),
      std::make_unique<RfhPolicy>());
  sim->run(40);
  ASSERT_GT(datacenter_survivable_fraction(sim->cluster(), sim->topology()),
            0.99);

  const auto victims = sim->fail_datacenter(sim->world().by_letter('A'));
  EXPECT_EQ(victims.size(), 10u);
  EXPECT_EQ(sim->data_losses(), 0u);
  sim->cluster().check_invariants();
  // Every partition still has a live primary.
  for (std::uint32_t p = 0; p < config.partitions; ++p) {
    EXPECT_TRUE(sim->cluster().primary_of(PartitionId{p}).valid());
  }
  sim->run(20);  // and the system keeps serving
}

TEST(DatacenterFailure, ClusteredPlacementLosesData) {
  // A policy that hoards every copy inside the primary's own datacenter
  // (availability level <= 4) is wiped out by a datacenter disaster —
  // the scenario motivating the paper's geographic levels.
  SimConfig config;
  config.partitions = 8;
  auto clustered = test::make_lambda_policy([](const PolicyContext& ctx) {
    Actions actions;
    for (std::uint32_t pv = 0; pv < ctx.config.partitions; ++pv) {
      const PartitionId p{pv};
      const ServerId primary = ctx.cluster.primary_of(p);
      if (!primary.valid() || ctx.cluster.replica_count(p) >= 3) continue;
      const DatacenterId home = ctx.topology.server(primary).datacenter;
      for (const ServerId s : ctx.cluster.live_by_dc()[home.value()]) {
        if (ctx.cluster.can_accept(s, p)) {
          actions.replications.push_back(ReplicateAction{p, s, {}});
          break;
        }
      }
    }
    return actions;
  });
  auto sim = test::make_fixed_sim(
      {QueryFlow{PartitionId{0}, DatacenterId{1}, 5.0}}, std::move(clustered),
      config);
  sim->run(10);
  EXPECT_DOUBLE_EQ(
      datacenter_survivable_fraction(sim->cluster(), sim->topology()), 0.0);

  // Find a datacenter that holds a primary and destroy it.
  const ServerId some_primary = sim->cluster().primary_of(PartitionId{0});
  sim->fail_datacenter(sim->topology().server(some_primary).datacenter);
  EXPECT_GT(sim->data_losses(), 0u);
}

TEST(DatacenterFailure, CollectorReportsDiversity) {
  Scenario scenario = Scenario::paper_random_query();
  scenario.epochs = 40;
  const PolicyRun run = run_policy(scenario, PolicyKind::kOwner);
  // Owner-oriented maximizes diversity: essentially everything ends
  // cross-datacenter once the floor is reached.
  EXPECT_GT(run.series.back().diversity_level, 4.5);
  EXPECT_GT(run.series.back().dc_survivable_fraction, 0.95);
}

}  // namespace
}  // namespace rfh
