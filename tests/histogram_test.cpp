#include "common/histogram.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace rfh {
namespace {

TEST(Histogram, EmptyDefaults) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.fraction_at_or_below(100.0), 1.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 0.0);
}

TEST(Histogram, MeanIsExact) {
  Histogram h;
  h.add(1.0, 10.0);
  h.add(3.0, 20.0);
  EXPECT_DOUBLE_EQ(h.mean(), (10.0 + 60.0) / 4.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 4.0);
  EXPECT_DOUBLE_EQ(h.max_value(), 20.0);
}

TEST(Histogram, ZeroWeightIsIgnored) {
  Histogram h;
  h.add(0.0, 50.0);
  EXPECT_TRUE(h.empty());
}

TEST(Histogram, PercentileBracketsTheValue) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.add(1.0, 10.0);
  // All mass at one value: every percentile lands in its bucket
  // (geometric buckets: ~3.3% wide at this range).
  EXPECT_NEAR(h.percentile(0.5), 10.0, 0.5);
  EXPECT_NEAR(h.percentile(0.999), 10.0, 0.5);
}

TEST(Histogram, PercentilesAreMonotone) {
  Histogram h;
  Rng rng(31);
  for (int i = 0; i < 5000; ++i) {
    h.add(1.0, rng.uniform_real_range(1.0, 1000.0));
  }
  double prev = 0.0;
  for (const double q : {0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const double v = h.percentile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(Histogram, PercentileOfUniformDistribution) {
  Histogram h;
  Rng rng(32);
  for (int i = 0; i < 50000; ++i) {
    h.add(1.0, rng.uniform_real_range(0.0, 100.0));
  }
  EXPECT_NEAR(h.percentile(0.5), 50.0, 4.0);
  EXPECT_NEAR(h.percentile(0.9), 90.0, 5.0);
}

TEST(Histogram, FractionAtOrBelow) {
  Histogram h;
  h.add(9.0, 10.0);
  h.add(1.0, 5000.0);
  EXPECT_NEAR(h.fraction_at_or_below(300.0), 0.9, 1e-9);
  EXPECT_NEAR(h.fraction_at_or_below(10000.0), 1.0, 1e-9);
  EXPECT_NEAR(h.fraction_at_or_below(0.1), 0.0, 1e-9);
}

TEST(Histogram, ValuesAreClampedNotDropped) {
  Histogram h;
  h.add(1.0, 1e9);    // beyond kMaxValue
  h.add(1.0, 1e-9);   // below kMinValue
  EXPECT_DOUBLE_EQ(h.total_weight(), 2.0);
  EXPECT_NEAR(h.fraction_at_or_below(Histogram::kMaxValue), 1.0, 1e-12);
}

TEST(Histogram, MergeCombinesMass) {
  Histogram a;
  Histogram b;
  a.add(2.0, 10.0);
  b.add(2.0, 1000.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.total_weight(), 4.0);
  EXPECT_NEAR(a.fraction_at_or_below(100.0), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(a.mean(), (20.0 + 2000.0) / 4.0);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.add(5.0, 42.0);
  h.reset();
  EXPECT_TRUE(h.empty());
  EXPECT_DOUBLE_EQ(h.percentile(0.9), 0.0);
}

TEST(Histogram, QuantilesMatchPercentileExactly) {
  Histogram h;
  Rng rng(33);
  for (int i = 0; i < 20000; ++i) {
    h.add(1.0, rng.uniform_real_range(0.5, 5000.0));
  }
  const std::array<double, 6> grid{0.1, 0.25, 0.5, 0.9, 0.99, 1.0};
  const std::vector<double> qs = h.quantiles(grid);
  ASSERT_EQ(qs.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_DOUBLE_EQ(qs[i], h.percentile(grid[i])) << "q=" << grid[i];
  }
}

TEST(Histogram, QuantilesOfEmptyAreZero) {
  const Histogram h;
  const std::vector<double> qs = h.quantiles(Histogram::kSnapshotQuantiles);
  ASSERT_EQ(qs.size(), Histogram::kSnapshotQuantiles.size());
  for (const double v : qs) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Histogram, QuantilesAtBucketEdges) {
  // All mass in a single bucket: the interpolation runs from the bucket's
  // lower edge at q->0+ to its upper edge at q=1, and every quantile must
  // stay inside that bucket (which is ~3.3% wide around 10 ms).
  Histogram h;
  h.add(100.0, 10.0);
  const std::array<double, 3> grid{0.001, 0.5, 1.0};
  const std::vector<double> qs = h.quantiles(grid);
  EXPECT_LT(qs[0], qs[1]);
  EXPECT_LT(qs[1], qs[2]);
  for (const double v : qs) EXPECT_NEAR(v, 10.0, 0.5);
  // q=1 is the bucket's upper edge; it bounds the recorded value.
  EXPECT_GE(qs[2], 10.0 - 1e-9);
}

TEST(Histogram, QuantilesOfClampedValuesStayInRange) {
  Histogram h;
  h.add(1.0, 1e9);   // clamped down to kMaxValue
  h.add(1.0, 1e-9);  // clamped up to kMinValue
  const std::array<double, 2> grid{0.5, 1.0};
  const std::vector<double> qs = h.quantiles(grid);
  EXPECT_GE(qs[0], Histogram::kMinValue - 1e-12);
  EXPECT_LE(qs[1], Histogram::kMaxValue + 1e-12);
  EXPECT_DOUBLE_EQ(qs[1], h.percentile(1.0));
}

TEST(Histogram, MergeEmptyIsIdentity) {
  Histogram a;
  a.add(3.0, 25.0);
  const double mean = a.mean();
  const double p90 = a.percentile(0.9);
  Histogram empty;
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  EXPECT_DOUBLE_EQ(a.percentile(0.9), p90);
  // Merging into an empty histogram copies the mass.
  Histogram b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.total_weight(), a.total_weight());
  EXPECT_DOUBLE_EQ(b.percentile(0.9), a.percentile(0.9));
  EXPECT_DOUBLE_EQ(b.max_value(), a.max_value());
}

TEST(Histogram, MergedPercentilesEqualCombinedHistogram) {
  Histogram a;
  Histogram b;
  Histogram combined;
  Rng rng(34);
  for (int i = 0; i < 3000; ++i) {
    const double v = rng.uniform_real_range(1.0, 100.0);
    a.add(1.0, v);
    combined.add(1.0, v);
  }
  for (int i = 0; i < 3000; ++i) {
    const double v = rng.uniform_real_range(100.0, 10000.0);
    b.add(1.0, v);
    combined.add(1.0, v);
  }
  a.merge(b);
  for (const double q : {0.1, 0.5, 0.9, 0.999}) {
    EXPECT_DOUBLE_EQ(a.percentile(q), combined.percentile(q)) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(a.mean(), combined.mean());
}

TEST(Histogram, ToJsonRoundTrip) {
  Histogram h;
  h.add(2.0, 10.0);
  h.add(2.0, 1000.0);
  const std::string json = h.to_json();
  // Spot-check the snapshot contract without a JSON parser: fields
  // present, count exact, quantile keys from kSnapshotQuantiles.
  EXPECT_NE(json.find("\"count\":4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"mean\":"), std::string::npos);
  EXPECT_NE(json.find("\"max\":1000"), std::string::npos);
  EXPECT_NE(json.find("\"0.5\":"), std::string::npos);
  EXPECT_NE(json.find("\"0.999\":"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');

  const Histogram empty;
  EXPECT_NE(empty.to_json().find("\"count\":0"), std::string::npos);
}

TEST(HistogramDeath, NegativeWeight) {
  Histogram h;
  EXPECT_DEATH(h.add(-1.0, 10.0), "");
  EXPECT_DEATH((void)h.percentile(0.0), "");
  EXPECT_DEATH((void)h.percentile(1.5), "");
}

TEST(HistogramDeath, QuantileGridMustBeAscendingInRange) {
  Histogram h;
  h.add(1.0, 10.0);
  const std::array<double, 2> descending{0.9, 0.5};
  EXPECT_DEATH((void)h.quantiles(descending), "");
  const std::array<double, 1> zero{0.0};
  EXPECT_DEATH((void)h.quantiles(zero), "");
}

}  // namespace
}  // namespace rfh
