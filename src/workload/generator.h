// Query workload generators (paper Section III-A).
//
// "At each epoch, the number of generated queries follows a Poisson
// distribution with a mean rate lambda" (Table I: lambda = 300/epoch).
// Partition popularity is Zipf-skewed (web-object popularity; the paper's
// running example revolves around hot partitions), and the requester mix
// over datacenters is what distinguishes the settings:
//
//  * random/even query: requesters uniform over all datacenters;
//  * flash crowd: four equal stages; in stages 1-3, 80% of all queries
//    come from three named datacenters (H,I,J -> A,B,C -> E,F,G), the
//    last stage is uniform;
//  * hotspot shift: the *partition* popularity ranking rotates mid-run
//    (the paper's second type of query surge).
//
// The streaming layer (src/stream/) deliberately adds no generator here:
// --workload=stream reuses UniformWorkload (or HotspotShiftWorkload when
// drift is enabled) with mean_queries_per_epoch = StreamConfig::
// arrival_rate, so a stream run consumes the exact RNG stream a batch run
// does and their per-epoch QueryBatches are identical. Arrival *times*
// within an epoch are drawn downstream from a separate forked RNG
// (kStreamStreamTag), keeping Eqs. 2-19 and the differential oracle
// untouched.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/units.h"

namespace rfh {

/// Aggregate demand q_ijt: queries for `partition` from requesters near
/// `requester` during one epoch.
struct QueryFlow {
  PartitionId partition;
  DatacenterId requester;
  double queries = 0.0;
};

using QueryBatch = std::vector<QueryFlow>;

class WorkloadGenerator {
 public:
  virtual ~WorkloadGenerator() = default;
  /// Generate one epoch of demand. Implementations must be deterministic
  /// given the Rng state.
  [[nodiscard]] virtual QueryBatch generate(Epoch epoch, Rng& rng) = 0;
};

struct WorkloadParams {
  std::uint32_t partitions = 64;          // Table I
  std::uint32_t datacenters = 10;         // Fig. 1
  double mean_queries_per_epoch = 300.0;  // Table I Poisson lambda
  double zipf_exponent = 0.8;             // partition popularity skew
};

/// Uniform requester mix ("random and even query rate").
class UniformWorkload final : public WorkloadGenerator {
 public:
  explicit UniformWorkload(const WorkloadParams& params);
  [[nodiscard]] QueryBatch generate(Epoch epoch, Rng& rng) override;

 private:
  WorkloadParams params_;
  ZipfSampler partition_sampler_;
};

/// One stage of a flash-crowd schedule.
struct FlashStage {
  /// Datacenters contributing `hot_share` of all queries; empty means the
  /// stage is uniform.
  std::vector<DatacenterId> hot_dcs;
  double hot_share = 0.8;
};

class FlashCrowdWorkload final : public WorkloadGenerator {
 public:
  /// `stages` are equal slices of [0, total_epochs); epochs beyond
  /// total_epochs reuse the final stage.
  FlashCrowdWorkload(const WorkloadParams& params,
                     std::vector<FlashStage> stages, Epoch total_epochs);

  [[nodiscard]] QueryBatch generate(Epoch epoch, Rng& rng) override;

  /// Stage index active at `epoch`.
  [[nodiscard]] std::size_t stage_at(Epoch epoch) const noexcept;

  /// The paper's default 4-stage schedule over datacenter letters
  /// (H,I,J) -> (A,B,C) -> (E,F,G) -> uniform, 80% hot share.
  static std::vector<FlashStage> paper_stages(
      const std::vector<DatacenterId>& dc_by_letter);

 private:
  WorkloadParams params_;
  ZipfSampler partition_sampler_;
  std::vector<FlashStage> stages_;
  Epoch total_epochs_;
};

/// Diurnal demand: the Poisson mean swings sinusoidally around its base
/// value — lambda(t) = mean * (1 + amplitude * sin(2*pi*t / period)) —
/// modelling the day/night cycle a geo-distributed store actually sees.
/// Requester mix stays uniform; the interesting question is whether the
/// replica census breathes with the load (RFH's suicide path) instead of
/// staying provisioned for the peak.
class DiurnalWorkload final : public WorkloadGenerator {
 public:
  DiurnalWorkload(const WorkloadParams& params, Epoch period_epochs,
                  double amplitude = 0.6);
  [[nodiscard]] QueryBatch generate(Epoch epoch, Rng& rng) override;

  /// The modulated Poisson mean at `epoch`.
  [[nodiscard]] double mean_at(Epoch epoch) const noexcept;

 private:
  WorkloadParams params_;
  ZipfSampler partition_sampler_;
  Epoch period_epochs_;
  double amplitude_;
};

/// Slashdot-effect spike train (the paper's opening motivation: "the
/// query rate for Web application data is highly irregular"). Demand runs
/// at the base mean, except every `spike_period`-th epoch where it is
/// multiplied by `spike_factor` for `spike_width` epochs. Spikes are too
/// brief for a well-damped policy to chase; a policy without hysteresis
/// replicates into each one and reclaims afterwards, churning copies.
class SpikeWorkload final : public WorkloadGenerator {
 public:
  SpikeWorkload(const WorkloadParams& params, Epoch spike_period,
                double spike_factor = 10.0, Epoch spike_width = 1);
  [[nodiscard]] QueryBatch generate(Epoch epoch, Rng& rng) override;

  [[nodiscard]] bool is_spike(Epoch epoch) const noexcept;

 private:
  WorkloadParams params_;
  ZipfSampler partition_sampler_;
  Epoch spike_period_;
  double spike_factor_;
  Epoch spike_width_;
};

/// Partition-popularity surge: the Zipf ranking is rotated by
/// `shift_per_phase` every `phase_epochs`, so yesterday's hot partition
/// cools down while a cold one becomes hot.
class HotspotShiftWorkload final : public WorkloadGenerator {
 public:
  HotspotShiftWorkload(const WorkloadParams& params, Epoch phase_epochs,
                       std::uint32_t shift_per_phase = 16);
  [[nodiscard]] QueryBatch generate(Epoch epoch, Rng& rng) override;

 private:
  WorkloadParams params_;
  ZipfSampler partition_sampler_;
  Epoch phase_epochs_;
  std::uint32_t shift_per_phase_;
};

/// Shared implementation: draw Poisson(total), then assign each query a
/// partition from `partition_rank_to_id` via the Zipf sampler and a
/// requester from `requester_weights`, aggregating equal (partition,
/// requester) pairs into one flow.
QueryBatch sample_batch(double mean_total, const ZipfSampler& partitions,
                        std::span<const double> requester_weights,
                        std::uint32_t partition_rotation, Rng& rng);

}  // namespace rfh
