#include "topology/topology.h"

#include "common/assert.h"

namespace rfh {

namespace {

std::string indexed(const char prefix, std::size_t index) {
  std::string out(1, prefix);
  if (index + 1 < 10) out += '0';
  out += std::to_string(index + 1);
  return out;
}

}  // namespace

DatacenterId Topology::add_datacenter(std::string name,
                                      std::string country_code,
                                      Continent continent, GeoPoint location) {
  const DatacenterId id{static_cast<std::uint32_t>(datacenters_.size())};
  datacenters_.push_back(Datacenter{id, std::move(name),
                                    std::move(country_code), continent,
                                    location, {}, {}});
  return id;
}

RoomId Topology::add_room(DatacenterId dc) {
  RFH_ASSERT(dc.value() < datacenters_.size());
  const RoomId id{static_cast<std::uint32_t>(rooms_.size())};
  rooms_.push_back(Room{id, dc, {}});
  datacenters_[dc.value()].rooms.push_back(id);
  return id;
}

RackId Topology::add_rack(RoomId room) {
  RFH_ASSERT(room.value() < rooms_.size());
  const RackId id{static_cast<std::uint32_t>(racks_.size())};
  racks_.push_back(Rack{id, room, rooms_[room.value()].datacenter, {}});
  rooms_[room.value()].racks.push_back(id);
  return id;
}

ServerId Topology::add_server(RackId rack, const ServerSpec& spec) {
  RFH_ASSERT(rack.value() < racks_.size());
  Rack& r = racks_[rack.value()];
  const Room& rm = rooms_[r.room.value()];
  Datacenter& dc = datacenters_[r.datacenter.value()];

  const ServerId id{static_cast<std::uint32_t>(servers_.size())};

  // Label components reflect position within the hierarchy: room index
  // within the datacenter, rack index within the room, server index within
  // the rack.
  std::size_t room_index = 0;
  for (std::size_t i = 0; i < dc.rooms.size(); ++i) {
    if (dc.rooms[i] == rm.id) room_index = i;
  }
  std::size_t rack_index = 0;
  for (std::size_t i = 0; i < rm.racks.size(); ++i) {
    if (rm.racks[i] == r.id) rack_index = i;
  }
  // Built with += rather than operator+ on two temporaries: GCC 12's -O3
  // inliner flags the latter with a spurious -Wrestrict (PR105651).
  std::string server_label("S");
  server_label += std::to_string(r.servers.size() + 1);
  NodeLabel label{
      std::string(continent_code(dc.continent)),
      dc.country_code,
      dc.name,
      indexed('C', room_index),
      indexed('R', rack_index),
      std::move(server_label),
  };

  servers_.push_back(Server{id, r.id, rm.id, dc.id, std::move(label), spec});
  r.servers.push_back(id);
  dc.servers.push_back(id);
  return id;
}

const Datacenter& Topology::datacenter(DatacenterId id) const {
  RFH_ASSERT(id.value() < datacenters_.size());
  return datacenters_[id.value()];
}

const Room& Topology::room(RoomId id) const {
  RFH_ASSERT(id.value() < rooms_.size());
  return rooms_[id.value()];
}

const Rack& Topology::rack(RackId id) const {
  RFH_ASSERT(id.value() < racks_.size());
  return racks_[id.value()];
}

const Server& Topology::server(ServerId id) const {
  RFH_ASSERT(id.value() < servers_.size());
  return servers_[id.value()];
}

const std::vector<ServerId>& Topology::servers_in(DatacenterId dc) const {
  return datacenter(dc).servers;
}

double Topology::distance_km(DatacenterId a, DatacenterId b) const {
  return great_circle_km(datacenter(a).location, datacenter(b).location);
}

std::uint32_t Topology::availability_level(ServerId a, ServerId b) const {
  return rfh::availability_level(server(a).label, server(b).label);
}

}  // namespace rfh
