// Replica-management actions a policy may issue each epoch.
//
// The engine validates and applies them under the physical constraints
// (liveness, the phi storage limit, virtual-node caps, per-server
// replication/migration bandwidth budgets) and accounts their cost per
// Eq. 1. An action that fails validation is dropped for this epoch; the
// policy re-evaluates next epoch with fresh state.
#pragma once

#include <vector>

#include "common/ids.h"
#include "obs/events.h"

namespace rfh {

// Each action carries the DecisionExplanation that produced it (see
// obs/events.h): the observed statistics and the inequality that fired.
// The engine forwards it onto the emitted trace event, so a JSONL trace
// answers "why did partition P replicate at epoch E" directly. Policies
// that don't explain themselves (the baselines) leave it defaulted.

struct ReplicateAction {
  PartitionId partition;
  ServerId target;
  DecisionExplanation why;
};

struct MigrateAction {
  PartitionId partition;
  ServerId from;
  ServerId to;
  DecisionExplanation why;
};

struct SuicideAction {
  PartitionId partition;
  ServerId server;
  DecisionExplanation why;
};

struct Actions {
  std::vector<ReplicateAction> replications;
  std::vector<MigrateAction> migrations;
  std::vector<SuicideAction> suicides;

  [[nodiscard]] bool empty() const noexcept {
    return replications.empty() && migrations.empty() && suicides.empty();
  }
  void clear() noexcept {
    replications.clear();
    migrations.clear();
    suicides.clear();
  }
};

}  // namespace rfh
