#include "stream/arrival.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <numbers>

#include "common/assert.h"
#include "common/rng.h"
#include "sim/engine.h"  // kStreamStreamTag

namespace rfh {

double ArrivalGenerator::intensity(Epoch epoch, double frac) const noexcept {
  double v = 1.0;
  if (config_.diurnal_period > 0 && config_.diurnal_amplitude != 0.0) {
    // Continuous phase across epochs: frac advances the sine within the
    // epoch so arrival density ramps smoothly instead of stair-stepping.
    const double phase =
        (static_cast<double>(epoch % config_.diurnal_period) + frac) /
        static_cast<double>(config_.diurnal_period);
    v = 1.0 + config_.diurnal_amplitude *
                  std::sin(2.0 * std::numbers::pi * phase);
  }
  if (config_.flash_factor != 1.0 && frac >= config_.flash_start &&
      frac < config_.flash_end) {
    v *= config_.flash_factor;
  }
  return std::max(v, 0.05);
}

std::vector<double> ArrivalGenerator::timestamps(Epoch epoch, DatacenterId dc,
                                                 std::size_t n) const {
  std::vector<double> out;
  if (n == 0) return out;
  RFH_ASSERT(dc.valid());

  // Cumulative intensity over the bin grid: cdf[i] = integral of the
  // (midpoint-sampled) intensity over the first i bins.
  std::array<double, kIntensityBins + 1> cdf{};
  for (std::size_t i = 0; i < kIntensityBins; ++i) {
    const double mid = (static_cast<double>(i) + 0.5) /
                       static_cast<double>(kIntensityBins);
    cdf[i + 1] = cdf[i] + intensity(epoch, mid);
  }
  const double total = cdf[kIntensityBins];

  Rng rng = Rng(seed_)
                .fork(kStreamStreamTag)
                .fork(static_cast<std::uint64_t>(epoch))
                .fork(static_cast<std::uint64_t>(dc.value()));
  out.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double target = rng.uniform_real() * total;
    // Inverse CDF: find the bin containing `target`, interpolate inside.
    const auto it = std::upper_bound(cdf.begin() + 1, cdf.end(), target);
    const std::size_t bin =
        std::min(static_cast<std::size_t>(it - cdf.begin()) - 1,
                 kIntensityBins - 1);
    const double within = (target - cdf[bin]) / (cdf[bin + 1] - cdf[bin]);
    const double frac =
        (static_cast<double>(bin) + within) /
        static_cast<double>(kIntensityBins);
    out.push_back(frac * config_.epoch_ms);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace rfh
