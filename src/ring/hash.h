// 64-bit hashing for the consistent-hashing ring.
//
// FNV-1a over bytes followed by a SplitMix64 finalizer: cheap, portable,
// and well-mixed enough that ring tokens spread uniformly. Implemented
// here (rather than relying on std::hash) so that ring placement is
// identical on every platform and standard library.
#pragma once

#include <cstdint>
#include <string_view>

namespace rfh {

/// FNV-1a 64-bit over a byte string, with avalanche finalizer.
std::uint64_t hash64(std::string_view bytes) noexcept;

/// Hash a 64-bit integer (finalizer only; already fixed-width).
std::uint64_t hash64(std::uint64_t value) noexcept;

/// Order-dependent combination of two hashes.
std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept;

}  // namespace rfh
