# Empty dependencies file for rfh_topology.
# This may be replaced when dependencies are built.
