#include "common/erlang.h"

#include <limits>

#include "common/assert.h"

namespace rfh {

double erlang_b(double offered, std::uint32_t channels) noexcept {
  RFH_ASSERT(offered >= 0.0);
  if (offered == 0.0) return 0.0;
  double b = 1.0;  // B(0)
  for (std::uint32_t c = 1; c <= channels; ++c) {
    b = offered * b / (static_cast<double>(c) + offered * b);
  }
  return b;
}

std::uint32_t erlang_b_channels_for(double offered, double target) noexcept {
  RFH_ASSERT(target > 0.0 && target < 1.0);
  if (offered == 0.0) return 0;  // nothing arrives, nothing blocks
  double b = 1.0;
  std::uint32_t c = 0;
  while (b > target) {
    ++c;
    b = offered * b / (static_cast<double>(c) + offered * b);
    RFH_ASSERT_MSG(c < 1u << 20, "erlang_b_channels_for diverged");
  }
  return c;
}

double erlang_c(double offered, std::uint32_t channels) noexcept {
  RFH_ASSERT(offered >= 0.0);
  if (offered == 0.0) return 0.0;
  if (channels == 0 ||
      offered >= static_cast<double>(channels)) {
    return 1.0;  // unstable: every arrival waits
  }
  const double b = erlang_b(offered, channels);
  const double rho = offered / static_cast<double>(channels);
  return b / (1.0 - rho * (1.0 - b));
}

double erlang_c_mean_wait(double offered, std::uint32_t channels) noexcept {
  RFH_ASSERT(offered >= 0.0);
  // Zero offered traffic means nothing ever arrives, so nothing ever
  // waits — even with zero channels. This mirrors erlang_c's convention
  // and must be checked before the stability test, which would otherwise
  // report an infinite wait for the empty (0, 0) system.
  if (offered == 0.0) return 0.0;
  if (offered >= static_cast<double>(channels)) {
    return std::numeric_limits<double>::infinity();
  }
  return erlang_c(offered, channels) /
         (static_cast<double>(channels) - offered);
}

double erlang_mgc_mean_wait(double offered, std::uint32_t channels,
                            double cv) noexcept {
  RFH_ASSERT(cv >= 0.0);
  // The Allen-Cunneen factor scales the M/M/c wait, so the zero-load and
  // saturation sentinels propagate unchanged (0 * k == 0, inf * k == inf
  // for k > 0; cv == 0 with an infinite wait still diverges, so the
  // factor is applied after the sentinel cases inside erlang_c_mean_wait
  // — inf * 0.5 stays inf).
  return erlang_c_mean_wait(offered, channels) * (1.0 + cv * cv) / 2.0;
}

}  // namespace rfh
