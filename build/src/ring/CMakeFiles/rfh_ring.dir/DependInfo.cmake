
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ring/chord.cpp" "src/ring/CMakeFiles/rfh_ring.dir/chord.cpp.o" "gcc" "src/ring/CMakeFiles/rfh_ring.dir/chord.cpp.o.d"
  "/root/repo/src/ring/hash.cpp" "src/ring/CMakeFiles/rfh_ring.dir/hash.cpp.o" "gcc" "src/ring/CMakeFiles/rfh_ring.dir/hash.cpp.o.d"
  "/root/repo/src/ring/rendezvous.cpp" "src/ring/CMakeFiles/rfh_ring.dir/rendezvous.cpp.o" "gcc" "src/ring/CMakeFiles/rfh_ring.dir/rendezvous.cpp.o.d"
  "/root/repo/src/ring/ring.cpp" "src/ring/CMakeFiles/rfh_ring.dir/ring.cpp.o" "gcc" "src/ring/CMakeFiles/rfh_ring.dir/ring.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rfh_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
