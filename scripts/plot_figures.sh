#!/usr/bin/env bash
# Regenerate every paper figure's CSV and, when gnuplot is available,
# render PNG plots next to them.
#
#   scripts/plot_figures.sh [build-dir] [out-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-figures}"
mkdir -p "$OUT_DIR"

benches=(
  bench_fig3_utilization
  bench_fig4_replica_number
  bench_fig5_replication_cost
  bench_fig6_migration_times
  bench_fig7_migration_cost
  bench_fig8_load_imbalance
  bench_fig9_path_length
  bench_fig10_failure_recovery
)

for bench in "${benches[@]}"; do
  echo ">> $bench"
  "$BUILD_DIR/bench/$bench" > "$OUT_DIR/$bench.txt"
  # Split the multi-panel output into one CSV per "# Fig ..." block.
  awk -v out="$OUT_DIR/$bench" '
    /^# tail-mean/ { next }
    /^# /    { if (f) close(f); n += 1; f = out "_panel" n ".csv"; next }
    /^epoch/ { if (f) print > f; next }
    /,/      { if (f) print > f }
  ' "$OUT_DIR/$bench.txt"
done

if ! command -v gnuplot >/dev/null 2>&1; then
  echo "gnuplot not found: CSVs written to $OUT_DIR/, skipping PNG render"
  exit 0
fi

for csv in "$OUT_DIR"/*_panel*.csv; do
  png="${csv%.csv}.png"
  gnuplot <<EOF
set datafile separator ','
set terminal pngcairo size 800,500
set output '$png'
set key outside
set xlabel 'epoch'
plot '$csv' using 1:2 with lines title 'Request', \
     ''     using 1:3 with lines title 'Owner', \
     ''     using 1:4 with lines title 'Random', \
     ''     using 1:5 with lines title 'RFH'
EOF
  echo "rendered $png"
done
