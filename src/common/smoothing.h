// Exponential smoothing as used by the paper (Eqs. 10-11):
//
//   v_t = alpha * v_{t-1} + (1 - alpha) * x_t,   0 < alpha < 1
//
// Note the orientation: alpha weights *history*. The Table I default
// alpha = 0.2 therefore adapts quickly (80 % weight on the newest sample).
#pragma once

#include "common/assert.h"

namespace rfh {

class Ewma {
 public:
  constexpr explicit Ewma(double alpha) noexcept : alpha_(alpha) {
    RFH_ASSERT(alpha > 0.0 && alpha < 1.0);
  }

  /// Feed one observation; returns the new smoothed value. The first
  /// observation initializes the average directly (no zero bias).
  constexpr double update(double x) noexcept {
    if (!initialized_) {
      value_ = x;
      initialized_ = true;
    } else {
      value_ = alpha_ * value_ + (1.0 - alpha_) * x;
    }
    return value_;
  }

  [[nodiscard]] constexpr double value() const noexcept { return value_; }
  [[nodiscard]] constexpr bool initialized() const noexcept {
    return initialized_;
  }
  [[nodiscard]] constexpr double alpha() const noexcept { return alpha_; }

  constexpr void reset() noexcept {
    value_ = 0.0;
    initialized_ = false;
  }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

}  // namespace rfh
