// Weighted undirected datacenter-level network graph.
//
// The routing layer of RFH sits "on top of IP"; at the granularity the
// paper reasons about (which datacenters a query transits, where the
// traffic hubs form), the relevant structure is the inter-datacenter
// backbone. Edge weights are kilometres (see topology/world.h).
#pragma once

#include <span>
#include <vector>

#include "common/ids.h"
#include "topology/world.h"

namespace rfh {

struct Edge {
  DatacenterId to;
  double km = 0.0;
};

class DcGraph {
 public:
  DcGraph(std::size_t datacenter_count, std::span<const Link> links);

  [[nodiscard]] std::size_t size() const noexcept { return adjacency_.size(); }

  [[nodiscard]] std::span<const Edge> neighbors(DatacenterId dc) const;

  /// True if every datacenter can reach every other one.
  [[nodiscard]] bool connected() const;

 private:
  std::vector<std::vector<Edge>> adjacency_;
};

}  // namespace rfh
