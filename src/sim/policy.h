// The replication-policy interface all four algorithms implement.
//
// A policy is a pure decision function: each epoch it reads the smoothed
// statistics and cluster state and returns the replicate / migrate /
// suicide actions it wants. The engine owns all mutation. This mirrors
// the paper's "decision agent" formulation — every virtual node decides
// for itself; the PolicyContext is exactly the information a decentralized
// agent could gather (its own traffic, the piggybacked replication
// requests, the blocking probabilities carried in those requests).
#pragma once

#include <algorithm>
#include <string_view>

#include "common/rng.h"
#include "common/units.h"
#include "net/shortest_paths.h"
#include "sim/actions.h"
#include "sim/cluster.h"
#include "sim/config.h"
#include "sim/stats.h"
#include "sim/traffic.h"
#include "topology/topology.h"

namespace rfh {

class ThreadPool;

struct PolicyContext {
  const Topology& topology;
  const ShortestPaths& paths;
  const ClusterState& cluster;
  const TrafficStats& stats;
  const EpochTraffic& traffic;
  const SimConfig& config;
  Epoch epoch = 0;
  Rng& rng;
  /// Pool for sharding the per-partition decision scan; null means
  /// serial. A policy that uses it must keep its returned actions
  /// byte-identical to the serial scan for every worker count
  /// (DESIGN.md §15) — RNG-consuming paths must stay serial.
  ThreadPool* pool = nullptr;
};

class MetricRegistry;

class ReplicationPolicy {
 public:
  virtual ~ReplicationPolicy() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual Actions decide(const PolicyContext& ctx) = 0;
  /// Offered a registry by Simulation::set_telemetry; policies that export
  /// metrics resolve their handles here. nullptr detaches. Optional.
  virtual void set_telemetry(MetricRegistry* /*registry*/) {}
};

/// Eq. 12 with two practical adjustments:
///  * a physical floor — the holder must also exceed what its copy can
///    actually serve per epoch, so cold partitions (whose relative
///    threshold beta*q_bar is tiny) do not replicate forever on sampling
///    noise;
///  * a demand clamp — Eq. 12 presumes enough requesters that
///    beta*q_bar = beta*total/N stays below the total demand; with few
///    requester datacenters (N <= beta) the printed threshold would be
///    unreachable by construction, so it is capped at 90% of the
///    partition's demand.
/// All four policies share this trigger so they face identical pressure.
///
/// When `explain` is non-null the observed traffic, effective threshold
/// and q_bar are recorded there (regardless of the verdict), so a policy
/// can attach the numbers behind Eq. 12 to the actions it emits.
inline bool holder_overloaded(const PolicyContext& ctx, PartitionId p,
                              ServerId primary,
                              DecisionExplanation* explain = nullptr) {
  const double q_bar = ctx.stats.avg_query(p);
  const double total =
      q_bar * static_cast<double>(ctx.topology.datacenter_count());
  const double threshold = std::min(ctx.config.beta * q_bar, 0.9 * total);
  const double tr = ctx.stats.node_traffic(p, primary);
  if (explain != nullptr) {
    explain->observed = tr;
    explain->threshold = threshold;
    explain->q_bar = q_bar;
  }
  if (q_bar <= 0.0) return false;
  const double capacity =
      ctx.topology.server(primary).spec.per_replica_capacity;
  return tr >= threshold && tr > capacity;
}

}  // namespace rfh
