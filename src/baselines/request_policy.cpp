#include "baselines/request_policy.h"

#include <algorithm>
#include <vector>

#include "common/availability.h"
#include "core/selection.h"

namespace rfh {

Actions RequestOrientedPolicy::decide(const PolicyContext& ctx) {
  Actions actions;
  const std::uint32_t rmin =
      min_replicas(ctx.config.min_availability, ctx.config.failure_rate);

  std::vector<DatacenterId> all_dcs;
  for (const Datacenter& dc : ctx.topology.datacenters()) {
    all_dcs.push_back(dc.id);
  }

  for (std::uint32_t pv = 0; pv < ctx.config.partitions; ++pv) {
    const PartitionId p{pv};
    const ServerId primary = ctx.cluster.primary_of(p);
    if (!primary.valid()) continue;

    // Top requester datacenters by smoothed query volume. A datacenter
    // issuing (essentially) no queries is never a placement candidate —
    // the scheme replicates "where most of the queries come from".
    std::vector<DatacenterId> ranked;
    for (const DatacenterId dc : all_dcs) {
      if (ctx.stats.requester_queries(p, dc) > 1e-6) ranked.push_back(dc);
    }
    std::sort(ranked.begin(), ranked.end(),
              [&](DatacenterId a, DatacenterId b) {
                const double qa = ctx.stats.requester_queries(p, a);
                const double qb = ctx.stats.requester_queries(p, b);
                if (qa != qb) return qa > qb;
                return a < b;
              });
    if (ranked.size() > top_requesters_) ranked.resize(top_requesters_);
    if (ranked.empty()) continue;

    // Track how long each datacenter has been a member of the top set.
    for (const DatacenterId dc : all_dcs) {
      const std::uint64_t key = (std::uint64_t{pv} << 32) | dc.value();
      if (std::find(ranked.begin(), ranked.end(), dc) != ranked.end()) {
        ++membership_streak_[key];
      } else {
        membership_streak_.erase(key);
      }
    }
    auto streak = [&](DatacenterId dc) {
      const auto it =
          membership_streak_.find((std::uint64_t{pv} << 32) | dc.value());
      return it == membership_streak_.end() ? 0u : it->second;
    };

    auto has_copy_in = [&](DatacenterId dc) {
      return !ctx.cluster.hosts_in_dc(p, dc).empty();
    };

    const std::uint32_t r = ctx.cluster.replica_count(p);
    const bool overloaded = holder_overloaded(ctx, p, primary);

    // Vacant slots: top requester datacenters currently without a copy.
    std::vector<DatacenterId> vacant;
    for (const DatacenterId dc : ranked) {
      if (!has_copy_in(dc)) vacant.push_back(dc);
    }
    if (vacant.empty()) continue;  // the scheme's structural cap

    // Stale replica: a copy sitting outside the current top requesters
    // (the one whose datacenter issues the fewest queries goes first).
    ServerId stale;
    double stale_queries = 0.0;
    for (const Replica& replica : ctx.cluster.replicas_of(p)) {
      if (replica.primary) continue;
      const DatacenterId dc = ctx.topology.server(replica.server).datacenter;
      if (std::find(ranked.begin(), ranked.end(), dc) != ranked.end()) {
        continue;  // already serving a top requester
      }
      const double q = ctx.stats.requester_queries(p, dc);
      if (!stale.valid() || q < stale_queries) {
        stale = replica.server;
        stale_queries = q;
      }
    }

    // "The migration process is started when another node without any
    // replica joins in the list of the top 3": a stale copy is pulled to
    // the vacant slot. Only when there is nothing left to recycle does
    // the scheme replicate a fresh copy (randomly among the vacant top
    // datacenters, random server inside — the paper's random choosing).
    while (!vacant.empty()) {
      const std::size_t pick =
          static_cast<std::size_t>(ctx.rng.uniform(vacant.size()));
      const ServerId target =
          select_server_random(ctx, vacant[pick], p, ctx.rng);
      if (!target.valid()) {
        vacant.erase(vacant.begin() + static_cast<std::ptrdiff_t>(pick));
        continue;
      }
      // Hysteresis: a migration is triggered by a datacenter *joining*
      // the top set — a membership that has persisted a few epochs, not a
      // one-epoch sampling blip — and the newcomer must be clearly hotter
      // than the replica it displaces.
      const bool worth_moving =
          stale.valid() && streak(vacant[pick]) >= 3 &&
          ctx.stats.requester_queries(p, vacant[pick]) >
              1.5 * stale_queries + 1.0;
      if (worth_moving &&
          actions.migrations.size() < max_migrations_per_epoch_) {
        actions.migrations.push_back(MigrateAction{p, stale, target, {}});
      } else if (!stale.valid() &&
                 (r < rmin ||
                  (overloaded &&
                   r < ctx.config.max_replicas_per_partition))) {
        // Nothing to recycle: grow a fresh copy.
        actions.replications.push_back(ReplicateAction{p, target, {}});
      }
      break;
    }
  }
  return actions;
}

}  // namespace rfh
