// Mutable cluster state: server liveness, replica placement, storage
// accounting, and the consistent-hashing ring of live servers.
//
// Storage is the flat struct-of-arrays pair in sim/tables.h (strided
// replica slab + per-server columns); this class composes them with the
// ring and keeps the cross-cutting invariants:
//  * at most one copy of a partition per server;
//  * every live partition has exactly one primary copy;
//  * storage accounting balances: used[s] == copies_on(s) * unit_size()
//    (a full replica, or one EC fragment of partition_size / k);
//  * dead servers host nothing and are not on the ring.
//
// Construction is bulk: liveness, the per-DC live lists and the ring are
// built in one pass each (the ring via HashRing::add_servers), so a
// 100k-server cluster comes up in O(S log S) instead of the O(S²)
// per-server revive loop the seed used. live_by_dc_ is maintained
// incrementally on kill/revive by sorted insert/erase — bit-identical to
// a full rebuild, which kept each DC's list in ascending server id.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "ring/ring.h"
#include "sim/config.h"
#include "sim/tables.h"
#include "topology/topology.h"

namespace rfh {

class ClusterState {
 public:
  ClusterState(const Topology& topology, const SimConfig& config);

  // --- replica placement -------------------------------------------------
  void add_replica(PartitionId p, ServerId s, bool primary = false);
  void remove_replica(PartitionId p, ServerId s);
  /// Make the copy on `s` (which must exist) the primary of p.
  void set_primary(PartitionId p, ServerId s);

  [[nodiscard]] ServerId primary_of(PartitionId p) const;
  [[nodiscard]] std::span<const Replica> replicas_of(PartitionId p) const;
  [[nodiscard]] bool has_replica(PartitionId p, ServerId s) const;
  /// Copy count of p (primary included).
  [[nodiscard]] std::uint32_t replica_count(PartitionId p) const;
  /// Total copies across all partitions (primary included).
  [[nodiscard]] std::uint32_t total_replicas() const noexcept {
    return partitions_.total();
  }
  /// Servers in `dc` hosting a copy of p, non-primaries first, each group
  /// in ascending server id (the deterministic absorption order).
  [[nodiscard]] std::vector<ServerId> hosts_in_dc(PartitionId p,
                                                  DatacenterId dc) const;
  /// Append the same sequence hosts_in_dc returns into `out` (cleared
  /// first) — the allocation-free variant the sharded propagate uses.
  void hosts_in_dc_into(PartitionId p, DatacenterId dc,
                        std::vector<ServerId>& out) const;

  // --- capacity ------------------------------------------------------------
  [[nodiscard]] Bytes storage_used(ServerId s) const;
  [[nodiscard]] double storage_fraction(ServerId s) const;
  [[nodiscard]] std::uint32_t copies_on(ServerId s) const;
  /// True if `s` may accept a new copy of `p`: live, not already hosting,
  /// under the phi storage limit (Eq. 19) and the virtual-node cap. In
  /// EC mode the zone-diversity rule also applies: a datacenter may hold
  /// at most m fragments of a stripe.
  [[nodiscard]] bool can_accept(ServerId s, PartitionId p) const;

  // --- liveness ------------------------------------------------------------
  [[nodiscard]] bool alive(ServerId s) const;
  [[nodiscard]] std::uint32_t live_server_count() const noexcept {
    return servers_.live_count();
  }
  /// Live servers per datacenter, indexable by DatacenterId::value().
  [[nodiscard]] std::span<const std::vector<ServerId>> live_by_dc() const {
    return live_by_dc_;
  }
  /// Kill a server: drops its copies and ring tokens. Returns the
  /// partitions that lost a copy (with a flag for lost primaries).
  struct LostCopy {
    PartitionId partition;
    bool was_primary = false;
  };
  std::vector<LostCopy> kill_server(ServerId s);
  /// Kill a batch of servers, invoking `on_killed(s, lost)` per victim in
  /// span order with that server's losses in ascending-partition order —
  /// the exact per-server sequence sequential kill_server calls produce.
  /// Ring tokens are dropped in one compaction pass at the end, which is
  /// what keeps mass churn at 100k+ servers from being quadratic; the
  /// ring is not consulted in between, so no caller can observe the
  /// deferred state.
  void kill_servers(
      std::span<const ServerId> servers,
      const std::function<void(ServerId, std::span<const LostCopy>)>&
          on_killed);
  /// Bring a (previously killed or never-started) server online.
  void revive_server(ServerId s);
  /// Batched revive: per-server liveness bookkeeping plus one bulk ring
  /// join (HashRing::add_servers) — same final state as sequential
  /// revive_server calls.
  void revive_servers(std::span<const ServerId> servers);

  // --- misc ------------------------------------------------------------
  [[nodiscard]] const HashRing& ring() const noexcept { return ring_; }
  [[nodiscard]] const Topology& topology() const noexcept { return *topology_; }
  [[nodiscard]] const SimConfig& config() const noexcept { return *config_; }

  /// Debug invariant check (used by tests and after failure injection).
  void check_invariants() const;

 private:
  void live_list_insert(ServerId s);
  void live_list_erase(ServerId s);
  /// Copy removal + liveness bookkeeping for one kill, everything except
  /// the ring update (shared by kill_server and kill_servers).
  std::vector<LostCopy> take_down(ServerId s);

  const Topology* topology_;
  const SimConfig* config_;
  PartitionTable partitions_;
  ServerTable servers_;
  std::vector<std::vector<ServerId>> live_by_dc_;
  HashRing ring_;
};

}  // namespace rfh
