#include "stream/stream_sim.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "obs/events.h"
#include "stream/queue_model.h"

namespace rfh {

StreamSimulator::StreamSimulator(const World& world, MetricRegistry* registry,
                                 const StreamConfig& config,
                                 std::uint64_t seed)
    : world_(&world),
      registry_(registry),
      config_(config),
      arrivals_(config, seed) {
  const std::size_t dcs = world.topology.datacenter_count();
  dc_latency_.resize(dcs);
  per_server_.resize(world.topology.server_count());
  dc_totals_.resize(dcs, 0.0);

  if (registry_ == nullptr) return;
  arrivals_total_ = &registry_->counter(
      "rfh_stream_arrivals_total", {},
      "Timestamped query arrivals processed by the stream layer");
  served_total_ = &registry_->counter(
      "rfh_stream_served_total", {},
      "Arrivals accepted by a server queue and served");
  blocked_total_ = &registry_->counter(
      "rfh_stream_blocked_total", {},
      "Arrivals blocked by the batch engine before reaching a queue");
  dropped_total_ = &registry_->counter(
      "rfh_dropped_backpressure_total", {},
      "Arrivals dropped because a server's waiting room was at --queue-cap");
  queue_depth_ = &registry_->gauge(
      "rfh_queue_depth", {},
      "Largest waiting-room occupancy observed in the last epoch");
  for (std::size_t d = 0; d < dcs; ++d) {
    const std::string& name =
        world.topology.datacenter(DatacenterId{static_cast<std::uint32_t>(d)})
            .name;
    dropped_by_dc_.push_back(&registry_->counter(
        "rfh_dropped_backpressure_total", {{"dc", name}},
        "Arrivals dropped because a server's waiting room was at "
        "--queue-cap"));
    queue_depth_by_dc_.push_back(&registry_->gauge(
        "rfh_queue_depth", {{"dc", name}},
        "Largest waiting-room occupancy observed in the last epoch"));
    latency_by_dc_.push_back(&registry_->histogram(
        "rfh_stream_latency_ms", {{"dc", name}},
        "End-to-end query latency (routing + queueing + blocking penalty) "
        "by requester datacenter"));
  }
}

const Histogram& StreamSimulator::dc_latency(DatacenterId dc) const {
  RFH_ASSERT(dc.valid() && dc.value() < dc_latency_.size());
  return dc_latency_[dc.value()];
}

Histogram StreamSimulator::merged_latency() const {
  Histogram out;
  for (const Histogram& h : dc_latency_) out.merge(h);
  return out;
}

StreamEpochStats StreamSimulator::process_epoch(Simulation& sim,
                                                const EpochReport& report) {
  const Epoch epoch = report.epoch;
  const std::vector<FlowSegment>& segments = flow_log_.segments();
  const std::size_t dcs = dc_totals_.size();

  StreamEpochStats stats;
  stats.epoch = epoch;

  // --- group segments by requester DC ---------------------------------
  std::fill(dc_totals_.begin(), dc_totals_.end(), 0.0);
  std::vector<std::vector<std::size_t>> by_dc(dcs);
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const FlowSegment& seg = segments[i];
    RFH_ASSERT(seg.requester.valid() && seg.requester.value() < dcs);
    dc_totals_[seg.requester.value()] += seg.queries;
    by_dc[seg.requester.value()].push_back(i);
    stats.arrivals += seg.queries;
  }

  // --- disaggregate each DC's total into timestamped arrivals ---------
  // One timestamp stream per (epoch, DC): n = round(total) arrivals of
  // equal weight total/n, allocated to the DC's segments in engine order
  // by cumulative rounding (so every segment gets its proportional share
  // and the counts sum to exactly n).
  Histogram epoch_hist;
  double wait_sum = 0.0;
  double wait_weight = 0.0;
  std::uint64_t seq = 0;

  const auto sample = [&](DatacenterId requester, double latency_ms,
                          double weight) {
    dc_latency_[requester.value()].add(weight, latency_ms);
    epoch_hist.add(weight, latency_ms);
    if (!latency_by_dc_.empty()) {
      latency_by_dc_[requester.value()]->observe(latency_ms, weight);
    }
  };

  for (std::size_t d = 0; d < dcs; ++d) {
    const double total = dc_totals_[d];
    if (total <= 0.0) continue;
    long long n = std::llround(total);
    if (n <= 0) n = 1;
    const double weight = total / static_cast<double>(n);
    const std::vector<double> ts = arrivals_.timestamps(
        epoch, DatacenterId{static_cast<std::uint32_t>(d)},
        static_cast<std::size_t>(n));

    double acc = 0.0;
    std::size_t next = 0;
    const std::vector<std::size_t>& idxs = by_dc[d];
    for (std::size_t k = 0; k < idxs.size(); ++k) {
      const FlowSegment& seg = segments[idxs[k]];
      const long long lo = std::llround(acc / weight);
      acc += seg.queries;
      // The last segment absorbs any rounding residue so the allocation
      // always consumes exactly n timestamps.
      const long long hi =
          (k + 1 == idxs.size()) ? n : std::llround(acc / weight);
      for (long long c = lo; c < hi && next < ts.size(); ++c) {
        const double t = ts[next++];
        if (seg.server.valid()) {
          per_server_[seg.server.value()].push_back(QueuedArrival{
              t, seq++, weight, seg.latency_ms, seg.requester});
        } else {
          stats.blocked += weight;
          if (seg.latency_ms >= 0.0) {
            // Batch-blocked residual: same penalized latency sample the
            // batch histogram records.
            sample(seg.requester, seg.latency_ms, weight);
          }
          // else lost primary: unserved with no latency sample, exactly
          // like batch mode.
        }
      }
    }
  }

  // --- queue every served arrival at its server ------------------------
  // Servers in id order, arrivals in (t, seq) order: fully deterministic.
  // Queues start empty each epoch — a 10 s epoch is ~7 mean service
  // times, so carry-over is negligible and epochs stay independent.
  const double cv_factor = 1.0 + config_.service_cv * config_.service_cv;
  std::vector<std::uint32_t> dc_depth(dcs, 0);
  const std::size_t servers = per_server_.size();
  for (std::size_t sid = 0; sid < servers; ++sid) {
    std::vector<QueuedArrival>& list = per_server_[sid];
    if (list.empty()) continue;
    std::sort(list.begin(), list.end(),
              [](const QueuedArrival& a, const QueuedArrival& b) {
                return a.t != b.t ? a.t < b.t : a.seq < b.seq;
              });
    const Server& server =
        world_->topology.server(ServerId{static_cast<std::uint32_t>(sid)});
    ServerQueue queue(server.spec.service_channels, config_.service_time_ms,
                      config_.queue_cap);
    double dropped_here = 0.0;
    for (const QueuedArrival& a : list) {
      const ServerQueue::Outcome out = queue.offer(a.t);
      if (out.accepted) {
        // M/D/c simulated wait, corrected to M/G/c by the Allen-Cunneen
        // factor (see erlang_mgc_mean_wait): W(M/D/c) ~= W(M/M/c)/2 and
        // W(M/G/c) ~= W(M/M/c)(1+cv^2)/2, so the ratio is (1+cv^2).
        const double wait_ms = out.wait_ms * cv_factor;
        stats.served += a.weight;
        wait_sum += wait_ms * a.weight;
        wait_weight += a.weight;
        sample(a.requester, a.route_latency_ms + wait_ms, a.weight);
      } else {
        stats.dropped += a.weight;
        dropped_here += a.weight;
      }
    }
    const std::uint32_t depth = queue.max_depth();
    stats.max_queue_depth = std::max(stats.max_queue_depth, depth);
    const std::uint32_t dc = server.datacenter.value();
    dc_depth[dc] = std::max(dc_depth[dc], depth);
    if (dropped_here > 0.0) {
      if (dropped_total_ != nullptr) {
        dropped_total_->inc(dropped_here);
        dropped_by_dc_[dc]->inc(dropped_here);
      }
      sim.events().emit(QueueSaturated{
          epoch, ServerId{static_cast<std::uint32_t>(sid)}, server.datacenter,
          depth, config_.queue_cap, dropped_here});
    }
    list.clear();
  }

  stats.mean_wait_ms = wait_weight > 0.0 ? wait_sum / wait_weight : 0.0;
  stats.p50_ms = epoch_hist.percentile(0.5);
  stats.p99_ms = epoch_hist.percentile(0.99);
  stats.p999_ms = epoch_hist.percentile(0.999);

  if (registry_ != nullptr) {
    arrivals_total_->inc(stats.arrivals);
    served_total_->inc(stats.served);
    blocked_total_->inc(stats.blocked);
    queue_depth_->set(stats.max_queue_depth);
    for (std::size_t d = 0; d < dcs; ++d) {
      queue_depth_by_dc_[d]->set(dc_depth[d]);
    }
  }

  sim.events().emit(StreamEpochSummary{epoch, stats.arrivals, stats.served,
                                       stats.blocked, stats.dropped,
                                       stats.max_queue_depth,
                                       stats.mean_wait_ms});
  last_ = stats;
  return stats;
}

}  // namespace rfh
