// Streaming load subsystem (src/stream/): arrival generation, the
// bounded M/D/c server queue, the analytic M/G/c bridge, and the
// end-to-end accounting contract
// (arrivals == served + blocked + dropped).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/erlang.h"
#include "common/rng.h"
#include "fault/invariants.h"
#include "harness/runner.h"
#include "stream/arrival.h"
#include "stream/queue_model.h"
#include "stream/stream_sim.h"

namespace rfh {
namespace {

// ---------------------------------------------------------------------
// ArrivalGenerator

TEST(ArrivalGeneratorTest, TimestampsAreSortedInRangeAndExactCount) {
  StreamConfig config;
  const ArrivalGenerator gen(config, 42);
  const std::vector<double> ts = gen.timestamps(Epoch{3}, DatacenterId{2}, 500);
  ASSERT_EQ(ts.size(), 500u);
  EXPECT_TRUE(std::is_sorted(ts.begin(), ts.end()));
  for (const double t : ts) {
    EXPECT_GE(t, 0.0);
    EXPECT_LT(t, config.epoch_ms);
  }
}

TEST(ArrivalGeneratorTest, PureFunctionOfSeedEpochDcAndCount) {
  StreamConfig config;
  const ArrivalGenerator a(config, 42);
  const ArrivalGenerator b(config, 42);
  // Draw order must not matter: b samples other (epoch, DC) streams
  // first, then the same one — forked per-(epoch, DC) streams make the
  // result independent of any other cell's consumption.
  (void)b.timestamps(Epoch{9}, DatacenterId{7}, 123);
  (void)b.timestamps(Epoch{3}, DatacenterId{1}, 77);
  EXPECT_EQ(a.timestamps(Epoch{3}, DatacenterId{2}, 64),
            b.timestamps(Epoch{3}, DatacenterId{2}, 64));
}

TEST(ArrivalGeneratorTest, DistinctStreamsPerEpochDcAndSeed) {
  StreamConfig config;
  const ArrivalGenerator gen(config, 42);
  const ArrivalGenerator other(config, 43);
  const auto base = gen.timestamps(Epoch{3}, DatacenterId{2}, 64);
  EXPECT_NE(base, gen.timestamps(Epoch{4}, DatacenterId{2}, 64));
  EXPECT_NE(base, gen.timestamps(Epoch{3}, DatacenterId{3}, 64));
  EXPECT_NE(base, other.timestamps(Epoch{3}, DatacenterId{2}, 64));
}

TEST(ArrivalGeneratorTest, FlashWindowConcentratesArrivals) {
  StreamConfig config;
  config.diurnal_amplitude = 0.0;
  config.flash_factor = 8.0;
  config.flash_start = 0.0;
  config.flash_end = 0.25;
  const ArrivalGenerator gen(config, 7);
  const auto ts = gen.timestamps(Epoch{0}, DatacenterId{0}, 4000);
  const double cut = config.flash_start * config.epoch_ms +
                     0.25 * config.epoch_ms;
  const auto in_window = static_cast<double>(
      std::count_if(ts.begin(), ts.end(),
                    [&](double t) { return t < cut; }));
  // 8x intensity over a quarter of the epoch: expected share
  // 8*0.25 / (8*0.25 + 0.75) ~= 0.727; without the flash it would be 0.25.
  EXPECT_GT(in_window / 4000.0, 0.6);
}

TEST(ArrivalGeneratorTest, IntensityIsFlooredPositive) {
  StreamConfig config;
  config.diurnal_amplitude = 1.5;  // sine dips below zero without a floor
  const ArrivalGenerator gen(config, 1);
  for (const double frac : {0.0, 0.3, 0.6, 0.9}) {
    for (Epoch e = 0; e < 100; ++e) {
      EXPECT_GE(gen.intensity(e, frac), 0.05);
    }
  }
}

// ---------------------------------------------------------------------
// ServerQueue

TEST(ServerQueueTest, FreeChannelServesImmediately) {
  ServerQueue queue(/*channels=*/2, /*service_ms=*/10.0, /*queue_cap=*/4);
  const auto a = queue.offer(0.0);
  const auto b = queue.offer(0.0);
  EXPECT_TRUE(a.accepted);
  EXPECT_TRUE(b.accepted);
  EXPECT_DOUBLE_EQ(a.wait_ms, 0.0);
  EXPECT_DOUBLE_EQ(b.wait_ms, 0.0);
  EXPECT_EQ(queue.max_depth(), 0u);
}

TEST(ServerQueueTest, SingleChannelFifoWaits) {
  ServerQueue queue(/*channels=*/1, /*service_ms=*/10.0, /*queue_cap=*/8);
  EXPECT_DOUBLE_EQ(queue.offer(0.0).wait_ms, 0.0);   // served 0..10
  EXPECT_DOUBLE_EQ(queue.offer(1.0).wait_ms, 9.0);   // served 10..20
  EXPECT_DOUBLE_EQ(queue.offer(2.0).wait_ms, 18.0);  // served 20..30
  EXPECT_DOUBLE_EQ(queue.offer(25.0).wait_ms, 5.0);  // waits for #3
  EXPECT_DOUBLE_EQ(queue.offer(100.0).wait_ms, 0.0);  // queue drained
  EXPECT_EQ(queue.accepted(), 5u);
  EXPECT_EQ(queue.dropped(), 0u);
}

TEST(ServerQueueTest, DropsAtQueueCapAndNeverExceedsIt) {
  ServerQueue queue(/*channels=*/1, /*service_ms=*/100.0, /*queue_cap=*/2);
  EXPECT_TRUE(queue.offer(0.0).accepted);  // in service
  EXPECT_TRUE(queue.offer(0.0).accepted);  // waiter 1
  EXPECT_TRUE(queue.offer(0.0).accepted);  // waiter 2 (room now full)
  const auto dropped = queue.offer(0.0);
  EXPECT_FALSE(dropped.accepted);
  EXPECT_EQ(dropped.depth, 2u);
  EXPECT_EQ(queue.dropped(), 1u);
  EXPECT_LE(queue.max_depth(), 2u);
}

TEST(ServerQueueTest, MaxDepthStaysWithinCapUnderRandomLoad) {
  // Heavy overload (a = 4 on one channel): depth must still be bounded.
  Rng rng(99);
  for (const std::uint32_t cap : {1u, 3u, 16u}) {
    ServerQueue queue(/*channels=*/1, /*service_ms=*/4.0, cap);
    double t = 0.0;
    for (int i = 0; i < 5000; ++i) {
      t += -std::log(1.0 - rng.uniform_real());
      (void)queue.offer(t);
    }
    EXPECT_LE(queue.max_depth(), cap);
    EXPECT_GT(queue.dropped(), 0u);
  }
}

TEST(ServerQueueTest, ZeroChannelsDropsEverything) {
  ServerQueue queue(/*channels=*/0, /*service_ms=*/10.0, /*queue_cap=*/4);
  EXPECT_FALSE(queue.offer(0.0).accepted);
  EXPECT_FALSE(queue.offer(5.0).accepted);
  EXPECT_EQ(queue.dropped(), 2u);
  EXPECT_EQ(queue.accepted(), 0u);
}

// ---------------------------------------------------------------------
// Analytic bridge: the simulated M/D/c wait, scaled by (1 + cv^2),
// matches erlang_mgc_mean_wait (Allen-Cunneen) for Poisson arrivals.

double simulated_mdc_wait(double offered, std::uint32_t channels,
                          std::uint64_t seed) {
  // Poisson arrivals at rate `offered` per service time; deterministic
  // unit service. Uncapped queue (stable since offered < channels).
  ServerQueue queue(channels, /*service_ms=*/1.0, /*queue_cap=*/1000000);
  Rng rng(seed);
  double t = 0.0;
  double total_wait = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    t += -std::log(1.0 - rng.uniform_real()) / offered;
    total_wait += queue.offer(t).wait_ms;
  }
  return total_wait / n;
}

TEST(QueueAnalyticTest, SimulatedWaitTracksAllenCunneen) {
  struct Case {
    double offered;
    std::uint32_t channels;
  };
  for (const Case c : {Case{0.7, 1}, Case{2.0, 4}, Case{3.2, 4}}) {
    const double simulated = simulated_mdc_wait(c.offered, c.channels, 1234);
    const double analytic = erlang_mgc_mean_wait(c.offered, c.channels,
                                                 /*cv=*/0.0);
    // Allen-Cunneen is exact for c = 1 and a few percent off for c > 1;
    // the simulation adds sampling noise on top.
    EXPECT_NEAR(simulated, analytic, 0.15 * analytic)
        << "a=" << c.offered << " c=" << c.channels;
    // cv scaling is a pure multiplier on both sides, so checking one cv
    // covers them all: simulated * (1 + cv^2) vs analytic M/G/c.
    const double cv = 2.0;
    EXPECT_NEAR(simulated * (1.0 + cv * cv),
                erlang_mgc_mean_wait(c.offered, c.channels, cv),
                0.15 * erlang_mgc_mean_wait(c.offered, c.channels, cv));
  }
}

// ---------------------------------------------------------------------
// End-to-end: a stream run satisfies the accounting contract under the
// invariant checker, and reports latency percentiles.

TEST(StreamSimulatorTest, FullRunAccountingAndPercentiles) {
  Scenario scenario = Scenario::paper_random_query();
  scenario.workload = WorkloadKind::kStream;
  scenario.epochs = 20;
  InvariantChecker checker(InvariantChecker::Mode::kRecord);
  const PolicyRun run = run_policy(scenario, PolicyKind::kRfh, {},
                                   RfhPolicy::Options{}, nullptr, nullptr,
                                   nullptr, &checker);
  EXPECT_TRUE(checker.violations().empty()) << checker.summary();
  ASSERT_EQ(run.series.size(), 20u);
  double arrivals = 0.0;
  for (const EpochMetrics& m : run.series) {
    arrivals += m.stream_arrivals;
    EXPECT_NEAR(m.stream_arrivals,
                m.stream_served + m.stream_blocked + m.stream_dropped,
                1e-6 * std::max(1.0, m.stream_arrivals));
    EXPECT_LE(m.stream_max_queue_depth, scenario.stream.queue_cap);
    // Percentiles are ordered whenever anything was sampled.
    if (m.stream_served > 0.0) {
      EXPECT_LE(m.stream_p50_ms, m.stream_p99_ms);
      EXPECT_LE(m.stream_p99_ms, m.stream_p999_ms);
      EXPECT_GT(m.stream_p999_ms, 0.0);
    }
  }
  EXPECT_GT(arrivals, 0.0);
}

TEST(StreamSimulatorTest, OverloadTriggersBackpressureNotViolations) {
  Scenario scenario = Scenario::paper_random_query();
  scenario.workload = WorkloadKind::kStream;
  scenario.epochs = 12;
  scenario.stream.arrival_rate = 4000.0;
  scenario.stream.queue_cap = 3;
  InvariantChecker checker(InvariantChecker::Mode::kRecord);
  const PolicyRun run = run_policy(scenario, PolicyKind::kRfh, {},
                                   RfhPolicy::Options{}, nullptr, nullptr,
                                   nullptr, &checker);
  EXPECT_TRUE(checker.violations().empty()) << checker.summary();
  double dropped = 0.0;
  std::uint32_t max_depth = 0;
  for (const EpochMetrics& m : run.series) {
    dropped += m.stream_dropped;
    max_depth = std::max(max_depth, m.stream_max_queue_depth);
  }
  EXPECT_GT(dropped, 0.0);
  EXPECT_LE(max_depth, 3u);
}

// ---------------------------------------------------------------------
// check_stream flags violated contracts (fabricated stats).

TEST(InvariantCheckerStreamTest, FlagsAccountingMismatch) {
  InvariantChecker checker(InvariantChecker::Mode::kRecord);
  StreamConfig config;
  StreamEpochStats stats;
  stats.epoch = 1;
  stats.arrivals = 100.0;
  stats.served = 80.0;
  stats.blocked = 10.0;
  stats.dropped = 0.0;  // 90 != 100
  EXPECT_GT(checker.check_stream(stats, config, /*batch_total=*/100.0), 0u);
}

TEST(InvariantCheckerStreamTest, FlagsDepthOverCapAndBatchMismatch) {
  InvariantChecker checker(InvariantChecker::Mode::kRecord);
  StreamConfig config;
  config.queue_cap = 4;
  StreamEpochStats stats;
  stats.epoch = 2;
  stats.arrivals = 50.0;
  stats.served = 50.0;
  stats.max_queue_depth = 5;  // > cap
  EXPECT_GT(checker.check_stream(stats, config, /*batch_total=*/50.0), 0u);

  StreamEpochStats mismatched;
  mismatched.epoch = 3;
  mismatched.arrivals = 50.0;
  mismatched.served = 50.0;
  // Stream total disagreeing with the batch total breaks equivalence.
  EXPECT_GT(checker.check_stream(mismatched, config, /*batch_total=*/60.0),
            0u);
}

TEST(InvariantCheckerStreamTest, CleanStatsPass) {
  InvariantChecker checker(InvariantChecker::Mode::kRecord);
  StreamConfig config;
  StreamEpochStats stats;
  stats.epoch = 4;
  stats.arrivals = 100.0;
  stats.served = 70.0;
  stats.blocked = 20.0;
  stats.dropped = 10.0;
  stats.max_queue_depth = config.queue_cap;
  EXPECT_EQ(checker.check_stream(stats, config, /*batch_total=*/100.0), 0u);
  EXPECT_TRUE(checker.violations().empty());
}

}  // namespace
}  // namespace rfh
