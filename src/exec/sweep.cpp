#include "exec/sweep.h"

#include <chrono>
#include <cstdio>
#include <optional>
#include <sstream>
#include <utility>

#include "common/assert.h"
#include "exec/thread_pool.h"
#include "harness/report.h"
#include "obs/sinks.h"
#include "obs/timeline.h"
#include "telemetry/registry.h"

namespace rfh {

namespace {

/// FNV-1a 64-bit over a byte string.
std::uint64_t fnv1a(std::uint64_t hash, std::string_view bytes) {
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void digest_double(std::uint64_t& hash, double value) {
  char buf[32];
  const int n = std::snprintf(buf, sizeof buf, "%.17g", value);
  hash = fnv1a(hash, std::string_view(buf, static_cast<std::size_t>(n)));
}

void digest_u64(std::uint64_t& hash, std::uint64_t value) {
  char buf[24];
  const int n = std::snprintf(buf, sizeof buf, "%llu",
                              static_cast<unsigned long long>(value));
  hash = fnv1a(hash, std::string_view(buf, static_cast<std::size_t>(n)));
}

void append_double(std::string& out, double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  out += buf;
}

/// Minimal JSON string escaping for our own labels (quotes, backslashes,
/// control characters).
std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

constexpr PolicyKind kComparedPolicies[] = {
    PolicyKind::kRequest, PolicyKind::kOwner, PolicyKind::kRandom,
    PolicyKind::kRfh};

}  // namespace

std::uint64_t series_digest(std::span<const EpochMetrics> series) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (const EpochMetrics& m : series) {
    digest_u64(hash, m.epoch);
    digest_double(hash, m.utilization);
    digest_u64(hash, m.total_replicas);
    digest_double(hash, m.avg_replicas_per_partition);
    digest_double(hash, m.replication_cost_total);
    digest_double(hash, m.replication_cost_avg);
    digest_u64(hash, m.migrations_total);
    digest_double(hash, m.migrations_avg);
    digest_double(hash, m.migration_cost_total);
    digest_double(hash, m.migration_cost_avg);
    digest_double(hash, m.load_imbalance);
    digest_double(hash, m.path_length);
    digest_double(hash, m.latency_mean_ms);
    digest_double(hash, m.latency_p50_ms);
    digest_double(hash, m.latency_p99_ms);
    digest_double(hash, m.latency_p999_ms);
    digest_double(hash, m.sla_attainment);
    digest_double(hash, m.diversity_level);
    digest_double(hash, m.dc_survivable_fraction);
    digest_double(hash, m.mean_replica_lag);
    digest_double(hash, m.stale_read_fraction);
    digest_double(hash, m.lost_writes_total);
    digest_double(hash, m.unserved_fraction);
    digest_u64(hash, m.replications_this_epoch);
    digest_u64(hash, m.migrations_this_epoch);
    digest_u64(hash, m.suicides_this_epoch);
    digest_u64(hash, m.dropped_this_epoch);
    digest_u64(hash, m.dropped_bandwidth);
    digest_u64(hash, m.dropped_storage_cap);
    digest_u64(hash, m.dropped_node_cap);
    digest_u64(hash, m.dropped_dead_target);
    digest_u64(hash, m.dropped_invalid);
    digest_double(hash, m.stream_arrivals);
    digest_double(hash, m.stream_served);
    digest_double(hash, m.stream_blocked);
    digest_double(hash, m.stream_dropped);
    digest_u64(hash, m.stream_max_queue_depth);
    digest_double(hash, m.stream_wait_mean_ms);
    digest_double(hash, m.stream_p50_ms);
    digest_double(hash, m.stream_p99_ms);
    digest_double(hash, m.stream_p999_ms);
  }
  return hash;
}

SweepRunner::SweepRunner(SweepOptions options) : options_(options) {}

unsigned SweepRunner::effective_jobs() const noexcept {
  return options_.jobs == 0 ? ThreadPool::default_jobs() : options_.jobs;
}

SweepCellResult SweepRunner::run_cell(const SweepCell& cell,
                                      std::size_t index) const {
  SweepCellResult result;
  result.index = index;
  result.label = cell.label;
  result.policy = cell.policy;
  result.seed = cell.scenario.sim.seed;

  MetricRegistry registry;
  std::ostringstream trace;
  JsonlSink sink(trace);
  std::optional<TimelineStore> timeline;
  if (options_.collect_timeline) {
    timeline.emplace(cell.scenario.sim.partitions);
  }
  result.run = run_policy(cell.scenario, cell.policy, cell.failures, cell.rfh,
                          options_.collect_traces ? &sink : nullptr,
                          options_.collect_metrics ? &registry : nullptr,
                          /*profiler=*/nullptr, /*checker=*/nullptr,
                          timeline ? &*timeline : nullptr);
  if (options_.collect_metrics) {
    std::ostringstream metrics;
    registry.write_json(metrics);
    result.metrics_json = std::move(metrics).str();
  }
  if (options_.collect_traces) {
    result.trace_jsonl = std::move(trace).str();
  }
  if (timeline) {
    result.timeline_digest = timeline->digest();
    std::ostringstream dump;
    timeline->dump_jsonl(dump);
    result.timeline_jsonl = std::move(dump).str();
  }
  return result;
}

std::vector<SweepCellResult> SweepRunner::run(
    std::span<const SweepCell> cells) const {
  const unsigned jobs = effective_jobs();
  std::vector<SweepCellResult> results;
  results.reserve(cells.size());

  const auto start = std::chrono::steady_clock::now();
  ThreadPool::Stats pool_stats;
  if (jobs <= 1 || cells.size() <= 1) {
    // Serial baseline: cells execute inline, in index order.
    for (std::size_t i = 0; i < cells.size(); ++i) {
      results.push_back(run_cell(cells[i], i));
    }
  } else {
    ThreadPool pool(std::min<unsigned>(
        jobs, static_cast<unsigned>(cells.size())));
    std::vector<std::future<SweepCellResult>> futures;
    futures.reserve(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const SweepCell& cell = cells[i];
      futures.push_back(pool.submit([this, &cell, i] {
        return run_cell(cell, i);
      }));
    }
    // Merge strictly in cell-index order; the calling thread helps drain
    // the pool while waiting. A throwing cell rethrows from the lowest
    // failing index.
    for (auto& future : futures) {
      results.push_back(pool.wait(future));
    }
    // A future turns ready inside the packaged_task, before the worker
    // bumps its executed/busy counters; drain to quiescence so the stats
    // snapshot below counts every cell.
    pool.wait_idle();
    pool_stats = pool.stats();
  }

  if (options_.registry != nullptr) {
    const auto wall = std::chrono::steady_clock::now() - start;
    const double wall_ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(wall).count());
    MetricRegistry& reg = *options_.registry;
    reg.counter("rfh_sweep_cells_total", {},
                "Sweep cells executed")
        .inc(static_cast<double>(cells.size()));
    reg.gauge("rfh_sweep_jobs", {}, "Worker threads of the last sweep")
        .set(static_cast<double>(jobs));
    reg.counter("rfh_pool_tasks_executed_total", {},
                "Tasks completed by the sweep pool")
        .inc(static_cast<double>(pool_stats.executed));
    reg.counter("rfh_pool_tasks_stolen_total", {},
                "Tasks taken from a sibling worker's deque")
        .inc(static_cast<double>(pool_stats.stolen));
    reg.gauge("rfh_pool_occupancy_ratio", {},
              "Summed task wall time / (jobs * sweep wall time)")
        .set(wall_ns > 0.0 ? static_cast<double>(pool_stats.busy_ns) /
                                 (static_cast<double>(jobs) * wall_ns)
                           : 0.0);
  }
  return results;
}

std::string sweep_results_json(std::span<const SweepCellResult> results) {
  std::string out;
  out += "{\"schema\":\"rfh-sweep/1\",\"cells\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SweepCellResult& r = results[i];
    if (i > 0) out += ',';
    out += "{\"index\":";
    out += std::to_string(r.index);
    out += ",\"label\":\"" + json_escape(r.label) + "\"";
    out += ",\"policy\":\"" + std::string(policy_name(r.policy)) + "\"";
    out += ",\"seed\":" + std::to_string(r.seed);
    out += ",\"epochs\":" + std::to_string(r.run.series.size());
    out += ",\"faults_injected\":" + std::to_string(r.run.faults_injected);
    out += ",\"killed\":" + std::to_string(r.run.killed.size());
    out += ",\"slo_breaches\":" + std::to_string(r.run.slo_breaches.size());
    out += ",\"utilization_tail50\":";
    append_double(out, tail_mean(r.run, &EpochMetrics::utilization, 50));
    out += ",\"path_length_tail50\":";
    append_double(out, tail_mean(r.run, &EpochMetrics::path_length, 50));
    out += ",\"replication_cost_total\":";
    append_double(out, r.run.series.empty()
                           ? 0.0
                           : r.run.series.back().replication_cost_total);
    // Fingerprint of every per-epoch field plus the kill order — the
    // bit-identity witness the differential tests compare.
    std::uint64_t digest = series_digest(r.run.series);
    for (const ServerId victim : r.run.killed) {
      digest_u64(digest, victim.value());
    }
    for (const std::uint64_t count : r.run.faults_by_kind) {
      digest_u64(digest, count);
    }
    // SLO breach episodes and the causal flight record fold into the same
    // fingerprint; runs without either keep their prior digests (no bytes
    // are folded for empty breach lists or a zero timeline digest).
    for (const SloBreachRecord& b : r.run.slo_breaches) {
      digest_u64(digest, b.epoch);
      digest_u64(digest, static_cast<std::uint64_t>(b.objective));
      digest_double(digest, b.observed);
      digest_double(digest, b.target);
      digest_double(digest, b.burn_short);
      digest_double(digest, b.burn_long);
      digest_u64(digest, b.cause_id);
    }
    if (r.timeline_digest != 0) {
      digest_u64(digest, r.timeline_digest);
    }
    char buf[24];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(digest));
    out += ",\"series_digest\":\"";
    out += buf;
    out += "\"}";
  }
  out += "]}";
  return out;
}

ComparativeResult run_comparison_pooled(
    const Scenario& scenario, const std::vector<FailureEvent>& failures,
    unsigned jobs) {
  std::vector<SweepCell> cells;
  cells.reserve(std::size(kComparedPolicies));
  for (const PolicyKind kind : kComparedPolicies) {
    SweepCell cell;
    cell.label = std::string(policy_name(kind));
    cell.scenario = scenario;
    cell.policy = kind;
    cell.failures = failures;
    cells.push_back(std::move(cell));
  }
  SweepOptions options;
  options.jobs = jobs == 0
                     ? std::min<unsigned>(ThreadPool::default_jobs(),
                                          static_cast<unsigned>(cells.size()))
                     : jobs;
  const SweepRunner runner(options);
  std::vector<SweepCellResult> results = runner.run(cells);
  ComparativeResult comparison;
  comparison.runs.reserve(results.size());
  for (SweepCellResult& r : results) {
    comparison.runs.push_back(std::move(r.run));
  }
  return comparison;
}

}  // namespace rfh
