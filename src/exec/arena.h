// Bump-allocated scratch arena for per-epoch working memory.
//
// The engine's sharded phases need short-lived flat buffers every epoch
// (dense accumulator columns, per-shard delta logs). Allocating them from
// the heap each epoch would dominate the phase cost at 100k servers, so
// the arena bump-allocates from coarse blocks and reset() recycles every
// block without returning memory to the OS — steady-state epochs perform
// zero allocations once the high-water mark is reached.
//
// Restricted to trivially destructible T: reset() never runs destructors,
// it just rewinds the bump pointers. Allocations are value-initialized
// (numeric scratch starts at zero). Spans are valid until the next
// reset(); the arena itself is not thread-safe — give each shard its own
// spans before the fan-out, or its own arena.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace rfh {

class ScratchArena {
 public:
  explicit ScratchArena(std::size_t block_bytes = std::size_t{1} << 20)
      : block_bytes_(block_bytes == 0 ? std::size_t{1} << 20 : block_bytes) {}

  /// Value-initialized span of `count` Ts, aligned for T.
  template <typename T>
  [[nodiscard]] std::span<T> alloc(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena reset() never runs destructors");
    if (count == 0) return {};
    void* raw = allocate(count * sizeof(T), alignof(T));
    std::memset(raw, 0, count * sizeof(T));
    // Trivially destructible scratch types here are also trivially
    // default-constructible, so zero bytes are a valid value state.
    return {static_cast<T*>(raw), count};
  }

  /// Rewind every block; capacity is kept for the next epoch.
  void reset() noexcept {
    for (Block& block : blocks_) block.used = 0;
    current_ = 0;
  }

  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    std::size_t total = 0;
    for (const Block& block : blocks_) total += block.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  void* allocate(std::size_t bytes, std::size_t align) {
    for (; current_ < blocks_.size(); ++current_) {
      Block& block = blocks_[current_];
      const std::size_t aligned = (block.used + align - 1) & ~(align - 1);
      if (aligned + bytes <= block.size) {
        block.used = aligned + bytes;
        return block.data.get() + aligned;
      }
    }
    Block fresh;
    fresh.size = std::max(block_bytes_, bytes + align);
    fresh.data = std::make_unique<std::byte[]>(fresh.size);
    fresh.used = bytes;
    blocks_.push_back(std::move(fresh));
    current_ = blocks_.size() - 1;
    return blocks_.back().data.get();
  }

  std::size_t block_bytes_;
  std::vector<Block> blocks_;
  std::size_t current_ = 0;
};

}  // namespace rfh
