# Empty dependencies file for rfh_common.
# This may be replaced when dependencies are built.
