// TimelineStore / TimelineQuery unit suite (obs/timeline.h): budget
// clamps, ring eviction order, deterministic reservoir sampling, the
// summary filter, cause-chain walking, the why() query and the
// flat-timeline fallback for records without cause ids.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/event_bus.h"
#include "obs/timeline.h"

namespace rfh {
namespace {

ServerFailed failed(Epoch epoch, std::uint32_t server) {
  return ServerFailed{epoch, ServerId{server}};
}

TrafficShift shift(Epoch epoch, std::uint32_t partition, double before,
                   double after) {
  return TrafficShift{epoch, PartitionId{partition}, before, after};
}

ReplicaAdded replica(Epoch epoch, std::uint32_t partition) {
  ReplicaAdded event;
  event.epoch = epoch;
  event.partition = PartitionId{partition};
  event.source = ServerId{5};
  event.target = ServerId{7};
  event.cost = 0.5;
  event.why.rule = DecisionRule::kOverloadHub;
  event.why.observed = 12.0;
  event.why.threshold = 4.0;
  return event;
}

TEST(TimelineRecordTest, CondensesDecisionEventWithEnvelope) {
  const TimelineRecord rec =
      make_timeline_record(Event{replica(9, 3)}, TraceMeta{42, 17});
  EXPECT_EQ(rec.id, 42u);
  EXPECT_EQ(rec.parent, 17u);
  EXPECT_EQ(rec.epoch, 9u);
  EXPECT_EQ(rec.partition, 3u);
  EXPECT_EQ(rec.server, 7u);  // target
  EXPECT_EQ(rec.aux, 5u);     // source
  EXPECT_EQ(rec.a, 12.0);     // observed
  EXPECT_EQ(rec.b, 4.0);      // threshold
  EXPECT_EQ(rec.type, event_type_index<ReplicaAdded>());
  EXPECT_EQ(static_cast<DecisionRule>(rec.code), DecisionRule::kOverloadHub);
}

TEST(TimelineStoreTest, BudgetClampsRingCapacities) {
  TimelineOptions tiny;
  tiny.byte_budget = 0;
  const TimelineStore small(4, tiny);
  EXPECT_EQ(small.ring_capacity(), tiny.min_ring);
  EXPECT_EQ(small.global_capacity(), 64u);
  EXPECT_EQ(small.reservoir_capacity(), 64u);

  TimelineOptions huge;
  huge.byte_budget = std::size_t{1} << 30;
  const TimelineStore big(4, huge);
  EXPECT_EQ(big.ring_capacity(), huge.max_ring);
  EXPECT_EQ(big.global_capacity(), 65536u);
  EXPECT_GT(big.reservoir_capacity(), 64u);
  // The default store stays within (a small multiple of) its budget even
  // when fully loaded — the whole point of the flight recorder.
  const TimelineStore stock(64);
  EXPECT_LE(stock.reservoir_capacity() +
                stock.global_capacity() + 64 * stock.ring_capacity(),
            2 * TimelineOptions{}.byte_budget / sizeof(TimelineRecord));
}

TEST(TimelineStoreTest, RingEvictsOldestFirstAndKeepsNewestInOrder) {
  TimelineOptions options;
  options.byte_budget = 0;  // min_ring-sized partition rings
  TimelineStore store(1, options);
  EventBus bus;
  bus.add_sink(&store);
  const std::size_t cap = store.ring_capacity();
  const std::size_t emitted = cap + 10;
  for (std::size_t i = 0; i < emitted; ++i) {
    bus.emit(shift(static_cast<Epoch>(i), 0, 1.0, 2.0));
  }
  EXPECT_EQ(store.total_recorded(), emitted);
  EXPECT_EQ(store.evicted(), emitted - cap);
  // Evicted records were offered to the reservoir, so nothing is lost
  // while the sample fits.
  EXPECT_EQ(store.sampled(), emitted - cap);
  // The ring keeps exactly the newest `cap` records; with everything
  // retained somewhere, the snapshot is the full emission in id order.
  const std::vector<TimelineRecord> all = store.snapshot();
  ASSERT_EQ(all.size(), emitted);
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].id, i + 1) << "snapshot out of id order at " << i;
  }
  TimelineQuery query(store);
  const std::vector<TimelineRecord> ring_only =
      query.partition_records(PartitionId{0});
  ASSERT_EQ(ring_only.size(), emitted);  // rings + sampled evictions
}

TEST(TimelineStoreTest, SummaryEventsFilteredUnlessOptedIn) {
  TimelineStore drop(1);
  TimelineOptions keep_opts;
  keep_opts.keep_summaries = true;
  TimelineStore keep(1, keep_opts);
  const Event summary{EpochCompleted{3, 100.0, 0.0, 1, 0, 0, 0, 12, 0.0, 0.0}};
  drop.on_record(summary, TraceMeta{1, 0});
  keep.on_record(summary, TraceMeta{1, 0});
  EXPECT_EQ(drop.total_recorded(), 0u);
  EXPECT_EQ(keep.total_recorded(), 1u);
}

TEST(TimelineStoreTest, ReservoirKeepSetIgnoresEvictionOrder) {
  // Two partitions, each fed the same per-partition subsequence, but
  // interleaved differently (all of 0 then all of 1, vs alternating).
  // Per-partition ring contents end identical and the same records get
  // evicted — in a different global order. The reservoir keeps bottom-k
  // by splitmix64(id), so the keep-set (and the whole digest) must not
  // depend on that order.
  TimelineOptions options;
  options.byte_budget = 0;
  const std::size_t n = 200;  // >> min_ring + reservoir floor
  TimelineStore blocked(2, options);
  for (std::uint32_t p = 0; p < 2; ++p) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t id = 1 + p * n + i;
      blocked.on_record(Event{shift(static_cast<Epoch>(i), p, 1.0, 2.0)},
                        TraceMeta{id, 0});
    }
  }
  TimelineStore interleaved(2, options);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::uint32_t p = 0; p < 2; ++p) {
      const std::uint64_t id = 1 + p * n + i;
      interleaved.on_record(Event{shift(static_cast<Epoch>(i), p, 1.0, 2.0)},
                            TraceMeta{id, 0});
    }
  }
  EXPECT_EQ(blocked.evicted(), interleaved.evicted());
  EXPECT_EQ(blocked.sampled(), interleaved.sampled());
  EXPECT_EQ(blocked.digest(), interleaved.digest());
}

TEST(TimelineStoreTest, IdenticalFeedsProduceIdenticalDigestsAndDumps) {
  const auto feed = [](TimelineStore& store) {
    EventBus bus;
    bus.add_sink(&store);
    for (std::uint32_t i = 0; i < 500; ++i) {
      const std::uint64_t parent = bus.emit(failed(i, i % 40));
      bus.emit_caused(parent, shift(i, i % 4, 1.0, 3.0));
      bus.emit_caused(parent, replica(i, i % 4));
    }
    bus.close();
  };
  TimelineOptions options;
  options.byte_budget = 1 << 14;  // force heavy eviction + sampling
  TimelineStore a(4, options);
  TimelineStore b(4, options);
  feed(a);
  feed(b);
  EXPECT_GT(a.evicted(), 0u);
  EXPECT_EQ(a.digest(), b.digest());
  std::ostringstream dump_a;
  std::ostringstream dump_b;
  a.dump_jsonl(dump_a);
  b.dump_jsonl(dump_b);
  EXPECT_EQ(dump_a.str(), dump_b.str());
  EXPECT_FALSE(dump_a.str().empty());
}

TEST(TimelineQueryTest, FindChainAndWhyWalkParentLinks) {
  TimelineStore store(2);
  EventBus bus;
  bus.add_sink(&store);
  const std::uint64_t fault = bus.emit(failed(5, 9));
  const std::uint64_t rule = bus.emit_caused(
      fault, RuleFired{5, PartitionId{1}, DecisionRule::kAvailabilityFloor,
                       1.0, 2.0, 0.4});
  const std::uint64_t outcome = bus.emit_caused(rule, replica(5, 1));
  bus.emit(shift(6, 1, 1.0, 9.0));  // later, but not an outcome

  const TimelineQuery query(store);
  ASSERT_NE(query.find(outcome), nullptr);
  EXPECT_EQ(query.find(0), nullptr);
  EXPECT_EQ(query.find(9999), nullptr);

  const std::vector<TimelineRecord> chain = query.chain(outcome);
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0].id, fault);
  EXPECT_EQ(chain[1].id, rule);
  EXPECT_EQ(chain[2].id, outcome);
  EXPECT_FALSE(query.chain_truncated(outcome));

  // why() prefers the latest *outcome* (the ReplicaAdded) over the later
  // TrafficShift, and returns its full chain.
  const std::vector<TimelineRecord> why = query.why(PartitionId{1});
  ASSERT_EQ(why.size(), 3u);
  EXPECT_EQ(why.back().id, outcome);
  // Epoch-capped why() sees no history before the fault.
  EXPECT_TRUE(query.why(PartitionId{1}, 4).empty());
  EXPECT_TRUE(query.why(PartitionId{0}).empty());
}

TEST(TimelineQueryTest, ChainTruncationDetectedWhenAncestorEvicted) {
  // Hand-build records whose root's parent was never retained.
  std::vector<TimelineRecord> records;
  TimelineRecord root;
  root.id = 10;
  root.parent = 3;  // evicted ancestor
  root.type = event_type_index<RuleFired>();
  root.partition = 0;
  TimelineRecord leaf;
  leaf.id = 11;
  leaf.parent = 10;
  leaf.type = event_type_index<ReplicaAdded>();
  leaf.partition = 0;
  records.push_back(leaf);
  records.push_back(root);
  const TimelineQuery query(std::move(records));
  const std::vector<TimelineRecord> chain = query.chain(11);
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain.front().id, 10u);
  EXPECT_TRUE(query.chain_truncated(11));
  const std::string rendered = render_chain(chain, true);
  EXPECT_NE(rendered.find("evicted"), std::string::npos);
  EXPECT_NE(rendered.find("[#10]"), std::string::npos);
  EXPECT_NE(rendered.find("`- "), std::string::npos);
}

TEST(TimelineQueryTest, FlatTimelineWithoutCauseIdsDegradesGracefully) {
  TimelineStore store(1);
  // on_event path: no bus, no envelope — the pre-causal world.
  store.on_event(Event{failed(1, 2)});
  store.on_event(Event{replica(2, 0)});
  EXPECT_FALSE(store.has_cause_ids());
  const TimelineQuery query(store);
  EXPECT_EQ(query.records().size(), 2u);
  // why() still answers — a single flat record, no chain walk.
  const std::vector<TimelineRecord> why = query.why(PartitionId{0});
  ASSERT_EQ(why.size(), 1u);
  EXPECT_EQ(why.front().type, event_type_index<ReplicaAdded>());
  EXPECT_FALSE(render_chain(why).empty());
}

TEST(TimelineQueryTest, DcRecordsFindLinkEndpointsBothWays) {
  TimelineStore store(1);
  EventBus bus;
  bus.add_sink(&store);
  bus.emit(LinkFailed{4, DatacenterId{2}, DatacenterId{5}});
  bus.emit(LinkRestored{9, DatacenterId{2}, DatacenterId{5}});
  const TimelineQuery query(store);
  EXPECT_EQ(query.dc_records(DatacenterId{2}).size(), 2u);
  EXPECT_EQ(query.dc_records(DatacenterId{5}).size(), 2u);
  EXPECT_TRUE(query.dc_records(DatacenterId{7}).empty());
  EXPECT_EQ(query.at_epoch(4).size(), 1u);
}

TEST(DescribeRecordTest, NamesEveryCausalEventType) {
  EventBus bus;
  TimelineStore store(4);
  bus.add_sink(&store);
  bus.emit(failed(1, 3));
  bus.emit(ServerRecovered{2, ServerId{3}});
  bus.emit(replica(3, 0));
  bus.emit(Suicide{4, PartitionId{1}, ServerId{6}, {}});
  bus.emit(PrimaryPromoted{5, PartitionId{2}, ServerId{8}});
  bus.emit(Reseeded{6, PartitionId{3}, ServerId{9}});
  bus.emit(ActionDropped{7, PartitionId{0}, ActionKind::kMigrate,
                         DropReason::kBandwidth, ServerId{4}});
  bus.emit(FaultInjected{8, "crash", 5, DatacenterId{}, DatacenterId{},
                         DatacenterId{}, 0.0});
  bus.emit(SloBreach{9, "availability", 0.95, 0.999, 2.0, 1.7});
  for (const TimelineRecord& rec : store.snapshot()) {
    const std::string text = describe_record(rec);
    EXPECT_FALSE(text.empty());
    EXPECT_EQ(text.find('?'), std::string::npos)
        << event_index_name(rec.type) << ": " << text;
  }
}

}  // namespace
}  // namespace rfh
