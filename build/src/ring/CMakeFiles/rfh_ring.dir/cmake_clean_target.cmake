file(REMOVE_RECURSE
  "librfh_ring.a"
)
