file(REMOVE_RECURSE
  "librfh_routing.a"
)
