file(REMOVE_RECURSE
  "librfh_workload.a"
)
