// ChaosController and InvariantChecker behaviour: events fire at their
// scheduled epochs through the engine's real injection primitives, the
// controller stays deterministic and safe, and the checker both passes
// healthy runs and catches planted violations.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/availability.h"
#include "fault/chaos.h"
#include "fault/invariants.h"
#include "fault/plan.h"
#include "harness/runner.h"
#include "harness/scenario.h"
#include "obs/sinks.h"
#include "telemetry/registry.h"
#include "test_util.h"

namespace rfh {
namespace {

FaultEvent crash_at(Epoch at, std::uint32_t count) {
  FaultEvent e;
  e.kind = FaultKind::kCrash;
  e.at = at;
  e.count = count;
  return e;
}

std::unique_ptr<Simulation> paper_sim() {
  const Scenario scenario = Scenario::paper_random_query();
  return make_simulation(scenario, PolicyKind::kRfh);
}

// --- chaos controller ---------------------------------------------------

TEST(ChaosController, CrashFiresExactlyAtItsEpoch) {
  FaultPlan plan;
  plan.add(crash_at(5, 3));
  auto sim = paper_sim();
  CounterSink counts;
  sim->events().add_sink(&counts);
  MetricRegistry registry;
  sim->set_telemetry(&registry);
  ChaosController chaos(plan, 42);

  const auto live0 = sim->cluster().live_server_count();
  for (Epoch e = 0; e < 10; ++e) {
    const auto applied = chaos.before_epoch(*sim, e);
    if (e == 5) {
      EXPECT_EQ(applied.killed.size(), 3u);
      EXPECT_EQ(applied.faults, 1u);
    } else {
      EXPECT_TRUE(applied.killed.empty());
    }
    sim->step();
  }
  EXPECT_EQ(sim->cluster().live_server_count(), live0 - 3);
  EXPECT_EQ(counts.count<FaultInjected>(), 1u);
  EXPECT_EQ(chaos.injected_total(), 1u);
  EXPECT_EQ(chaos.injected_by_kind()[static_cast<std::size_t>(
                FaultKind::kCrash)],
            1u);
  const Counter* c = registry.find_counter("rfh_faults_injected_total",
                                           {{"kind", "crash"}});
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->value(), 1.0);
}

TEST(ChaosController, OutageKillsTheDatacenterAndAutoRecovers) {
  FaultEvent outage;
  outage.kind = FaultKind::kDatacenterOutage;
  outage.at = 3;
  outage.dc = DatacenterId{1};
  outage.recover_after = 4;
  FaultPlan plan;
  plan.add(outage);

  auto sim = paper_sim();
  const auto live0 = sim->cluster().live_server_count();
  const auto dc_size = sim->topology().servers_in(DatacenterId{1}).size();
  ASSERT_GT(dc_size, 0u);
  ChaosController chaos(plan, 42);

  for (Epoch e = 0; e < 10; ++e) {
    const auto applied = chaos.before_epoch(*sim, e);
    if (e == 3) {
      EXPECT_EQ(applied.killed.size(), dc_size);
    }
    if (e == 7) {
      EXPECT_EQ(applied.recovered.size(), dc_size);
    }
    if (e >= 3 && e < 7) {
      EXPECT_EQ(sim->cluster().live_server_count(), live0 - dc_size) << e;
    } else {
      EXPECT_EQ(sim->cluster().live_server_count(), live0) << e;
    }
    sim->step();
  }
  EXPECT_FALSE(chaos.exhausted(6));
  EXPECT_TRUE(chaos.exhausted(8));
}

TEST(ChaosController, FlapHoldsTheLinkDownPerCycle) {
  FaultEvent flap;
  flap.kind = FaultKind::kLinkFlap;
  flap.at = 2;
  flap.until = 12;
  flap.link_a = DatacenterId{3};
  flap.link_b = DatacenterId{4};
  flap.period = 5;
  flap.down = 2;
  FaultPlan plan;
  plan.add(flap);

  auto sim = paper_sim();
  ChaosController chaos(plan, 42);
  for (Epoch e = 0; e < 15; ++e) {
    chaos.before_epoch(*sim, e);
    const bool down_phase =
        e >= 2 && e < 12 && (e - 2) % 5 < 2;  // epochs 2,3, 7,8
    EXPECT_EQ(sim->failed_link_count(), down_phase ? 1u : 0u) << e;
    sim->step();
  }
  // The flap never outlives its window.
  EXPECT_EQ(sim->failed_link_count(), 0u);
}

TEST(ChaosController, FlashCrowdMultipliesTraffic) {
  QueryBatch batch;
  batch.push_back(QueryFlow{PartitionId{0}, DatacenterId{0}, 10.0});
  batch.push_back(QueryFlow{PartitionId{1}, DatacenterId{2}, 20.0});
  SimConfig config;
  config.partitions = 2;
  auto sim = test::make_fixed_sim(batch, std::make_unique<test::NullPolicy>(),
                                  config);

  FaultEvent crowd;
  crowd.kind = FaultKind::kFlashCrowd;
  crowd.at = 2;
  crowd.duration = 3;
  crowd.factor = 4.0;
  FaultPlan plan;
  plan.add(crowd);
  ChaosController chaos(plan, 7);

  for (Epoch e = 0; e < 7; ++e) {
    chaos.before_epoch(*sim, e);
    const EpochReport report = sim->step();
    const double expected = (e >= 2 && e < 5) ? 120.0 : 30.0;
    EXPECT_NEAR(report.total_queries, expected, 1e-9) << e;
  }
  EXPECT_DOUBLE_EQ(sim->traffic_multiplier(), 1.0);
}

TEST(ChaosController, ChurnRollsWithoutDrainingTheCluster) {
  FaultEvent churn;
  churn.kind = FaultKind::kChurn;
  churn.at = 0;
  churn.until = 30;
  churn.period = 5;
  churn.kill = 2;
  churn.recover = 2;
  FaultPlan plan;
  plan.add(churn);

  auto sim = paper_sim();
  const auto live0 = sim->cluster().live_server_count();
  ChaosController chaos(plan, 42);
  for (Epoch e = 0; e < 30; ++e) {
    chaos.before_epoch(*sim, e);
    // Wave 0 kills 2 with nobody to revive; every later wave revives as
    // many as it kills, so the deficit never exceeds the first wave's.
    EXPECT_GE(sim->cluster().live_server_count(), live0 - 2) << e;
    sim->step();
  }
  EXPECT_EQ(sim->cluster().live_server_count(), live0 - 2);
  EXPECT_EQ(chaos.injected_by_kind()[static_cast<std::size_t>(
                FaultKind::kChurn)],
            6u);  // epochs 0,5,10,15,20,25
}

TEST(ChaosController, RecoverRevivesLongestDeadVictims) {
  FaultPlan plan;
  plan.add(crash_at(1, 4));
  FaultEvent heal;
  heal.kind = FaultKind::kRecover;
  heal.at = 5;
  heal.count = 3;
  plan.add(heal);

  auto sim = paper_sim();
  const auto live0 = sim->cluster().live_server_count();
  ChaosController chaos(plan, 42);
  std::vector<ServerId> killed;
  std::vector<ServerId> revived;
  for (Epoch e = 0; e < 8; ++e) {
    const auto applied = chaos.before_epoch(*sim, e);
    killed.insert(killed.end(), applied.killed.begin(), applied.killed.end());
    revived.insert(revived.end(), applied.recovered.begin(),
                   applied.recovered.end());
    sim->step();
  }
  ASSERT_EQ(killed.size(), 4u);
  ASSERT_EQ(revived.size(), 3u);
  // Oldest victims come back first, in kill order.
  EXPECT_EQ(revived[0], killed[0]);
  EXPECT_EQ(revived[1], killed[1]);
  EXPECT_EQ(revived[2], killed[2]);
  EXPECT_EQ(sim->cluster().live_server_count(), live0 - 1);
}

TEST(ChaosController, SameSeedSameVictims) {
  FaultPlan plan;
  plan.add(crash_at(2, 5));
  std::vector<ServerId> first;
  std::vector<ServerId> second;
  for (std::vector<ServerId>* out : {&first, &second}) {
    auto sim = paper_sim();
    ChaosController chaos(plan, 1234);
    for (Epoch e = 0; e < 5; ++e) {
      const auto applied = chaos.before_epoch(*sim, e);
      out->insert(out->end(), applied.killed.begin(), applied.killed.end());
      sim->step();
    }
  }
  EXPECT_EQ(first, second);
  ASSERT_EQ(first.size(), 5u);
}

TEST(ChaosController, OutOfRangeDatacentersAreSkippedNotFatal) {
  FaultEvent outage;
  outage.kind = FaultKind::kDatacenterOutage;
  outage.at = 1;
  outage.dc = DatacenterId{999};
  FaultEvent link;
  link.kind = FaultKind::kLinkDown;
  link.at = 1;
  link.link_a = DatacenterId{0};
  link.link_b = DatacenterId{999};
  FaultPlan plan;
  plan.add(outage);
  plan.add(link);

  auto sim = paper_sim();
  const auto live0 = sim->cluster().live_server_count();
  ChaosController chaos(plan, 42);
  for (Epoch e = 0; e < 3; ++e) {
    const auto applied = chaos.before_epoch(*sim, e);
    EXPECT_EQ(applied.faults, 0u);
    sim->step();
  }
  EXPECT_EQ(sim->cluster().live_server_count(), live0);
  EXPECT_EQ(sim->failed_link_count(), 0u);
}

// --- invariant checker --------------------------------------------------

TEST(InvariantChecker, HealthyRunHasZeroViolations) {
  Scenario scenario = Scenario::paper_random_query();
  scenario.epochs = 40;
  InvariantChecker checker;
  run_policy(scenario, PolicyKind::kRfh, {}, RfhPolicy::Options{}, nullptr,
             nullptr, nullptr, &checker);
  EXPECT_EQ(checker.epochs_checked(), 40u);
  EXPECT_TRUE(checker.violations().empty()) << checker.summary();
}

TEST(InvariantChecker, FailureDeficitsAreExcusedNotFlagged) {
  Scenario scenario = Scenario::paper_random_query();
  scenario.epochs = 60;
  scenario.fault_plan.add(crash_at(30, 20));  // a fifth of the cluster
  InvariantChecker checker;
  const PolicyRun run =
      run_policy(scenario, PolicyKind::kRfh, {}, RfhPolicy::Options{},
                 nullptr, nullptr, nullptr, &checker);
  EXPECT_EQ(run.killed.size(), 20u);
  EXPECT_TRUE(checker.violations().empty()) << checker.summary();
}

TEST(InvariantChecker, CatchesVoluntaryDropBelowFloor) {
  // A scripted policy replicates partition 0 up to the Eq. 14 floor, then
  // suicides the extra copy while every host is alive — exactly the
  // voluntary deficit the replica_floor invariant must flag.
  QueryBatch batch;
  batch.push_back(QueryFlow{PartitionId{0}, DatacenterId{0}, 5.0});
  SimConfig config;
  config.partitions = 2;
  const std::uint32_t floor =
      min_replicas(config.min_availability, config.failure_rate);
  ASSERT_EQ(floor, 2u);

  auto policy = test::make_lambda_policy([](const PolicyContext& ctx) {
    Actions actions;
    const PartitionId p0{0};
    if (ctx.epoch == 0) {
      const ServerId primary = ctx.cluster.primary_of(p0);
      for (const Server& s : ctx.topology.servers()) {
        if (s.id != primary && ctx.cluster.can_accept(s.id, p0)) {
          actions.replications.push_back(ReplicateAction{p0, s.id, {}});
          break;
        }
      }
    } else if (ctx.epoch == 2 && ctx.cluster.replica_count(p0) >= 2) {
      for (const Replica& r : ctx.cluster.replicas_of(p0)) {
        if (r.server != ctx.cluster.primary_of(p0)) {
          actions.suicides.push_back(SuicideAction{p0, r.server, {}});
          break;
        }
      }
    }
    return actions;
  });
  auto sim = test::make_fixed_sim(batch, std::move(policy), config);

  InvariantChecker checker(InvariantChecker::Mode::kRecord);
  std::size_t violations_at_2 = 0;
  for (Epoch e = 0; e < 4; ++e) {
    const EpochReport report = sim->step();
    const std::size_t found = checker.check_epoch(*sim, report);
    if (e == 2) violations_at_2 = found;
  }
  ASSERT_GE(violations_at_2, 1u) << checker.summary();
  EXPECT_EQ(checker.violations()[0].id, InvariantId::kReplicaFloor);
  EXPECT_NE(checker.violations()[0].detail.find("partition 0"),
            std::string::npos)
      << checker.violations()[0].detail;
}

TEST(InvariantChecker, CatchesDoctoredAccounting) {
  auto sim = paper_sim();
  InvariantChecker checker(InvariantChecker::Mode::kRecord);
  EpochReport report = sim->step();
  EXPECT_EQ(checker.check_epoch(*sim, report), 0u);

  report = sim->step();
  report.total_replicas += 1;           // accounting lie
  report.total_queries += 100.0;        // conservation lie
  const std::size_t found = checker.check_epoch(*sim, report);
  EXPECT_GE(found, 2u) << checker.summary();
  bool saw_accounting = false;
  bool saw_traffic = false;
  for (const InvariantChecker::Violation& v : checker.violations()) {
    saw_accounting |= v.id == InvariantId::kAccounting;
    saw_traffic |= v.id == InvariantId::kTraffic;
  }
  EXPECT_TRUE(saw_accounting);
  EXPECT_TRUE(saw_traffic);
}

TEST(InvariantCheckerDeath, FailFastAbortsWithTheViolationOnStderr) {
  auto sim = paper_sim();
  EpochReport report = sim->step();
  report.total_replicas += 1;
  InvariantChecker checker(InvariantChecker::Mode::kFailFast);
  EXPECT_DEATH(checker.check_epoch(*sim, report),
               "invariant check failed at epoch");
}

TEST(InvariantChecker, SummaryListsViolations) {
  auto sim = paper_sim();
  InvariantChecker checker;
  EpochReport report = sim->step();
  report.total_replicas += 1;
  checker.check_epoch(*sim, report);
  const std::string text = checker.summary();
  EXPECT_NE(text.find("1 violations"), std::string::npos) << text;
  EXPECT_NE(text.find("accounting"), std::string::npos) << text;
}

}  // namespace
}  // namespace rfh
