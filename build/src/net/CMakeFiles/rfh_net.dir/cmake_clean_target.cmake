file(REMOVE_RECURSE
  "librfh_net.a"
)
