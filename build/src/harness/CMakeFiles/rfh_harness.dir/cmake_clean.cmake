file(REMOVE_RECURSE
  "CMakeFiles/rfh_harness.dir/cli.cpp.o"
  "CMakeFiles/rfh_harness.dir/cli.cpp.o.d"
  "CMakeFiles/rfh_harness.dir/report.cpp.o"
  "CMakeFiles/rfh_harness.dir/report.cpp.o.d"
  "CMakeFiles/rfh_harness.dir/runner.cpp.o"
  "CMakeFiles/rfh_harness.dir/runner.cpp.o.d"
  "CMakeFiles/rfh_harness.dir/scenario.cpp.o"
  "CMakeFiles/rfh_harness.dir/scenario.cpp.o.d"
  "librfh_harness.a"
  "librfh_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfh_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
