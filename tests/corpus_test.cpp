// Replays every minimized case committed under tests/data/corpus/
// through the differential harness. Each file is a previously
// interesting scenario (shrunk by src/check/shrink.h) that must stay
// divergence-free: a red run here means a behavioural change reached one
// of the regression scenarios the corpus pins down.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "check/case.h"
#include "check/diff.h"

namespace rfh {
namespace {

std::vector<std::string> corpus_files() {
  const std::filesystem::path dir =
      std::filesystem::path(RFH_TEST_DATA_DIR) / "corpus";
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".json") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(Corpus, HoldsTheSeedScenarios) {
  const std::vector<std::string> files = corpus_files();
  EXPECT_GE(files.size(), 5u);
  // The two scenarios the harness was built to pin down must stay in the
  // corpus: route-memo invalidation under datacenter death, and the
  // Eq. 15-vs-Eq. 14 suicide/availability boundary.
  const auto holds = [&](const char* name) {
    return std::any_of(files.begin(), files.end(), [&](const std::string& f) {
      return f.find(name) != std::string::npos;
    });
  };
  EXPECT_TRUE(holds("route_memo_dc_outage"));
  EXPECT_TRUE(holds("suicide_availability_boundary"));
}

TEST(Corpus, EveryCaseReplaysDivergenceFree) {
  for (const std::string& file : corpus_files()) {
    const CheckCase::ParseResult parsed = CheckCase::load(file);
    ASSERT_TRUE(parsed.ok) << file << ": " << parsed.error;
    const DiffOutcome outcome = run_check_case(parsed.value);
    EXPECT_TRUE(outcome.ok) << file << ": " << outcome.to_string();
  }
}

TEST(Corpus, FilesAreCanonicalSerializations) {
  // Committed corpus files round-trip bit-exactly, so regenerating a
  // case never produces spurious diffs.
  for (const std::string& file : corpus_files()) {
    const CheckCase::ParseResult parsed = CheckCase::load(file);
    ASSERT_TRUE(parsed.ok) << file << ": " << parsed.error;
    const CheckCase::ParseResult again =
        CheckCase::from_json(parsed.value.to_json());
    ASSERT_TRUE(again.ok) << file;
    EXPECT_EQ(again.value, parsed.value) << file;
  }
}

}  // namespace
}  // namespace rfh
