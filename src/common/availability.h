// Availability lower limit (paper Eq. 14 and Section II-D).
//
// With r independent copies each failing with probability f, the
// probability that at least one copy survives is 1 - f^r. The paper's
// printed inequation is OCR-garbled (its inclusion-exclusion expansion
// collapses to (1-f)^r, which *decreases* in r), but its worked example is
// unambiguous about the intent: "if the system requires a minimum
// availability of 0.8 and the failure probability is 0.1, then the minimum
// replica number is 2". We therefore use the standard monotone bound
// 1 - f^r together with a floor of 2 copies (a single copy is never
// fault-tolerant), which reproduces the worked example exactly. The
// literal inclusion-exclusion form is also provided for reference.
#pragma once

#include <cstdint>

namespace rfh {

/// P(at least one of r copies survives) when each copy independently fails
/// with probability f in the evaluation window.
double availability(std::uint32_t replicas, double failure_prob) noexcept;

/// The literal inclusion-exclusion expansion printed as Eq. 14:
/// 1 - sum_{j=1}^{r} (-1)^{j+1} C(r, j) f^j  ==  (1 - f)^r.
/// Kept for documentation/tests; not used by the decision tree.
double availability_eq14_literal(std::uint32_t replicas,
                                 double failure_prob) noexcept;

/// Minimum number of copies (primary included) needed so that
/// availability(r, f) >= target, floored at `floor_copies` (default 2,
/// matching the paper's worked example).
std::uint32_t min_replicas(double target, double failure_prob,
                           std::uint32_t floor_copies = 2) noexcept;

/// Erasure-coded generalization of Eq. 14: with n fragments each failing
/// independently with probability f, the partition survives iff at least
/// k fragments survive, so availability is the binomial tail
/// P(Bin(n, 1 - f) >= k). At k = 1 this collapses to 1 - f^n, the
/// replica bound above.
double ec_availability(std::uint32_t fragments, std::uint32_t k,
                       double failure_prob) noexcept;

/// Minimum total fragment count n >= max(k, floor_fragments) such that
/// ec_availability(n, k, f) >= target — the EC analogue of min_replicas.
std::uint32_t min_fragments(double target, double failure_prob,
                            std::uint32_t k,
                            std::uint32_t floor_fragments) noexcept;

}  // namespace rfh
