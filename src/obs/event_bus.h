// A minimal publish/subscribe bus for simulator events.
//
// Zero-cost when disabled: with no sinks installed, emit() compiles to a
// vector-emptiness check and returns before the Event variant is even
// constructed (the arguments are built lazily by the caller through the
// RFH_OBS_EMIT macro or a guarded `if (bus.enabled())`). With sinks
// installed, every event is dispatched synchronously, in installation
// order — the bus itself never buffers, so a sink sees events exactly
// when they happen and a crashing run still has its trace up to the
// crash point.
//
// Causal envelope: every dispatched event is assigned a sequential,
// bus-local `cause id` (1-based; 0 means "no event was recorded"), and
// carries the id of the event that caused it — explicitly via
// emit_caused(), or implicitly from the ambient CauseScope the producer
// established (the chaos controller wraps each injection's side effects
// in one). Sinks that care receive the (id, parent) pair through
// on_record(); sinks that don't override it keep working unchanged.
// Because a bus belongs to one single-threaded Simulation, ids depend
// only on the emission sequence — byte-identical across --jobs values.
//
// Threading: a bus belongs to one Simulation, which is single-threaded;
// the comparative runner gives each policy its own Simulation (and bus),
// so no locking is needed anywhere.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "obs/events.h"

namespace rfh {

/// The causal envelope of one dispatched event. `id` is 1-based and
/// strictly increasing per bus; `parent` is the id of the causing event,
/// or 0 for a root (no known cause).
struct TraceMeta {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
};

/// Interface every trace consumer implements.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void on_event(const Event& event) = 0;
  /// Dispatch with the causal envelope. The default forwards to
  /// on_event(), so existing sinks ignore cause ids transparently; sinks
  /// that record causality (JsonlSink, TimelineStore) override this.
  virtual void on_record(const Event& event, const TraceMeta& meta) {
    (void)meta;
    on_event(event);
  }
  /// Called when the producer is done (end of run / bus teardown). Sinks
  /// writing framed formats (e.g. the Chrome JSON array) finalize here;
  /// flush() must be idempotent.
  virtual void flush() {}
};

class EventBus {
 public:
  EventBus() = default;
  EventBus(const EventBus&) = delete;
  EventBus& operator=(const EventBus&) = delete;
  EventBus(EventBus&&) = default;
  EventBus& operator=(EventBus&&) = default;
  ~EventBus() {
    for (const std::unique_ptr<EventSink>& sink : owned_) sink->flush();
  }

  /// Install a non-owning sink (caller keeps it alive past the last emit).
  void add_sink(EventSink* sink) {
    if (sink != nullptr) sinks_.push_back(sink);
  }
  /// Install an owning sink (destroyed with the bus, after a final flush).
  void add_sink(std::unique_ptr<EventSink> sink) {
    if (sink == nullptr) return;
    sinks_.push_back(sink.get());
    owned_.push_back(std::move(sink));
  }

  /// True when at least one sink is installed. Instrumentation sites with
  /// non-trivial event construction should guard on this.
  [[nodiscard]] bool enabled() const noexcept { return !sinks_.empty(); }

  [[nodiscard]] std::size_t sink_count() const noexcept {
    return sinks_.size();
  }

  /// Publish one event to every sink, parented to the current CauseScope
  /// (or root when none is active). Accepts any Event alternative by
  /// value; the variant is only materialized when a sink is listening.
  /// Returns the assigned cause id, 0 when no sink is installed.
  template <typename E>
  std::uint64_t emit(E&& event) {
    if (sinks_.empty()) return 0;
    return dispatch(Event(std::forward<E>(event)), scope_parent_);
  }

  /// Publish with an explicit parent id (0 = root). Used by producers
  /// that track finer-grained causes than a scope can express — e.g. the
  /// engine parenting each action outcome to its RuleFired event.
  template <typename E>
  std::uint64_t emit_caused(std::uint64_t parent, E&& event) {
    if (sinks_.empty()) return 0;
    return dispatch(Event(std::forward<E>(event)), parent);
  }

  /// Id assigned to the most recent dispatch (0 before the first).
  [[nodiscard]] std::uint64_t last_id() const noexcept { return seq_; }

  /// The most recent *root disturbance* — the injection/perturbation id
  /// that statistical echoes (TrafficShift, SloBreach) should chain to
  /// when no per-partition cause is tighter. Set by the chaos controller
  /// and the engine's ad-hoc failure-injection entry points; persists
  /// until the next disturbance.
  [[nodiscard]] std::uint64_t ambient_cause() const noexcept {
    return ambient_;
  }
  void set_ambient_cause(std::uint64_t id) noexcept { ambient_ = id; }

  /// Flush every sink (idempotent). Call before tearing down non-owning
  /// sinks; the destructor only flushes sinks the bus owns, because a
  /// non-owning sink declared after the bus is already gone by then.
  void close() {
    for (EventSink* sink : sinks_) sink->flush();
  }

 private:
  friend class CauseScope;

  std::uint64_t dispatch(const Event& event, std::uint64_t parent) {
    const TraceMeta meta{++seq_, parent};
    for (EventSink* sink : sinks_) sink->on_record(event, meta);
    return meta.id;
  }

  std::vector<EventSink*> sinks_;
  std::vector<std::unique_ptr<EventSink>> owned_;
  std::uint64_t seq_ = 0;
  std::uint64_t scope_parent_ = 0;
  std::uint64_t ambient_ = 0;
};

/// RAII parent scope: every emit() (not emit_caused) inside the scope is
/// parented to `parent`. Scopes nest; the previous parent is restored on
/// destruction. A parent of 0 re-establishes "root" inside an outer
/// scope.
class CauseScope {
 public:
  CauseScope(EventBus& bus, std::uint64_t parent) noexcept
      : bus_(&bus), saved_(bus.scope_parent_) {
    bus.scope_parent_ = parent;
  }
  CauseScope(const CauseScope&) = delete;
  CauseScope& operator=(const CauseScope&) = delete;
  ~CauseScope() { bus_->scope_parent_ = saved_; }

 private:
  EventBus* bus_;
  std::uint64_t saved_;
};

}  // namespace rfh
