#include "common/rng.h"

#include <cmath>
#include <numeric>

#include "common/assert.h"

namespace rfh {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept : seed_(seed) {
  SplitMix64 sm(seed);
  for (auto& s : state_) s = sm.next();
}

Rng::result_type Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) noexcept {
  RFH_ASSERT(bound > 0);
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) noexcept {
  RFH_ASSERT(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::uniform_real() noexcept {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real_range(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform_real();
}

double Rng::normal() noexcept {
  // Box-Muller; discard the second variate to keep the stream simple.
  double u1 = uniform_real();
  const double u2 = uniform_real();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.14159265358979323846 * u2);
}

std::uint64_t Rng::poisson(double mean) noexcept {
  RFH_ASSERT(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean < 64.0) {
    // Knuth's multiplicative method.
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform_real();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction; adequate for the
  // large-lambda sweeps in the benchmark harness.
  const double x = mean + std::sqrt(mean) * normal() + 0.5;
  if (x <= 0.0) return 0;
  return static_cast<std::uint64_t>(x);
}

std::vector<std::size_t> Rng::sample_without_replacement(
    std::size_t n, std::size_t k) noexcept {
  RFH_ASSERT(k <= n);
  std::vector<std::size_t> all(n);
  std::iota(all.begin(), all.end(), std::size_t{0});
  // Partial Fisher-Yates: the first k slots end up as the sample.
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(uniform(static_cast<std::uint64_t>(n - i)));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

Rng Rng::fork(std::uint64_t tag) const noexcept {
  SplitMix64 sm(seed_ ^ (tag * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL));
  return Rng(sm.next());
}

DiscreteSampler::DiscreteSampler(std::span<const double> weights) {
  RFH_ASSERT(!weights.empty());
  cdf_.reserve(weights.size());
  double total = 0.0;
  for (const double w : weights) {
    RFH_ASSERT_MSG(w >= 0.0, "weights must be nonnegative");
    total += w;
    cdf_.push_back(total);
  }
  RFH_ASSERT_MSG(total > 0.0, "at least one weight must be positive");
}

std::size_t DiscreteSampler::sample(Rng& rng) const noexcept {
  const double u = rng.uniform_real() * cdf_.back();
  // Binary search for the first cdf entry > u.
  std::size_t lo = 0;
  std::size_t hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] > u) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

double DiscreteSampler::probability(std::size_t i) const noexcept {
  RFH_ASSERT(i < cdf_.size());
  const double prev = i == 0 ? 0.0 : cdf_[i - 1];
  return (cdf_[i] - prev) / cdf_.back();
}

std::vector<double> ZipfSampler::make_weights(std::size_t n, double exponent) {
  RFH_ASSERT(n > 0);
  RFH_ASSERT(exponent >= 0.0);
  std::vector<double> w(n);
  for (std::size_t rank = 1; rank <= n; ++rank) {
    w[rank - 1] = 1.0 / std::pow(static_cast<double>(rank), exponent);
  }
  return w;
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent)
    : inner_(make_weights(n, exponent)) {}

}  // namespace rfh
