#include "topology/geo.h"

#include <cmath>

#include "common/assert.h"

namespace rfh {

namespace {
constexpr double kPi = 3.14159265358979323846;
constexpr double kEarthRadiusKm = 6371.0;

double deg_to_rad(double deg) noexcept { return deg * kPi / 180.0; }
}  // namespace

std::string_view continent_code(Continent c) noexcept {
  switch (c) {
    case Continent::kNorthAmerica: return "NA";
    case Continent::kSouthAmerica: return "SA";
    case Continent::kEurope: return "EU";
    case Continent::kAsia: return "AS";
    case Continent::kAfrica: return "AF";
    case Continent::kOceania: return "OC";
  }
  return "??";
}

Continent parse_continent(std::string_view code) {
  if (code == "NA") return Continent::kNorthAmerica;
  if (code == "SA") return Continent::kSouthAmerica;
  if (code == "EU") return Continent::kEurope;
  if (code == "AS") return Continent::kAsia;
  if (code == "AF") return Continent::kAfrica;
  if (code == "OC") return Continent::kOceania;
  RFH_UNREACHABLE("unknown continent code");
}

double great_circle_km(const GeoPoint& a, const GeoPoint& b) noexcept {
  const double lat1 = deg_to_rad(a.latitude_deg);
  const double lat2 = deg_to_rad(b.latitude_deg);
  const double dlat = lat2 - lat1;
  const double dlon = deg_to_rad(b.longitude_deg - a.longitude_deg);
  const double s1 = std::sin(dlat / 2.0);
  const double s2 = std::sin(dlon / 2.0);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * kEarthRadiusKm * std::asin(std::sqrt(h));
}

}  // namespace rfh
