#include "fault/chaos.h"

#include <algorithm>

#include "common/assert.h"
#include "obs/events.h"
#include "telemetry/registry.h"

namespace rfh {

namespace {
// Dedicated stream tag ("caos"): chaos victim selection never perturbs
// the engine's workload / policy / failure streams.
constexpr std::uint64_t kChaosStreamTag = 0x63616F73;
}  // namespace

ChaosController::ChaosController(const FaultPlan& plan, std::uint64_t seed)
    : plan_(plan),
      rng_(Rng(seed).fork(kChaosStreamTag)),
      link_down_(plan.size(), 0),
      frozen_victims_(plan.size()) {}

bool ChaosController::exhausted(Epoch epoch) const noexcept {
  if (!pending_.empty()) return false;
  if (std::find(link_down_.begin(), link_down_.end(), char{1}) !=
      link_down_.end()) {
    return false;
  }
  for (const std::vector<ServerId>& frozen : frozen_victims_) {
    if (!frozen.empty()) return false;
  }
  return plan_.empty() || epoch > plan_.horizon();
}

std::uint64_t ChaosController::injected_total() const noexcept {
  std::uint64_t total = 0;
  for (const std::uint64_t n : injected_by_kind_) total += n;
  return total;
}

std::vector<ServerId> ChaosController::pick_live(const Simulation& sim,
                                                 std::uint32_t n) {
  std::vector<ServerId> live;
  for (const Server& s : sim.topology().servers()) {
    if (sim.cluster().alive(s.id)) live.push_back(s.id);
  }
  if (live.size() <= 1) return {};
  // The engine refuses to kill the last live server; leave one standing.
  const std::size_t want =
      std::min<std::size_t>(n, live.size() - 1);
  const auto picks = rng_.sample_without_replacement(live.size(), want);
  std::vector<ServerId> victims;
  victims.reserve(want);
  for (const std::size_t i : picks) victims.push_back(live[i]);
  return victims;
}

std::vector<ServerId> ChaosController::pop_dead(const Simulation& sim,
                                                std::uint32_t n) {
  std::vector<ServerId> revived;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < dead_pool_.size(); ++i) {
    const ServerId s = dead_pool_[i];
    if (revived.size() < n && !sim.cluster().alive(s)) {
      revived.push_back(s);
    } else {
      dead_pool_[kept++] = s;
    }
  }
  dead_pool_.resize(kept);
  return revived;
}

void ChaosController::kill_batch(Simulation& sim,
                                 std::vector<ServerId> victims,
                                 FaultKind kind, Applied& applied,
                                 const KillCallback& on_kill,
                                 std::uint64_t cause) {
  (void)kind;
  if (victims.empty()) return;
  {
    // Parent every ServerFailed (and the promotions/reseeds they force)
    // to the FaultInjected event that ordered the kills.
    const CauseScope scope(sim.events(), cause);
    sim.fail_servers(victims);
  }
  if (on_kill) on_kill(victims);
  dead_pool_.insert(dead_pool_.end(), victims.begin(), victims.end());
  applied.killed.insert(applied.killed.end(), victims.begin(), victims.end());
}

std::uint64_t ChaosController::record(Simulation& sim, Epoch epoch,
                                      FaultKind kind, Applied& applied,
                                      std::uint32_t servers, DatacenterId dc,
                                      DatacenterId a, DatacenterId b,
                                      double magnitude) {
  ++applied.faults;
  ++injected_by_kind_[static_cast<std::size_t>(kind)];
  const std::uint64_t id = sim.events().emit(FaultInjected{
      epoch, fault_kind_name(kind), servers, dc, a, b, magnitude});
  // The injection is the new root disturbance: statistical echoes with no
  // tighter cause (TrafficShift, SloBreach) chain here.
  if (id != 0) sim.events().set_ambient_cause(id);
  if (sim.telemetry() != nullptr) {
    sim.telemetry()
        ->counter("rfh_faults_injected_total",
                  {{"kind", fault_kind_name(kind)}},
                  "Chaos faults injected by the fault plan, by kind.")
        .inc(1.0);
  }
  return id;
}

ChaosController::Applied ChaosController::before_epoch(
    Simulation& sim, Epoch epoch, const KillCallback& on_kill) {
  Applied applied;

  // Scheduled outage recoveries come first so a revived datacenter can be
  // re-hit by a crash wave due the same epoch (the reverse order would
  // silently skip the dead victims).
  for (std::size_t i = 0; i < pending_.size();) {
    if (pending_[i].at != epoch) {
      ++i;
      continue;
    }
    sim.recover_servers(pending_[i].servers);
    applied.recovered.insert(applied.recovered.end(),
                             pending_[i].servers.begin(),
                             pending_[i].servers.end());
    pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
  }

  for (std::size_t i = 0; i < plan_.events().size(); ++i) {
    const FaultEvent& ev = plan_.events()[i];
    switch (ev.kind) {
      case FaultKind::kCrash: {
        if (ev.at != epoch) break;
        std::vector<ServerId> victims;
        if (ev.servers.empty()) {
          victims = pick_live(sim, ev.count);
        } else {
          for (const ServerId s : ev.servers) {
            if (sim.cluster().alive(s) &&
                sim.cluster().live_server_count() >
                    victims.size() + 1) {
              victims.push_back(s);
            }
          }
        }
        // The FaultInjected event precedes its side effects so the kill
        // wave (and everything it forces) chains to it.
        const auto n = static_cast<std::uint32_t>(victims.size());
        const std::uint64_t cause = record(sim, epoch, ev.kind, applied, n);
        kill_batch(sim, std::move(victims), ev.kind, applied, on_kill, cause);
        break;
      }
      case FaultKind::kRecover: {
        if (ev.at != epoch) break;
        std::vector<ServerId> revived;
        if (ev.servers.empty()) {
          revived = pop_dead(sim, ev.count);
        } else {
          for (const ServerId s : ev.servers) {
            if (!sim.cluster().alive(s)) revived.push_back(s);
          }
        }
        const std::uint64_t cause =
            record(sim, epoch, ev.kind, applied,
                   static_cast<std::uint32_t>(revived.size()));
        {
          const CauseScope scope(sim.events(), cause);
          sim.recover_servers(revived);
        }
        applied.recovered.insert(applied.recovered.end(), revived.begin(),
                                 revived.end());
        break;
      }
      case FaultKind::kDatacenterOutage: {
        if (ev.at != epoch) break;
        // A plan file can name a datacenter the world doesn't have; a
        // non-event beats an out-of-bounds abort mid-run.
        if (ev.dc.value() >= sim.topology().datacenter_count()) break;
        // Enumerate the victims up front (the same liveness filter
        // fail_datacenter applies) so FaultInjected can be emitted — with
        // its final server count — before the kills it causes.
        std::vector<ServerId> victims;
        for (const ServerId s : sim.topology().servers_in(ev.dc)) {
          if (sim.cluster().alive(s)) victims.push_back(s);
        }
        // Never take down the only datacenter still standing.
        if (victims.empty() ||
            sim.cluster().live_server_count() <= victims.size()) {
          break;
        }
        const std::uint64_t cause =
            record(sim, epoch, ev.kind, applied,
                   static_cast<std::uint32_t>(victims.size()), ev.dc);
        {
          const CauseScope scope(sim.events(), cause);
          sim.fail_servers(victims);
        }
        if (on_kill) on_kill(victims);
        applied.killed.insert(applied.killed.end(), victims.begin(),
                              victims.end());
        if (ev.recover_after > 0) {
          pending_.push_back({epoch + ev.recover_after, victims});
        } else {
          dead_pool_.insert(dead_pool_.end(), victims.begin(), victims.end());
        }
        break;
      }
      case FaultKind::kLinkDown: {
        if (ev.link_a.value() >= sim.topology().datacenter_count() ||
            ev.link_b.value() >= sim.topology().datacenter_count()) {
          break;
        }
        if (epoch == ev.at && link_down_[i] == 0) {
          if (!sim.link_failure_would_partition(ev.link_a, ev.link_b)) {
            const std::uint64_t cause = record(sim, epoch, ev.kind, applied,
                                               0, {}, ev.link_a, ev.link_b);
            const CauseScope scope(sim.events(), cause);
            sim.fail_link(ev.link_a, ev.link_b);
            link_down_[i] = 1;
          }
        }
        if (ev.restore_at > 0 && epoch == ev.restore_at &&
            link_down_[i] != 0) {
          sim.restore_link(ev.link_a, ev.link_b);
          link_down_[i] = 0;
        }
        break;
      }
      case FaultKind::kLinkFlap: {
        if (ev.link_a.value() >= sim.topology().datacenter_count() ||
            ev.link_b.value() >= sim.topology().datacenter_count()) {
          break;
        }
        const bool in_window = epoch >= ev.at && epoch < ev.until;
        const bool want_down =
            in_window && (epoch - ev.at) % ev.period < ev.down;
        if (want_down && link_down_[i] == 0) {
          if (!sim.link_failure_would_partition(ev.link_a, ev.link_b)) {
            const std::uint64_t cause = record(sim, epoch, ev.kind, applied,
                                               0, {}, ev.link_a, ev.link_b);
            const CauseScope scope(sim.events(), cause);
            sim.fail_link(ev.link_a, ev.link_b);
            link_down_[i] = 1;
          }
        } else if (!want_down && link_down_[i] != 0) {
          sim.restore_link(ev.link_a, ev.link_b);
          link_down_[i] = 0;
        }
        break;
      }
      case FaultKind::kChurn: {
        if (epoch < ev.at || epoch >= ev.until ||
            (epoch - ev.at) % ev.period != 0) {
          break;
        }
        // Revive before killing so a wave never resurrects its own
        // victims (fresh kills land at the back of the pool).
        std::vector<ServerId> revived = pop_dead(sim, ev.recover);
        sim.recover_servers(revived);
        applied.recovered.insert(applied.recovered.end(), revived.begin(),
                                 revived.end());
        std::vector<ServerId> victims = pick_live(sim, ev.kill);
        const std::uint32_t n = static_cast<std::uint32_t>(victims.size());
        const std::uint64_t cause = record(sim, epoch, ev.kind, applied, n);
        kill_batch(sim, std::move(victims), ev.kind, applied, on_kill, cause);
        break;
      }
      case FaultKind::kFlashCrowd: {
        if (epoch == ev.at) {
          record(sim, epoch, ev.kind, applied, 0, {}, {}, {}, ev.factor);
        }
        break;
      }
      case FaultKind::kZoneOutage: {
        if (ev.at != epoch) break;
        // Correlated regional failure: every live server of every
        // datacenter whose continent matches the zone index. A zone the
        // world doesn't populate is a non-event, like a bad outage dc.
        std::vector<ServerId> victims;
        for (const Datacenter& dc : sim.topology().datacenters()) {
          if (static_cast<std::uint32_t>(dc.continent) != ev.zone) continue;
          for (const ServerId s : sim.topology().servers_in(dc.id)) {
            if (sim.cluster().alive(s)) victims.push_back(s);
          }
        }
        // Never take down the last zone still standing.
        if (victims.empty() ||
            sim.cluster().live_server_count() <= victims.size()) {
          break;
        }
        const std::uint64_t cause = record(
            sim, epoch, ev.kind, applied,
            static_cast<std::uint32_t>(victims.size()), {}, {}, {},
            static_cast<double>(ev.zone));
        {
          const CauseScope scope(sim.events(), cause);
          sim.fail_servers(victims);
        }
        if (on_kill) on_kill(victims);
        applied.killed.insert(applied.killed.end(), victims.begin(),
                              victims.end());
        if (ev.recover_after > 0) {
          pending_.push_back({epoch + ev.recover_after, victims});
        } else {
          dead_pool_.insert(dead_pool_.end(), victims.begin(), victims.end());
        }
        break;
      }
      case FaultKind::kStaleStats: {
        if (epoch == ev.at) {
          // Freeze the victims' smoothed series: they keep feeding their
          // epoch-`at` numbers into Eqs. 9-11/17 until `until`.
          std::vector<ServerId> victims;
          if (ev.servers.empty()) {
            victims = pick_live(sim, ev.count);
          } else {
            for (const ServerId s : ev.servers) {
              if (sim.cluster().alive(s)) victims.push_back(s);
            }
          }
          if (!victims.empty()) {
            const std::uint64_t cause =
                record(sim, epoch, ev.kind, applied,
                       static_cast<std::uint32_t>(victims.size()));
            const CauseScope scope(sim.events(), cause);
            for (const ServerId s : victims) sim.set_stats_frozen(s, true);
            frozen_victims_[i] = std::move(victims);
          }
        }
        if (epoch == ev.until && !frozen_victims_[i].empty()) {
          for (const ServerId s : frozen_victims_[i]) {
            sim.set_stats_frozen(s, false);
          }
          frozen_victims_[i].clear();
        }
        break;
      }
    }
  }

  // The surge multiplier is a pure function of the plan and the epoch, so
  // overlapping flash crowds compose and expiry needs no bookkeeping.
  double multiplier = 1.0;
  for (const FaultEvent& ev : plan_.events()) {
    if (ev.kind == FaultKind::kFlashCrowd && epoch >= ev.at &&
        epoch < ev.at + ev.duration) {
      multiplier *= ev.factor;
    }
  }
  sim.set_traffic_multiplier(multiplier);

  return applied;
}

}  // namespace rfh
