file(REMOVE_RECURSE
  "librfh_sim.a"
)
