// Decision-explanation walkthrough: run RFH through a failure drill with
// the observability subsystem attached, then print the human-readable
// "story" of one partition's lifecycle — every copy it grew (and which
// inequality of Eqs. 12-17 justified it), every failover promotion, every
// action the engine refused and why.
//
// The story ends with the partition's *cause chain* (obs/timeline.h):
// the linked why-tree behind its latest state change. Traces recorded
// without cause ids (pre-causal JSONL, bare on_event sinks) degrade
// gracefully — the flat story above is then all there is to show.
//
//   $ ./trace_explain            # story of the busiest partition
//   $ ./trace_explain 7          # story of partition 7
#include <cstdio>
#include <cstdlib>

#include "harness/scenario.h"
#include "obs/sinks.h"
#include "obs/story.h"
#include "obs/timeline.h"

int main(int argc, char** argv) {
  rfh::Scenario scenario = rfh::Scenario::paper_random_query();
  scenario.epochs = 160;

  auto sim = rfh::make_simulation(scenario, rfh::PolicyKind::kRfh);

  rfh::RingBufferSink ring(1 << 16);
  rfh::CounterSink counters;
  rfh::TimelineStore timeline(scenario.sim.partitions);
  sim->events().add_sink(&ring);
  sim->events().add_sink(&counters);
  sim->events().add_sink(&timeline);

  // The drill: a mass kill at epoch 60, recovery at 110, and a link cut
  // in between — the paper's failure taxonomy in miniature.
  std::vector<rfh::ServerId> victims;
  for (rfh::Epoch e = 0; e < scenario.epochs; ++e) {
    if (e == 60) victims = sim->fail_random_servers(20);
    if (e == 80) sim->fail_link(rfh::DatacenterId{0}, rfh::DatacenterId{1});
    if (e == 100) {
      sim->restore_link(rfh::DatacenterId{0}, rfh::DatacenterId{1});
    }
    if (e == 110) sim->recover_servers(victims);
    sim->step();
  }

  // Pick the partition: argv[1], or the one with the most trace activity.
  rfh::PartitionId chosen;
  const std::vector<rfh::Event> events = ring.snapshot();
  if (argc > 1) {
    chosen = rfh::PartitionId{
        static_cast<std::uint32_t>(std::strtoul(argv[1], nullptr, 10))};
  } else {
    std::vector<std::uint32_t> activity(sim->config().partitions, 0);
    for (const rfh::Event& event : events) {
      for (std::uint32_t p = 0; p < sim->config().partitions; ++p) {
        if (rfh::event_concerns(event, rfh::PartitionId{p})) ++activity[p];
      }
    }
    std::uint32_t best = 0;
    for (std::uint32_t p = 0; p < sim->config().partitions; ++p) {
      if (activity[p] > activity[best]) best = p;
    }
    chosen = rfh::PartitionId{best};
  }

  std::printf("=== event totals over %u epochs ===\n%s\n\n", scenario.epochs,
              counters.summary().c_str());
  std::printf("dropped by reason: bandwidth=%llu storage=%llu node_cap=%llu "
              "dead_target=%llu invalid=%llu\n\n",
              static_cast<unsigned long long>(
                  counters.dropped(rfh::DropReason::kBandwidth)),
              static_cast<unsigned long long>(
                  counters.dropped(rfh::DropReason::kStorageCap)),
              static_cast<unsigned long long>(
                  counters.dropped(rfh::DropReason::kNodeCap)),
              static_cast<unsigned long long>(
                  counters.dropped(rfh::DropReason::kDeadTarget)),
              static_cast<unsigned long long>(
                  counters.dropped(rfh::DropReason::kInvalid)));

  std::printf("=== lifecycle of partition %u ===\n", chosen.value());
  const std::vector<std::string> story =
      rfh::partition_story(events, chosen);
  if (story.empty()) {
    std::printf("(no events — the partition never left steady state)\n");
  }
  for (const std::string& line : story) {
    std::printf("%s\n", line.c_str());
  }

  std::printf("\n=== cause chain behind partition %u's last state change "
              "===\n", chosen.value());
  if (!timeline.has_cause_ids()) {
    // Flat fallback: nothing to link without a causal envelope.
    std::printf("(trace carries no cause ids — the flat story above is all "
                "we know)\n");
    return 0;
  }
  const rfh::TimelineQuery query(timeline);
  const std::vector<rfh::TimelineRecord> chain = query.why(chosen);
  if (chain.empty()) {
    std::printf("(no recorded history for this partition)\n");
    return 0;
  }
  const bool truncated = chain.front().parent != 0 &&
                         query.find(chain.front().parent) == nullptr;
  std::fputs(rfh::render_chain(chain, truncated).c_str(), stdout);
  return 0;
}
