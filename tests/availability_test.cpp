#include "common/availability.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rfh {
namespace {

TEST(Availability, ZeroReplicasIsUnavailable) {
  EXPECT_DOUBLE_EQ(availability(0, 0.1), 0.0);
}

TEST(Availability, SingleCopySurvivalProbability) {
  EXPECT_NEAR(availability(1, 0.1), 0.9, 1e-12);
  EXPECT_NEAR(availability(1, 0.3), 0.7, 1e-12);
}

TEST(Availability, AtLeastOneOfR) {
  EXPECT_NEAR(availability(2, 0.1), 0.99, 1e-12);
  EXPECT_NEAR(availability(3, 0.1), 0.999, 1e-12);
  EXPECT_NEAR(availability(2, 0.5), 0.75, 1e-12);
}

TEST(Availability, PerfectlyReliableCopies) {
  EXPECT_DOUBLE_EQ(availability(1, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(availability(5, 0.0), 1.0);
}

TEST(Availability, AlwaysFailingCopies) {
  EXPECT_DOUBLE_EQ(availability(5, 1.0), 0.0);
}

TEST(AvailabilityEq14Literal, CollapsesToAllSurvive) {
  // The printed inclusion-exclusion telescopes to (1-f)^r.
  for (std::uint32_t r = 0; r <= 6; ++r) {
    for (const double f : {0.0, 0.1, 0.3, 0.9}) {
      EXPECT_NEAR(availability_eq14_literal(r, f),
                  std::pow(1.0 - f, static_cast<double>(r)), 1e-12)
          << "r=" << r << " f=" << f;
    }
  }
}

TEST(MinReplicas, PaperWorkedExample) {
  // "if the system requires a minimum availability of 0.8 and the failure
  // probability is 0.1, then the minimum replica number is 2".
  EXPECT_EQ(min_replicas(0.8, 0.1), 2u);
}

TEST(MinReplicas, FloorApplies) {
  // Even a trivially satisfied target keeps at least the floor.
  EXPECT_EQ(min_replicas(0.5, 0.01), 2u);
  EXPECT_EQ(min_replicas(0.5, 0.01, 3), 3u);
  EXPECT_EQ(min_replicas(0.5, 0.01, 0), 1u);
}

TEST(MinReplicas, HighTargetsNeedMoreCopies) {
  EXPECT_EQ(min_replicas(0.999, 0.1), 3u);
  EXPECT_EQ(min_replicas(0.9999, 0.1), 4u);
  EXPECT_EQ(min_replicas(0.99, 0.5), 7u);
}

TEST(MinReplicas, ResultSatisfiesTarget) {
  for (const double target : {0.8, 0.9, 0.99, 0.99999}) {
    for (const double f : {0.05, 0.1, 0.3, 0.6}) {
      const std::uint32_t r = min_replicas(target, f);
      EXPECT_GE(availability(r, f), target);
      if (r > 2) {
        EXPECT_LT(availability(r - 1, f), target)
            << "not minimal for target=" << target << " f=" << f;
      }
    }
  }
}

class AvailabilityMonotonicityTest
    : public ::testing::TestWithParam<double> {};

TEST_P(AvailabilityMonotonicityTest, IncreasingInReplicaCount) {
  const double f = GetParam();
  for (std::uint32_t r = 0; r < 10; ++r) {
    EXPECT_LE(availability(r, f), availability(r + 1, f) + 1e-15);
  }
}

TEST_P(AvailabilityMonotonicityTest, DecreasingInFailureProbability) {
  const double f = GetParam();
  if (f >= 0.95) return;
  for (std::uint32_t r = 1; r < 6; ++r) {
    EXPECT_GE(availability(r, f), availability(r, f + 0.05) - 1e-15);
  }
}

INSTANTIATE_TEST_SUITE_P(FailureProbabilities, AvailabilityMonotonicityTest,
                         ::testing::Values(0.0, 0.05, 0.1, 0.3, 0.5, 0.9));

// Brute-force oracle: enumerate all 2^n survival patterns of n fragments
// (each alive with probability 1-f) and sum the mass of the patterns with
// at least k survivors. Exponential, so only usable for small n — which
// is exactly what makes it an independent check of the binomial-tail
// recurrence in ec_availability.
double ec_availability_bruteforce(std::uint32_t n, std::uint32_t k,
                                  double f) {
  double total = 0.0;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    std::uint32_t alive = 0;
    double p = 1.0;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        ++alive;
        p *= 1.0 - f;
      } else {
        p *= f;
      }
    }
    if (alive >= k) total += p;
  }
  return total;
}

TEST(EcAvailability, MatchesBruteForceEnumeration) {
  for (std::uint32_t n = 1; n <= 10; ++n) {
    for (std::uint32_t k = 1; k <= n; ++k) {
      for (const double f : {0.0, 0.05, 0.1, 0.3, 0.5, 0.9, 1.0}) {
        EXPECT_NEAR(ec_availability(n, k, f),
                    ec_availability_bruteforce(n, k, f), 1e-12)
            << "n=" << n << " k=" << k << " f=" << f;
      }
    }
  }
}

TEST(EcAvailability, CollapsesToReplicaBoundAtKEqualsOne) {
  for (std::uint32_t n = 1; n <= 8; ++n) {
    for (const double f : {0.05, 0.1, 0.3, 0.6}) {
      EXPECT_NEAR(ec_availability(n, 1, f), availability(n, f), 1e-12)
          << "n=" << n << " f=" << f;
    }
  }
}

TEST(EcAvailability, MonotoneInFragmentsAndAntitoneInK) {
  const double f = 0.1;
  for (std::uint32_t k = 1; k <= 4; ++k) {
    for (std::uint32_t n = k; n < 12; ++n) {
      EXPECT_LE(ec_availability(n, k, f), ec_availability(n + 1, k, f) + 1e-15);
    }
  }
  for (std::uint32_t n = 4; n <= 12; ++n) {
    for (std::uint32_t k = 1; k < n; ++k) {
      EXPECT_GE(ec_availability(n, k, f), ec_availability(n, k + 1, f) - 1e-15);
    }
  }
}

TEST(MinFragments, ResultSatisfiesTargetAndIsMinimal) {
  for (const double target : {0.8, 0.9, 0.99, 0.9999}) {
    for (const double f : {0.05, 0.1, 0.3}) {
      for (const std::uint32_t k : {2u, 4u, 8u}) {
        const std::uint32_t floor = k + 2;
        const std::uint32_t n = min_fragments(target, f, k, floor);
        EXPECT_GE(n, floor);
        EXPECT_GE(ec_availability(n, k, f), target)
            << "target=" << target << " f=" << f << " k=" << k;
        if (n > floor) {
          EXPECT_LT(ec_availability(n - 1, k, f), target)
              << "not minimal: target=" << target << " f=" << f << " k=" << k;
        }
      }
    }
  }
}

TEST(AvailabilityDeath, RejectsOutOfRangeInputs) {
  EXPECT_DEATH(availability(1, -0.1), "");
  EXPECT_DEATH(availability(1, 1.1), "");
  EXPECT_DEATH(min_replicas(1.0, 0.1), "");  // target must be < 1
  EXPECT_DEATH(min_replicas(0.8, 1.0), "");  // f must be < 1
}

}  // namespace
}  // namespace rfh
