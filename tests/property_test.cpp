// Cross-module property sweeps (parameterized): invariants that must hold
// for any seed, size, or threshold configuration.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <random>
#include <unordered_map>

#include "common/availability.h"
#include "core/rfh_policy.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "net/graph.h"
#include "ring/hash.h"
#include "ring/ring.h"
#include "test_util.h"

namespace rfh {
namespace {

// ---------------------------------------------------------------------
// Ring balance across sizes and token counts.
class RingBalanceTest
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
};

TEST_P(RingBalanceTest, TokenCountControlsSpread) {
  const auto [servers, tokens] = GetParam();
  HashRing ring(tokens);
  for (std::uint32_t s = 0; s < servers; ++s) ring.add_server(ServerId{s});

  std::vector<int> counts(servers, 0);
  Rng rng(1234);
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    ++counts[ring.primary(rng.next()).value()];
  }
  // Every server owns keyspace, and nobody owns more than a small
  // multiple of its fair share (looser for fewer tokens).
  const double fair = static_cast<double>(n) / servers;
  const double slack = tokens >= 16 ? 3.0 : 6.0;
  for (std::uint32_t s = 0; s < servers; ++s) {
    EXPECT_GT(counts[s], 0) << "server " << s << " owns nothing";
    EXPECT_LT(counts[s], slack * fair) << "server " << s << " over-owns";
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndTokens, RingBalanceTest,
    ::testing::Combine(::testing::Values<std::uint32_t>(3, 10, 50),
                       ::testing::Values<std::uint32_t>(4, 16, 64)));

// ---------------------------------------------------------------------
// Traffic propagation invariants under random demand and capacities.
class PropagationInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(PropagationInvariantTest, ConservationCapacityAndNonNegativity) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 17);
  SimConfig config;
  config.partitions = 6;
  WorldOptions options;
  options.per_replica_capacity_lo = 0.5 + rng.uniform_real() * 2.0;
  options.per_replica_capacity_hi =
      options.per_replica_capacity_lo + rng.uniform_real() * 4.0;
  options.seed = rng.next();

  // Random fixed demand.
  QueryBatch batch;
  for (std::uint32_t p = 0; p < config.partitions; ++p) {
    const auto requesters = 1 + rng.uniform(4);
    for (std::uint64_t j = 0; j < requesters; ++j) {
      batch.push_back(QueryFlow{
          PartitionId{p},
          DatacenterId{static_cast<std::uint32_t>(rng.uniform(10))},
          1.0 + rng.uniform_real() * 20.0});
    }
  }
  // Random policy so replica sets evolve while we check.
  auto sim = test::make_fixed_sim(batch, std::make_unique<RfhPolicy>(),
                                  config, options);
  for (int e = 0; e < 20; ++e) {
    sim->step();
    const EpochTraffic& traffic = sim->traffic();
    for (std::uint32_t pv = 0; pv < config.partitions; ++pv) {
      const PartitionId p{pv};
      double served = 0.0;
      for (std::uint32_t sv = 0; sv < traffic.servers(); ++sv) {
        const ServerId s{sv};
        EXPECT_GE(traffic.served(p, s), 0.0);
        EXPECT_GE(traffic.node_traffic(p, s), 0.0);
        EXPECT_LE(traffic.served(p, s),
                  sim->topology().server(s).spec.per_replica_capacity + 1e-9);
        served += traffic.served(p, s);
      }
      EXPECT_NEAR(served + traffic.unserved(p), traffic.partition_queries(p),
                  1e-6);
    }
    sim->cluster().check_invariants();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropagationInvariantTest,
                         ::testing::Range(0, 6));

// ---------------------------------------------------------------------
// Threshold sweeps: the decision tree must stay sane for any reasonable
// beta/gamma/delta/mu.
struct ThresholdCase {
  double beta;
  double gamma;
  double delta;
  double mu;
};

class ThresholdSweepTest : public ::testing::TestWithParam<ThresholdCase> {};

TEST_P(ThresholdSweepTest, RfhStaysWithinFloorAndCap) {
  const ThresholdCase& c = GetParam();
  Scenario scenario = Scenario::paper_random_query();
  scenario.epochs = 60;
  scenario.sim.beta = c.beta;
  scenario.sim.gamma = c.gamma;
  scenario.sim.delta = c.delta;
  scenario.sim.mu = c.mu;
  const PolicyRun run = run_policy(scenario, PolicyKind::kRfh);
  const std::uint32_t floor =
      min_replicas(scenario.sim.min_availability, scenario.sim.failure_rate);
  // Tail census bounded by floor and cap.
  const double avg_tail =
      tail_mean(run, &EpochMetrics::avg_replicas_per_partition, 15);
  EXPECT_GE(avg_tail, static_cast<double>(floor) - 0.1);
  EXPECT_LE(avg_tail,
            static_cast<double>(scenario.sim.max_replicas_per_partition));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ThresholdSweepTest,
    ::testing::Values(ThresholdCase{1.2, 1.1, 0.1, 0.5},
                      ThresholdCase{2.0, 1.5, 0.2, 1.0},
                      ThresholdCase{3.0, 2.0, 0.4, 2.0},
                      ThresholdCase{4.0, 3.0, 0.05, 4.0},
                      ThresholdCase{1.5, 2.5, 0.6, 0.25}));

// ---------------------------------------------------------------------
// Availability floor inverse property over a grid.
class FloorGridTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(FloorGridTest, MinReplicasIsTheLeastSufficientCount) {
  const auto [target, f] = GetParam();
  const std::uint32_t r = min_replicas(target, f);
  EXPECT_GE(availability(r, f), target);
  if (r > 2) {
    EXPECT_LT(availability(r - 1, f), target);
  }
}

INSTANTIATE_TEST_SUITE_P(
    TargetsAndFailureRates, FloorGridTest,
    ::testing::Combine(::testing::Values(0.8, 0.9, 0.99, 0.9999),
                       ::testing::Values(0.01, 0.1, 0.25, 0.5, 0.75)));

// ---------------------------------------------------------------------
// Scenario determinism across every policy and workload kind.
struct DeterminismCase {
  PolicyKind policy;
  WorkloadKind workload;
};

class DeterminismTest : public ::testing::TestWithParam<DeterminismCase> {};

TEST_P(DeterminismTest, IdenticalRunsProduceIdenticalSeries) {
  Scenario scenario = Scenario::paper_random_query();
  scenario.workload = GetParam().workload;
  scenario.epochs = 40;
  const PolicyRun a = run_policy(scenario, GetParam().policy);
  const PolicyRun b = run_policy(scenario, GetParam().policy);
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t i = 0; i < a.series.size(); ++i) {
    EXPECT_EQ(a.series[i].total_replicas, b.series[i].total_replicas);
    EXPECT_EQ(a.series[i].migrations_total, b.series[i].migrations_total);
    EXPECT_DOUBLE_EQ(a.series[i].utilization, b.series[i].utilization);
    EXPECT_DOUBLE_EQ(a.series[i].replication_cost_total,
                     b.series[i].replication_cost_total);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PolicyWorkloadGrid, DeterminismTest,
    ::testing::Values(
        DeterminismCase{PolicyKind::kRequest, WorkloadKind::kUniform},
        DeterminismCase{PolicyKind::kOwner, WorkloadKind::kFlashCrowd},
        DeterminismCase{PolicyKind::kRandom, WorkloadKind::kHotspotShift},
        DeterminismCase{PolicyKind::kRfh, WorkloadKind::kUniform},
        DeterminismCase{PolicyKind::kRfh, WorkloadKind::kFlashCrowd}));

// ---------------------------------------------------------------------
// The simulation scales to bigger synthetic worlds without violating
// invariants.
class WorldScaleTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(WorldScaleTest, BiggerWorldsRunCleanly) {
  const std::uint32_t n_dcs = GetParam();
  World world = build_synthetic_world(n_dcs);
  SimConfig config;
  config.partitions = 16;
  WorkloadParams params;
  params.partitions = 16;
  params.datacenters = n_dcs;
  params.mean_queries_per_epoch = 30.0 * n_dcs;
  auto sim = std::make_unique<Simulation>(
      std::move(world), config, std::make_unique<UniformWorkload>(params),
      std::make_unique<RfhPolicy>());
  for (int e = 0; e < 25; ++e) sim->step();
  sim->cluster().check_invariants();
  EXPECT_GT(sim->cluster().total_replicas(), 16u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, WorldScaleTest,
                         ::testing::Values<std::uint32_t>(2, 5, 10, 25));

// ---------------------------------------------------------------------
// Chaos property: any seeded random fault plan must run to completion
// with zero invariant violations. The replica_floor invariant inside the
// checker is the paper-level property: a partition below the Eq. 14
// minimum is only ever explained by a recorded failure (lost copy on a
// dead server / data loss), never by a voluntary policy action.
FaultPlan random_fault_plan(std::uint64_t seed, Epoch horizon) {
  Rng rng(seed);
  FaultPlan plan;

  FaultEvent crash;
  crash.kind = FaultKind::kCrash;
  crash.at = static_cast<Epoch>(5 + rng.uniform(horizon / 3));
  crash.count = static_cast<std::uint32_t>(1 + rng.uniform(6));
  plan.add(crash);

  FaultEvent outage;
  outage.kind = FaultKind::kDatacenterOutage;
  outage.at = static_cast<Epoch>(10 + rng.uniform(horizon / 2));
  outage.dc = DatacenterId{static_cast<std::uint32_t>(rng.uniform(10))};
  outage.recover_after = static_cast<Epoch>(2 + rng.uniform(12));
  plan.add(outage);

  FaultEvent churn;
  churn.kind = FaultKind::kChurn;
  churn.at = static_cast<Epoch>(rng.uniform(horizon / 4));
  churn.until = static_cast<Epoch>(
      churn.at + 10 + rng.uniform(horizon - churn.at));
  churn.period = static_cast<Epoch>(2 + rng.uniform(8));
  churn.kill = static_cast<std::uint32_t>(1 + rng.uniform(3));
  churn.recover = churn.kill;  // rolling wave: population stays bounded
  plan.add(churn);

  FaultEvent flap;
  flap.kind = FaultKind::kLinkFlap;
  flap.at = static_cast<Epoch>(rng.uniform(horizon / 2));
  flap.until = static_cast<Epoch>(flap.at + 10 + rng.uniform(30));
  flap.link_a = DatacenterId{static_cast<std::uint32_t>(rng.uniform(10))};
  flap.link_b = DatacenterId{
      static_cast<std::uint32_t>((flap.link_a.value() + 1 + rng.uniform(9)) %
                                 10)};
  flap.period = static_cast<Epoch>(2 + rng.uniform(6));
  flap.down = static_cast<Epoch>(1 + rng.uniform(flap.period));
  plan.add(flap);

  FaultEvent crowd;
  crowd.kind = FaultKind::kFlashCrowd;
  crowd.at = static_cast<Epoch>(rng.uniform(horizon));
  crowd.duration = static_cast<Epoch>(1 + rng.uniform(20));
  crowd.factor = 1.5 + rng.uniform_real() * 4.0;
  plan.add(crowd);

  FaultEvent heal;
  heal.kind = FaultKind::kRecover;
  heal.at = static_cast<Epoch>(horizon - 1 - rng.uniform(horizon / 4));
  heal.count = static_cast<std::uint32_t>(1 + rng.uniform(8));
  plan.add(heal);

  return plan;
}

class ChaosPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosPropertyTest, RandomPlansRunWithZeroViolations) {
  constexpr Epoch kHorizon = 80;
  Scenario scenario = Scenario::paper_random_query();
  scenario.epochs = kHorizon;
  scenario.fault_plan = random_fault_plan(GetParam(), kHorizon);

  InvariantChecker checker(InvariantChecker::Mode::kRecord);
  const PolicyRun run =
      run_policy(scenario, PolicyKind::kRfh, {}, RfhPolicy::Options{},
                 nullptr, nullptr, nullptr, &checker);

  EXPECT_EQ(checker.epochs_checked(), kHorizon);
  EXPECT_TRUE(checker.violations().empty()) << checker.summary();
  // The plan actually did something, and every chaos kill was surfaced.
  EXPECT_GT(run.faults_injected, 0u);
  std::uint64_t kind_sum = 0;
  for (const std::uint64_t n : run.faults_by_kind) kind_sum += n;
  EXPECT_EQ(kind_sum, run.faults_injected);
  EXPECT_EQ(run.series.size(), kHorizon);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosPropertyTest,
                         ::testing::Values<std::uint64_t>(1, 7, 42, 1000,
                                                          31337, 987654321));

// The same seeded plan must injure the same servers in the same order —
// chaos victim selection has its own RNG stream, so repeated runs agree
// even though the plan interleaves with workload and policy randomness.
TEST(ChaosPropertyTest, SamePlanSameSeedKillsIdentically) {
  Scenario scenario = Scenario::paper_random_query();
  scenario.epochs = 60;
  scenario.fault_plan = random_fault_plan(99, 60);
  const PolicyRun a = run_policy(scenario, PolicyKind::kRfh);
  const PolicyRun b = run_policy(scenario, PolicyKind::kRfh);
  EXPECT_EQ(a.killed, b.killed);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
}

// --------------------------------------------------------------------------
// Flat-ring reference check (promised by ring.h): the sorted-array +
// successor-cache HashRing is defined to be byte-identical to the seed's
// std::map walk. A reference implementation with the same token hashing
// and collision probe is driven through randomized add/remove
// interleavings, and both structures are compared on every lookup path
// after every mutation.

/// The seed implementation: token positions in a std::map, every
/// preference_list a fresh clockwise distinct-server walk.
class MapRingReference {
 public:
  explicit MapRingReference(std::uint32_t tokens_per_server)
      : tokens_per_server_(tokens_per_server) {}

  void add_server(ServerId server) {
    auto& positions = server_tokens_[server];
    for (std::uint32_t i = 0; i < tokens_per_server_; ++i) {
      std::uint64_t pos = hash_combine(hash64(std::uint64_t{server.value()}),
                                       hash64(std::uint64_t{i}));
      while (ring_.contains(pos)) ++pos;  // same probe as HashRing
      ring_.emplace(pos, server);
      positions.push_back(pos);
    }
  }

  void remove_server(ServerId server) {
    const auto it = server_tokens_.find(server);
    if (it == server_tokens_.end()) return;
    for (const std::uint64_t pos : it->second) ring_.erase(pos);
    server_tokens_.erase(it);
  }

  [[nodiscard]] ServerId primary(std::uint64_t key) const {
    auto it = ring_.lower_bound(key);
    if (it == ring_.end()) it = ring_.begin();
    return it->second;
  }

  [[nodiscard]] std::vector<ServerId> preference_list(std::uint64_t key,
                                                      std::size_t n) const {
    std::vector<ServerId> out;
    out.reserve(n);
    auto it = ring_.lower_bound(key);
    if (it == ring_.end()) it = ring_.begin();
    for (std::size_t step = 0;
         step < ring_.size() && out.size() < n &&
         out.size() < server_tokens_.size();
         ++step) {
      if (std::find(out.begin(), out.end(), it->second) == out.end()) {
        out.push_back(it->second);
      }
      ++it;
      if (it == ring_.end()) it = ring_.begin();
    }
    return out;
  }

  [[nodiscard]] std::size_t server_count() const noexcept {
    return server_tokens_.size();
  }

 private:
  std::uint32_t tokens_per_server_;
  std::map<std::uint64_t, ServerId> ring_;
  std::unordered_map<ServerId, std::vector<std::uint64_t>> server_tokens_;
};

class RingReferenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RingReferenceTest, FlatLookupMatchesMapWalkUnderRandomInterleavings) {
  constexpr std::uint32_t kTokens = 8;
  HashRing flat(kTokens);
  MapRingReference reference(kTokens);
  std::mt19937_64 rng(GetParam());

  std::vector<ServerId> members;
  std::uint32_t next_id = 1;
  const auto check_agreement = [&] {
    if (members.empty()) return;
    // A fixed key set plus fresh random keys each round: the fixed keys
    // re-query cached successor slots across invalidations, the random
    // keys probe cold slots.
    for (int k = 0; k < 24; ++k) {
      const std::uint64_t key =
          k < 8 ? hash64(static_cast<std::uint64_t>(k)) : rng();
      ASSERT_EQ(flat.primary(key), reference.primary(key)) << "key " << key;
      for (const std::size_t n :
           {std::size_t{1}, std::size_t{3}, members.size(),
            members.size() + 5}) {
        ASSERT_EQ(flat.preference_list(key, n),
                  reference.preference_list(key, n))
            << "key " << key << " n " << n;
      }
    }
  };

  for (int step = 0; step < 120; ++step) {
    const bool remove = !members.empty() &&
                        (members.size() > 40 || rng() % 3 == 0);
    if (remove) {
      const std::size_t victim = rng() % members.size();
      const ServerId gone = members[victim];
      members.erase(members.begin() + static_cast<std::ptrdiff_t>(victim));
      flat.remove_server(gone);
      reference.remove_server(gone);
      EXPECT_FALSE(flat.contains(gone));
    } else {
      const ServerId fresh{next_id++};
      members.push_back(fresh);
      flat.add_server(fresh);
      reference.add_server(fresh);
      EXPECT_TRUE(flat.contains(fresh));
    }
    ASSERT_EQ(flat.server_count(), reference.server_count());
    check_agreement();
  }
}

TEST_P(RingReferenceTest, SuccessorCacheNeverServesARemovedServer) {
  // The per-token successor lists are built lazily and invalidated on
  // membership epochs; a stale cache would keep serving a departed
  // server. Warm the cache, remove servers, and assert no lookup path
  // ever returns a dead one.
  constexpr std::uint32_t kTokens = 16;
  HashRing ring(kTokens);
  std::mt19937_64 rng(GetParam() ^ 0x9e3779b97f4a7c15ull);

  std::vector<ServerId> members;
  for (std::uint32_t s = 1; s <= 32; ++s) {
    members.push_back(ServerId{s});
    ring.add_server(ServerId{s});
  }
  std::vector<std::uint64_t> keys(64);
  for (std::uint64_t& key : keys) key = rng();

  std::vector<ServerId> dead;
  while (members.size() > 1) {
    // Warm every sampled slot's successor cache at the current epoch.
    for (const std::uint64_t key : keys) {
      (void)ring.preference_list(key, members.size());
    }
    const std::uint64_t epoch_before = ring.membership_epoch();
    const std::size_t victim = rng() % members.size();
    dead.push_back(members[victim]);
    ring.remove_server(members[victim]);
    members.erase(members.begin() + static_cast<std::ptrdiff_t>(victim));
    EXPECT_GT(ring.membership_epoch(), epoch_before);

    for (const std::uint64_t key : keys) {
      const std::vector<ServerId> pref =
          ring.preference_list(key, members.size() + dead.size());
      EXPECT_EQ(pref.size(), members.size());
      for (const ServerId s : pref) {
        EXPECT_EQ(std::find(dead.begin(), dead.end(), s), dead.end())
            << "dead server " << s.value() << " served from successor cache";
      }
      EXPECT_EQ(std::find(dead.begin(), dead.end(), ring.primary(key)),
                dead.end());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RingReferenceTest,
                         ::testing::Values<std::uint64_t>(3, 17, 404, 90210));

}  // namespace
}  // namespace rfh
