// Fig. 3 — replica utilization rate.
//   (a) under random (uniform) query, 250 epochs;
//   (b) under flash crowd, 400 epochs.
//
// Paper shape: RFH highest, then request-oriented, then owner-oriented,
// random lowest; under flash crowd the request-oriented curve collapses
// at the first stage switch (epoch 100) and recovers only partially,
// while RFH dips once and re-adapts quickly.
#include <algorithm>
#include <iostream>

#include "bench_report.h"
#include "bench_args.h"
#include "exec/sweep.h"
#include "harness/report.h"

namespace {

// Tail-mean of RFH utilization over the run's last 50 epochs.
double rfh_tail(const rfh::ComparativeResult& r) {
  const rfh::PolicyRun& run = r.run(rfh::PolicyKind::kRfh);
  const std::size_t n = std::min<std::size_t>(50, run.series.size());
  double sum = 0.0;
  for (std::size_t i = run.series.size() - n; i < run.series.size(); ++i) {
    sum += run.series[i].utilization;
  }
  return sum / static_cast<double>(n);
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned jobs = rfh::bench_jobs(argc, argv);
  rfh::BenchReport report("fig3_utilization");
  {
    const rfh::Scenario s = rfh::Scenario::paper_random_query();
    rfh::ComparativeResult r;
    {
      const auto stage = report.stage("random_query");
      r = rfh::run_comparison_pooled(s, {}, jobs);
    }
    rfh::print_figure(std::cout, "Fig 3(a): replica utilization, random query",
                      r, &rfh::EpochMetrics::utilization);
    report.add_metric("random_query_rfh_utilization_tail50", rfh_tail(r));
  }
  {
    const rfh::Scenario s = rfh::Scenario::paper_flash_crowd();
    rfh::ComparativeResult r;
    {
      const auto stage = report.stage("flash_crowd");
      r = rfh::run_comparison_pooled(s, {}, jobs);
    }
    rfh::print_figure(std::cout, "Fig 3(b): replica utilization, flash crowd",
                      r, &rfh::EpochMetrics::utilization);
    report.add_metric("flash_crowd_rfh_utilization_tail50", rfh_tail(r));
  }
  report.write_file();
  return 0;
}
