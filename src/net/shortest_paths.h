// All-pairs shortest paths over the datacenter graph.
//
// Routes are computed once per topology change (Dijkstra from every
// source) and cached; queries then walk fixed paths, which is what makes
// "necessary routing paths" — and therefore traffic hubs — well-defined.
// Ties are broken deterministically (lowest-id predecessor) so identical
// seeds give identical figures.
#pragma once

#include <limits>
#include <vector>

#include "common/ids.h"
#include "net/graph.h"

namespace rfh {

class ShortestPaths {
 public:
  explicit ShortestPaths(const DcGraph& graph);

  /// Full path from `from` to `to`, inclusive of both endpoints.
  /// A path from a node to itself is the single-element path {from}.
  [[nodiscard]] std::vector<DatacenterId> path(DatacenterId from,
                                               DatacenterId to) const;

  /// Shortest-path length in kilometres; +inf if unreachable.
  [[nodiscard]] double distance_km(DatacenterId from, DatacenterId to) const;

  /// Number of edges on the shortest path (0 for from == to).
  [[nodiscard]] std::uint32_t hop_count(DatacenterId from,
                                        DatacenterId to) const;

  /// For each datacenter, how many of the single-source shortest paths
  /// from all other datacenters to `to` pass *through* it (endpoints not
  /// counted). This is the static "conjunction node" structure; the
  /// dynamic traffic hubs weight it by live query volume.
  [[nodiscard]] std::vector<std::uint32_t> transit_counts(
      DatacenterId to) const;

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  static constexpr double kUnreachable = std::numeric_limits<double>::infinity();

 private:
  std::size_t n_;
  // dist_[s * n_ + t]; pred_[s * n_ + t] = predecessor of t on path from s.
  std::vector<double> dist_;
  std::vector<DatacenterId> pred_;
};

}  // namespace rfh
