// Query routing: requester datacenter -> holder server.
//
// A query for partition B_i issued near datacenter j travels the fixed
// shortest path of datacenters towards the primary holder. Inside each
// datacenter the query is handled by a deterministic *relay* server
// (rendezvous-hashed per (partition, datacenter)); any replica hosted in a
// transit datacenter can absorb the query there. Hop counting follows the
// paper's lookup-path-length metric: one hop to enter the requester
// datacenter's relay, one hop per further datacenter, and one final hop
// from the holder datacenter's relay down to the owning server.
#pragma once

#include <span>
#include <vector>

#include "common/ids.h"
#include "net/shortest_paths.h"
#include "topology/topology.h"

namespace rfh {

class Counter;
class MetricRegistry;

/// One datacenter visited by a query, in order.
struct RouteStage {
  DatacenterId dc;
  /// The forwarding server inside `dc` that carries this partition's
  /// pass-through traffic (a traffic-hub candidate).
  ServerId relay;
  /// Network hops from the client when the query reaches this stage.
  std::uint32_t hops_at_entry = 0;
  /// One-way network latency from the client to this stage: per-hop
  /// switching cost plus fibre propagation over the kilometres travelled.
  double latency_ms = 0.0;
};

struct Route {
  std::vector<RouteStage> stages;  // requester DC first, holder DC last
  ServerId holder;
  /// Hops if the query must go all the way to the holder server.
  std::uint32_t total_hops = 0;
  /// Latency if the query must go all the way to the holder server.
  double total_latency_ms = 0.0;
};

/// Latency model constants (see DESIGN.md): 2 ms switching cost per hop,
/// ~200 km of fibre per millisecond of propagation.
inline constexpr double kHopLatencyMs = 2.0;
inline constexpr double kFibreKmPerMs = 200.0;

class Router {
 public:
  Router(const Topology& topology, const ShortestPaths& paths);

  /// Compute the route for queries from `requester` to the primary copy on
  /// `holder`. `live_by_dc[dc]` lists the currently-alive servers of each
  /// datacenter (relays are only chosen among live servers; a datacenter
  /// with no live servers is skipped as a stage).
  [[nodiscard]] Route route(
      PartitionId partition, DatacenterId requester, ServerId holder,
      std::span<const std::vector<ServerId>> live_by_dc) const;

  /// Relay server for (partition, dc) among the given live servers.
  [[nodiscard]] static ServerId relay_for(
      PartitionId partition, DatacenterId dc,
      std::span<const ServerId> live_servers);

  /// Export route/stage/dead-skip counters into `registry`
  /// (rfh_router_*). nullptr detaches. Counting is observational only;
  /// route() stays deterministic either way.
  void set_telemetry(MetricRegistry* registry);

 private:
  const Topology* topology_;
  const ShortestPaths* paths_;
  // Registry-owned counters (not ours); null when telemetry is detached.
  Counter* routes_ = nullptr;
  Counter* stages_ = nullptr;
  Counter* dead_skips_ = nullptr;
};

}  // namespace rfh
