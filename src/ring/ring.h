// Consistent-hashing ring with virtual nodes (paper Section II-B).
//
// "The partitioning scheme of RFH is built using a variant of consistent
// hashing. A ring topology is employed as the output range of a hash
// function. Each node is assigned a random value within the hashing space
// to represent its position."
//
// Each physical server owns `tokens` positions (virtual-node tokens) on a
// 64-bit ring. A partition's primary owner is the server owning the first
// token clockwise from the partition's hash; Dynamo-style replica chains
// are the next distinct servers clockwise. Join and departure move only
// the keyspace adjacent to the affected tokens, which the tests verify
// quantitatively.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/ids.h"

namespace rfh {

class HashRing {
 public:
  /// tokens: virtual-node positions created per server (Dynamo's "number
  /// of virtual nodes" knob; more tokens -> smoother key distribution).
  explicit HashRing(std::uint32_t tokens_per_server = 16);

  void add_server(ServerId server);
  void remove_server(ServerId server);
  [[nodiscard]] bool contains(ServerId server) const;

  /// The server owning the first token at or clockwise after `key`.
  [[nodiscard]] ServerId primary(std::uint64_t key) const;

  /// Up to `n` *distinct* servers starting at the primary and walking
  /// clockwise (the Dynamo preference list for the key).
  [[nodiscard]] std::vector<ServerId> preference_list(std::uint64_t key,
                                                      std::size_t n) const;

  /// Primary owner for a partition id.
  [[nodiscard]] ServerId partition_owner(PartitionId partition) const;

  [[nodiscard]] std::size_t server_count() const noexcept {
    return server_tokens_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return ring_.empty(); }

  /// Hash position used for a partition (exposed for tests).
  [[nodiscard]] static std::uint64_t partition_key(PartitionId partition);

 private:
  std::uint32_t tokens_per_server_;
  std::map<std::uint64_t, ServerId> ring_;  // token position -> owner
  std::unordered_map<ServerId, std::vector<std::uint64_t>> server_tokens_;
};

}  // namespace rfh
