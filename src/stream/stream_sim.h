// The streaming-load layer: disaggregates each epoch's batch traffic
// into timestamped arrivals, queues them at serving servers, and
// measures per-DC waiting/latency distributions with tail percentiles.
//
// Position in the stack (harness/runner.cpp drives it):
//
//   batch engine (Eqs. 2-19)  -- per-epoch flow totals, FlowLog segments
//        |
//   StreamSimulator::process_epoch    [PhaseProfiler: stream_assign]
//        |- ArrivalGenerator  -- timestamps per (epoch, requester DC)
//        |- ServerQueue       -- M/D/c wait * (1 + cv^2) ~= M/G/c wait
//        |- backpressure      -- drops past --queue-cap, counted
//        `- histograms        -- rfh_stream_latency_ms{dc=...}
//
// Contract with batch mode: the stream layer consumes the engine's flow
// segments *after* propagation — it never feeds anything back, so the
// routing/policy phases, Eqs. 2-19 and the differential oracle are
// byte-identical with or without it. Per-epoch arrival totals equal the
// batch totals by construction; only timing and queueing are added.
//
// Backpressure contract: a query arriving at a server whose waiting room
// holds --queue-cap queries is dropped — counted in
// rfh_dropped_backpressure_total and the per-epoch accounting
// (arrivals == served + blocked + dropped, the kStreamAccounting
// invariant), with no latency sample and no retry. Drops are
// observational: they never reduce the batch-side served totals the
// policies see.
#pragma once

#include <cstdint>
#include <vector>

#include "common/histogram.h"
#include "obs/event_bus.h"
#include "sim/engine.h"
#include "sim/flow_log.h"
#include "stream/arrival.h"
#include "stream/config.h"
#include "telemetry/registry.h"
#include "topology/world.h"

namespace rfh {

/// One epoch of stream-layer accounting (the queueing counterpart of
/// EpochReport). Query counts are weighted doubles like everywhere else.
struct StreamEpochStats {
  Epoch epoch = 0;
  /// Total arrivals this epoch == the batch's total queries.
  double arrivals = 0.0;
  /// Accepted and served through a queue (latency sampled).
  double served = 0.0;
  /// Blocked by the batch engine (capacity/lost-primary) before reaching
  /// any queue.
  double blocked = 0.0;
  /// Dropped by queue backpressure (--queue-cap).
  double dropped = 0.0;
  /// Largest waiting-room occupancy across all servers (<= --queue-cap).
  std::uint32_t max_queue_depth = 0;
  /// Weighted mean queueing wait of served queries, ms (after the
  /// (1 + cv^2) M/G/c correction).
  double mean_wait_ms = 0.0;
  /// End-to-end latency percentiles (routing + queueing + blocking
  /// penalty) over this epoch's sampled queries.
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
};

class StreamSimulator {
 public:
  /// `registry` may be null (no metric export). `seed` must be the
  /// scenario's sim seed so arrival streams are reproducible.
  StreamSimulator(const World& world, MetricRegistry* registry,
                  const StreamConfig& config, std::uint64_t seed);

  /// The engine-facing segment log; attach with sim.set_flow_log(&log)
  /// before stepping.
  [[nodiscard]] FlowLog& flow_log() noexcept { return flow_log_; }

  /// Consume the flow segments of the epoch `sim` just stepped (pass the
  /// step's EpochReport), queue every arrival, update histograms/metrics
  /// and emit stream events on sim's bus.
  StreamEpochStats process_epoch(Simulation& sim, const EpochReport& report);

  [[nodiscard]] const StreamEpochStats& last() const noexcept {
    return last_;
  }
  /// Cumulative end-to-end latency distribution for queries issued from
  /// `dc` (requester side), across all processed epochs.
  [[nodiscard]] const Histogram& dc_latency(DatacenterId dc) const;
  /// Cumulative distribution over all DCs.
  [[nodiscard]] Histogram merged_latency() const;

  [[nodiscard]] const StreamConfig& config() const noexcept {
    return config_;
  }

 private:
  struct QueuedArrival {
    double t = 0.0;
    std::uint64_t seq = 0;  // allocation order: deterministic tie-break
    double weight = 0.0;
    double route_latency_ms = 0.0;
    DatacenterId requester;
  };

  const World* world_;
  MetricRegistry* registry_;
  StreamConfig config_;
  ArrivalGenerator arrivals_;
  FlowLog flow_log_;
  StreamEpochStats last_;
  std::vector<Histogram> dc_latency_;  // by requester DC index

  // Registry handles resolved once in the constructor (same pattern as
  // the engine's TelemetryHandles).
  Counter* arrivals_total_ = nullptr;
  Counter* served_total_ = nullptr;
  Counter* blocked_total_ = nullptr;
  Counter* dropped_total_ = nullptr;
  std::vector<Counter*> dropped_by_dc_;    // by server DC index
  Gauge* queue_depth_ = nullptr;
  std::vector<Gauge*> queue_depth_by_dc_;  // by server DC index
  std::vector<HistogramMetric*> latency_by_dc_;  // by requester DC index

  // Scratch reused across epochs.
  std::vector<std::vector<QueuedArrival>> per_server_;
  std::vector<double> dc_totals_;
};

}  // namespace rfh
