file(REMOVE_RECURSE
  "librfh_metrics.a"
)
