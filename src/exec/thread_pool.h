// Fixed-size work-stealing thread pool.
//
// Built for the sweep workload (src/exec/sweep.h): a few dozen coarse,
// independent cells — whole simulation runs — fanned out across a fixed
// set of workers. Structure:
//
//  * every worker owns a deque: its own submissions push/pop at the back
//    (LIFO, depth-first for nested work), thieves take from the front;
//  * submissions from outside the pool land in a shared FIFO injector
//    queue, so externally submitted tasks start in submission order;
//  * an idle worker drains its own deque, then the injector, then steals
//    from siblings before sleeping on a condition variable.
//
// Tasks are std::packaged_task wrappers: an exception thrown by a task is
// captured into its future and rethrows at future.get() — nothing
// terminates the worker. wait() lets any thread (including a worker, so
// nested submit-and-wait cannot deadlock) run pending tasks while a
// future is not ready. A pool constructed with zero threads executes
// every submission inline on the calling thread, which is the serial
// baseline the determinism tests compare against.
//
// Determinism contract: the pool schedules, it never sequences — callers
// must make tasks independent (the sweep gives each cell its own RNG
// streams, registry and sinks) and merge results by task identity, never
// by completion order.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace rfh {

class ThreadPool {
 public:
  /// `threads` workers; 0 runs every task inline in submit() (no workers,
  /// no queues — the degenerate serial pool).
  explicit ThreadPool(unsigned threads);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  /// Drains every queued task (their futures must be satisfiable), then
  /// joins the workers.
  ~ThreadPool();

  /// Worker count (0 for an inline pool).
  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Hardware concurrency clamped to at least 1.
  [[nodiscard]] static unsigned default_jobs() noexcept;

  /// Enqueue `fn`; the future carries its result or exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    if (workers_.empty()) {
      (*task)();  // inline pool: run on the caller, result already set
      executed_.fetch_add(1, std::memory_order_relaxed);
      return future;
    }
    enqueue([task] { (*task)(); });
    return future;
  }

  /// Block until `future` is ready, executing pending pool tasks on the
  /// calling thread in the meantime. Safe to call from inside a task:
  /// a worker waiting on nested work keeps the pool moving instead of
  /// deadlocking it.
  template <typename T>
  T wait(std::future<T>& future) {
    using namespace std::chrono_literals;
    while (future.wait_for(0s) != std::future_status::ready) {
      if (!run_one()) future.wait_for(50us);
    }
    return future.get();
  }

  /// Execute one pending task on the calling thread if any is queued.
  /// Returns false when every queue was empty.
  bool run_one();

  /// Busy-wait (helping) until no task is queued or running.
  void wait_idle();

  struct Stats {
    std::uint64_t executed = 0;  ///< tasks completed (all queues)
    std::uint64_t stolen = 0;    ///< tasks taken from a sibling's deque
    std::uint64_t busy_ns = 0;   ///< summed wall time inside tasks
  };
  [[nodiscard]] Stats stats() const noexcept;

 private:
  using Task = std::function<void()>;

  struct Worker {
    std::mutex mutex;
    std::deque<Task> deque;
  };

  void enqueue(Task task);
  void worker_loop(unsigned index);
  /// Dequeue honouring the steal order for `self` (own deque first when
  /// the caller is a worker of this pool; ~0u for foreign threads).
  bool try_dequeue(unsigned self, Task& out);
  void run_task(Task& task);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::deque<Task> injector_;
  std::mutex injector_mutex_;
  std::mutex sleep_mutex_;
  std::condition_variable wakeup_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> queued_{0};
  std::atomic<std::uint64_t> running_{0};
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> stolen_{0};
  std::atomic<std::uint64_t> busy_ns_{0};
};

}  // namespace rfh
