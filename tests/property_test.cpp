// Cross-module property sweeps (parameterized): invariants that must hold
// for any seed, size, or threshold configuration.
#include <gtest/gtest.h>

#include <memory>

#include "common/availability.h"
#include "core/rfh_policy.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "net/graph.h"
#include "ring/ring.h"
#include "test_util.h"

namespace rfh {
namespace {

// ---------------------------------------------------------------------
// Ring balance across sizes and token counts.
class RingBalanceTest
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
};

TEST_P(RingBalanceTest, TokenCountControlsSpread) {
  const auto [servers, tokens] = GetParam();
  HashRing ring(tokens);
  for (std::uint32_t s = 0; s < servers; ++s) ring.add_server(ServerId{s});

  std::vector<int> counts(servers, 0);
  Rng rng(1234);
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    ++counts[ring.primary(rng.next()).value()];
  }
  // Every server owns keyspace, and nobody owns more than a small
  // multiple of its fair share (looser for fewer tokens).
  const double fair = static_cast<double>(n) / servers;
  const double slack = tokens >= 16 ? 3.0 : 6.0;
  for (std::uint32_t s = 0; s < servers; ++s) {
    EXPECT_GT(counts[s], 0) << "server " << s << " owns nothing";
    EXPECT_LT(counts[s], slack * fair) << "server " << s << " over-owns";
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndTokens, RingBalanceTest,
    ::testing::Combine(::testing::Values<std::uint32_t>(3, 10, 50),
                       ::testing::Values<std::uint32_t>(4, 16, 64)));

// ---------------------------------------------------------------------
// Traffic propagation invariants under random demand and capacities.
class PropagationInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(PropagationInvariantTest, ConservationCapacityAndNonNegativity) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 17);
  SimConfig config;
  config.partitions = 6;
  WorldOptions options;
  options.per_replica_capacity_lo = 0.5 + rng.uniform_real() * 2.0;
  options.per_replica_capacity_hi =
      options.per_replica_capacity_lo + rng.uniform_real() * 4.0;
  options.seed = rng.next();

  // Random fixed demand.
  QueryBatch batch;
  for (std::uint32_t p = 0; p < config.partitions; ++p) {
    const auto requesters = 1 + rng.uniform(4);
    for (std::uint64_t j = 0; j < requesters; ++j) {
      batch.push_back(QueryFlow{
          PartitionId{p},
          DatacenterId{static_cast<std::uint32_t>(rng.uniform(10))},
          1.0 + rng.uniform_real() * 20.0});
    }
  }
  // Random policy so replica sets evolve while we check.
  auto sim = test::make_fixed_sim(batch, std::make_unique<RfhPolicy>(),
                                  config, options);
  for (int e = 0; e < 20; ++e) {
    sim->step();
    const EpochTraffic& traffic = sim->traffic();
    for (std::uint32_t pv = 0; pv < config.partitions; ++pv) {
      const PartitionId p{pv};
      double served = 0.0;
      for (std::uint32_t sv = 0; sv < traffic.servers(); ++sv) {
        const ServerId s{sv};
        EXPECT_GE(traffic.served(p, s), 0.0);
        EXPECT_GE(traffic.node_traffic(p, s), 0.0);
        EXPECT_LE(traffic.served(p, s),
                  sim->topology().server(s).spec.per_replica_capacity + 1e-9);
        served += traffic.served(p, s);
      }
      EXPECT_NEAR(served + traffic.unserved(p), traffic.partition_queries(p),
                  1e-6);
    }
    sim->cluster().check_invariants();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropagationInvariantTest,
                         ::testing::Range(0, 6));

// ---------------------------------------------------------------------
// Threshold sweeps: the decision tree must stay sane for any reasonable
// beta/gamma/delta/mu.
struct ThresholdCase {
  double beta;
  double gamma;
  double delta;
  double mu;
};

class ThresholdSweepTest : public ::testing::TestWithParam<ThresholdCase> {};

TEST_P(ThresholdSweepTest, RfhStaysWithinFloorAndCap) {
  const ThresholdCase& c = GetParam();
  Scenario scenario = Scenario::paper_random_query();
  scenario.epochs = 60;
  scenario.sim.beta = c.beta;
  scenario.sim.gamma = c.gamma;
  scenario.sim.delta = c.delta;
  scenario.sim.mu = c.mu;
  const PolicyRun run = run_policy(scenario, PolicyKind::kRfh);
  const std::uint32_t floor =
      min_replicas(scenario.sim.min_availability, scenario.sim.failure_rate);
  // Tail census bounded by floor and cap.
  const double avg_tail =
      tail_mean(run, &EpochMetrics::avg_replicas_per_partition, 15);
  EXPECT_GE(avg_tail, static_cast<double>(floor) - 0.1);
  EXPECT_LE(avg_tail,
            static_cast<double>(scenario.sim.max_replicas_per_partition));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ThresholdSweepTest,
    ::testing::Values(ThresholdCase{1.2, 1.1, 0.1, 0.5},
                      ThresholdCase{2.0, 1.5, 0.2, 1.0},
                      ThresholdCase{3.0, 2.0, 0.4, 2.0},
                      ThresholdCase{4.0, 3.0, 0.05, 4.0},
                      ThresholdCase{1.5, 2.5, 0.6, 0.25}));

// ---------------------------------------------------------------------
// Availability floor inverse property over a grid.
class FloorGridTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(FloorGridTest, MinReplicasIsTheLeastSufficientCount) {
  const auto [target, f] = GetParam();
  const std::uint32_t r = min_replicas(target, f);
  EXPECT_GE(availability(r, f), target);
  if (r > 2) {
    EXPECT_LT(availability(r - 1, f), target);
  }
}

INSTANTIATE_TEST_SUITE_P(
    TargetsAndFailureRates, FloorGridTest,
    ::testing::Combine(::testing::Values(0.8, 0.9, 0.99, 0.9999),
                       ::testing::Values(0.01, 0.1, 0.25, 0.5, 0.75)));

// ---------------------------------------------------------------------
// Scenario determinism across every policy and workload kind.
struct DeterminismCase {
  PolicyKind policy;
  WorkloadKind workload;
};

class DeterminismTest : public ::testing::TestWithParam<DeterminismCase> {};

TEST_P(DeterminismTest, IdenticalRunsProduceIdenticalSeries) {
  Scenario scenario = Scenario::paper_random_query();
  scenario.workload = GetParam().workload;
  scenario.epochs = 40;
  const PolicyRun a = run_policy(scenario, GetParam().policy);
  const PolicyRun b = run_policy(scenario, GetParam().policy);
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t i = 0; i < a.series.size(); ++i) {
    EXPECT_EQ(a.series[i].total_replicas, b.series[i].total_replicas);
    EXPECT_EQ(a.series[i].migrations_total, b.series[i].migrations_total);
    EXPECT_DOUBLE_EQ(a.series[i].utilization, b.series[i].utilization);
    EXPECT_DOUBLE_EQ(a.series[i].replication_cost_total,
                     b.series[i].replication_cost_total);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PolicyWorkloadGrid, DeterminismTest,
    ::testing::Values(
        DeterminismCase{PolicyKind::kRequest, WorkloadKind::kUniform},
        DeterminismCase{PolicyKind::kOwner, WorkloadKind::kFlashCrowd},
        DeterminismCase{PolicyKind::kRandom, WorkloadKind::kHotspotShift},
        DeterminismCase{PolicyKind::kRfh, WorkloadKind::kUniform},
        DeterminismCase{PolicyKind::kRfh, WorkloadKind::kFlashCrowd}));

// ---------------------------------------------------------------------
// The simulation scales to bigger synthetic worlds without violating
// invariants.
class WorldScaleTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(WorldScaleTest, BiggerWorldsRunCleanly) {
  const std::uint32_t n_dcs = GetParam();
  World world = build_synthetic_world(n_dcs);
  SimConfig config;
  config.partitions = 16;
  WorkloadParams params;
  params.partitions = 16;
  params.datacenters = n_dcs;
  params.mean_queries_per_epoch = 30.0 * n_dcs;
  auto sim = std::make_unique<Simulation>(
      std::move(world), config, std::make_unique<UniformWorkload>(params),
      std::make_unique<RfhPolicy>());
  for (int e = 0; e < 25; ++e) sim->step();
  sim->cluster().check_invariants();
  EXPECT_GT(sim->cluster().total_replicas(), 16u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, WorldScaleTest,
                         ::testing::Values<std::uint32_t>(2, 5, 10, 25));

// ---------------------------------------------------------------------
// Chaos property: any seeded random fault plan must run to completion
// with zero invariant violations. The replica_floor invariant inside the
// checker is the paper-level property: a partition below the Eq. 14
// minimum is only ever explained by a recorded failure (lost copy on a
// dead server / data loss), never by a voluntary policy action.
FaultPlan random_fault_plan(std::uint64_t seed, Epoch horizon) {
  Rng rng(seed);
  FaultPlan plan;

  FaultEvent crash;
  crash.kind = FaultKind::kCrash;
  crash.at = static_cast<Epoch>(5 + rng.uniform(horizon / 3));
  crash.count = static_cast<std::uint32_t>(1 + rng.uniform(6));
  plan.add(crash);

  FaultEvent outage;
  outage.kind = FaultKind::kDatacenterOutage;
  outage.at = static_cast<Epoch>(10 + rng.uniform(horizon / 2));
  outage.dc = DatacenterId{static_cast<std::uint32_t>(rng.uniform(10))};
  outage.recover_after = static_cast<Epoch>(2 + rng.uniform(12));
  plan.add(outage);

  FaultEvent churn;
  churn.kind = FaultKind::kChurn;
  churn.at = static_cast<Epoch>(rng.uniform(horizon / 4));
  churn.until = static_cast<Epoch>(
      churn.at + 10 + rng.uniform(horizon - churn.at));
  churn.period = static_cast<Epoch>(2 + rng.uniform(8));
  churn.kill = static_cast<std::uint32_t>(1 + rng.uniform(3));
  churn.recover = churn.kill;  // rolling wave: population stays bounded
  plan.add(churn);

  FaultEvent flap;
  flap.kind = FaultKind::kLinkFlap;
  flap.at = static_cast<Epoch>(rng.uniform(horizon / 2));
  flap.until = static_cast<Epoch>(flap.at + 10 + rng.uniform(30));
  flap.link_a = DatacenterId{static_cast<std::uint32_t>(rng.uniform(10))};
  flap.link_b = DatacenterId{
      static_cast<std::uint32_t>((flap.link_a.value() + 1 + rng.uniform(9)) %
                                 10)};
  flap.period = static_cast<Epoch>(2 + rng.uniform(6));
  flap.down = static_cast<Epoch>(1 + rng.uniform(flap.period));
  plan.add(flap);

  FaultEvent crowd;
  crowd.kind = FaultKind::kFlashCrowd;
  crowd.at = static_cast<Epoch>(rng.uniform(horizon));
  crowd.duration = static_cast<Epoch>(1 + rng.uniform(20));
  crowd.factor = 1.5 + rng.uniform_real() * 4.0;
  plan.add(crowd);

  FaultEvent heal;
  heal.kind = FaultKind::kRecover;
  heal.at = static_cast<Epoch>(horizon - 1 - rng.uniform(horizon / 4));
  heal.count = static_cast<std::uint32_t>(1 + rng.uniform(8));
  plan.add(heal);

  return plan;
}

class ChaosPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosPropertyTest, RandomPlansRunWithZeroViolations) {
  constexpr Epoch kHorizon = 80;
  Scenario scenario = Scenario::paper_random_query();
  scenario.epochs = kHorizon;
  scenario.fault_plan = random_fault_plan(GetParam(), kHorizon);

  InvariantChecker checker(InvariantChecker::Mode::kRecord);
  const PolicyRun run =
      run_policy(scenario, PolicyKind::kRfh, {}, RfhPolicy::Options{},
                 nullptr, nullptr, nullptr, &checker);

  EXPECT_EQ(checker.epochs_checked(), kHorizon);
  EXPECT_TRUE(checker.violations().empty()) << checker.summary();
  // The plan actually did something, and every chaos kill was surfaced.
  EXPECT_GT(run.faults_injected, 0u);
  std::uint64_t kind_sum = 0;
  for (const std::uint64_t n : run.faults_by_kind) kind_sum += n;
  EXPECT_EQ(kind_sum, run.faults_injected);
  EXPECT_EQ(run.series.size(), kHorizon);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosPropertyTest,
                         ::testing::Values<std::uint64_t>(1, 7, 42, 1000,
                                                          31337, 987654321));

// The same seeded plan must injure the same servers in the same order —
// chaos victim selection has its own RNG stream, so repeated runs agree
// even though the plan interleaves with workload and policy randomness.
TEST(ChaosPropertyTest, SamePlanSameSeedKillsIdentically) {
  Scenario scenario = Scenario::paper_random_query();
  scenario.epochs = 60;
  scenario.fault_plan = random_fault_plan(99, 60);
  const PolicyRun a = run_policy(scenario, PolicyKind::kRfh);
  const PolicyRun b = run_policy(scenario, PolicyKind::kRfh);
  EXPECT_EQ(a.killed, b.killed);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
}

}  // namespace
}  // namespace rfh
