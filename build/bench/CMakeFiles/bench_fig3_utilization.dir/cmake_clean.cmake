file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_utilization.dir/bench_fig3_utilization.cpp.o"
  "CMakeFiles/bench_fig3_utilization.dir/bench_fig3_utilization.cpp.o.d"
  "bench_fig3_utilization"
  "bench_fig3_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
