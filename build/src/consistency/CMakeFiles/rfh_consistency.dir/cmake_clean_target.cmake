file(REMOVE_RECURSE
  "librfh_consistency.a"
)
