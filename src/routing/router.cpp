#include "routing/router.h"

#include "common/assert.h"
#include "ring/hash.h"
#include "ring/rendezvous.h"
#include "ring/ring.h"
#include "telemetry/registry.h"

namespace rfh {

Router::Router(const Topology& topology, const ShortestPaths& paths)
    : topology_(&topology), paths_(&paths) {
  RFH_ASSERT(topology.datacenter_count() == paths.size());
}

void Router::set_telemetry(MetricRegistry* registry) {
  if (registry == nullptr) {
    routes_ = nullptr;
    stages_ = nullptr;
    dead_skips_ = nullptr;
    memo_hit_counter_ = nullptr;
    memo_miss_counter_ = nullptr;
    return;
  }
  routes_ = &registry->counter("rfh_router_routes_total", {},
                               "Routes computed");
  stages_ = &registry->counter("rfh_router_route_stages_total", {},
                               "Datacenter stages across all routes");
  dead_skips_ = &registry->counter(
      "rfh_router_dead_dc_skips_total", {},
      "Transit datacenters skipped because no server was alive");
  memo_hit_counter_ = &registry->counter(
      "rfh_router_memo_hits_total", {}, "route() calls served from the memo");
  memo_miss_counter_ = &registry->counter(
      "rfh_router_memo_misses_total", {},
      "route() calls that recomputed (cold, invalidated or holder moved)");
}

void Router::set_memo_enabled(bool enabled) {
  memo_enabled_ = enabled;
  memo_.clear();
}

void Router::invalidate_routes() { memo_.clear(); }

void Router::invalidate_routes_for(PartitionId partition) {
  const std::uint64_t hi = std::uint64_t{partition.value()} << 32;
  for (auto it = memo_.begin(); it != memo_.end();) {
    if ((it->first & ~std::uint64_t{0xFFFFFFFF}) == hi) {
      it = memo_.erase(it);
    } else {
      ++it;
    }
  }
}

ServerId Router::relay_for(PartitionId partition, DatacenterId dc,
                           std::span<const ServerId> live_servers) {
  const std::uint64_t key = hash_combine(HashRing::partition_key(partition),
                                         hash64(std::uint64_t{dc.value()}));
  return rendezvous_pick(key, live_servers);
}

void Router::compute(PartitionId partition, DatacenterId requester,
                     ServerId holder,
                     std::span<const std::vector<ServerId>> live_by_dc,
                     MemoEntry& entry) const {
  const DatacenterId holder_dc = topology_->server(holder).datacenter;
  const std::vector<DatacenterId> dc_path =
      paths_->path(requester, holder_dc);

  entry.holder = holder;
  entry.dead_skips = 0;
  Route& route = entry.route;
  route.stages.clear();
  route.holder = holder;
  route.stages.reserve(dc_path.size());

  std::uint32_t hops = 1;  // client -> requester-DC relay
  double latency = kHopLatencyMs;
  for (const DatacenterId dc : dc_path) {
    RFH_ASSERT(dc.value() < live_by_dc.size());
    // Prefixes of a shortest path are shortest paths, so the cumulative
    // fibre distance to this stage is the all-pairs distance.
    latency = kHopLatencyMs * hops +
              paths_->distance_km(requester, dc) / kFibreKmPerMs;
    const std::vector<ServerId>& live = live_by_dc[dc.value()];
    if (live.empty()) {
      // Dead datacenter: traffic passes through its backbone router but no
      // server can absorb or be a hub there.
      ++entry.dead_skips;
      ++hops;
      continue;
    }
    const ServerId relay = dc == holder_dc
                               ? holder
                               : relay_for(partition, dc, live);
    route.stages.push_back(RouteStage{dc, relay, hops, latency});
    ++hops;
  }
  // Final descent from the holder datacenter's relay to the owning server.
  route.total_hops = hops;
  route.total_latency_ms = latency + kHopLatencyMs;
}

const Route& Router::route(
    PartitionId partition, DatacenterId requester, ServerId holder,
    std::span<const std::vector<ServerId>> live_by_dc) const {
  RFH_ASSERT(holder.valid());

  MemoEntry* entry = nullptr;
  bool hit = false;
  if (memo_enabled_) {
    MemoEntry& slot = memo_[memo_key(partition, requester)];
    // A populated entry is only trusted when the primary it was computed
    // for still holds the partition; the owner flushes the memo on every
    // liveness/link/placement change (DESIGN.md §11), so the holder check
    // is the last line of defence rather than the invalidation mechanism.
    hit = slot.holder == holder && !slot.route.stages.empty();
    entry = &slot;
  } else {
    entry = &scratch_;
  }
  if (!hit) {
    compute(partition, requester, holder, live_by_dc, *entry);
    ++memo_misses_;
    if (memo_miss_counter_ != nullptr) memo_miss_counter_->inc();
  } else {
    ++memo_hits_;
    if (memo_hit_counter_ != nullptr) memo_hit_counter_->inc();
  }
  // Telemetry is replayed identically for hits and misses, so counter
  // totals are bit-identical with the memo on or off.
  if (dead_skips_ != nullptr && entry->dead_skips > 0) {
    dead_skips_->inc(static_cast<double>(entry->dead_skips));
  }
  if (routes_ != nullptr) {
    routes_->inc();
    stages_->inc(static_cast<double>(entry->route.stages.size()));
  }
  return entry->route;
}

}  // namespace rfh
