// ThreadPool and SweepRunner unit tests (src/exec/): task ordering,
// exception propagation, nested submit-and-wait, inline-pool equivalence
// and sweep plumbing. The byte-level parallel-vs-serial differential
// suite lives in tests/determinism_test.cpp.
#include "exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/parallel_for.h"
#include "exec/sweep.h"
#include "telemetry/registry.h"

namespace rfh {
namespace {

TEST(ThreadPoolTest, SingleWorkerRunsExternalTasksInSubmissionOrder) {
  // External submissions land in the FIFO injector; one worker must
  // consume them in order.
  ThreadPool pool(1);
  std::vector<int> order;
  std::mutex mutex;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([&, i] {
      const std::lock_guard<std::mutex> lock(mutex);
      order.push_back(i);
    }));
  }
  for (auto& f : futures) pool.wait(f);
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPoolTest, AllTasksExecuteAcrossManyWorkers) {
  ThreadPool pool(8);
  std::atomic<int> done{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.submit([&done] {
      done.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  for (auto& f : futures) pool.wait(f);
  EXPECT_EQ(done.load(), 500);
  EXPECT_EQ(pool.stats().executed, 500u);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFutureNotWorker) {
  ThreadPool pool(2);
  auto bad = pool.submit([]() -> int {
    throw std::runtime_error("cell exploded");
  });
  EXPECT_THROW((void)pool.wait(bad), std::runtime_error);
  // The worker survived the throw and keeps executing tasks.
  auto good = pool.submit([] { return 7; });
  EXPECT_EQ(pool.wait(good), 7);
}

TEST(ThreadPoolTest, NestedSubmitAndWaitDoesNotDeadlock) {
  // A task that submits a subtask and waits on it would deadlock a
  // naive 1-thread pool; wait() executes pending tasks while waiting.
  ThreadPool pool(1);
  auto outer = pool.submit([&pool] {
    auto inner = pool.submit([] { return 21; });
    return 2 * pool.wait(inner);
  });
  EXPECT_EQ(pool.wait(outer), 42);
}

TEST(ThreadPoolTest, DeeplyNestedSubmitsComplete) {
  ThreadPool pool(2);
  std::function<int(int)> spawn = [&](int depth) -> int {
    if (depth == 0) return 1;
    auto child = pool.submit([&spawn, depth] { return spawn(depth - 1); });
    return 1 + pool.wait(child);
  };
  auto root = pool.submit([&spawn] { return spawn(16); });
  EXPECT_EQ(pool.wait(root), 17);
}

TEST(ThreadPoolTest, InlinePoolRunsOnTheCallingThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  const std::thread::id caller = std::this_thread::get_id();
  auto future = pool.submit([caller] {
    return std::this_thread::get_id() == caller;
  });
  EXPECT_TRUE(pool.wait(future));
  EXPECT_EQ(pool.stats().executed, 1u);
}

TEST(ThreadPoolTest, InlinePoolPropagatesExceptions) {
  ThreadPool pool(0);
  auto future = pool.submit([]() -> int { throw std::logic_error("boom"); });
  EXPECT_THROW((void)future.get(), std::logic_error);
}

TEST(ThreadPoolTest, WaitIdleDrainsEverything) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    (void)pool.submit([&done] { done.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      (void)pool.submit([&done] { done.fetch_add(1); });
    }
  }  // ~ThreadPool joins after draining
  EXPECT_EQ(done.load(), 50);
}

// ---------------------------------------------------------------------
// parallel_for_shards: shard boundaries are a pure function of (n,
// shards), shard-order merges reproduce the serial order for any shard
// count, and the cooperative join lets a body issue nested parallel_fors
// on the same pool without deadlocking it.

TEST(ParallelForTest, ShardRangesPartitionTheIndexSpace) {
  for (const std::size_t n : {0uL, 1uL, 7uL, 64uL, 1000uL}) {
    for (const unsigned shards : {1u, 2u, 4u, 7u, 16u}) {
      std::size_t expected_begin = 0;
      for (unsigned s = 0; s < shards; ++s) {
        const IndexRange range = shard_range(n, shards, s);
        EXPECT_EQ(range.begin, expected_begin) << n << "/" << shards;
        EXPECT_GE(range.end, range.begin);
        expected_begin = range.end;
      }
      EXPECT_EQ(expected_begin, n) << n << "/" << shards;
    }
  }
}

TEST(ParallelForTest, ShardOrderMergeIsShardCountInvariant) {
  // The engine's merge discipline in miniature: each shard appends to a
  // private buffer, buffers are concatenated in shard order. The result
  // must equal the serial iteration order for every shard count.
  constexpr std::size_t kN = 1000;
  ThreadPool pool(3);
  std::vector<std::size_t> reference(kN);
  for (std::size_t i = 0; i < kN; ++i) reference[i] = i * 31 % 257;

  for (const unsigned shards : {1u, 4u, 7u}) {
    std::vector<std::vector<std::size_t>> per_shard(shards);
    parallel_for_shards(&pool, kN, shards,
                        [&](unsigned shard, IndexRange range) {
                          for (std::size_t i = range.begin; i < range.end;
                               ++i) {
                            per_shard[shard].push_back(i * 31 % 257);
                          }
                        });
    std::vector<std::size_t> merged;
    for (const std::vector<std::size_t>& chunk : per_shard) {
      merged.insert(merged.end(), chunk.begin(), chunk.end());
    }
    EXPECT_EQ(merged, reference) << "shards " << shards;
  }
}

TEST(ParallelForTest, NestedParallelForOnTheSamePoolCompletes) {
  // Regression for the cooperative-wait gap: a parallel_for issued from
  // inside a pool task (the sweep-cell shape) must drain via
  // ThreadPool::wait instead of deadlocking — including on a 1-worker
  // pool, where every nested shard runs on the waiting thread.
  for (const unsigned workers : {1u, 2u, 4u}) {
    ThreadPool pool(workers);
    std::atomic<int> total{0};
    std::vector<std::future<void>> cells;
    for (int cell = 0; cell < 6; ++cell) {
      cells.push_back(pool.submit([&pool, &total] {
        parallel_for_shards(&pool, 128, 4,
                            [&total](unsigned, IndexRange range) {
                              total.fetch_add(
                                  static_cast<int>(range.end - range.begin),
                                  std::memory_order_relaxed);
                            });
      }));
    }
    for (auto& f : cells) pool.wait(f);
    EXPECT_EQ(total.load(), 6 * 128) << "workers " << workers;
  }
}

TEST(ParallelForTest, ExceptionInOneShardStillJoinsAllShards) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      parallel_for_shards(&pool, 8, 8,
                          [&](unsigned shard, IndexRange) {
                            if (shard == 3) {
                              throw std::runtime_error("shard exploded");
                            }
                            completed.fetch_add(1);
                          }),
      std::runtime_error);
  // Every non-throwing shard ran to completion before the rethrow.
  EXPECT_EQ(completed.load(), 7);
}

// ---------------------------------------------------------------------
// SweepRunner plumbing (cell identity, collection, telemetry). The
// bit-identity guarantees are covered in determinism_test.cpp.

std::vector<SweepCell> small_grid() {
  std::vector<SweepCell> cells;
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    for (const PolicyKind kind : {PolicyKind::kOwner, PolicyKind::kRfh}) {
      SweepCell cell;
      cell.label = "seed" + std::to_string(seed);
      cell.scenario = Scenario::paper_random_query();
      cell.scenario.epochs = 10;
      cell.scenario.sim.seed = seed;
      cell.scenario.world.seed = seed;
      cell.policy = kind;
      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

TEST(SweepRunnerTest, ResultsArriveInCellIndexOrderWithIdentity) {
  SweepOptions options;
  options.jobs = 4;
  const std::vector<SweepCell> cells = small_grid();
  const std::vector<SweepCellResult> results = SweepRunner(options).run(cells);
  ASSERT_EQ(results.size(), cells.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].index, i);
    EXPECT_EQ(results[i].label, cells[i].label);
    EXPECT_EQ(results[i].policy, cells[i].policy);
    EXPECT_EQ(results[i].seed, cells[i].scenario.sim.seed);
    EXPECT_EQ(results[i].run.series.size(), cells[i].scenario.epochs);
  }
}

TEST(SweepRunnerTest, CollectionTogglesMetricsAndTraces) {
  std::vector<SweepCell> cells = small_grid();
  cells.resize(2);

  SweepOptions off;
  for (const SweepCellResult& r : SweepRunner(off).run(cells)) {
    EXPECT_TRUE(r.metrics_json.empty());
    EXPECT_TRUE(r.trace_jsonl.empty());
  }

  SweepOptions on;
  on.jobs = 2;
  on.collect_metrics = true;
  on.collect_traces = true;
  for (const SweepCellResult& r : SweepRunner(on).run(cells)) {
    EXPECT_NE(r.metrics_json.find("rfh-metrics/1"), std::string::npos);
    EXPECT_FALSE(r.trace_jsonl.empty());
  }
}

TEST(SweepRunnerTest, SweepTelemetryCountsCellsAndPoolWork) {
  MetricRegistry registry;
  SweepOptions options;
  options.jobs = 3;
  options.registry = &registry;
  const std::vector<SweepCell> cells = small_grid();
  (void)SweepRunner(options).run(cells);
  EXPECT_EQ(registry.counter("rfh_sweep_cells_total").value(),
            static_cast<double>(cells.size()));
  EXPECT_EQ(registry.counter("rfh_pool_tasks_executed_total").value(),
            static_cast<double>(cells.size()));
  EXPECT_EQ(registry.gauge("rfh_sweep_jobs").value(), 3.0);
}

TEST(SweepRunnerTest, EffectiveJobsResolvesZeroToHardware) {
  SweepOptions zero;
  zero.jobs = 0;
  EXPECT_GE(SweepRunner(zero).effective_jobs(), 1u);
  SweepOptions eight;
  eight.jobs = 8;
  EXPECT_EQ(SweepRunner(eight).effective_jobs(), 8u);
}

TEST(SweepRunnerTest, ThreadedEnginesInsideThreadedSweepCellsComplete) {
  // Each cell builds a Simulation with its own intra-epoch pool
  // (scenario.engine_jobs) while the sweep fans cells across its pool —
  // nested parallelism across *separate* pools. This must neither
  // deadlock nor perturb results: the threaded grid matches the fully
  // serial one cell for cell.
  std::vector<SweepCell> cells = small_grid();
  std::vector<SweepCell> threaded = cells;
  for (SweepCell& cell : threaded) cell.scenario.engine_jobs = 4;

  SweepOptions serial_options;  // jobs = 1, serial engines
  serial_options.jobs = 1;
  SweepOptions nested_options;  // 4 sweep workers x 4 engine workers
  nested_options.jobs = 4;
  const std::vector<SweepCellResult> reference =
      SweepRunner(serial_options).run(cells);
  const std::vector<SweepCellResult> nested =
      SweepRunner(nested_options).run(threaded);
  ASSERT_EQ(nested.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(series_digest(nested[i].run.series),
              series_digest(reference[i].run.series))
        << "cell " << i;
  }
}

}  // namespace
}  // namespace rfh
