// Extension experiment — consistency cost of each placement family.
//
// The paper defers consistency maintenance to future work; this bench
// quantifies the eventual-consistency bill each replication policy runs
// up under a 20%-write workload: replica version lag (how far copies
// trail the primary), stale-read fraction (reads answered by lagging
// copies), and writes lost when a mass failure promotes a lagging
// survivor.
//
// Expected structure: owner-oriented copies sit near the primary (short
// anti-entropy paths -> low lag); request-oriented copies sit at the
// requesters, often far away (high lag, stale reads); RFH's hubs are on
// the path between the two; random is geography-blind.
#include <iostream>

#include "bench_args.h"
#include "exec/sweep.h"
#include "harness/report.h"

int main(int argc, char** argv) {
  const unsigned jobs = rfh::bench_jobs(argc, argv);
  rfh::Scenario scenario = rfh::Scenario::paper_random_query();
  scenario.write_fraction = 0.2;

  {
    const rfh::ComparativeResult r = rfh::run_comparison_pooled(scenario, {}, jobs);
    rfh::print_figure(std::cout,
                      "Consistency: mean replica lag (versions), 20% writes",
                      r, &rfh::EpochMetrics::mean_replica_lag);
    rfh::print_figure(std::cout,
                      "Consistency: stale-read fraction, 20% writes", r,
                      &rfh::EpochMetrics::stale_read_fraction);
  }
  {
    // Same workload plus a mass failure: how many accepted writes does
    // each policy's placement lose in the failover?
    rfh::FailureEvent failure;
    failure.epoch = 150;
    failure.kill_random = 30;
    const rfh::ComparativeResult r =
        rfh::run_comparison_pooled(scenario, {failure}, jobs);
    rfh::print_figure(std::cout,
                      "Consistency: cumulative lost writes "
                      "(30 servers killed at epoch 150)",
                      r, &rfh::EpochMetrics::lost_writes_total);
  }
  return 0;
}
