// Command-line experiment driver (flag grammar: see src/harness/cli.h).
//
// Examples:
//   ./rfh_cli --workload=flash --metric=utilization --compare
//   ./rfh_cli --compare --jobs=4 --quiet
//   ./rfh_cli --policy=rfh --kill=30@290 --epochs=500 --metric=replicas
//   ./rfh_cli --write-fraction=0.2 --metric=stale --compare --quiet
//   ./rfh_cli --kill=30@100 --trace-out=run.jsonl --quiet
//   ./rfh_cli --trace-out=run.json --trace-format=chrome
//   ./rfh_cli --trace-out=r.jsonl --trace-filter=ReplicaAdded,ActionDropped
//   ./rfh_cli --metrics-out=metrics.prom --quiet
//   ./rfh_cli --metrics-out=metrics.json --metrics-format=json
//   ./rfh_cli --profile --quiet
//   ./rfh_cli --fault-plan=chaos.plan --check-invariants --quiet
//   ./rfh_cli --workload=stream --metrics-out=- --quiet
//   ./rfh_cli --workload=stream --arrival-rate=600 --queue-cap=16
//             --service-cv=2 --metric=qp99 --check-invariants
//   ./rfh_cli --slo=avail=0.99,migrations=40 --kill=30@100 --quiet
//   ./rfh_cli --fault-plan=chaos.plan --blackbox-out=flight.jsonl --quiet
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>

#include "exec/sweep.h"
#include "fault/invariants.h"
#include "harness/cli.h"
#include "harness/report.h"
#include "obs/sinks.h"
#include "obs/timeline.h"
#include "telemetry/profiler.h"
#include "telemetry/registry.h"

namespace {

void emit(const rfh::CliOptions& options,
          const std::vector<rfh::PolicyRun>& runs) {
  bool ok = true;
  if (!options.quiet) {
    std::vector<rfh::NamedSeries> series;
    for (const rfh::PolicyRun& run : runs) {
      std::vector<double> values;
      values.reserve(run.series.size());
      for (const rfh::EpochMetrics& m : run.series) {
        values.push_back(rfh::metric_value(m, options.metric, &ok));
      }
      series.push_back(rfh::NamedSeries{
          std::string(rfh::policy_name(run.kind)), std::move(values)});
    }
    rfh::write_csv(std::cout, series);
  }
  std::printf("# %s tail-mean(50):", options.metric.c_str());
  for (const rfh::PolicyRun& run : runs) {
    const std::size_t n = std::min<std::size_t>(50, run.series.size());
    double sum = 0.0;
    for (std::size_t i = run.series.size() - n; i < run.series.size(); ++i) {
      sum += rfh::metric_value(run.series[i], options.metric, &ok);
    }
    std::printf(" %s=%.4f", std::string(rfh::policy_name(run.kind)).c_str(),
                sum / static_cast<double>(n));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const rfh::CliParseResult parsed = rfh::parse_cli(
      std::span<const char* const>(argv + 1, static_cast<std::size_t>(argc - 1)));
  if (!parsed.ok) {
    std::fprintf(stderr, "rfh_cli: %s\n", parsed.error.c_str());
    std::fprintf(stderr, "metrics:");
    for (const std::string& name : rfh::metric_names()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, "\n(see src/harness/cli.h for the flag grammar)\n");
    return 2;
  }
  const rfh::CliOptions& options = parsed.options;

  // Optional structured trace (parse_cli guarantees single-policy mode).
  std::ofstream trace_file;
  std::unique_ptr<rfh::EventSink> trace_sink;
  std::unique_ptr<rfh::FilterSink> filter;
  rfh::EventSink* sink = nullptr;
  if (!options.trace_out.empty()) {
    trace_file.open(options.trace_out);
    if (!trace_file) {
      std::fprintf(stderr, "rfh_cli: cannot open '%s' for writing\n",
                   options.trace_out.c_str());
      return 2;
    }
    if (options.trace_format == rfh::TraceFormat::kChrome) {
      trace_sink = std::make_unique<rfh::ChromeTraceSink>(trace_file);
    } else {
      trace_sink = std::make_unique<rfh::JsonlSink>(trace_file);
    }
    sink = trace_sink.get();
    if (!options.trace_filter.empty()) {
      filter = std::make_unique<rfh::FilterSink>(*trace_sink,
                                                 options.trace_filter);
      sink = filter.get();
    }
  }

  // Optional telemetry registry and phase profiler (single-policy mode,
  // guaranteed by parse_cli).
  std::unique_ptr<rfh::MetricRegistry> registry;
  if (!options.metrics_out.empty()) {
    registry = std::make_unique<rfh::MetricRegistry>();
  }
  std::unique_ptr<rfh::PhaseProfiler> profiler;
  if (options.profile) profiler = std::make_unique<rfh::PhaseProfiler>();
  std::unique_ptr<rfh::InvariantChecker> checker;
  if (options.check_invariants) {
    checker = std::make_unique<rfh::InvariantChecker>(
        rfh::InvariantChecker::Mode::kRecord);
  }
  // Causal flight recorder (single-policy mode, guaranteed by parse_cli).
  std::unique_ptr<rfh::TimelineStore> recorder;
  if (!options.blackbox_out.empty()) {
    recorder = std::make_unique<rfh::TimelineStore>(
        options.scenario.sim.partitions);
  }

  std::vector<rfh::PolicyRun> runs;
  if (options.compare) {
    runs = rfh::run_comparison_pooled(options.scenario, options.failures,
                                      options.jobs)
               .runs;
  } else {
    runs.push_back(rfh::run_policy(options.scenario, options.policy,
                                   options.failures, rfh::RfhPolicy::Options{},
                                   sink, registry.get(), profiler.get(),
                                   checker.get(), recorder.get()));
  }
  emit(options, runs);
  if (!options.scenario.fault_plan.empty()) {
    std::printf("# faults injected: %llu\n",
                static_cast<unsigned long long>(runs.front().faults_injected));
  }
  if (options.scenario.slo.enabled()) {
    const auto& breaches = runs.front().slo_breaches;
    std::printf("# slo breaches: %zu\n", breaches.size());
    for (const rfh::SloBreachRecord& b : breaches) {
      std::printf("#   epoch %u %s observed=%.4g target=%.4g "
                  "burn=%.2f/%.2f\n",
                  b.epoch, rfh::slo_objective_name(b.objective),
                  b.observed, b.target, b.burn_short, b.burn_long);
    }
  }
  if (sink != nullptr && !options.quiet) {
    std::fprintf(stderr, "# trace written to %s\n", options.trace_out.c_str());
  }
  if (recorder != nullptr) {
    std::ofstream blackbox_file(options.blackbox_out);
    if (!blackbox_file) {
      std::fprintf(stderr, "rfh_cli: cannot open '%s' for writing\n",
                   options.blackbox_out.c_str());
      return 2;
    }
    recorder->dump_jsonl(blackbox_file);
    if (!options.quiet) {
      std::fprintf(stderr, "# flight record written to %s (%llu events, "
                   "%llu sampled)\n",
                   options.blackbox_out.c_str(),
                   static_cast<unsigned long long>(recorder->total_recorded()),
                   static_cast<unsigned long long>(recorder->sampled()));
    }
  }

  if (registry != nullptr) {
    // --metrics-out=- dumps to stdout (after the CSV/summary lines).
    std::ofstream metrics_file;
    if (options.metrics_out != "-") {
      metrics_file.open(options.metrics_out);
      if (!metrics_file) {
        std::fprintf(stderr, "rfh_cli: cannot open '%s' for writing\n",
                     options.metrics_out.c_str());
        return 2;
      }
    }
    std::ostream& out =
        options.metrics_out == "-" ? std::cout : metrics_file;
    if (options.metrics_format == rfh::MetricsFormat::kJson) {
      registry->write_json(out);
    } else {
      registry->write_prometheus(out);
    }
    if (!options.quiet && options.metrics_out != "-") {
      std::fprintf(stderr, "# metrics written to %s\n",
                   options.metrics_out.c_str());
    }
  }
  if (profiler != nullptr) {
    // "# " prefix keeps the table ignorable by CSV consumers of stdout.
    profiler->write_table(std::cout, "# ");
  }
  if (checker != nullptr) {
    std::printf("# %s\n", checker->summary().c_str());
    if (!checker->violations().empty()) return 1;
  }
  return 0;
}
