file(REMOVE_RECURSE
  "CMakeFiles/rfh_cli.dir/rfh_cli.cpp.o"
  "CMakeFiles/rfh_cli.dir/rfh_cli.cpp.o.d"
  "rfh_cli"
  "rfh_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfh_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
