// Simulation configuration (paper Table I).
//
// Field-by-field mapping to Table I:
//   partitions = 64, partition size 512 KB, failure rate 0.1, minimum
//   availability 0.8, alpha 0.2, beta 2, gamma 1.5, delta 0.2, mu 1,
//   storage limit phi 70 %. Server-level capacities (10 GB storage,
//   300 MB/epoch replication, 100 MB/epoch migration) live in
//   topology::ServerSpec / WorldOptions.
#pragma once

#include <cstdint>

#include "common/units.h"

namespace rfh {

struct SimConfig {
  std::uint32_t partitions = 64;
  Bytes partition_size = kib(512);

  /// Per-copy failure probability f in the availability window.
  double failure_rate = 0.1;
  /// Target availability A_expect (Eq. 14).
  double min_availability = 0.8;

  /// Smoothing factor (Eqs. 10-11).
  double alpha = 0.2;
  /// Eq. 10 as printed weights *history* by alpha (so alpha = 0.2 adapts
  /// fast); the surrounding prose ("take historical data into account")
  /// suggests the opposite orientation may have been intended. True =
  /// as printed; false = alpha weights the new sample
  /// (v = (1-alpha)*v_old + alpha*x). bench_ablation_thresholds measures
  /// both.
  bool alpha_weights_history = true;
  /// Holder overload threshold (Eq. 12): tr_ii >= beta * q_bar_i.
  double beta = 2.0;
  /// Traffic-hub threshold (Eq. 13): tr_ik >= gamma * q_bar_i.
  double gamma = 1.5;
  /// Suicide threshold (Eq. 15): tr_ik <= delta * q_bar_i.
  double delta = 0.2;
  /// Migration benefit threshold (Eq. 16): tr_j - tr_k >= mu * tr_bar_i.
  double mu = 1.0;
  /// Storage occupancy upper limit phi (Eq. 19).
  double storage_limit = 0.7;

  /// Safety cap on copies per partition (the adaptive loop stops well
  /// below this; the cap only guards against runaway configurations).
  std::uint32_t max_replicas_per_partition = 16;

  /// Ring tokens per physical server (virtual-node granularity).
  std::uint32_t ring_tokens_per_server = 16;

  /// Memoize computed routes per (partition, requester) between placement
  /// mutations (see DESIGN.md §11). Purely a speed knob: outputs are
  /// bit-identical either way, which tests/determinism_test.cpp enforces.
  bool route_memo = true;

  /// SLA target: the paper's motivating requirement is a response within
  /// 300 ms for 99.9 % of requests.
  double sla_target_ms = 300.0;
  /// Latency charged to a query the system could not serve this epoch
  /// (every copy saturated): it waits out the overload.
  double blocked_penalty_ms = 1000.0;

  std::uint64_t seed = 42;
};

}  // namespace rfh
