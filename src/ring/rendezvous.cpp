#include "ring/rendezvous.h"

#include "common/assert.h"
#include "ring/hash.h"

namespace rfh {

ServerId rendezvous_pick(std::uint64_t key,
                         std::span<const ServerId> candidates) {
  RFH_ASSERT_MSG(!candidates.empty(), "no candidates");
  ServerId best = candidates.front();
  std::uint64_t best_weight = 0;
  bool first = true;
  for (const ServerId candidate : candidates) {
    const std::uint64_t weight =
        hash_combine(key, hash64(std::uint64_t{candidate.value()}));
    if (first || weight > best_weight ||
        (weight == best_weight && candidate < best)) {
      best = candidate;
      best_weight = weight;
      first = false;
    }
  }
  return best;
}

}  // namespace rfh
