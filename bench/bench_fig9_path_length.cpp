// Fig. 9 — lookup path length (mean hops per query), per epoch.
//   (a) random query;  (b) flash crowd.
//
// Paper shape: every curve drops sharply at the start as the replica
// build-out raises hit chances; owner-oriented stays longest; the
// request-oriented scheme is shortest inside its home stage; RFH is
// near-best overall with a brief spike when the traffic hubs move
// (after epoch ~200 under flash crowd).
#include <iostream>

#include "bench_args.h"
#include "exec/sweep.h"
#include "harness/report.h"

int main(int argc, char** argv) {
  const unsigned jobs = rfh::bench_jobs(argc, argv);
  {
    const rfh::Scenario s = rfh::Scenario::paper_random_query();
    const rfh::ComparativeResult r = rfh::run_comparison_pooled(s, {}, jobs);
    rfh::print_figure(std::cout, "Fig 9(a): lookup path length, random query",
                      r, &rfh::EpochMetrics::path_length);
  }
  {
    const rfh::Scenario s = rfh::Scenario::paper_flash_crowd();
    const rfh::ComparativeResult r = rfh::run_comparison_pooled(s, {}, jobs);
    rfh::print_figure(std::cout, "Fig 9(b): lookup path length, flash crowd",
                      r, &rfh::EpochMetrics::path_length);
  }
  return 0;
}
