// Robustness under combined and extreme regimes: simultaneous server,
// datacenter and link failures; degenerate world shapes; storage and
// vnode-cap pressure; long-run stability.
#include <gtest/gtest.h>

#include <memory>

#include "common/log.h"
#include "core/rfh_policy.h"
#include "harness/runner.h"
#include "test_util.h"

namespace rfh {
namespace {

TEST(Robustness, CombinedServerLinkAndDatacenterFailures) {
  SimConfig config;
  config.partitions = 16;
  WorkloadParams params;
  params.partitions = 16;
  params.datacenters = 10;
  auto sim = std::make_unique<Simulation>(
      build_paper_world(test::uniform_world_options()), config,
      std::make_unique<UniformWorkload>(params),
      std::make_unique<RfhPolicy>());
  sim->run(40);

  // Pile on: a link failure, a datacenter disaster, and random server
  // deaths, interleaved with stepping.
  sim->fail_link(sim->world().by_letter('I'), sim->world().by_letter('D'));
  sim->run(10);
  sim->fail_datacenter(sim->world().by_letter('C'));
  sim->run(10);
  sim->fail_random_servers(10);
  sim->run(40);
  sim->cluster().check_invariants();

  // Then heal everything and confirm the system re-absorbs it.
  std::vector<ServerId> dead;
  for (const Server& s : sim->topology().servers()) {
    if (!sim->cluster().alive(s.id)) dead.push_back(s.id);
  }
  sim->recover_servers(dead);
  sim->restore_link(sim->world().by_letter('I'), sim->world().by_letter('D'));
  sim->run(40);
  sim->cluster().check_invariants();
  EXPECT_EQ(sim->cluster().live_server_count(), 100u);
  for (std::uint32_t p = 0; p < config.partitions; ++p) {
    EXPECT_GE(sim->cluster().replica_count(PartitionId{p}), 2u);
  }
}

TEST(Robustness, SingleDatacenterWorldStillWorks) {
  // All routing degenerates to local stages; RFH must fall back to
  // same-datacenter relief.
  World world = build_synthetic_world(1, test::uniform_world_options());
  SimConfig config;
  config.partitions = 4;
  WorkloadParams params;
  params.partitions = 4;
  params.datacenters = 1;
  params.mean_queries_per_epoch = 40.0;
  auto sim = std::make_unique<Simulation>(
      std::move(world), config, std::make_unique<UniformWorkload>(params),
      std::make_unique<RfhPolicy>());
  for (int e = 0; e < 40; ++e) sim->step();
  sim->cluster().check_invariants();
  // Demand 40/epoch against 10 servers x capacity 2: the single
  // datacenter saturates, but copies must have grown to absorb it.
  EXPECT_GT(sim->cluster().total_replicas(), 8u);
}

TEST(Robustness, StoragePressureBindsAndIsRespected) {
  // Disks sized for ~2 copies under the 70% rule: the cluster must stay
  // within the limit everywhere and keep running (with dropped actions).
  SimConfig config;
  config.partitions = 32;
  WorldOptions options = test::uniform_world_options(
      /*capacity=*/2.0, /*channels=*/4,
      /*storage=*/Bytes{3} * SimConfig{}.partition_size);
  WorkloadParams params;
  params.partitions = 32;
  params.datacenters = 10;
  auto sim = std::make_unique<Simulation>(
      build_paper_world(options), config,
      std::make_unique<UniformWorkload>(params),
      std::make_unique<RfhPolicy>());
  for (int e = 0; e < 60; ++e) sim->step();
  for (const Server& s : sim->topology().servers()) {
    EXPECT_LE(sim->cluster().copies_on(s.id), 2u) << "phi limit violated";
  }
  sim->cluster().check_invariants();
}

TEST(Robustness, VnodeCapBindsAndIsRespected) {
  SimConfig config;
  config.partitions = 64;
  WorldOptions options = test::uniform_world_options();
  options.max_vnodes = 1;  // one copy per server, cluster-wide cap 100
  WorkloadParams params;
  params.partitions = 64;
  params.datacenters = 10;
  auto sim = std::make_unique<Simulation>(
      build_paper_world(options), config,
      std::make_unique<UniformWorkload>(params),
      std::make_unique<RfhPolicy>());
  for (int e = 0; e < 60; ++e) sim->step();
  EXPECT_LE(sim->cluster().total_replicas(), 100u);
  for (const Server& s : sim->topology().servers()) {
    EXPECT_LE(sim->cluster().copies_on(s.id), 1u);
  }
}

TEST(Robustness, LongRunStaysBoundedAndInvariant) {
  Scenario scenario = Scenario::paper_random_query();
  scenario.epochs = 400;
  const PolicyRun run = run_policy(scenario, PolicyKind::kRfh);
  // Census bounded between floor and cap for the whole tail.
  for (std::size_t e = 50; e < run.series.size(); ++e) {
    EXPECT_GE(run.series[e].avg_replicas_per_partition, 1.9);
    EXPECT_LE(run.series[e].avg_replicas_per_partition, 16.0);
  }
  // No runaway cumulative churn: the last 100 epochs replicate at a far
  // lower rate than the first 100 (build-out vs steady state).
  const double early = run.series[99].replication_cost_total;
  const double late = run.series.back().replication_cost_total -
                      run.series[run.series.size() - 100].replication_cost_total;
  EXPECT_LT(late, early);
}

TEST(Robustness, ManyPartitionsFewServers) {
  // 256 partitions on the 100-server world: several vnodes per server.
  SimConfig config;
  config.partitions = 256;
  WorkloadParams params;
  params.partitions = 256;
  params.datacenters = 10;
  auto sim = std::make_unique<Simulation>(
      build_paper_world(test::uniform_world_options()), config,
      std::make_unique<UniformWorkload>(params),
      std::make_unique<RfhPolicy>());
  for (int e = 0; e < 30; ++e) sim->step();
  sim->cluster().check_invariants();
  EXPECT_GE(sim->cluster().total_replicas(), 256u);
}

TEST(Robustness, ZeroDemandIsAValidSteadyState) {
  // No queries at all: the floor is established and nothing else happens.
  SimConfig config;
  config.partitions = 8;
  auto sim = test::make_fixed_sim({}, std::make_unique<RfhPolicy>(), config);
  for (int e = 0; e < 30; ++e) sim->step();
  const std::uint32_t after_floor = sim->cluster().total_replicas();
  std::uint32_t actions = 0;
  for (int e = 0; e < 30; ++e) {
    const EpochReport r = sim->step();
    actions += r.replications + r.migrations + r.suicides;
  }
  EXPECT_EQ(actions, 0u);
  EXPECT_EQ(sim->cluster().total_replicas(), after_floor);
}

TEST(Logging, LevelFilterWorks) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  log(LogLevel::kDebug, "should be suppressed %d", 1);  // must not crash
  log(LogLevel::kError, "visible %s", "message");
  set_log_level(before);
}

}  // namespace
}  // namespace rfh
