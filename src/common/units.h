// Byte / bandwidth units used throughout the simulator.
//
// The Table I defaults are expressed per epoch (10 s): replication
// bandwidth 300 MB/epoch, migration bandwidth 100 MB/epoch, partition size
// 512 KB, server storage 10 GB.
#pragma once

#include <cstdint>

namespace rfh {

/// Storage sizes in bytes.
using Bytes = std::uint64_t;

/// Bandwidth in bytes per epoch (the simulator's unit of time).
using BytesPerEpoch = std::uint64_t;

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

constexpr Bytes kib(std::uint64_t n) noexcept { return n * kKiB; }
constexpr Bytes mib(std::uint64_t n) noexcept { return n * kMiB; }
constexpr Bytes gib(std::uint64_t n) noexcept { return n * kGiB; }

/// Epoch index. Epoch 0 is the first simulated interval.
using Epoch = std::uint32_t;

}  // namespace rfh
