# Empty compiler generated dependencies file for shortest_paths_test.
# This may be replaced when dependencies are built.
