// Eventual-consistency tracking (the paper's declared future work).
//
// "Note that maintaining data consistency is not the focus of this work.
//  ... As a future work, we will ... plan to focus on the research of
//  consistency maintenance."
//
// This module adds the measurement side of that future work: every
// partition carries a monotonically increasing version at its primary
// (each accepted write bumps it); updates propagate to replicas
// asynchronously, one datacenter hop per epoch along the primary's
// shortest paths (anti-entropy at epoch cadence). From this we derive the
// consistency/durability costs of each placement policy:
//
//  * replica lag           — versions a copy is behind its primary;
//  * stale-read fraction   — queries served by a lagging copy;
//  * lost writes           — versions discarded when a failover promotes
//                            a lagging replica.
//
// The tracker is deliberately observational: it never changes routing or
// placement, so every Section III experiment is unaffected when enabled.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/ids.h"
#include "net/shortest_paths.h"
#include "sim/cluster.h"
#include "sim/traffic.h"
#include "topology/topology.h"

namespace rfh {

class ConsistencyTracker {
 public:
  /// `history` bounds how many epochs of primary versions are retained;
  /// it must exceed the largest propagation delay (datacenter-graph
  /// diameter in hops). Copies farther than that simply see the oldest
  /// retained version until they catch up.
  ConsistencyTracker(std::uint32_t partitions, std::uint32_t servers,
                     std::uint32_t history = 16);

  /// Fold in one epoch: `writes[p]` new versions are accepted at p's
  /// primary, then every replica advances to the primary version that is
  /// `delay` epochs old, where delay = max(1, DC hops to the primary).
  void advance(const ClusterState& cluster, const Topology& topology,
               const ShortestPaths& paths, std::span<const double> writes);

  /// Re-anchor p's version chain on `new_primary` after a failover.
  /// Returns the number of versions lost (writes the survivor had not yet
  /// received). The partition's version becomes the survivor's.
  double on_promote(PartitionId p, ServerId new_primary);

  /// A server died: its copy states are forgotten.
  void on_server_failed(ServerId s);

  [[nodiscard]] double primary_version(PartitionId p) const;
  [[nodiscard]] double replica_version(PartitionId p, ServerId s) const;
  /// Versions the copy on s is behind the primary (0 for the primary).
  [[nodiscard]] double lag(PartitionId p, ServerId s) const;

  /// Mean lag over all non-primary copies (0 when there are none).
  [[nodiscard]] double mean_replica_lag(const ClusterState& cluster) const;
  /// Fraction of served queries answered by a copy lagging by more than
  /// `tolerance` versions (1e-9 = any lag). 0 when nothing was served.
  [[nodiscard]] double stale_read_fraction(const EpochTraffic& traffic,
                                           const ClusterState& cluster,
                                           double tolerance = 1e-9) const;

  /// Cumulative versions lost to failovers since construction.
  [[nodiscard]] double lost_writes() const noexcept { return lost_writes_; }
  [[nodiscard]] Epoch epoch() const noexcept { return epoch_; }

 private:
  [[nodiscard]] std::size_t index(PartitionId p, ServerId s) const;
  /// Primary version of p as of `age` epochs ago (clamped to history).
  [[nodiscard]] double historic_version(PartitionId p,
                                        std::uint32_t age) const;

  std::uint32_t partitions_;
  std::uint32_t servers_;
  std::uint32_t history_;
  Epoch epoch_ = 0;
  std::vector<double> version_;  // [p][s] version held by the copy on s
  // Ring buffer of primary versions: [p][epoch % history].
  std::vector<double> primary_history_;
  std::vector<double> primary_now_;  // [p]
  double lost_writes_ = 0.0;
};

}  // namespace rfh
