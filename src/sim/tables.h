// Flat struct-of-arrays tables backing the mutable cluster state.
//
// The seed engine kept replica placement as vector<vector<Replica>> — a
// pointer chase per partition that fragments the heap at 100k servers and
// defeats the sharded epoch passes (DESIGN.md §15), which want each
// shard's partitions contiguous in memory. These tables store the same
// state as parallel arrays:
//
//  * PartitionTable — one strided slab of Replica slots (partition p's
//    copies live at [p*stride, p*stride+count[p])), plus a per-partition
//    count column. Insertion order and shift-on-remove semantics are
//    defined to match the nested-vector seed exactly, so every consumer
//    that iterates replicas_of() sees the same sequence; the property
//    test pins this against a std::map reference under randomized churn.
//  * ServerTable — per-server liveness, copy-count and storage columns
//    with the live-server aggregate maintained incrementally.
//
// Neither table knows about the ring, the topology or Eq. 19 — ClusterState
// composes them and keeps the cross-cutting invariants.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/ids.h"
#include "common/units.h"

namespace rfh {

struct Replica {
  ServerId server;
  bool primary = false;
};

class PartitionTable {
 public:
  explicit PartitionTable(std::uint32_t partitions,
                          std::uint32_t initial_stride = 4);

  /// Append a copy of `p` on `s` (asserts it is not already hosted).
  void add(PartitionId p, ServerId s, bool primary);
  /// Remove the copy of `p` on `s`, shifting later slots left — the same
  /// order-preserving erase the nested-vector seed performed.
  void remove(PartitionId p, ServerId s);
  /// Make the copy on `s` the sole primary of `p` (asserts it exists).
  void set_primary(PartitionId p, ServerId s);

  [[nodiscard]] ServerId primary_of(PartitionId p) const;
  [[nodiscard]] std::span<const Replica> replicas(PartitionId p) const;
  [[nodiscard]] bool has(PartitionId p, ServerId s) const;
  [[nodiscard]] std::uint32_t count(PartitionId p) const;
  [[nodiscard]] std::uint32_t partitions() const noexcept {
    return partitions_;
  }
  /// Slots per partition; grows (doubling, slab rebuild) when any
  /// partition outgrows it.
  [[nodiscard]] std::uint32_t stride() const noexcept { return stride_; }
  /// Total copies across all partitions.
  [[nodiscard]] std::uint32_t total() const noexcept { return total_; }

 private:
  void grow_stride();

  std::vector<Replica> slots_;  // partitions_ * stride_
  std::vector<std::uint32_t> count_;
  std::uint32_t partitions_;
  std::uint32_t stride_;
  std::uint32_t total_ = 0;
};

class ServerTable {
 public:
  /// All servers start dead with empty disks; bring_all_up() is the bulk
  /// construction path.
  explicit ServerTable(std::uint32_t servers);

  /// Mark every server alive in one pass (no per-server rebuilds).
  void bring_all_up();

  [[nodiscard]] bool alive(ServerId s) const;
  /// Flip liveness; asserts the transition is a real change.
  void set_alive(ServerId s, bool up);
  [[nodiscard]] std::uint32_t live_count() const noexcept {
    return live_count_;
  }

  [[nodiscard]] Bytes storage_used(ServerId s) const;
  void add_storage(ServerId s, Bytes bytes);
  void sub_storage(ServerId s, Bytes bytes);

  [[nodiscard]] std::uint32_t copies(ServerId s) const;
  void inc_copies(ServerId s);
  void dec_copies(ServerId s);

  [[nodiscard]] std::uint32_t servers() const noexcept {
    return static_cast<std::uint32_t>(alive_.size());
  }

 private:
  std::vector<std::uint8_t> alive_;
  std::vector<Bytes> storage_used_;
  std::vector<std::uint32_t> copies_on_;
  std::uint32_t live_count_ = 0;
};

}  // namespace rfh
