#include "sim/cluster.h"

#include <algorithm>

#include "common/assert.h"

namespace rfh {

ClusterState::ClusterState(const Topology& topology, const SimConfig& config)
    : topology_(&topology),
      config_(&config),
      replicas_(config.partitions),
      storage_used_(topology.server_count(), 0),
      copies_on_(topology.server_count(), 0),
      alive_(topology.server_count(), false),
      live_by_dc_(topology.datacenter_count()),
      ring_(config.ring_tokens_per_server) {
  for (const Server& s : topology.servers()) {
    revive_server(s.id);
  }
}

void ClusterState::add_replica(PartitionId p, ServerId s, bool primary) {
  RFH_ASSERT(p.value() < replicas_.size());
  RFH_ASSERT_MSG(alive(s), "cannot place a copy on a dead server");
  RFH_ASSERT_MSG(!has_replica(p, s), "server already hosts this partition");
  if (primary) {
    RFH_ASSERT_MSG(!primary_of(p).valid(), "partition already has a primary");
  }
  replicas_[p.value()].push_back(Replica{s, primary});
  storage_used_[s.value()] += config_->partition_size;
  copies_on_[s.value()] += 1;
  total_replicas_ += 1;
}

void ClusterState::remove_replica(PartitionId p, ServerId s) {
  RFH_ASSERT(p.value() < replicas_.size());
  auto& list = replicas_[p.value()];
  const auto it = std::find_if(list.begin(), list.end(),
                               [s](const Replica& r) { return r.server == s; });
  RFH_ASSERT_MSG(it != list.end(), "no such replica");
  list.erase(it);
  RFH_ASSERT(storage_used_[s.value()] >= config_->partition_size);
  storage_used_[s.value()] -= config_->partition_size;
  RFH_ASSERT(copies_on_[s.value()] > 0);
  copies_on_[s.value()] -= 1;
  RFH_ASSERT(total_replicas_ > 0);
  total_replicas_ -= 1;
}

void ClusterState::set_primary(PartitionId p, ServerId s) {
  RFH_ASSERT(p.value() < replicas_.size());
  bool found = false;
  for (Replica& r : replicas_[p.value()]) {
    if (r.server == s) {
      r.primary = true;
      found = true;
    } else {
      r.primary = false;
    }
  }
  RFH_ASSERT_MSG(found, "set_primary: server hosts no copy");
}

ServerId ClusterState::primary_of(PartitionId p) const {
  RFH_ASSERT(p.value() < replicas_.size());
  for (const Replica& r : replicas_[p.value()]) {
    if (r.primary) return r.server;
  }
  return ServerId::invalid();
}

std::span<const Replica> ClusterState::replicas_of(PartitionId p) const {
  RFH_ASSERT(p.value() < replicas_.size());
  return replicas_[p.value()];
}

bool ClusterState::has_replica(PartitionId p, ServerId s) const {
  RFH_ASSERT(p.value() < replicas_.size());
  return std::any_of(replicas_[p.value()].begin(), replicas_[p.value()].end(),
                     [s](const Replica& r) { return r.server == s; });
}

std::uint32_t ClusterState::replica_count(PartitionId p) const {
  RFH_ASSERT(p.value() < replicas_.size());
  return static_cast<std::uint32_t>(replicas_[p.value()].size());
}

std::vector<ServerId> ClusterState::hosts_in_dc(PartitionId p,
                                                DatacenterId dc) const {
  std::vector<ServerId> non_primary;
  std::vector<ServerId> primary;
  for (const Replica& r : replicas_of(p)) {
    if (topology_->server(r.server).datacenter == dc) {
      (r.primary ? primary : non_primary).push_back(r.server);
    }
  }
  std::sort(non_primary.begin(), non_primary.end());
  non_primary.insert(non_primary.end(), primary.begin(), primary.end());
  return non_primary;
}

Bytes ClusterState::storage_used(ServerId s) const {
  RFH_ASSERT(s.value() < storage_used_.size());
  return storage_used_[s.value()];
}

double ClusterState::storage_fraction(ServerId s) const {
  const Bytes cap = topology_->server(s).spec.storage_capacity;
  return cap == 0 ? 1.0
                  : static_cast<double>(storage_used(s)) /
                        static_cast<double>(cap);
}

std::uint32_t ClusterState::copies_on(ServerId s) const {
  RFH_ASSERT(s.value() < copies_on_.size());
  return copies_on_[s.value()];
}

bool ClusterState::can_accept(ServerId s, PartitionId p) const {
  if (!alive(s) || has_replica(p, s)) return false;
  const ServerSpec& spec = topology_->server(s).spec;
  if (copies_on(s) >= spec.max_vnodes) return false;
  const auto projected = static_cast<double>(storage_used(s) +
                                             config_->partition_size);
  return projected <=
         config_->storage_limit * static_cast<double>(spec.storage_capacity);
}

bool ClusterState::alive(ServerId s) const {
  RFH_ASSERT(s.value() < alive_.size());
  return alive_[s.value()];
}

std::vector<ClusterState::LostCopy> ClusterState::kill_server(ServerId s) {
  RFH_ASSERT_MSG(alive(s), "server already dead");
  std::vector<LostCopy> lost;
  for (std::uint32_t p = 0; p < replicas_.size(); ++p) {
    const PartitionId pid{p};
    if (has_replica(pid, s)) {
      const bool was_primary = primary_of(pid) == s;
      remove_replica(pid, s);
      lost.push_back(LostCopy{pid, was_primary});
    }
  }
  alive_[s.value()] = false;
  live_count_ -= 1;
  ring_.remove_server(s);
  rebuild_live_by_dc();
  return lost;
}

void ClusterState::revive_server(ServerId s) {
  RFH_ASSERT(s.value() < alive_.size());
  RFH_ASSERT_MSG(!alive_[s.value()], "server already alive");
  alive_[s.value()] = true;
  live_count_ += 1;
  ring_.add_server(s);
  rebuild_live_by_dc();
}

void ClusterState::rebuild_live_by_dc() {
  for (auto& list : live_by_dc_) list.clear();
  for (const Server& s : topology_->servers()) {
    if (alive_[s.id.value()]) {
      live_by_dc_[s.datacenter.value()].push_back(s.id);
    }
  }
}

void ClusterState::check_invariants() const {
  std::vector<Bytes> used(storage_used_.size(), 0);
  std::vector<std::uint32_t> copies(copies_on_.size(), 0);
  std::uint32_t total = 0;
  for (std::uint32_t p = 0; p < replicas_.size(); ++p) {
    std::uint32_t primaries = 0;
    for (const Replica& r : replicas_[p]) {
      RFH_ASSERT_MSG(alive(r.server), "copy on dead server");
      used[r.server.value()] += config_->partition_size;
      copies[r.server.value()] += 1;
      total += 1;
      if (r.primary) ++primaries;
    }
    RFH_ASSERT_MSG(primaries <= 1, "multiple primaries");
    if (!replicas_[p].empty()) {
      RFH_ASSERT_MSG(primaries == 1, "partition without a primary");
    }
  }
  RFH_ASSERT(total == total_replicas_);
  RFH_ASSERT(used == storage_used_);
  RFH_ASSERT(copies == copies_on_);
}

}  // namespace rfh
