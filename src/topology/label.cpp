#include "topology/label.h"

#include <array>

#include "common/assert.h"

namespace rfh {

std::string NodeLabel::to_string() const {
  std::string out;
  out.reserve(continent.size() + country.size() + datacenter.size() +
              room.size() + rack.size() + server.size() + 5);
  out += continent;
  out += '-';
  out += country;
  out += '-';
  out += datacenter;
  out += '-';
  out += room;
  out += '-';
  out += rack;
  out += '-';
  out += server;
  return out;
}

NodeLabel parse_label(std::string_view text) {
  std::array<std::string, 6> parts;
  std::size_t part = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '-') {
      RFH_ASSERT_MSG(part < parts.size(), "label has too many components");
      parts[part++] = std::string(text.substr(start, i - start));
      start = i + 1;
    }
  }
  RFH_ASSERT_MSG(part == parts.size(), "label has too few components");
  for (const auto& p : parts) {
    RFH_ASSERT_MSG(!p.empty(), "label component is empty");
  }
  return NodeLabel{parts[0], parts[1], parts[2], parts[3], parts[4], parts[5]};
}

std::uint32_t availability_level(const NodeLabel& a, const NodeLabel& b) noexcept {
  // Different datacenter (or anything coarser) is the highest level: the
  // continent/country components only refine *where* the datacenters are,
  // not the failure domain.
  if (a.continent != b.continent || a.country != b.country ||
      a.datacenter != b.datacenter) {
    return 5;
  }
  if (a.room != b.room) return 4;
  if (a.rack != b.rack) return 3;
  if (a.server != b.server) return 2;
  return 1;
}

}  // namespace rfh
