file(REMOVE_RECURSE
  "CMakeFiles/bench_sla_latency.dir/bench_sla_latency.cpp.o"
  "CMakeFiles/bench_sla_latency.dir/bench_sla_latency.cpp.o.d"
  "bench_sla_latency"
  "bench_sla_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sla_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
