// Extension experiment — scaling beyond the Table I world.
//
// The paper simulates 10 datacenters x 10 servers. This bench sweeps
// synthetic worlds from 5 to 80 datacenters (50 to 800 servers, demand
// scaled proportionally) and reports, for RFH: wall-clock per epoch and
// the steady-state quality metrics, demonstrating that the decision tree
// keeps working when the "virtual ring" is an order of magnitude larger.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "bench_args.h"
#include "bench_report.h"
#include "core/rfh_policy.h"
#include "metrics/collector.h"
#include "topology/world.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
  // Timing bench: ms/epoch is the measured output, so the world sweep
  // stays serial; --jobs is accepted for the uniform bench interface.
  (void)rfh::bench_jobs(argc, argv);
  rfh::BenchReport report("scalability");
  std::printf("# RFH scalability sweep (synthetic ring+chord worlds, "
              "demand 30 queries/epoch per datacenter)\n");
  std::printf("%6s %8s %11s %11s %10s %12s\n", "DCs", "servers",
              "partitions", "utilization", "unserved", "ms/epoch");

  for (const std::uint32_t n_dcs : {5u, 10u, 20u, 40u, 80u}) {
    rfh::World world = rfh::build_synthetic_world(n_dcs);
    const std::size_t servers = world.topology.server_count();

    rfh::SimConfig config;
    config.partitions = 8 * n_dcs;  // keep partitions/server constant
    rfh::WorkloadParams params;
    params.partitions = config.partitions;
    params.datacenters = n_dcs;
    params.mean_queries_per_epoch = 30.0 * n_dcs;

    rfh::Simulation sim(std::move(world), config,
                        std::make_unique<rfh::UniformWorkload>(params),
                        std::make_unique<rfh::RfhPolicy>());
    rfh::MetricsCollector collector;

    const rfh::Epoch warmup = 60;
    const rfh::Epoch measured = 60;
    sim.run(warmup);
    const auto start = std::chrono::steady_clock::now();
    {
      const auto stage =
          report.stage("measure_dcs_" + std::to_string(n_dcs));
      for (rfh::Epoch e = 0; e < measured; ++e) {
        collector.collect(sim, sim.step());
      }
    }
    const auto elapsed = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();

    const double utilization =
        collector.tail_mean(&rfh::EpochMetrics::utilization, 30);
    const double unserved =
        collector.tail_mean(&rfh::EpochMetrics::unserved_fraction, 30);
    std::printf("%6u %8zu %11u %11.3f %10.3f %12.3f\n", n_dcs, servers,
                config.partitions, utilization, unserved,
                elapsed / static_cast<double>(measured));
    const std::string suffix = "_dcs_" + std::to_string(n_dcs);
    report.add_metric("utilization" + suffix, utilization);
    report.add_metric("unserved_fraction" + suffix, unserved);
  }
  report.write_file();
  return 0;
}
