// Open-loop arrival-timestamp generation.
//
// The batch workload decides *how many* queries each (partition,
// requester-DC) pair issues per epoch; this generator decides *when*
// within the epoch they arrive. Timestamps are drawn from an
// inhomogeneous intensity — diurnal sine across epochs plus an optional
// flash-crowd burst inside each epoch — by warping uniform draws through
// a piecewise-linear inverse CDF over kIntensityBins bins.
//
// Determinism: each (epoch, DC) pair gets its own forked RNG stream
// (Rng(seed).fork(kStreamStreamTag).fork(epoch).fork(dc)), so the
// timestamps for a DC depend only on (seed, epoch, dc, n) — never on how
// many samples any other DC drew, which keeps --jobs=N sweeps
// byte-identical to serial (the same guarantee the engine's named stream
// tags provide, see sim/engine.h).
#pragma once

#include <cstddef>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "stream/config.h"

namespace rfh {

class ArrivalGenerator {
 public:
  /// Number of piecewise-linear bins in the intensity inverse CDF.
  static constexpr std::size_t kIntensityBins = 32;

  ArrivalGenerator(const StreamConfig& config, std::uint64_t seed) noexcept
      : config_(config), seed_(seed) {}

  /// `n` arrival timestamps in [0, config.epoch_ms), ascending, for
  /// queries issued from `dc` during `epoch`. Pure function of
  /// (seed, epoch, dc, n).
  [[nodiscard]] std::vector<double> timestamps(Epoch epoch, DatacenterId dc,
                                               std::size_t n) const;

  /// Relative arrival intensity at fraction `frac` in [0, 1) of `epoch`
  /// (floored at 0.05 so the inverse CDF stays strictly increasing).
  [[nodiscard]] double intensity(Epoch epoch, double frac) const noexcept;

  [[nodiscard]] const StreamConfig& config() const noexcept { return config_; }

 private:
  StreamConfig config_;
  std::uint64_t seed_;
};

}  // namespace rfh
