// Capacity planning with the library's analytic building blocks:
//  * Eq. 14 — how many copies does a target availability need at a given
//    per-copy failure probability?
//  * Eq. 18 — how many service channels keep the blocking probability
//    under an SLA at a given offered load (Erlang-B)?
//
//   $ ./capacity_planning
#include <cstdio>
#include <initializer_list>

#include "common/availability.h"
#include "common/erlang.h"

int main() {
  std::printf("Minimum copies for target availability (Eq. 14)\n");
  std::printf("%10s", "target");
  for (const double f : {0.05, 0.1, 0.2, 0.3}) {
    std::printf("   f=%.2f", f);
  }
  std::printf("\n");
  for (const double target : {0.8, 0.9, 0.99, 0.999, 0.99999}) {
    std::printf("%10.5f", target);
    for (const double f : {0.05, 0.1, 0.2, 0.3}) {
      std::printf("%9u", rfh::min_replicas(target, f));
    }
    std::printf("\n");
  }

  std::printf("\nErlang-B: channels needed for blocking <= 1%% (Eq. 18)\n");
  std::printf("%14s %10s %18s\n", "offered (Erl)", "channels",
              "achieved blocking");
  for (const double offered : {0.5, 1.0, 2.0, 5.0, 10.0, 20.0}) {
    const std::uint32_t c = rfh::erlang_b_channels_for(offered, 0.01);
    std::printf("%14.1f %10u %18.5f\n", offered, c, rfh::erlang_b(offered, c));
  }

  std::printf("\nErlang-C: waiting behaviour if queueing instead of "
              "blocking (same channel counts)\n");
  std::printf("%14s %10s %12s %22s\n", "offered (Erl)", "channels",
              "P(wait)", "mean wait (svc times)");
  for (const double offered : {0.5, 1.0, 2.0, 5.0, 10.0, 20.0}) {
    const std::uint32_t c = rfh::erlang_b_channels_for(offered, 0.01);
    std::printf("%14.1f %10u %12.5f %22.5f\n", offered, c,
                rfh::erlang_c(offered, c),
                rfh::erlang_c_mean_wait(offered, c));
  }
  return 0;
}
