#include "workload/trace.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

namespace rfh {
namespace {

QueryBatch batch(std::initializer_list<QueryFlow> flows) { return flows; }

TEST(TraceWorkload, ReplaysScheduleAndRunsDryAfterwards) {
  std::vector<QueryBatch> epochs;
  epochs.push_back(batch({QueryFlow{PartitionId{0}, DatacenterId{1}, 5.0}}));
  epochs.push_back({});
  epochs.push_back(batch({QueryFlow{PartitionId{2}, DatacenterId{3}, 7.5}}));
  TraceWorkload trace(std::move(epochs));
  Rng rng(1);

  const QueryBatch e0 = trace.generate(0, rng);
  ASSERT_EQ(e0.size(), 1u);
  EXPECT_EQ(e0[0].partition, PartitionId{0});
  EXPECT_TRUE(trace.generate(1, rng).empty());
  EXPECT_DOUBLE_EQ(trace.generate(2, rng)[0].queries, 7.5);
  EXPECT_TRUE(trace.generate(3, rng).empty());
  EXPECT_TRUE(trace.generate(1000, rng).empty());
}

TEST(TraceWorkload, CsvRoundTrip) {
  std::vector<QueryBatch> epochs(3);
  epochs[0] = batch({QueryFlow{PartitionId{0}, DatacenterId{1}, 5.0},
                     QueryFlow{PartitionId{1}, DatacenterId{2}, 0.25}});
  epochs[2] = batch({QueryFlow{PartitionId{7}, DatacenterId{9}, 12.0}});

  std::stringstream csv;
  write_trace_csv(csv, epochs);
  TraceWorkload replay = TraceWorkload::from_csv(csv);
  Rng rng(1);

  ASSERT_EQ(replay.epoch_count(), 3u);
  for (Epoch e = 0; e < 3; ++e) {
    const QueryBatch got = replay.generate(e, rng);
    ASSERT_EQ(got.size(), epochs[e].size()) << "epoch " << e;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].partition, epochs[e][i].partition);
      EXPECT_EQ(got[i].requester, epochs[e][i].requester);
      EXPECT_DOUBLE_EQ(got[i].queries, epochs[e][i].queries);
    }
  }
}

TEST(TraceWorkload, ParserSkipsHeaderCommentsAndBlanks) {
  std::stringstream csv(
      "epoch,partition,requester,queries\n"
      "# a comment\n"
      "\n"
      "0,1,2,3.5\n"
      "  \n"
      "4,0,0,1\n");
  TraceWorkload trace = TraceWorkload::from_csv(csv);
  Rng rng(1);
  ASSERT_EQ(trace.epoch_count(), 5u);  // sparse epochs filled with empties
  EXPECT_EQ(trace.generate(0, rng).size(), 1u);
  EXPECT_TRUE(trace.generate(2, rng).empty());
  EXPECT_DOUBLE_EQ(trace.generate(4, rng)[0].queries, 1.0);
}

TEST(TraceWorkloadDeath, MalformedRows) {
  {
    std::stringstream csv("0,1,2\n");
    EXPECT_DEATH(TraceWorkload::from_csv(csv), "");
  }
  {
    std::stringstream csv("0,1,2,3,4\n");
    EXPECT_DEATH(TraceWorkload::from_csv(csv), "");
  }
  {
    std::stringstream csv("zero,1,2,3\n");
    EXPECT_DEATH(TraceWorkload::from_csv(csv), "");
  }
  {
    std::stringstream csv("0,1,2,-5\n");
    EXPECT_DEATH(TraceWorkload::from_csv(csv), "");
  }
}

TEST(RecordingWorkload, CapturesExactlyWhatTheInnerEmits) {
  WorkloadParams params;
  params.partitions = 8;
  params.datacenters = 10;
  RecordingWorkload recording(std::make_unique<UniformWorkload>(params));
  Rng rng(55);
  std::vector<QueryBatch> emitted;
  for (Epoch e = 0; e < 5; ++e) {
    emitted.push_back(recording.generate(e, rng));
  }
  ASSERT_EQ(recording.recorded().size(), 5u);
  for (Epoch e = 0; e < 5; ++e) {
    ASSERT_EQ(recording.recorded()[e].size(), emitted[e].size());
    for (std::size_t i = 0; i < emitted[e].size(); ++i) {
      EXPECT_DOUBLE_EQ(recording.recorded()[e][i].queries,
                       emitted[e][i].queries);
    }
  }
}

TEST(RecordingWorkload, RoundTripThroughCsvReproducesTheRun) {
  // Record a stochastic run, serialize, replay: identical demand.
  WorkloadParams params;
  params.partitions = 4;
  params.datacenters = 10;
  RecordingWorkload recording(std::make_unique<UniformWorkload>(params));
  Rng rng(56);
  for (Epoch e = 0; e < 4; ++e) (void)recording.generate(e, rng);

  std::stringstream csv;
  write_trace_csv(csv, recording.recorded());
  TraceWorkload replay = TraceWorkload::from_csv(csv);
  Rng rng2(999);  // replay ignores the rng
  for (Epoch e = 0; e < 4; ++e) {
    const QueryBatch a = recording.recorded()[e];
    const QueryBatch b = replay.generate(e, rng2);
    ASSERT_EQ(a.size(), b.size());
    double total_a = 0.0;
    double total_b = 0.0;
    for (const QueryFlow& f : a) total_a += f.queries;
    for (const QueryFlow& f : b) total_b += f.queries;
    EXPECT_DOUBLE_EQ(total_a, total_b);
  }
}

}  // namespace
}  // namespace rfh
