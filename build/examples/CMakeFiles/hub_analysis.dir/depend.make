# Empty dependencies file for hub_analysis.
# This may be replaced when dependencies are built.
