// Flash crowd demo (the paper's headline scenario, Section II-F).
//
// Runs all four policies through the 4-stage flash-crowd schedule
// (80% of queries from H,I,J then A,B,C then E,F,G then uniform) and
// prints stage-by-stage replica utilization — reproducing in miniature
// the collapse of the request-oriented scheme at each stage switch and
// RFH's quick re-adaptation (paper Fig. 3(b)).
//
//   $ ./flash_crowd
#include <cstdio>

#include "harness/runner.h"
#include "harness/scenario.h"

int main() {
  const rfh::Scenario scenario = rfh::Scenario::paper_flash_crowd();
  const rfh::ComparativeResult result = rfh::run_comparison(scenario);

  const rfh::Epoch stage_len = scenario.epochs / 4;
  std::printf("stage (epochs)     ");
  for (const rfh::PolicyRun& run : result.runs) {
    std::printf("%10s", std::string(rfh::policy_name(run.kind)).c_str());
  }
  std::printf("   <- mean replica utilization\n");

  const char* stage_names[4] = {"1: hot H,I,J", "2: hot A,B,C",
                                "3: hot E,F,G", "4: uniform  "};
  for (int stage = 0; stage < 4; ++stage) {
    const std::size_t lo = static_cast<std::size_t>(stage) * stage_len;
    const std::size_t hi = lo + stage_len;
    std::printf("%s (%3zu-%3zu)", stage_names[stage], lo, hi - 1);
    for (const rfh::PolicyRun& run : result.runs) {
      double sum = 0.0;
      for (std::size_t e = lo; e < hi && e < run.series.size(); ++e) {
        sum += run.series[e].utilization;
      }
      std::printf("%10.3f", sum / static_cast<double>(stage_len));
    }
    std::printf("\n");
  }

  std::printf("\nfinal replica count / cumulative migration cost:\n");
  for (const rfh::PolicyRun& run : result.runs) {
    const rfh::EpochMetrics& last = run.series.back();
    std::printf("  %-8s %4u replicas, migration cost %8.1f\n",
                std::string(rfh::policy_name(run.kind)).c_str(),
                last.total_replicas, last.migration_cost_total);
  }
  return 0;
}
