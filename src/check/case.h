// A CheckCase is one self-contained differential-test scenario: the
// world shape, the Table I coefficients, the workload and an optional
// fault plan, all keyed by a single seed. Cases round-trip through a
// small flat-JSON form ("rfh-check-case/1") so a failing fuzz input can
// be shrunk, committed under tests/data/corpus/, and replayed later with
// `rfh_check --replay <case.json>`.
//
// The JSON codec here is deliberately minimal: one flat object of
// string / number / bool fields, doubles printed with %.17g and parsed
// with from_chars so serialize(parse(x)) is bit-exact. The fault plan is
// embedded as its canonical text spec (fault/plan.h) in a JSON string.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "fault/plan.h"
#include "harness/scenario.h"

namespace rfh {

struct CheckCase {
  std::uint64_t seed = 42;

  // --- world shape -------------------------------------------------------
  std::uint32_t rooms_per_datacenter = 1;
  std::uint32_t racks_per_room = 2;
  std::uint32_t servers_per_rack = 5;

  // --- run shape ---------------------------------------------------------
  std::uint32_t partitions = 16;
  Epoch epochs = 24;
  WorkloadKind workload = WorkloadKind::kUniform;
  double zipf = 0.8;

  // --- Table I coefficients ---------------------------------------------
  double alpha = 0.2;
  bool alpha_weights_history = true;
  double beta = 2.0;
  double gamma = 1.5;
  double delta = 0.2;
  double mu = 1.0;
  double phi = 0.7;
  double failure_rate = 0.1;
  double min_availability = 0.8;

  // --- redundancy --------------------------------------------------------
  RedundancyMode redundancy = RedundancyMode::kReplica;
  std::uint32_t ec_k = 4;
  std::uint32_t ec_m = 2;

  // --- chaos -------------------------------------------------------------
  FaultPlan fault_plan;

  /// The equivalent harness scenario (world seeded from `seed` too, like
  /// the CLI's --seed flag).
  [[nodiscard]] Scenario to_scenario() const;

  /// Canonical flat-JSON form; from_json(to_json()) == *this.
  [[nodiscard]] std::string to_json() const;

  struct ParseResult;  // defined below (holds a CheckCase by value)

  /// Parse the JSON form; never aborts — malformed input yields ok=false.
  [[nodiscard]] static ParseResult from_json(std::string_view text);

  /// File I/O convenience wrappers; load() reports read/parse errors via
  /// ParseResult, save() returns false on write failure.
  [[nodiscard]] static ParseResult load(const std::string& path);
  [[nodiscard]] bool save(const std::string& path) const;

  friend bool operator==(const CheckCase&, const CheckCase&) = default;
};

struct CheckCase::ParseResult {
  bool ok = false;
  std::string error;  // set when !ok
  CheckCase value;
};

/// Stable lower-case name used in the JSON "workload" field.
[[nodiscard]] const char* workload_kind_name(WorkloadKind kind) noexcept;

}  // namespace rfh
