#include "routing/router.h"

#include "common/assert.h"
#include "ring/hash.h"
#include "ring/rendezvous.h"
#include "ring/ring.h"
#include "telemetry/registry.h"

namespace rfh {

Router::Router(const Topology& topology, const ShortestPaths& paths)
    : topology_(&topology), paths_(&paths) {
  RFH_ASSERT(topology.datacenter_count() == paths.size());
}

void Router::set_telemetry(MetricRegistry* registry) {
  if (registry == nullptr) {
    routes_ = nullptr;
    stages_ = nullptr;
    dead_skips_ = nullptr;
    return;
  }
  routes_ = &registry->counter("rfh_router_routes_total", {},
                               "Routes computed");
  stages_ = &registry->counter("rfh_router_route_stages_total", {},
                               "Datacenter stages across all routes");
  dead_skips_ = &registry->counter(
      "rfh_router_dead_dc_skips_total", {},
      "Transit datacenters skipped because no server was alive");
}

ServerId Router::relay_for(PartitionId partition, DatacenterId dc,
                           std::span<const ServerId> live_servers) {
  const std::uint64_t key = hash_combine(HashRing::partition_key(partition),
                                         hash64(std::uint64_t{dc.value()}));
  return rendezvous_pick(key, live_servers);
}

Route Router::route(PartitionId partition, DatacenterId requester,
                    ServerId holder,
                    std::span<const std::vector<ServerId>> live_by_dc) const {
  RFH_ASSERT(holder.valid());
  const DatacenterId holder_dc = topology_->server(holder).datacenter;
  const std::vector<DatacenterId> dc_path =
      paths_->path(requester, holder_dc);

  Route route;
  route.holder = holder;
  route.stages.reserve(dc_path.size());

  std::uint32_t hops = 1;  // client -> requester-DC relay
  double latency = kHopLatencyMs;
  for (const DatacenterId dc : dc_path) {
    RFH_ASSERT(dc.value() < live_by_dc.size());
    // Prefixes of a shortest path are shortest paths, so the cumulative
    // fibre distance to this stage is the all-pairs distance.
    latency = kHopLatencyMs * hops +
              paths_->distance_km(requester, dc) / kFibreKmPerMs;
    const std::vector<ServerId>& live = live_by_dc[dc.value()];
    if (live.empty()) {
      // Dead datacenter: traffic passes through its backbone router but no
      // server can absorb or be a hub there.
      if (dead_skips_ != nullptr) dead_skips_->inc();
      ++hops;
      continue;
    }
    const ServerId relay = dc == holder_dc
                               ? holder
                               : relay_for(partition, dc, live);
    route.stages.push_back(RouteStage{dc, relay, hops, latency});
    ++hops;
  }
  // Final descent from the holder datacenter's relay to the owning server.
  route.total_hops = hops;
  route.total_latency_ms = latency + kHopLatencyMs;
  if (routes_ != nullptr) {
    routes_->inc();
    stages_->inc(static_cast<double>(route.stages.size()));
  }
  return route;
}

}  // namespace rfh
