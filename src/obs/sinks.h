// Pluggable trace consumers for the EventBus.
//
//  * RingBufferSink — last-N events in memory; tests and post-mortem
//    "story" extraction (examples/trace_explain.cpp).
//  * CounterSink    — per-type and per-drop-reason totals; cheap always-on
//    aggregation.
//  * JsonlSink      — one self-describing JSON object per line; the
//    machine-readable archive format (jq / pandas friendly).
//  * ChromeTraceSink— Chrome trace_event JSON array loadable in Perfetto /
//    about://tracing; epochs become duration slices, point events become
//    instants, and the replica census becomes a counter track.
//  * FilterSink     — decorator passing only a named subset of event
//    types through to an inner sink (the CLI's --trace-filter).
#pragma once

#include <array>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/event_bus.h"

namespace rfh {

/// Keeps the most recent `capacity` events, in arrival order.
class RingBufferSink final : public EventSink {
 public:
  explicit RingBufferSink(std::size_t capacity = 4096);

  void on_event(const Event& event) override;

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<Event> snapshot() const;
  /// Total events observed (including ones already evicted).
  [[nodiscard]] std::uint64_t total_events() const noexcept { return total_; }
  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  // index of the oldest event once full
  std::uint64_t total_ = 0;
  std::vector<Event> buffer_;
};

/// Aggregates counts per event type and per ActionDropped reason.
class CounterSink final : public EventSink {
 public:
  void on_event(const Event& event) override;

  /// Count of events of the given variant alternative.
  template <typename E>
  [[nodiscard]] std::uint64_t count() const noexcept {
    constexpr std::size_t index = Event(E{}).index();
    return by_type_[index];
  }
  /// Count by stable type name ("ReplicaAdded", ...); 0 for unknown names.
  [[nodiscard]] std::uint64_t count(std::string_view name) const noexcept;
  [[nodiscard]] std::uint64_t dropped(DropReason reason) const noexcept {
    return by_drop_reason_[static_cast<std::size_t>(reason)];
  }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// "name=count" pairs for every nonzero type, in taxonomy order.
  [[nodiscard]] std::string summary() const;

 private:
  std::array<std::uint64_t, std::variant_size_v<Event>> by_type_{};
  std::array<std::uint64_t, kDropReasonCount> by_drop_reason_{};
  std::uint64_t total_ = 0;
};

/// One JSON object per line: {"type":...,"epoch":...,<event fields>}.
/// When dispatched through an EventBus the row leads with the causal
/// envelope — {"id":N,"parent":M,...} — so a JSONL trace round-trips the
/// cause chains (trace_explain / rfh_blackbox read them back).
class JsonlSink final : public EventSink {
 public:
  /// The stream must outlive the sink; the sink never closes it.
  explicit JsonlSink(std::ostream& out) : out_(&out) {}

  void on_event(const Event& event) override;
  void on_record(const Event& event, const TraceMeta& meta) override;
  void flush() override { out_->flush(); }

 private:
  void write_line(const Event& event, const TraceMeta& meta);

  std::ostream* out_;
  std::string scratch_;  // reused per event to avoid reallocating
};

/// Chrome trace_event "JSON array format". Each epoch is a complete ("X")
/// slice on the epochs track, point events are instants ("i") on a track
/// per category, and EpochCompleted additionally feeds counter ("C")
/// tracks for replicas and dropped actions. Load the file directly in
/// https://ui.perfetto.dev or about://tracing.
class ChromeTraceSink final : public EventSink {
 public:
  /// `epoch_duration_us` maps one simulated epoch onto the trace
  /// timeline; Table I's 10-second epoch is the default.
  explicit ChromeTraceSink(std::ostream& out,
                           std::uint64_t epoch_duration_us = 10'000'000);

  void on_event(const Event& event) override;
  /// Emits the closing bracket (idempotent).
  void flush() override;
  ~ChromeTraceSink() override { flush(); }

 private:
  void write_record(const std::string& json);

  std::ostream* out_;
  std::uint64_t epoch_us_;
  bool first_record_ = true;
  bool closed_ = false;
  std::string scratch_;
};

/// Forwards only events whose type name is in the allow-list.
class FilterSink final : public EventSink {
 public:
  /// `spec` is a comma-separated list of event type names (exact match,
  /// e.g. "ReplicaAdded,ActionDropped"). Unknown names are kept verbatim
  /// and simply never match. An empty spec passes everything through.
  FilterSink(EventSink& inner, std::string_view spec);

  void on_event(const Event& event) override;
  void flush() override { inner_->flush(); }

  [[nodiscard]] bool passes(std::string_view name) const noexcept;

 private:
  EventSink* inner_;
  std::vector<std::string> allowed_;  // empty => pass-through
};

/// Serialize one event as a single-line JSON object (the JsonlSink row
/// format); exposed for tests and ad-hoc tooling.
[[nodiscard]] std::string event_to_json(const Event& event);

}  // namespace rfh
