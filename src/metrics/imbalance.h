// Load imbalance (paper Eqs. 24-26): the population standard deviation of
// per-virtual-node workload. Lower is better.
//
// Eq. 24 defines l_i as "the workload of each virtual node" — i.e. of
// each hosted copy, not of each physical server. A placement that keeps
// every copy similarly busy (RFH's traffic hubs + Erlang-B server choice)
// scores low; a placement that leaves most copies idle while a few are
// saturated (random ring successors) scores high. A server-level variant
// is provided for comparison.
#pragma once

#include "sim/cluster.h"
#include "sim/traffic.h"

namespace rfh {

/// Eq. 25 over every hosted copy (primaries included); 0 when no copies.
double load_imbalance(const EpochTraffic& traffic, const ClusterState& cluster);

/// Same statistic over live physical servers (work = forwarding +
/// absorption).
double load_imbalance_servers(const EpochTraffic& traffic,
                              const ClusterState& cluster);

/// Scale-free variant of the per-copy statistic (stddev / mean).
double load_imbalance_cv(const EpochTraffic& traffic,
                         const ClusterState& cluster);

}  // namespace rfh
