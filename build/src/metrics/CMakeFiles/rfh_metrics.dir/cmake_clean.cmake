file(REMOVE_RECURSE
  "CMakeFiles/rfh_metrics.dir/collector.cpp.o"
  "CMakeFiles/rfh_metrics.dir/collector.cpp.o.d"
  "CMakeFiles/rfh_metrics.dir/csv.cpp.o"
  "CMakeFiles/rfh_metrics.dir/csv.cpp.o.d"
  "CMakeFiles/rfh_metrics.dir/diversity.cpp.o"
  "CMakeFiles/rfh_metrics.dir/diversity.cpp.o.d"
  "CMakeFiles/rfh_metrics.dir/imbalance.cpp.o"
  "CMakeFiles/rfh_metrics.dir/imbalance.cpp.o.d"
  "CMakeFiles/rfh_metrics.dir/utilization.cpp.o"
  "CMakeFiles/rfh_metrics.dir/utilization.cpp.o.d"
  "librfh_metrics.a"
  "librfh_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfh_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
