#include "obs/sinks.h"

#include <cinttypes>
#include <cstdio>

namespace rfh {

namespace {

// --- tiny append-only JSON object writer ----------------------------------
// All keys and enum names in the taxonomy are plain ASCII identifiers, so
// no string escaping is needed anywhere.
class JsonWriter {
 public:
  explicit JsonWriter(std::string& out) : out_(&out) { *out_ += '{'; }
  void close() { *out_ += '}'; }

  void num(const char* key, double value) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.12g", value);
    emit_key(key);
    *out_ += buf;
  }
  void num(const char* key, std::uint64_t value) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRIu64, value);
    emit_key(key);
    *out_ += buf;
  }
  void str(const char* key, const char* value) {
    emit_key(key);
    *out_ += '"';
    *out_ += value;
    *out_ += '"';
  }
  template <typename Tag>
  void id(const char* key, Id<Tag> value) {
    if (value.valid()) {
      num(key, std::uint64_t{value.value()});
    } else {
      emit_key(key);
      *out_ += "null";
    }
  }
  /// Open a nested object under `key`; returns a writer for it.
  JsonWriter nested(const char* key) {
    emit_key(key);
    return JsonWriter(*out_);
  }

 private:
  explicit JsonWriter(std::string* out) : out_(out) {}
  void emit_key(const char* key) {
    if (!first_) *out_ += ',';
    first_ = false;
    *out_ += '"';
    *out_ += key;
    *out_ += "\":";
  }

  std::string* out_;
  bool first_ = true;
};

void append_explanation(JsonWriter& w, const DecisionExplanation& why) {
  JsonWriter e = w.nested("why");
  e.str("rule", rule_name(why.rule));
  e.str("inequality", rule_inequality(why.rule));
  e.num("observed", why.observed);
  e.num("threshold", why.threshold);
  e.num("q_bar", why.q_bar);
  e.num("beta", why.beta);
  e.num("gamma", why.gamma);
  e.num("delta", why.delta);
  e.num("mu", why.mu);
  e.num("replicas", std::uint64_t{why.replica_count});
  e.num("r_min", std::uint64_t{why.r_min});
  e.close();
}

void append_fields(JsonWriter& w, const QueryRoutedSummary& e) {
  w.num("total_queries", e.total_queries);
  w.num("unserved_queries", e.unserved_queries);
  w.num("mean_path_length", e.mean_path_length);
}
void append_fields(JsonWriter& w, const ReplicaAdded& e) {
  w.id("partition", e.partition);
  w.id("source", e.source);
  w.id("target", e.target);
  w.num("cost", e.cost);
  append_explanation(w, e.why);
}
void append_fields(JsonWriter& w, const MigrationExecuted& e) {
  w.id("partition", e.partition);
  w.id("from", e.from);
  w.id("to", e.to);
  w.num("cost", e.cost);
  append_explanation(w, e.why);
}
void append_fields(JsonWriter& w, const Suicide& e) {
  w.id("partition", e.partition);
  w.id("server", e.server);
  append_explanation(w, e.why);
}
void append_fields(JsonWriter& w, const ActionDropped& e) {
  w.id("partition", e.partition);
  w.str("action", action_kind_name(e.kind));
  w.str("reason", drop_reason_name(e.reason));
  w.id("target", e.target);
}
void append_fields(JsonWriter& w, const ServerFailed& e) {
  w.id("server", e.server);
}
void append_fields(JsonWriter& w, const ServerRecovered& e) {
  w.id("server", e.server);
}
void append_fields(JsonWriter& w, const PrimaryPromoted& e) {
  w.id("partition", e.partition);
  w.id("new_primary", e.new_primary);
}
void append_fields(JsonWriter& w, const Reseeded& e) {
  w.id("partition", e.partition);
  w.id("new_home", e.new_home);
}
void append_fields(JsonWriter& w, const LinkFailed& e) {
  w.id("a", e.a);
  w.id("b", e.b);
}
void append_fields(JsonWriter& w, const LinkRestored& e) {
  w.id("a", e.a);
  w.id("b", e.b);
}
void append_fields(JsonWriter& w, const FaultInjected& e) {
  w.str("kind", e.kind);
  w.num("servers", std::uint64_t{e.servers});
  w.id("dc", e.dc);
  w.id("link_a", e.link_a);
  w.id("link_b", e.link_b);
  w.num("magnitude", e.magnitude);
}
void append_fields(JsonWriter& w, const PhaseSpan& e) {
  w.str("phase", e.phase);
  w.num("wall_ms", e.wall_ms);
  w.num("start_frac", e.start_frac);
  w.num("dur_frac", e.dur_frac);
}
void append_fields(JsonWriter& w, const EpochCompleted& e) {
  w.num("total_queries", e.total_queries);
  w.num("unserved_queries", e.unserved_queries);
  w.num("replications", std::uint64_t{e.replications});
  w.num("migrations", std::uint64_t{e.migrations});
  w.num("suicides", std::uint64_t{e.suicides});
  w.num("dropped_actions", std::uint64_t{e.dropped_actions});
  w.num("total_replicas", std::uint64_t{e.total_replicas});
  w.num("replication_cost", e.replication_cost);
  w.num("migration_cost", e.migration_cost);
}
void append_fields(JsonWriter& w, const StreamEpochSummary& e) {
  w.num("arrivals", e.arrivals);
  w.num("served", e.served);
  w.num("blocked", e.blocked);
  w.num("dropped", e.dropped);
  w.num("max_queue_depth", std::uint64_t{e.max_queue_depth});
  w.num("mean_wait_ms", e.mean_wait_ms);
}
void append_fields(JsonWriter& w, const QueueSaturated& e) {
  w.id("server", e.server);
  w.id("dc", e.dc);
  w.num("max_depth", std::uint64_t{e.max_depth});
  w.num("cap", std::uint64_t{e.cap});
  w.num("dropped", e.dropped);
}
void append_fields(JsonWriter& w, const TrafficShift& e) {
  w.id("partition", e.partition);
  w.num("q_bar_before", e.q_bar_before);
  w.num("q_bar_after", e.q_bar_after);
}
void append_fields(JsonWriter& w, const RuleFired& e) {
  w.id("partition", e.partition);
  w.str("rule", rule_name(e.rule));
  w.str("inequality", rule_inequality(e.rule));
  w.num("observed", e.observed);
  w.num("threshold", e.threshold);
  w.num("q_bar", e.q_bar);
}
void append_fields(JsonWriter& w, const SloBreach& e) {
  w.str("objective", e.objective);
  w.num("observed", e.observed);
  w.num("target", e.target);
  w.num("burn_short", e.burn_short);
  w.num("burn_long", e.burn_long);
}
void append_fields(JsonWriter& w, const StatsFrozen& e) {
  w.id("server", e.server);
  w.num("frozen", std::uint64_t{e.frozen ? 1u : 0u});
}
void append_fields(JsonWriter& w, const StripeLost& e) {
  w.id("partition", e.partition);
  w.num("fragments_alive", std::uint64_t{e.fragments_alive});
}
void append_fields(JsonWriter& w, const StripeReconstructed& e) {
  w.id("partition", e.partition);
}

void append_event_json(std::string& out, const Event& event,
                       const TraceMeta* meta = nullptr) {
  JsonWriter w(out);
  if (meta != nullptr && meta->id != 0) {
    w.num("id", meta->id);
    if (meta->parent != 0) w.num("parent", meta->parent);
  }
  w.str("type", event_name(event));
  w.num("epoch", std::uint64_t{event_epoch(event)});
  std::visit([&w](const auto& e) { append_fields(w, e); }, event);
  w.close();
}

}  // namespace

std::string event_to_json(const Event& event) {
  std::string out;
  append_event_json(out, event);
  return out;
}

// --- RingBufferSink -------------------------------------------------------

RingBufferSink::RingBufferSink(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  buffer_.reserve(capacity_);
}

void RingBufferSink::on_event(const Event& event) {
  ++total_;
  if (buffer_.size() < capacity_) {
    buffer_.push_back(event);
    return;
  }
  buffer_[head_] = event;
  head_ = (head_ + 1) % capacity_;
}

std::vector<Event> RingBufferSink::snapshot() const {
  std::vector<Event> out;
  out.reserve(buffer_.size());
  for (std::size_t i = 0; i < buffer_.size(); ++i) {
    out.push_back(buffer_[(head_ + i) % buffer_.size()]);
  }
  return out;
}

// --- CounterSink ----------------------------------------------------------

void CounterSink::on_event(const Event& event) {
  ++total_;
  ++by_type_[event.index()];
  if (const auto* dropped = std::get_if<ActionDropped>(&event)) {
    ++by_drop_reason_[static_cast<std::size_t>(dropped->reason)];
  }
}

std::uint64_t CounterSink::count(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < by_type_.size(); ++i) {
    if (name == event_index_name(i)) return by_type_[i];
  }
  return 0;
}

std::string CounterSink::summary() const {
  std::string out;
  for (std::size_t i = 0; i < by_type_.size(); ++i) {
    if (by_type_[i] == 0) continue;
    if (!out.empty()) out += ' ';
    out += event_index_name(i);
    out += '=';
    out += std::to_string(by_type_[i]);
  }
  return out;
}

// --- JsonlSink ------------------------------------------------------------

void JsonlSink::write_line(const Event& event, const TraceMeta& meta) {
  scratch_.clear();
  append_event_json(scratch_, event, &meta);
  scratch_ += '\n';
  out_->write(scratch_.data(),
              static_cast<std::streamsize>(scratch_.size()));
}

void JsonlSink::on_event(const Event& event) {
  write_line(event, TraceMeta{});
}

void JsonlSink::on_record(const Event& event, const TraceMeta& meta) {
  write_line(event, meta);
}

// --- ChromeTraceSink ------------------------------------------------------

namespace {

/// Perfetto track (thread id) per event category.
std::uint32_t chrome_tid(const Event& event) {
  struct Visitor {
    std::uint32_t operator()(const EpochCompleted&) const { return 1; }
    std::uint32_t operator()(const QueryRoutedSummary&) const { return 1; }
    std::uint32_t operator()(const ReplicaAdded&) const { return 2; }
    std::uint32_t operator()(const MigrationExecuted&) const { return 2; }
    std::uint32_t operator()(const Suicide&) const { return 2; }
    std::uint32_t operator()(const ActionDropped&) const { return 2; }
    std::uint32_t operator()(const ServerFailed&) const { return 3; }
    std::uint32_t operator()(const ServerRecovered&) const { return 3; }
    std::uint32_t operator()(const PrimaryPromoted&) const { return 3; }
    std::uint32_t operator()(const Reseeded&) const { return 3; }
    std::uint32_t operator()(const LinkFailed&) const { return 3; }
    std::uint32_t operator()(const LinkRestored&) const { return 3; }
    std::uint32_t operator()(const FaultInjected&) const { return 3; }
    std::uint32_t operator()(const PhaseSpan&) const { return 1; }
    std::uint32_t operator()(const StreamEpochSummary&) const { return 1; }
    std::uint32_t operator()(const QueueSaturated&) const { return 3; }
    std::uint32_t operator()(const TrafficShift&) const { return 1; }
    std::uint32_t operator()(const RuleFired&) const { return 2; }
    std::uint32_t operator()(const SloBreach&) const { return 3; }
    std::uint32_t operator()(const StatsFrozen&) const { return 3; }
    std::uint32_t operator()(const StripeLost&) const { return 3; }
    std::uint32_t operator()(const StripeReconstructed&) const { return 3; }
  };
  return std::visit(Visitor{}, event);
}

}  // namespace

ChromeTraceSink::ChromeTraceSink(std::ostream& out,
                                 std::uint64_t epoch_duration_us)
    : out_(&out), epoch_us_(epoch_duration_us == 0 ? 1 : epoch_duration_us) {
  *out_ << "[\n";
  // Metadata: name the process and the three tracks.
  write_record(R"({"name":"process_name","ph":"M","pid":1,"tid":0,)"
               R"("args":{"name":"rfh-sim"}})");
  write_record(R"({"name":"thread_name","ph":"M","pid":1,"tid":1,)"
               R"("args":{"name":"epochs"}})");
  write_record(R"({"name":"thread_name","ph":"M","pid":1,"tid":2,)"
               R"("args":{"name":"replica actions"}})");
  write_record(R"({"name":"thread_name","ph":"M","pid":1,"tid":3,)"
               R"("args":{"name":"failures"}})");
}

void ChromeTraceSink::write_record(const std::string& json) {
  if (!first_record_) *out_ << ",\n";
  first_record_ = false;
  *out_ << json;
}

void ChromeTraceSink::on_event(const Event& event) {
  if (closed_) return;
  const std::uint64_t ts = std::uint64_t{event_epoch(event)} * epoch_us_;

  scratch_.clear();
  {
    const auto* span = std::get_if<PhaseSpan>(&event);
    JsonWriter w(scratch_);
    w.str("name", span != nullptr ? span->phase : event_name(event));
    w.str("cat", "rfh");
    if (std::holds_alternative<EpochCompleted>(event)) {
      // The epoch itself is a duration slice on the epochs track.
      w.str("ph", "X");
      w.num("ts", ts);
      w.num("dur", epoch_us_);
    } else if (span != nullptr) {
      // Profiler phases nest inside the epoch slice: same track, start
      // and duration scaled from wall-time fractions onto the simulated
      // epoch span (Perfetto nests contained slices automatically).
      w.str("ph", "X");
      w.num("ts", ts + static_cast<std::uint64_t>(
                           span->start_frac *
                           static_cast<double>(epoch_us_)));
      const auto dur = static_cast<std::uint64_t>(
          span->dur_frac * static_cast<double>(epoch_us_));
      w.num("dur", dur > 0 ? dur : 1);
    } else {
      w.str("ph", "i");
      w.str("s", "t");  // thread-scoped instant
      w.num("ts", ts);
    }
    w.num("pid", std::uint64_t{1});
    w.num("tid", std::uint64_t{chrome_tid(event)});
    JsonWriter args = w.nested("args");
    std::visit([&args](const auto& e) { append_fields(args, e); }, event);
    args.close();
    w.close();
  }
  write_record(scratch_);

  // Counter tracks make the replica census and drop pressure visible as
  // graphs in the Perfetto timeline.
  if (const auto* done = std::get_if<EpochCompleted>(&event)) {
    scratch_.clear();
    {
      JsonWriter w(scratch_);
      w.str("name", "replicas");
      w.str("ph", "C");
      w.num("ts", ts);
      w.num("pid", std::uint64_t{1});
      JsonWriter args = w.nested("args");
      args.num("total", std::uint64_t{done->total_replicas});
      args.close();
      w.close();
    }
    write_record(scratch_);
    scratch_.clear();
    {
      JsonWriter w(scratch_);
      w.str("name", "dropped_actions");
      w.str("ph", "C");
      w.num("ts", ts);
      w.num("pid", std::uint64_t{1});
      JsonWriter args = w.nested("args");
      args.num("dropped", std::uint64_t{done->dropped_actions});
      args.close();
      w.close();
    }
    write_record(scratch_);
  }
}

void ChromeTraceSink::flush() {
  if (closed_) return;
  closed_ = true;
  *out_ << "\n]\n";
  out_->flush();
}

// --- FilterSink -----------------------------------------------------------

FilterSink::FilterSink(EventSink& inner, std::string_view spec)
    : inner_(&inner) {
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string_view::npos) end = spec.size();
    std::string_view token = spec.substr(start, end - start);
    // Trim surrounding spaces.
    while (!token.empty() && token.front() == ' ') token.remove_prefix(1);
    while (!token.empty() && token.back() == ' ') token.remove_suffix(1);
    if (!token.empty()) allowed_.emplace_back(token);
    start = end + 1;
  }
}

bool FilterSink::passes(std::string_view name) const noexcept {
  if (allowed_.empty()) return true;
  for (const std::string& allowed : allowed_) {
    if (name == allowed) return true;
  }
  return false;
}

void FilterSink::on_event(const Event& event) {
  if (passes(event_name(event))) inner_->on_event(event);
}

}  // namespace rfh
