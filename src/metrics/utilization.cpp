#include "metrics/utilization.h"

#include <algorithm>

namespace rfh {

double copy_utilization(const EpochTraffic& traffic, const Topology& topology,
                        PartitionId p, ServerId s) {
  const double cap = topology.server(s).spec.per_replica_capacity;
  if (cap <= 0.0) return 0.0;
  return std::clamp(traffic.served(p, s) / cap, 0.0, 1.0);
}

double replica_utilization(const EpochTraffic& traffic,
                           const ClusterState& cluster,
                           const Topology& topology,
                           const UtilizationOptions& options) {
  double sum = 0.0;
  std::size_t count = 0;
  for (std::uint32_t pv = 0; pv < cluster.config().partitions; ++pv) {
    const PartitionId p{pv};
    for (const Replica& r : cluster.replicas_of(p)) {
      if (r.primary && !options.include_primaries) continue;
      sum += copy_utilization(traffic, topology, p, r.server);
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

}  // namespace rfh
