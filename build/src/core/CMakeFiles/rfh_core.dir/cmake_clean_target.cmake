file(REMOVE_RECURSE
  "librfh_core.a"
)
