#include "harness/cli.h"

#include <charconv>
#include <cstring>
#include <map>

namespace rfh {

namespace {

bool consume(const char* arg, const char* name, std::string& value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  value = arg + len;
  return true;
}

bool parse_u64(const std::string& text, std::uint64_t& out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

bool parse_double(const std::string& text, double& out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

}  // namespace

std::vector<std::string> metric_names() {
  return {"utilization", "replicas", "path",   "imbalance", "latency",
          "sla",         "cost",     "migrations", "lag",   "stale",
          "diversity",   "dropped",  "starved", "qdepth",   "qdrop",
          "qwait",       "qp99"};
}

double metric_value(const EpochMetrics& m, const std::string& metric,
                    bool* ok) {
  *ok = true;
  if (metric == "utilization") return m.utilization;
  if (metric == "replicas") return m.total_replicas;
  if (metric == "path") return m.path_length;
  if (metric == "imbalance") return m.load_imbalance;
  if (metric == "latency") return m.latency_mean_ms;
  if (metric == "sla") return m.sla_attainment;
  if (metric == "cost") return m.replication_cost_total;
  if (metric == "migrations") return m.migrations_total;
  if (metric == "lag") return m.mean_replica_lag;
  if (metric == "stale") return m.stale_read_fraction;
  if (metric == "diversity") return m.diversity_level;
  if (metric == "dropped") return m.dropped_this_epoch;
  if (metric == "starved") return m.repairs_starved;
  if (metric == "qdepth") return m.stream_max_queue_depth;
  if (metric == "qdrop") return m.stream_dropped;
  if (metric == "qwait") return m.stream_wait_mean_ms;
  if (metric == "qp99") return m.stream_p99_ms;
  *ok = false;
  return 0.0;
}

CliParseResult parse_cli(std::span<const char* const> args) {
  CliParseResult result;
  CliOptions& options = result.options;
  auto fail = [&](std::string message) {
    result.ok = false;
    result.error = std::move(message);
    return result;
  };

  // Last-one-wins between *conflicting* duplicates silently discards the
  // user's earlier intent; repeating the identical value is harmless.
  // --kill is the one legitimately repeatable value flag.
  std::map<std::string, std::string> seen;
  // Last stream-layer flag encountered, for the workload=stream check.
  const char* stream_flag = nullptr;
  // Whether --jobs appeared: single-policy runs thread the engine only on
  // explicit request (the default stays serial), while --compare always
  // consults options.jobs for its policy pool.
  bool jobs_seen = false;
  for (const char* arg : args) {
    if (std::strncmp(arg, "--", 2) == 0) {
      if (const char* eq = std::strchr(arg, '=')) {
        std::string name(arg, eq);
        if (name != "--kill") {
          const auto [it, inserted] = seen.emplace(name, eq + 1);
          if (!inserted && it->second != eq + 1) {
            return fail("conflicting duplicate " + name + "=" + (eq + 1) +
                        " (already set to '" + it->second + "')");
          }
        }
      }
    }
    std::string value;
    if (consume(arg, "--policy=", value)) {
      if (value == "rfh") options.policy = PolicyKind::kRfh;
      else if (value == "random") options.policy = PolicyKind::kRandom;
      else if (value == "owner") options.policy = PolicyKind::kOwner;
      else if (value == "request") options.policy = PolicyKind::kRequest;
      else return fail("unknown policy '" + value + "'");
    } else if (consume(arg, "--workload=", value)) {
      if (value == "uniform") {
        options.scenario.workload = WorkloadKind::kUniform;
      } else if (value == "flash") {
        const Epoch epochs = options.scenario.epochs;
        options.scenario.workload = WorkloadKind::kFlashCrowd;
        options.scenario.epochs =
            epochs == Scenario::paper_random_query().epochs
                ? Scenario::paper_flash_crowd().epochs
                : epochs;
      } else if (value == "hotspot") {
        options.scenario.workload = WorkloadKind::kHotspotShift;
      } else if (value == "stream") {
        options.scenario.workload = WorkloadKind::kStream;
      } else {
        return fail("unknown workload '" + value + "'");
      }
    } else if (consume(arg, "--epochs=", value)) {
      std::uint64_t epochs = 0;
      if (!parse_u64(value, epochs) || epochs == 0) {
        return fail("--epochs expects a positive integer");
      }
      options.scenario.epochs = static_cast<Epoch>(epochs);
    } else if (consume(arg, "--seed=", value)) {
      std::uint64_t seed = 0;
      if (!parse_u64(value, seed)) return fail("--seed expects an integer");
      options.scenario.sim.seed = seed;
      options.scenario.world.seed = seed;
    } else if (consume(arg, "--partitions=", value)) {
      std::uint64_t partitions = 0;
      if (!parse_u64(value, partitions) || partitions == 0) {
        return fail("--partitions expects a positive integer");
      }
      options.scenario.sim.partitions =
          static_cast<std::uint32_t>(partitions);
    } else if (consume(arg, "--write-fraction=", value)) {
      double fraction = 0.0;
      if (!parse_double(value, fraction) || fraction < 0.0 ||
          fraction > 1.0) {
        return fail("--write-fraction expects a number in [0, 1]");
      }
      options.scenario.write_fraction = fraction;
    } else if (consume(arg, "--kill=", value)) {
      const std::size_t at = value.find('@');
      std::uint64_t n = 0;
      std::uint64_t epoch = 0;
      if (at == std::string::npos ||
          !parse_u64(value.substr(0, at), n) ||
          !parse_u64(value.substr(at + 1), epoch) || n == 0) {
        return fail("--kill expects N@E with positive N");
      }
      FailureEvent event;
      event.kill_random = static_cast<std::uint32_t>(n);
      event.epoch = static_cast<Epoch>(epoch);
      options.failures.push_back(event);
    } else if (consume(arg, "--jobs=", value)) {
      jobs_seen = true;
      if (value == "auto") {
        options.jobs = 0;  // exec/sweep.h: 0 = one worker per hardware thread
      } else {
        std::uint64_t jobs = 0;
        if (!parse_u64(value, jobs) || jobs == 0 || jobs > 1024) {
          return fail("--jobs expects an integer in [1, 1024] or 'auto' "
                      "(one worker per hardware thread)");
        }
        options.jobs = static_cast<unsigned>(jobs);
      }
    } else if (consume(arg, "--alpha=", value)) {
      double v = 0.0;
      if (!parse_double(value, v) || !(v > 0.0 && v < 1.0)) {
        return fail("--alpha expects a smoothing factor in (0, 1), got '" +
                    value + "'");
      }
      options.scenario.sim.alpha = v;
    } else if (consume(arg, "--beta=", value)) {
      double v = 0.0;
      if (!parse_double(value, v) || !(v > 0.0)) {
        return fail("--beta expects a positive overload threshold, got '" +
                    value + "'");
      }
      options.scenario.sim.beta = v;
    } else if (consume(arg, "--gamma=", value)) {
      double v = 0.0;
      if (!parse_double(value, v) || !(v > 0.0)) {
        return fail("--gamma expects a positive hub threshold, got '" +
                    value + "'");
      }
      options.scenario.sim.gamma = v;
    } else if (consume(arg, "--delta=", value)) {
      double v = 0.0;
      if (!parse_double(value, v) || !(v >= 0.0)) {
        return fail("--delta expects a non-negative suicide threshold, "
                    "got '" + value + "'");
      }
      options.scenario.sim.delta = v;
    } else if (consume(arg, "--mu=", value)) {
      double v = 0.0;
      if (!parse_double(value, v) || !(v >= 0.0)) {
        return fail("--mu expects a non-negative migration-benefit "
                    "threshold, got '" + value + "'");
      }
      options.scenario.sim.mu = v;
    } else if (consume(arg, "--phi=", value)) {
      double v = 0.0;
      if (!parse_double(value, v) || !(v > 0.0 && v <= 1.0)) {
        return fail("--phi expects a storage-limit fraction in (0, 1], "
                    "got '" + value + "'");
      }
      options.scenario.sim.storage_limit = v;
    } else if (consume(arg, "--redundancy=", value)) {
      std::string err;
      if (!parse_redundancy(value, options.scenario.sim, err)) {
        return fail("--redundancy expects replica or ec(k,m) with k >= 2, "
                    "m >= 1, k + m <= 16, got '" + value + "'");
      }
    } else if (consume(arg, "--arrival-rate=", value)) {
      double v = 0.0;
      if (!parse_double(value, v) || !(v > 0.0)) {
        return fail("--arrival-rate expects a positive mean arrivals per "
                    "epoch, got '" + value + "'");
      }
      options.scenario.stream.arrival_rate = v;
      stream_flag = "--arrival-rate";
    } else if (consume(arg, "--queue-cap=", value)) {
      std::uint64_t v = 0;
      if (!parse_u64(value, v) || v == 0 || v > 1000000) {
        return fail("--queue-cap expects an integer in [1, 1000000], "
                    "got '" + value + "'");
      }
      options.scenario.stream.queue_cap = static_cast<std::uint32_t>(v);
      stream_flag = "--queue-cap";
    } else if (consume(arg, "--service-cv=", value)) {
      double v = 0.0;
      if (!parse_double(value, v) || !(v >= 0.0)) {
        return fail("--service-cv expects a non-negative coefficient of "
                    "variation, got '" + value + "'");
      }
      options.scenario.stream.service_cv = v;
      stream_flag = "--service-cv";
    } else if (consume(arg, "--metric=", value)) {
      bool known = false;
      (void)metric_value(EpochMetrics{}, value, &known);
      if (!known) return fail("unknown metric '" + value + "'");
      options.metric = value;
    } else if (consume(arg, "--trace-out=", value)) {
      if (value.empty()) return fail("--trace-out expects a file path");
      options.trace_out = value;
    } else if (consume(arg, "--trace-format=", value)) {
      if (value == "jsonl") options.trace_format = TraceFormat::kJsonl;
      else if (value == "chrome") options.trace_format = TraceFormat::kChrome;
      else return fail("--trace-format expects jsonl or chrome");
    } else if (consume(arg, "--trace-filter=", value)) {
      options.trace_filter = value;
    } else if (consume(arg, "--metrics-out=", value)) {
      if (value.empty()) return fail("--metrics-out expects a file path");
      options.metrics_out = value;
    } else if (consume(arg, "--metrics-format=", value)) {
      if (value == "prom") options.metrics_format = MetricsFormat::kProm;
      else if (value == "json") options.metrics_format = MetricsFormat::kJson;
      else return fail("--metrics-format expects prom or json");
    } else if (consume(arg, "--fault-plan=", value)) {
      if (value.empty()) return fail("--fault-plan expects a file path");
      FaultPlan::ParseResult parsed = FaultPlan::parse_file(value);
      if (!parsed.ok) {
        return fail("--fault-plan: " + parsed.error);
      }
      options.fault_plan_path = value;
      options.scenario.fault_plan = std::move(parsed.plan);
    } else if (consume(arg, "--slo=", value)) {
      SloParseResult parsed = parse_slo(value);
      if (!parsed.ok) {
        return fail("--slo: " + parsed.error);
      }
      options.scenario.slo = parsed.spec;
    } else if (consume(arg, "--blackbox-out=", value)) {
      if (value.empty()) return fail("--blackbox-out expects a file path");
      options.blackbox_out = value;
    } else if (std::strcmp(arg, "--check-invariants") == 0) {
      options.check_invariants = true;
    } else if (std::strcmp(arg, "--profile") == 0) {
      options.profile = true;
    } else if (std::strcmp(arg, "--compare") == 0) {
      options.compare = true;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      options.quiet = true;
    } else {
      return fail(std::string("unknown argument '") + arg + "'");
    }
  }
  if (!options.trace_out.empty() && options.compare) {
    return fail("--trace-out traces a single policy run; drop --compare");
  }
  if (!options.metrics_out.empty() && options.compare) {
    return fail("--metrics-out dumps a single policy run; drop --compare");
  }
  if (options.profile && options.compare) {
    return fail("--profile times a single policy run; drop --compare");
  }
  if (!options.fault_plan_path.empty() && options.compare) {
    return fail("--fault-plan drives a single policy run; drop --compare");
  }
  if (options.check_invariants && options.compare) {
    return fail("--check-invariants checks a single policy run; drop "
                "--compare");
  }
  if (!options.blackbox_out.empty() && options.compare) {
    return fail("--blackbox-out records a single policy run; drop --compare");
  }
  if (stream_flag != nullptr &&
      options.scenario.workload != WorkloadKind::kStream) {
    return fail(std::string(stream_flag) +
                " only applies to --workload=stream");
  }
  if (jobs_seen && !options.compare) {
    // Single-policy runs shard the epoch phases themselves. Under
    // --compare the pool parallelises across policies instead and each
    // engine stays serial, so the two modes never nest thread pools.
    options.scenario.engine_jobs = options.jobs;
  }
  result.ok = true;
  return result;
}

}  // namespace rfh
