#include "telemetry/slo.h"

#include <algorithm>
#include <charconv>
#include <cstdio>

#include "telemetry/registry.h"

namespace rfh {

const char* slo_objective_name(SloObjective objective) noexcept {
  switch (objective) {
    case SloObjective::kAvailability:
      return "availability";
    case SloObjective::kStreamP99:
      return "stream_p99";
    case SloObjective::kMigrationRate:
      return "migration_rate";
    case SloObjective::kDropRate:
      return "drop_rate";
  }
  return "?";
}

bool SloSpec::objective_enabled(SloObjective objective) const noexcept {
  return target(objective) >= 0.0;
}

double SloSpec::target(SloObjective objective) const noexcept {
  switch (objective) {
    case SloObjective::kAvailability:
      return availability_floor;
    case SloObjective::kStreamP99:
      return stream_p99_ms;
    case SloObjective::kMigrationRate:
      return migrations_per_epoch;
    case SloObjective::kDropRate:
      return drop_rate;
  }
  return -1.0;
}

double SloSample::signal(SloObjective objective) const noexcept {
  switch (objective) {
    case SloObjective::kAvailability:
      return availability;
    case SloObjective::kStreamP99:
      return stream_p99_ms;
    case SloObjective::kMigrationRate:
      return migrations;
    case SloObjective::kDropRate:
      return drop_rate;
  }
  return 0.0;
}

SloParseResult parse_slo(std::string_view text) {
  SloParseResult result;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string_view::npos) comma = text.size();
    const std::string_view pair = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      result.error = "expected key=value, got '" + std::string(pair) + "'";
      return result;
    }
    const std::string_view key = pair.substr(0, eq);
    const std::string_view value = pair.substr(eq + 1);
    double parsed = 0.0;
    const auto [end, ec] =
        std::from_chars(value.data(), value.data() + value.size(), parsed);
    if (ec != std::errc{} || end != value.data() + value.size()) {
      result.error =
          "bad number '" + std::string(value) + "' for key '" +
          std::string(key) + "'";
      return result;
    }
    if (key == "avail") {
      if (parsed <= 0.0 || parsed >= 1.0) {
        result.error = "avail must be in (0, 1)";
        return result;
      }
      result.spec.availability_floor = parsed;
    } else if (key == "p99") {
      result.spec.stream_p99_ms = parsed;
    } else if (key == "migrations") {
      result.spec.migrations_per_epoch = parsed;
    } else if (key == "drops") {
      if (parsed <= 0.0 || parsed >= 1.0) {
        result.error = "drops must be in (0, 1)";
        return result;
      }
      result.spec.drop_rate = parsed;
    } else if (key == "short") {
      result.spec.short_window = static_cast<std::uint32_t>(parsed);
    } else if (key == "long") {
      result.spec.long_window = static_cast<std::uint32_t>(parsed);
    } else if (key == "burn") {
      result.spec.burn_threshold = parsed;
    } else {
      result.error = "unknown key '" + std::string(key) +
                     "' (want avail|p99|migrations|drops|short|long|burn)";
      return result;
    }
  }
  if (result.spec.short_window == 0 ||
      result.spec.long_window < result.spec.short_window) {
    result.error = "windows must satisfy 0 < short <= long";
    return result;
  }
  if (result.spec.burn_threshold <= 0.0) {
    result.error = "burn threshold must be positive";
    return result;
  }
  if (!result.spec.enabled()) {
    result.error = "no objective enabled (set avail/p99/migrations/drops)";
    return result;
  }
  result.ok = true;
  return result;
}

SloWatchdog::SloWatchdog(const SloSpec& spec, EventBus* bus,
                         MetricRegistry* registry)
    : spec_(spec), bus_(bus), registry_(registry) {}

double SloWatchdog::burn_of(SloObjective objective,
                            double signal) const noexcept {
  constexpr double kTiny = 1e-12;
  if (objective == SloObjective::kAvailability) {
    const double budget = std::max(1.0 - spec_.availability_floor, kTiny);
    return std::max(0.0, 1.0 - signal) / budget;
  }
  const double ceiling = std::max(spec_.target(objective), kTiny);
  return std::max(0.0, signal) / ceiling;
}

double SloWatchdog::window_mean(const std::vector<double>& series,
                                std::uint32_t window) noexcept {
  if (series.empty() || window == 0) return 0.0;
  const std::size_t n = std::min<std::size_t>(series.size(), window);
  double sum = 0.0;
  for (std::size_t i = series.size() - n; i < series.size(); ++i) {
    sum += series[i];
  }
  return sum / static_cast<double>(n);
}

double SloWatchdog::burn_short(SloObjective objective) const noexcept {
  return window_mean(burns_[static_cast<std::size_t>(objective)],
                     spec_.short_window);
}

double SloWatchdog::burn_long(SloObjective objective) const noexcept {
  return window_mean(burns_[static_cast<std::size_t>(objective)],
                     spec_.long_window);
}

void SloWatchdog::observe(Epoch epoch, const SloSample& sample) {
  for (std::size_t k = 0; k < kSloObjectiveCount; ++k) {
    const auto objective = static_cast<SloObjective>(k);
    if (!spec_.objective_enabled(objective)) continue;
    const double signal = sample.signal(objective);
    signals_[k].push_back(signal);
    burns_[k].push_back(burn_of(objective, signal));

    const double burn_s = burn_short(objective);
    const double burn_l = burn_long(objective);
    if (!in_breach_[k]) {
      // Enter breach only when both windows agree: the short window
      // reacts to the incident, the long window proves it is sustained.
      if (burn_s >= spec_.burn_threshold && burn_l >= spec_.burn_threshold) {
        in_breach_[k] = true;
        SloBreachRecord record;
        record.epoch = epoch;
        record.objective = objective;
        record.observed = window_mean(signals_[k], spec_.long_window);
        record.target = spec_.target(objective);
        record.burn_short = burn_s;
        record.burn_long = burn_l;
        if (bus_ != nullptr) {
          record.cause_id = bus_->emit_caused(
              bus_->ambient_cause(),
              SloBreach{epoch, slo_objective_name(objective), record.observed,
                        record.target, burn_s, burn_l});
        }
        if (registry_ != nullptr) {
          registry_
              ->counter("rfh_slo_breaches_total",
                        {{"objective", slo_objective_name(objective)}},
                        "SLO breach episodes flagged by the burn-rate "
                        "watchdog")
              .inc(1.0);
        }
        breaches_.push_back(record);
      }
    } else if (burn_s < spec_.burn_threshold) {
      in_breach_[k] = false;  // short window recovered: re-arm
    }
  }
}

std::uint64_t SloWatchdog::digest() const {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  char buf[192];
  for (const SloBreachRecord& record : breaches_) {
    std::snprintf(buf, sizeof buf, "%u|%s|%.17g|%.17g|%.17g|%.17g\n",
                  record.epoch, slo_objective_name(record.objective),
                  record.observed, record.target, record.burn_short,
                  record.burn_long);
    for (const char* c = buf; *c != '\0'; ++c) {
      hash ^= static_cast<unsigned char>(*c);
      hash *= 0x100000001b3ULL;
    }
  }
  return hash;
}

}  // namespace rfh
