// The request-oriented comparator (paper refs [16][5]: Gnutella-style
// replicate-at-the-requester schemes).
//
// "It will choose among datacenters closest to the clients, where most of
// the queries come from ... randomly choose a node among the top 3 ones
// to replicate on. The migration process is started when another node
// without any replica joins in the list of the top 3."
//
// Consequences the paper measures and this implementation preserves:
// replicas only ever live at the current top-3 requester datacenters
// (plus the primary), so the copy count is structurally small and lookup
// hops are near zero for covered flows — but when the crowd moves, the
// stale replicas serve nothing until migrations (one per partition per
// epoch) catch up, collapsing utilization; and the random in-datacenter
// server choice gives the worst load balance.
#pragma once

#include <string_view>
#include <unordered_map>

#include "sim/policy.h"

namespace rfh {

class RequestOrientedPolicy final : public ReplicationPolicy {
 public:
  /// `top_requesters`: datacenters forming the preference set (paper: 3).
  /// `max_migrations_per_epoch`: global re-homing budget per epoch — the
  /// scheme adjusts a few partitions at a time, which is what makes its
  /// recovery after a crowd shift take "a long period of time" (paper
  /// Section III-B).
  explicit RequestOrientedPolicy(std::uint32_t top_requesters = 3,
                                 std::uint32_t max_migrations_per_epoch = 2)
      : top_requesters_(top_requesters),
        max_migrations_per_epoch_(max_migrations_per_epoch) {}

  [[nodiscard]] std::string_view name() const override { return "Request"; }
  [[nodiscard]] Actions decide(const PolicyContext& ctx) override;

 private:
  std::uint32_t top_requesters_;
  std::uint32_t max_migrations_per_epoch_;
  /// Consecutive epochs each (partition, datacenter) has been in the
  /// top-requester set; a *join* (the paper's migration trigger) is a
  /// membership that persists, not a one-epoch sampling blip.
  std::unordered_map<std::uint64_t, std::uint32_t> membership_streak_;
};

}  // namespace rfh
