# Empty dependencies file for rfh_ring.
# This may be replaced when dependencies are built.
