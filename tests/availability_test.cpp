#include "common/availability.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rfh {
namespace {

TEST(Availability, ZeroReplicasIsUnavailable) {
  EXPECT_DOUBLE_EQ(availability(0, 0.1), 0.0);
}

TEST(Availability, SingleCopySurvivalProbability) {
  EXPECT_NEAR(availability(1, 0.1), 0.9, 1e-12);
  EXPECT_NEAR(availability(1, 0.3), 0.7, 1e-12);
}

TEST(Availability, AtLeastOneOfR) {
  EXPECT_NEAR(availability(2, 0.1), 0.99, 1e-12);
  EXPECT_NEAR(availability(3, 0.1), 0.999, 1e-12);
  EXPECT_NEAR(availability(2, 0.5), 0.75, 1e-12);
}

TEST(Availability, PerfectlyReliableCopies) {
  EXPECT_DOUBLE_EQ(availability(1, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(availability(5, 0.0), 1.0);
}

TEST(Availability, AlwaysFailingCopies) {
  EXPECT_DOUBLE_EQ(availability(5, 1.0), 0.0);
}

TEST(AvailabilityEq14Literal, CollapsesToAllSurvive) {
  // The printed inclusion-exclusion telescopes to (1-f)^r.
  for (std::uint32_t r = 0; r <= 6; ++r) {
    for (const double f : {0.0, 0.1, 0.3, 0.9}) {
      EXPECT_NEAR(availability_eq14_literal(r, f),
                  std::pow(1.0 - f, static_cast<double>(r)), 1e-12)
          << "r=" << r << " f=" << f;
    }
  }
}

TEST(MinReplicas, PaperWorkedExample) {
  // "if the system requires a minimum availability of 0.8 and the failure
  // probability is 0.1, then the minimum replica number is 2".
  EXPECT_EQ(min_replicas(0.8, 0.1), 2u);
}

TEST(MinReplicas, FloorApplies) {
  // Even a trivially satisfied target keeps at least the floor.
  EXPECT_EQ(min_replicas(0.5, 0.01), 2u);
  EXPECT_EQ(min_replicas(0.5, 0.01, 3), 3u);
  EXPECT_EQ(min_replicas(0.5, 0.01, 0), 1u);
}

TEST(MinReplicas, HighTargetsNeedMoreCopies) {
  EXPECT_EQ(min_replicas(0.999, 0.1), 3u);
  EXPECT_EQ(min_replicas(0.9999, 0.1), 4u);
  EXPECT_EQ(min_replicas(0.99, 0.5), 7u);
}

TEST(MinReplicas, ResultSatisfiesTarget) {
  for (const double target : {0.8, 0.9, 0.99, 0.99999}) {
    for (const double f : {0.05, 0.1, 0.3, 0.6}) {
      const std::uint32_t r = min_replicas(target, f);
      EXPECT_GE(availability(r, f), target);
      if (r > 2) {
        EXPECT_LT(availability(r - 1, f), target)
            << "not minimal for target=" << target << " f=" << f;
      }
    }
  }
}

class AvailabilityMonotonicityTest
    : public ::testing::TestWithParam<double> {};

TEST_P(AvailabilityMonotonicityTest, IncreasingInReplicaCount) {
  const double f = GetParam();
  for (std::uint32_t r = 0; r < 10; ++r) {
    EXPECT_LE(availability(r, f), availability(r + 1, f) + 1e-15);
  }
}

TEST_P(AvailabilityMonotonicityTest, DecreasingInFailureProbability) {
  const double f = GetParam();
  if (f >= 0.95) return;
  for (std::uint32_t r = 1; r < 6; ++r) {
    EXPECT_GE(availability(r, f), availability(r, f + 0.05) - 1e-15);
  }
}

INSTANTIATE_TEST_SUITE_P(FailureProbabilities, AvailabilityMonotonicityTest,
                         ::testing::Values(0.0, 0.05, 0.1, 0.3, 0.5, 0.9));

TEST(AvailabilityDeath, RejectsOutOfRangeInputs) {
  EXPECT_DEATH(availability(1, -0.1), "");
  EXPECT_DEATH(availability(1, 1.1), "");
  EXPECT_DEATH(min_replicas(1.0, 0.1), "");  // target must be < 1
  EXPECT_DEATH(min_replicas(0.8, 1.0), "");  // f must be < 1
}

}  // namespace
}  // namespace rfh
