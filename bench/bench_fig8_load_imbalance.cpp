// Fig. 8 — load imbalance (Eqs. 24-26: population stddev of per-server
// workload), per epoch.
//   (a) random query;  (b) flash crowd.
//
// Paper shape: RFH lowest (Erlang-B server choice), and it *improves*
// under flash crowd while the other algorithms get worse.
#include <algorithm>
#include <iostream>

#include "bench_report.h"
#include "bench_args.h"
#include "exec/sweep.h"
#include "harness/report.h"

namespace {

// Tail-mean of RFH load imbalance over the run's last 50 epochs.
double rfh_tail(const rfh::ComparativeResult& r) {
  const rfh::PolicyRun& run = r.run(rfh::PolicyKind::kRfh);
  const std::size_t n = std::min<std::size_t>(50, run.series.size());
  double sum = 0.0;
  for (std::size_t i = run.series.size() - n; i < run.series.size(); ++i) {
    sum += run.series[i].load_imbalance;
  }
  return sum / static_cast<double>(n);
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned jobs = rfh::bench_jobs(argc, argv);
  rfh::BenchReport report("fig8_load_imbalance");
  {
    const rfh::Scenario s = rfh::Scenario::paper_random_query();
    rfh::ComparativeResult r;
    {
      const auto stage = report.stage("random_query");
      r = rfh::run_comparison_pooled(s, {}, jobs);
    }
    rfh::print_figure(std::cout, "Fig 8(a): load imbalance, random query", r,
                      &rfh::EpochMetrics::load_imbalance);
    report.add_metric("random_query_rfh_imbalance_tail50", rfh_tail(r));
  }
  {
    const rfh::Scenario s = rfh::Scenario::paper_flash_crowd();
    rfh::ComparativeResult r;
    {
      const auto stage = report.stage("flash_crowd");
      r = rfh::run_comparison_pooled(s, {}, jobs);
    }
    rfh::print_figure(std::cout, "Fig 8(b): load imbalance, flash crowd", r,
                      &rfh::EpochMetrics::load_imbalance);
    report.add_metric("flash_crowd_rfh_imbalance_tail50", rfh_tail(r));
  }
  report.write_file();
  return 0;
}
