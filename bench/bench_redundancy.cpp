// Extension experiment — redundancy schemes (replica vs erasure coding).
//
// The paper replicates whole partitions; the EC extension stores n = k+
// extra fragments of size s/k and serves reads from any k of them
// (sim/config.h RedundancyMode). This bench puts the two schemes on the
// paper world under identical rolling churn and traces the three-way
// trade the redundancy literature predicts:
//
//   storage   — steady-state bytes per logical partition, as a multiple
//               of the partition size (replica r*s vs EC n*s/k);
//   repair    — bytes replicated per epoch while churn keeps killing
//               servers (replica moves whole copies, EC moves fragments);
//   safety    — the analytic availability of the floor census each mode
//               repairs toward (Eq. 14 vs its k-of-n binomial tail).
//
// All modes target the same min_availability, so the storage column is
// an apples-to-apples "price of equal safety": ec(4,2) carries the same
// >= 0.999 availability as 3-replica at two thirds of the disk.
//
//   bench_redundancy [--smoke] [--jobs=N]
//
// --smoke shrinks the horizon for CI (the ec-smoke job gates the
// committed BENCH_redundancy_smoke.json with scripts/bench_diff.py).
#include <cstdio>
#include <cstring>

#include "bench_args.h"
#include "bench_report.h"
#include "common/availability.h"
#include "exec/sweep.h"
#include "fault/plan.h"
#include "harness/runner.h"
#include "harness/scenario.h"

namespace {

struct ModeSpec {
  const char* label;
  rfh::RedundancyMode mode;
  std::uint32_t k;
  std::uint32_t m;
};

constexpr ModeSpec kModes[] = {
    {"replica", rfh::RedundancyMode::kReplica, 0, 0},
    {"ec_4_2", rfh::RedundancyMode::kErasure, 4, 2},
    {"ec_8_3", rfh::RedundancyMode::kErasure, 8, 3},
};

struct ModeResult {
  std::uint32_t floor = 0;
  double analytic_availability = 0.0;
  double storage_x = 0.0;          // bytes per partition / partition size
  double repair_bytes_epoch = 0.0; // replication traffic under churn
  double replicas = 0.0;           // steady-state copies per partition
  double unserved = 0.0;
};

rfh::SweepCell make_cell(const ModeSpec& spec, rfh::Epoch settle,
                         rfh::Epoch measured) {
  rfh::Scenario scenario = rfh::Scenario::paper_random_query();
  scenario.epochs = settle + measured;
  // 0.999 puts the replica floor at exactly 3 copies (f = 0.1), the
  // classic triplication baseline EC is sold against.
  scenario.sim.min_availability = 0.999;
  scenario.sim.redundancy = spec.mode;
  if (spec.mode == rfh::RedundancyMode::kErasure) {
    scenario.sim.ec_k = spec.k;
    scenario.sim.ec_m = spec.m;
  }
  rfh::FaultEvent churn;
  churn.kind = rfh::FaultKind::kChurn;
  churn.at = settle;
  churn.until = settle + measured;
  churn.period = 5;
  churn.kill = 2;
  churn.recover = 2;
  scenario.fault_plan.add(churn);

  rfh::SweepCell cell;
  cell.label = spec.label;
  cell.scenario = scenario;
  cell.policy = rfh::PolicyKind::kRfh;
  return cell;
}

ModeResult summarize(const ModeSpec& spec, const rfh::PolicyRun& run,
                     rfh::Epoch settle, rfh::Epoch measured) {
  const rfh::Scenario probe = make_cell(spec, settle, measured).scenario;
  const rfh::SimConfig& cfg = probe.sim;

  ModeResult result;
  result.floor = cfg.availability_floor();
  result.analytic_availability =
      cfg.redundancy == rfh::RedundancyMode::kErasure
          ? rfh::ec_availability(result.floor, cfg.ec_k, cfg.failure_rate)
          : rfh::availability(result.floor, cfg.failure_rate);

  const double unit = static_cast<double>(cfg.unit_size());
  const double partition = static_cast<double>(cfg.partition_size);
  double replications = 0.0;
  for (rfh::Epoch e = settle; e < settle + measured; ++e) {
    const rfh::EpochMetrics& m = run.series[e];
    result.replicas += m.avg_replicas_per_partition;
    result.storage_x += m.avg_replicas_per_partition * unit / partition;
    result.unserved += m.unserved_fraction;
    replications += m.replications_this_epoch;
  }
  const double n = static_cast<double>(measured);
  result.replicas /= n;
  result.storage_x /= n;
  result.unserved /= n;
  result.repair_bytes_epoch = replications * unit / n;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const unsigned jobs = rfh::bench_jobs(argc, argv);
  const rfh::Epoch settle = smoke ? 20 : 60;
  const rfh::Epoch measured = smoke ? 60 : 240;

  rfh::BenchReport report(smoke ? "redundancy_smoke" : "redundancy");
  std::printf("# Redundancy schemes at equal availability target (0.999), "
              "rolling churn 2 servers / 5 epochs, %u epochs measured\n",
              measured);
  std::printf("%-10s %6s %14s %10s %10s %16s %10s\n", "mode", "floor",
              "availability", "storage_x", "replicas", "repair_B/epoch",
              "unserved");

  std::vector<rfh::SweepCell> cells;
  for (const ModeSpec& spec : kModes) {
    cells.push_back(make_cell(spec, settle, measured));
  }
  rfh::SweepOptions sweep_options;
  sweep_options.jobs = jobs;
  std::vector<rfh::SweepCellResult> results;
  {
    const auto stage = report.stage("sweep_redundancy_modes");
    results = rfh::SweepRunner(sweep_options).run(cells);
  }

  for (std::size_t i = 0; i < std::size(kModes); ++i) {
    const ModeSpec& spec = kModes[i];
    const ModeResult r =
        summarize(spec, results[i].run, settle, measured);
    std::printf("%-10s %6u %14.6f %10.3f %10.2f %16.0f %10.4f\n", spec.label,
                r.floor, r.analytic_availability, r.storage_x, r.replicas,
                r.repair_bytes_epoch, r.unserved);
    const std::string p(spec.label);
    report.add_metric(p + "_floor", static_cast<double>(r.floor));
    report.add_metric(p + "_availability", r.analytic_availability);
    report.add_metric(p + "_storage_x", r.storage_x);
    report.add_metric(p + "_replicas", r.replicas);
    report.add_metric(p + "_repair_bytes_epoch", r.repair_bytes_epoch);
    report.add_metric(p + "_unserved", r.unserved);
  }
  report.write_file();
  return 0;
}
