#include "core/rfh_policy.h"

#include <algorithm>

#include "common/availability.h"
#include "core/selection.h"
#include "exec/parallel_for.h"
#include "telemetry/registry.h"

namespace rfh {

namespace {

/// Explanation skeleton shared by every rule: the smoothed demand and the
/// Table I coefficients in force, plus the copy census. The caller fills
/// rule/observed/threshold for the inequality that actually fired.
DecisionExplanation base_explanation(const PolicyContext& ctx, double q_bar,
                                     std::uint32_t replica_count,
                                     std::uint32_t r_min) {
  DecisionExplanation why;
  why.q_bar = q_bar;
  why.beta = ctx.config.beta;
  why.gamma = ctx.config.gamma;
  why.delta = ctx.config.delta;
  why.mu = ctx.config.mu;
  why.replica_count = replica_count;
  why.r_min = r_min;
  return why;
}

}  // namespace

std::vector<RfhPolicy::HubCandidate> RfhPolicy::hub_candidates(
    const PolicyContext& ctx, PartitionId p, double gamma_threshold,
    bool require_gamma) const {
  std::vector<HubCandidate> out;
  // Only servers with tr > 0 can qualify, and those are exactly the
  // partition's nonzero tr_bar cells — walking them (ascending server id,
  // like the full-axis scan they replace) instead of all S servers makes
  // the decide pass independent of cluster size.
  for (const StatCell& cell : ctx.stats.node_cells(p)) {
    const ServerId sid{cell.server};
    const double tr = cell.ewma;
    if (tr <= 0.0) continue;
    if (!ctx.cluster.alive(sid)) continue;
    if (ctx.cluster.has_replica(p, sid)) continue;
    if (require_gamma && tr < gamma_threshold) continue;
    out.push_back(HubCandidate{sid, tr});
  }
  std::sort(out.begin(), out.end(),
            [](const HubCandidate& a, const HubCandidate& b) {
              if (a.traffic != b.traffic) return a.traffic > b.traffic;
              return a.server < b.server;
            });
  return out;
}

ServerId RfhPolicy::select_in_dc(const PolicyContext& ctx, DatacenterId dc,
                                 PartitionId p) const {
  return options_.erlang_b_selection ? select_server_erlang_b(ctx, dc, p)
                                     : select_server_first_fit(ctx, dc, p);
}

ServerId RfhPolicy::pick_target(const PolicyContext& ctx, PartitionId p,
                                const std::vector<HubCandidate>& hubs) const {
  using Placement = Options::Placement;
  switch (options_.placement) {
    case Placement::kTrafficHub: {
      // Walk hubs in traffic order; the hub's datacenter hosts the copy on
      // its lowest-blocking-probability server.
      for (const HubCandidate& hub : hubs) {
        const DatacenterId dc = ctx.topology.server(hub.server).datacenter;
        const ServerId s = select_in_dc(ctx, dc, p);
        if (s.valid()) return s;
      }
      return ServerId::invalid();
    }
    case Placement::kNearOwner: {
      const ServerId primary = ctx.cluster.primary_of(p);
      const DatacenterId home = ctx.topology.server(primary).datacenter;
      std::vector<DatacenterId> dcs;
      for (const Datacenter& dc : ctx.topology.datacenters()) {
        if (dc.id != home) dcs.push_back(dc.id);
      }
      std::sort(dcs.begin(), dcs.end(),
                [&](DatacenterId a, DatacenterId b) {
                  return ctx.topology.distance_km(home, a) <
                         ctx.topology.distance_km(home, b);
                });
      for (const DatacenterId dc : dcs) {
        const ServerId s = select_in_dc(ctx, dc, p);
        if (s.valid()) return s;
      }
      return select_in_dc(ctx, home, p);
    }
    case Placement::kNearRequester: {
      std::vector<DatacenterId> dcs;
      for (const Datacenter& dc : ctx.topology.datacenters()) {
        dcs.push_back(dc.id);
      }
      std::sort(dcs.begin(), dcs.end(),
                [&](DatacenterId a, DatacenterId b) {
                  return ctx.stats.requester_queries(p, a) >
                         ctx.stats.requester_queries(p, b);
                });
      for (const DatacenterId dc : dcs) {
        const ServerId s = select_in_dc(ctx, dc, p);
        if (s.valid()) return s;
      }
      return ServerId::invalid();
    }
    case Placement::kRandom: {
      const std::size_t n = ctx.topology.datacenter_count();
      const std::size_t start = static_cast<std::size_t>(ctx.rng.uniform(n));
      for (std::size_t i = 0; i < n; ++i) {
        const DatacenterId dc{static_cast<std::uint32_t>((start + i) % n)};
        const ServerId s = select_in_dc(ctx, dc, p);
        if (s.valid()) return s;
      }
      return ServerId::invalid();
    }
  }
  return ServerId::invalid();
}

void RfhPolicy::set_telemetry(MetricRegistry* registry) {
  if (registry == nullptr) {
    decide_calls_ = nullptr;
    proposed_ = {};
    rule_fired_ = {};
    return;
  }
  decide_calls_ = &registry->counter("rfh_policy_decide_calls_total", {},
                                     "Epochs the policy was consulted");
  for (std::size_t k = 0; k < proposed_.size(); ++k) {
    proposed_[k] = &registry->counter(
        "rfh_policy_proposed_total",
        {{"kind", action_kind_name(static_cast<ActionKind>(k))}},
        "Actions proposed before engine validation");
  }
  for (std::size_t r = 0; r < rule_fired_.size(); ++r) {
    rule_fired_[r] = &registry->counter(
        "rfh_policy_rule_fired_total",
        {{"rule", rule_name(static_cast<DecisionRule>(r))}},
        "Decision-tree inequalities that produced an action");
  }
}

void RfhPolicy::count_actions(const Actions& actions) {
  decide_calls_->inc();
  const auto rule_slot = [this](DecisionRule rule) {
    return rule_fired_[static_cast<std::size_t>(rule)];
  };
  proposed_[static_cast<std::size_t>(ActionKind::kReplicate)]->inc(
      static_cast<double>(actions.replications.size()));
  proposed_[static_cast<std::size_t>(ActionKind::kMigrate)]->inc(
      static_cast<double>(actions.migrations.size()));
  proposed_[static_cast<std::size_t>(ActionKind::kSuicide)]->inc(
      static_cast<double>(actions.suicides.size()));
  for (const ReplicateAction& a : actions.replications) {
    rule_slot(a.why.rule)->inc();
  }
  for (const MigrateAction& a : actions.migrations) {
    rule_slot(a.why.rule)->inc();
  }
  for (const SuicideAction& a : actions.suicides) {
    rule_slot(a.why.rule)->inc();
  }
}

Actions RfhPolicy::decide(const PolicyContext& ctx) {
  // Replica mode: Eq. 14's 1 - f^r bound. EC mode: the k-of-n binomial
  // tail, floored at the full k + m stripe.
  const std::uint32_t rmin = ctx.config.availability_floor();
  overload_streak_.resize(ctx.config.partitions, 0);
  if (cold_streak_.size() < ctx.config.partitions) {
    cold_streak_.resize(ctx.config.partitions);
  }

  // The kRandom placement draws from ctx.rng once per decided partition,
  // so its decision sequence *is* the RNG stream order — that ablation
  // stays serial. Every other placement is a pure function of per-
  // partition state, so the scan shards cleanly.
  ThreadPool* pool =
      options_.placement == Options::Placement::kRandom ? nullptr : ctx.pool;

  const std::size_t n = ctx.config.partitions;
  const unsigned shards = shard_count_for(pool, n, /*min_grain=*/64);
  std::vector<Actions> shard_actions(shards);
  parallel_for_shards(
      pool, n, shards, [&](unsigned s, IndexRange range) {
        Actions& out = shard_actions[s];
        for (std::size_t pv = range.begin; pv < range.end; ++pv) {
          decide_partition(ctx, PartitionId{static_cast<std::uint32_t>(pv)},
                           rmin, out);
        }
      });

  // Shard ranges concatenate to the serial partition order, so appending
  // each shard's actions in shard-index order reproduces the serial
  // action list exactly.
  Actions actions = std::move(shard_actions.front());
  for (std::size_t s = 1; s < shard_actions.size(); ++s) {
    Actions& part = shard_actions[s];
    actions.replications.insert(actions.replications.end(),
                                part.replications.begin(),
                                part.replications.end());
    actions.migrations.insert(actions.migrations.end(),
                              part.migrations.begin(), part.migrations.end());
    actions.suicides.insert(actions.suicides.end(), part.suicides.begin(),
                            part.suicides.end());
  }
  if (decide_calls_ != nullptr) count_actions(actions);
  return actions;
}

void RfhPolicy::decide_partition(const PolicyContext& ctx, PartitionId p,
                                 std::uint32_t rmin, Actions& actions) {
  {
    const std::uint32_t pv = p.value();
    const ServerId primary = ctx.cluster.primary_of(p);
    if (!primary.valid()) return;

    const double q_bar = ctx.stats.avg_query(p);
    const std::uint32_t r = ctx.cluster.replica_count(p);

    // --- 1. Availability floor (Eq. 14) --------------------------------
    if (r < rmin) {
      auto hubs = hub_candidates(ctx, p, /*gamma_threshold=*/0.0,
                                 /*require_gamma=*/false);
      ServerId target = pick_target(ctx, p, hubs);
      if (!target.valid()) {
        // No traffic observed yet (cold partition, fresh cluster): fall
        // back to diversity near the owner so the floor is restored even
        // before the first query arrives.
        Options near_owner = options_;
        near_owner.placement = Options::Placement::kNearOwner;
        target = RfhPolicy(near_owner).pick_target(ctx, p, hubs);
      }
      if (target.valid()) {
        DecisionExplanation why = base_explanation(ctx, q_bar, r, rmin);
        why.rule = DecisionRule::kAvailabilityFloor;
        why.observed = static_cast<double>(r);
        why.threshold = static_cast<double>(rmin);
        actions.replications.push_back(ReplicateAction{p, target, why});
      }
      return;  // grow back to the floor before optimizing anything else
    }

    // --- 2. Overload relief (Eqs. 12-13, 16) ----------------------------
    DecisionExplanation overload_why = base_explanation(ctx, q_bar, r, rmin);
    if (holder_overloaded(ctx, p, primary, &overload_why)) {
      ++overload_streak_[pv];
    } else {
      overload_streak_[pv] = 0;
    }
    const bool overloaded =
        overload_streak_[pv] >= options_.overload_streak_epochs;
    bool replicated_this_epoch = false;

    if (overloaded && r < ctx.config.max_replicas_per_partition) {
      auto hubs = hub_candidates(ctx, p, ctx.config.gamma * q_bar,
                                 /*require_gamma=*/true);
      bool forced = false;
      if (hubs.empty()) {
        // Forced relief: availability reached but still too much traffic.
        hubs = hub_candidates(ctx, p, 0.0, /*require_gamma=*/false);
        forced = true;
      }
      if (hubs.empty()) {
        // No forwarding node anywhere carries this partition's traffic:
        // the demand originates at the holder's own datacenter (or every
        // carrier already hosts a copy). Relieve locally — "some replicas
        // are placed on the same datacenter of the primary partition
        // holders, but in different servers" (Section III-C).
        const DatacenterId home = ctx.topology.server(primary).datacenter;
        const ServerId local = select_in_dc(ctx, home, p);
        if (local.valid()) {
          DecisionExplanation why = overload_why;
          why.rule = DecisionRule::kOverloadLocal;
          actions.replications.push_back(ReplicateAction{p, local, why});
          replicated_this_epoch = true;
        }
      }
      if (!hubs.empty()) {
        if (hubs.size() > options_.top_hubs) hubs.resize(options_.top_hubs);
        const ServerId target = pick_target(ctx, p, hubs);
        if (target.valid()) {
          // Migration check: is there a replica outside the top hub
          // datacenters whose relocation clears the Eq. 16 benefit bar?
          ServerId victim;
          double victim_traffic = 0.0;
          if (options_.enable_migration) {
            auto in_top_dcs = [&](DatacenterId dc) {
              return std::any_of(hubs.begin(), hubs.end(),
                                 [&](const HubCandidate& h) {
                                   return ctx.topology.server(h.server)
                                              .datacenter == dc;
                                 });
            };
            for (const Replica& replica : ctx.cluster.replicas_of(p)) {
              if (replica.primary) continue;
              const DatacenterId dc =
                  ctx.topology.server(replica.server).datacenter;
              if (in_top_dcs(dc)) continue;
              const double tr = ctx.stats.node_traffic(p, replica.server);
              // Only relocate replicas doing markedly less work than the
              // hub would give them (cold in the Eq. 15 sense, or well
              // under the hub's traffic): moving an actively-serving
              // replica would just re-create the hole it was filling.
              if (tr > std::max(ctx.config.delta * q_bar,
                                0.3 * hubs.front().traffic)) {
                continue;
              }
              if (!victim.valid() || tr < victim_traffic) {
                victim = replica.server;
                victim_traffic = tr;
              }
            }
          }
          const double mean_tr = ctx.stats.mean_node_traffic(
              p, ctx.cluster.live_server_count());
          if (victim.valid() &&
              hubs.front().traffic - victim_traffic >=
                  ctx.config.mu * mean_tr) {
            DecisionExplanation why = overload_why;
            why.rule = DecisionRule::kMigrationBenefit;
            why.observed = hubs.front().traffic - victim_traffic;
            why.threshold = ctx.config.mu * mean_tr;
            actions.migrations.push_back(
                MigrateAction{p, victim, target, why});
          } else {
            DecisionExplanation why = overload_why;
            why.rule = forced ? DecisionRule::kOverloadForced
                              : DecisionRule::kOverloadHub;
            actions.replications.push_back(ReplicateAction{p, target, why});
          }
          replicated_this_epoch = true;
        }
      }
    }

    // --- 3. Suicide (Eq. 15) --------------------------------------------
    if (options_.enable_suicide && q_bar > 0.0) {
      // This partition's cold-streak row, sorted by server id — the only
      // cross-epoch policy state the suicide rule keeps.
      std::vector<ColdStreak>& row = cold_streak_[pv];
      const auto row_find = [&row](ServerId s) {
        return std::lower_bound(row.begin(), row.end(), s.value(),
                                [](const ColdStreak& c, std::uint32_t v) {
                                  return c.server < v;
                                });
      };
      const auto row_erase = [&](ServerId s) {
        const auto it = row_find(s);
        if (it != row.end() && it->server == s.value()) row.erase(it);
      };
      std::uint32_t remaining = r;
      std::uint32_t done = 0;
      for (const Replica& replica : ctx.cluster.replicas_of(p)) {
        if (replica.primary) continue;
        const double tr = ctx.stats.node_traffic(p, replica.server);
        if (tr > ctx.config.delta * q_bar) {
          row_erase(replica.server);
          continue;
        }
        auto it = row_find(replica.server);
        if (it == row.end() || it->server != replica.server.value()) {
          it = row.insert(it, ColdStreak{replica.server.value(), 0});
        }
        const std::uint32_t streak = ++it->epochs;
        if (replicated_this_epoch || done >= options_.max_suicides_per_epoch ||
            remaining <= rmin || streak < options_.cold_streak_epochs) {
          continue;  // cold, but not removable (yet)
        }
        DecisionExplanation why = base_explanation(ctx, q_bar, r, rmin);
        why.rule = DecisionRule::kSuicideCold;
        why.observed = tr;
        why.threshold = ctx.config.delta * q_bar;
        actions.suicides.push_back(SuicideAction{p, replica.server, why});
        row.erase(row_find(replica.server));
        --remaining;
        ++done;
      }
    }
  }
}

}  // namespace rfh
