file(REMOVE_RECURSE
  "CMakeFiles/rfh_workload.dir/generator.cpp.o"
  "CMakeFiles/rfh_workload.dir/generator.cpp.o.d"
  "CMakeFiles/rfh_workload.dir/trace.cpp.o"
  "CMakeFiles/rfh_workload.dir/trace.cpp.o.d"
  "librfh_workload.a"
  "librfh_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfh_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
