# Empty dependencies file for rfh_routing.
# This may be replaced when dependencies are built.
