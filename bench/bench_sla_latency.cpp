// Extension experiment — tail-latency curves under streaming load.
//
// The paper's introduction motivates RFH with Amazon's SLA ("a response
// within 300 ms for 99.9 % of its requests") but never plots latency.
// This bench closes the loop with the streaming layer (src/stream/):
// open-loop timestamped arrivals queue at the serving servers (M/D/c
// with the (1 + cv^2) M/G/c correction, bounded waiting room), and we
// plot end-to-end p50/p99/p99.9 — routing plus queueing plus blocking
// penalty — per requester datacenter, as the offered load scales from
// half the Table I rate to 4x it, for RFH against all three baselines.
//
// Output: one CSV block per load factor (rows = requester DC + merged,
// columns = policy x percentile), plus BENCH_sla_latency.json with the
// merged tail metrics per (policy, load) for scripts/bench_diff.py.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_args.h"
#include "bench_report.h"
#include "common/histogram.h"
#include "harness/runner.h"
#include "stream/stream_sim.h"

namespace {

constexpr double kLoadFactors[] = {0.5, 1.0, 2.0, 4.0};
constexpr rfh::PolicyKind kPolicies[] = {
    rfh::PolicyKind::kRequest, rfh::PolicyKind::kOwner,
    rfh::PolicyKind::kRandom, rfh::PolicyKind::kRfh};
constexpr double kBaseRate = 300.0;  // Table I lambda
constexpr rfh::Epoch kEpochs = 60;

struct PolicyTails {
  rfh::PolicyKind policy;
  // Cumulative per-requester-DC latency distributions plus the merge.
  std::vector<rfh::Histogram> by_dc;
  rfh::Histogram merged;
  // The nine per-epoch stream fields, accumulated over the run: counter
  // sums, the run-max queue depth, the served-weighted wait mean, and
  // arrival-weighted means of the per-epoch latency percentiles.
  double arrivals = 0.0;
  double served = 0.0;
  double blocked = 0.0;
  double dropped = 0.0;
  std::uint32_t max_queue_depth = 0;
  double wait_mean_ms = 0.0;
  double epoch_p50_ms = 0.0;
  double epoch_p99_ms = 0.0;
  double epoch_p999_ms = 0.0;
};

/// Drive one policy through the stream scenario and keep the cumulative
/// latency histograms (run_policy hides the StreamSimulator, and the
/// curves here need its per-DC distributions).
PolicyTails run_stream(const rfh::Scenario& scenario, rfh::PolicyKind kind) {
  PolicyTails out;
  out.policy = kind;
  auto sim = rfh::make_simulation(scenario, kind, rfh::RfhPolicy::Options{});
  rfh::StreamSimulator stream(sim->world(), nullptr, scenario.stream,
                              scenario.sim.seed);
  sim->set_flow_log(&stream.flow_log());
  double wait_weight = 0.0;
  double tail_weight = 0.0;
  for (rfh::Epoch e = 0; e < scenario.epochs; ++e) {
    const rfh::EpochReport report = sim->step();
    const rfh::StreamEpochStats stats = stream.process_epoch(*sim, report);
    out.arrivals += stats.arrivals;
    out.served += stats.served;
    out.blocked += stats.blocked;
    out.dropped += stats.dropped;
    out.max_queue_depth = std::max(out.max_queue_depth, stats.max_queue_depth);
    out.wait_mean_ms += stats.mean_wait_ms * stats.served;
    wait_weight += stats.served;
    out.epoch_p50_ms += stats.p50_ms * stats.arrivals;
    out.epoch_p99_ms += stats.p99_ms * stats.arrivals;
    out.epoch_p999_ms += stats.p999_ms * stats.arrivals;
    tail_weight += stats.arrivals;
  }
  if (wait_weight > 0.0) out.wait_mean_ms /= wait_weight;
  if (tail_weight > 0.0) {
    out.epoch_p50_ms /= tail_weight;
    out.epoch_p99_ms /= tail_weight;
    out.epoch_p999_ms /= tail_weight;
  }
  const std::size_t dcs = sim->topology().datacenter_count();
  out.by_dc.reserve(dcs);
  for (std::size_t d = 0; d < dcs; ++d) {
    out.by_dc.push_back(
        stream.dc_latency(rfh::DatacenterId{static_cast<std::uint32_t>(d)}));
  }
  out.merged = stream.merged_latency();
  return out;
}

void print_block(double load, const std::vector<std::string>& dc_names,
                 const std::vector<PolicyTails>& tails) {
  std::printf("# SLA: end-to-end latency percentiles (ms), load=%.1fx\n",
              load);
  std::printf("dc");
  for (const PolicyTails& t : tails) {
    const std::string name(rfh::policy_name(t.policy));
    std::printf(",%s_p50,%s_p99,%s_p999", name.c_str(), name.c_str(),
                name.c_str());
  }
  std::printf("\n");
  for (std::size_t d = 0; d <= dc_names.size(); ++d) {
    const bool merged = d == dc_names.size();
    std::printf("%s", merged ? "ALL" : dc_names[d].c_str());
    for (const PolicyTails& t : tails) {
      const rfh::Histogram& h = merged ? t.merged : t.by_dc[d];
      std::printf(",%.3f,%.3f,%.3f", h.percentile(0.5), h.percentile(0.99),
                  h.percentile(0.999));
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  (void)rfh::bench_jobs(argc, argv);  // runs are sequential; flag accepted
  rfh::BenchReport report("sla_latency");

  rfh::Scenario base = rfh::Scenario::paper_random_query();
  base.workload = rfh::WorkloadKind::kStream;
  base.epochs = kEpochs;

  // Requester-DC names straight from the world the runs will build.
  std::vector<std::string> dc_names;
  {
    const auto sim =
        rfh::make_simulation(base, rfh::PolicyKind::kRfh,
                             rfh::RfhPolicy::Options{});
    for (std::size_t d = 0; d < sim->topology().datacenter_count(); ++d) {
      dc_names.push_back(
          sim->topology()
              .datacenter(rfh::DatacenterId{static_cast<std::uint32_t>(d)})
              .name);
    }
  }

  for (const double load : kLoadFactors) {
    char stage_name[32];
    std::snprintf(stage_name, sizeof stage_name, "load_%.1fx", load);
    const auto stage = report.stage(stage_name);
    rfh::Scenario scenario = base;
    scenario.stream.arrival_rate = kBaseRate * load;
    std::vector<PolicyTails> tails;
    tails.reserve(std::size(kPolicies));
    for (const rfh::PolicyKind kind : kPolicies) {
      tails.push_back(run_stream(scenario, kind));
    }
    print_block(load, dc_names, tails);
    for (const PolicyTails& t : tails) {
      const std::string prefix =
          std::string(rfh::policy_name(t.policy)) + "_" + stage_name;
      report.add_metric(prefix + "_p50_ms", t.merged.percentile(0.5));
      report.add_metric(prefix + "_p99_ms", t.merged.percentile(0.99));
      report.add_metric(prefix + "_p999_ms", t.merged.percentile(0.999));
      report.add_metric(prefix + "_drop_fraction",
                        t.arrivals > 0.0 ? t.dropped / t.arrivals : 0.0);
      // The nine stream fields, so bench_diff can compare stream runs.
      report.add_metric(prefix + "_stream_arrivals", t.arrivals);
      report.add_metric(prefix + "_stream_served", t.served);
      report.add_metric(prefix + "_stream_blocked", t.blocked);
      report.add_metric(prefix + "_stream_dropped", t.dropped);
      report.add_metric(prefix + "_stream_max_queue_depth",
                        static_cast<double>(t.max_queue_depth));
      report.add_metric(prefix + "_stream_wait_mean_ms", t.wait_mean_ms);
      report.add_metric(prefix + "_stream_p50_ms", t.epoch_p50_ms);
      report.add_metric(prefix + "_stream_p99_ms", t.epoch_p99_ms);
      report.add_metric(prefix + "_stream_p999_ms", t.epoch_p999_ms);
      // Per-requester-DC tail summaries (bench_diff collapses these into
      // one worst-DC row per group).
      for (std::size_t d = 0; d < t.by_dc.size(); ++d) {
        report.add_metric(prefix + "_dc_" + dc_names[d] + "_p99_ms",
                          t.by_dc[d].percentile(0.99));
      }
    }
  }

  report.write_file();
  return 0;
}
