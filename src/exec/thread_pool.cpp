#include "exec/thread_pool.h"

#include <algorithm>

namespace rfh {

namespace {

/// Which pool (if any) the current thread is a worker of, and its index.
/// Lets submit() route nested submissions to the worker's own deque and
/// run_one() honour the own-deque-first steal order.
thread_local const ThreadPool* tl_pool = nullptr;
thread_local unsigned tl_worker = ~0u;

}  // namespace

unsigned ThreadPool::default_jobs() noexcept {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned threads) {
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    // Lock orders the store against workers between their last failed
    // dequeue and their wait, so the notify cannot be missed.
    const std::lock_guard<std::mutex> lock(sleep_mutex_);
    stop_.store(true, std::memory_order_release);
  }
  wakeup_.notify_all();
  for (std::thread& thread : threads_) thread.join();
  // Workers drain every queue before exiting, so nothing is left queued.
}

void ThreadPool::enqueue(Task task) {
  if (tl_pool == this) {
    Worker& own = *workers_[tl_worker];
    const std::lock_guard<std::mutex> lock(own.mutex);
    own.deque.push_back(std::move(task));
  } else {
    const std::lock_guard<std::mutex> lock(injector_mutex_);
    injector_.push_back(std::move(task));
  }
  queued_.fetch_add(1, std::memory_order_release);
  {
    // Empty critical section: a worker that just saw queued_ == 0 is
    // either before its wait (will re-check under the lock) or inside it
    // (will get the notify).
    const std::lock_guard<std::mutex> lock(sleep_mutex_);
  }
  wakeup_.notify_one();
}

bool ThreadPool::try_dequeue(unsigned self, Task& out) {
  // 1. The caller's own deque, newest first (depth-first nested work).
  if (self != ~0u) {
    Worker& own = *workers_[self];
    const std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.deque.empty()) {
      out = std::move(own.deque.back());
      own.deque.pop_back();
      return true;
    }
  }
  // 2. The shared injector, submission order.
  {
    const std::lock_guard<std::mutex> lock(injector_mutex_);
    if (!injector_.empty()) {
      out = std::move(injector_.front());
      injector_.pop_front();
      return true;
    }
  }
  // 3. Steal from a sibling, oldest first (the opposite end the owner
  // uses, keeping contention at opposite ends of the deque).
  for (std::size_t offset = 0; offset < workers_.size(); ++offset) {
    const std::size_t victim =
        (self == ~0u ? offset : (self + 1 + offset) % workers_.size());
    if (victim == self) continue;
    Worker& other = *workers_[victim];
    const std::lock_guard<std::mutex> lock(other.mutex);
    if (!other.deque.empty()) {
      out = std::move(other.deque.front());
      other.deque.pop_front();
      stolen_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ThreadPool::run_task(Task& task) {
  running_.fetch_add(1, std::memory_order_acq_rel);
  queued_.fetch_sub(1, std::memory_order_acq_rel);
  const auto start = std::chrono::steady_clock::now();
  task();  // packaged_task: exceptions land in the future, never here
  const auto elapsed = std::chrono::steady_clock::now() - start;
  busy_ns_.fetch_add(
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()),
      std::memory_order_relaxed);
  executed_.fetch_add(1, std::memory_order_relaxed);
  running_.fetch_sub(1, std::memory_order_acq_rel);
}

bool ThreadPool::run_one() {
  const unsigned self = (tl_pool == this) ? tl_worker : ~0u;
  Task task;
  if (!try_dequeue(self, task)) return false;
  run_task(task);
  return true;
}

void ThreadPool::wait_idle() {
  using namespace std::chrono_literals;
  while (queued_.load(std::memory_order_acquire) > 0 ||
         running_.load(std::memory_order_acquire) > 0) {
    if (!run_one()) std::this_thread::sleep_for(50us);
  }
}

void ThreadPool::worker_loop(unsigned index) {
  tl_pool = this;
  tl_worker = index;
  for (;;) {
    Task task;
    if (try_dequeue(index, task)) {
      run_task(task);
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    if (stop_.load(std::memory_order_acquire) &&
        queued_.load(std::memory_order_acquire) == 0) {
      return;
    }
    wakeup_.wait(lock, [this] {
      return stop_.load(std::memory_order_acquire) ||
             queued_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire) &&
        queued_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

ThreadPool::Stats ThreadPool::stats() const noexcept {
  return Stats{executed_.load(std::memory_order_relaxed),
               stolen_.load(std::memory_order_relaxed),
               busy_ns_.load(std::memory_order_relaxed)};
}

}  // namespace rfh
