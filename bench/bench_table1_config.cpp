// Table I — "Environment and Parameters Setting".
//
// Prints the simulator's actual defaults next to the paper's values so a
// reader can diff them at a glance. Everything is read from the live
// configuration structs (not re-typed), so drift is impossible.
#include <cstdio>

#include "bench_args.h"
#include "harness/scenario.h"
#include "topology/world.h"

int main(int argc, char** argv) {
  // No simulation runs here; --jobs is accepted for the uniform bench
  // interface.
  (void)rfh::bench_jobs(argc, argv);
  const rfh::Scenario s = rfh::Scenario::paper_random_query();
  const rfh::WorldOptions& w = s.world;
  const rfh::SimConfig& c = s.sim;

  std::printf("# Table I: environment and parameter setting\n");
  std::printf("%-34s %-22s %s\n", "parameter", "paper", "this build");
  auto row = [](const char* name, const char* paper, const char* ours) {
    std::printf("%-34s %-22s %s\n", name, paper, ours);
  };
  char buf[128];

  std::snprintf(buf, sizeof buf, "%.0f-%.0f GB (heterogeneous)",
                static_cast<double>(w.storage_capacity_lo) / (1 << 30),
                static_cast<double>(w.storage_capacity_hi) / (1 << 30));
  row("Max server storage capacity", "10GB", buf);

  std::snprintf(buf, sizeof buf, "%.0f%%", 100.0 * c.storage_limit);
  row("Server storage rate limit", "70%", buf);

  std::snprintf(buf, sizeof buf, "%.0f MB/epoch",
                static_cast<double>(w.replication_bandwidth) / (1 << 20));
  row("Replication bandwidth", "300MB/epoch", buf);

  std::snprintf(buf, sizeof buf, "%.0f MB/epoch",
                static_cast<double>(w.migration_bandwidth) / (1 << 20));
  row("Migration bandwidth", "100MB/epoch", buf);

  row("Epoch", "10 seconds", "10 seconds (1 step)");
  row("Queries per epoch", "Poisson(lambda=300)", "Poisson(lambda=300)");

  std::snprintf(buf, sizeof buf, "%u", c.partitions);
  row("Partitions", "64", buf);

  std::snprintf(buf, sizeof buf, "%llu K",
                static_cast<unsigned long long>(c.partition_size / 1024));
  row("Partition size", "512K", buf);

  std::snprintf(buf, sizeof buf, "%.1f", c.failure_rate);
  row("Failure rate", "0.1", buf);
  std::snprintf(buf, sizeof buf, "%.1f", c.min_availability);
  row("Minimum availability", "0.8", buf);
  std::snprintf(buf, sizeof buf, "%.1f", c.alpha);
  row("alpha", "0.2", buf);
  std::snprintf(buf, sizeof buf, "%.0f", c.beta);
  row("beta", "2", buf);
  std::snprintf(buf, sizeof buf, "%.1f", c.gamma);
  row("gamma", "1.5", buf);
  std::snprintf(buf, sizeof buf, "%.1f", c.delta);
  row("delta", "0.2", buf);
  std::snprintf(buf, sizeof buf, "%.0f", c.mu);
  row("mu", "1", buf);

  // World shape (Section III-A prose, not in the table itself).
  const rfh::World world = rfh::build_paper_world(w);
  std::printf("\n# world: %zu datacenters, %zu servers "
              "(%u room(s) x %u rack(s) x %u server(s) per DC)\n",
              world.topology.datacenter_count(), world.topology.server_count(),
              w.rooms_per_datacenter, w.racks_per_room, w.servers_per_rack);
  for (const rfh::Datacenter& dc : world.topology.datacenters()) {
    std::printf("#   %c: %s-%s (%zu servers)\n",
                static_cast<char>('A' + dc.id.value()),
                dc.country_code.c_str(), dc.name.c_str(), dc.servers.size());
  }
  return 0;
}
