#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "core/rfh_policy.h"
#include "metrics/collector.h"
#include "metrics/csv.h"
#include "metrics/imbalance.h"
#include "metrics/utilization.h"
#include "test_util.h"

namespace rfh {
namespace {

constexpr double kCap = 2.0;

TEST(Utilization, ZeroWithoutCopies) {
  SimConfig config;
  config.partitions = 2;
  auto sim = test::make_fixed_sim({}, std::make_unique<test::NullPolicy>(),
                                  config, test::uniform_world_options(kCap));
  sim->step();
  // Only primaries exist; with include_primaries=false there is nothing
  // to average over.
  EXPECT_DOUBLE_EQ(
      replica_utilization(sim->traffic(), sim->cluster(), sim->topology()),
      0.0);
}

TEST(Utilization, SaturatedReplicaScoresOne) {
  SimConfig config;
  config.partitions = 1;
  const PartitionId p{0};
  auto probe = test::make_fixed_sim({}, std::make_unique<test::NullPolicy>(),
                                    config, test::uniform_world_options(kCap));
  const ServerId holder = probe->cluster().primary_of(p);
  const DatacenterId holder_dc = probe->topology().server(holder).datacenter;
  ServerId sibling;
  for (const ServerId s : probe->topology().servers_in(holder_dc)) {
    if (s != holder) {
      sibling = s;
      break;
    }
  }
  Actions e0;
  e0.replications.push_back(ReplicateAction{p, sibling, {}});
  auto sim = test::make_fixed_sim(
      {QueryFlow{p, holder_dc, 10.0}},
      std::make_unique<test::ScriptedPolicy>(std::vector<Actions>{e0}),
      config, test::uniform_world_options(kCap));
  sim->step();
  sim->step();
  // The non-primary sibling absorbs its full capacity -> utilization 1.
  EXPECT_DOUBLE_EQ(copy_utilization(sim->traffic(), sim->topology(), p,
                                    sibling),
                   1.0);
  EXPECT_DOUBLE_EQ(
      replica_utilization(sim->traffic(), sim->cluster(), sim->topology()),
      1.0);
  // Including primaries averages in the saturated holder too.
  UtilizationOptions with_primaries;
  with_primaries.include_primaries = true;
  EXPECT_DOUBLE_EQ(replica_utilization(sim->traffic(), sim->cluster(),
                                       sim->topology(), with_primaries),
                   1.0);
}

TEST(Utilization, AlwaysWithinUnitInterval) {
  SimConfig config;
  config.partitions = 8;
  WorkloadParams params;
  params.partitions = 8;
  params.datacenters = 10;
  auto sim = std::make_unique<Simulation>(
      build_paper_world(), config, std::make_unique<UniformWorkload>(params),
      std::make_unique<RfhPolicy>());
  for (int e = 0; e < 30; ++e) {
    sim->step();
    const double u =
        replica_utilization(sim->traffic(), sim->cluster(), sim->topology());
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

TEST(Imbalance, ZeroForPerfectlyEvenCopies) {
  // Two copies in the holder's datacenter splitting demand equally is not
  // achievable exactly (sequential fill), so test the degenerate case:
  // all copies idle -> stddev 0.
  SimConfig config;
  config.partitions = 4;
  auto sim = test::make_fixed_sim({}, std::make_unique<test::NullPolicy>(),
                                  config, test::uniform_world_options(kCap));
  sim->step();
  EXPECT_DOUBLE_EQ(load_imbalance(sim->traffic(), sim->cluster()), 0.0);
  EXPECT_DOUBLE_EQ(load_imbalance_cv(sim->traffic(), sim->cluster()), 0.0);
}

TEST(Imbalance, SkewedServingRaisesTheStatistic) {
  SimConfig config;
  config.partitions = 2;
  const PartitionId hot{0};
  auto sim = test::make_fixed_sim({QueryFlow{hot, DatacenterId{4}, 2.0}},
                                  std::make_unique<test::NullPolicy>(),
                                  config, test::uniform_world_options(kCap));
  sim->step();
  // One primary saturated, one idle: nonzero spread.
  EXPECT_GT(load_imbalance(sim->traffic(), sim->cluster()), 0.0);
  EXPECT_GT(load_imbalance_servers(sim->traffic(), sim->cluster()), 0.0);
}

TEST(Collector, FieldsAreConsistentWithTheSimulation) {
  SimConfig config;
  config.partitions = 8;
  WorkloadParams params;
  params.partitions = 8;
  params.datacenters = 10;
  auto sim = std::make_unique<Simulation>(
      build_paper_world(), config, std::make_unique<UniformWorkload>(params),
      std::make_unique<RfhPolicy>());
  MetricsCollector collector;
  std::uint32_t last_migrations = 0;
  double last_cost = 0.0;
  for (int e = 0; e < 40; ++e) {
    const EpochReport report = sim->step();
    const EpochMetrics m = collector.collect(*sim, report);
    EXPECT_EQ(m.epoch, report.epoch);
    EXPECT_EQ(m.total_replicas, sim->cluster().total_replicas());
    EXPECT_NEAR(m.avg_replicas_per_partition, m.total_replicas / 8.0, 1e-12);
    // Cumulative series are monotone.
    EXPECT_GE(m.migrations_total, last_migrations);
    EXPECT_GE(m.replication_cost_total, last_cost - 1e-12);
    last_migrations = m.migrations_total;
    last_cost = m.replication_cost_total;
    if (m.migrations_total > 0) {
      EXPECT_NEAR(m.migration_cost_avg,
                  m.migration_cost_total / m.migrations_total, 1e-9);
    }
  }
  EXPECT_EQ(collector.series().size(), 40u);
  EXPECT_GT(collector.tail_mean(&EpochMetrics::utilization, 10), 0.0);
}

TEST(Collector, TailMeanHandlesShortSeries) {
  MetricsCollector collector;
  EXPECT_DOUBLE_EQ(collector.tail_mean(&EpochMetrics::utilization, 10), 0.0);
}

TEST(Csv, ExtractPullsTheRightField) {
  std::vector<EpochMetrics> series(3);
  series[0].path_length = 1.0;
  series[1].path_length = 2.0;
  series[2].path_length = 3.0;
  series[1].total_replicas = 7;
  const auto path = extract(series, &EpochMetrics::path_length);
  EXPECT_EQ(path, (std::vector<double>{1.0, 2.0, 3.0}));
  const auto replicas = extract_u32(series, &EpochMetrics::total_replicas);
  EXPECT_EQ(replicas, (std::vector<double>{0.0, 7.0, 0.0}));
}

TEST(Csv, WritesHeaderAndRows) {
  std::ostringstream out;
  write_csv(out, {NamedSeries{"A", {1.0, 2.0}}, NamedSeries{"B", {3.0}}});
  const std::string text = out.str();
  EXPECT_NE(text.find("epoch,A,B"), std::string::npos);
  EXPECT_NE(text.find("0,1.0000,3.0000"), std::string::npos);
  // Ragged series leave the missing cell empty.
  EXPECT_NE(text.find("1,2.0000,"), std::string::npos);
}

}  // namespace
}  // namespace rfh
