file(REMOVE_RECURSE
  "CMakeFiles/rfh_consistency.dir/tracker.cpp.o"
  "CMakeFiles/rfh_consistency.dir/tracker.cpp.o.d"
  "librfh_consistency.a"
  "librfh_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfh_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
