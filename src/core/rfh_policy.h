// The RFH decision tree (paper Fig. 2 and Section II-E).
//
// Every epoch, every partition's virtual node runs:
//
//  1. Availability floor (Eq. 14): if the copy count is below r_min, grow
//     a copy at the most-forwarding node "even if all the nodes are not
//     overloaded".
//  2. Overload relief: if the primary's smoothed traffic satisfies
//     Eq. 12 (tr >= beta * q_bar), gather the traffic hubs — forwarding
//     servers satisfying Eq. 13 (tr >= gamma * q_bar) that have storage
//     and bandwidth capacity — and consider the top 3 by traffic. If no
//     server crosses gamma, relief is forced using the top forwarders
//     anyway (the decision tree's "force the scheme to start relieving
//     load" branch). If some existing replica sits outside the top-3 and
//     the migration benefit (Eq. 16: tr_hub - tr_replica >= mu * mean
//     traffic) holds, migrate it to the hub; otherwise replicate a new
//     copy there. Inside the hub datacenter the physical server with the
//     lowest Erlang-B blocking probability is chosen (Eqs. 18-19).
//  3. Suicide (Eq. 15): a replica whose smoothed traffic fell below
//     delta * q_bar removes itself if availability stays satisfied
//     without it.
//
// Options expose ablation knobs (placement family, Erlang-B vs. random
// server choice, migration/suicide toggles) used by bench_ablation_*.
#pragma once

#include <array>
#include <string_view>
#include <vector>

#include "obs/events.h"
#include "sim/policy.h"

namespace rfh {

class Counter;

class RfhPolicy final : public ReplicationPolicy {
 public:
  struct Options {
    bool enable_migration = true;
    bool enable_suicide = true;
    /// Use Erlang-B server selection inside the target datacenter; when
    /// false, fall back to first-fit (ablation: value of Eq. 18).
    bool erlang_b_selection = true;
    /// How the target datacenter is chosen (ablation: value of
    /// traffic-oriented placement while keeping the rest of RFH fixed).
    enum class Placement { kTrafficHub, kNearOwner, kNearRequester, kRandom };
    Placement placement = Placement::kTrafficHub;
    /// Replication requests considered by the holder ("choose a node
    /// among the 3 nodes with the largest amount of traffic").
    std::uint32_t top_hubs = 3;
    /// At most this many suicides per partition per epoch.
    std::uint32_t max_suicides_per_epoch = 1;
    /// Hysteresis: the holder must satisfy Eq. 12 for this many
    /// consecutive epochs before relief starts, and a replica must sit
    /// below the Eq. 15 threshold for this many consecutive epochs before
    /// it suicides. One noisy Poisson epoch passing the fast EWMA
    /// (alpha = 0.2 weights the newest sample at 0.8) would otherwise
    /// cause replicate/suicide churn in steady state.
    std::uint32_t overload_streak_epochs = 3;
    std::uint32_t cold_streak_epochs = 6;
  };

  RfhPolicy() = default;
  explicit RfhPolicy(const Options& options) : options_(options) {}

  [[nodiscard]] std::string_view name() const override { return "RFH"; }
  [[nodiscard]] Actions decide(const PolicyContext& ctx) override;

  /// Export decision counters (rfh_policy_*): decide calls, proposals by
  /// kind, and which inequality fired per action. nullptr detaches.
  void set_telemetry(MetricRegistry* registry) override;

  [[nodiscard]] const Options& options() const noexcept { return options_; }

 private:
  struct HubCandidate {
    ServerId server;
    double traffic = 0.0;
  };

  /// Forwarding servers not hosting p, sorted by smoothed traffic
  /// descending (id ascending on ties). When `require_gamma`, only servers
  /// crossing the Eq. 13 threshold are returned. Scans the partition's
  /// nonzero tr_bar cells, not the full server axis — only servers with
  /// positive smoothed traffic can qualify.
  [[nodiscard]] std::vector<HubCandidate> hub_candidates(
      const PolicyContext& ctx, PartitionId p, double gamma_threshold,
      bool require_gamma) const;

  /// Run the Fig. 2 decision tree for one partition, appending into
  /// `out`. Touches only [p]-indexed policy state (overload/cold
  /// streaks), so the decide scan shards partitions across a pool with
  /// each shard appending to its own Actions — concatenated in shard
  /// order, the result is byte-identical to the serial scan.
  void decide_partition(const PolicyContext& ctx, PartitionId p,
                        std::uint32_t rmin, Actions& out);

  /// Pick the target server for a new copy of p according to the
  /// configured placement; invalid if nothing is feasible.
  [[nodiscard]] ServerId pick_target(
      const PolicyContext& ctx, PartitionId p,
      const std::vector<HubCandidate>& hubs) const;

  [[nodiscard]] ServerId select_in_dc(const PolicyContext& ctx,
                                      DatacenterId dc, PartitionId p) const;

  /// Count `actions` into the resolved registry handles.
  void count_actions(const Actions& actions);

  Options options_;
  // Registry-owned counters (null when telemetry is detached).
  Counter* decide_calls_ = nullptr;
  std::array<Counter*, 3> proposed_{};  // indexed by ActionKind
  std::array<Counter*, kDecisionRuleCount> rule_fired_{};
  /// Consecutive epochs each partition's holder has been overloaded.
  std::vector<std::uint32_t> overload_streak_;
  /// Consecutive epochs a copy has been cold. Kept per partition (sorted
  /// by server id) so the sharded decide scan mutates only shard-owned
  /// rows.
  struct ColdStreak {
    std::uint32_t server = 0;
    std::uint32_t epochs = 0;
  };
  std::vector<std::vector<ColdStreak>> cold_streak_;  // [p]
};

}  // namespace rfh
