# Empty dependencies file for link_failure_test.
# This may be replaced when dependencies are built.
