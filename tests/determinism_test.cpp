// Differential determinism suite for the parallel execution subsystem
// and the ring/routing hot-path caches.
//
// The guarantees locked down here, byte for byte:
//   * a --jobs=8 sweep produces output byte-identical to the serial
//     (--jobs=1) sweep — sweep_results_json, every cell's telemetry dump
//     and every cell's event trace — including under a rolling-churn
//     FaultPlan;
//   * run_comparison_pooled == run_comparison_sequential for every jobs
//     value;
//   * the route memo (sim/config.h route_memo) and the flat-ring
//     successor cache are pure caches: toggling them never changes a
//     single series value, with or without failures mutating placement
//     mid-run;
//   * the iterator-invalidation regression: a policy issuing suicide +
//     migrate for the same partition in the same epoch runs identically
//     with the memo on and off, under the invariant checker.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/case.h"
#include "exec/sweep.h"
#include "fault/invariants.h"
#include "fault/plan.h"
#include "harness/runner.h"
#include "metrics/collector.h"
#include "sim/actions.h"
#include "sim/policy.h"
#include "test_util.h"
#include "workload/generator.h"

namespace rfh {
namespace {

std::vector<SweepCell> mixed_grid() {
  std::vector<SweepCell> cells;
  const WorkloadKind workloads[] = {WorkloadKind::kUniform,
                                    WorkloadKind::kFlashCrowd};
  const PolicyKind policies[] = {PolicyKind::kRequest, PolicyKind::kOwner,
                                 PolicyKind::kRandom, PolicyKind::kRfh};
  for (const std::uint64_t seed : {11ull, 23ull}) {
    for (const WorkloadKind workload : workloads) {
      for (const PolicyKind policy : policies) {
        SweepCell cell;
        cell.label = "seed=" + std::to_string(seed);
        cell.scenario = Scenario::paper_random_query();
        cell.scenario.workload = workload;
        cell.scenario.epochs = 12;
        cell.scenario.sim.seed = seed;
        cell.scenario.world.seed = seed;
        cell.policy = policy;
        cells.push_back(std::move(cell));
      }
    }
  }
  return cells;
}

/// Run the grid at the given jobs count with full collection.
std::vector<SweepCellResult> run_grid(const std::vector<SweepCell>& cells,
                                      unsigned jobs) {
  SweepOptions options;
  options.jobs = jobs;
  options.collect_metrics = true;
  options.collect_traces = true;
  options.collect_timeline = true;
  return SweepRunner(options).run(cells);
}

void expect_byte_identical(const std::vector<SweepCellResult>& serial,
                           const std::vector<SweepCellResult>& parallel) {
  ASSERT_EQ(serial.size(), parallel.size());
  EXPECT_EQ(sweep_results_json(serial), sweep_results_json(parallel));
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].index, parallel[i].index);
    EXPECT_EQ(series_digest(serial[i].run.series),
              series_digest(parallel[i].run.series))
        << "cell " << i;
    EXPECT_EQ(serial[i].run.killed, parallel[i].run.killed) << "cell " << i;
    // Telemetry and traces are per-cell, so parallel execution must not
    // perturb a single byte of either.
    EXPECT_EQ(serial[i].metrics_json, parallel[i].metrics_json)
        << "cell " << i;
    EXPECT_EQ(serial[i].trace_jsonl, parallel[i].trace_jsonl) << "cell " << i;
    // The causal flight record and the SLO breach sequence are part of
    // the determinism contract too: contents (not just digests) must be
    // byte-identical across --jobs.
    EXPECT_EQ(serial[i].timeline_digest, parallel[i].timeline_digest)
        << "cell " << i;
    EXPECT_EQ(serial[i].timeline_jsonl, parallel[i].timeline_jsonl)
        << "cell " << i;
    EXPECT_EQ(serial[i].run.slo_breaches, parallel[i].run.slo_breaches)
        << "cell " << i;
  }
}

TEST(SweepDeterminismTest, ParallelSweepIsByteIdenticalToSerial) {
  const std::vector<SweepCell> cells = mixed_grid();
  expect_byte_identical(run_grid(cells, 1), run_grid(cells, 8));
}

TEST(SweepDeterminismTest, RepeatedParallelSweepsAgree) {
  std::vector<SweepCell> cells = mixed_grid();
  cells.resize(6);
  expect_byte_identical(run_grid(cells, 8), run_grid(cells, 8));
}

TEST(SweepDeterminismTest, ChurnFaultPlanSweepIsByteIdenticalToSerial) {
  // Rolling churn: one kill + one recovery every 3 epochs for the whole
  // run, exercising ring membership changes, promotions and the route
  // memo invalidation path inside every cell.
  std::vector<SweepCell> cells;
  for (const std::uint64_t seed : {5ull, 6ull, 7ull}) {
    SweepCell cell;
    cell.label = "churn seed=" + std::to_string(seed);
    cell.scenario = Scenario::paper_random_query();
    cell.scenario.epochs = 30;
    cell.scenario.sim.seed = seed;
    cell.scenario.world.seed = seed;
    FaultEvent churn;
    churn.kind = FaultKind::kChurn;
    churn.at = 2;
    churn.until = 30;
    churn.period = 3;
    churn.kill = 2;
    churn.recover = 1;
    cell.scenario.fault_plan.add(churn);
    cell.policy = PolicyKind::kRfh;
    cells.push_back(std::move(cell));
  }
  const std::vector<SweepCellResult> serial = run_grid(cells, 1);
  const std::vector<SweepCellResult> parallel = run_grid(cells, 8);
  expect_byte_identical(serial, parallel);
  // The plan actually injected faults, so the comparison was not vacuous.
  for (const SweepCellResult& r : serial) {
    EXPECT_GT(r.run.faults_injected, 0u);
  }
}

TEST(SweepDeterminismTest, TimelineAndSloBreachesByteIdenticalAcrossJobs) {
  // Armed SLO objectives + rolling churn: the flight record fills past
  // its ring capacities (exercising eviction + reservoir sampling) and
  // the watchdog actually fires, so the digests compared here are the
  // interesting ones.
  std::vector<SweepCell> cells;
  for (const std::uint64_t seed : {3ull, 13ull, 29ull}) {
    SweepCell cell;
    cell.label = "slo seed=" + std::to_string(seed);
    cell.scenario = Scenario::paper_random_query();
    cell.scenario.epochs = 40;
    cell.scenario.sim.seed = seed;
    cell.scenario.world.seed = seed;
    cell.scenario.slo.availability_floor = 0.999;
    cell.scenario.slo.migrations_per_epoch = 0.5;
    cell.scenario.slo.short_window = 3;
    cell.scenario.slo.long_window = 8;
    FaultEvent churn;
    churn.kind = FaultKind::kChurn;
    churn.at = 2;
    churn.until = 40;
    churn.period = 2;
    churn.kill = 2;
    churn.recover = 1;
    cell.scenario.fault_plan.add(churn);
    cell.policy = PolicyKind::kRfh;
    cells.push_back(std::move(cell));
  }
  const std::vector<SweepCellResult> serial = run_grid(cells, 1);
  expect_byte_identical(serial, run_grid(cells, 8));
  // Not vacuous: every cell recorded a timeline, and the grid as a whole
  // breached at least one objective.
  std::size_t total_breaches = 0;
  for (const SweepCellResult& r : serial) {
    EXPECT_NE(r.timeline_digest, 0u) << r.label;
    EXPECT_FALSE(r.timeline_jsonl.empty()) << r.label;
    total_breaches += r.run.slo_breaches.size();
  }
  EXPECT_GT(total_breaches, 0u);
}

TEST(SweepDeterminismTest, PooledComparisonMatchesSequentialForAllJobs) {
  Scenario scenario = Scenario::paper_random_query();
  scenario.epochs = 15;
  FailureEvent failure;
  failure.epoch = 8;
  failure.kill_random = 10;
  const ComparativeResult reference =
      run_comparison_sequential(scenario, {failure});
  for (const unsigned jobs : {1u, 2u, 4u, 8u}) {
    const ComparativeResult pooled =
        run_comparison_pooled(scenario, {failure}, jobs);
    ASSERT_EQ(pooled.runs.size(), reference.runs.size()) << "jobs " << jobs;
    for (std::size_t i = 0; i < reference.runs.size(); ++i) {
      EXPECT_EQ(pooled.runs[i].kind, reference.runs[i].kind);
      EXPECT_EQ(series_digest(pooled.runs[i].series),
                series_digest(reference.runs[i].series))
          << "jobs " << jobs << " run " << i;
      EXPECT_EQ(pooled.runs[i].killed, reference.runs[i].killed);
    }
  }
}

// ---------------------------------------------------------------------
// Streaming workload (src/stream/): parallel sweeps must stay
// byte-identical (per-(epoch, DC) forked arrival streams), and the
// batch-side series must match a uniform run at the same seed exactly —
// the stream layer only *adds* fields, it never perturbs Eqs. 2-19.

std::vector<SweepCell> stream_grid() {
  std::vector<SweepCell> cells;
  for (const std::uint64_t seed : {11ull, 23ull, 37ull}) {
    for (const PolicyKind policy : {PolicyKind::kRfh, PolicyKind::kRandom}) {
      SweepCell cell;
      cell.label = "stream seed=" + std::to_string(seed);
      cell.scenario = Scenario::paper_random_query();
      cell.scenario.workload = WorkloadKind::kStream;
      cell.scenario.epochs = 12;
      cell.scenario.sim.seed = seed;
      cell.scenario.world.seed = seed;
      // Enough pressure that waits and backpressure fields are nonzero.
      cell.scenario.stream.arrival_rate = 900.0;
      cell.scenario.stream.queue_cap = 4;
      cell.policy = policy;
      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

TEST(StreamDeterminismTest, ParallelStreamSweepIsByteIdenticalToSerial) {
  const std::vector<SweepCell> cells = stream_grid();
  const std::vector<SweepCellResult> serial = run_grid(cells, 1);
  expect_byte_identical(serial, run_grid(cells, 8));
  // The digest comparison was not vacuous: stream fields carry data.
  for (const SweepCellResult& r : serial) {
    double arrivals = 0.0;
    for (const EpochMetrics& m : r.run.series) arrivals += m.stream_arrivals;
    EXPECT_GT(arrivals, 0.0) << r.label;
  }
}

TEST(StreamDeterminismTest, BatchSideSeriesMatchesUniformRunExactly) {
  Scenario uniform = Scenario::paper_random_query();
  uniform.epochs = 15;
  Scenario stream = uniform;
  stream.workload = WorkloadKind::kStream;
  // Default arrival_rate == the uniform generator's Table I mean, so the
  // two runs must consume identical RNG streams and produce identical
  // batches.
  const PolicyRun batch_run = run_policy(uniform, PolicyKind::kRfh, {});
  const PolicyRun stream_run = run_policy(stream, PolicyKind::kRfh, {});
  ASSERT_EQ(batch_run.series.size(), stream_run.series.size());
  auto strip_stream_fields = [](std::vector<EpochMetrics> series) {
    for (EpochMetrics& m : series) {
      m.stream_arrivals = 0.0;
      m.stream_served = 0.0;
      m.stream_blocked = 0.0;
      m.stream_dropped = 0.0;
      m.stream_max_queue_depth = 0;
      m.stream_wait_mean_ms = 0.0;
      m.stream_p50_ms = 0.0;
      m.stream_p99_ms = 0.0;
      m.stream_p999_ms = 0.0;
    }
    return series;
  };
  EXPECT_EQ(series_digest(strip_stream_fields(batch_run.series)),
            series_digest(strip_stream_fields(stream_run.series)));
  // Aggregation direction of the equivalence: stream arrivals disaggregate
  // the batch totals, so summed back up they must match them (within FP
  // accumulation) — and the batch run itself carried no stream data.
  for (std::size_t i = 0; i < stream_run.series.size(); ++i) {
    EXPECT_EQ(batch_run.series[i].stream_arrivals, 0.0);
    EXPECT_GT(stream_run.series[i].stream_arrivals, 0.0) << "epoch " << i;
  }
}

// ---------------------------------------------------------------------
// Intra-epoch parallel engine (Simulation::set_jobs): sharding the epoch
// phases across a pool must be byte-identical to the serial engine —
// series digest, causal timeline, SLO breach sequence — on a 10k-server
// world under rolling churn, for every jobs value.

Scenario big_churn_scenario() {
  Scenario scenario = Scenario::paper_random_query();
  // 10 paper DCs x 10 rooms x 10 racks x 10 servers = 10,000 servers.
  scenario.world.rooms_per_datacenter = 10;
  scenario.world.racks_per_room = 10;
  scenario.world.servers_per_rack = 10;
  scenario.epochs = 10;
  scenario.sim.partitions = 256;
  scenario.slo.availability_floor = 0.999;
  scenario.slo.migrations_per_epoch = 0.5;
  scenario.slo.short_window = 3;
  scenario.slo.long_window = 6;
  FaultEvent churn;
  churn.kind = FaultKind::kChurn;
  churn.at = 2;
  churn.until = 10;
  churn.period = 2;
  churn.kill = 3;
  churn.recover = 2;
  scenario.fault_plan.add(churn);
  return scenario;
}

TEST(EngineJobsDeterminismTest, TenThousandServerChurnByteIdenticalAtJobs8) {
  // Same label on purpose: sweep_results_json must match byte for byte,
  // and engine_jobs is the only thing allowed to differ.
  std::vector<SweepCell> cells(1);
  cells[0].label = "10k churn";
  cells[0].scenario = big_churn_scenario();
  cells[0].policy = PolicyKind::kRfh;
  std::vector<SweepCell> threaded = cells;
  threaded[0].scenario.engine_jobs = 8;

  const std::vector<SweepCellResult> serial = run_grid(cells, 1);
  const std::vector<SweepCellResult> parallel = run_grid(threaded, 1);
  expect_byte_identical(serial, parallel);
  // Not vacuous: churn actually fired on the big world.
  EXPECT_GT(serial[0].run.faults_injected, 0u);
  EXPECT_FALSE(serial[0].run.killed.empty());
}

TEST(EngineJobsDeterminismTest, HostileCorpusScenariosByteIdenticalAtJobs8) {
  // Every hostile scenario in the committed corpus — correlated zone
  // outage, ring-splitting partition, cascading overload, Byzantine
  // stale stats, link flap + churn under stream load — must produce
  // byte-identical output with the epoch phases sharded across 8
  // workers. These plans exercise exactly the mutation paths (correlated
  // kills, link-state flips, stats freezes) most likely to be
  // order-sensitive under sharding.
  const char* const hostile[] = {
      "zone_outage_regional", "ring_split_partition", "cascading_overload",
      "byzantine_stale_stats", "flap_churn_stream"};
  std::vector<SweepCell> cells;
  for (const char* name : hostile) {
    const std::string path = std::string(RFH_TEST_DATA_DIR) + "/corpus/" +
                             name + ".json";
    const CheckCase::ParseResult parsed = CheckCase::load(path);
    ASSERT_TRUE(parsed.ok) << path << ": " << parsed.error;
    SweepCell cell;
    cell.label = name;
    cell.scenario = parsed.value.to_scenario();
    cell.policy = PolicyKind::kRfh;
    cells.push_back(std::move(cell));
  }
  std::vector<SweepCell> threaded = cells;
  for (SweepCell& cell : threaded) cell.scenario.engine_jobs = 8;

  const std::vector<SweepCellResult> serial = run_grid(cells, 1);
  expect_byte_identical(serial, run_grid(threaded, 1));
  // Not vacuous: every hostile plan actually injected its faults.
  for (const SweepCellResult& r : serial) {
    EXPECT_GT(r.run.faults_injected, 0u) << r.label;
  }
}

TEST(EngineJobsDeterminismTest, EveryJobsValueProducesTheSameSeries) {
  Scenario scenario = Scenario::paper_random_query();
  scenario.epochs = 25;
  FaultEvent churn;
  churn.kind = FaultKind::kChurn;
  churn.at = 2;
  churn.until = 25;
  churn.period = 3;
  churn.kill = 2;
  churn.recover = 2;
  scenario.fault_plan.add(churn);

  const PolicyRun reference = run_policy(scenario, PolicyKind::kRfh);
  // 0 resolves to one worker per hardware thread; 1 is the serial engine
  // again through the set_jobs path; the rest exercise shard counts both
  // below and above the batch's run count.
  for (const unsigned jobs : {0u, 1u, 2u, 3u, 5u, 8u}) {
    Scenario threaded = scenario;
    threaded.engine_jobs = jobs;
    const PolicyRun run = run_policy(threaded, PolicyKind::kRfh);
    EXPECT_EQ(series_digest(run.series), series_digest(reference.series))
        << "jobs " << jobs;
    EXPECT_EQ(run.killed, reference.killed) << "jobs " << jobs;
  }
}

// ---------------------------------------------------------------------
// Route memo: a pure cache. Toggling it must not move a single bit, even
// when failures and churn mutate placement and liveness mid-run.

PolicyRun run_with_memo(const Scenario& base, bool memo,
                        const std::vector<FailureEvent>& failures = {}) {
  Scenario scenario = base;
  scenario.sim.route_memo = memo;
  return run_policy(scenario, PolicyKind::kRfh, failures);
}

TEST(RedundancyDeterminismTest, ReplicaModeIsByteIdenticalToDefault) {
  // Threading the redundancy axis through the engine must leave replica
  // runs untouched: reconstruction_threshold() == 1 makes every EC scale
  // an FP no-op and the zone rule never engages. An explicitly-tagged
  // replica run with nonzero (ignored) ec parameters must digest
  // identically to the untouched default, churn included.
  Scenario base = Scenario::paper_random_query();
  base.epochs = 30;
  FaultEvent churn;
  churn.kind = FaultKind::kChurn;
  churn.at = 2;
  churn.until = 30;
  churn.period = 3;
  churn.kill = 2;
  churn.recover = 2;
  base.fault_plan.add(churn);
  Scenario tagged = base;
  tagged.sim.redundancy = RedundancyMode::kReplica;
  tagged.sim.ec_k = 8;
  tagged.sim.ec_m = 3;
  const PolicyRun a = run_policy(base, PolicyKind::kRfh);
  const PolicyRun b = run_policy(tagged, PolicyKind::kRfh);
  EXPECT_EQ(series_digest(a.series), series_digest(b.series));
  EXPECT_EQ(a.killed, b.killed);
}

TEST(RedundancyDeterminismTest, ErasureRunsAreReproducible) {
  // Same seed, same ec(k,m) → the same series, and a different (k, m)
  // actually changes the run (the axis is live, not decorative).
  Scenario scenario = Scenario::paper_random_query();
  scenario.epochs = 25;
  scenario.sim.redundancy = RedundancyMode::kErasure;
  scenario.sim.ec_k = 4;
  scenario.sim.ec_m = 2;
  const PolicyRun a = run_policy(scenario, PolicyKind::kRfh);
  const PolicyRun b = run_policy(scenario, PolicyKind::kRfh);
  EXPECT_EQ(series_digest(a.series), series_digest(b.series));
  Scenario wider = scenario;
  wider.sim.ec_k = 2;
  wider.sim.ec_m = 1;
  const PolicyRun c = run_policy(wider, PolicyKind::kRfh);
  EXPECT_NE(series_digest(a.series), series_digest(c.series));
}

TEST(RouteMemoDeterminismTest, MemoOnEqualsMemoOff) {
  Scenario scenario = Scenario::paper_random_query();
  scenario.epochs = 25;
  EXPECT_EQ(series_digest(run_with_memo(scenario, true).series),
            series_digest(run_with_memo(scenario, false).series));
}

TEST(RouteMemoDeterminismTest, MemoOnEqualsMemoOffUnderMassFailure) {
  Scenario scenario = Scenario::paper_random_query();
  scenario.epochs = 25;
  FailureEvent failure;
  failure.epoch = 10;
  failure.kill_random = 20;
  const PolicyRun with = run_with_memo(scenario, true, {failure});
  const PolicyRun without = run_with_memo(scenario, false, {failure});
  EXPECT_EQ(series_digest(with.series), series_digest(without.series));
  EXPECT_EQ(with.killed, without.killed);
}

TEST(RouteMemoDeterminismTest, MemoOnEqualsMemoOffUnderRollingChurn) {
  Scenario scenario = Scenario::paper_random_query();
  scenario.epochs = 30;
  FaultEvent churn;
  churn.kind = FaultKind::kChurn;
  churn.at = 2;
  churn.until = 30;
  churn.period = 3;
  churn.kill = 1;
  churn.recover = 1;
  scenario.fault_plan.add(churn);
  const PolicyRun with = run_with_memo(scenario, true);
  const PolicyRun without = run_with_memo(scenario, false);
  EXPECT_EQ(series_digest(with.series), series_digest(without.series));
  EXPECT_EQ(with.killed, without.killed);
  EXPECT_GT(with.faults_injected, 0u);
}

// ---------------------------------------------------------------------
// Regression for the mid-epoch mutation hazard: a policy that issues a
// suicide AND a migrate for the same partition in the same epoch makes
// apply_actions mutate placement between route invalidations. The engine
// must flush the memo after every applied action (engine.cpp
// apply_actions), so memo on/off runs — and their invariant sweeps —
// agree exactly.

Actions suicide_plus_migrate(const PolicyContext& ctx) {
  Actions actions;
  if (ctx.epoch < 2) {
    // Grow partition 0 two copies beyond the primary so there is both a
    // copy to kill and a copy to move.
    const PartitionId p{0};
    const auto preference = ctx.cluster.ring().preference_list(
        HashRing::partition_key(p), ctx.cluster.live_server_count());
    for (const ServerId candidate : preference) {
      if (ctx.cluster.can_accept(candidate, p)) {
        actions.replications.push_back(ReplicateAction{p, candidate, {}});
        break;
      }
    }
    return actions;
  }
  if (ctx.epoch == 2) {
    const PartitionId p{0};
    const ServerId primary = ctx.cluster.primary_of(p);
    std::vector<ServerId> copies;
    for (const Replica& r : ctx.cluster.replicas_of(p)) {
      if (r.server != primary) copies.push_back(r.server);
    }
    if (copies.size() >= 2) {
      actions.suicides.push_back(SuicideAction{p, copies[0], {}});
      // Migrate the other copy to any server not hosting p.
      const auto preference = ctx.cluster.ring().preference_list(
          HashRing::partition_key(p), ctx.cluster.live_server_count());
      for (const ServerId candidate : preference) {
        if (ctx.cluster.can_accept(candidate, p)) {
          actions.migrations.push_back(
              MigrateAction{p, copies[1], candidate, {}});
          break;
        }
      }
    }
  }
  return actions;
}

TEST(RouteMemoDeterminismTest, SuicidePlusMigrateSameEpochRegression) {
  QueryBatch batch;
  for (std::uint32_t p = 0; p < 8; ++p) {
    batch.push_back(QueryFlow{PartitionId{p}, DatacenterId{(p * 3) % 10},
                              12.0});
  }
  std::vector<EpochMetrics> series[2];
  for (const bool memo : {true, false}) {
    SimConfig config;
    config.partitions = 8;
    config.route_memo = memo;
    auto sim = test::make_fixed_sim(
        batch, test::make_lambda_policy(suicide_plus_migrate), config);
    InvariantChecker checker(InvariantChecker::Mode::kRecord);
    MetricsCollector collector;
    for (Epoch e = 0; e < 6; ++e) {
      const EpochReport report = sim->step();
      if (e == 2) {
        // The hazard epoch really performed both mutations.
        EXPECT_EQ(report.suicides, 1u);
        EXPECT_EQ(report.migrations, 1u);
      }
      collector.collect(*sim, report);
      checker.check_epoch(*sim, report);
    }
    EXPECT_TRUE(checker.violations().empty()) << checker.summary();
    series[memo ? 0 : 1] = collector.series();
  }
  EXPECT_EQ(series_digest(series[0]), series_digest(series[1]));
}

}  // namespace
}  // namespace rfh
