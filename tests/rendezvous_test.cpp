#include "ring/rendezvous.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

namespace rfh {
namespace {

std::vector<ServerId> servers(std::uint32_t n) {
  std::vector<ServerId> out;
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(ServerId{i});
  return out;
}

TEST(Rendezvous, Deterministic) {
  const auto candidates = servers(10);
  for (std::uint64_t key = 0; key < 100; ++key) {
    EXPECT_EQ(rendezvous_pick(key, candidates),
              rendezvous_pick(key, candidates));
  }
}

TEST(Rendezvous, ResultIsACandidate) {
  const auto candidates = servers(7);
  for (std::uint64_t key = 0; key < 500; ++key) {
    const ServerId pick = rendezvous_pick(key, candidates);
    EXPECT_NE(std::find(candidates.begin(), candidates.end(), pick),
              candidates.end());
  }
}

TEST(Rendezvous, SingleCandidate) {
  const std::vector<ServerId> one{ServerId{3}};
  EXPECT_EQ(rendezvous_pick(42, one), ServerId{3});
}

TEST(Rendezvous, IndependentOfCandidateOrder) {
  auto candidates = servers(8);
  std::vector<ServerId> reversed(candidates.rbegin(), candidates.rend());
  for (std::uint64_t key = 0; key < 200; ++key) {
    EXPECT_EQ(rendezvous_pick(key, candidates),
              rendezvous_pick(key, reversed));
  }
}

TEST(Rendezvous, StableWhenNonWinnerLeaves) {
  // The HRW property: removing any candidate that did not win leaves the
  // winner unchanged.
  const auto candidates = servers(10);
  for (std::uint64_t key = 0; key < 300; ++key) {
    const ServerId winner = rendezvous_pick(key, candidates);
    for (const ServerId leaver : candidates) {
      if (leaver == winner) continue;
      std::vector<ServerId> without;
      for (const ServerId s : candidates) {
        if (s != leaver) without.push_back(s);
      }
      EXPECT_EQ(rendezvous_pick(key, without), winner);
    }
  }
}

TEST(Rendezvous, SpreadsKeysRoughlyUniformly) {
  const auto candidates = servers(5);
  std::map<ServerId, int> counts;
  const int n = 20000;
  for (std::uint64_t key = 0; key < n; ++key) {
    ++counts[rendezvous_pick(key, candidates)];
  }
  for (const auto& [server, count] : counts) {
    EXPECT_GT(count, n / 10) << server.value();
    EXPECT_LT(count, n / 2) << server.value();
  }
}

TEST(RendezvousDeath, EmptyCandidates) {
  const std::vector<ServerId> none;
  EXPECT_DEATH(rendezvous_pick(1, none), "");
}

}  // namespace
}  // namespace rfh
