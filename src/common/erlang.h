// Erlang-B blocking probability (paper Eq. 18).
//
// RFH picks, among the physical servers of the chosen datacenter, the one
// with the lowest blocking probability under an M/G/c loss model:
//
//   BP = (a^c / c!) / sum_{k=0}^{c} a^k / k!,    a = lambda * tau
//
// where lambda is the Poisson arrival rate observed at the server, tau its
// mean service time, and c its number of service channels. The blocking
// probability of an M/G/c/c system depends on the service distribution
// only through its mean (insensitivity), so the Erlang-B formula applies
// verbatim.
#pragma once

#include <cstdint>

namespace rfh {

/// Erlang-B blocking probability for offered load `offered` (= lambda*tau,
/// in Erlangs) and `channels` servers. Uses the numerically stable
/// recursion B(0) = 1, B(c) = a*B(c-1) / (c + a*B(c-1)); never over- or
/// underflows for any practical input.
double erlang_b(double offered, std::uint32_t channels) noexcept;

/// Smallest channel count c such that erlang_b(offered, c) <= target.
/// Useful for capacity planning (see examples/capacity_planning.cpp).
std::uint32_t erlang_b_channels_for(double offered, double target) noexcept;

/// Erlang-C: probability that an arrival must *wait* in an M/M/c queue
/// with infinite buffer (the companion planning formula to Eq. 18's loss
/// model). Requires offered < channels for a stable queue; returns 1.0
/// when offered >= channels (every arrival waits, the queue diverges).
/// Computed from Erlang-B via C = B / (1 - rho * (1 - B)).
///
/// Zero-offered-traffic convention (shared by all functions here): when
/// offered == 0 nothing ever arrives, so blocking probability, waiting
/// probability and mean wait are all exactly 0 — *including* the
/// degenerate channels == 0 system. The zero check is evaluated before
/// any stability test.
double erlang_c(double offered, std::uint32_t channels) noexcept;

/// Mean waiting time in the same M/M/c queue, in units of one service
/// time: W = C(a, c) / (c - a). Infinity when 0 < offered and
/// offered >= channels; exactly 0 when offered == 0 (see the
/// zero-offered-traffic convention above).
double erlang_c_mean_wait(double offered, std::uint32_t channels) noexcept;

}  // namespace rfh
