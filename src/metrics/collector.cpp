#include "metrics/collector.h"

#include "metrics/diversity.h"
#include "metrics/imbalance.h"
#include "metrics/utilization.h"

namespace rfh {

EpochMetrics MetricsCollector::collect(const Simulation& sim,
                                       const EpochReport& report) {
  EpochMetrics m;
  m.epoch = report.epoch;

  m.utilization =
      replica_utilization(sim.traffic(), sim.cluster(), sim.topology());
  m.total_replicas = sim.cluster().total_replicas();
  m.avg_replicas_per_partition =
      static_cast<double>(m.total_replicas) /
      static_cast<double>(sim.config().partitions);

  m.replication_cost_total = sim.cumulative_replication_cost();
  m.replication_cost_avg =
      sim.cumulative_replications() > 0
          ? m.replication_cost_total /
                static_cast<double>(sim.cumulative_replications())
          : 0.0;

  m.migrations_total = sim.cumulative_migrations();
  m.migrations_avg = m.total_replicas > 0
                         ? static_cast<double>(m.migrations_total) /
                               static_cast<double>(m.total_replicas)
                         : 0.0;
  m.migration_cost_total = sim.cumulative_migration_cost();
  m.migration_cost_avg =
      m.migrations_total > 0
          ? m.migration_cost_total / static_cast<double>(m.migrations_total)
          : 0.0;

  // Scale-free variant of Eq. 25 (stddev / mean over per-copy workload):
  // the raw stddev is dominated by the mean per-copy load, which differs
  // across algorithms simply because their copy counts differ; the
  // coefficient of variation isolates how *evenly* work is spread.
  m.load_imbalance = load_imbalance_cv(sim.traffic(), sim.cluster());
  m.path_length = report.mean_path_length;

  m.diversity_level = mean_diversity_level(sim.cluster(), sim.topology());
  m.dc_survivable_fraction =
      datacenter_survivable_fraction(sim.cluster(), sim.topology());

  const Histogram& latency = sim.traffic().latency();
  m.latency_mean_ms = latency.mean();
  if (!latency.empty()) {
    m.latency_p50_ms = latency.percentile(0.50);
    m.latency_p99_ms = latency.percentile(0.99);
    m.latency_p999_ms = latency.percentile(0.999);
  }
  m.sla_attainment =
      latency.fraction_at_or_below(sim.config().sla_target_ms);

  m.unserved_fraction = report.total_queries > 0.0
                            ? report.unserved_queries / report.total_queries
                            : 0.0;
  m.replications_this_epoch = report.replications;
  m.migrations_this_epoch = report.migrations;
  m.suicides_this_epoch = report.suicides;

  m.dropped_this_epoch = report.dropped_actions;
  const auto reason = [&report](DropReason r) {
    return report.dropped_by_reason[static_cast<std::size_t>(r)];
  };
  m.dropped_bandwidth = reason(DropReason::kBandwidth);
  m.dropped_storage_cap = reason(DropReason::kStorageCap);
  m.dropped_node_cap = reason(DropReason::kNodeCap);
  m.dropped_dead_target = reason(DropReason::kDeadTarget);
  m.dropped_invalid = reason(DropReason::kInvalid);
  m.dropped_zone_diversity = reason(DropReason::kZoneDiversity);
  m.dropped_unknown = reason(DropReason::kUnknown);
  m.repairs_starved = report.repairs_starved;

  series_.push_back(m);
  return m;
}

double MetricsCollector::tail_mean(double EpochMetrics::* field,
                                   std::size_t window) const {
  if (series_.empty()) return 0.0;
  const std::size_t n = std::min(window, series_.size());
  double sum = 0.0;
  for (std::size_t i = series_.size() - n; i < series_.size(); ++i) {
    sum += series_[i].*field;
  }
  return sum / static_cast<double>(n);
}

}  // namespace rfh
