#include "fault/invariants.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "common/availability.h"
#include "obs/events.h"
#include "routing/router.h"
#include "telemetry/registry.h"

namespace rfh {

namespace {

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  char buf[256];
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  return buf;
}

/// |a - b| within an absolute-or-relative tolerance (query tallies are
/// sums of doubles accumulated in different orders).
bool close(double a, double b) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= 1e-6 * scale;
}

}  // namespace

const char* invariant_name(InvariantId id) noexcept {
  switch (id) {
    case InvariantId::kReplicaFloor: return "replica_floor";
    case InvariantId::kDeadHost: return "dead_host";
    case InvariantId::kRouting: return "routing";
    case InvariantId::kStorage: return "storage";
    case InvariantId::kAccounting: return "accounting";
    case InvariantId::kTraffic: return "traffic";
    case InvariantId::kTelemetry: return "telemetry";
    case InvariantId::kQueueDepth: return "queue_depth";
    case InvariantId::kStreamAccounting: return "stream_accounting";
    case InvariantId::kFragmentCensus: return "fragment_census";
    case InvariantId::kZoneDiversity: return "zone_diversity";
  }
  return "?";
}

void InvariantChecker::report_violation(Epoch epoch, InvariantId id,
                                        std::string detail) {
  ++violations_this_epoch_;
  violations_.push_back(Violation{epoch, id, std::move(detail)});
}

std::size_t InvariantChecker::check_epoch(const Simulation& sim,
                                          const EpochReport& report) {
  violations_this_epoch_ = 0;
  const Epoch epoch = report.epoch;

  // Order matters only for readability of fail-fast output: structural
  // state first, flow accounting after.
  check_dead_hosts(sim, epoch);
  check_replica_floor(sim, epoch);
  check_routing(sim, epoch);
  check_storage(sim, epoch);
  check_accounting(sim, report);
  check_traffic(sim, report);
  if (sim.config().redundancy == RedundancyMode::kErasure) {
    check_fragment_census(sim, epoch);
    check_zone_diversity(sim, epoch);
  }

  queries_sum_ += report.total_queries;
  unserved_sum_ += report.unserved_queries;
  replications_sum_ += report.replications;
  migrations_sum_ += report.migrations;
  suicides_sum_ += report.suicides;
  ++epochs_checked_;
  check_telemetry(sim, epoch);

  if (mode_ == Mode::kFailFast && violations_this_epoch_ > 0) {
    std::fprintf(stderr,
                 "invariant check failed at epoch %u (%zu violations):\n",
                 epoch, violations_this_epoch_);
    const std::size_t first = violations_.size() - violations_this_epoch_;
    for (std::size_t i = first; i < violations_.size(); ++i) {
      std::fprintf(stderr, "  [%s] %s\n", invariant_name(violations_[i].id),
                   violations_[i].detail.c_str());
    }
    std::abort();
  }
  return violations_this_epoch_;
}

std::size_t InvariantChecker::check_stream(const StreamEpochStats& stats,
                                           const StreamConfig& config,
                                           double batch_total_queries) {
  violations_this_epoch_ = 0;
  const Epoch epoch = stats.epoch;

  if (stats.max_queue_depth > config.queue_cap) {
    report_violation(
        epoch, InvariantId::kQueueDepth,
        format("max queue depth %u exceeds --queue-cap %u",
               stats.max_queue_depth, config.queue_cap));
  }
  const double accounted = stats.served + stats.blocked + stats.dropped;
  if (!close(stats.arrivals, accounted)) {
    report_violation(
        epoch, InvariantId::kStreamAccounting,
        format("arrivals %.6f != served %.6f + blocked %.6f + dropped %.6f",
               stats.arrivals, stats.served, stats.blocked, stats.dropped));
  }
  if (!close(stats.arrivals, batch_total_queries)) {
    report_violation(
        epoch, InvariantId::kStreamAccounting,
        format("stream arrivals %.6f disagree with batch total %.6f "
               "(batch equivalence broke)",
               stats.arrivals, batch_total_queries));
  }

  if (mode_ == Mode::kFailFast && violations_this_epoch_ > 0) {
    std::fprintf(stderr,
                 "stream invariant check failed at epoch %u "
                 "(%zu violations):\n",
                 epoch, violations_this_epoch_);
    const std::size_t first = violations_.size() - violations_this_epoch_;
    for (std::size_t i = first; i < violations_.size(); ++i) {
      std::fprintf(stderr, "  [%s] %s\n", invariant_name(violations_[i].id),
                   violations_[i].detail.c_str());
    }
    std::abort();
  }
  return violations_this_epoch_;
}

void InvariantChecker::check_replica_floor(const Simulation& sim,
                                           Epoch epoch) {
  const SimConfig& cfg = sim.config();
  const std::uint32_t floor = cfg.availability_floor();
  if (excused_.empty()) {
    excused_.assign(cfg.partitions, 1);  // bootstrap: seeded with 1 copy
    prev_hosts_.resize(cfg.partitions);
  }
  for (std::uint32_t p = 0; p < cfg.partitions; ++p) {
    const PartitionId pid{p};
    const auto replicas = sim.cluster().replicas_of(pid);
    std::vector<ServerId> hosts;
    hosts.reserve(replicas.size());
    for (const Replica& r : replicas) hosts.push_back(r.server);

    const auto count = static_cast<std::uint32_t>(hosts.size());
    if (count >= floor) {
      excused_[p] = 0;
    } else if (excused_[p] == 0) {
      // Dropped below the floor since the last check: only a copy lost to
      // a dead server (crash, promotion, reseed) excuses the deficit; a
      // voluntary drop (policy suicide below r_min) is a violation.
      bool failure_caused = false;
      for (const ServerId prev : prev_hosts_[p]) {
        const bool still_hosted =
            std::find(hosts.begin(), hosts.end(), prev) != hosts.end();
        if (!still_hosted && !sim.cluster().alive(prev)) {
          failure_caused = true;
          break;
        }
      }
      if (failure_caused) {
        excused_[p] = 1;
      } else {
        report_violation(
            epoch, InvariantId::kReplicaFloor,
            format("partition %u holds %u copies < Eq. 14 floor %u with no "
                   "server failure to excuse it",
                   p, count, floor));
      }
    }
    prev_hosts_[p] = std::move(hosts);
  }
}

void InvariantChecker::check_dead_hosts(const Simulation& sim, Epoch epoch) {
  const std::uint32_t partitions = sim.config().partitions;
  for (std::uint32_t p = 0; p < partitions; ++p) {
    const PartitionId pid{p};
    for (const Replica& r : sim.cluster().replicas_of(pid)) {
      if (!sim.cluster().alive(r.server)) {
        report_violation(epoch, InvariantId::kDeadHost,
                         format("partition %u keeps a copy on dead server %u",
                                p, r.server.value()));
      }
    }
    const ServerId primary = sim.cluster().primary_of(pid);
    if (primary.valid() && !sim.cluster().alive(primary)) {
      report_violation(
          epoch, InvariantId::kDeadHost,
          format("partition %u primary %u is dead", p, primary.value()));
    }
  }
}

void InvariantChecker::check_routing(const Simulation& sim, Epoch epoch) {
  // A fresh Router over the current topology/paths is cheap (two
  // pointers) and keeps the checker read-only with respect to the
  // engine's own router.
  const Router router(sim.topology(), sim.paths());
  const std::uint32_t partitions = sim.config().partitions;
  for (std::uint32_t p = 0; p < partitions; ++p) {
    const PartitionId pid{p};
    const ServerId primary = sim.cluster().primary_of(pid);
    if (!primary.valid()) {
      if (!sim.cluster().replicas_of(pid).empty()) {
        report_violation(
            epoch, InvariantId::kRouting,
            format("partition %u has copies but no primary", p));
      }
      continue;
    }
    if (!sim.cluster().alive(primary)) continue;  // reported by dead_host
    const Route route = router.route(pid, DatacenterId{0}, primary,
                                     sim.cluster().live_by_dc());
    if (route.holder != primary || route.stages.empty()) {
      report_violation(
          epoch, InvariantId::kRouting,
          format("partition %u route does not reach primary %u", p,
                 primary.value()));
      continue;
    }
    const DatacenterId holder_dc = sim.topology().server(primary).datacenter;
    if (route.stages.back().dc != holder_dc) {
      report_violation(
          epoch, InvariantId::kRouting,
          format("partition %u route ends in dc %u, primary lives in dc %u",
                 p, route.stages.back().dc.value(), holder_dc.value()));
    }
  }
}

void InvariantChecker::check_storage(const Simulation& sim, Epoch epoch) {
  const SimConfig& cfg = sim.config();
  for (const Server& server : sim.topology().servers()) {
    const std::uint32_t copies = sim.cluster().copies_on(server.id);
    if (copies == 0) continue;
    const Bytes used = sim.cluster().storage_used(server.id);
    if (used != copies * cfg.unit_size()) {
      report_violation(
          epoch, InvariantId::kStorage,
          format("server %u accounts %llu bytes for %u copies of %llu each",
                 server.id.value(), static_cast<unsigned long long>(used),
                 copies,
                 static_cast<unsigned long long>(cfg.unit_size())));
    }
    if (copies > server.spec.max_vnodes) {
      report_violation(epoch, InvariantId::kStorage,
                       format("server %u hosts %u copies > vnode cap %u",
                              server.id.value(), copies,
                              server.spec.max_vnodes));
    }
    const double fraction = sim.cluster().storage_fraction(server.id);
    if (fraction > cfg.storage_limit + 1e-9) {
      report_violation(
          epoch, InvariantId::kStorage,
          format("server %u occupancy %.4f exceeds Eq. 19 limit phi=%.2f",
                 server.id.value(), fraction, cfg.storage_limit));
    }
  }
}

void InvariantChecker::check_accounting(const Simulation& sim,
                                        const EpochReport& report) {
  std::uint32_t by_partition = 0;
  for (std::uint32_t p = 0; p < sim.config().partitions; ++p) {
    by_partition += sim.cluster().replica_count(PartitionId{p});
  }
  const std::uint32_t census = sim.cluster().total_replicas();
  if (by_partition != census || report.total_replicas != census) {
    report_violation(
        report.epoch, InvariantId::kAccounting,
        format("replica census disagrees: report=%u cluster=%u sum=%u",
               report.total_replicas, census, by_partition));
  }
}

void InvariantChecker::check_traffic(const Simulation& sim,
                                     const EpochReport& report) {
  const EpochTraffic& traffic = sim.traffic();
  double queries = 0.0;
  double unserved = 0.0;
  for (std::uint32_t p = 0; p < sim.config().partitions; ++p) {
    const PartitionId pid{p};
    queries += traffic.partition_queries(pid);
    unserved += traffic.unserved(pid);
    if (traffic.unserved(pid) >
        traffic.partition_queries(pid) * (1.0 + 1e-9) + 1e-9) {
      report_violation(
          report.epoch, InvariantId::kTraffic,
          format("partition %u blocked %.3f of only %.3f offered queries", p,
                 traffic.unserved(pid), traffic.partition_queries(pid)));
    }
  }
  if (!close(queries, report.total_queries) ||
      !close(queries, traffic.total_queries())) {
    report_violation(
        report.epoch, InvariantId::kTraffic,
        format("query conservation broke: sum=%.6f report=%.6f total=%.6f",
               queries, report.total_queries, traffic.total_queries()));
  }
  if (!close(unserved, report.unserved_queries)) {
    report_violation(
        report.epoch, InvariantId::kTraffic,
        format("unserved conservation broke: sum=%.6f report=%.6f", unserved,
               report.unserved_queries));
  }
  for (const Server& server : sim.topology().servers()) {
    const double cap = server.spec.per_replica_capacity;
    for (std::uint32_t p = 0; p < sim.config().partitions; ++p) {
      const double served = traffic.served(PartitionId{p}, server.id);
      if (served > cap * (1.0 + 1e-9) + 1e-9) {
        report_violation(
            report.epoch, InvariantId::kTraffic,
            format("partition %u replica on server %u served %.3f > "
                   "capacity %.3f",
                   p, server.id.value(), served, cap));
      }
    }
  }
}

void InvariantChecker::check_fragment_census(const Simulation& sim,
                                             Epoch epoch) {
  const SimConfig& cfg = sim.config();
  if (reached_k_.empty()) reached_k_.assign(cfg.partitions, 0);
  for (std::uint32_t p = 0; p < cfg.partitions; ++p) {
    const PartitionId pid{p};
    const std::uint32_t count = sim.cluster().replica_count(pid);
    if (count > cfg.max_replicas_per_partition) {
      report_violation(
          epoch, InvariantId::kFragmentCensus,
          format("partition %u holds %u fragments > cap %u", p, count,
                 cfg.max_replicas_per_partition));
    }
    if (count >= cfg.ec_k) {
      reached_k_[p] = 1;
      continue;
    }
    // Below k: reconstruction-infeasible. Legal only while the stripe is
    // still fanning out from its seed (never reached k) or when the
    // engine already recorded the stripe loss.
    if (reached_k_[p] != 0 && !sim.stripe_lost(pid)) {
      report_violation(
          epoch, InvariantId::kFragmentCensus,
          format("partition %u holds %u < k=%u fragments with no recorded "
                 "stripe loss",
                 p, count, cfg.ec_k));
    }
  }
}

void InvariantChecker::check_zone_diversity(const Simulation& sim,
                                            Epoch epoch) {
  const SimConfig& cfg = sim.config();
  std::vector<std::uint32_t> per_dc(sim.topology().datacenter_count(), 0);
  for (std::uint32_t p = 0; p < cfg.partitions; ++p) {
    std::fill(per_dc.begin(), per_dc.end(), 0u);
    for (const Replica& r : sim.cluster().replicas_of(PartitionId{p})) {
      const DatacenterId dc = sim.topology().server(r.server).datacenter;
      if (++per_dc[dc.value()] == cfg.ec_m + 1) {
        report_violation(
            epoch, InvariantId::kZoneDiversity,
            format("partition %u packs > m=%u fragments into datacenter %u",
                   p, cfg.ec_m, dc.value()));
      }
    }
  }
}

void InvariantChecker::check_telemetry(const Simulation& sim, Epoch epoch) {
  const MetricRegistry* reg = sim.telemetry();
  if (reg == nullptr) return;
  const Counter* epochs = reg->find_counter("rfh_epochs_total");
  // Only reconcile when the checker observed every counted epoch — a
  // registry attached mid-run has a head start the sums cannot see.
  if (epochs == nullptr ||
      epochs->value() != static_cast<double>(epochs_checked_)) {
    return;
  }
  const auto expect = [&](const char* name, MetricLabels labels,
                          double want) {
    const Counter* c = reg->find_counter(name, labels);
    const double got = c != nullptr ? c->value() : 0.0;
    if (!close(got, want)) {
      std::string series = name;
      if (!labels.empty()) {
        series += "{" + labels.front().first + "=" + labels.front().second +
                  "}";
      }
      report_violation(
          epoch, InvariantId::kTelemetry,
          format("%s=%.6f does not reconcile with report sum %.6f",
                 series.c_str(), got, want));
    }
  };
  expect("rfh_queries_total", {}, queries_sum_);
  expect("rfh_unserved_queries_total", {}, unserved_sum_);
  expect("rfh_actions_applied_total", {{"kind", "replicate"}},
         static_cast<double>(replications_sum_));
  expect("rfh_actions_applied_total", {{"kind", "migrate"}},
         static_cast<double>(migrations_sum_));
  expect("rfh_actions_applied_total", {{"kind", "suicide"}},
         static_cast<double>(suicides_sum_));
  expect("rfh_data_losses_total", {},
         static_cast<double>(sim.data_losses()));
}

std::string InvariantChecker::summary() const {
  std::string text =
      format("invariants: %zu epochs checked, %zu violations",
             epochs_checked_, violations_.size());
  for (const Violation& v : violations_) {
    text += format("\n  epoch %u [%s] ", v.epoch, invariant_name(v.id));
    text += v.detail;
  }
  return text;
}

}  // namespace rfh
