# Empty dependencies file for rfh_cli.
# This may be replaced when dependencies are built.
