// Fig. 8 — load imbalance (Eqs. 24-26: population stddev of per-server
// workload), per epoch.
//   (a) random query;  (b) flash crowd.
//
// Paper shape: RFH lowest (Erlang-B server choice), and it *improves*
// under flash crowd while the other algorithms get worse.
#include <iostream>

#include "harness/report.h"

int main() {
  {
    const rfh::Scenario s = rfh::Scenario::paper_random_query();
    const rfh::ComparativeResult r = rfh::run_comparison(s);
    rfh::print_figure(std::cout, "Fig 8(a): load imbalance, random query", r,
                      &rfh::EpochMetrics::load_imbalance);
  }
  {
    const rfh::Scenario s = rfh::Scenario::paper_flash_crowd();
    const rfh::ComparativeResult r = rfh::run_comparison(s);
    rfh::print_figure(std::cout, "Fig 8(b): load imbalance, flash crowd", r,
                      &rfh::EpochMetrics::load_imbalance);
  }
  return 0;
}
