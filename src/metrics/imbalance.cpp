#include "metrics/imbalance.h"

#include <vector>

#include "common/mathutil.h"

namespace rfh {

namespace {

std::vector<double> copy_loads(const EpochTraffic& traffic,
                               const ClusterState& cluster) {
  std::vector<double> loads;
  loads.reserve(cluster.total_replicas());
  for (std::uint32_t pv = 0; pv < cluster.config().partitions; ++pv) {
    const PartitionId p{pv};
    for (const Replica& r : cluster.replicas_of(p)) {
      loads.push_back(traffic.served(p, r.server));
    }
  }
  return loads;
}

std::vector<double> server_loads(const EpochTraffic& traffic,
                                 const ClusterState& cluster) {
  std::vector<double> loads;
  for (const Server& s : cluster.topology().servers()) {
    if (cluster.alive(s.id)) {
      loads.push_back(traffic.server_work(s.id));
    }
  }
  return loads;
}

}  // namespace

double load_imbalance(const EpochTraffic& traffic,
                      const ClusterState& cluster) {
  const auto loads = copy_loads(traffic, cluster);
  return population_stddev(loads);
}

double load_imbalance_servers(const EpochTraffic& traffic,
                              const ClusterState& cluster) {
  const auto loads = server_loads(traffic, cluster);
  return population_stddev(loads);
}

double load_imbalance_cv(const EpochTraffic& traffic,
                         const ClusterState& cluster) {
  const auto loads = copy_loads(traffic, cluster);
  return coefficient_of_variation(loads);
}

}  // namespace rfh
