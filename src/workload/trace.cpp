#include "workload/trace.h"

#include <array>
#include <charconv>
#include <string>
#include <string_view>

#include "common/assert.h"

namespace rfh {

namespace {

bool is_blank_or_comment(const std::string& line) {
  for (const char c : line) {
    if (c == '#') return true;
    if (c != ' ' && c != '\t' && c != '\r') return false;
  }
  return true;
}

/// Split a CSV row into exactly 4 fields; aborts on other shapes.
std::array<std::string_view, 4> split4(std::string_view line) {
  std::array<std::string_view, 4> out;
  std::size_t field = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == ',') {
      RFH_ASSERT_MSG(field < out.size(), "trace row has too many fields");
      out[field++] = line.substr(start, i - start);
      start = i + 1;
    }
  }
  RFH_ASSERT_MSG(field == out.size(), "trace row has too few fields");
  return out;
}

std::uint32_t parse_u32(std::string_view text) {
  std::uint32_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  RFH_ASSERT_MSG(ec == std::errc{} && ptr == text.data() + text.size(),
                 "malformed integer in trace");
  return value;
}

double parse_double(std::string_view text) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  RFH_ASSERT_MSG(ec == std::errc{} && ptr == text.data() + text.size(),
                 "malformed number in trace");
  return value;
}

}  // namespace

TraceWorkload TraceWorkload::from_csv(std::istream& in) {
  std::vector<QueryBatch> epochs;
  std::string line;
  bool first_content_line = true;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (is_blank_or_comment(line)) continue;
    if (first_content_line && line.rfind("epoch,", 0) == 0) {
      first_content_line = false;
      continue;  // header
    }
    first_content_line = false;
    const auto fields = split4(line);
    const std::uint32_t epoch = parse_u32(fields[0]);
    const std::uint32_t partition = parse_u32(fields[1]);
    const std::uint32_t requester = parse_u32(fields[2]);
    const double queries = parse_double(fields[3]);
    RFH_ASSERT_MSG(queries >= 0.0, "negative demand in trace");
    if (epoch >= epochs.size()) epochs.resize(epoch + 1);
    epochs[epoch].push_back(QueryFlow{PartitionId{partition},
                                      DatacenterId{requester}, queries});
  }
  return TraceWorkload(std::move(epochs));
}

QueryBatch TraceWorkload::generate(Epoch epoch, Rng& /*rng*/) {
  if (epoch >= epochs_.size()) return {};
  return epochs_[epoch];
}

void write_trace_csv(std::ostream& out, std::span<const QueryBatch> epochs) {
  out << "epoch,partition,requester,queries\n";
  for (std::size_t e = 0; e < epochs.size(); ++e) {
    for (const QueryFlow& flow : epochs[e]) {
      out << e << ',' << flow.partition.value() << ','
          << flow.requester.value() << ',' << flow.queries << '\n';
    }
  }
}

QueryBatch RecordingWorkload::generate(Epoch epoch, Rng& rng) {
  QueryBatch batch = inner_->generate(epoch, rng);
  if (epoch >= recorded_.size()) recorded_.resize(epoch + 1);
  recorded_[epoch] = batch;
  return batch;
}

}  // namespace rfh
