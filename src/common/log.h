// Minimal leveled logging. The simulator is a library: logging defaults to
// warnings only and writes to stderr, so benchmark CSV on stdout stays
// machine-readable.
#pragma once

#include <cstdarg>

namespace rfh {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level (default kWarn).
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// printf-style logging; drops messages below the configured level.
void log(LogLevel level, const char* fmt, ...) noexcept
    __attribute__((format(printf, 2, 3)));

}  // namespace rfh
