file(REMOVE_RECURSE
  "CMakeFiles/rendezvous_test.dir/rendezvous_test.cpp.o"
  "CMakeFiles/rendezvous_test.dir/rendezvous_test.cpp.o.d"
  "rendezvous_test"
  "rendezvous_test.pdb"
  "rendezvous_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rendezvous_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
