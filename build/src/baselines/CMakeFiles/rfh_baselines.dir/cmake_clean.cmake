file(REMOVE_RECURSE
  "CMakeFiles/rfh_baselines.dir/owner_policy.cpp.o"
  "CMakeFiles/rfh_baselines.dir/owner_policy.cpp.o.d"
  "CMakeFiles/rfh_baselines.dir/random_policy.cpp.o"
  "CMakeFiles/rfh_baselines.dir/random_policy.cpp.o.d"
  "CMakeFiles/rfh_baselines.dir/request_policy.cpp.o"
  "CMakeFiles/rfh_baselines.dir/request_policy.cpp.o.d"
  "librfh_baselines.a"
  "librfh_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfh_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
