// Ablation A1 — sensitivity of RFH to its threshold parameters.
//
// Sweeps beta (holder overload, Eq. 12), gamma (traffic-hub mark,
// Eq. 13), delta (suicide, Eq. 15) and mu (migration benefit, Eq. 16)
// one at a time around the Table I defaults, under a shortened uniform
// workload, and reports the steady-state utilization / copy count /
// unserved fraction / migration count for each setting.
//
// What to expect: lower beta or gamma -> more copies, less unserved;
// higher delta -> leaner but riskier (more unserved spikes); mu shifts
// the replicate/migrate mix.
#include <cstdio>
#include <initializer_list>
#include <memory>
#include <vector>

#include "bench_args.h"
#include "exec/sweep.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "workload/generator.h"

namespace {

struct Variant {
  const char* knob;
  double value;
};

void report_run(const char* knob, double value, const rfh::PolicyRun& run) {
  const std::size_t tail = 50;
  double util = 0.0;
  double replicas = 0.0;
  double unserved = 0.0;
  for (std::size_t e = run.series.size() - tail; e < run.series.size(); ++e) {
    util += run.series[e].utilization;
    replicas += run.series[e].total_replicas;
    unserved += run.series[e].unserved_fraction;
  }
  util /= tail;
  replicas /= tail;
  unserved /= tail;
  std::printf("%-6s %6.2f   %11.3f %10.1f %10.3f %12u\n", knob, value, util,
              replicas, unserved, run.series.back().migrations_total);
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned jobs = rfh::bench_jobs(argc, argv);
  rfh::Scenario base = rfh::Scenario::paper_random_query();
  base.epochs = 150;

  std::printf("# Ablation: RFH threshold sensitivity (uniform query, "
              "%u epochs, tail-50 means)\n",
              base.epochs);
  std::printf("%-6s %6s   %11s %10s %10s %12s\n", "knob", "value",
              "utilization", "replicas", "unserved", "migrations");

  // Build the whole knob grid as independent sweep cells, fan them out on
  // the pool, and print rows in grid order — the table is bit-identical
  // for every --jobs value.
  std::vector<Variant> variants;
  std::vector<rfh::SweepCell> cells;
  auto add = [&](const char* knob, double value, const rfh::Scenario& s) {
    variants.push_back(Variant{knob, value});
    rfh::SweepCell cell;
    cell.label = knob;
    cell.scenario = s;
    cell.policy = rfh::PolicyKind::kRfh;
    cells.push_back(std::move(cell));
  };

  add("base", 0.0, base);

  for (const double beta : {1.2, 1.5, 3.0, 4.0}) {
    rfh::Scenario s = base;
    s.sim.beta = beta;
    add("beta", beta, s);
  }
  for (const double gamma : {1.1, 2.0, 3.0}) {
    rfh::Scenario s = base;
    s.sim.gamma = gamma;
    add("gamma", gamma, s);
  }
  for (const double delta : {0.05, 0.4, 0.8}) {
    rfh::Scenario s = base;
    s.sim.delta = delta;
    add("delta", delta, s);
  }
  for (const double mu : {0.25, 2.0, 4.0}) {
    rfh::Scenario s = base;
    s.sim.mu = mu;
    add("mu", mu, s);
  }
  for (const double alpha : {0.05, 0.5, 0.8}) {
    rfh::Scenario s = base;
    s.sim.alpha = alpha;
    add("alpha", alpha, s);
  }
  // Eq. 10 orientation ablation: as printed, alpha weights history
  // (0.2 -> fast adaptation); flipped, alpha weights the new sample
  // (0.2 -> strong smoothing). See SimConfig::alpha_weights_history.
  for (const double alpha : {0.2, 0.5}) {
    rfh::Scenario s = base;
    s.sim.alpha = alpha;
    s.sim.alpha_weights_history = false;
    add("alphaN", alpha, s);
  }

  rfh::SweepOptions sweep_options;
  sweep_options.jobs = jobs;
  const std::vector<rfh::SweepCellResult> results =
      rfh::SweepRunner(sweep_options).run(cells);
  for (std::size_t i = 0; i < results.size(); ++i) {
    report_run(variants[i].knob, variants[i].value, results[i].run);
  }

  // Slashdot-spike study: 10x one-epoch demand spikes every 40 epochs.
  // With the default decision hysteresis (overload streak 3) the spikes
  // are ignored; with streak 1 the policy chases every spike and churns.
  std::printf("\n# Spike train (10x for 1 epoch, every 40): churn = "
              "replications + suicides over 160 epochs\n");
  std::printf("%-22s %10s %12s %10s\n", "variant", "churn", "replicas",
              "unserved");
  for (const std::uint32_t streak : {1u, 3u}) {
    rfh::WorkloadParams params;
    params.partitions = base.sim.partitions;
    params.datacenters = 10;
    params.zipf_exponent = base.zipf_exponent;
    rfh::RfhPolicy::Options options;
    options.overload_streak_epochs = streak;
    rfh::Simulation sim(rfh::build_paper_world(base.world), base.sim,
                        std::make_unique<rfh::SpikeWorkload>(params, 40),
                        std::make_unique<rfh::RfhPolicy>(options));
    sim.run(40);  // settle
    std::uint32_t churn = 0;
    double replicas = 0.0;
    double unserved = 0.0;
    const int measured = 160;
    for (int e = 0; e < measured; ++e) {
      const rfh::EpochReport r = sim.step();
      churn += r.replications + r.suicides;
      replicas += r.total_replicas;
      unserved += r.total_queries > 0.0
                      ? r.unserved_queries / r.total_queries
                      : 0.0;
    }
    std::printf("overload-streak=%-6u %10u %12.1f %10.3f\n", streak, churn,
                replicas / measured, unserved / measured);
  }
  return 0;
}
