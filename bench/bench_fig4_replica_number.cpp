// Fig. 4 — replica number.
//   (a) total under random query       (b) average per partition, random
//   (c) total under flash crowd        (d) average per partition, flash
//
// Paper shape: random needs by far the most copies (~8 per partition),
// owner-oriented next, RFH close to request-oriented at ~4 / ~3; under
// flash crowd RFH stays near its random-query level while the others
// inflate.
#include <iostream>

#include "bench_args.h"
#include "exec/sweep.h"
#include "harness/report.h"

int main(int argc, char** argv) {
  const unsigned jobs = rfh::bench_jobs(argc, argv);
  {
    const rfh::Scenario s = rfh::Scenario::paper_random_query();
    const rfh::ComparativeResult r = rfh::run_comparison_pooled(s, {}, jobs);
    rfh::print_figure_u32(std::cout,
                          "Fig 4(a): total replica number, random query", r,
                          &rfh::EpochMetrics::total_replicas);
    rfh::print_figure(std::cout,
                      "Fig 4(b): avg replicas per partition, random query", r,
                      &rfh::EpochMetrics::avg_replicas_per_partition);
  }
  {
    const rfh::Scenario s = rfh::Scenario::paper_flash_crowd();
    const rfh::ComparativeResult r = rfh::run_comparison_pooled(s, {}, jobs);
    rfh::print_figure_u32(std::cout,
                          "Fig 4(c): total replica number, flash crowd", r,
                          &rfh::EpochMetrics::total_replicas);
    rfh::print_figure(std::cout,
                      "Fig 4(d): avg replicas per partition, flash crowd", r,
                      &rfh::EpochMetrics::avg_replicas_per_partition);
  }
  return 0;
}
