// Always-on cross-cutting invariant checking.
//
// An InvariantChecker is invoked once per epoch, right after
// Simulation::step(), and verifies properties that no single subsystem
// owns (see DESIGN.md for the catalogue):
//
//   replica_floor     every partition holds >= Eq. 14 minimum copies
//                     (the k-of-n fragment floor in EC mode), unless a
//                     recorded failure explains the deficit
//   dead_host         no copy (primary included) lives on a dead server
//   routing           the primary of every partition is reachable: the
//                     route ends in the holder's datacenter at a live,
//                     valid holder server
//   storage           every live server respects the Eq. 19 occupancy
//                     limit phi, its vnode cap, and exact used-bytes
//                     accounting (copies * partition size)
//   accounting        the EpochReport's replica census matches the
//                     cluster's, which matches the per-partition sum
//   traffic           per-partition query/unserved tallies sum to the
//                     epoch totals, and no replica served beyond its
//                     capacity
//   telemetry         registry counters reconcile with the accumulated
//                     EpochReport fields (only when a registry is
//                     attached and the checker saw every epoch)
//   fragment_census   EC mode: no partition exceeds the copy cap, and a
//                     stripe below k live fragments is either still
//                     bootstrapping or recorded as a data loss
//   zone_diversity    EC mode: no datacenter hosts more than m fragments
//                     of one stripe (a single-DC loss can't sink it)
//
// Modes: kRecord collects violations for inspection (benches, the CLI);
// kFailFast prints every violation of the offending epoch to stderr and
// aborts, so soak runs and sanitizer jobs stop at the first bad state
// with the trace intact.
//
// The checker is an observer: it never mutates the simulation, draws no
// randomness, and attaching it cannot change a seeded run's results.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/engine.h"
#include "stream/config.h"
#include "stream/stream_sim.h"

namespace rfh {

enum class InvariantId : std::uint8_t {
  kReplicaFloor = 0,
  kDeadHost,
  kRouting,
  kStorage,
  kAccounting,
  kTraffic,
  kTelemetry,
  /// Stream layer: no server's waiting room ever exceeds --queue-cap.
  kQueueDepth,
  /// Stream layer: arrivals == served + blocked + dropped per epoch, and
  /// arrivals match the batch engine's total queries.
  kStreamAccounting,
  /// EC mode: stripe width within the cap; below-k stripes are either
  /// bootstrapping or recorded data losses.
  kFragmentCensus,
  /// EC mode: at most m fragments of one stripe per datacenter.
  kZoneDiversity,
};
inline constexpr std::size_t kInvariantCount = 11;

/// Stable snake_case name ("replica_floor", ...).
[[nodiscard]] const char* invariant_name(InvariantId id) noexcept;

class InvariantChecker {
 public:
  enum class Mode {
    kRecord,    // collect violations, never abort
    kFailFast,  // print the epoch's violations to stderr and abort
  };

  explicit InvariantChecker(Mode mode = Mode::kRecord) : mode_(mode) {}

  struct Violation {
    Epoch epoch = 0;
    InvariantId id = InvariantId::kReplicaFloor;
    std::string detail;
  };

  /// Verify every invariant against the post-step state. Returns the
  /// number of violations found this epoch (always 0 in fail-fast mode —
  /// it aborts instead of returning nonzero).
  std::size_t check_epoch(const Simulation& sim, const EpochReport& report);

  /// Verify the stream layer's queue invariants for one processed epoch:
  /// kQueueDepth (max waiting-room occupancy <= config.queue_cap) and
  /// kStreamAccounting (arrivals == served + blocked + dropped, and
  /// arrivals == the batch engine's total queries
  /// `batch_total_queries`). Call after StreamSimulator::process_epoch;
  /// same return/abort semantics as check_epoch.
  std::size_t check_stream(const StreamEpochStats& stats,
                           const StreamConfig& config,
                           double batch_total_queries);

  [[nodiscard]] const std::vector<Violation>& violations() const noexcept {
    return violations_;
  }
  [[nodiscard]] std::size_t epochs_checked() const noexcept {
    return epochs_checked_;
  }
  /// One line per violation, prefixed with a pass/fail headline.
  [[nodiscard]] std::string summary() const;

 private:
  void report_violation(Epoch epoch, InvariantId id, std::string detail);

  void check_replica_floor(const Simulation& sim, Epoch epoch);
  void check_dead_hosts(const Simulation& sim, Epoch epoch);
  void check_routing(const Simulation& sim, Epoch epoch);
  void check_storage(const Simulation& sim, Epoch epoch);
  void check_accounting(const Simulation& sim, const EpochReport& report);
  void check_traffic(const Simulation& sim, const EpochReport& report);
  void check_telemetry(const Simulation& sim, Epoch epoch);
  void check_fragment_census(const Simulation& sim, Epoch epoch);
  void check_zone_diversity(const Simulation& sim, Epoch epoch);

  Mode mode_;
  std::vector<Violation> violations_;
  std::size_t violations_this_epoch_ = 0;
  std::size_t epochs_checked_ = 0;

  // replica_floor excuse state: a partition below the Eq. 14 floor is
  // excused while bootstrapping (it has never reached the floor) or after
  // a copy was lost to a server failure, until it climbs back.
  std::vector<char> excused_;
  std::vector<std::vector<ServerId>> prev_hosts_;

  // fragment_census bootstrap state: 1 once the partition has ever held
  // >= k live fragments (EC mode only).
  std::vector<char> reached_k_;

  // telemetry reconciliation accumulators (sums of EpochReport fields).
  double queries_sum_ = 0.0;
  double unserved_sum_ = 0.0;
  std::uint64_t replications_sum_ = 0;
  std::uint64_t migrations_sum_ = 0;
  std::uint64_t suicides_sum_ = 0;
};

}  // namespace rfh
