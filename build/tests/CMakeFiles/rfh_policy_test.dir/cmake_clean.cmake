file(REMOVE_RECURSE
  "CMakeFiles/rfh_policy_test.dir/rfh_policy_test.cpp.o"
  "CMakeFiles/rfh_policy_test.dir/rfh_policy_test.cpp.o.d"
  "rfh_policy_test"
  "rfh_policy_test.pdb"
  "rfh_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfh_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
