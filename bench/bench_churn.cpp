// Extension experiment — membership churn.
//
// Section II-B argues for the virtual ring because "node join or
// departure, failure or recovery only affects its immediate neighbors,
// and keep other nodes unaffected". This bench subjects RFH to sustained
// churn — every 10 epochs one random server dies and one previously dead
// server returns, expressed as a FaultPlan churn event and applied by the
// ChaosController — and measures the blast radius: repair actions per
// churn event, steady-state census drift, and service impact, compared
// to a churn-free control run.
#include <cstdio>

#include "bench_args.h"
#include "bench_report.h"
#include "exec/sweep.h"
#include "fault/plan.h"
#include "harness/runner.h"
#include "harness/scenario.h"

namespace {

constexpr rfh::Epoch kSettle = 60;
constexpr rfh::Epoch kMeasured = 300;

struct ChurnResult {
  double actions_per_epoch = 0.0;
  double replicas = 0.0;
  double unserved = 0.0;
  double utilization = 0.0;
  std::uint64_t faults_injected = 0;
};

ChurnResult summarize(const rfh::PolicyRun& run) {
  ChurnResult result;
  for (rfh::Epoch e = kSettle; e < kSettle + kMeasured; ++e) {
    const rfh::EpochMetrics& m = run.series[e];
    result.actions_per_epoch += m.replications_this_epoch +
                                m.migrations_this_epoch +
                                m.suicides_this_epoch;
    result.replicas += m.total_replicas;
    result.unserved += m.unserved_fraction;
    result.utilization += m.utilization;
  }
  result.actions_per_epoch /= kMeasured;
  result.replicas /= kMeasured;
  result.unserved /= kMeasured;
  result.utilization /= kMeasured;
  result.faults_injected = run.faults_injected;
  return result;
}

rfh::SweepCell make_cell(bool with_churn) {
  rfh::Scenario scenario = rfh::Scenario::paper_random_query();
  scenario.epochs = kSettle + kMeasured;
  if (with_churn) {
    rfh::FaultEvent churn;
    churn.kind = rfh::FaultKind::kChurn;
    churn.at = kSettle;
    churn.until = kSettle + kMeasured;
    churn.period = 10;
    churn.kill = 1;
    churn.recover = 1;
    scenario.fault_plan.add(churn);
  }
  rfh::SweepCell cell;
  cell.label = with_churn ? "churn" : "control";
  cell.scenario = scenario;
  cell.policy = rfh::PolicyKind::kRfh;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned jobs = rfh::bench_jobs(argc, argv);
  rfh::BenchReport report("churn");
  std::printf("# Membership churn: one server leaves and one rejoins every "
              "10 epochs, 300 epochs measured (RFH)\n");
  std::printf("%-10s %16s %10s %10s %12s\n", "mode", "actions/epoch",
              "replicas", "unserved", "utilization");
  const rfh::SweepCell cells[] = {make_cell(false), make_cell(true)};
  rfh::SweepOptions sweep_options;
  sweep_options.jobs = jobs;
  std::vector<rfh::SweepCellResult> results;
  {
    const auto stage = report.stage("sweep_control_churn");
    results = rfh::SweepRunner(sweep_options).run(cells);
  }
  const ChurnResult control = summarize(results[0].run);
  const ChurnResult churned = summarize(results[1].run);
  std::printf("%-10s %16.2f %10.1f %10.3f %12.3f\n", "control",
              control.actions_per_epoch, control.replicas, control.unserved,
              control.utilization);
  std::printf("%-10s %16.2f %10.1f %10.3f %12.3f\n", "churn",
              churned.actions_per_epoch, churned.replicas, churned.unserved,
              churned.utilization);
  const double blast =
      (churned.actions_per_epoch - control.actions_per_epoch) * 10.0;
  std::printf("# blast radius: %.2f extra repair actions per churn event "
              "(10-epoch spacing); %llu faults injected\n",
              blast, static_cast<unsigned long long>(churned.faults_injected));

  report.add_metric("control_actions_per_epoch", control.actions_per_epoch);
  report.add_metric("churn_actions_per_epoch", churned.actions_per_epoch);
  report.add_metric("blast_radius_actions", blast);
  report.add_metric("control_replicas", control.replicas);
  report.add_metric("churn_replicas", churned.replicas);
  report.add_metric("churn_unserved", churned.unserved);
  report.add_metric("faults_injected",
                    static_cast<double>(churned.faults_injected));
  report.write_file();
  return 0;
}
