// Extension experiment — geographic diversity and datacenter disasters.
//
// Section II-A grades placements by availability level (1 same server ..
// 5 different datacenters) and motivates replication with whole-
// datacenter disasters. This bench reports, per policy: the mean
// partition diversity level, the fraction of partitions that survive the
// loss of any single datacenter, and what actually happens when the
// busiest datacenter is destroyed mid-run (data losses + recovery).
#include <cstdio>
#include <iostream>

#include "bench_args.h"
#include "exec/sweep.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "metrics/diversity.h"

int main(int argc, char** argv) {
  const unsigned jobs = rfh::bench_jobs(argc, argv);
  rfh::Scenario scenario = rfh::Scenario::paper_random_query();
  scenario.epochs = 200;

  {
    const rfh::ComparativeResult r = rfh::run_comparison_pooled(scenario, {}, jobs);
    rfh::print_figure(std::cout,
                      "Diversity: mean partition availability level", r,
                      &rfh::EpochMetrics::diversity_level);
    rfh::print_figure(std::cout,
                      "Diversity: datacenter-survivable fraction", r,
                      &rfh::EpochMetrics::dc_survivable_fraction);
  }

  std::printf("# datacenter disaster at epoch 100 (destroy DC A):\n");
  std::printf("%-10s %12s %14s %16s\n", "policy", "data-losses",
              "replicas@99", "replicas@199");
  for (const rfh::PolicyKind kind :
       {rfh::PolicyKind::kRequest, rfh::PolicyKind::kOwner,
        rfh::PolicyKind::kRandom, rfh::PolicyKind::kRfh}) {
    auto sim = rfh::make_simulation(scenario, kind);
    sim->run(100);
    const std::uint32_t before = sim->cluster().total_replicas();
    sim->fail_datacenter(sim->world().by_letter('A'));
    sim->run(100);
    std::printf("%-10s %12u %14u %16u\n",
                std::string(rfh::policy_name(kind)).c_str(),
                sim->data_losses(), before, sim->cluster().total_replicas());
  }
  return 0;
}
