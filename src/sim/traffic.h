// Per-epoch traffic observation matrices (the raw inputs to Eqs. 2-8,
// 20-26).
//
// The [partition x server] planes (node_traffic, served) are *sparse*:
// each partition keeps a short vector of cells sorted by server id, one
// per server that actually saw traffic for it this epoch — a handful of
// replicas and relay hops, never the full server axis. At the Table I
// scale the difference is noise; at 100k servers the dense planes would
// be gigabytes memset every epoch, and the sharded propagate pass
// (DESIGN.md §15) wants exactly this layout: each shard owns a contiguous
// partition range and writes its partitions' cell vectors with no shared
// state.
//
// Absent cells read as exactly 0.0 through the accessors, and every
// consumer that used to scan the dense plane (stats EWMA, oracle diff,
// metrics) adds 0.0 terms in IEEE double exactly where the dense code
// did, so the sparse layout is bit-identical to the seed — the
// differential oracle enforces this.
//
// The *_mut accessors insert-or-find a cell and hand back a reference;
// a later insert into the same partition invalidates it (callers do
// single assignments or immediate +=, never hold references across
// writes).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/assert.h"
#include "common/histogram.h"
#include "common/ids.h"

namespace rfh {

/// One (partition, server) traffic observation; cells are kept sorted by
/// server id within each partition.
struct TrafficCell {
  std::uint32_t server = 0;
  double node = 0.0;    ///< tr_ikt: residual traffic seen at the node
  double served = 0.0;  ///< queries absorbed by the replica
};

class EpochTraffic {
 public:
  EpochTraffic(std::size_t partitions, std::size_t servers,
               std::size_t datacenters)
      : partitions_(partitions),
        servers_(servers),
        datacenters_(datacenters),
        cells_(partitions),
        requester_queries_(partitions * datacenters, 0.0),
        partition_queries_(partitions, 0.0),
        unserved_(partitions, 0.0),
        server_work_(servers, 0.0) {}

  void reset() {
    for (std::vector<TrafficCell>& cells : cells_) cells.clear();
    std::fill(requester_queries_.begin(), requester_queries_.end(), 0.0);
    std::fill(partition_queries_.begin(), partition_queries_.end(), 0.0);
    std::fill(unserved_.begin(), unserved_.end(), 0.0);
    std::fill(server_work_.begin(), server_work_.end(), 0.0);
    total_queries_ = 0.0;
    routed_queries_ = 0.0;
    path_hops_weighted_ = 0.0;
    latency_.reset();
  }

  /// Residual traffic that arrived at server s for partition p — the
  /// paper's tr_ikt: what the node sees after upstream replicas absorbed
  /// their capacity (Eqs. 2-8). Attributed to the relay server of each
  /// transit datacenter, plus to non-relay servers for what they absorb.
  [[nodiscard]] double node_traffic(PartitionId p, ServerId s) const {
    const TrafficCell* cell = find(p, s);
    return cell == nullptr ? 0.0 : cell->node;
  }
  double& node_traffic_mut(PartitionId p, ServerId s) {
    return cell_mut(p, s).node;
  }

  /// Queries actually absorbed by the replica of p on s this epoch
  /// (bounded by the server's per-replica capacity).
  [[nodiscard]] double served(PartitionId p, ServerId s) const {
    const TrafficCell* cell = find(p, s);
    return cell == nullptr ? 0.0 : cell->served;
  }
  double& served_mut(PartitionId p, ServerId s) {
    return cell_mut(p, s).served;
  }

  /// The partition's touched cells, sorted by server id. Iterating these
  /// and treating every other server as 0.0 is exactly the dense scan.
  [[nodiscard]] std::span<const TrafficCell> cells(PartitionId p) const {
    RFH_ASSERT(p.value() < partitions_);
    return cells_[p.value()];
  }
  /// Writable cell vector for shard-owned partitions (sharded propagate
  /// compacts its scratch columns straight into this).
  [[nodiscard]] std::vector<TrafficCell>& cells_mut(PartitionId p) {
    RFH_ASSERT(p.value() < partitions_);
    return cells_[p.value()];
  }

  /// q_ijt: queries for p issued near datacenter j this epoch.
  [[nodiscard]] double requester_queries(PartitionId p, DatacenterId j) const {
    return requester_queries_[p.value() * datacenters_ + j.value()];
  }
  double& requester_queries_mut(PartitionId p, DatacenterId j) {
    return requester_queries_[p.value() * datacenters_ + j.value()];
  }

  /// Total queries for p this epoch (sum over requesters).
  [[nodiscard]] double partition_queries(PartitionId p) const {
    return partition_queries_[p.value()];
  }
  double& partition_queries_mut(PartitionId p) {
    return partition_queries_[p.value()];
  }

  /// Demand for p that exceeded even the primary's capacity (blocked).
  [[nodiscard]] double unserved(PartitionId p) const {
    return unserved_[p.value()];
  }
  double& unserved_mut(PartitionId p) { return unserved_[p.value()]; }

  /// Queries a server touched this epoch (forwarding + absorption) —
  /// the per-node workload l_i of Eqs. 24-26 and the Erlang-B arrival
  /// rate input.
  [[nodiscard]] double server_work(ServerId s) const {
    return server_work_[s.value()];
  }
  double& server_work_mut(ServerId s) { return server_work_[s.value()]; }

  [[nodiscard]] double total_queries() const noexcept { return total_queries_; }
  void add_total_queries(double q) noexcept { total_queries_ += q; }

  /// Mean lookup path length (hops), query-weighted.
  [[nodiscard]] double mean_path_length() const noexcept {
    return routed_queries_ > 0.0 ? path_hops_weighted_ / routed_queries_ : 0.0;
  }
  void add_path_sample(double queries, double hops) noexcept {
    routed_queries_ += queries;
    path_hops_weighted_ += queries * hops;
  }

  /// Per-query response-latency distribution for this epoch (ms).
  [[nodiscard]] const Histogram& latency() const noexcept { return latency_; }
  void add_latency(double queries, double ms) noexcept {
    latency_.add(queries, ms);
  }

  [[nodiscard]] std::size_t partitions() const noexcept { return partitions_; }
  [[nodiscard]] std::size_t servers() const noexcept { return servers_; }
  [[nodiscard]] std::size_t datacenters() const noexcept {
    return datacenters_;
  }

 private:
  [[nodiscard]] const TrafficCell* find(PartitionId p, ServerId s) const {
    RFH_ASSERT(p.value() < partitions_ && s.value() < servers_);
    const std::vector<TrafficCell>& cells = cells_[p.value()];
    const auto it = std::lower_bound(
        cells.begin(), cells.end(), s.value(),
        [](const TrafficCell& c, std::uint32_t v) { return c.server < v; });
    if (it == cells.end() || it->server != s.value()) return nullptr;
    return &*it;
  }

  [[nodiscard]] TrafficCell& cell_mut(PartitionId p, ServerId s) {
    RFH_ASSERT(p.value() < partitions_ && s.value() < servers_);
    std::vector<TrafficCell>& cells = cells_[p.value()];
    const auto it = std::lower_bound(
        cells.begin(), cells.end(), s.value(),
        [](const TrafficCell& c, std::uint32_t v) { return c.server < v; });
    if (it != cells.end() && it->server == s.value()) return *it;
    return *cells.insert(it, TrafficCell{s.value(), 0.0, 0.0});
  }

  std::size_t partitions_;
  std::size_t servers_;
  std::size_t datacenters_;
  std::vector<std::vector<TrafficCell>> cells_;  // sorted by server, per p
  std::vector<double> requester_queries_;
  std::vector<double> partition_queries_;
  std::vector<double> unserved_;
  std::vector<double> server_work_;
  double total_queries_ = 0.0;
  double routed_queries_ = 0.0;
  double path_hops_weighted_ = 0.0;
  Histogram latency_;
};

}  // namespace rfh
