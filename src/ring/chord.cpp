#include "ring/chord.h"

#include <algorithm>

#include "common/assert.h"
#include "ring/hash.h"

namespace rfh {

namespace {

/// Clockwise distance from `from` to `to` on the 2^64 ring.
constexpr std::uint64_t clockwise(std::uint64_t from, std::uint64_t to) {
  return to - from;  // modular arithmetic does the wrap
}

}  // namespace

std::uint64_t ChordOverlay::position_of(ServerId member) {
  return hash_combine(0x63686F7264000000ULL /* "chord" */,
                      hash64(std::uint64_t{member.value()}));
}

ChordOverlay::ChordOverlay(std::span<const ServerId> members) {
  RFH_ASSERT_MSG(!members.empty(), "overlay needs at least one member");
  nodes_.reserve(members.size());
  for (const ServerId member : members) {
    nodes_.push_back(Node{position_of(member), member, {}});
  }
  std::sort(nodes_.begin(), nodes_.end(),
            [](const Node& a, const Node& b) { return a.position < b.position; });
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    RFH_ASSERT_MSG(nodes_[i].position != nodes_[i - 1].position,
                   "position collision (duplicate member?)");
  }
  // Finger tables: successor(position + 2^i) for i = 0..63.
  for (Node& node : nodes_) {
    node.fingers.resize(64);
    for (std::uint32_t i = 0; i < 64; ++i) {
      node.fingers[i] = successor_index(node.position + (1ULL << i));
    }
  }
}

std::uint32_t ChordOverlay::successor_index(std::uint64_t key) const {
  // First node with position >= key, wrapping to the front.
  const auto it = std::lower_bound(
      nodes_.begin(), nodes_.end(), key,
      [](const Node& n, std::uint64_t k) { return n.position < k; });
  if (it == nodes_.end()) return 0;
  return static_cast<std::uint32_t>(it - nodes_.begin());
}

ServerId ChordOverlay::successor(std::uint64_t key) const {
  return nodes_[successor_index(key)].id;
}

std::uint32_t ChordOverlay::index_of_member(ServerId member) const {
  const std::uint64_t pos = position_of(member);
  const std::uint32_t i = successor_index(pos);
  RFH_ASSERT_MSG(nodes_[i].id == member, "lookup origin is not a member");
  return i;
}

ChordOverlay::LookupResult ChordOverlay::lookup(ServerId from,
                                                std::uint64_t key) const {
  LookupResult result;
  std::uint32_t at = index_of_member(from);
  const std::uint32_t owner = successor_index(key);
  result.path.push_back(nodes_[at].id);

  while (at != owner) {
    const Node& node = nodes_[at];
    // Does the key fall to our immediate successor? Then one final hop.
    const std::uint32_t next = node.fingers[0];
    if (next == owner ||
        clockwise(node.position, key) <=
            clockwise(node.position, nodes_[next].position)) {
      at = owner;
    } else {
      // Closest preceding finger: the largest jump that does not
      // overshoot the key.
      std::uint32_t best = next;
      for (std::uint32_t i = 64; i-- > 0;) {
        const std::uint32_t candidate = node.fingers[i];
        if (candidate == at) continue;
        const std::uint64_t jump =
            clockwise(node.position, nodes_[candidate].position);
        if (jump > 0 && jump < clockwise(node.position, key)) {
          best = candidate;
          break;
        }
      }
      RFH_ASSERT_MSG(best != at, "lookup made no progress");
      at = best;
    }
    result.path.push_back(nodes_[at].id);
    ++result.hops;
    RFH_ASSERT_MSG(result.hops <= nodes_.size(), "lookup cycled");
  }
  result.owner = nodes_[owner].id;
  return result;
}

}  // namespace rfh
