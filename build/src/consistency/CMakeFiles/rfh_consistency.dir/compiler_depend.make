# Empty compiler generated dependencies file for rfh_consistency.
# This may be replaced when dependencies are built.
