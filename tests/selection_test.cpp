#include "core/selection.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/erlang.h"
#include "test_util.h"

namespace rfh {
namespace {

// Run one probing epoch and hand the PolicyContext to `fn`.
template <typename Fn>
void with_context(Fn fn, QueryBatch batch = {},
                  WorldOptions options = test::uniform_world_options(),
                  SimConfig config = {}) {
  bool ran = false;
  auto policy = test::make_lambda_policy([&](const PolicyContext& ctx) {
    fn(ctx);
    ran = true;
    return Actions{};
  });
  auto sim = test::make_fixed_sim(std::move(batch), std::move(policy), config,
                                  options);
  sim->step();
  ASSERT_TRUE(ran);
}

TEST(Selection, FirstFitPicksFirstFeasible) {
  with_context([](const PolicyContext& ctx) {
    const DatacenterId dc{0};
    const PartitionId p{0};
    const auto& live = ctx.cluster.live_by_dc()[dc.value()];
    ServerId expected;
    for (const ServerId s : live) {
      if (ctx.cluster.can_accept(s, p)) {
        expected = s;
        break;
      }
    }
    EXPECT_EQ(select_server_first_fit(ctx, dc, p), expected);
  });
}

TEST(Selection, FirstFitSkipsTheHostingServer) {
  with_context([](const PolicyContext& ctx) {
    const PartitionId p{0};
    const ServerId primary = ctx.cluster.primary_of(p);
    const DatacenterId dc = ctx.topology.server(primary).datacenter;
    const ServerId pick = select_server_first_fit(ctx, dc, p);
    ASSERT_TRUE(pick.valid());
    EXPECT_NE(pick, primary);
  });
}

TEST(Selection, ErlangBPicksLowestBlockingProbability) {
  // Under a uniform world with no traffic history, all blocking
  // probabilities are 0 and the first feasible server wins; with traffic
  // concentrated on one server, that server must NOT be chosen.
  const PartitionId p{0};
  QueryBatch heavy{QueryFlow{p, DatacenterId{0}, 50.0}};
  int epoch = 0;
  auto policy = test::make_lambda_policy([&](const PolicyContext& ctx) {
    ++epoch;
    if (epoch < 3) return Actions{};  // let arrival EWMAs build up
    // The relay of DC 0 for partition 0 carries all the traffic.
    const DatacenterId dc{0};
    double max_arrival = -1.0;
    ServerId busiest;
    for (const ServerId s : ctx.cluster.live_by_dc()[dc.value()]) {
      const double a = ctx.stats.server_arrival(s);
      if (a > max_arrival) {
        max_arrival = a;
        busiest = s;
      }
    }
    if (max_arrival <= 0.0) return Actions{};
    const ServerId pick = select_server_erlang_b(ctx, dc, p);
    EXPECT_TRUE(pick.valid());
    if (!pick.valid()) return Actions{};
    EXPECT_NE(pick, busiest);
    EXPECT_LE(blocking_probability(ctx, pick),
              blocking_probability(ctx, busiest));
    return Actions{};
  });
  // Make sure the primary of partition 0 is not in DC 0 by probing:
  auto sim = test::make_fixed_sim(heavy, std::move(policy));
  for (int e = 0; e < 5; ++e) sim->step();
}

TEST(Selection, BlockingProbabilityUsesErlangB) {
  with_context(
      [](const PolicyContext& ctx) {
        const ServerId s{0};
        const ServerSpec& spec = ctx.topology.server(s).spec;
        const double offered =
            ctx.stats.server_arrival(s) / spec.per_replica_capacity;
        EXPECT_NEAR(blocking_probability(ctx, s),
                    erlang_b(offered, spec.service_channels), 1e-12);
      },
      {QueryFlow{PartitionId{0}, DatacenterId{0}, 10.0}});
}

TEST(Selection, RandomPickIsFeasibleMember) {
  with_context([](const PolicyContext& ctx) {
    const DatacenterId dc{3};
    const PartitionId p{1};
    for (int i = 0; i < 20; ++i) {
      const ServerId pick = select_server_random(ctx, dc, p, ctx.rng);
      ASSERT_TRUE(pick.valid());
      EXPECT_EQ(ctx.topology.server(pick).datacenter, dc);
      EXPECT_TRUE(ctx.cluster.can_accept(pick, p));
    }
  });
}

TEST(Selection, AllVariantsReturnInvalidWhenNothingFeasible) {
  // Vnode cap of 1: after seeding one primary per server... simpler: use
  // a config whose partition size exceeds the storage limit, so no server
  // can accept anything.
  SimConfig config;
  config.partitions = 1;
  WorldOptions options = test::uniform_world_options();
  options.storage_capacity_lo = kib(512);  // 70% of 512K < one partition
  options.storage_capacity_hi = kib(512);
  bool ran = false;
  auto policy = test::make_lambda_policy([&](const PolicyContext& ctx) {
    const DatacenterId dc{1};
    const PartitionId p{0};
    EXPECT_FALSE(select_server_first_fit(ctx, dc, p).valid());
    EXPECT_FALSE(select_server_erlang_b(ctx, dc, p).valid());
    EXPECT_FALSE(select_server_random(ctx, dc, p, ctx.rng).valid());
    ran = true;
    return Actions{};
  });
  // Seeding the primary itself must still work (primaries bypass nothing,
  // but the seed happens regardless of the 70% limit? No — it uses
  // add_replica directly, which doesn't check can_accept).
  auto sim = test::make_fixed_sim({}, std::move(policy), config, options);
  sim->step();
  ASSERT_TRUE(ran);
}

}  // namespace
}  // namespace rfh
