# Empty compiler generated dependencies file for bench_fig4_replica_number.
# This may be replaced when dependencies are built.
