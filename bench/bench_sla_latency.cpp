// Extension experiment — response latency and SLA attainment.
//
// The paper's introduction motivates RFH with Amazon's SLA ("a response
// within 300 ms for 99.9 % of its requests") but never plots latency.
// This bench closes the loop: per-query latency under the latency model
// of DESIGN.md (2 ms per hop + fibre propagation; blocked queries wait
// out the overload), compared across the four algorithms under both
// query settings.
#include <iostream>

#include "bench_args.h"
#include "exec/sweep.h"
#include "harness/report.h"

int main(int argc, char** argv) {
  const unsigned jobs = rfh::bench_jobs(argc, argv);
  {
    const rfh::Scenario s = rfh::Scenario::paper_random_query();
    const rfh::ComparativeResult r = rfh::run_comparison_pooled(s, {}, jobs);
    rfh::print_figure(std::cout, "SLA: mean latency (ms), random query", r,
                      &rfh::EpochMetrics::latency_mean_ms);
    rfh::print_figure(std::cout, "SLA: p99.9 latency (ms), random query", r,
                      &rfh::EpochMetrics::latency_p999_ms);
    rfh::print_figure(std::cout,
                      "SLA: attainment (<=300ms fraction), random query", r,
                      &rfh::EpochMetrics::sla_attainment);
  }
  {
    const rfh::Scenario s = rfh::Scenario::paper_flash_crowd();
    const rfh::ComparativeResult r = rfh::run_comparison_pooled(s, {}, jobs);
    rfh::print_figure(std::cout, "SLA: mean latency (ms), flash crowd", r,
                      &rfh::EpochMetrics::latency_mean_ms);
    rfh::print_figure(std::cout,
                      "SLA: attainment (<=300ms fraction), flash crowd", r,
                      &rfh::EpochMetrics::sla_attainment);
  }
  return 0;
}
