// rfh_check: the differential-oracle & fuzzing driver (src/check/).
//
// Modes (mutually exclusive):
//   --seeds=N            fuzz N cases from --seed-start (default 0)
//   --budget-seconds=S   fuzz from --seed-start until the wall-clock
//                        budget is spent (CI smoke mode)
//   --replay=FILE        re-run one committed case JSON
//   --replay-dir=DIR     re-run every *.json case in a directory
//   --mode=meanfield     mean-field analytic oracle: run the engine at
//                        1k / 10k / 100k servers under uniform churn and
//                        check the measured replica census against the
//                        stationary distribution of check/mean_field.h;
//                        the sim-vs-analytic total-variation error must
//                        shrink monotonically with fleet size. Writes
//                        BENCH_meanfield.json (bench_report format).
//
// Other flags:
//   --seed-start=N       first fuzz seed (default 0)
//   --out-dir=DIR        where to write the minimized case on divergence
//                        (default "."); the file is <name>.json with a
//                        one-line report on stdout
//   --smoke              meanfield only: drop the 100k point (CI); the
//                        report is named "meanfield_smoke" so
//                        bench_diff.py gates it against its own
//                        committed baseline
//   --jobs=N             meanfield only: engine worker threads
//                        (0 = one per hardware thread, the default)
//   --quiet              only print the final summary / failure report
//
// Exit codes: 0 = all runs matched; 1 = divergence or invariant
// violation (minimized case written in fuzz modes); 2 = usage or I/O
// error.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_report.h"
#include "check/case.h"
#include "check/diff.h"
#include "check/fuzzer.h"
#include "check/mean_field.h"
#include "check/shrink.h"
#include "core/rfh_policy.h"
#include "exec/thread_pool.h"
#include "fault/chaos.h"
#include "fault/plan.h"
#include "harness/scenario.h"
#include "sim/engine.h"
#include "topology/world.h"
#include "workload/generator.h"

namespace {

struct Options {
  std::uint64_t seeds = 0;
  std::uint64_t seed_start = 0;
  double budget_seconds = 0.0;
  std::string replay;
  std::string replay_dir;
  std::string out_dir = ".";
  bool meanfield = false;
  bool smoke = false;
  std::uint64_t jobs = 0;
  bool quiet = false;
};

bool parse_u64(const std::string& text, std::uint64_t& out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (const char ch : text) {
    if (ch < '0' || ch > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(ch - '0');
  }
  out = value;
  return true;
}

bool parse_args(int argc, char** argv, Options& opt, std::string& error) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) -> std::string {
      return arg.substr(std::string(prefix).size());
    };
    if (arg.rfind("--seeds=", 0) == 0) {
      if (!parse_u64(value("--seeds="), opt.seeds) || opt.seeds == 0) {
        error = "--seeds wants a positive integer: " + arg;
        return false;
      }
    } else if (arg.rfind("--seed-start=", 0) == 0) {
      if (!parse_u64(value("--seed-start="), opt.seed_start)) {
        error = "--seed-start wants a non-negative integer: " + arg;
        return false;
      }
    } else if (arg.rfind("--budget-seconds=", 0) == 0) {
      std::uint64_t seconds = 0;
      if (!parse_u64(value("--budget-seconds="), seconds) || seconds == 0) {
        error = "--budget-seconds wants a positive integer: " + arg;
        return false;
      }
      opt.budget_seconds = static_cast<double>(seconds);
    } else if (arg.rfind("--replay=", 0) == 0) {
      opt.replay = value("--replay=");
    } else if (arg.rfind("--replay-dir=", 0) == 0) {
      opt.replay_dir = value("--replay-dir=");
    } else if (arg.rfind("--out-dir=", 0) == 0) {
      opt.out_dir = value("--out-dir=");
    } else if (arg == "--mode=meanfield") {
      opt.meanfield = true;
    } else if (arg == "--smoke") {
      opt.smoke = true;
    } else if (arg.rfind("--jobs=", 0) == 0) {
      if (!parse_u64(value("--jobs="), opt.jobs)) {
        error = "--jobs wants a non-negative integer: " + arg;
        return false;
      }
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else {
      error = "unknown flag: " + arg;
      return false;
    }
  }
  const int modes = (opt.seeds > 0 ? 1 : 0) +
                    (opt.budget_seconds > 0.0 ? 1 : 0) +
                    (opt.replay.empty() ? 0 : 1) +
                    (opt.replay_dir.empty() ? 0 : 1) +
                    (opt.meanfield ? 1 : 0);
  if (modes != 1) {
    error =
        "pick exactly one mode: --seeds=N, --budget-seconds=S, "
        "--replay=FILE, --replay-dir=DIR or --mode=meanfield";
    return false;
  }
  if ((opt.smoke || opt.jobs > 0) && !opt.meanfield) {
    error = "--smoke and --jobs only apply to --mode=meanfield";
    return false;
  }
  return true;
}

int replay_one(const std::string& path, bool quiet) {
  const rfh::CheckCase::ParseResult parsed = rfh::CheckCase::load(path);
  if (!parsed.ok) {
    std::fprintf(stderr, "rfh_check: %s: %s\n", path.c_str(),
                 parsed.error.c_str());
    return 2;
  }
  const rfh::DiffOutcome outcome = rfh::run_check_case(parsed.value);
  if (!outcome.ok) {
    std::printf("FAIL %s: %s\n", path.c_str(), outcome.to_string().c_str());
    return 1;
  }
  if (!quiet) {
    std::printf("ok   %s: %s\n", path.c_str(), outcome.to_string().c_str());
  }
  return 0;
}

int replay_dir(const std::string& dir, bool quiet) {
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".json") {
      files.push_back(entry.path().string());
    }
  }
  if (ec) {
    std::fprintf(stderr, "rfh_check: cannot read %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return 2;
  }
  if (files.empty()) {
    std::fprintf(stderr, "rfh_check: no *.json cases in %s\n", dir.c_str());
    return 2;
  }
  std::sort(files.begin(), files.end());
  int worst = 0;
  for (const std::string& file : files) {
    worst = std::max(worst, replay_one(file, quiet));
  }
  if (worst == 0 && !quiet) {
    std::printf("rfh_check: %zu corpus cases green\n", files.size());
  }
  return worst;
}

/// Shrink the diverging case and write it under out_dir. Returns the
/// written path (empty when the write failed).
std::string minimize_and_save(const rfh::CheckCase& failing,
                              const Options& opt) {
  // Truncating the horizon to just past the first divergence makes every
  // shrink probe cheap.
  rfh::CheckCase seed_case = failing;
  const rfh::DiffOutcome first = rfh::run_check_case(seed_case);
  if (!first.ok && !first.invariant_failure) {
    seed_case.epochs = std::min(seed_case.epochs, first.epoch + 1);
  }
  const rfh::ShrinkResult shrunk = rfh::shrink_case(
      seed_case,
      [](const rfh::CheckCase& c) { return !rfh::run_check_case(c).ok; });

  std::error_code ec;
  std::filesystem::create_directories(opt.out_dir, ec);
  const std::string path = opt.out_dir + "/case_seed_" +
                           std::to_string(failing.seed) + ".json";
  if (!shrunk.smallest.save(path)) {
    std::fprintf(stderr, "rfh_check: failed to write %s\n", path.c_str());
    return {};
  }
  return path;
}

int fuzz(const Options& opt) {
  const auto start = std::chrono::steady_clock::now();
  const auto budget_spent = [&] {
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return elapsed.count() >= opt.budget_seconds;
  };

  std::uint64_t ran = 0;
  for (std::uint64_t seed = opt.seed_start;; ++seed) {
    if (opt.seeds > 0 && ran >= opt.seeds) break;
    if (opt.budget_seconds > 0.0 && ran > 0 && budget_spent()) break;

    const rfh::CheckCase c = rfh::make_fuzz_case(seed);
    const rfh::DiffOutcome outcome = rfh::run_check_case(c);
    ++ran;
    if (outcome.ok) {
      if (!opt.quiet) {
        std::printf("ok   seed=%llu: %s\n",
                    static_cast<unsigned long long>(seed),
                    outcome.to_string().c_str());
      }
      continue;
    }
    std::printf("FAIL seed=%llu: %s\n", static_cast<unsigned long long>(seed),
                outcome.to_string().c_str());
    const std::string path = minimize_and_save(c, opt);
    if (!path.empty()) {
      std::printf("minimized case written to %s\n", path.c_str());
    }
    return 1;
  }
  std::printf("rfh_check: %llu seeds divergence-free\n",
              static_cast<unsigned long long>(ran));
  return 0;
}

/// Build the scenario every sweep point shares (only the world size
/// varies). The knobs keep the engine inside the census chain's validity
/// envelope (see check/mean_field.h):
///  * min_availability = 0.9995 with the default failure_rate 0.1 puts
///    the Eq. 14 floor at r_min = 4, so the stationary census has real
///    spread over {2, 3, 4} instead of collapsing onto the floor;
///  * the Eq. 12 overload rule structurally disarmed (the model has no
///    overload term): beta pushed out of reach AND per-replica capacity
///    far above any partition's demand — the predicate's demand clamp
///    caps the threshold at 90% of a partition's total traffic no matter
///    how large beta is, but it also requires the holder to exceed its
///    physical capacity, which can then never happen;
///  * migration and suicide disabled for the same reason;
///  * a period-1 churn wave killing 2% of the fleet each epoch, with
///    recover == kill. The controller revives before killing, so every
///    wave picks its victims from a full fleet and the per-server death
///    probability is exactly kill / n — the model's death_prob.
rfh::Scenario meanfield_scenario(std::uint32_t n_dcs, rfh::Epoch horizon) {
  rfh::Scenario scenario;
  scenario.world.rooms_per_datacenter = 2;
  scenario.world.racks_per_room = 5;
  scenario.world.servers_per_rack = 10;  // 100 servers per datacenter
  scenario.world.per_replica_capacity_lo = 1e9;
  scenario.world.per_replica_capacity_hi = 1e9;
  // Hub placement concentrates copies; the default 16-vnode cap starts
  // dropping repairs (kNodeCap) once hot hubs fill up, which would make
  // repair_prob < 1 — a modelling error, not a finite-size one. The
  // partitions hint raises the cap to exactly never-binding.
  scenario.sim.partitions = 8 * n_dcs;
  scenario.world.partitions_hint = scenario.sim.partitions;
  scenario.sim.min_availability = 0.9995;
  scenario.sim.beta = 1e9;
  scenario.sim.gamma = 1e9;
  scenario.epochs = horizon;

  const std::uint32_t n_servers = 100 * n_dcs;
  const auto kill = static_cast<std::uint32_t>(
      std::lround(0.02 * static_cast<double>(n_servers)));
  rfh::FaultEvent churn;
  churn.kind = rfh::FaultKind::kChurn;
  churn.at = 0;
  churn.until = horizon;
  churn.period = 1;
  churn.kill = kill;
  churn.recover = kill;
  scenario.fault_plan.add(churn);
  return scenario;
}

int run_meanfield(const Options& opt) {
  const unsigned jobs = opt.jobs == 0
                            ? rfh::ThreadPool::default_jobs()
                            : static_cast<unsigned>(opt.jobs);
  // Fixed per-replicate horizon at every size: the census is averaged
  // over partitions *and* epochs, and partitions scale with N, so the
  // per-replicate sample count grows tenfold per size decade. The TV
  // error at this death rate is dominated by finite-size *fluctuations*
  // (the propagation-of-chaos CLT scale, O(1/sqrt(partitions))), not by
  // the O(1/N) bias, so a fixed horizon makes the expected TV shrink
  // ~3.2x per decade — whereas shrinking the horizon with N would cancel
  // the very convergence being measured. A single run's TV is still a
  // half-normal draw (sd ~ 0.76x its mean), so adjacent sizes would
  // invert order far too often; averaging over kReplicates independent
  // seeds concentrates the estimate enough that strict monotonicity is a
  // ~3-sigma event per adjacent pair. 2% churn keeps every point in the
  // regime where repair bandwidth never saturates (repair_prob = 1).
  constexpr std::uint32_t kReplicates = 12;
  constexpr rfh::Epoch kWarmup = 10;
  constexpr rfh::Epoch kMeasured = 40;
  const std::vector<std::uint32_t> sizes =
      opt.smoke ? std::vector<std::uint32_t>{10, 100}
                : std::vector<std::uint32_t>{10, 100, 1000};

  rfh::BenchReport report(opt.smoke ? "meanfield_smoke" : "meanfield");
  std::printf("# mean-field census oracle (100-server DCs, 2%% churn per "
              "epoch, %u replicates x %llu+%llu epochs, jobs=%u)\n",
              kReplicates, static_cast<unsigned long long>(kWarmup),
              static_cast<unsigned long long>(kMeasured), jobs);
  std::printf("%8s %10s %10s %10s %12s %12s %12s\n", "servers",
              "tv", "tv_se", "maxbin", "sim E[r]", "pred E[r]", "pred avail");

  bool ok = true;
  double prev_tv = 2.0;  // TV is bounded by 1
  for (const std::uint32_t n_dcs : sizes) {
    const std::uint32_t n_servers = 100 * n_dcs;
    const rfh::Epoch horizon = kWarmup + kMeasured;
    const rfh::Scenario scenario = meanfield_scenario(n_dcs, horizon);

    const rfh::MeanFieldPrediction prediction =
        rfh::predict_census(scenario, n_servers);
    if (!prediction.converged) {
      std::fprintf(stderr,
                   "FAIL: n%u: fixed point did not converge in %u "
                   "iterations\n", n_servers, prediction.iterations);
      return 1;
    }

    double tv_sum = 0.0;
    double tv_sq = 0.0;
    double maxbin_sum = 0.0;
    double replicas_sum = 0.0;
    double avail_sum = 0.0;
    std::uint64_t dropped = 0;
    {
      std::string stage("n");
      stage += std::to_string(n_servers);
      const auto scope = report.stage(stage);
      for (std::uint32_t rep = 0; rep < kReplicates; ++rep) {
        rfh::Scenario seeded = scenario;
        seeded.sim.seed += rep;  // independent workload + chaos streams

        rfh::WorkloadParams params;
        params.partitions = seeded.sim.partitions;
        params.datacenters = n_dcs;
        params.mean_queries_per_epoch = 30.0 * n_dcs;
        std::vector<std::uint32_t> strides;
        for (std::uint32_t s = 8; s < n_dcs; s *= 8) strides.push_back(s);

        rfh::RfhPolicy::Options policy_options;
        policy_options.enable_migration = false;
        policy_options.enable_suicide = false;
        rfh::Simulation sim(
            rfh::build_synthetic_world(n_dcs, seeded.world, strides),
            seeded.sim, std::make_unique<rfh::UniformWorkload>(params),
            std::make_unique<rfh::RfhPolicy>(policy_options));
        sim.set_jobs(jobs);
        rfh::ChaosController chaos(seeded.fault_plan, seeded.sim.seed);

        // Time-averaged post-step census over the measured window.
        // Dropped repairs would mean repair_prob < 1 (a modelling error,
        // not a finite-size one), so they are counted and reported.
        std::vector<double> census(
            seeded.sim.max_replicas_per_partition + 1, 0.0);
        for (rfh::Epoch e = 0; e < horizon; ++e) {
          chaos.before_epoch(sim, e);
          const rfh::EpochReport er = sim.step();
          if (e < kWarmup) continue;
          dropped += er.dropped_actions;
          for (std::uint32_t pv = 0; pv < seeded.sim.partitions; ++pv) {
            const std::size_t k =
                sim.cluster().replicas_of(rfh::PartitionId{pv}).size();
            census[std::min(k, census.size() - 1)] += 1.0;
          }
        }

        const rfh::CensusComparison cmp =
            rfh::compare(census, prediction, seeded.sim.failure_rate);
        tv_sum += cmp.total_variation;
        tv_sq += cmp.total_variation * cmp.total_variation;
        maxbin_sum += cmp.max_bin_error;
        replicas_sum += cmp.sim_expected_replicas;
        avail_sum += cmp.sim_expected_availability;
      }
    }

    const double reps = static_cast<double>(kReplicates);
    const double tv_mean = tv_sum / reps;
    const double tv_var =
        std::max(0.0, tv_sq / reps - tv_mean * tv_mean) / (reps - 1.0);
    const double tv_se = std::sqrt(tv_var);
    std::string n("n");
    n += std::to_string(n_servers);
    report.add_metric("tv_" + n, tv_mean);
    report.add_metric("tv_se_" + n, tv_se);
    report.add_metric("maxbin_" + n, maxbin_sum / reps);
    report.add_metric("replicas_" + n, replicas_sum / reps);
    report.add_metric("availability_" + n, avail_sum / reps);
    report.add_metric("dropped_" + n, static_cast<double>(dropped));
    std::printf("%8u %10.5f %10.5f %10.5f %12.4f %12.4f %12.6f\n", n_servers,
                tv_mean, tv_se, maxbin_sum / reps, replicas_sum / reps,
                prediction.expected_replicas,
                prediction.expected_availability);

    if (tv_mean >= prev_tv) {
      ok = false;
      std::fprintf(stderr,
                   "FAIL: tv(%s)=%.6f did not shrink below the previous "
                   "size's %.6f — finite-size error must decrease with N\n",
                   n.c_str(), tv_mean, prev_tv);
    }
    prev_tv = tv_mean;
  }
  // The prediction is size-independent (kill/n = 2% at every point), so
  // record it once.
  report.add_metric("predicted_replicas",
                    rfh::predict_census(meanfield_scenario(10, 1), 1000)
                        .expected_replicas);
  report.add_metric("predicted_availability",
                    rfh::predict_census(meanfield_scenario(10, 1), 1000)
                        .expected_availability);

  report.write_file();
  if (ok) std::printf("rfh_check: mean-field error monotone in N\n");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  std::string error;
  if (!parse_args(argc, argv, opt, error)) {
    std::fprintf(stderr, "rfh_check: %s\n", error.c_str());
    std::fprintf(stderr,
                 "usage: rfh_check (--seeds=N | --budget-seconds=S | "
                 "--replay=FILE | --replay-dir=DIR | --mode=meanfield) "
                 "[--seed-start=N] [--out-dir=DIR] [--smoke] [--jobs=N] "
                 "[--quiet]\n");
    return 2;
  }
  if (opt.meanfield) return run_meanfield(opt);
  if (!opt.replay.empty()) return replay_one(opt.replay, opt.quiet);
  if (!opt.replay_dir.empty()) return replay_dir(opt.replay_dir, opt.quiet);
  return fuzz(opt);
}
