file(REMOVE_RECURSE
  "librfh_harness.a"
)
