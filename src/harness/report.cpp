#include "harness/report.h"

#include <algorithm>
#include <iomanip>

namespace rfh {

namespace {

void print_tail_ranking(std::ostream& out, const ComparativeResult& result,
                        const std::vector<NamedSeries>& series,
                        std::size_t tail_window) {
  out << "# tail-mean(last " << tail_window << " epochs):";
  std::vector<std::pair<std::string, double>> tails;
  for (std::size_t i = 0; i < series.size(); ++i) {
    const auto& values = series[i].values;
    const std::size_t n = std::min(tail_window, values.size());
    double sum = 0.0;
    for (std::size_t j = values.size() - n; j < values.size(); ++j) {
      sum += values[j];
    }
    tails.emplace_back(series[i].name,
                       n > 0 ? sum / static_cast<double>(n) : 0.0);
  }
  const auto flags = out.flags();
  out << std::fixed << std::setprecision(3);
  for (const auto& [name, value] : tails) {
    out << ' ' << name << '=' << value;
  }
  out.flags(flags);
  out << '\n';
  (void)result;
}

template <typename Extractor>
void print_figure_impl(std::ostream& out, const std::string& title,
                       const ComparativeResult& result, Extractor extractor,
                       std::size_t tail_window) {
  out << "# " << title << '\n';
  std::vector<NamedSeries> series;
  for (const PolicyRun& run : result.runs) {
    series.push_back(NamedSeries{std::string(policy_name(run.kind)),
                                 extractor(run.series)});
  }
  write_csv(out, series);
  print_tail_ranking(out, result, series, tail_window);
  out << '\n';
}

}  // namespace

void print_figure(std::ostream& out, const std::string& title,
                  const ComparativeResult& result,
                  double EpochMetrics::* field, std::size_t tail_window) {
  print_figure_impl(
      out, title, result,
      [field](const std::vector<EpochMetrics>& s) { return extract(s, field); },
      tail_window);
}

void print_figure_u32(std::ostream& out, const std::string& title,
                      const ComparativeResult& result,
                      std::uint32_t EpochMetrics::* field,
                      std::size_t tail_window) {
  print_figure_impl(out, title, result,
                    [field](const std::vector<EpochMetrics>& s) {
                      return extract_u32(s, field);
                    },
                    tail_window);
}

double tail_mean(const PolicyRun& run, double EpochMetrics::* field,
                 std::size_t window) {
  const std::size_t n = std::min(window, run.series.size());
  if (n == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t i = run.series.size() - n; i < run.series.size(); ++i) {
    sum += run.series[i].*field;
  }
  return sum / static_cast<double>(n);
}

}  // namespace rfh
