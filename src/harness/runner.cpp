#include "harness/runner.h"

#include <future>
#include <iterator>
#include <optional>

#include "common/assert.h"
#include "consistency/tracker.h"
#include "fault/chaos.h"
#include "stream/stream_sim.h"

namespace rfh {

const PolicyRun& ComparativeResult::run(PolicyKind kind) const {
  for (const PolicyRun& r : runs) {
    if (r.kind == kind) return r;
  }
  RFH_UNREACHABLE("no run for requested policy");
}

PolicyRun run_policy(const Scenario& scenario, PolicyKind kind,
                     const std::vector<FailureEvent>& failures,
                     const RfhPolicy::Options& rfh, EventSink* trace_sink,
                     MetricRegistry* registry, PhaseProfiler* profiler,
                     InvariantChecker* checker, EventSink* recorder) {
  PolicyRun run;
  run.kind = kind;
  auto sim = make_simulation(scenario, kind, rfh);
  if (trace_sink != nullptr) sim->events().add_sink(trace_sink);
  if (recorder != nullptr) sim->events().add_sink(recorder);
  if (registry != nullptr) sim->set_telemetry(registry);
  if (profiler != nullptr) {
    profiler->set_trace(&sim->events());
    if (registry != nullptr) profiler->attach_registry(*registry);
    sim->set_profiler(profiler);
  }
  MetricsCollector collector;

  // Streaming-load layer: attach the flow log so propagate() records its
  // absorption decisions, then queue the epoch's arrivals after each
  // step. Observational — batch-side results are byte-identical with or
  // without it (tests/stream_test.cpp).
  std::optional<StreamSimulator> stream;
  if (scenario.workload == WorkloadKind::kStream) {
    stream.emplace(sim->world(), registry, scenario.stream,
                   scenario.sim.seed);
    sim->set_flow_log(&stream->flow_log());
  }

  std::optional<ConsistencyTracker> tracker;
  if (scenario.write_fraction > 0.0) {
    tracker.emplace(scenario.sim.partitions,
                    static_cast<std::uint32_t>(sim->topology().server_count()));
  }

  std::optional<ChaosController> chaos;
  if (!scenario.fault_plan.empty()) {
    chaos.emplace(scenario.fault_plan, scenario.sim.seed);
  }

  std::optional<SloWatchdog> watchdog;
  if (scenario.slo.enabled()) {
    watchdog.emplace(scenario.slo, &sim->events(), registry);
  }

  auto note_failures = [&](std::span<const ServerId> victims) {
    if (!tracker) return;
    // Promotions first (they read the survivors' versions), then forget
    // the dead servers' copy state.
    for (const Simulation::Promotion& promo : sim->last_promotions()) {
      tracker->on_promote(promo.partition, promo.new_primary);
    }
    for (const ServerId victim : victims) {
      tracker->on_server_failed(victim);
    }
  };

  for (Epoch e = 0; e < scenario.epochs; ++e) {
    if (chaos) {
      const ChaosController::Applied applied =
          chaos->before_epoch(*sim, e, note_failures);
      run.killed.insert(run.killed.end(), applied.killed.begin(),
                        applied.killed.end());
    }
    for (const FailureEvent& event : failures) {
      if (event.epoch != e) continue;
      if (!event.kill.empty()) {
        sim->fail_servers(event.kill);
        note_failures(event.kill);
      }
      if (event.kill_random > 0) {
        const auto victims = sim->fail_random_servers(event.kill_random);
        note_failures(victims);
        run.killed.insert(run.killed.end(), victims.begin(), victims.end());
      }
      if (!event.recover.empty()) sim->recover_servers(event.recover);
    }
    const EpochReport report = sim->step();
    if (checker != nullptr) checker->check_epoch(*sim, report);
    std::optional<StreamEpochStats> stream_stats;
    if (stream) {
      const ScopedTimer stream_timer(profiler, Phase::kStreamAssign);
      stream_stats = stream->process_epoch(*sim, report);
      if (checker != nullptr) {
        checker->check_stream(*stream_stats, scenario.stream,
                              report.total_queries);
      }
    }
    const ScopedTimer collect_timer(profiler, Phase::kMetricsCollect);
    EpochMetrics metrics = collector.collect(*sim, report);
    if (stream_stats) {
      metrics.stream_arrivals = stream_stats->arrivals;
      metrics.stream_served = stream_stats->served;
      metrics.stream_blocked = stream_stats->blocked;
      metrics.stream_dropped = stream_stats->dropped;
      metrics.stream_max_queue_depth = stream_stats->max_queue_depth;
      metrics.stream_wait_mean_ms = stream_stats->mean_wait_ms;
      metrics.stream_p50_ms = stream_stats->p50_ms;
      metrics.stream_p99_ms = stream_stats->p99_ms;
      metrics.stream_p999_ms = stream_stats->p999_ms;
    }
    if (tracker) {
      std::vector<double> writes(scenario.sim.partitions, 0.0);
      for (std::uint32_t p = 0; p < scenario.sim.partitions; ++p) {
        writes[p] = scenario.write_fraction *
                    sim->traffic().partition_queries(PartitionId{p});
      }
      tracker->advance(sim->cluster(), sim->topology(), sim->paths(), writes);
      metrics.mean_replica_lag = tracker->mean_replica_lag(sim->cluster());
      metrics.stale_read_fraction =
          tracker->stale_read_fraction(sim->traffic(), sim->cluster());
      metrics.lost_writes_total = tracker->lost_writes();
    }
    if (watchdog) {
      // Objective signals come from the same EpochMetrics the figures
      // plot, so breach epochs reconcile with the published series.
      // Stream scenarios measure latency/drops at the queueing layer;
      // batch scenarios fall back to the routing-side equivalents.
      SloSample sample;
      sample.availability = 1.0 - metrics.unserved_fraction;
      sample.stream_p99_ms =
          stream_stats ? metrics.stream_p99_ms : metrics.latency_p99_ms;
      sample.migrations =
          static_cast<double>(metrics.migrations_this_epoch);
      sample.drop_rate = stream_stats && metrics.stream_arrivals > 0.0
                             ? metrics.stream_dropped / metrics.stream_arrivals
                             : metrics.unserved_fraction;
      watchdog->observe(e, sample);
    }
    run.series.push_back(metrics);
  }
  if (watchdog) run.slo_breaches = watchdog->breaches();
  if (chaos) {
    run.faults_injected = chaos->injected_total();
    run.faults_by_kind = chaos->injected_by_kind();
  }
  // Close the last profiler window before the trace is finalized so its
  // PhaseSpan events still reach the caller's sink.
  if (profiler != nullptr) profiler->finalize();
  // Finalize the trace while the caller's sink is guaranteed alive.
  sim->events().close();
  return run;
}

namespace {

constexpr PolicyKind kComparedPolicies[] = {
    PolicyKind::kRequest, PolicyKind::kOwner, PolicyKind::kRandom,
    PolicyKind::kRfh};

}  // namespace

ComparativeResult run_comparison_sequential(
    const Scenario& scenario, const std::vector<FailureEvent>& failures) {
  ComparativeResult result;
  for (const PolicyKind kind : kComparedPolicies) {
    result.runs.push_back(run_policy(scenario, kind, failures));
  }
  return result;
}

ComparativeResult run_comparison(const Scenario& scenario,
                                 const std::vector<FailureEvent>& failures) {
  // One task per policy: simulations share nothing mutable (each builds
  // its own World, workload stream and RNGs from the scenario seed), so
  // this is embarrassingly parallel and stays deterministic.
  std::vector<std::future<PolicyRun>> futures;
  futures.reserve(std::size(kComparedPolicies));
  for (const PolicyKind kind : kComparedPolicies) {
    futures.push_back(std::async(std::launch::async, [&scenario, &failures,
                                                      kind] {
      return run_policy(scenario, kind, failures, RfhPolicy::Options{});
    }));
  }
  ComparativeResult result;
  for (auto& future : futures) {
    result.runs.push_back(future.get());
  }
  return result;
}

}  // namespace rfh
