#include "telemetry/registry.h"

#include <cstdio>

#include "common/assert.h"

namespace rfh {

namespace {

// %.17g round-trips doubles exactly, so the prom and JSON exports of the
// same instrument always agree digit-for-digit.
void append_number(std::string& out, double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  out += buf;
}

// All metric names and label values in the simulator are plain ASCII
// identifiers (enum names, phase names), so no escaping is needed in
// either exposition format — same rule as obs/sinks.cpp.
void append_label_pairs(std::string& out, const MetricLabels& labels,
                        const char* extra_key = nullptr,
                        const char* extra_value = nullptr) {
  if (labels.empty() && extra_key == nullptr) return;
  out += '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    out += value;
    out += '"';
  }
  if (extra_key != nullptr) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += extra_value;
    out += '"';
  }
  out += '}';
}

const char* type_name(bool histogram_as, bool counter_as) {
  if (histogram_as) return "summary";
  return counter_as ? "counter" : "gauge";
}

}  // namespace

MetricRegistry::Family& MetricRegistry::family(std::string_view name,
                                               Type type,
                                               std::string_view help) {
  RFH_ASSERT_MSG(!name.empty(), "metric family needs a name");
  for (Family& fam : families_) {
    if (fam.name == name) {
      RFH_ASSERT_MSG(fam.type == type,
                     "metric family re-registered with a different type");
      if (fam.help.empty() && !help.empty()) fam.help = help;
      return fam;
    }
  }
  Family fam;
  fam.name = std::string(name);
  fam.help = std::string(help);
  fam.type = type;
  families_.push_back(std::move(fam));
  return families_.back();
}

MetricRegistry::Instrument& MetricRegistry::instrument(Family& fam,
                                                       MetricLabels labels) {
  for (Instrument& inst : fam.instruments) {
    if (inst.labels == labels) return inst;
  }
  Instrument inst;
  inst.labels = std::move(labels);
  switch (fam.type) {
    case Type::kCounter: inst.counter = std::make_unique<Counter>(); break;
    case Type::kGauge: inst.gauge = std::make_unique<Gauge>(); break;
    case Type::kHistogram:
      inst.hist = std::make_unique<HistogramMetric>();
      break;
  }
  fam.instruments.push_back(std::move(inst));
  return fam.instruments.back();
}

Counter& MetricRegistry::counter(std::string_view name, MetricLabels labels,
                                 std::string_view help) {
  return *instrument(family(name, Type::kCounter, help), std::move(labels))
              .counter;
}

Gauge& MetricRegistry::gauge(std::string_view name, MetricLabels labels,
                             std::string_view help) {
  return *instrument(family(name, Type::kGauge, help), std::move(labels))
              .gauge;
}

HistogramMetric& MetricRegistry::histogram(std::string_view name,
                                           MetricLabels labels,
                                           std::string_view help) {
  return *instrument(family(name, Type::kHistogram, help), std::move(labels))
              .hist;
}

const MetricRegistry::Instrument* MetricRegistry::find(
    std::string_view name, Type type, const MetricLabels& labels) const {
  for (const Family& fam : families_) {
    if (fam.name != name || fam.type != type) continue;
    for (const Instrument& inst : fam.instruments) {
      if (inst.labels == labels) return &inst;
    }
  }
  return nullptr;
}

const Counter* MetricRegistry::find_counter(std::string_view name,
                                            const MetricLabels& labels) const {
  const Instrument* inst = find(name, Type::kCounter, labels);
  return inst != nullptr ? inst->counter.get() : nullptr;
}

const Gauge* MetricRegistry::find_gauge(std::string_view name,
                                        const MetricLabels& labels) const {
  const Instrument* inst = find(name, Type::kGauge, labels);
  return inst != nullptr ? inst->gauge.get() : nullptr;
}

const HistogramMetric* MetricRegistry::find_histogram(
    std::string_view name, const MetricLabels& labels) const {
  const Instrument* inst = find(name, Type::kHistogram, labels);
  return inst != nullptr ? inst->hist.get() : nullptr;
}

std::size_t MetricRegistry::size() const noexcept {
  std::size_t n = 0;
  for (const Family& fam : families_) n += fam.instruments.size();
  return n;
}

void MetricRegistry::write_prometheus(std::ostream& out) const {
  std::string line;
  for (const Family& fam : families_) {
    if (!fam.help.empty()) {
      out << "# HELP " << fam.name << ' ' << fam.help << '\n';
    }
    out << "# TYPE " << fam.name << ' '
        << type_name(fam.type == Type::kHistogram, fam.type == Type::kCounter)
        << '\n';
    for (const Instrument& inst : fam.instruments) {
      if (fam.type == Type::kHistogram) {
        const Histogram& h = inst.hist->histogram();
        const auto quantiles = h.quantiles(Histogram::kSnapshotQuantiles);
        for (std::size_t i = 0; i < quantiles.size(); ++i) {
          char q[16];
          std::snprintf(q, sizeof q, "%g",
                        Histogram::kSnapshotQuantiles[i]);
          line.clear();
          line += fam.name;
          append_label_pairs(line, inst.labels, "quantile", q);
          line += ' ';
          append_number(line, quantiles[i]);
          out << line << '\n';
        }
        line.clear();
        line += fam.name;
        line += "_sum";
        append_label_pairs(line, inst.labels);
        line += ' ';
        append_number(line, h.mean() * h.total_weight());
        out << line << '\n';
        line.clear();
        line += fam.name;
        line += "_count";
        append_label_pairs(line, inst.labels);
        line += ' ';
        append_number(line, h.total_weight());
        out << line << '\n';
        continue;
      }
      line.clear();
      line += fam.name;
      append_label_pairs(line, inst.labels);
      line += ' ';
      append_number(line, fam.type == Type::kCounter ? inst.counter->value()
                                                     : inst.gauge->value());
      out << line << '\n';
    }
  }
}

void MetricRegistry::write_json(std::ostream& out) const {
  std::string doc;
  doc += "{\"schema\":\"rfh-metrics/1\",\"metrics\":[";
  bool first_family = true;
  for (const Family& fam : families_) {
    if (!first_family) doc += ',';
    first_family = false;
    doc += "{\"name\":\"";
    doc += fam.name;
    doc += "\",\"type\":\"";
    doc += type_name(fam.type == Type::kHistogram,
                     fam.type == Type::kCounter);
    doc += "\",\"help\":\"";
    doc += fam.help;
    doc += "\",\"series\":[";
    bool first_inst = true;
    for (const Instrument& inst : fam.instruments) {
      if (!first_inst) doc += ',';
      first_inst = false;
      doc += "{\"labels\":{";
      bool first_label = true;
      for (const auto& [key, value] : inst.labels) {
        if (!first_label) doc += ',';
        first_label = false;
        doc += '"';
        doc += key;
        doc += "\":\"";
        doc += value;
        doc += '"';
      }
      doc += '}';
      if (fam.type == Type::kHistogram) {
        doc += ",\"summary\":";
        inst.hist->histogram().append_json(doc,
                                           Histogram::kSnapshotQuantiles);
      } else {
        doc += ",\"value\":";
        append_number(doc, fam.type == Type::kCounter
                               ? inst.counter->value()
                               : inst.gauge->value());
      }
      doc += '}';
    }
    doc += "]}";
  }
  doc += "]}";
  out << doc << '\n';
}

}  // namespace rfh
