#include "baselines/owner_policy.h"

#include <algorithm>
#include <vector>

#include "common/availability.h"

namespace rfh {

namespace {

/// First feasible server in `dc`, preferring racks that do not already
/// hold a copy of p (rack diversity: "it would like to choose a rack
/// different from another replica").
ServerId pick_in_dc(const PolicyContext& ctx, DatacenterId dc, PartitionId p) {
  std::vector<RackId> used_racks;
  for (const Replica& r : ctx.cluster.replicas_of(p)) {
    used_racks.push_back(ctx.topology.server(r.server).rack);
  }
  ServerId fallback;
  for (const ServerId s : ctx.cluster.live_by_dc()[dc.value()]) {
    if (!ctx.cluster.can_accept(s, p)) continue;
    const RackId rack = ctx.topology.server(s).rack;
    const bool rack_used =
        std::find(used_racks.begin(), used_racks.end(), rack) !=
        used_racks.end();
    if (!rack_used) return s;
    if (!fallback.valid()) fallback = s;
  }
  return fallback;
}

}  // namespace

ServerId OwnerOrientedPolicy::best_target(const PolicyContext& ctx,
                                          PartitionId p) {
  const ServerId primary = ctx.cluster.primary_of(p);
  const DatacenterId home = ctx.topology.server(primary).datacenter;

  // Candidate datacenters by (no copy yet first, then distance from the
  // owner): a copy in a fresh datacenter maximizes availability (level 5
  // against every existing copy), and among fresh datacenters the Eq. 1
  // cost — proportional to d — prefers the closest: "replicas will be
  // placed on B and C, which are in the same country of A, or ... on D,
  // which is in the same continent".
  std::vector<DatacenterId> dcs;
  for (const Datacenter& dc : ctx.topology.datacenters()) {
    if (dc.id != home) dcs.push_back(dc.id);
  }
  auto has_copy_in = [&](DatacenterId dc) {
    return !ctx.cluster.hosts_in_dc(p, dc).empty();
  };
  std::sort(dcs.begin(), dcs.end(), [&](DatacenterId a, DatacenterId b) {
    const bool copy_a = has_copy_in(a);
    const bool copy_b = has_copy_in(b);
    if (copy_a != copy_b) return !copy_a;  // fresh datacenters first
    return ctx.topology.distance_km(home, a) <
           ctx.topology.distance_km(home, b);
  });
  for (const DatacenterId dc : dcs) {
    const ServerId s = pick_in_dc(ctx, dc, p);
    if (s.valid()) return s;
  }
  // Everything remote is saturated: fall back to the home datacenter
  // (availability level 4/3, near-zero cost).
  return pick_in_dc(ctx, home, p);
}

Actions OwnerOrientedPolicy::decide(const PolicyContext& ctx) {
  Actions actions;
  const std::uint32_t rmin =
      min_replicas(ctx.config.min_availability, ctx.config.failure_rate);

  const bool membership_changed =
      seen_first_epoch_ && ctx.cluster.live_server_count() != last_live_count_;
  last_live_count_ = ctx.cluster.live_server_count();
  seen_first_epoch_ = true;

  for (std::uint32_t pv = 0; pv < ctx.config.partitions; ++pv) {
    const PartitionId p{pv};
    const ServerId primary = ctx.cluster.primary_of(p);
    if (!primary.valid()) continue;

    const std::uint32_t r = ctx.cluster.replica_count(p);
    const bool overloaded = holder_overloaded(ctx, p, primary);

    if (r < rmin ||
        (overloaded && r < ctx.config.max_replicas_per_partition)) {
      const ServerId target = best_target(ctx, p);
      if (target.valid()) {
        actions.replications.push_back(ReplicateAction{p, target, {}});
      }
      continue;
    }

    // Migration: only re-examined when membership changed — a higher
    // availability-versus-cost placement can only appear then.
    if (!membership_changed) continue;
    const DatacenterId home = ctx.topology.server(primary).datacenter;
    for (const Replica& replica : ctx.cluster.replicas_of(p)) {
      if (replica.primary) continue;
      const DatacenterId dc = ctx.topology.server(replica.server).datacenter;
      if (dc == home) continue;  // already cheap
      // A strictly closer datacenter with no copy yet?
      const double current_d = ctx.topology.distance_km(home, dc);
      for (const Datacenter& cand : ctx.topology.datacenters()) {
        if (cand.id == home || cand.id == dc) continue;
        if (!ctx.cluster.hosts_in_dc(p, cand.id).empty()) continue;
        if (ctx.topology.distance_km(home, cand.id) >= current_d) continue;
        const ServerId target = pick_in_dc(ctx, cand.id, p);
        if (target.valid()) {
          actions.migrations.push_back(
              MigrateAction{p, replica.server, target, {}});
          break;
        }
      }
      break;  // at most one migration per partition per epoch
    }
  }
  return actions;
}

}  // namespace rfh
