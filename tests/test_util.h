// Shared test helpers: controlled worlds (degenerate capacity ranges so
// every server is identical), scripted workloads and policies, and small
// scenario builders.
#pragma once

#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/engine.h"
#include "topology/world.h"
#include "workload/generator.h"

namespace rfh::test {

/// World options with all heterogeneity collapsed: every server has
/// exactly `capacity` per-replica capacity, `channels` service channels,
/// and `storage` bytes of disk.
inline WorldOptions uniform_world_options(double capacity = 2.0,
                                          std::uint32_t channels = 4,
                                          Bytes storage = gib(10)) {
  WorldOptions o;
  o.per_replica_capacity_lo = capacity;
  o.per_replica_capacity_hi = capacity;
  o.service_channels_lo = channels;
  o.service_channels_hi = channels;
  o.storage_capacity_lo = storage;
  o.storage_capacity_hi = storage;
  return o;
}

/// Emits the same fixed batch every epoch (deterministic by construction).
class FixedWorkload final : public WorkloadGenerator {
 public:
  explicit FixedWorkload(QueryBatch batch) : batch_(std::move(batch)) {}
  [[nodiscard]] QueryBatch generate(Epoch /*epoch*/, Rng& /*rng*/) override {
    return batch_;
  }

 private:
  QueryBatch batch_;
};

/// Emits batches from a per-epoch schedule; epochs beyond the schedule
/// reuse the last entry (empty schedule -> empty batches).
class ScheduledWorkload final : public WorkloadGenerator {
 public:
  explicit ScheduledWorkload(std::vector<QueryBatch> schedule)
      : schedule_(std::move(schedule)) {}
  [[nodiscard]] QueryBatch generate(Epoch epoch, Rng& /*rng*/) override {
    if (schedule_.empty()) return {};
    const std::size_t i =
        std::min<std::size_t>(epoch, schedule_.size() - 1);
    return schedule_[i];
  }

 private:
  std::vector<QueryBatch> schedule_;
};

/// Never acts.
class NullPolicy final : public ReplicationPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "Null"; }
  [[nodiscard]] Actions decide(const PolicyContext& /*ctx*/) override {
    return {};
  }
};

/// Replays a fixed queue of action sets, then does nothing.
class ScriptedPolicy final : public ReplicationPolicy {
 public:
  explicit ScriptedPolicy(std::vector<Actions> script)
      : script_(std::move(script)) {}
  [[nodiscard]] std::string_view name() const override { return "Scripted"; }
  [[nodiscard]] Actions decide(const PolicyContext& /*ctx*/) override {
    if (next_ >= script_.size()) return {};
    return script_[next_++];
  }

 private:
  std::vector<Actions> script_;
  std::size_t next_ = 0;
};

/// Adapts a callable into a policy — handy for probing the PolicyContext
/// from inside a running simulation.
template <typename Fn>
class LambdaPolicy final : public ReplicationPolicy {
 public:
  explicit LambdaPolicy(Fn fn) : fn_(std::move(fn)) {}
  [[nodiscard]] std::string_view name() const override { return "Lambda"; }
  [[nodiscard]] Actions decide(const PolicyContext& ctx) override {
    return fn_(ctx);
  }

 private:
  Fn fn_;
};

template <typename Fn>
std::unique_ptr<LambdaPolicy<Fn>> make_lambda_policy(Fn fn) {
  return std::make_unique<LambdaPolicy<Fn>>(std::move(fn));
}

/// A paper-world simulation with a fixed workload and a given policy.
inline std::unique_ptr<Simulation> make_fixed_sim(
    QueryBatch batch, std::unique_ptr<ReplicationPolicy> policy,
    SimConfig config = {}, WorldOptions world_options = uniform_world_options()) {
  return std::make_unique<Simulation>(
      build_paper_world(world_options), config,
      std::make_unique<FixedWorkload>(std::move(batch)), std::move(policy));
}

}  // namespace rfh::test
