#include "sim/config.h"

#include <charconv>

namespace rfh {

namespace {

bool parse_u32(std::string_view text, std::uint32_t& out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

}  // namespace

std::string redundancy_spec(const SimConfig& config) {
  if (config.redundancy == RedundancyMode::kReplica) return "replica";
  return "ec(" + std::to_string(config.ec_k) + "," +
         std::to_string(config.ec_m) + ")";
}

bool parse_redundancy(std::string_view text, SimConfig& config,
                      std::string& error) {
  if (text == "replica") {
    config.redundancy = RedundancyMode::kReplica;
    return true;
  }
  const auto reject = [&] {
    error = "unsupported redundancy mode '" + std::string(text) +
            "' (want replica or ec(k,m) with k >= 2, m >= 1, k + m <= 16)";
    return false;
  };
  if (!text.starts_with("ec(") || !text.ends_with(")")) return reject();
  const std::string_view args = text.substr(3, text.size() - 4);
  const std::size_t comma = args.find(',');
  if (comma == std::string_view::npos) return reject();
  std::uint32_t k = 0;
  std::uint32_t m = 0;
  if (!parse_u32(args.substr(0, comma), k) ||
      !parse_u32(args.substr(comma + 1), m)) {
    return reject();
  }
  if (k < 2 || m < 1 || k + m > 16) return reject();
  config.redundancy = RedundancyMode::kErasure;
  config.ec_k = k;
  config.ec_m = m;
  return true;
}

}  // namespace rfh
