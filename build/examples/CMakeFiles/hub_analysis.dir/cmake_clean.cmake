file(REMOVE_RECURSE
  "CMakeFiles/hub_analysis.dir/hub_analysis.cpp.o"
  "CMakeFiles/hub_analysis.dir/hub_analysis.cpp.o.d"
  "hub_analysis"
  "hub_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hub_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
