#include "net/shortest_paths.h"

#include <algorithm>
#include <queue>

#include "common/assert.h"

namespace rfh {

ShortestPaths::ShortestPaths(const DcGraph& graph)
    : n_(graph.size()),
      dist_(n_ * n_, kUnreachable),
      pred_(n_ * n_, DatacenterId::invalid()) {
  using QueueItem = std::pair<double, std::uint32_t>;  // (dist, node)
  for (std::size_t s = 0; s < n_; ++s) {
    auto* dist = &dist_[s * n_];
    auto* pred = &pred_[s * n_];
    dist[s] = 0.0;
    std::priority_queue<QueueItem, std::vector<QueueItem>,
                        std::greater<QueueItem>>
        queue;
    queue.emplace(0.0, static_cast<std::uint32_t>(s));
    while (!queue.empty()) {
      const auto [d, at] = queue.top();
      queue.pop();
      if (d > dist[at]) continue;  // stale entry
      for (const Edge& e : graph.neighbors(DatacenterId{at})) {
        const std::uint32_t to = e.to.value();
        const double nd = d + e.km;
        // Strictly-better relaxation, with a deterministic tie-break on
        // equal distance: prefer the lower-id predecessor.
        if (nd < dist[to] ||
            (nd == dist[to] && pred[to].valid() && at < pred[to].value())) {
          dist[to] = nd;
          pred[to] = DatacenterId{at};
          queue.emplace(nd, to);
        }
      }
    }
  }
}

std::vector<DatacenterId> ShortestPaths::path(DatacenterId from,
                                              DatacenterId to) const {
  RFH_ASSERT(from.value() < n_ && to.value() < n_);
  RFH_ASSERT_MSG(dist_[from.value() * n_ + to.value()] != kUnreachable,
                 "no path between datacenters");
  std::vector<DatacenterId> reversed;
  DatacenterId at = to;
  while (at != from) {
    reversed.push_back(at);
    at = pred_[from.value() * n_ + at.value()];
    RFH_ASSERT_MSG(at.valid(), "broken predecessor chain");
  }
  reversed.push_back(from);
  std::reverse(reversed.begin(), reversed.end());
  return reversed;
}

double ShortestPaths::distance_km(DatacenterId from, DatacenterId to) const {
  RFH_ASSERT(from.value() < n_ && to.value() < n_);
  return dist_[from.value() * n_ + to.value()];
}

std::uint32_t ShortestPaths::hop_count(DatacenterId from,
                                       DatacenterId to) const {
  if (from == to) return 0;
  return static_cast<std::uint32_t>(path(from, to).size() - 1);
}

std::vector<std::uint32_t> ShortestPaths::transit_counts(
    DatacenterId to) const {
  std::vector<std::uint32_t> counts(n_, 0);
  for (std::size_t s = 0; s < n_; ++s) {
    if (s == to.value()) continue;
    const auto p = path(DatacenterId{static_cast<std::uint32_t>(s)}, to);
    for (std::size_t i = 1; i + 1 < p.size(); ++i) {
      ++counts[p[i].value()];
    }
  }
  return counts;
}

}  // namespace rfh
