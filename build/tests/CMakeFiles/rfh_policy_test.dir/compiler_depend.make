# Empty compiler generated dependencies file for rfh_policy_test.
# This may be replaced when dependencies are built.
