// Fault tolerance end to end: mass failure, promotion, re-replication,
// recovery (paper Fig. 10 and Section III-G).
#include <gtest/gtest.h>

#include <algorithm>

#include "common/availability.h"
#include "harness/report.h"
#include "harness/runner.h"

namespace rfh {
namespace {

TEST(FailureRecovery, CensusDropsAtTheKillAndRecovers) {
  Scenario scenario = Scenario::paper_random_query();
  scenario.epochs = 200;
  FailureEvent event;
  event.epoch = 100;
  event.kill_random = 30;
  const PolicyRun run = run_policy(scenario, PolicyKind::kRfh, {event});

  const auto replicas = [&](std::size_t e) {
    return run.series[e].total_replicas;
  };
  // Sharp drop at the failure epoch...
  EXPECT_LT(replicas(100), replicas(99));
  const double drop = 1.0 - static_cast<double>(replicas(100)) /
                                static_cast<double>(replicas(99));
  EXPECT_GT(drop, 0.05);  // 30% of servers held a visible share of copies
  // ...and recovery to (near) the pre-failure plateau.
  double plateau = 0.0;
  double recovered = 0.0;
  for (std::size_t e = 70; e < 100; ++e) plateau += replicas(e);
  for (std::size_t e = 170; e < 200; ++e) recovered += replicas(e);
  plateau /= 30.0;
  recovered /= 30.0;
  EXPECT_GT(recovered, 0.9 * plateau);
}

TEST(FailureRecovery, AvailabilityFloorIsRestoredAfterMassFailure) {
  Scenario scenario = Scenario::paper_random_query();
  scenario.epochs = 160;
  FailureEvent event;
  event.epoch = 80;
  event.kill_random = 30;
  const PolicyRun run = run_policy(scenario, PolicyKind::kRfh, {event});
  const std::uint32_t floor =
      min_replicas(scenario.sim.min_availability, scenario.sim.failure_rate);
  // Well after the failure every partition is back at or above the floor.
  EXPECT_GE(run.series.back().avg_replicas_per_partition,
            static_cast<double>(floor) - 0.05);
}

TEST(FailureRecovery, ServiceContinuesThroughTheFailure) {
  Scenario scenario = Scenario::paper_random_query();
  scenario.epochs = 160;
  FailureEvent event;
  event.epoch = 80;
  event.kill_random = 30;
  const PolicyRun run = run_policy(scenario, PolicyKind::kRfh, {event});
  // The unserved spike right after the failure decays again.
  double spike = 0.0;
  for (std::size_t e = 80; e < 90; ++e) {
    spike = std::max(spike, run.series[e].unserved_fraction);
  }
  EXPECT_LT(tail_mean(run, &EpochMetrics::unserved_fraction, 20),
            std::max(spike, 0.12));
}

TEST(FailureRecovery, RepeatedSmallFailuresAreAbsorbed) {
  Scenario scenario = Scenario::paper_random_query();
  scenario.epochs = 150;
  std::vector<FailureEvent> events;
  for (Epoch e = 30; e <= 120; e += 30) {
    FailureEvent event;
    event.epoch = e;
    event.kill_random = 5;
    events.push_back(event);
  }
  const PolicyRun run = run_policy(scenario, PolicyKind::kRfh, events);
  EXPECT_EQ(run.killed.size(), 20u);
  EXPECT_GT(run.series.back().total_replicas, 64u);  // still replicated
}

TEST(FailureRecovery, EveryPolicySurvivesMassFailure) {
  Scenario scenario = Scenario::paper_random_query();
  scenario.epochs = 100;
  FailureEvent event;
  event.epoch = 50;
  event.kill_random = 30;
  for (const PolicyKind kind : {PolicyKind::kRequest, PolicyKind::kOwner,
                                PolicyKind::kRandom, PolicyKind::kRfh}) {
    const PolicyRun run = run_policy(scenario, kind, {event});
    EXPECT_EQ(run.series.size(), 100u) << policy_name(kind);
    // Every partition still has a primary serving queries.
    EXPECT_GT(run.series.back().total_replicas, 0u) << policy_name(kind);
  }
}

TEST(FailureRecovery, RecoveredServersAreReused) {
  Scenario scenario = Scenario::paper_random_query();
  scenario.epochs = 160;
  auto sim = make_simulation(scenario, PolicyKind::kRfh);
  sim->run(60);
  const auto victims = sim->fail_random_servers(30);
  sim->run(20);
  sim->recover_servers(victims);
  sim->run(80);
  // Some copies land back on the recovered servers.
  std::uint32_t copies_on_recovered = 0;
  for (const ServerId s : victims) {
    copies_on_recovered += sim->cluster().copies_on(s);
  }
  EXPECT_GT(copies_on_recovered, 0u);
  sim->cluster().check_invariants();
}

}  // namespace
}  // namespace rfh
