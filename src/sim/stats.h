// Exponentially smoothed traffic statistics (paper Eqs. 9-11).
//
// All policies observe the cluster through these smoothed series:
//   q_bar_i   — per-partition system average query (Eq. 9 averaged over
//               requesters, smoothed by Eq. 10);
//   tr_bar_ik — per-(partition, server) traffic load (Eq. 11);
//   per-(partition, requester) query volume (used by the
//               request-oriented comparator);
//   per-server arrival rate (Erlang-B's lambda, Eq. 18).
//
// The tr_bar plane is sparse: each partition holds cells (sorted by
// server id) only for servers whose EWMA is nonzero. update() merges the
// cell list with the epoch's sparse traffic cells in ascending server
// order; servers absent from both sides would contribute a*0 + b*0 =
// +0.0 to the value and the Eq. 17 sum — exact IEEE identities — so
// skipping them is bit-identical to the dense scan the seed performed
// (the differential oracle checks this). Cells whose EWMA decays to
// exactly 0.0 are pruned for the same reason.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/ids.h"
#include "sim/traffic.h"
#include "workload/generator.h"

namespace rfh {

class ThreadPool;

/// One (partition, server) smoothed-traffic cell (tr_bar_ik).
struct StatCell {
  std::uint32_t server = 0;
  double ewma = 0.0;
};

class TrafficStats {
 public:
  /// `alpha_weights_history`: Eq. 10's printed orientation (see
  /// SimConfig::alpha_weights_history).
  TrafficStats(std::size_t partitions, std::size_t servers,
               std::size_t datacenters, double alpha,
               bool alpha_weights_history = true);

  /// Fold in one epoch of raw observations. Every write is indexed by
  /// partition or by server, so with a pool the fold shards those axes
  /// across workers; each output value is a pure function of its own
  /// inputs, making the result bit-identical for every worker count.
  void update(const EpochTraffic& traffic, ThreadPool* pool = nullptr);

  /// Freeze (or thaw) a server's smoothed series: while frozen, update()
  /// leaves the server's tr_bar cells and arrival rate untouched, so the
  /// server keeps feeding its stale numbers into Eq. 17 — the Byzantine
  /// stale-stats fault (fault/plan.h `stalestats`). Partition-axis
  /// aggregates (q_bar, requester queries) stay live; only the
  /// server-indexed series freeze. clear_server still wipes a frozen
  /// server, so a frozen victim that later dies is forgotten as usual.
  void set_frozen(ServerId s, bool frozen);
  [[nodiscard]] bool frozen(ServerId s) const;

  /// Forget everything about a failed server. Without this, the
  /// exponentially decaying tr_bar entries of dead servers keep inflating
  /// Eq. 17's numerator while mean_node_traffic() divides by the *live*
  /// server count, skewing the migration-benefit test (Eq. 16) for many
  /// epochs after a failure. Called by the engine when a server dies.
  void clear_server(ServerId s);

  /// q_bar_i: smoothed system average query for partition p — the paper
  /// divides the partition's total demand by the number of requesters N.
  [[nodiscard]] double avg_query(PartitionId p) const;

  /// tr_bar_ik: smoothed traffic load of server s for partition p.
  [[nodiscard]] double node_traffic(PartitionId p, ServerId s) const;

  /// The partition's nonzero tr_bar cells, ascending server id — the
  /// hub-candidate scan iterates these instead of the full server axis.
  [[nodiscard]] std::span<const StatCell> node_cells(PartitionId p) const;

  /// Smoothed queries for p issued near datacenter j.
  [[nodiscard]] double requester_queries(PartitionId p, DatacenterId j) const;

  /// Smoothed per-server arrival rate (queries touched per epoch).
  [[nodiscard]] double server_arrival(ServerId s) const;

  /// Eq. 17: mean smoothed traffic for p over the N live servers.
  [[nodiscard]] double mean_node_traffic(PartitionId p,
                                         std::size_t live_servers) const;

  [[nodiscard]] double alpha() const noexcept { return alpha_; }
  [[nodiscard]] bool initialized() const noexcept { return initialized_; }

 private:
  std::size_t partitions_;
  std::size_t servers_;
  std::size_t datacenters_;
  double alpha_;  // effective history weight
  bool initialized_ = false;
  std::vector<double> avg_query_;                 // [p]
  std::vector<std::vector<StatCell>> node_cells_;  // [p], sorted by server
  std::vector<double> node_traffic_sum_;          // [p] (for Eq. 17)
  std::vector<double> requester_queries_;         // [p][dc]
  std::vector<double> server_arrival_;            // [s]
  std::vector<char> frozen_;                      // [s] stale-stats flags
};

}  // namespace rfh
