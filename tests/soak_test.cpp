// 200-epoch rolling-churn soak with the invariant checker in fail-fast
// mode. Not a gtest binary: registered under `ctest -C soak` (label
// `soak`) and run by the CI sanitizer job, outside the tier-1 suite.
#include <cstdio>

#include "fault/invariants.h"
#include "fault/plan.h"
#include "harness/runner.h"
#include "harness/scenario.h"

namespace {

rfh::FaultPlan soak_plan() {
  using rfh::FaultEvent;
  using rfh::FaultKind;
  rfh::FaultPlan plan;

  // The backbone: rolling churn for the whole run, one server swapped
  // out every three epochs.
  FaultEvent churn;
  churn.kind = FaultKind::kChurn;
  churn.at = 3;
  churn.until = 200;
  churn.period = 3;
  churn.kill = 1;
  churn.recover = 1;
  plan.add(churn);

  // A correlated burst on top of it.
  FaultEvent crash;
  crash.kind = FaultKind::kCrash;
  crash.at = 50;
  crash.count = 8;
  plan.add(crash);

  FaultEvent heal;
  heal.kind = FaultKind::kRecover;
  heal.at = 70;
  heal.count = 8;
  plan.add(heal);

  // A whole datacenter drops out and comes back.
  FaultEvent outage;
  outage.kind = FaultKind::kDatacenterOutage;
  outage.at = 100;
  outage.dc = rfh::DatacenterId{4};
  outage.recover_after = 20;
  plan.add(outage);

  // An unstable inter-datacenter link through the middle of the run.
  FaultEvent flap;
  flap.kind = FaultKind::kLinkFlap;
  flap.at = 80;
  flap.until = 160;
  flap.link_a = rfh::DatacenterId{1};
  flap.link_b = rfh::DatacenterId{2};
  flap.period = 8;
  flap.down = 3;
  plan.add(flap);

  // Demand doubles while the outage is still healing.
  FaultEvent crowd;
  crowd.kind = FaultKind::kFlashCrowd;
  crowd.at = 110;
  crowd.duration = 30;
  crowd.factor = 2.0;
  plan.add(crowd);

  return plan;
}

}  // namespace

int main() {
  rfh::Scenario scenario = rfh::Scenario::paper_random_query();
  scenario.epochs = 200;
  scenario.fault_plan = soak_plan();

  // Fail-fast: any violated invariant aborts with the details on stderr,
  // which the sanitizer job surfaces as a test failure.
  rfh::InvariantChecker checker(rfh::InvariantChecker::Mode::kFailFast);
  const rfh::PolicyRun run =
      rfh::run_policy(scenario, rfh::PolicyKind::kRfh, {},
                      rfh::RfhPolicy::Options{}, nullptr, nullptr, nullptr,
                      &checker);

  if (run.series.size() != scenario.epochs ||
      checker.epochs_checked() != scenario.epochs) {
    std::fprintf(stderr, "soak: expected %u epochs, ran %zu (checked %zu)\n",
                 scenario.epochs, run.series.size(),
                 checker.epochs_checked());
    return 1;
  }
  if (run.faults_injected == 0) {
    std::fprintf(stderr, "soak: fault plan injected nothing\n");
    return 1;
  }
  std::printf("soak: 200 epochs, %llu faults injected, %s\n",
              static_cast<unsigned long long>(run.faults_injected),
              checker.summary().c_str());
  return 0;
}
