#include "telemetry/profiler.h"

#include <algorithm>
#include <cstdio>

#include "obs/event_bus.h"
#include "telemetry/registry.h"

namespace rfh {

const char* phase_name(Phase phase) noexcept {
  switch (phase) {
    case Phase::kWorkloadGen: return "workload_gen";
    case Phase::kRouting: return "routing";
    case Phase::kStatsUpdate: return "stats_update";
    case Phase::kPolicyDecide: return "policy_decide";
    case Phase::kActionApply: return "action_apply";
    case Phase::kStreamAssign: return "stream_assign";
    case Phase::kMetricsCollect: return "metrics_collect";
  }
  return "?";
}

namespace {

constexpr double kNsPerMs = 1e6;

std::uint64_t elapsed_ns(PhaseProfiler::Clock::time_point start,
                         PhaseProfiler::Clock::time_point end) {
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count();
  return ns > 0 ? static_cast<std::uint64_t>(ns) : 0;
}

}  // namespace

void PhaseProfiler::attach_registry(MetricRegistry& registry) {
  registry_ = &registry;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    phase_hist_[i] = &registry.histogram(
        "rfh_phase_duration_ms",
        {{"phase", phase_name(static_cast<Phase>(i))}},
        "Wall-clock time per epoch spent in each engine phase");
  }
  epoch_hist_ = &registry.histogram(
      "rfh_epoch_duration_ms", {},
      "Wall-clock time per epoch (step + metric collection)");
}

void PhaseProfiler::record(Phase phase, Clock::time_point start,
                           Clock::time_point end) {
  const std::uint64_t ns = elapsed_ns(start, end);
  const auto i = static_cast<std::size_t>(phase);
  Lifetime& life = lifetime_[i];
  ++life.calls;
  life.total_ns += ns;
  if (ns > life.max_ns) life.max_ns = ns;
  if (!window_open_) return;
  InEpoch& epoch = in_epoch_[i];
  if (!epoch.seen) {
    epoch.seen = true;
    epoch.first_start_ns = elapsed_ns(window_start_, start);
  }
  epoch.accum_ns += ns;
}

void PhaseProfiler::begin_epoch(Epoch epoch) {
  close_window();
  window_open_ = true;
  window_epoch_ = epoch;
  in_epoch_.fill(InEpoch{});
  window_start_ = Clock::now();
}

void PhaseProfiler::finalize() { close_window(); }

void PhaseProfiler::close_window() {
  if (!window_open_) return;
  window_open_ = false;
  const std::uint64_t wall_ns = elapsed_ns(window_start_, Clock::now());
  epoch_wall_ns_ += wall_ns;
  ++epochs_;

  if (registry_ != nullptr) {
    epoch_hist_->observe(static_cast<double>(wall_ns) / kNsPerMs);
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      if (in_epoch_[i].seen) {
        phase_hist_[i]->observe(static_cast<double>(in_epoch_[i].accum_ns) /
                                kNsPerMs);
      }
    }
  }

  if (trace_ == nullptr || !trace_->enabled() || wall_ns == 0) return;
  // Phase slices expressed as fractions of the epoch window, so the
  // ChromeTraceSink can nest them inside the (simulated-time) epoch slice
  // whatever the real-to-simulated time ratio is.
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const InEpoch& e = in_epoch_[i];
    if (!e.seen) continue;
    PhaseSpan span;
    span.epoch = window_epoch_;
    span.phase = phase_name(static_cast<Phase>(i));
    const double wall = static_cast<double>(wall_ns);
    span.start_frac =
        std::min(static_cast<double>(e.first_start_ns) / wall, 1.0);
    span.dur_frac = std::min(static_cast<double>(e.accum_ns) / wall,
                             1.0 - span.start_frac);
    span.wall_ms = static_cast<double>(e.accum_ns) / kNsPerMs;
    trace_->emit(span);
  }
}

PhaseProfiler::PhaseTotals PhaseProfiler::totals(Phase phase) const noexcept {
  const Lifetime& life = lifetime_[static_cast<std::size_t>(phase)];
  PhaseTotals out;
  out.calls = life.calls;
  out.total_ms = static_cast<double>(life.total_ns) / kNsPerMs;
  out.max_ms = static_cast<double>(life.max_ns) / kNsPerMs;
  return out;
}

double PhaseProfiler::epoch_wall_ms() const noexcept {
  return static_cast<double>(epoch_wall_ns_) / kNsPerMs;
}

double PhaseProfiler::coverage() const noexcept {
  if (epoch_wall_ns_ == 0) return 0.0;
  std::uint64_t phase_ns = 0;
  for (const Lifetime& life : lifetime_) phase_ns += life.total_ns;
  return static_cast<double>(phase_ns) / static_cast<double>(epoch_wall_ns_);
}

void PhaseProfiler::write_table(std::ostream& out, const char* line_prefix) {
  finalize();
  char buf[160];
  const double wall = epoch_wall_ms();
  const double per_epoch =
      epochs_ > 0 ? wall / static_cast<double>(epochs_) : 0.0;
  std::snprintf(buf, sizeof buf,
                "%sphase breakdown over %llu epochs "
                "(wall %.3f ms, %.4f ms/epoch)\n",
                line_prefix, static_cast<unsigned long long>(epochs_), wall,
                per_epoch);
  out << buf;
  std::snprintf(buf, sizeof buf, "%s%-16s %10s %12s %12s %7s\n", line_prefix,
                "phase", "calls", "total_ms", "ms/epoch", "%");
  out << buf;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const PhaseTotals t = totals(static_cast<Phase>(i));
    std::snprintf(
        buf, sizeof buf, "%s%-16s %10llu %12.3f %12.5f %7.2f\n", line_prefix,
        phase_name(static_cast<Phase>(i)),
        static_cast<unsigned long long>(t.calls), t.total_ms,
        epochs_ > 0 ? t.total_ms / static_cast<double>(epochs_) : 0.0,
        wall > 0.0 ? 100.0 * t.total_ms / wall : 0.0);
    out << buf;
  }
  std::snprintf(buf, sizeof buf,
                "%sphases cover %.1f%% of measured epoch wall time\n",
                line_prefix, 100.0 * coverage());
  out << buf;
}

}  // namespace rfh
