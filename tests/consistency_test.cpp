#include "consistency/tracker.h"

#include <gtest/gtest.h>

#include <memory>

#include "harness/report.h"
#include "harness/runner.h"
#include "test_util.h"

namespace rfh {
namespace {

// A minimal fixture giving the tracker a live cluster + paths to chew on.
class TrackerTest : public ::testing::Test {
 protected:
  TrackerTest()
      : world_(build_paper_world(test::uniform_world_options())),
        graph_(world_.topology.datacenter_count(), world_.links),
        paths_(graph_) {
    config_.partitions = 2;
    cluster_ = std::make_unique<ClusterState>(world_.topology, config_);
    tracker_ = std::make_unique<ConsistencyTracker>(
        config_.partitions,
        static_cast<std::uint32_t>(world_.topology.server_count()));
  }

  void advance(std::vector<double> writes) {
    tracker_->advance(*cluster_, world_.topology, paths_, writes);
  }

  /// A server in a datacenter exactly `hops` DC-hops from `from`.
  ServerId server_at_hops(ServerId from, std::uint32_t hops) {
    const DatacenterId home = world_.topology.server(from).datacenter;
    for (const Datacenter& dc : world_.topology.datacenters()) {
      if (paths_.hop_count(home, dc.id) == hops) {
        return world_.topology.servers_in(dc.id).front();
      }
    }
    return ServerId::invalid();
  }

  World world_;
  DcGraph graph_;
  ShortestPaths paths_;
  SimConfig config_;
  std::unique_ptr<ClusterState> cluster_;
  std::unique_ptr<ConsistencyTracker> tracker_;
};

TEST_F(TrackerTest, WritesAdvanceThePrimaryImmediately) {
  const PartitionId p{0};
  cluster_->add_replica(p, ServerId{0}, /*primary=*/true);
  advance({5.0, 0.0});
  EXPECT_DOUBLE_EQ(tracker_->primary_version(p), 5.0);
  EXPECT_DOUBLE_EQ(tracker_->lag(p, ServerId{0}), 0.0);
  advance({3.0, 0.0});
  EXPECT_DOUBLE_EQ(tracker_->primary_version(p), 8.0);
}

TEST_F(TrackerTest, ReplicaLagsByItsHopDistance) {
  const PartitionId p{0};
  const ServerId primary{0};
  cluster_->add_replica(p, primary, /*primary=*/true);
  const ServerId remote = server_at_hops(primary, 2);
  ASSERT_TRUE(remote.valid());
  cluster_->add_replica(p, remote);

  // Constant write stream of 4/epoch: a copy 2 hops away converges to a
  // steady lag of 2 epochs x 4 writes = 8 versions.
  for (int e = 0; e < 12; ++e) advance({4.0, 0.0});
  EXPECT_NEAR(tracker_->lag(p, remote), 8.0, 1e-9);

  // Same-datacenter copies still lag one anti-entropy epoch.
  ServerId sibling;
  for (const ServerId s :
       world_.topology.servers_in(world_.topology.server(primary).datacenter)) {
    if (s != primary) {
      sibling = s;
      break;
    }
  }
  cluster_->add_replica(p, sibling);
  for (int e = 0; e < 4; ++e) advance({4.0, 0.0});
  EXPECT_NEAR(tracker_->lag(p, sibling), 4.0, 1e-9);
}

TEST_F(TrackerTest, ReplicasConvergeWhenWritesStop) {
  const PartitionId p{0};
  cluster_->add_replica(p, ServerId{0}, /*primary=*/true);
  const ServerId remote = server_at_hops(ServerId{0}, 2);
  ASSERT_TRUE(remote.valid());
  cluster_->add_replica(p, remote);
  for (int e = 0; e < 10; ++e) advance({4.0, 0.0});
  EXPECT_GT(tracker_->lag(p, remote), 0.0);
  for (int e = 0; e < 5; ++e) advance({0.0, 0.0});
  EXPECT_DOUBLE_EQ(tracker_->lag(p, remote), 0.0);
  EXPECT_DOUBLE_EQ(tracker_->mean_replica_lag(*cluster_), 0.0);
}

TEST_F(TrackerTest, VersionsNeverRegress) {
  const PartitionId p{0};
  cluster_->add_replica(p, ServerId{0}, /*primary=*/true);
  const ServerId remote = server_at_hops(ServerId{0}, 2);
  cluster_->add_replica(p, remote);
  double last = 0.0;
  for (int e = 0; e < 20; ++e) {
    advance({e % 3 == 0 ? 7.0 : 0.0, 0.0});
    const double v = tracker_->replica_version(p, remote);
    EXPECT_GE(v, last);
    last = v;
  }
}

TEST_F(TrackerTest, PromotionAccountsLostWrites) {
  const PartitionId p{0};
  const ServerId primary{0};
  cluster_->add_replica(p, primary, /*primary=*/true);
  const ServerId remote = server_at_hops(primary, 2);
  cluster_->add_replica(p, remote);
  for (int e = 0; e < 10; ++e) advance({4.0, 0.0});
  const double lag = tracker_->lag(p, remote);
  ASSERT_GT(lag, 0.0);

  const double lost = tracker_->on_promote(p, remote);
  EXPECT_DOUBLE_EQ(lost, lag);
  EXPECT_DOUBLE_EQ(tracker_->lost_writes(), lag);
  // The survivor's version is now the partition version: no residual lag,
  // and the discarded writes never reappear.
  EXPECT_DOUBLE_EQ(tracker_->lag(p, remote), 0.0);
  cluster_->set_primary(p, remote);
  cluster_->remove_replica(p, primary);
  tracker_->on_server_failed(primary);
  for (int e = 0; e < 5; ++e) advance({0.0, 0.0});
  EXPECT_DOUBLE_EQ(tracker_->primary_version(p),
                   tracker_->replica_version(p, remote));
}

TEST_F(TrackerTest, StaleReadFractionCountsLaggingServes) {
  const PartitionId p{0};
  const ServerId primary{0};
  cluster_->add_replica(p, primary, /*primary=*/true);
  const ServerId remote = server_at_hops(primary, 2);
  cluster_->add_replica(p, remote);
  for (int e = 0; e < 10; ++e) advance({4.0, 0.0});

  EpochTraffic traffic(config_.partitions, world_.topology.server_count(),
                       world_.topology.datacenter_count());
  traffic.served_mut(p, primary) = 3.0;   // fresh reads
  traffic.served_mut(p, remote) = 1.0;    // stale reads
  EXPECT_NEAR(tracker_->stale_read_fraction(traffic, *cluster_), 0.25, 1e-9);
  // With a tolerance above the actual lag, nothing counts as stale.
  EXPECT_DOUBLE_EQ(
      tracker_->stale_read_fraction(traffic, *cluster_, /*tolerance=*/100.0),
      0.0);
}

TEST(ConsistencyRunner, WriteWorkloadProducesLagMetrics) {
  Scenario scenario = Scenario::paper_random_query();
  scenario.epochs = 60;
  scenario.write_fraction = 0.2;
  const PolicyRun run = run_policy(scenario, PolicyKind::kRfh);
  // Writes flow, replicas exist, so some lag and some stale reads appear.
  EXPECT_GT(tail_mean(run, &EpochMetrics::mean_replica_lag, 20), 0.0);
  const double stale = tail_mean(run, &EpochMetrics::stale_read_fraction, 20);
  EXPECT_GT(stale, 0.0);
  EXPECT_LE(stale, 1.0);
  // No failures: no lost writes.
  EXPECT_DOUBLE_EQ(run.series.back().lost_writes_total, 0.0);
}

TEST(ConsistencyRunner, DisabledByDefault) {
  Scenario scenario = Scenario::paper_random_query();
  scenario.epochs = 10;
  const PolicyRun run = run_policy(scenario, PolicyKind::kRfh);
  EXPECT_DOUBLE_EQ(run.series.back().mean_replica_lag, 0.0);
  EXPECT_DOUBLE_EQ(run.series.back().stale_read_fraction, 0.0);
}

TEST(ConsistencyRunner, FailoverUnderWritesLosesSomeWrites) {
  Scenario scenario = Scenario::paper_random_query();
  scenario.epochs = 100;
  scenario.write_fraction = 0.3;
  FailureEvent event;
  event.epoch = 60;
  event.kill_random = 30;
  const PolicyRun run = run_policy(scenario, PolicyKind::kRfh, {event});
  // Killing 30 servers mid-write-stream promotes lagging survivors.
  EXPECT_GT(run.series.back().lost_writes_total, 0.0);
  // Lost writes are cumulative and only move at the failure epoch.
  EXPECT_DOUBLE_EQ(run.series[30].lost_writes_total, 0.0);
  EXPECT_DOUBLE_EQ(run.series[70].lost_writes_total,
                   run.series.back().lost_writes_total);
}

}  // namespace
}  // namespace rfh
