// Minimal CSV emission for the figure benches: one row per epoch, one
// column per algorithm, matching the series the paper plots.
#pragma once

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "metrics/collector.h"

namespace rfh {

/// A named per-epoch series (one algorithm's curve).
struct NamedSeries {
  std::string name;
  std::vector<double> values;
};

/// Extract one field from a metrics series.
std::vector<double> extract(const std::vector<EpochMetrics>& series,
                            double EpochMetrics::* field);
std::vector<double> extract_u32(const std::vector<EpochMetrics>& series,
                                std::uint32_t EpochMetrics::* field);

/// Write "epoch,<name1>,<name2>,..." header plus one row per epoch.
/// Series may have different lengths; missing cells are left empty.
void write_csv(std::ostream& out, const std::vector<NamedSeries>& series);

}  // namespace rfh
