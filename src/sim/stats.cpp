#include "sim/stats.h"

#include <algorithm>

#include "common/assert.h"
#include "exec/parallel_for.h"

namespace rfh {

TrafficStats::TrafficStats(std::size_t partitions, std::size_t servers,
                           std::size_t datacenters, double alpha,
                           bool alpha_weights_history)
    : partitions_(partitions),
      servers_(servers),
      datacenters_(datacenters),
      alpha_(alpha_weights_history ? alpha : 1.0 - alpha),
      avg_query_(partitions, 0.0),
      node_cells_(partitions),
      node_traffic_sum_(partitions, 0.0),
      requester_queries_(partitions * datacenters, 0.0),
      server_arrival_(servers, 0.0),
      frozen_(servers, 0) {
  RFH_ASSERT(alpha > 0.0 && alpha < 1.0);
}

void TrafficStats::update(const EpochTraffic& traffic, ThreadPool* pool) {
  RFH_ASSERT(traffic.partitions() == partitions_);
  RFH_ASSERT(traffic.servers() == servers_);
  RFH_ASSERT(traffic.datacenters() == datacenters_);

  // The first epoch initializes the averages directly (no zero bias),
  // matching Ewma semantics.
  const double a = initialized_ ? alpha_ : 0.0;
  const double b = 1.0 - a;
  initialized_ = true;

  // Partition axis: every write below lands in a [p]-indexed slot, so
  // shards owning disjoint partition ranges share nothing, and each
  // output is a pure function of its own partition's inputs — identical
  // for every shard count.
  parallel_for_shards(
      pool, partitions_,
      shard_count_for(pool, partitions_, /*min_grain=*/64),
      [&](unsigned /*shard*/, IndexRange range) {
        std::vector<StatCell> merged;
        for (std::size_t p = range.begin; p < range.end; ++p) {
          const PartitionId pid{static_cast<std::uint32_t>(p)};
          const double q_avg = traffic.partition_queries(pid) /
                               static_cast<double>(datacenters_);
          avg_query_[p] = a * avg_query_[p] + b * q_avg;

          // Sorted merge of the EWMA cells with the epoch's traffic
          // cells. Both lists ascend by server id, so the visit order —
          // and therefore the Eq. 17 sum's association order — matches
          // the dense 0..S-1 scan; servers on neither side would add
          // exactly +0.0 and are skipped.
          const std::vector<StatCell>& old_cells = node_cells_[p];
          const std::span<const TrafficCell> fresh = traffic.cells(pid);
          merged.clear();
          merged.reserve(old_cells.size() + fresh.size());
          double sum = 0.0;
          std::size_t i = 0;
          std::size_t j = 0;
          while (i < old_cells.size() || j < fresh.size()) {
            const bool take_old =
                j >= fresh.size() ||
                (i < old_cells.size() &&
                 old_cells[i].server <= fresh[j].server);
            const bool take_fresh =
                i >= old_cells.size() ||
                (j < fresh.size() && fresh[j].server <= old_cells[i].server);
            const std::uint32_t server =
                take_old ? old_cells[i].server : fresh[j].server;
            const double prev = take_old ? old_cells[i].ewma : 0.0;
            const double obs = take_fresh ? fresh[j].node : 0.0;
            // A frozen server keeps its stale EWMA (a frozen absent cell
            // stays absent: prev == 0.0 is not pushed, and contributes
            // the same +0.0 to the Eq. 17 sum as the dense scan would).
            const double v = frozen_[server] != 0 ? prev : a * prev + b * obs;
            sum += v;
            if (v != 0.0) merged.push_back(StatCell{server, v});
            if (take_old) ++i;
            if (take_fresh) ++j;
          }
          node_cells_[p].assign(merged.begin(), merged.end());
          node_traffic_sum_[p] = sum;

          for (std::uint32_t dc = 0; dc < datacenters_; ++dc) {
            double& v = requester_queries_[p * datacenters_ + dc];
            v = a * v + b * traffic.requester_queries(pid, DatacenterId{dc});
          }
        }
      });
  // Server axis: same argument, one slot per server.
  parallel_for_shards(pool, servers_,
                      shard_count_for(pool, servers_, /*min_grain=*/4096),
                      [&](unsigned /*shard*/, IndexRange range) {
                        for (std::size_t s = range.begin; s < range.end; ++s) {
                          if (frozen_[s] != 0) continue;
                          server_arrival_[s] =
                              a * server_arrival_[s] +
                              b * traffic.server_work(
                                      ServerId{static_cast<std::uint32_t>(s)});
                        }
                      });
}

void TrafficStats::set_frozen(ServerId s, bool frozen) {
  RFH_ASSERT(s.value() < servers_);
  frozen_[s.value()] = frozen ? 1 : 0;
}

bool TrafficStats::frozen(ServerId s) const {
  RFH_ASSERT(s.value() < servers_);
  return frozen_[s.value()] != 0;
}

void TrafficStats::clear_server(ServerId s) {
  RFH_ASSERT(s.value() < servers_);
  server_arrival_[s.value()] = 0.0;
  for (std::uint32_t p = 0; p < partitions_; ++p) {
    std::vector<StatCell>& cells = node_cells_[p];
    const auto it = std::lower_bound(
        cells.begin(), cells.end(), s.value(),
        [](const StatCell& c, std::uint32_t v) { return c.server < v; });
    if (it == cells.end() || it->server != s.value()) continue;
    cells.erase(it);
    // Recompute the Eq. 17 numerator from scratch rather than
    // subtracting: the next update() does the same ascending re-sum, so
    // this keeps the two code paths bit-identical for the oracle.
    double sum = 0.0;
    for (const StatCell& cell : cells) sum += cell.ewma;
    node_traffic_sum_[p] = sum;
  }
}

double TrafficStats::avg_query(PartitionId p) const {
  RFH_ASSERT(p.value() < partitions_);
  return avg_query_[p.value()];
}

double TrafficStats::node_traffic(PartitionId p, ServerId s) const {
  RFH_ASSERT(p.value() < partitions_ && s.value() < servers_);
  const std::vector<StatCell>& cells = node_cells_[p.value()];
  const auto it = std::lower_bound(
      cells.begin(), cells.end(), s.value(),
      [](const StatCell& c, std::uint32_t v) { return c.server < v; });
  if (it == cells.end() || it->server != s.value()) return 0.0;
  return it->ewma;
}

std::span<const StatCell> TrafficStats::node_cells(PartitionId p) const {
  RFH_ASSERT(p.value() < partitions_);
  return node_cells_[p.value()];
}

double TrafficStats::requester_queries(PartitionId p, DatacenterId j) const {
  RFH_ASSERT(p.value() < partitions_ && j.value() < datacenters_);
  return requester_queries_[p.value() * datacenters_ + j.value()];
}

double TrafficStats::server_arrival(ServerId s) const {
  RFH_ASSERT(s.value() < servers_);
  return server_arrival_[s.value()];
}

double TrafficStats::mean_node_traffic(PartitionId p,
                                       std::size_t live_servers) const {
  RFH_ASSERT(p.value() < partitions_);
  if (live_servers == 0) return 0.0;
  return node_traffic_sum_[p.value()] / static_cast<double>(live_servers);
}

}  // namespace rfh
