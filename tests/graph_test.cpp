#include "net/graph.h"

#include <gtest/gtest.h>

namespace rfh {
namespace {

std::vector<Link> line_links(std::uint32_t n) {
  std::vector<Link> links;
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    links.push_back(Link{DatacenterId{i}, DatacenterId{i + 1}, 1.0});
  }
  return links;
}

TEST(DcGraph, EmptyGraphIsConnected) {
  const DcGraph graph(0, {});
  EXPECT_TRUE(graph.connected());
}

TEST(DcGraph, SingleNodeIsConnected) {
  const DcGraph graph(1, {});
  EXPECT_TRUE(graph.connected());
}

TEST(DcGraph, LineIsConnected) {
  const auto links = line_links(5);
  const DcGraph graph(5, links);
  EXPECT_TRUE(graph.connected());
}

TEST(DcGraph, DisconnectedComponentDetected) {
  // 0-1 connected, 2 isolated.
  const std::vector<Link> links{Link{DatacenterId{0}, DatacenterId{1}, 1.0}};
  const DcGraph graph(3, links);
  EXPECT_FALSE(graph.connected());
}

TEST(DcGraph, EdgesAreUndirected) {
  const std::vector<Link> links{Link{DatacenterId{0}, DatacenterId{1}, 2.5}};
  const DcGraph graph(2, links);
  ASSERT_EQ(graph.neighbors(DatacenterId{0}).size(), 1u);
  ASSERT_EQ(graph.neighbors(DatacenterId{1}).size(), 1u);
  EXPECT_EQ(graph.neighbors(DatacenterId{0})[0].to, DatacenterId{1});
  EXPECT_EQ(graph.neighbors(DatacenterId{1})[0].to, DatacenterId{0});
  EXPECT_DOUBLE_EQ(graph.neighbors(DatacenterId{0})[0].km, 2.5);
}

TEST(DcGraph, NeighborsSortedById) {
  const std::vector<Link> links{
      Link{DatacenterId{0}, DatacenterId{3}, 1.0},
      Link{DatacenterId{0}, DatacenterId{1}, 1.0},
      Link{DatacenterId{0}, DatacenterId{2}, 1.0},
  };
  const DcGraph graph(4, links);
  const auto neighbors = graph.neighbors(DatacenterId{0});
  ASSERT_EQ(neighbors.size(), 3u);
  EXPECT_EQ(neighbors[0].to, DatacenterId{1});
  EXPECT_EQ(neighbors[1].to, DatacenterId{2});
  EXPECT_EQ(neighbors[2].to, DatacenterId{3});
}

TEST(DcGraphDeath, RejectsBadLinks) {
  EXPECT_DEATH(DcGraph(2, std::vector<Link>{
                              Link{DatacenterId{0}, DatacenterId{0}, 1.0}}),
               "");  // self loop
  EXPECT_DEATH(DcGraph(2, std::vector<Link>{
                              Link{DatacenterId{0}, DatacenterId{1}, 0.0}}),
               "");  // zero weight
  EXPECT_DEATH(DcGraph(2, std::vector<Link>{
                              Link{DatacenterId{0}, DatacenterId{5}, 1.0}}),
               "");  // out of range
}

}  // namespace
}  // namespace rfh
