#include "fault/plan.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/assert.h"

namespace rfh {

const char* fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kRecover: return "recover";
    case FaultKind::kDatacenterOutage: return "outage";
    case FaultKind::kLinkDown: return "linkdown";
    case FaultKind::kLinkFlap: return "flap";
    case FaultKind::kChurn: return "churn";
    case FaultKind::kFlashCrowd: return "flashcrowd";
    case FaultKind::kZoneOutage: return "zoneoutage";
    case FaultKind::kStaleStats: return "stalestats";
  }
  return "?";
}

namespace {

bool kind_from_name(std::string_view name, FaultKind& out) {
  for (std::size_t k = 0; k < kFaultKindCount; ++k) {
    const auto kind = static_cast<FaultKind>(k);
    if (name == fault_kind_name(kind)) {
      out = kind;
      return true;
    }
  }
  return false;
}

bool parse_u64(std::string_view text, std::uint64_t& out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

bool parse_double_value(std::string_view text, double& out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

}  // namespace

std::string validate_fault_event(const FaultEvent& e) {
  const auto windowed = [&]() -> std::string {
    if (e.until <= e.at) return "field 'until' must be greater than 'at'";
    if (e.period == 0) return "field 'period' expects a positive integer";
    return "";
  };
  switch (e.kind) {
    case FaultKind::kCrash:
    case FaultKind::kRecover:
      if ((e.count == 0) == e.servers.empty()) {
        return "exactly one of 'count' or 'servers' is required";
      }
      return "";
    case FaultKind::kDatacenterOutage:
      if (!e.dc.valid()) return "field 'dc' is required";
      return "";
    case FaultKind::kLinkDown:
      if (!e.link_a.valid() || !e.link_b.valid()) {
        return "fields 'a' and 'b' are required";
      }
      if (e.link_a == e.link_b) return "fields 'a' and 'b' must differ";
      if (e.restore_at != 0 && e.restore_at <= e.at) {
        return "field 'restore_at' must be greater than 'at'";
      }
      return "";
    case FaultKind::kLinkFlap: {
      if (!e.link_a.valid() || !e.link_b.valid()) {
        return "fields 'a' and 'b' are required";
      }
      if (e.link_a == e.link_b) return "fields 'a' and 'b' must differ";
      const std::string w = windowed();
      if (!w.empty()) return w;
      if (e.down == 0 || e.down > e.period) {
        return "field 'down' must be in [1, period]";
      }
      return "";
    }
    case FaultKind::kChurn: {
      const std::string w = windowed();
      if (!w.empty()) return w;
      if (e.kill == 0) return "field 'kill' expects a positive integer";
      return "";
    }
    case FaultKind::kFlashCrowd:
      if (e.duration == 0) {
        return "field 'duration' expects a positive integer";
      }
      if (!(e.factor > 0.0)) return "field 'factor' must be positive";
      return "";
    case FaultKind::kZoneOutage:
      if (e.zone == kNoZone) return "field 'zone' is required";
      return "";
    case FaultKind::kStaleStats:
      if (e.until <= e.at) return "field 'until' must be greater than 'at'";
      if ((e.count == 0) == e.servers.empty()) {
        return "exactly one of 'count' or 'servers' is required";
      }
      return "";
  }
  return "unknown event kind";
}

void FaultPlan::add(const FaultEvent& event) {
  const std::string error = validate_fault_event(event);
  RFH_ASSERT_MSG(error.empty(), error.c_str());
  events_.push_back(event);
}

Epoch FaultPlan::horizon() const noexcept {
  Epoch horizon = 0;
  for (const FaultEvent& e : events_) {
    Epoch last = e.at;
    switch (e.kind) {
      case FaultKind::kDatacenterOutage:
      case FaultKind::kZoneOutage:
        if (e.recover_after != 0) last = e.at + e.recover_after;
        break;
      case FaultKind::kLinkDown:
        if (e.restore_at != 0) last = e.restore_at;
        break;
      case FaultKind::kLinkFlap:
      case FaultKind::kChurn:
      case FaultKind::kStaleStats:
        last = e.until;
        break;
      case FaultKind::kFlashCrowd:
        last = e.at + e.duration;
        break;
      case FaultKind::kCrash:
      case FaultKind::kRecover:
        break;
    }
    horizon = std::max(horizon, last);
  }
  return horizon;
}

std::string FaultPlan::serialize() const {
  std::string out = "# rfh-fault-plan/1\n";
  char buf[64];
  const auto field_u = [&](const char* key, std::uint64_t value) {
    std::snprintf(buf, sizeof buf, " %s=%llu", key,
                  static_cast<unsigned long long>(value));
    out += buf;
  };
  const auto field_f = [&](const char* key, double value) {
    std::snprintf(buf, sizeof buf, " %s=%.12g", key, value);
    out += buf;
  };
  const auto field_victims = [&](const FaultEvent& e) {
    if (!e.servers.empty()) {
      out += " servers=";
      for (std::size_t i = 0; i < e.servers.size(); ++i) {
        if (i > 0) out += ',';
        out += std::to_string(e.servers[i].value());
      }
    } else {
      field_u("count", e.count);
    }
  };
  for (const FaultEvent& e : events_) {
    out += fault_kind_name(e.kind);
    field_u("at", e.at);
    switch (e.kind) {
      case FaultKind::kCrash:
      case FaultKind::kRecover:
        field_victims(e);
        break;
      case FaultKind::kDatacenterOutage:
        field_u("dc", e.dc.value());
        if (e.recover_after != 0) field_u("recover_after", e.recover_after);
        break;
      case FaultKind::kLinkDown:
        field_u("a", e.link_a.value());
        field_u("b", e.link_b.value());
        if (e.restore_at != 0) field_u("restore_at", e.restore_at);
        break;
      case FaultKind::kLinkFlap:
        field_u("until", e.until);
        field_u("a", e.link_a.value());
        field_u("b", e.link_b.value());
        field_u("period", e.period);
        field_u("down", e.down);
        break;
      case FaultKind::kChurn:
        field_u("until", e.until);
        field_u("period", e.period);
        field_u("kill", e.kill);
        if (e.recover != 0) field_u("recover", e.recover);
        break;
      case FaultKind::kFlashCrowd:
        field_u("duration", e.duration);
        field_f("factor", e.factor);
        break;
      case FaultKind::kZoneOutage:
        field_u("zone", e.zone);
        if (e.recover_after != 0) field_u("recover_after", e.recover_after);
        break;
      case FaultKind::kStaleStats:
        field_u("until", e.until);
        field_victims(e);
        break;
    }
    out += '\n';
  }
  return out;
}

FaultPlan::ParseResult FaultPlan::parse(std::string_view text) {
  ParseResult result;
  int line_no = 0;
  const auto fail = [&](const std::string& message) {
    result.ok = false;
    result.error = "line " + std::to_string(line_no) + ": " + message;
    return result;
  };

  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;

    // Strip comments and surrounding whitespace.
    if (const std::size_t hash = line.find('#');
        hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t' ||
                             line.front() == '\r')) {
      line.remove_prefix(1);
    }
    while (!line.empty() && (line.back() == ' ' || line.back() == '\t' ||
                             line.back() == '\r')) {
      line.remove_suffix(1);
    }
    if (line.empty()) {
      if (eol == text.size()) break;
      continue;
    }

    // Tokenize on runs of spaces/tabs.
    std::vector<std::string_view> tokens;
    std::size_t i = 0;
    while (i < line.size()) {
      while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
      std::size_t j = i;
      while (j < line.size() && line[j] != ' ' && line[j] != '\t') ++j;
      if (j > i) tokens.push_back(line.substr(i, j - i));
      i = j;
    }

    FaultEvent event;
    if (!kind_from_name(tokens.front(), event.kind)) {
      return fail("unknown event kind '" + std::string(tokens.front()) +
                  "'");
    }
    bool saw_at = false;
    for (std::size_t t = 1; t < tokens.size(); ++t) {
      const std::string_view token = tokens[t];
      const std::size_t eq = token.find('=');
      if (eq == std::string_view::npos) {
        return fail("expected key=value, got '" + std::string(token) + "'");
      }
      const std::string_view key = token.substr(0, eq);
      const std::string_view value = token.substr(eq + 1);
      const auto bad_field = [&](const char* expects) {
        return "field '" + std::string(key) + "' " + expects + " (got '" +
               std::string(value) + "')";
      };
      std::uint64_t u = 0;
      const auto want_u32 = [&](std::uint32_t& out,
                                bool positive) -> std::string {
        if (!parse_u64(value, u) || u > 0xFFFFFFFFull ||
            (positive && u == 0)) {
          return bad_field(positive ? "expects a positive integer"
                                    : "expects an integer");
        }
        out = static_cast<std::uint32_t>(u);
        return "";
      };
      const auto want_epoch = [&](Epoch& out,
                                  bool positive) -> std::string {
        std::uint32_t v = 0;
        const std::string err = want_u32(v, positive);
        if (err.empty()) out = v;
        return err;
      };
      std::string err;
      std::uint32_t idv = 0;
      if (key == "at") {
        err = want_epoch(event.at, false);
        saw_at = err.empty();
      } else if (key == "until") {
        err = want_epoch(event.until, true);
      } else if (key == "count") {
        err = want_u32(event.count, true);
      } else if (key == "servers") {
        std::size_t start = 0;
        const std::string list(value);
        while (start <= list.size()) {
          std::size_t comma = list.find(',', start);
          if (comma == std::string::npos) comma = list.size();
          const std::string_view item =
              std::string_view(list).substr(start, comma - start);
          if (!parse_u64(item, u) || u >= ServerId::kInvalidValue) {
            err = "field 'servers' expects a comma-separated id list "
                  "(got '" +
                  std::string(value) + "')";
            break;
          }
          event.servers.push_back(ServerId{static_cast<std::uint32_t>(u)});
          if (comma == list.size()) break;
          start = comma + 1;
        }
      } else if (key == "dc") {
        err = want_u32(idv, false);
        if (err.empty()) event.dc = DatacenterId{idv};
      } else if (key == "a") {
        err = want_u32(idv, false);
        if (err.empty()) event.link_a = DatacenterId{idv};
      } else if (key == "b") {
        err = want_u32(idv, false);
        if (err.empty()) event.link_b = DatacenterId{idv};
      } else if (key == "zone") {
        err = want_u32(event.zone, false);
      } else if (key == "recover_after") {
        err = want_epoch(event.recover_after, true);
      } else if (key == "restore_at") {
        err = want_epoch(event.restore_at, true);
      } else if (key == "period") {
        err = want_epoch(event.period, true);
      } else if (key == "down") {
        err = want_epoch(event.down, true);
      } else if (key == "kill") {
        err = want_u32(event.kill, true);
      } else if (key == "recover") {
        err = want_u32(event.recover, false);
      } else if (key == "duration") {
        err = want_epoch(event.duration, true);
      } else if (key == "factor") {
        if (!parse_double_value(value, event.factor)) {
          err = bad_field("expects a number");
        }
      } else {
        err = "unknown field '" + std::string(key) + "'";
      }
      if (!err.empty()) return fail(err);
    }
    if (!saw_at) return fail("field 'at' is required");
    if (const std::string err = validate_fault_event(event); !err.empty()) {
      return fail(err);
    }
    result.plan.events_.push_back(event);
    if (eol == text.size()) break;
  }
  result.ok = true;
  return result;
}

FaultPlan::ParseResult FaultPlan::parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    ParseResult result;
    result.error = "cannot read fault plan '" + path + "'";
    return result;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse(text.str());
}

}  // namespace rfh
