// Erlang-B blocking probability (paper Eq. 18).
//
// RFH picks, among the physical servers of the chosen datacenter, the one
// with the lowest blocking probability under an M/G/c loss model:
//
//   BP = (a^c / c!) / sum_{k=0}^{c} a^k / k!,    a = lambda * tau
//
// where lambda is the Poisson arrival rate observed at the server, tau its
// mean service time, and c its number of service channels. The blocking
// probability of an M/G/c/c system depends on the service distribution
// only through its mean (insensitivity), so the Erlang-B formula applies
// verbatim.
#pragma once

#include <cstdint>

namespace rfh {

/// Erlang-B blocking probability for offered load `offered` (= lambda*tau,
/// in Erlangs) and `channels` servers. Uses the numerically stable
/// recursion B(0) = 1, B(c) = a*B(c-1) / (c + a*B(c-1)); never over- or
/// underflows for any practical input.
double erlang_b(double offered, std::uint32_t channels) noexcept;

/// Smallest channel count c such that erlang_b(offered, c) <= target.
/// Useful for capacity planning (see examples/capacity_planning.cpp).
std::uint32_t erlang_b_channels_for(double offered, double target) noexcept;

/// Erlang-C: probability that an arrival must *wait* in an M/M/c queue
/// with infinite buffer (the companion planning formula to Eq. 18's loss
/// model). Requires offered < channels for a stable queue; returns 1.0
/// when offered >= channels (every arrival waits, the queue diverges).
/// Computed from Erlang-B via C = B / (1 - rho * (1 - B)).
///
/// Zero-offered-traffic convention (shared by all functions here): when
/// offered == 0 nothing ever arrives, so blocking probability, waiting
/// probability and mean wait are all exactly 0 — *including* the
/// degenerate channels == 0 system. The zero check is evaluated before
/// any stability test.
double erlang_c(double offered, std::uint32_t channels) noexcept;

/// Mean waiting time in the same M/M/c queue, in units of one service
/// time: W = C(a, c) / (c - a).
///
/// Saturation sentinel: when 0 < offered and offered >= channels the
/// queue has no stationary distribution, so the function returns
/// +infinity (std::numeric_limits<double>::infinity()) rather than a
/// negative or NaN value from the divergent formula. Callers gate on
/// std::isinf() to detect the unstable regime; exactly 0 when
/// offered == 0 (see the zero-offered-traffic convention above).
double erlang_c_mean_wait(double offered, std::uint32_t channels) noexcept;

/// Mean waiting time in an M/G/c queue via the Allen-Cunneen
/// approximation, in units of one mean service time:
///
///   W(M/G/c) ~= W(M/M/c) * (1 + cv^2) / 2
///
/// where cv is the coefficient of variation of the service-time
/// distribution (cv = 1 recovers M/M/c exactly; cv = 0 gives the M/D/c
/// half-wait). This is the queueing companion to Eq. 18's M/G/c/c loss
/// model: blocking is insensitive to the service distribution, waiting is
/// not, and cv^2 is the first-order correction. Shares
/// erlang_c_mean_wait's conventions: exactly 0 at offered == 0, +infinity
/// at saturation (offered >= channels).
double erlang_mgc_mean_wait(double offered, std::uint32_t channels,
                            double cv) noexcept;

}  // namespace rfh
