// Command-line parsing for experiment drivers (examples/rfh_cli.cpp).
//
// Kept in the library (rather than the example binary) so the flag
// grammar is unit-testable and reusable by downstream tools.
//
// Grammar:
//   --policy=rfh|random|owner|request
//   --workload=uniform|flash|hotspot|stream
//   --epochs=N --seed=N --partitions=N
//   --alpha=F --beta=F --gamma=F --delta=F --mu=F --phi=F
//                                 (Table I thresholds; range-checked:
//                                  0 < alpha < 1, beta > 0, gamma > 0,
//                                  delta >= 0, mu >= 0, 0 < phi <= 1)
//   --redundancy=replica|ec(k,m)  (redundancy scheme; ec needs k >= 2,
//                                  m >= 1, k + m <= 16. replica is the
//                                  default and reproduces the paper)
//   --write-fraction=F            (enables consistency tracking)
//   --arrival-rate=F              (stream only: Poisson mean arrivals per
//                                  epoch; F > 0, default Table I's 300)
//   --queue-cap=N                 (stream only: per-server queue-depth cap
//                                  before backpressure drops; 1..1000000)
//   --service-cv=F                (stream only: service-time coefficient
//                                  of variation for the M/G/c wait
//                                  correction; F >= 0, 1 = exponential)
//   --kill=N@E                    (repeatable: kill N random servers at E)
//   --metric=<name>               (see metric_names())
//   --compare                     (all four policies)
//   --jobs=N|auto                 (worker threads; auto = one per hardware
//                                  thread, 1 = serial. With --compare the
//                                  pool runs policies concurrently; on a
//                                  single-policy run it shards the engine's
//                                  epoch phases (Simulation::set_jobs).
//                                  Results are bit-identical for every N)
//
// Malformed input never asserts or silently clamps: out-of-range values
// and *conflicting* duplicate flags (same flag, different value) yield a
// parse error; --kill stays repeatable by design.
//   --quiet                       (summary line only)
//   --trace-out=FILE              (write a structured event trace; single
//                                  policy runs only)
//   --trace-format=jsonl|chrome   (default jsonl; chrome loads in Perfetto)
//   --trace-filter=A,B,...        (event type names to keep, e.g.
//                                  ReplicaAdded,ActionDropped; default all)
//   --metrics-out=FILE            (dump the telemetry registry after the
//                                  run; single policy runs only)
//   --metrics-format=prom|json    (default prom: Prometheus text format)
//   --profile                     (time the epoch phases; prints a
//                                  breakdown table and, with --trace-out,
//                                  emits PhaseSpan slices into the trace;
//                                  single policy runs only)
//   --fault-plan=FILE             (scheduled chaos: parse a fault-plan
//                                  spec (fault/plan.h) into the scenario;
//                                  single policy runs only)
//   --check-invariants            (verify the invariant catalogue after
//                                  every epoch and report violations;
//                                  single policy runs only)
//   --slo=SPEC                    (service-level objectives, e.g.
//                                  "avail=0.999,p99=250,burn=2"; see
//                                  telemetry/slo.h for the grammar. The
//                                  runner prints breach episodes after the
//                                  run)
//   --blackbox-out=FILE           (dump the causal flight recorder
//                                  (obs/timeline.h) as JSONL after the
//                                  run; single policy runs only. Feed the
//                                  file to rfh_blackbox for forensic
//                                  queries)
#pragma once

#include <span>
#include <string>
#include <vector>

#include "harness/runner.h"

namespace rfh {

enum class TraceFormat { kJsonl, kChrome };
enum class MetricsFormat { kProm, kJson };

struct CliOptions {
  PolicyKind policy = PolicyKind::kRfh;
  bool compare = false;
  /// Worker threads for --compare sweeps (exec/sweep.h semantics:
  /// 0 = hardware, 1 = serial). On single-policy runs an explicit --jobs
  /// lands in scenario.engine_jobs instead, sharding the epoch phases.
  /// Purely a scheduling knob — outputs are bit-identical for every value.
  unsigned jobs = 0;
  bool quiet = false;
  std::string metric = "utilization";
  Scenario scenario = Scenario::paper_random_query();
  std::vector<FailureEvent> failures;
  /// Trace destination; empty disables tracing.
  std::string trace_out;
  TraceFormat trace_format = TraceFormat::kJsonl;
  /// Comma-separated event type allow-list (empty keeps everything).
  std::string trace_filter;
  /// Telemetry-registry dump destination; empty disables the registry.
  std::string metrics_out;
  MetricsFormat metrics_format = MetricsFormat::kProm;
  /// Wall-clock phase profiling (see telemetry/profiler.h).
  bool profile = false;
  /// Path the scenario's fault plan was parsed from (empty without one;
  /// the parsed plan itself lands in scenario.fault_plan).
  std::string fault_plan_path;
  /// Run the InvariantChecker (record mode) over every epoch.
  bool check_invariants = false;
  /// Causal flight-record dump destination; empty disables the recorder.
  /// (The parsed --slo spec itself lands in scenario.slo.)
  std::string blackbox_out;
};

struct CliParseResult {
  bool ok = false;
  std::string error;  // set when !ok
  CliOptions options;
};

/// Parse the argument list (argv[1..]); never aborts — malformed input
/// yields ok=false with a human-readable error.
CliParseResult parse_cli(std::span<const char* const> args);

/// Extract the named per-epoch metric; sets *ok=false (and returns 0) for
/// an unknown name.
double metric_value(const EpochMetrics& m, const std::string& metric,
                    bool* ok);

/// All metric names accepted by --metric.
std::vector<std::string> metric_names();

}  // namespace rfh
