// Figure emission: print, for one paper artefact, the same series the
// paper plots (CSV, one column per algorithm) followed by a shape summary
// (tail means and ranking) that EXPERIMENTS.md records against the
// paper's claims.
#pragma once

#include <ostream>
#include <string>

#include "harness/runner.h"
#include "metrics/csv.h"

namespace rfh {

/// Print "# <title>", the per-epoch CSV of `field` for every run, then a
/// "# tail-mean" ranking line (mean over the last `tail_window` epochs).
void print_figure(std::ostream& out, const std::string& title,
                  const ComparativeResult& result,
                  double EpochMetrics::* field,
                  std::size_t tail_window = 50);

/// Same for a counter field.
void print_figure_u32(std::ostream& out, const std::string& title,
                      const ComparativeResult& result,
                      std::uint32_t EpochMetrics::* field,
                      std::size_t tail_window = 50);

/// Tail mean of a field for one run.
double tail_mean(const PolicyRun& run, double EpochMetrics::* field,
                 std::size_t window);

}  // namespace rfh
