file(REMOVE_RECURSE
  "CMakeFiles/rfh_net.dir/graph.cpp.o"
  "CMakeFiles/rfh_net.dir/graph.cpp.o.d"
  "CMakeFiles/rfh_net.dir/shortest_paths.cpp.o"
  "CMakeFiles/rfh_net.dir/shortest_paths.cpp.o.d"
  "librfh_net.a"
  "librfh_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfh_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
