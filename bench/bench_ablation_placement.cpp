// Ablation A2 — value of the traffic-oriented placement and of the
// Erlang-B server choice, holding the rest of RFH fixed.
//
// Runs the RFH machinery (same thresholds, migration, suicide) with the
// target datacenter chosen four ways — traffic hub (the paper's design),
// near-owner, near-requester, random — and with Erlang-B selection
// on/off, under the flash-crowd workload. If the paper's design story
// holds, hub placement wins utilization and path length, and Erlang-B
// wins load balance.
#include <cstdio>
#include <string>

#include "bench_args.h"
#include "exec/sweep.h"
#include "harness/runner.h"

namespace {

void report(const std::string& label, const rfh::PolicyRun& run) {
  const std::size_t tail = 100;
  double util = 0.0;
  double path = 0.0;
  double imbalance = 0.0;
  double replicas = 0.0;
  for (std::size_t e = run.series.size() - tail; e < run.series.size(); ++e) {
    util += run.series[e].utilization;
    path += run.series[e].path_length;
    imbalance += run.series[e].load_imbalance;
    replicas += run.series[e].total_replicas;
  }
  std::printf("%-24s %11.3f %8.2f %10.2f %10.1f\n", label.c_str(),
              util / tail, path / tail, imbalance / tail, replicas / tail);
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned jobs = rfh::bench_jobs(argc, argv);
  rfh::Scenario s = rfh::Scenario::paper_flash_crowd();
  s.epochs = 300;

  std::printf("# Ablation: placement family x server selection "
              "(flash crowd, %u epochs, tail-100 means)\n",
              s.epochs);
  std::printf("%-24s %11s %8s %10s %10s\n", "variant", "utilization", "path",
              "imbalance", "replicas");

  using Placement = rfh::RfhPolicy::Options::Placement;
  const std::pair<const char*, Placement> placements[] = {
      {"traffic-hub", Placement::kTrafficHub},
      {"near-owner", Placement::kNearOwner},
      {"near-requester", Placement::kNearRequester},
      {"random-dc", Placement::kRandom},
  };
  // Each variant is an independent sweep cell; the pool fans them out and
  // the merge prints in grid order, so the table is bit-identical for
  // every --jobs value.
  std::vector<rfh::SweepCell> cells;
  for (const auto& [name, placement] : placements) {
    for (const bool erlang : {true, false}) {
      rfh::SweepCell cell;
      cell.label = std::string(name) + (erlang ? "+erlangB" : "+firstfit");
      cell.scenario = s;
      cell.policy = rfh::PolicyKind::kRfh;
      cell.rfh.placement = placement;
      cell.rfh.erlang_b_selection = erlang;
      cells.push_back(std::move(cell));
    }
  }
  rfh::SweepOptions options;
  options.jobs = jobs;
  for (const rfh::SweepCellResult& result :
       rfh::SweepRunner(options).run(cells)) {
    report(result.label, result.run);
  }
  return 0;
}
