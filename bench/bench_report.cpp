#include "bench_report.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace rfh {

namespace {

void append_number(std::string& out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  out += buf;
}

double ms_between(BenchReport::Clock::time_point a,
                  BenchReport::Clock::time_point b) {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(b - a)
                 .count()) /
         1e6;
}

}  // namespace

BenchReport::BenchReport(std::string name)
    : name_(std::move(name)), start_(Clock::now()) {}

BenchReport::ScopedStage::~ScopedStage() {
  report_->stages_[index_].wall_ms = ms_between(start_, Clock::now());
}

BenchReport::ScopedStage BenchReport::stage(std::string name) {
  stages_.push_back(Stage{std::move(name), 0.0});
  return ScopedStage(*this, stages_.size() - 1);
}

void BenchReport::add_metric(const std::string& name, double value) {
  for (auto& [existing, old] : metrics_) {
    if (existing == name) {
      old = value;
      return;
    }
  }
  metrics_.emplace_back(name, value);
}

std::string BenchReport::to_json() const {
  // Names are ASCII identifiers chosen by the bench author, so no JSON
  // string escaping is needed (same convention as obs/sinks.cpp).
  std::string out = "{\"schema\":\"rfh-bench-report/1\",\"bench\":\"";
  out += name_;
  out += "\",\"stages\":[";
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    if (i > 0) out += ',';
    out += "{\"name\":\"";
    out += stages_[i].name;
    out += "\",\"wall_ms\":";
    append_number(out, stages_[i].wall_ms);
    out += '}';
  }
  out += "],\"metrics\":{";
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    if (i > 0) out += ',';
    out += '"';
    out += metrics_[i].first;
    out += "\":";
    append_number(out, metrics_[i].second);
  }
  out += "},\"total_wall_ms\":";
  append_number(out, ms_between(start_, Clock::now()));
  out += "}\n";
  return out;
}

std::string BenchReport::write_file() const {
  std::string path;
  if (const char* dir = std::getenv("RFH_BENCH_OUT_DIR");
      dir != nullptr && dir[0] != '\0') {
    path = dir;
    if (path.back() != '/') path += '/';
  }
  path += "BENCH_" + name_ + ".json";
  std::ofstream file(path);
  if (!file) {
    std::fprintf(stderr, "bench_report: cannot open '%s' for writing\n",
                 path.c_str());
    return "";
  }
  file << to_json();
  std::fprintf(stderr, "# bench report written to %s\n", path.c_str());
  return path;
}

}  // namespace rfh
