# Empty dependencies file for bench_sla_latency.
# This may be replaced when dependencies are built.
