#include "check/case.h"

#include <gtest/gtest.h>

#include <string>

#include "check/diff.h"
#include "check/fuzzer.h"
#include "check/shrink.h"

namespace rfh {
namespace {

CheckCase sample_case() {
  CheckCase c;
  c.seed = 7;
  c.racks_per_room = 1;
  c.servers_per_rack = 3;
  c.partitions = 6;
  c.epochs = 12;
  c.workload = WorkloadKind::kHotspotShift;
  c.zipf = 1.1;
  c.alpha = 0.35;
  c.alpha_weights_history = false;
  c.beta = 1.75;
  c.gamma = 0.9;
  c.delta = 0.15;
  c.mu = 0.6;
  c.phi = 0.85;
  c.failure_rate = 0.2;
  c.min_availability = 0.9;
  FaultEvent ev;
  ev.kind = FaultKind::kCrash;
  ev.at = 4;
  ev.count = 2;
  c.fault_plan.add(ev);
  return c;
}

TEST(CheckCaseJson, RoundTripsDefaults) {
  const CheckCase c;
  const CheckCase::ParseResult parsed = CheckCase::from_json(c.to_json());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.value, c);
}

TEST(CheckCaseJson, RoundTripsEveryFieldIncludingFaultPlan) {
  const CheckCase c = sample_case();
  const CheckCase::ParseResult parsed = CheckCase::from_json(c.to_json());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.value, c);
  // Serialization is canonical: serialize(parse(serialize(x))) is
  // bit-identical, so committed corpus files never churn.
  EXPECT_EQ(parsed.value.to_json(), c.to_json());
}

TEST(CheckCaseJson, RejectsMalformedInput) {
  EXPECT_FALSE(CheckCase::from_json("").ok);
  EXPECT_FALSE(CheckCase::from_json("not json").ok);
  EXPECT_FALSE(CheckCase::from_json("{").ok);
  EXPECT_FALSE(CheckCase::from_json("[1, 2]").ok);
  // Nested objects are outside the flat schema.
  EXPECT_FALSE(
      CheckCase::from_json(
          R"({"schema": "rfh-check-case/1", "seed": {"x": 1}})")
          .ok);
}

TEST(CheckCaseJson, RejectsWrongSchemaAndUnknownFields) {
  EXPECT_FALSE(CheckCase::from_json(R"({"seed": 1})").ok);
  EXPECT_FALSE(
      CheckCase::from_json(R"({"schema": "rfh-check-case/999", "seed": 1})")
          .ok);
  const CheckCase::ParseResult unknown = CheckCase::from_json(
      R"({"schema": "rfh-check-case/1", "not_a_field": 3})");
  EXPECT_FALSE(unknown.ok);
  EXPECT_NE(unknown.error.find("not_a_field"), std::string::npos);
}

TEST(CheckCaseJson, RoundTripsErasureRedundancy) {
  CheckCase c = sample_case();
  c.redundancy = RedundancyMode::kErasure;
  c.ec_k = 4;
  c.ec_m = 2;
  const CheckCase::ParseResult parsed = CheckCase::from_json(c.to_json());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.value, c);
  EXPECT_NE(c.to_json().find(R"js("redundancy": "ec(4,2)")js"),
            std::string::npos);
  // Replica-mode cases never emit the field, so the pre-EC corpus still
  // round-trips byte-identically.
  EXPECT_EQ(sample_case().to_json().find("redundancy"), std::string::npos);
  const Scenario s = c.to_scenario();
  EXPECT_EQ(s.sim.redundancy, RedundancyMode::kErasure);
  EXPECT_EQ(s.sim.ec_k, 4u);
  EXPECT_EQ(s.sim.ec_m, 2u);
}

TEST(CheckCaseJson, RejectsUnsupportedRedundancyModes) {
  // Replay must hard-error on modes it cannot execute — silently falling
  // back to replica would "pass" a case the engine never actually ran.
  const auto with = [](const char* value) {
    return std::string(R"({"schema": "rfh-check-case/1", "redundancy": ")") +
           value + "\"}";
  };
  EXPECT_FALSE(CheckCase::from_json(with("raid5")).ok);
  EXPECT_FALSE(CheckCase::from_json(with("ec(1,2)")).ok);
  EXPECT_FALSE(CheckCase::from_json(with("ec(4,0)")).ok);
  EXPECT_FALSE(CheckCase::from_json(with("ec(12,8)")).ok);
  EXPECT_FALSE(CheckCase::from_json(with("ec(4;2)")).ok);
  const CheckCase::ParseResult bad = CheckCase::from_json(with("raid5"));
  EXPECT_NE(bad.error.find("raid5"), std::string::npos);
}

TEST(CheckCaseJson, RejectsOutOfRangeValues) {
  const auto with = [](const char* key, const char* value) {
    return std::string(R"({"schema": "rfh-check-case/1", ")") + key +
           "\": " + value + "}";
  };
  EXPECT_FALSE(CheckCase::from_json(with("alpha", "0")).ok);
  EXPECT_FALSE(CheckCase::from_json(with("alpha", "1")).ok);
  EXPECT_FALSE(CheckCase::from_json(with("phi", "0")).ok);
  EXPECT_FALSE(CheckCase::from_json(with("phi", "1.5")).ok);
  EXPECT_FALSE(CheckCase::from_json(with("partitions", "0")).ok);
  EXPECT_FALSE(CheckCase::from_json(with("epochs", "0")).ok);
  EXPECT_FALSE(CheckCase::from_json(with("servers_per_rack", "0")).ok);
  EXPECT_FALSE(
      CheckCase::from_json(with("fault_plan", "\"crash at=0\"")).ok);
}

TEST(CheckCaseJson, ToScenarioMapsEveryKnob) {
  const CheckCase c = sample_case();
  const Scenario s = c.to_scenario();
  EXPECT_EQ(s.world.seed, c.seed);
  EXPECT_EQ(s.sim.seed, c.seed);
  EXPECT_EQ(s.world.servers_per_rack, c.servers_per_rack);
  EXPECT_EQ(s.sim.partitions, c.partitions);
  EXPECT_EQ(s.epochs, c.epochs);
  EXPECT_EQ(s.workload, c.workload);
  EXPECT_DOUBLE_EQ(s.zipf_exponent, c.zipf);
  EXPECT_DOUBLE_EQ(s.sim.alpha, c.alpha);
  EXPECT_EQ(s.sim.alpha_weights_history, c.alpha_weights_history);
  EXPECT_DOUBLE_EQ(s.sim.storage_limit, c.phi);
  EXPECT_DOUBLE_EQ(s.sim.failure_rate, c.failure_rate);
  EXPECT_DOUBLE_EQ(s.sim.min_availability, c.min_availability);
  EXPECT_EQ(s.fault_plan, c.fault_plan);
}

TEST(Fuzzer, IsDeterministicPerSeed) {
  for (const std::uint64_t seed : {0ull, 1ull, 42ull, 999ull}) {
    const CheckCase a = make_fuzz_case(seed);
    const CheckCase b = make_fuzz_case(seed);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.seed, seed);
  }
  EXPECT_NE(make_fuzz_case(1), make_fuzz_case(2));
}

TEST(Fuzzer, GeneratesOnlyValidRoundTrippableCases) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const CheckCase c = make_fuzz_case(seed);
    EXPECT_GT(c.partitions, 0u);
    EXPECT_GE(c.epochs, 10u);
    EXPECT_GT(c.alpha, 0.0);
    EXPECT_LT(c.alpha, 1.0);
    EXPECT_GT(c.phi, 0.0);
    EXPECT_LE(c.phi, 1.0);
    EXPECT_LE(c.fault_plan.size(), 3u);
    for (const FaultEvent& ev : c.fault_plan.events()) {
      EXPECT_EQ(validate_fault_event(ev), "") << "seed " << seed;
    }
    const CheckCase::ParseResult parsed = CheckCase::from_json(c.to_json());
    ASSERT_TRUE(parsed.ok) << "seed " << seed << ": " << parsed.error;
    EXPECT_EQ(parsed.value, c);
  }
}

TEST(Fuzzer, ReachesTheHostileFaultClauses) {
  // The grammar's newest clauses — correlated zone outages and Byzantine
  // stale-stats windows — must actually appear in the fuzz space, at
  // most one mass-kill (dc outage or zone outage) per case, and every
  // generated event must survive the text round-trip.
  std::size_t zone_outages = 0;
  std::size_t stale_stats = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const CheckCase c = make_fuzz_case(seed);
    std::size_t mass_kills = 0;
    for (const FaultEvent& ev : c.fault_plan.events()) {
      if (ev.kind == FaultKind::kZoneOutage) {
        ++zone_outages;
        ++mass_kills;
        EXPECT_LT(ev.zone, 6u) << "seed " << seed;
      }
      if (ev.kind == FaultKind::kDatacenterOutage) ++mass_kills;
      if (ev.kind == FaultKind::kStaleStats) {
        ++stale_stats;
        EXPECT_GT(ev.until, ev.at) << "seed " << seed;
        EXPECT_GT(ev.count, 0u) << "seed " << seed;
      }
      EXPECT_EQ(validate_fault_event(ev), "") << "seed " << seed;
    }
    EXPECT_LE(mass_kills, 1u) << "seed " << seed;
    const FaultPlan::ParseResult reparsed =
        FaultPlan::parse(c.fault_plan.serialize());
    ASSERT_TRUE(reparsed.ok) << "seed " << seed << ": " << reparsed.error;
    EXPECT_EQ(reparsed.plan.serialize(), c.fault_plan.serialize())
        << "seed " << seed;
  }
  EXPECT_GT(zone_outages, 0u);
  EXPECT_GT(stale_stats, 0u);
}

TEST(Fuzzer, ReachesTheErasureAxis) {
  // EC cases must actually appear in the fuzz space (~1/3 of seeds) with
  // in-grammar parameters, and every one must survive the JSON round-trip.
  std::size_t ec_cases = 0;
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    const CheckCase c = make_fuzz_case(seed);
    if (c.redundancy != RedundancyMode::kErasure) continue;
    ++ec_cases;
    EXPECT_GE(c.ec_k, 2u) << "seed " << seed;
    EXPECT_LE(c.ec_k, 4u) << "seed " << seed;
    EXPECT_GE(c.ec_m, 1u) << "seed " << seed;
    EXPECT_LE(c.ec_m, 2u) << "seed " << seed;
    const CheckCase::ParseResult parsed = CheckCase::from_json(c.to_json());
    ASSERT_TRUE(parsed.ok) << "seed " << seed << ": " << parsed.error;
    EXPECT_EQ(parsed.value, c);
  }
  EXPECT_GT(ec_cases, 15u);
  EXPECT_LT(ec_cases, 60u);  // replica mode must stay the common case
}

TEST(Differential, DefaultCaseRunsDivergenceFree) {
  CheckCase c;
  c.epochs = 16;
  const DiffOutcome outcome = run_check_case(c);
  EXPECT_TRUE(outcome.ok) << outcome.to_string();
  EXPECT_EQ(outcome.epochs_run, 16u);
  EXPECT_NE(outcome.to_string().find("ok after 16 epochs"),
            std::string::npos);
}

TEST(Differential, FuzzedCasesRunDivergenceFree) {
  // A slice of the fuzz space runs in tier-1 on every build; the CI
  // fuzz-smoke job and `rfh_check --seeds=200` cover much more ground.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const DiffOutcome outcome = run_check_case(make_fuzz_case(seed));
    EXPECT_TRUE(outcome.ok) << "seed " << seed << ": " << outcome.to_string();
  }
}

TEST(Differential, ForcedEc42CasesRunDivergenceFree) {
  // Every fuzz scenario re-run under ec(4,2): the engine and reference
  // must agree fragment-for-fragment, and the EC invariants (fragment
  // census, zone diversity) must hold every epoch. A wider 50-seed pass
  // runs in the CI ec-smoke job via rfh_check.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    CheckCase c = make_fuzz_case(seed);
    c.redundancy = RedundancyMode::kErasure;
    c.ec_k = 4;
    c.ec_m = 2;
    const DiffOutcome outcome = run_check_case(c);
    EXPECT_TRUE(outcome.ok) << "seed " << seed << ": " << outcome.to_string();
  }
}

TEST(Differential, FaultPlanCaseMirrorsFailuresIntoTheReference) {
  // Crash + flashcrowd exercises the event-stream mirroring (ServerFailed
  // batches, traffic multiplier) rather than the pure happy path.
  const DiffOutcome outcome = run_check_case(sample_case());
  EXPECT_TRUE(outcome.ok) << outcome.to_string();
}

TEST(Shrinker, MinimizesToTheFailureBoundary) {
  CheckCase big = sample_case();
  big.epochs = 40;
  big.partitions = 24;
  // Synthetic failure: anything with epochs >= 4 and partitions >= 3
  // "fails", so the minimum is exactly (4, 3) with everything else
  // stripped as far as the reducers go.
  const ShrinkResult r = shrink_case(big, [](const CheckCase& c) {
    return c.epochs >= 4 && c.partitions >= 3;
  });
  EXPECT_EQ(r.smallest.epochs, 4u);
  EXPECT_EQ(r.smallest.partitions, 3u);
  EXPECT_TRUE(r.smallest.fault_plan.empty());
  EXPECT_EQ(r.smallest.servers_per_rack, 1u);
  EXPECT_EQ(r.smallest.racks_per_room, 1u);
  EXPECT_GT(r.accepted, 0u);
  EXPECT_GE(r.attempts, r.accepted);
  // The result still satisfies the predicate — shrinking never trades a
  // failing case for a passing one.
  EXPECT_TRUE(r.smallest.epochs >= 4 && r.smallest.partitions >= 3);
}

TEST(Shrinker, RespectsTheAttemptBudget) {
  CheckCase big = sample_case();
  big.epochs = 4096;
  const ShrinkResult r = shrink_case(
      big, [](const CheckCase&) { return true; }, /*max_attempts=*/10);
  EXPECT_LE(r.attempts, 10u);
}

}  // namespace
}  // namespace rfh
