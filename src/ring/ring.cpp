#include "ring/ring.h"

#include <algorithm>

#include "common/assert.h"
#include "ring/hash.h"

namespace rfh {

HashRing::HashRing(std::uint32_t tokens_per_server)
    : tokens_per_server_(tokens_per_server) {
  RFH_ASSERT(tokens_per_server_ > 0);
}

std::size_t HashRing::successor_slot(std::uint64_t key) const {
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), key,
      [](const Token& t, std::uint64_t k) { return t.position < k; });
  if (it == ring_.end()) return 0;  // wrap around
  return static_cast<std::size_t>(it - ring_.begin());
}

bool HashRing::has_token_at(std::uint64_t position) const {
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), position,
      [](const Token& t, std::uint64_t k) { return t.position < k; });
  return it != ring_.end() && it->position == position;
}

void HashRing::add_server(ServerId server) {
  RFH_ASSERT(server.valid());
  RFH_ASSERT_MSG(!contains(server), "server already on ring");
  std::vector<std::uint64_t>& tokens = server_tokens_[server];
  tokens.reserve(tokens_per_server_);
  ring_.reserve(ring_.size() + tokens_per_server_);
  for (std::uint32_t i = 0; i < tokens_per_server_; ++i) {
    std::uint64_t pos = hash_combine(hash64(std::uint64_t{server.value()}),
                                     hash64(std::uint64_t{i}));
    // Token collisions across servers are astronomically unlikely but
    // would silently drop a token; probe linearly to keep the invariant
    // "every server owns exactly tokens_per_server_ positions".
    while (has_token_at(pos)) ++pos;
    const auto it = std::lower_bound(
        ring_.begin(), ring_.end(), pos,
        [](const Token& t, std::uint64_t k) { return t.position < k; });
    ring_.insert(it, Token{pos, server});
    tokens.push_back(pos);
  }
  ++membership_epoch_;
  successor_cache_.clear();
}

void HashRing::add_servers(std::span<const ServerId> servers) {
  if (servers.empty()) return;
  // Hash every token up front, keeping per-server i-order for
  // server_tokens_ (matching the incremental path's stored order).
  std::vector<Token> fresh;
  fresh.reserve(servers.size() * tokens_per_server_);
  for (const ServerId server : servers) {
    RFH_ASSERT(server.valid());
    RFH_ASSERT_MSG(!contains(server), "server already on ring");
    for (std::uint32_t i = 0; i < tokens_per_server_; ++i) {
      fresh.push_back(Token{hash_combine(hash64(std::uint64_t{server.value()}),
                                         hash64(std::uint64_t{i})),
                            server});
    }
  }
  std::vector<Token> sorted = fresh;
  std::sort(sorted.begin(), sorted.end(),
            [](const Token& a, const Token& b) { return a.position < b.position; });
  std::vector<Token> merged(ring_.size() + sorted.size());
  std::merge(ring_.begin(), ring_.end(), sorted.begin(), sorted.end(),
             merged.begin(), [](const Token& a, const Token& b) {
               return a.position < b.position;
             });
  for (std::size_t i = 1; i < merged.size(); ++i) {
    if (merged[i].position == merged[i - 1].position) {
      // Token collision: nothing has been committed yet, so defer to the
      // incremental path whose linear probe defines the semantics.
      for (const ServerId server : servers) add_server(server);
      return;
    }
  }
  ring_ = std::move(merged);
  for (const Token& token : fresh) {
    server_tokens_[token.owner].push_back(token.position);
  }
  ++membership_epoch_;
  successor_cache_.clear();
}

void HashRing::remove_server(ServerId server) {
  const auto it = server_tokens_.find(server);
  RFH_ASSERT_MSG(it != server_tokens_.end(), "server not on ring");
  for (const std::uint64_t pos : it->second) {
    const auto slot = std::lower_bound(
        ring_.begin(), ring_.end(), pos,
        [](const Token& t, std::uint64_t k) { return t.position < k; });
    RFH_ASSERT(slot != ring_.end() && slot->position == pos);
    ring_.erase(slot);
  }
  server_tokens_.erase(it);
  ++membership_epoch_;
  successor_cache_.clear();
}

void HashRing::remove_servers(std::span<const ServerId> servers) {
  if (servers.empty()) return;
  std::vector<std::uint64_t> doomed;
  doomed.reserve(servers.size() * tokens_per_server_);
  for (const ServerId server : servers) {
    const auto it = server_tokens_.find(server);
    RFH_ASSERT_MSG(it != server_tokens_.end(), "server not on ring");
    doomed.insert(doomed.end(), it->second.begin(), it->second.end());
    server_tokens_.erase(it);
  }
  std::sort(doomed.begin(), doomed.end());
  ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                             [&](const Token& t) {
                               return std::binary_search(
                                   doomed.begin(), doomed.end(), t.position);
                             }),
              ring_.end());
  ++membership_epoch_;
  successor_cache_.clear();
}

bool HashRing::contains(ServerId server) const {
  return server_tokens_.contains(server);
}

ServerId HashRing::primary(std::uint64_t key) const {
  RFH_ASSERT_MSG(!ring_.empty(), "ring is empty");
  return ring_[successor_slot(key)].owner;
}

const std::vector<ServerId>& HashRing::successors_of(std::size_t slot) const {
  if (successor_cache_.size() != ring_.size()) {
    successor_cache_.assign(ring_.size(), {});
  }
  std::vector<ServerId>& walk = successor_cache_[slot];
  if (walk.empty()) {
    // Full clockwise walk collecting each server once, in first-token
    // order — exactly the order the map-based dedup walk produced.
    walk.reserve(server_tokens_.size());
    for (std::size_t step = 0; step < ring_.size(); ++step) {
      const ServerId candidate = ring_[(slot + step) % ring_.size()].owner;
      if (std::find(walk.begin(), walk.end(), candidate) == walk.end()) {
        walk.push_back(candidate);
      }
      if (walk.size() == server_tokens_.size()) break;
    }
  }
  return walk;
}

std::vector<ServerId> HashRing::preference_list(std::uint64_t key,
                                                std::size_t n) const {
  RFH_ASSERT_MSG(!ring_.empty(), "ring is empty");
  const std::vector<ServerId>& walk = successors_of(successor_slot(key));
  const std::size_t take = std::min(n, walk.size());
  return std::vector<ServerId>(walk.begin(),
                               walk.begin() + static_cast<std::ptrdiff_t>(take));
}

std::uint64_t HashRing::partition_key(PartitionId partition) {
  return hash_combine(0x7061727469746E00ULL /* "partitn" */,
                      hash64(std::uint64_t{partition.value()}));
}

ServerId HashRing::partition_owner(PartitionId partition) const {
  return primary(partition_key(partition));
}

}  // namespace rfh
