#include "obs/story.h"

#include <cstdarg>
#include <cstdio>

namespace rfh {

namespace {

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  char buf[256];
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  return buf;
}

std::string explain_suffix(const DecisionExplanation& why) {
  if (why.rule == DecisionRule::kNone) return "";
  return format(" because %s: %.3g vs %.3g [q_bar=%.3g, r=%u/r_min=%u]",
                rule_inequality(why.rule), why.observed, why.threshold,
                why.q_bar, why.replica_count, why.r_min);
}

struct DescribeVisitor {
  std::string operator()(const QueryRoutedSummary& e) const {
    return format("routed %.0f queries (%.0f unserved, mean path %.2f)",
                  e.total_queries, e.unserved_queries, e.mean_path_length);
  }
  std::string operator()(const ReplicaAdded& e) const {
    return format("partition %u replicated: server %u -> server %u "
                  "(cost %.3g)",
                  e.partition.value(), e.source.value(), e.target.value(),
                  e.cost) +
           explain_suffix(e.why);
  }
  std::string operator()(const MigrationExecuted& e) const {
    return format("partition %u migrated: server %u -> server %u "
                  "(cost %.3g)",
                  e.partition.value(), e.from.value(), e.to.value(), e.cost) +
           explain_suffix(e.why);
  }
  std::string operator()(const Suicide& e) const {
    return format("partition %u copy on server %u suicided",
                  e.partition.value(), e.server.value()) +
           explain_suffix(e.why);
  }
  std::string operator()(const ActionDropped& e) const {
    const std::string target =
        e.target.valid() ? std::to_string(e.target.value()) : "-";
    return format("partition %u %s dropped (%s, target server %s)",
                  e.partition.value(), action_kind_name(e.kind),
                  drop_reason_name(e.reason), target.c_str());
  }
  std::string operator()(const ServerFailed& e) const {
    return format("server %u failed", e.server.value());
  }
  std::string operator()(const ServerRecovered& e) const {
    return format("server %u recovered", e.server.value());
  }
  std::string operator()(const PrimaryPromoted& e) const {
    return format("partition %u promoted server %u to primary",
                  e.partition.value(), e.new_primary.value());
  }
  std::string operator()(const Reseeded& e) const {
    return format("partition %u lost all copies; reseeded empty at "
                  "server %u (data loss)",
                  e.partition.value(), e.new_home.value());
  }
  std::string operator()(const LinkFailed& e) const {
    return format("link between datacenters %u and %u failed", e.a.value(),
                  e.b.value());
  }
  std::string operator()(const LinkRestored& e) const {
    return format("link between datacenters %u and %u restored", e.a.value(),
                  e.b.value());
  }
  std::string operator()(const FaultInjected& e) const {
    std::string text = format("chaos injected %s", e.kind);
    if (e.servers > 0) text += format(" (%u servers)", e.servers);
    if (e.dc.valid()) text += format(" [dc %u]", e.dc.value());
    if (e.link_a.valid() && e.link_b.valid()) {
      text += format(" [link %u-%u]", e.link_a.value(), e.link_b.value());
    }
    if (e.magnitude != 0.0) text += format(" [x%.3g traffic]", e.magnitude);
    return text;
  }
  std::string operator()(const EpochCompleted& e) const {
    return format("epoch done: %u replicas, +%u/-%u copies, %u migrations, "
                  "%u dropped",
                  e.total_replicas, e.replications, e.suicides, e.migrations,
                  e.dropped_actions);
  }
  std::string operator()(const PhaseSpan& e) const {
    return format("phase %s took %.3f ms", e.phase, e.wall_ms);
  }
  std::string operator()(const StreamEpochSummary& e) const {
    return format("stream: %.0f arrivals = %.0f served + %.0f blocked + "
                  "%.0f dropped (max depth %u, mean wait %.1f ms)",
                  e.arrivals, e.served, e.blocked, e.dropped,
                  e.max_queue_depth, e.mean_wait_ms);
  }
  std::string operator()(const QueueSaturated& e) const {
    return format("server %u (dc %u) queue saturated: depth %u/%u, "
                  "%.0f queries dropped by backpressure",
                  e.server.value(), e.dc.value(), e.max_depth, e.cap,
                  e.dropped);
  }
  std::string operator()(const TrafficShift& e) const {
    return format("partition %u demand shifted: q_bar %.3g -> %.3g",
                  e.partition.value(), e.q_bar_before, e.q_bar_after);
  }
  std::string operator()(const RuleFired& e) const {
    return format("partition %u rule %s fired: %s — %.3g vs %.3g "
                  "[q_bar=%.3g]",
                  e.partition.value(), rule_name(e.rule),
                  rule_inequality(e.rule), e.observed, e.threshold, e.q_bar);
  }
  std::string operator()(const SloBreach& e) const {
    return format("SLO %s breached: %.4g vs target %.4g "
                  "(burn short=%.2f long=%.2f)",
                  e.objective, e.observed, e.target, e.burn_short,
                  e.burn_long);
  }
  std::string operator()(const StatsFrozen& e) const {
    return format("server %u traffic stats %s", e.server.value(),
                  e.frozen ? "frozen (stale reports)" : "thawed");
  }
  std::string operator()(const StripeLost& e) const {
    return format("partition %u EC stripe lost: %u fragments alive "
                  "(below k)",
                  e.partition.value(), e.fragments_alive);
  }
  std::string operator()(const StripeReconstructed& e) const {
    return format("partition %u EC stripe reconstructed (>= k fragments)",
                  e.partition.value());
  }
};

}  // namespace

std::string describe_event(const Event& event) {
  return format("epoch %4u  %-18s ", event_epoch(event), event_name(event)) +
         std::visit(DescribeVisitor{}, event);
}

namespace {

struct ConcernsVisitor {
  PartitionId p;
  bool operator()(const ReplicaAdded& e) const { return e.partition == p; }
  bool operator()(const MigrationExecuted& e) const {
    return e.partition == p;
  }
  bool operator()(const Suicide& e) const { return e.partition == p; }
  bool operator()(const ActionDropped& e) const { return e.partition == p; }
  bool operator()(const PrimaryPromoted& e) const { return e.partition == p; }
  bool operator()(const Reseeded& e) const { return e.partition == p; }
  bool operator()(const TrafficShift& e) const { return e.partition == p; }
  bool operator()(const RuleFired& e) const { return e.partition == p; }
  bool operator()(const StripeLost& e) const { return e.partition == p; }
  bool operator()(const StripeReconstructed& e) const {
    return e.partition == p;
  }
  template <typename Other>
  bool operator()(const Other&) const {
    return false;
  }
};

}  // namespace

bool event_concerns(const Event& event, PartitionId partition) {
  return std::visit(ConcernsVisitor{partition}, event);
}

std::vector<std::string> partition_story(std::span<const Event> events,
                                         PartitionId partition) {
  std::vector<std::string> lines;
  for (const Event& event : events) {
    if (event_concerns(event, partition)) {
      lines.push_back(describe_event(event));
    }
  }
  return lines;
}

}  // namespace rfh
