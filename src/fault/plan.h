// Declarative fault schedules ("chaos plans").
//
// A FaultPlan is an ordered list of timed fault events — server crashes
// and recoveries, whole-datacenter outages, link failures and periodic
// link flaps, rolling membership churn, and flash-crowd traffic
// multipliers — that a ChaosController (chaos.h) applies to a running
// Simulation through the engine's existing failure-injection primitives.
// Plans are constructible programmatically (add()) or parsed from a small
// line-oriented text spec, and serialize back to the same canonical form,
// so a plan can be checked into a repo, diffed, and round-tripped.
//
// Spec grammar (one event per line; '#' starts a comment):
//
//   crash      at=E (count=N | servers=1,2,3)
//   recover    at=E (count=N | servers=1,2,3)
//   outage     at=E dc=D [recover_after=K]
//   linkdown   at=E a=DA b=DB [restore_at=E2]
//   flap       at=E until=E2 a=DA b=DB period=P down=K
//   churn      at=E until=E2 period=P kill=N [recover=M]
//   flashcrowd at=E duration=K factor=F
//   zoneoutage at=E zone=Z [recover_after=K]
//   stalestats at=E until=E2 (count=N | servers=1,2,3)
//
// Semantics (all epochs are "applied before stepping epoch E"):
//  * crash kills N seeded-random live servers (or the listed ids);
//  * recover revives the M longest-dead chaos victims (or the listed ids);
//  * outage kills every live server of datacenter D; with recover_after,
//    the victims come back K epochs later;
//  * linkdown takes the inter-datacenter link (DA, DB) down, optionally
//    restoring it at epoch E2;
//  * flap holds the link down for the first `down` epochs of every
//    `period`-epoch cycle in [at, until);
//  * churn, every P epochs in [at, until), kills N seeded-random live
//    servers and revives M of the longest-dead chaos victims (a rolling
//    wave: the dead population stays ~N*ceil(age/P) when M == N);
//  * flashcrowd multiplies all query traffic by F for K epochs;
//  * zoneoutage kills every live server of every datacenter whose
//    continent index matches Z (the numeric geo::Continent value) — a
//    correlated regional failure spanning multiple DCs at once; with
//    recover_after, the victims come back K epochs later;
//  * stalestats freezes TrafficStats smoothing for N seeded-random live
//    servers (or the listed ids) over [at, until): the victims keep
//    reporting their epoch-`at` load numbers — a Byzantine stale-stats
//    server feeding Eq. 17 — and thaw at `until`.
//
// This header depends only on common/ — sim depends on fault's controller
// (never the reverse), and the plan itself depends on nothing simulated.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/ids.h"
#include "common/units.h"

namespace rfh {

enum class FaultKind : std::uint8_t {
  kCrash = 0,
  kRecover,
  kDatacenterOutage,
  kLinkDown,
  kLinkFlap,
  kChurn,
  kFlashCrowd,
  kZoneOutage,
  kStaleStats,
};
inline constexpr std::size_t kFaultKindCount = 9;

/// Stable lower-case keyword ("crash", ...), used by the spec grammar and
/// the rfh_faults_injected_total{kind=...} telemetry label.
[[nodiscard]] const char* fault_kind_name(FaultKind kind) noexcept;

/// Sentinel for FaultEvent::zone — "no zone set".
inline constexpr std::uint32_t kNoZone = 0xFFFFFFFFu;

/// One scheduled fault. A single aggregate covers every kind; which
/// fields are meaningful (and required) depends on `kind` — see the
/// grammar above and validate_fault_event().
struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  /// First epoch the event applies to (injected before that epoch steps).
  Epoch at = 0;
  /// End of the active window for flap/churn, exclusive.
  Epoch until = 0;
  /// crash/recover/stalestats: how many seeded-random servers (0 with
  /// explicit ids).
  std::uint32_t count = 0;
  /// crash/recover/stalestats: explicit victims (empty with `count`).
  std::vector<ServerId> servers;
  /// outage: the datacenter to take down.
  DatacenterId dc;
  /// outage/zoneoutage: epochs until the victims recover (0 = never).
  Epoch recover_after = 0;
  /// zoneoutage: numeric geo::Continent index of the zone to take down.
  /// Not bounds-checked against the topology here (fault/ knows no geo);
  /// the controller skips zones with no matching datacenters.
  std::uint32_t zone = kNoZone;
  /// linkdown/flap: the link's endpoints.
  DatacenterId link_a;
  DatacenterId link_b;
  /// linkdown: epoch the link comes back (0 = never).
  Epoch restore_at = 0;
  /// flap/churn: cycle length in epochs.
  Epoch period = 0;
  /// flap: down-epochs at the start of each cycle.
  Epoch down = 0;
  /// churn: servers killed per wave.
  std::uint32_t kill = 0;
  /// churn: longest-dead chaos victims revived per wave.
  std::uint32_t recover = 0;
  /// flashcrowd: traffic multiplier.
  double factor = 1.0;
  /// flashcrowd: epochs the multiplier stays in force.
  Epoch duration = 0;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Empty string when `event` is well-formed for its kind; otherwise a
/// human-readable description of the offending field.
[[nodiscard]] std::string validate_fault_event(const FaultEvent& event);

class FaultPlan {
 public:
  /// Append an event. Asserts validity — programmatic construction with a
  /// malformed event is a caller bug; use parse() for untrusted input.
  void add(const FaultEvent& event);

  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }

  /// Last epoch any event of the plan can still act on (e.g. a flap's
  /// `until` or an outage's recovery epoch); 0 for an empty plan.
  [[nodiscard]] Epoch horizon() const noexcept;

  /// Canonical text form: the "# rfh-fault-plan/1" header followed by one
  /// grammar line per event, in plan order. parse(serialize()) is the
  /// identity on the event list.
  [[nodiscard]] std::string serialize() const;

  struct ParseResult;  // defined below (holds a FaultPlan by value)

  /// Parse the text spec; never aborts — malformed input yields ok=false
  /// with the offending line number and field in `error`.
  [[nodiscard]] static ParseResult parse(std::string_view text);

  /// Read and parse a spec file; I/O failures land in `error` too.
  [[nodiscard]] static ParseResult parse_file(const std::string& path);

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;

 private:
  std::vector<FaultEvent> events_;
};

struct FaultPlan::ParseResult {
  bool ok = false;
  std::string error;  // "line N: ..." when !ok
  FaultPlan plan;
};

}  // namespace rfh
