// SLO watchdog unit suite (telemetry/slo.h): the --slo= parse grammar,
// burn-rate arithmetic for floor and ceiling objectives, multi-window
// edge-triggered breach detection with re-arm, event/counter emission
// and the breach digest.
#include <gtest/gtest.h>

#include <sstream>

#include "obs/event_bus.h"
#include "obs/sinks.h"
#include "telemetry/registry.h"
#include "telemetry/slo.h"

namespace rfh {
namespace {

TEST(SloParseTest, FullGrammarRoundTrip) {
  const SloParseResult result =
      parse_slo("avail=0.999,p99=250,migrations=40,drops=0.05,short=3,"
                "long=12,burn=2");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.spec.availability_floor, 0.999);
  EXPECT_EQ(result.spec.stream_p99_ms, 250.0);
  EXPECT_EQ(result.spec.migrations_per_epoch, 40.0);
  EXPECT_EQ(result.spec.drop_rate, 0.05);
  EXPECT_EQ(result.spec.short_window, 3u);
  EXPECT_EQ(result.spec.long_window, 12u);
  EXPECT_EQ(result.spec.burn_threshold, 2.0);
  EXPECT_TRUE(result.spec.enabled());
  EXPECT_TRUE(result.spec.objective_enabled(SloObjective::kAvailability));
  EXPECT_EQ(result.spec.target(SloObjective::kStreamP99), 250.0);
}

TEST(SloParseTest, SingleObjectiveWithDefaults) {
  const SloParseResult result = parse_slo("avail=0.99");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.spec.objective_enabled(SloObjective::kAvailability));
  EXPECT_FALSE(result.spec.objective_enabled(SloObjective::kStreamP99));
  EXPECT_FALSE(result.spec.objective_enabled(SloObjective::kMigrationRate));
  EXPECT_FALSE(result.spec.objective_enabled(SloObjective::kDropRate));
  EXPECT_EQ(result.spec.short_window, 5u);
  EXPECT_EQ(result.spec.long_window, 60u);
  EXPECT_EQ(result.spec.burn_threshold, 1.5);
}

TEST(SloParseTest, MalformedInputsRejectedWithReason) {
  EXPECT_FALSE(parse_slo("").ok);               // nothing enabled
  EXPECT_FALSE(parse_slo("short=3,long=9").ok)  // windows but no objective
      << "windows alone must not arm the watchdog";
  EXPECT_FALSE(parse_slo("avail").ok);          // no '='
  EXPECT_FALSE(parse_slo("avail=abc").ok);      // bad number
  EXPECT_FALSE(parse_slo("avail=1.5").ok);      // out of (0,1)
  EXPECT_FALSE(parse_slo("avail=0").ok);
  EXPECT_FALSE(parse_slo("drops=1").ok);
  EXPECT_FALSE(parse_slo("nines=5").ok);        // unknown key
  EXPECT_FALSE(parse_slo("avail=0.9,short=0").ok);
  EXPECT_FALSE(parse_slo("avail=0.9,short=9,long=3").ok);
  EXPECT_FALSE(parse_slo("avail=0.9,burn=0").ok);
  EXPECT_FALSE(parse_slo("avail=0.9,burn=-1").ok);
  const SloParseResult bad = parse_slo("avail=0.9,frobnicate=1");
  ASSERT_FALSE(bad.ok);
  EXPECT_NE(bad.error.find("frobnicate"), std::string::npos);
}

TEST(SloBurnTest, AvailabilityFloorBurnsAgainstErrorBudget) {
  SloSpec spec;
  spec.availability_floor = 0.99;  // 1% error budget
  spec.short_window = 1;
  spec.long_window = 1;
  SloWatchdog watchdog(spec);
  SloSample sample;
  sample.availability = 0.98;  // 2% errors = 2x budget
  watchdog.observe(0, sample);
  EXPECT_DOUBLE_EQ(watchdog.burn_short(SloObjective::kAvailability), 2.0);
  sample.availability = 1.0;  // no errors = no burn
  watchdog.observe(1, sample);
  EXPECT_DOUBLE_EQ(watchdog.burn_short(SloObjective::kAvailability), 0.0);
}

TEST(SloBurnTest, CeilingObjectivesBurnAsObservedOverTarget) {
  SloSpec spec;
  spec.migrations_per_epoch = 10.0;
  spec.short_window = 1;
  spec.long_window = 1;
  SloWatchdog watchdog(spec);
  SloSample sample;
  sample.migrations = 25.0;
  watchdog.observe(0, sample);
  EXPECT_DOUBLE_EQ(watchdog.burn_short(SloObjective::kMigrationRate), 2.5);
}

TEST(SloWatchdogTest, BreachNeedsBothWindowsAndIsEdgeTriggered) {
  SloSpec spec;
  spec.availability_floor = 0.9;  // 10% budget
  spec.short_window = 2;
  spec.long_window = 4;
  spec.burn_threshold = 1.5;
  SloWatchdog watchdog(spec);
  SloSample good;   // burn 0
  SloSample bad;    // 30% errors = 3x budget
  bad.availability = 0.7;

  // Two bad epochs: short window (mean 3) crosses, but the long window
  // [0, 0, 3, 3] averages 1.5 only at the second epoch — breach fires
  // exactly once, there.
  watchdog.observe(0, good);
  watchdog.observe(1, good);
  watchdog.observe(2, bad);
  EXPECT_TRUE(watchdog.breaches().empty());
  watchdog.observe(3, bad);
  ASSERT_EQ(watchdog.breaches().size(), 1u);
  EXPECT_EQ(watchdog.breaches().front().epoch, 3u);
  EXPECT_EQ(watchdog.breaches().front().objective,
            SloObjective::kAvailability);
  EXPECT_TRUE(watchdog.in_breach(SloObjective::kAvailability));

  // Staying bad does NOT re-fire (edge-triggered)...
  watchdog.observe(4, bad);
  EXPECT_EQ(watchdog.breaches().size(), 1u);
  // ...two good epochs clear the short window and re-arm...
  watchdog.observe(5, good);
  watchdog.observe(6, good);
  EXPECT_FALSE(watchdog.in_breach(SloObjective::kAvailability));
  // ...and a fresh sustained incident fires a second episode.
  watchdog.observe(7, bad);
  watchdog.observe(8, bad);
  EXPECT_EQ(watchdog.breaches().size(), 2u);
}

TEST(SloWatchdogTest, BreachEmitsEventAndCounterWithAmbientCause) {
  SloSpec spec;
  spec.drop_rate = 0.1;
  spec.short_window = 1;
  spec.long_window = 1;
  EventBus bus;
  CounterSink counters;
  bus.add_sink(&counters);
  MetricRegistry registry;
  // Simulate a prior disturbance the breach should chain to.
  const std::uint64_t fault =
      bus.emit(ServerFailed{0, ServerId{3}});
  bus.set_ambient_cause(fault);
  SloWatchdog watchdog(spec, &bus, &registry);
  SloSample sample;
  sample.drop_rate = 0.5;  // 5x the ceiling
  watchdog.observe(1, sample);
  ASSERT_EQ(watchdog.breaches().size(), 1u);
  const SloBreachRecord& record = watchdog.breaches().front();
  EXPECT_NE(record.cause_id, 0u);
  EXPECT_GT(record.cause_id, fault);
  EXPECT_EQ(counters.count("SloBreach"), 1u);
  std::ostringstream prom;
  registry.write_prometheus(prom);
  EXPECT_NE(prom.str().find("rfh_slo_breaches_total"), std::string::npos);
  EXPECT_NE(prom.str().find("drop_rate"), std::string::npos);
}

TEST(SloWatchdogTest, DigestIsPureFunctionOfBreachSequence) {
  SloSpec spec;
  spec.migrations_per_epoch = 1.0;
  spec.short_window = 1;
  spec.long_window = 2;
  const auto run = [&spec] {
    SloWatchdog watchdog(spec);
    SloSample quiet;
    SloSample storm;
    storm.migrations = 9.0;
    for (Epoch e = 0; e < 20; ++e) {
      watchdog.observe(e, e % 5 < 2 ? storm : quiet);
    }
    return watchdog;
  };
  const SloWatchdog a = run();
  const SloWatchdog b = run();
  EXPECT_FALSE(a.breaches().empty());
  EXPECT_EQ(a.digest(), b.digest());
  // And the digest actually depends on the sequence.
  SloWatchdog empty(spec);
  EXPECT_NE(a.digest(), empty.digest());
}

TEST(SloWatchdogTest, DisabledObjectivesNeverBreach) {
  SloSpec spec;
  spec.stream_p99_ms = 100.0;
  spec.short_window = 1;
  spec.long_window = 1;
  SloWatchdog watchdog(spec);
  SloSample sample;
  sample.availability = 0.0;  // catastrophic, but the objective is off
  sample.migrations = 1e9;
  sample.drop_rate = 0.0;
  sample.stream_p99_ms = 50.0;  // the one armed objective is healthy
  for (Epoch e = 0; e < 10; ++e) watchdog.observe(e, sample);
  EXPECT_TRUE(watchdog.breaches().empty());
  EXPECT_EQ(watchdog.burn_short(SloObjective::kAvailability), 0.0);
}

}  // namespace
}  // namespace rfh
