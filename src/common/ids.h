// Strong ID types for every entity in the system.
//
// Using a distinct type per entity makes it impossible to pass a ServerId
// where a PartitionId is expected; each is a thin wrapper around a 32-bit
// index with an explicit invalid sentinel.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace rfh {

template <typename Tag>
class Id {
 public:
  using value_type = std::uint32_t;
  static constexpr value_type kInvalidValue =
      std::numeric_limits<value_type>::max();

  constexpr Id() noexcept : value_(kInvalidValue) {}
  constexpr explicit Id(value_type value) noexcept : value_(value) {}

  [[nodiscard]] constexpr value_type value() const noexcept { return value_; }
  [[nodiscard]] constexpr bool valid() const noexcept {
    return value_ != kInvalidValue;
  }
  [[nodiscard]] static constexpr Id invalid() noexcept { return Id{}; }

  friend constexpr auto operator<=>(Id, Id) noexcept = default;

 private:
  value_type value_;
};

struct DatacenterTag {};
struct RoomTag {};
struct RackTag {};
struct ServerTag {};
struct PartitionTag {};
struct VnodeTag {};

/// A datacenter (the unit of geographic diversity, availability level 5).
using DatacenterId = Id<DatacenterTag>;
/// A room within a datacenter (availability level 4).
using RoomId = Id<RoomTag>;
/// A rack within a room (availability level 3).
using RackId = Id<RackTag>;
/// A physical storage host (availability levels 1-2).
using ServerId = Id<ServerTag>;
/// A data partition (512 KB stripe in the default Table I setting).
using PartitionId = Id<PartitionTag>;
/// A virtual node on the consistent-hashing ring.
using VnodeId = Id<VnodeTag>;

}  // namespace rfh

namespace std {

template <typename Tag>
struct hash<rfh::Id<Tag>> {
  size_t operator()(rfh::Id<Tag> id) const noexcept {
    return std::hash<typename rfh::Id<Tag>::value_type>{}(id.value());
  }
};

}  // namespace std
