// Machine-readable bench reporting.
//
// Every bench_* binary prints human-oriented CSV on stdout; this helper
// additionally writes BENCH_<name>.json — wall-clock per stage plus the
// bench's own summary metrics — so CI can archive results and
// scripts/bench_diff.py can compare two runs for regressions.
//
// Schema ("rfh-bench-report/1"):
//   {
//     "schema": "rfh-bench-report/1",
//     "bench": "<name>",
//     "stages": [{"name": "...", "wall_ms": <double>}, ...],
//     "metrics": {"<name>": <double>, ...},
//     "total_wall_ms": <double>
//   }
//
// Usage:
//   rfh::BenchReport report("fig10_failure_recovery");
//   { auto s = report.stage("run_rfh"); ... }   // RAII wall-clock stage
//   report.add_metric("plateau_replicas", plateau);
//   report.write_file();   // BENCH_fig10_failure_recovery.json
//
// The output directory is $RFH_BENCH_OUT_DIR when set, else the current
// working directory. Reporting is observational: it never touches
// simulation state, so bench outputs stay deterministic.
#pragma once

#include <chrono>
#include <string>
#include <utility>
#include <vector>

namespace rfh {

class BenchReport {
 public:
  using Clock = std::chrono::steady_clock;

  /// `name` must be a filesystem-safe identifier (it lands in the file
  /// name and the "bench" field). The total-wall clock starts here.
  explicit BenchReport(std::string name);

  /// RAII wall-clock stage: the stage's duration is the ScopedStage's
  /// lifetime. Stages may not overlap in practice (benches are
  /// sequential) but nothing enforces it; each records independently.
  class ScopedStage {
   public:
    ScopedStage(BenchReport& report, std::size_t index)
        : report_(&report), index_(index), start_(Clock::now()) {}
    ScopedStage(const ScopedStage&) = delete;
    ScopedStage& operator=(const ScopedStage&) = delete;
    ~ScopedStage();

   private:
    BenchReport* report_;
    std::size_t index_;
    Clock::time_point start_;
  };

  [[nodiscard]] ScopedStage stage(std::string name);

  /// Record a summary metric (figure plateaus, tail means, counts...).
  /// Re-adding a name overwrites it.
  void add_metric(const std::string& name, double value);

  /// Serialize the report (stops the total-wall clock at call time).
  [[nodiscard]] std::string to_json() const;

  /// Write BENCH_<name>.json into $RFH_BENCH_OUT_DIR (or the cwd) and
  /// return the path; empty string on I/O failure (also reported on
  /// stderr, but benches keep their exit status).
  std::string write_file() const;

 private:
  friend class ScopedStage;

  struct Stage {
    std::string name;
    double wall_ms = 0.0;
  };

  std::string name_;
  Clock::time_point start_;
  std::vector<Stage> stages_;
  std::vector<std::pair<std::string, double>> metrics_;
};

}  // namespace rfh
