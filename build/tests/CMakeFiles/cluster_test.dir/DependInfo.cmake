
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cluster_test.cpp" "tests/CMakeFiles/cluster_test.dir/cluster_test.cpp.o" "gcc" "tests/CMakeFiles/cluster_test.dir/cluster_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/rfh_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/consistency/CMakeFiles/rfh_consistency.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/rfh_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/rfh_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rfh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rfh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/rfh_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rfh_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/rfh_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/ring/CMakeFiles/rfh_ring.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/rfh_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rfh_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
