// The differential oracle: a deliberately naive, cache-free
// re-implementation of one RFH epoch.
//
// Where the optimized engine (src/sim/engine.cpp + its collaborators)
// keeps a sorted token vector with successor caches, a route memo and
// incrementally maintained statistics, the reference engine recomputes
// everything the slow way every epoch:
//
//   * the consistent-hashing ring is a plain std::map<token, server>
//     walked clockwise with linear dedup — no successor lists, no caches;
//   * every query flow's route is recomputed from the shortest-path table
//     on the spot — no per-(partition, requester) memo;
//   * the EWMA statistics (Eqs. 9-11) live in plain vectors updated by a
//     direct transcription of the update equations;
//   * the decision tree (Eqs. 12-17) is evaluated inline against those
//     vectors, with its own hysteresis state;
//   * action application re-checks Eq. 19 / bandwidth / liveness directly.
//
// Pure *stateless* leaves are shared with the engine on purpose —
// hash64/hash_combine, rendezvous_pick, erlang_b, min_replicas, Dijkstra
// (ShortestPaths) and the workload generators. Re-implementing those
// would only diverge on tie-breaks that are arbitrary-but-fixed (e.g.
// Dijkstra pop order), producing false positives that say nothing about
// the caching layers the oracle exists to check. Everything *stateful*
// or cached is independent.
//
// The DifferentialHarness (diff.h) cross-checks engine vs. reference
// after every epoch: placements, applied decisions (with their
// DecisionRule), traffic totals, smoothed statistics and replica counts
// must match bit-for-bit.
#pragma once

#include <array>
#include <map>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "harness/scenario.h"
#include "net/graph.h"
#include "net/shortest_paths.h"
#include "obs/events.h"
#include "routing/router.h"
#include "sim/cluster.h"
#include "sim/config.h"
#include "topology/world.h"
#include "workload/generator.h"

namespace rfh {

/// One action the reference engine validated and applied, in apply order
/// (replications, then migrations, then suicides — the engine's event
/// emission order).
struct RefAppliedAction {
  ActionKind kind = ActionKind::kReplicate;
  PartitionId partition;
  /// kReplicate: the sourcing primary; kMigrate: the vacated server;
  /// kSuicide: the removed copy's host.
  ServerId a;
  /// kReplicate / kMigrate: the new copy's host; invalid for kSuicide.
  ServerId b;
  DecisionRule rule = DecisionRule::kNone;

  friend bool operator==(const RefAppliedAction&,
                         const RefAppliedAction&) = default;
};

/// The reference engine's per-epoch observables, mirroring EpochReport
/// plus the applied-action record the harness diffs against trace events.
struct RefEpochReport {
  Epoch epoch = 0;
  double total_queries = 0.0;
  double unserved_queries = 0.0;
  double mean_path_length = 0.0;
  std::uint32_t replications = 0;
  std::uint32_t migrations = 0;
  std::uint32_t suicides = 0;
  std::uint32_t dropped_actions = 0;
  std::array<std::uint32_t, kDropReasonCount> dropped_by_reason{};
  double replication_cost = 0.0;
  double migration_cost = 0.0;
  std::uint32_t total_replicas = 0;
  std::vector<RefAppliedAction> applied;
};

class ReferenceEngine {
 public:
  /// Builds its own World copy from the scenario (same seed, so the
  /// heterogeneous capacities are identical) and forks the same RNG
  /// stream tags as the engine. Always evaluates the default-option RFH
  /// policy — the harness runs the engine with PolicyKind::kRfh defaults.
  explicit ReferenceEngine(const Scenario& scenario);

  RefEpochReport step();

  // --- failure mirroring (driven from the engine's event stream) --------
  void fail_servers(std::span<const ServerId> servers);
  void recover_servers(std::span<const ServerId> servers);
  void fail_link(DatacenterId a, DatacenterId b);
  void restore_link(DatacenterId a, DatacenterId b);
  void set_traffic_multiplier(double factor) noexcept {
    traffic_multiplier_ = factor;
  }
  /// Mirror of Simulation::set_stats_frozen (the stalestats fault):
  /// while frozen, update_stats leaves the server's tr_bar row and
  /// arrival rate untouched.
  void set_stats_frozen(ServerId s, bool frozen);

  // --- observers for the differential comparison ------------------------
  [[nodiscard]] Epoch epoch() const noexcept { return epoch_; }
  [[nodiscard]] std::uint32_t data_losses() const noexcept {
    return data_losses_;
  }
  [[nodiscard]] std::uint32_t total_replicas() const noexcept {
    return total_replicas_;
  }
  [[nodiscard]] std::uint32_t live_server_count() const noexcept {
    return live_count_;
  }
  [[nodiscard]] std::size_t server_count() const noexcept {
    return world_.topology.server_count();
  }
  [[nodiscard]] std::uint32_t partitions() const noexcept {
    return config_.partitions;
  }
  [[nodiscard]] ServerId primary_of(PartitionId p) const;
  /// The partition's copies in list (insertion) order.
  [[nodiscard]] std::span<const Replica> replicas_of(PartitionId p) const;
  [[nodiscard]] double avg_query(PartitionId p) const;
  [[nodiscard]] double node_traffic(PartitionId p, ServerId s) const;
  [[nodiscard]] bool alive(ServerId s) const;

 private:
  struct RefRoute {
    std::vector<RouteStage> stages;
    std::uint32_t total_hops = 0;
    double total_latency_ms = 0.0;
  };
  struct LostCopy {
    PartitionId partition;
    bool was_primary = false;
  };
  struct ProposedReplicate {
    PartitionId partition;
    ServerId target;
    DecisionRule rule = DecisionRule::kNone;
  };
  struct ProposedMigrate {
    PartitionId partition;
    ServerId from;
    ServerId to;
    DecisionRule rule = DecisionRule::kNone;
  };
  struct ProposedSuicide {
    PartitionId partition;
    ServerId server;
    DecisionRule rule = DecisionRule::kNone;
  };

  // --- naive std::map ring ---------------------------------------------
  void ring_add(ServerId s);
  void ring_remove(ServerId s);
  [[nodiscard]] std::vector<ServerId> preference_list(std::uint64_t key,
                                                      std::size_t n) const;

  // --- cluster bookkeeping ---------------------------------------------
  void add_replica(PartitionId p, ServerId s, bool primary = false);
  void remove_replica(PartitionId p, ServerId s);
  void set_primary(PartitionId p, ServerId s);
  [[nodiscard]] bool has_replica(PartitionId p, ServerId s) const;
  [[nodiscard]] bool can_accept(ServerId s, PartitionId p) const;
  [[nodiscard]] std::vector<ServerId> hosts_in_dc(PartitionId p,
                                                  DatacenterId dc) const;
  void rebuild_live_by_dc();
  void seed_primaries();
  void handle_lost_copies(std::span<const LostCopy> lost);

  // --- per-epoch phases -------------------------------------------------
  void compute_route(PartitionId partition, DatacenterId requester,
                     ServerId holder, RefRoute& route) const;
  void propagate(const QueryBatch& batch);
  void update_stats();
  void clear_server_stats(ServerId s);
  void decide(std::vector<ProposedReplicate>& replications,
              std::vector<ProposedMigrate>& migrations,
              std::vector<ProposedSuicide>& suicides);
  void apply(const std::vector<ProposedReplicate>& replications,
             const std::vector<ProposedMigrate>& migrations,
             const std::vector<ProposedSuicide>& suicides,
             RefEpochReport& report);

  // --- decision-tree helpers (mirroring core/rfh_policy.cpp semantics
  // against the naive state) --------------------------------------------
  struct HubCandidate {
    ServerId server;
    double traffic = 0.0;
  };
  [[nodiscard]] std::vector<HubCandidate> hub_candidates(
      PartitionId p, double gamma_threshold, bool require_gamma) const;
  [[nodiscard]] ServerId select_in_dc(DatacenterId dc, PartitionId p) const;
  [[nodiscard]] ServerId pick_target_hub(
      PartitionId p, const std::vector<HubCandidate>& hubs) const;
  [[nodiscard]] ServerId pick_target_near_owner(PartitionId p) const;
  [[nodiscard]] bool holder_overloaded(PartitionId p, ServerId primary) const;

  [[nodiscard]] double transfer_cost(DatacenterId from, DatacenterId to,
                                     Bytes bytes,
                                     BytesPerEpoch bandwidth) const;
  void rebuild_network();
  [[nodiscard]] std::vector<Link> active_links() const;
  [[nodiscard]] std::size_t traffic_index(PartitionId p, ServerId s) const {
    return p.value() * world_.topology.server_count() + s.value();
  }

  World world_;
  SimConfig config_;
  std::unique_ptr<WorkloadGenerator> workload_;
  Rng rng_workload_;

  // Ring: token -> owner plus each server's token list (insertion order).
  std::map<std::uint64_t, ServerId> ring_;
  std::map<ServerId, std::vector<std::uint64_t>> ring_tokens_;

  // Cluster state.
  std::vector<std::vector<Replica>> replicas_;  // by partition
  std::vector<Bytes> storage_used_;
  std::vector<std::uint32_t> copies_on_;
  std::vector<char> alive_;
  std::vector<std::vector<ServerId>> live_by_dc_;
  std::uint32_t live_count_ = 0;
  std::uint32_t total_replicas_ = 0;

  // Network (rebuilt from scratch on every link change).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> disabled_links_;
  std::unique_ptr<DcGraph> graph_;
  std::unique_ptr<ShortestPaths> paths_;

  // Per-epoch raw traffic (Eqs. 2-8 inputs), reset each step.
  std::vector<double> e_node_traffic_;
  std::vector<double> e_served_;
  std::vector<double> e_requester_queries_;
  std::vector<double> e_partition_queries_;
  std::vector<double> e_unserved_;
  std::vector<double> e_server_work_;
  double e_total_queries_ = 0.0;
  double e_routed_queries_ = 0.0;
  double e_path_hops_weighted_ = 0.0;

  // Smoothed statistics (Eqs. 9-11), direct transcription.
  std::vector<double> avg_query_;
  std::vector<double> node_traffic_;
  std::vector<double> node_traffic_sum_;
  std::vector<double> requester_queries_;
  std::vector<double> server_arrival_;
  std::vector<char> stats_frozen_;
  bool stats_initialized_ = false;

  // Decision-tree hysteresis (RfhPolicy default options).
  std::vector<std::uint32_t> overload_streak_;
  std::unordered_map<std::uint64_t, std::uint32_t> cold_streak_;

  // Per-epoch bandwidth budgets.
  std::vector<Bytes> replication_bytes_;
  std::vector<Bytes> migration_bytes_;

  Epoch epoch_ = 0;
  double traffic_multiplier_ = 1.0;
  std::uint32_t data_losses_ = 0;
  /// EC mode: mirrors the engine's stripe-loss flags (fewer than k live
  /// fragments, already counted as a data loss). Unused in replica mode.
  std::vector<std::uint8_t> stripe_lost_;
};

}  // namespace rfh
