// End-to-end comparative runs (shortened paper scenarios) asserting the
// qualitative results of the evaluation section: who wins on which
// metric. These are the repository's regression net for the figures.
#include <gtest/gtest.h>

#include "common/availability.h"
#include "harness/report.h"
#include "harness/runner.h"

namespace rfh {
namespace {

Scenario short_random_query() {
  Scenario s = Scenario::paper_random_query();
  s.epochs = 120;
  return s;
}

Scenario short_flash_crowd() {
  Scenario s = Scenario::paper_flash_crowd();
  s.epochs = 200;  // 4 stages of 50 epochs
  return s;
}

class RandomQueryComparison : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    result_ = new ComparativeResult(run_comparison(short_random_query()));
  }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }
  static const ComparativeResult& result() { return *result_; }

  static double tail(PolicyKind kind, double EpochMetrics::* field) {
    return tail_mean(result().run(kind), field, 30);
  }

 private:
  static const ComparativeResult* result_;
};

const ComparativeResult* RandomQueryComparison::result_ = nullptr;

TEST_F(RandomQueryComparison, Fig3aUtilizationOrdering) {
  // RFH highest; random lowest (paper Fig. 3a).
  const double rfh = tail(PolicyKind::kRfh, &EpochMetrics::utilization);
  EXPECT_GT(rfh, tail(PolicyKind::kRequest, &EpochMetrics::utilization));
  EXPECT_GT(rfh, tail(PolicyKind::kOwner, &EpochMetrics::utilization));
  EXPECT_GT(tail(PolicyKind::kRequest, &EpochMetrics::utilization),
            tail(PolicyKind::kRandom, &EpochMetrics::utilization));
  EXPECT_GT(tail(PolicyKind::kOwner, &EpochMetrics::utilization),
            tail(PolicyKind::kRandom, &EpochMetrics::utilization));
}

TEST_F(RandomQueryComparison, Fig4ReplicaCensusOrdering) {
  // Random needs by far the most copies; RFH and request the fewest
  // (paper Fig. 4a/b).
  const double random =
      tail(PolicyKind::kRandom, &EpochMetrics::avg_replicas_per_partition);
  const double owner =
      tail(PolicyKind::kOwner, &EpochMetrics::avg_replicas_per_partition);
  const double rfh =
      tail(PolicyKind::kRfh, &EpochMetrics::avg_replicas_per_partition);
  const double request =
      tail(PolicyKind::kRequest, &EpochMetrics::avg_replicas_per_partition);
  EXPECT_GT(random, owner);
  EXPECT_GT(owner, rfh);
  EXPECT_GT(owner, request);
  EXPECT_GT(random, 1.5 * rfh);  // the paper's ~2x factor
}

TEST_F(RandomQueryComparison, Fig5ReplicationCostShape) {
  // Random pays the most total; RFH the least (paper Fig. 5a).
  const double random =
      tail(PolicyKind::kRandom, &EpochMetrics::replication_cost_total);
  const double rfh =
      tail(PolicyKind::kRfh, &EpochMetrics::replication_cost_total);
  EXPECT_GT(random, rfh);
  EXPECT_GT(random, tail(PolicyKind::kOwner,
                         &EpochMetrics::replication_cost_total));
  // Average cost: request-oriented pays more per copy than owner-oriented
  // (long-haul copies towards requesters, paper Fig. 5b).
  EXPECT_GT(tail(PolicyKind::kRequest, &EpochMetrics::replication_cost_avg),
            tail(PolicyKind::kOwner, &EpochMetrics::replication_cost_avg));
}

TEST_F(RandomQueryComparison, Fig6And7MigrationShape) {
  // Request migrates the most; random and owner never; RFH little
  // (paper Figs. 6-7).
  const auto migrations = [&](PolicyKind kind) {
    return result().run(kind).series.back().migrations_total;
  };
  EXPECT_EQ(migrations(PolicyKind::kRandom), 0u);
  EXPECT_EQ(migrations(PolicyKind::kOwner), 0u);
  EXPECT_GT(migrations(PolicyKind::kRequest), migrations(PolicyKind::kRfh));
  EXPECT_GT(migrations(PolicyKind::kRfh), 0u);
  EXPECT_GT(tail(PolicyKind::kRequest, &EpochMetrics::migration_cost_total),
            tail(PolicyKind::kRfh, &EpochMetrics::migration_cost_total));
}

TEST_F(RandomQueryComparison, Fig8LoadImbalanceShape) {
  // RFH balances best (paper Fig. 8a).
  const double rfh = tail(PolicyKind::kRfh, &EpochMetrics::load_imbalance);
  EXPECT_LT(rfh, tail(PolicyKind::kRequest, &EpochMetrics::load_imbalance));
  EXPECT_LT(rfh, tail(PolicyKind::kOwner, &EpochMetrics::load_imbalance));
  EXPECT_LT(rfh, tail(PolicyKind::kRandom, &EpochMetrics::load_imbalance));
}

TEST_F(RandomQueryComparison, Fig9PathDropsSharplyAtStart) {
  // All curves fall as the replica build-out raises hit chances
  // (paper Fig. 9a); RFH ends shorter than request-oriented.
  for (const PolicyRun& run : result().runs) {
    const double early = run.series[1].path_length;
    double late = 0.0;
    for (std::size_t e = run.series.size() - 20; e < run.series.size(); ++e) {
      late += run.series[e].path_length;
    }
    late /= 20.0;
    EXPECT_LT(late, early) << policy_name(run.kind);
  }
  EXPECT_LT(tail(PolicyKind::kRfh, &EpochMetrics::path_length),
            tail(PolicyKind::kRequest, &EpochMetrics::path_length));
}

TEST_F(RandomQueryComparison, EveryPolicyHoldsTheAvailabilityFloor) {
  const Scenario s = short_random_query();
  const std::uint32_t floor =
      min_replicas(s.sim.min_availability, s.sim.failure_rate);
  for (const PolicyRun& run : result().runs) {
    const double avg_tail =
        tail_mean(run, &EpochMetrics::avg_replicas_per_partition, 30);
    EXPECT_GE(avg_tail, static_cast<double>(floor) - 0.05)
        << policy_name(run.kind);
  }
}

class FlashCrowdComparison : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    result_ = new ComparativeResult(run_comparison(short_flash_crowd()));
  }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }
  static const ComparativeResult& result() { return *result_; }

  static double stage_mean(PolicyKind kind, int stage,
                           double EpochMetrics::* field) {
    const PolicyRun& run = result().run(kind);
    const std::size_t len = run.series.size() / 4;
    const std::size_t lo = static_cast<std::size_t>(stage) * len;
    double sum = 0.0;
    for (std::size_t e = lo; e < lo + len; ++e) sum += run.series[e].*field;
    return sum / static_cast<double>(len);
  }

 private:
  static const ComparativeResult* result_;
};

const ComparativeResult* FlashCrowdComparison::result_ = nullptr;

TEST_F(FlashCrowdComparison, RfhUtilizationStaysOnTopThroughEveryStage) {
  for (int stage = 0; stage < 4; ++stage) {
    const double rfh =
        stage_mean(PolicyKind::kRfh, stage, &EpochMetrics::utilization);
    EXPECT_GT(rfh, stage_mean(PolicyKind::kRandom, stage,
                              &EpochMetrics::utilization))
        << "stage " << stage;
    EXPECT_GT(rfh, stage_mean(PolicyKind::kOwner, stage,
                              &EpochMetrics::utilization))
        << "stage " << stage;
  }
}

TEST_F(FlashCrowdComparison, RequestUtilizationDipsAtTheStageSwitch) {
  // Paper Fig. 3b: when the crowd moves, the request-oriented replicas
  // are stranded and its utilization drops before migration catches up.
  const PolicyRun& request = result().run(PolicyKind::kRequest);
  const std::size_t len = request.series.size() / 4;
  auto mean_over = [&](std::size_t lo, std::size_t n) {
    double sum = 0.0;
    for (std::size_t e = lo; e < lo + n; ++e) {
      sum += request.series[e].utilization;
    }
    return sum / static_cast<double>(n);
  };
  const double before = mean_over(len - 10, 10);     // end of stage 1
  const double after = mean_over(len + 2, 10);       // start of stage 2
  EXPECT_LT(after, before);
}

TEST_F(FlashCrowdComparison, RfhCensusStaysLeanWhileOthersInflate) {
  const double rfh = stage_mean(PolicyKind::kRfh, 3,
                                &EpochMetrics::avg_replicas_per_partition);
  const double random = stage_mean(
      PolicyKind::kRandom, 3, &EpochMetrics::avg_replicas_per_partition);
  const double owner = stage_mean(PolicyKind::kOwner, 3,
                                  &EpochMetrics::avg_replicas_per_partition);
  EXPECT_GT(random, 2.0 * rfh);
  EXPECT_GT(owner, rfh);
}

TEST_F(FlashCrowdComparison, MigrationCostsRiseUnderFlashCrowd) {
  // Paper Fig. 7: both request-oriented and RFH migrate more under flash
  // crowd than under random query (absolute totals compared on the same
  // horizon would need equal epochs; compare per-epoch rates instead).
  const Scenario uniform = short_random_query();
  const ComparativeResult uniform_result = run_comparison(uniform);
  const auto rate = [](const PolicyRun& run) {
    return run.series.back().migration_cost_total /
           static_cast<double>(run.series.size());
  };
  EXPECT_GT(rate(result().run(PolicyKind::kRequest)),
            rate(uniform_result.run(PolicyKind::kRequest)));
  EXPECT_GT(rate(result().run(PolicyKind::kRfh)),
            rate(uniform_result.run(PolicyKind::kRfh)));
}

TEST_F(FlashCrowdComparison, RfhImbalanceDoesNotDegradeUnderFlash) {
  const Scenario uniform = short_random_query();
  const ComparativeResult uniform_result = run_comparison(uniform);
  const double flash_rfh =
      stage_mean(PolicyKind::kRfh, 3, &EpochMetrics::load_imbalance);
  const double uniform_rfh = tail_mean(uniform_result.run(PolicyKind::kRfh),
                                       &EpochMetrics::load_imbalance, 30);
  EXPECT_LT(flash_rfh, uniform_rfh * 1.15);
}

TEST(IntegrationInvariants, StorageLimitAndInvariantsHoldForEveryPolicy) {
  Scenario scenario = Scenario::paper_random_query();
  scenario.epochs = 60;
  for (const PolicyKind kind : {PolicyKind::kRequest, PolicyKind::kOwner,
                                PolicyKind::kRandom, PolicyKind::kRfh}) {
    auto sim = make_simulation(scenario, kind);
    for (Epoch e = 0; e < scenario.epochs; ++e) {
      sim->step();
      if (e % 10 == 0) sim->cluster().check_invariants();
    }
    sim->cluster().check_invariants();
    for (const Server& server : sim->topology().servers()) {
      EXPECT_LE(sim->cluster().copies_on(server.id), server.spec.max_vnodes)
          << policy_name(kind);
    }
  }
}

TEST(IntegrationInvariants, UnservedDemandVanishesForAdaptivePolicies) {
  // After the build-out, RFH serves essentially all demand.
  Scenario scenario = Scenario::paper_random_query();
  scenario.epochs = 120;
  const PolicyRun run = run_policy(scenario, PolicyKind::kRfh);
  EXPECT_LT(tail_mean(run, &EpochMetrics::unserved_fraction, 30), 0.10);
}

}  // namespace
}  // namespace rfh
