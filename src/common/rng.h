// Deterministic pseudo-random number generation.
//
// Every stochastic element of the simulation (query arrivals, requester
// mix, capacity heterogeneity, failure injection) is driven by seeded
// generators so that every figure in EXPERIMENTS.md is exactly
// reproducible. The engine is xoshiro256**, seeded via SplitMix64; both
// are implemented here so the library has no dependency on unspecified
// std::mt19937 stream details across standard libraries.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace rfh {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality 64-bit generator.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x52464831u /* "RFH1" */) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept { return next(); }
  result_type next() noexcept;

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform_real() noexcept;

  /// Uniform double in [lo, hi).
  double uniform_real_range(double lo, double hi) noexcept;

  /// Poisson-distributed sample with the given mean (Knuth for small
  /// means, normal approximation with continuity correction above 64).
  std::uint64_t poisson(double mean) noexcept;

  /// Standard normal via Box-Muller (no cached spare: keeps the stream
  /// position a pure function of call count).
  double normal() noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> values) noexcept {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// Sample k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k) noexcept;

  /// Derive an independent generator for a named subsystem. Mixing the tag
  /// into the seed keeps streams decoupled: drawing more samples in one
  /// subsystem never perturbs another.
  [[nodiscard]] Rng fork(std::uint64_t tag) const noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
  std::uint64_t seed_ = 0;
};

/// Discrete sampler over explicit nonnegative weights (CDF inversion).
class DiscreteSampler {
 public:
  explicit DiscreteSampler(std::span<const double> weights);

  /// Index drawn proportionally to its weight.
  std::size_t sample(Rng& rng) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }
  /// Normalized probability of index i.
  [[nodiscard]] double probability(std::size_t i) const noexcept;

 private:
  std::vector<double> cdf_;  // cumulative, last element == total
};

/// Zipf(s) sampler over ranks 1..n (rank 1 most popular).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  /// 0-based rank sample (0 = hottest).
  std::size_t sample(Rng& rng) const noexcept { return inner_.sample(rng); }
  [[nodiscard]] std::size_t size() const noexcept { return inner_.size(); }
  [[nodiscard]] double probability(std::size_t rank0) const noexcept {
    return inner_.probability(rank0);
  }

 private:
  static std::vector<double> make_weights(std::size_t n, double exponent);
  DiscreteSampler inner_;
};

}  // namespace rfh
