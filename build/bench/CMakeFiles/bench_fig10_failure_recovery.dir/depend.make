# Empty dependencies file for bench_fig10_failure_recovery.
# This may be replaced when dependencies are built.
