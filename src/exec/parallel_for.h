// Deterministic sharded fan-out over an index range.
//
// parallel_for_shards splits [0, n) into `shards` contiguous ranges —
// boundaries are a pure function of (n, shards), never of the pool or of
// timing — and runs the body once per shard. With a multi-worker pool the
// shards execute concurrently; with a null or inline pool they run
// serially in shard-index order. Either way the call returns only after
// every shard has finished, and the first exception (in shard order)
// rethrows on the caller.
//
// Byte-identity discipline (DESIGN.md §11, §15): bodies write only to
// shard-private state (slots indexed by shard id, or ranges disjoint by
// construction); callers merge those outputs in shard-index order after
// the join. Because the concatenation of shard ranges in shard order is
// exactly the serial iteration order, a merge that replays per-shard
// output in shard order reproduces the serial result bit-for-bit — for
// every shard count and every interleaving.
//
// Cooperative waiting: the join uses ThreadPool::wait, which executes
// pending pool tasks on the waiting thread. A parallel_for issued from
// inside a sweep cell (itself a pool task) therefore helps drain the pool
// instead of deadlocking it, and never spawns threads of its own.
#pragma once

#include <algorithm>
#include <cstddef>
#include <exception>
#include <future>
#include <vector>

#include "exec/thread_pool.h"

namespace rfh {

struct IndexRange {
  std::size_t begin = 0;
  std::size_t end = 0;  ///< exclusive
};

/// Contiguous range owned by `shard` when [0, n) is split into `shards`
/// near-equal parts; the first n % shards parts are one element longer.
[[nodiscard]] constexpr IndexRange shard_range(std::size_t n, unsigned shards,
                                               unsigned shard) noexcept {
  const std::size_t k = shards == 0 ? 1 : shards;
  const std::size_t q = n / k;
  const std::size_t r = n % k;
  const std::size_t s = shard;
  const std::size_t begin = s * q + std::min<std::size_t>(s, r);
  return {begin, begin + q + (s < r ? 1 : 0)};
}

/// Shard count for fanning `n` items across `pool`: one shard per worker
/// (null or inline pool -> 1), capped so every shard keeps at least
/// `min_grain` items. Callers that need shard-count *stability* across
/// machines should pass an explicit count to parallel_for_shards instead;
/// the engine does not need to — its merges are shard-count invariant.
[[nodiscard]] unsigned shard_count_for(const ThreadPool* pool, std::size_t n,
                                       std::size_t min_grain = 1) noexcept;

/// Run body(shard, range) for every shard of [0, n). Blocks until all
/// shards complete, even when one throws (the first shard's exception, in
/// shard order, is rethrown after the join — no task can outlive `body`).
template <typename Body>
void parallel_for_shards(ThreadPool* pool, std::size_t n, unsigned shards,
                         Body&& body) {
  if (n == 0) return;
  if (shards == 0) shards = 1;
  shards = static_cast<unsigned>(
      std::min<std::size_t>(shards, n));  // no empty shards
  if (pool == nullptr || pool->size() == 0 || shards == 1) {
    for (unsigned s = 0; s < shards; ++s) {
      body(s, shard_range(n, shards, s));
    }
    return;
  }
  std::vector<std::future<void>> pending;
  pending.reserve(shards);
  for (unsigned s = 0; s < shards; ++s) {
    const IndexRange range = shard_range(n, shards, s);
    pending.push_back(pool->submit([s, range, &body] { body(s, range); }));
  }
  std::exception_ptr first;
  for (std::future<void>& f : pending) {
    try {
      pool->wait(f);
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

/// Convenience wrapper: body(i) per index, shard count picked from the
/// pool. Only for bodies whose writes are disjoint per index.
template <typename Body>
void parallel_for(ThreadPool* pool, std::size_t n, Body&& body) {
  parallel_for_shards(pool, n, shard_count_for(pool, n),
                      [&body](unsigned /*shard*/, IndexRange range) {
                        for (std::size_t i = range.begin; i < range.end; ++i) {
                          body(i);
                        }
                      });
}

}  // namespace rfh
