// Per-epoch metric snapshots covering every series the paper plots.
#pragma once

#include <vector>

#include "common/units.h"
#include "sim/engine.h"

namespace rfh {

struct EpochMetrics {
  Epoch epoch = 0;

  // Fig. 3: average replica utilization rate (non-primary copies).
  double utilization = 0.0;
  // Fig. 4: copy census (primaries included, as Dynamo counts N copies).
  std::uint32_t total_replicas = 0;
  double avg_replicas_per_partition = 0.0;
  // Fig. 5: cumulative replication cost and per-copy average.
  double replication_cost_total = 0.0;
  double replication_cost_avg = 0.0;
  // Fig. 6: cumulative migration times and per-replica average.
  std::uint32_t migrations_total = 0;
  double migrations_avg = 0.0;
  // Fig. 7: cumulative migration cost and per-replica average.
  double migration_cost_total = 0.0;
  double migration_cost_avg = 0.0;
  // Fig. 8: load imbalance (Eq. 25) per epoch.
  double load_imbalance = 0.0;
  // Fig. 9: mean lookup path length per epoch.
  double path_length = 0.0;

  // Response latency (extension; the paper's motivation cites Amazon's
  // 300 ms / 99.9 % SLA but never plots latency directly).
  double latency_mean_ms = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_p999_ms = 0.0;
  /// Fraction of queries answered within SimConfig::sla_target_ms.
  double sla_attainment = 0.0;

  // Geographic diversity (Section II-A availability levels): mean max
  // pairwise level over partitions, and the fraction that would survive
  // the loss of any single datacenter.
  double diversity_level = 0.0;
  double dc_survivable_fraction = 0.0;

  // Eventual-consistency metrics (extension; filled by the runner when
  // Scenario::write_fraction > 0, otherwise zero).
  double mean_replica_lag = 0.0;
  double stale_read_fraction = 0.0;
  double lost_writes_total = 0.0;

  // Extras (not plotted by the paper but useful for analysis/tests).
  double unserved_fraction = 0.0;
  std::uint32_t replications_this_epoch = 0;
  std::uint32_t migrations_this_epoch = 0;
  std::uint32_t suicides_this_epoch = 0;

  // Engine validation pressure: how many policy actions were refused this
  // epoch, broken down by the binding constraint (obs::DropReason order).
  std::uint32_t dropped_this_epoch = 0;
  std::uint32_t dropped_bandwidth = 0;
  std::uint32_t dropped_storage_cap = 0;
  std::uint32_t dropped_node_cap = 0;
  std::uint32_t dropped_dead_target = 0;
  std::uint32_t dropped_invalid = 0;
  std::uint32_t dropped_zone_diversity = 0;
  std::uint32_t dropped_unknown = 0;
  /// Availability-floor repairs refused on a node cap this epoch (the
  /// starvation signal mirrored by rfh_repairs_starved_total).
  std::uint32_t repairs_starved = 0;

  // Streaming-load layer (src/stream/; filled by the runner when the
  // scenario's workload is kStream, otherwise zero). Arrival accounting:
  // stream_arrivals == stream_served + stream_blocked + stream_dropped.
  double stream_arrivals = 0.0;
  double stream_served = 0.0;
  double stream_blocked = 0.0;
  double stream_dropped = 0.0;
  std::uint32_t stream_max_queue_depth = 0;
  double stream_wait_mean_ms = 0.0;
  double stream_p50_ms = 0.0;
  double stream_p99_ms = 0.0;
  double stream_p999_ms = 0.0;
};

class MetricsCollector {
 public:
  /// Snapshot the metrics for the epoch `report` describes; appends to
  /// the stored series and returns the snapshot.
  EpochMetrics collect(const Simulation& sim, const EpochReport& report);

  [[nodiscard]] const std::vector<EpochMetrics>& series() const noexcept {
    return series_;
  }
  void clear() noexcept { series_.clear(); }

  /// Mean of a field over the last `window` collected epochs.
  [[nodiscard]] double tail_mean(double EpochMetrics::* field,
                                 std::size_t window) const;

 private:
  std::vector<EpochMetrics> series_;
};

}  // namespace rfh
