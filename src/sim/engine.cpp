#include "sim/engine.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "common/log.h"
#include "exec/parallel_for.h"

namespace rfh {

Simulation::Simulation(World world, const SimConfig& config,
                       std::unique_ptr<WorkloadGenerator> workload,
                       std::unique_ptr<ReplicationPolicy> policy)
    : world_(std::move(world)),
      config_(config),
      graph_(world_.topology.datacenter_count(), world_.links),
      paths_(graph_),
      router_(world_.topology, paths_),
      cluster_(world_.topology, config_),
      stats_(config_.partitions, world_.topology.server_count(),
             world_.topology.datacenter_count(), config_.alpha,
             config_.alpha_weights_history),
      traffic_(config_.partitions, world_.topology.server_count(),
               world_.topology.datacenter_count()),
      workload_(std::move(workload)),
      policy_(std::move(policy)),
      rng_workload_(Rng(config_.seed).fork(kWorkloadStreamTag)),
      rng_policy_(Rng(config_.seed).fork(kPolicyStreamTag)),
      rng_failures_(Rng(config_.seed).fork(kFailureStreamTag)),
      partition_cause_(config_.partitions, 0),
      shift_baseline_(config_.partitions, -1.0),
      stripe_lost_(config_.partitions, 0),
      replication_bytes_(world_.topology.server_count(), 0),
      migration_bytes_(world_.topology.server_count(), 0) {
  RFH_ASSERT(workload_ != nullptr);
  RFH_ASSERT(policy_ != nullptr);
  RFH_ASSERT_MSG(graph_.connected(), "datacenter graph must be connected");
  router_.set_memo_enabled(config_.route_memo);
  // Pre-size the memo's outer table so concurrent propagate shards never
  // grow it (rows themselves are allocated by the owning shard).
  router_.reserve_memo(config_.partitions);
  seed_primaries();
}

void Simulation::set_jobs(unsigned jobs) {
  const unsigned resolved = jobs == 0 ? ThreadPool::default_jobs() : jobs;
  jobs_ = resolved;
  if (resolved <= 1) {
    pool_.reset();
    return;
  }
  pool_ = std::make_unique<ThreadPool>(resolved);
}

void Simulation::seed_primaries() {
  for (std::uint32_t p = 0; p < config_.partitions; ++p) {
    const PartitionId pid{p};
    // Ring ownership decides the home, but "a physical node hosts an
    // amount of virtual nodes within its capacity limit": walk the
    // preference order past saturated servers. The walk streams over the
    // ring — it visits the same servers in the same order a materialized
    // preference_list would, stopping at the first that can accept.
    ServerId home;
    ServerId first;
    cluster_.ring().for_each_preference(
        HashRing::partition_key(pid), [&](ServerId candidate) {
          if (!first.valid()) first = candidate;
          if (cluster_.can_accept(candidate, pid)) {
            home = candidate;
            return false;
          }
          return true;
        });
    if (!home.valid()) home = first;  // everyone saturated: force the owner
    cluster_.add_replica(pid, home, /*primary=*/true);
  }
}

double Simulation::transfer_cost(DatacenterId from, DatacenterId to,
                                 Bytes bytes,
                                 BytesPerEpoch bandwidth) const {
  // Eq. 1: c = d * f * s / b. Distance in km (floored at 1 km so an
  // intra-datacenter copy has a small nonzero cost), size/bandwidth as a
  // dimensionless transfer fraction of one epoch's budget.
  const double d = std::max(world_.topology.distance_km(from, to), 1.0);
  const double s_over_b =
      static_cast<double>(bytes) / static_cast<double>(bandwidth);
  return d * config_.failure_rate * s_over_b;
}

void Simulation::PropagateShard::begin_epoch() {
  samples.clear();
  work.clear();
  segments.clear();
  cache_valid = false;
  host_cache_used = 0;
}

std::span<const ServerId> Simulation::PropagateShard::hosts(
    const ClusterState& cluster, PartitionId p, DatacenterId dc) {
  if (!cache_valid || cached_partition != p.value()) {
    cached_partition = p.value();
    cache_valid = true;
    host_cache_used = 0;
  }
  for (std::size_t i = 0; i < host_cache_used; ++i) {
    if (host_cache[i].dc == dc.value()) return host_cache[i].hosts;
  }
  if (host_cache_used == host_cache.size()) host_cache.emplace_back();
  HostsEntry& entry = host_cache[host_cache_used++];
  entry.dc = dc.value();
  cluster.hosts_in_dc_into(p, dc, entry.hosts);
  return entry.hosts;
}

void Simulation::propagate_flow(
    const QueryFlow& flow, std::span<const std::vector<ServerId>> live_by_dc,
    PropagateShard& shard) {
  const ServerId holder = cluster_.primary_of(flow.partition);
  if (!holder.valid()) {
    // Data currently unavailable (lost primary not yet reseeded).
    traffic_.unserved_mut(flow.partition) += flow.queries;
    if (flow_log_ != nullptr) {
      // No latency sample in batch mode either: -1 marks "lost".
      shard.segments.push_back(FlowSegment{flow.partition, flow.requester,
                                           ServerId::invalid(), flow.requester,
                                           flow.queries, -1.0});
    }
    return;
  }

  // k-of-n reconstruction (EC mode): a read fans out to k fragments, so
  // one logical query costs k fragment-reads of capacity; with fewer than
  // k live fragments the partition cannot be reconstructed at all. kf is
  // exactly 1.0 in replica mode, where every scale below is an FP no-op.
  const double kf = static_cast<double>(config_.reconstruction_threshold());
  if (kf > 1.0 && cluster_.replica_count(flow.partition) < config_.ec_k) {
    traffic_.unserved_mut(flow.partition) += flow.queries;
    if (flow_log_ != nullptr) {
      shard.segments.push_back(FlowSegment{flow.partition, flow.requester,
                                           ServerId::invalid(), flow.requester,
                                           flow.queries, -1.0});
    }
    return;
  }

  const Route& route = router_.route(flow.partition, flow.requester, holder,
                                     live_by_dc, shard.route_ctx);
  double residual = flow.queries * kf;
  for (const RouteStage& stage : route.stages) {
    if (residual <= 0.0) break;
    // The relay sees (and forwards) the residual reaching this DC —
    // this is Eq. 2's tr_ijkt for the forwarding node.
    traffic_.node_traffic_mut(flow.partition, stage.relay) += residual;
    shard.work.push_back(WorkDelta{stage.relay.value(), residual});

    // Local absorption: every copy hosted in this datacenter takes up
    // to its remaining per-replica capacity, non-primaries first, in
    // deterministic order (Eqs. 2-8's sequential capacity subtraction).
    for (const ServerId host : shard.hosts(cluster_, flow.partition,
                                           stage.dc)) {
      if (residual <= 0.0) break;
      const double cap =
          world_.topology.server(host).spec.per_replica_capacity;
      const double already = traffic_.served(flow.partition, host);
      const double take = std::min(residual, std::max(0.0, cap - already));
      if (take <= 0.0) continue;
      traffic_.served_mut(flow.partition, host) += take;
      if (host != stage.relay) {
        traffic_.node_traffic_mut(flow.partition, host) += take;
        shard.work.push_back(WorkDelta{host.value(), take});
      }
      shard.samples.push_back(PathDelta{
          take / kf, static_cast<double>(stage.hops_at_entry),
          stage.latency_ms});
      if (flow_log_ != nullptr) {
        shard.segments.push_back(FlowSegment{flow.partition, flow.requester,
                                             host, stage.dc, take / kf,
                                             stage.latency_ms});
      }
      residual -= take;
    }
  }
  if (residual > 0.0) {
    // Demand beyond even the primary's capacity: blocked this epoch.
    traffic_.unserved_mut(flow.partition) += residual / kf;
    shard.samples.push_back(
        PathDelta{residual / kf, static_cast<double>(route.total_hops),
                  route.total_latency_ms + config_.blocked_penalty_ms});
    if (flow_log_ != nullptr) {
      shard.segments.push_back(FlowSegment{
          flow.partition, flow.requester, ServerId::invalid(), flow.requester,
          residual / kf, route.total_latency_ms + config_.blocked_penalty_ms});
    }
  }
}

void Simulation::propagate(const QueryBatch& batch) {
  traffic_.reset();
  if (flow_log_ != nullptr) flow_log_->clear();
  const auto live_by_dc = cluster_.live_by_dc();

  // Serial pre-pass, in flow order: the query tallies (one of which —
  // total_queries — is a single scalar whose FP association order must
  // match the serial engine exactly), the count of consecutive
  // same-partition runs, and the partition-major check.
  epoch_arena_.reset();
  std::size_t n_runs = 0;
  bool partition_major = true;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const QueryFlow& flow = batch[i];
    traffic_.add_total_queries(flow.queries);
    traffic_.partition_queries_mut(flow.partition) += flow.queries;
    traffic_.requester_queries_mut(flow.partition, flow.requester) +=
        flow.queries;
    if (i == 0 || flow.partition != batch[i - 1].partition) ++n_runs;
    if (i > 0 && flow.partition.value() < batch[i - 1].partition.value()) {
      partition_major = false;
    }
  }
  if (batch.empty()) return;

  const std::span<FlowRun> runs = epoch_arena_.alloc<FlowRun>(n_runs);
  std::size_t r = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (i == 0 || batch[i].partition != batch[i - 1].partition) {
      runs[r++] = FlowRun{batch[i].partition.value(),
                          static_cast<std::uint32_t>(i),
                          static_cast<std::uint32_t>(i + 1)};
    } else {
      runs[r - 1].end = static_cast<std::uint32_t>(i + 1);
    }
  }

  // Fan the runs across shards only for partition-major batches (every
  // built-in generator emits them sorted), where each partition's flows
  // land in exactly one run — so a shard's writes to partition-indexed
  // traffic state and memo rows are private to it. Arbitrary test batches
  // take the same code path with a single shard.
  const unsigned shards =
      partition_major ? shard_count_for(pool_.get(), n_runs, /*min_grain=*/1)
                      : 1;
  if (shards_.size() < shards) shards_.resize(shards);
  for (unsigned s = 0; s < shards; ++s) shards_[s].begin_epoch();

  parallel_for_shards(
      pool_.get(), n_runs, shards, [&](unsigned s, IndexRange range) {
        PropagateShard& shard = shards_[s];
        for (std::size_t ri = range.begin; ri < range.end; ++ri) {
          const FlowRun& run = runs[ri];
          for (std::uint32_t f = run.begin; f < run.end; ++f) {
            propagate_flow(batch[f], live_by_dc, shard);
          }
        }
      });

  // Shard-order merge: shard ranges concatenate to the serial iteration
  // order, so replaying each shard's deferred writes in shard-index order
  // reproduces the serial write sequence — and therefore the global
  // accumulators, histogram, flow log and router counters — bit for bit,
  // for every shard count and jobs value.
  for (unsigned s = 0; s < shards; ++s) {
    PropagateShard& shard = shards_[s];
    for (const PathDelta& d : shard.samples) {
      traffic_.add_path_sample(d.queries, d.hops);
      traffic_.add_latency(d.queries, d.ms);
    }
    for (const WorkDelta& d : shard.work) {
      traffic_.server_work_mut(ServerId{d.server}) += d.amount;
    }
    if (flow_log_ != nullptr) {
      for (const FlowSegment& segment : shard.segments) {
        flow_log_->add(segment);
      }
    }
    router_.flush_counts(shard.route_ctx);
  }
}

namespace {

/// Why can_accept(target, p) said no — mirrors its checks in order so the
/// dropped action's trace event names the binding constraint. Every check
/// is evaluated for real (including the Eq. 19 phi limit), so a new
/// rejection path in can_accept that this mirror misses shows up as
/// kUnknown instead of being mislabeled kStorageCap.
DropReason classify_rejected_target(const ClusterState& cluster,
                                    const Topology& topology,
                                    const SimConfig& config, ServerId target,
                                    PartitionId p) {
  if (!cluster.alive(target)) return DropReason::kDeadTarget;
  if (cluster.has_replica(p, target)) return DropReason::kInvalid;
  const ServerSpec& spec = topology.server(target).spec;
  if (cluster.copies_on(target) >= spec.max_vnodes) {
    return DropReason::kNodeCap;
  }
  if (config.redundancy == RedundancyMode::kErasure) {
    const DatacenterId dc = topology.server(target).datacenter;
    std::uint32_t in_dc = 0;
    for (const Replica& r : cluster.replicas_of(p)) {
      if (topology.server(r.server).datacenter == dc) ++in_dc;
    }
    if (in_dc >= config.ec_m) return DropReason::kZoneDiversity;
  }
  const auto projected =
      static_cast<double>(cluster.storage_used(target) + config.unit_size());
  if (projected >
      config.storage_limit * static_cast<double>(spec.storage_capacity)) {
    return DropReason::kStorageCap;  // the phi limit (Eq. 19)
  }
  RFH_ASSERT_MSG(false, "can_accept rejected for a reason classify missed");
  return DropReason::kUnknown;
}

}  // namespace

void Simulation::apply_actions(const Actions& actions, EpochReport& report) {
  std::fill(replication_bytes_.begin(), replication_bytes_.end(), Bytes{0});
  std::fill(migration_bytes_.begin(), migration_bytes_.end(), Bytes{0});

  // Causal plumbing. All of it is dead weight when no sink is installed:
  // `traced` is the single branch the disabled path pays, and every
  // emit_* below returns 0 immediately in that case.
  const bool traced = events_.enabled();
  const auto cause_of = [&](PartitionId p) -> std::uint64_t {
    const std::uint64_t cause =
        p.valid() && p.value() < partition_cause_.size()
            ? partition_cause_[p.value()]
            : 0;
    return cause != 0 ? cause : events_.ambient_cause();
  };
  const auto remember = [&](PartitionId p, std::uint64_t id) {
    if (id != 0 && p.valid() && p.value() < partition_cause_.size()) {
      partition_cause_[p.value()] = id;
    }
  };
  // RuleFired opens the validation of one explained action; the outcome
  // (applied or dropped) is parented to it so the chain reads
  // cause -> inequality -> consequence.
  const auto rule_fired = [&](PartitionId p,
                              const DecisionExplanation& why) -> std::uint64_t {
    if (!traced || why.rule == DecisionRule::kNone) return 0;
    return events_.emit_caused(cause_of(p),
                               RuleFired{epoch_, p, why.rule, why.observed,
                                         why.threshold, why.q_bar});
  };

  const auto drop = [&](ActionKind kind, PartitionId p, ServerId target,
                        DropReason reason, std::uint64_t parent) {
    ++report.dropped_actions;
    ++report.dropped_by_reason[static_cast<std::size_t>(reason)];
    events_.emit_caused(parent != 0 ? parent : cause_of(p),
                        ActionDropped{epoch_, p, kind, reason, target});
  };

  for (const ReplicateAction& a : actions.replications) {
    const std::uint64_t rule_id = rule_fired(a.partition, a.why);
    const ServerId src = cluster_.primary_of(a.partition);
    if (!src.valid() || !a.target.valid()) {
      drop(ActionKind::kReplicate, a.partition, a.target,
           !a.target.valid() ? DropReason::kDeadTarget : DropReason::kInvalid,
           rule_id);
      continue;
    }
    if (!cluster_.can_accept(a.target, a.partition)) {
      const DropReason reason = classify_rejected_target(
          cluster_, world_.topology, config_, a.target, a.partition);
      // A node-cap drop of an availability-floor action is a *repair*
      // the capacity layer refused — the starvation the default vnode
      // cap silently caused at scale (see kStarvedRepairWarnThreshold).
      if (reason == DropReason::kNodeCap &&
          a.why.rule == DecisionRule::kAvailabilityFloor) {
        ++report.repairs_starved;
      }
      drop(ActionKind::kReplicate, a.partition, a.target, reason, rule_id);
      continue;
    }
    if (cluster_.replica_count(a.partition) >=
        config_.max_replicas_per_partition) {
      if (a.why.rule == DecisionRule::kAvailabilityFloor) {
        ++report.repairs_starved;
      }
      drop(ActionKind::kReplicate, a.partition, a.target, DropReason::kNodeCap,
           rule_id);
      continue;
    }
    const ServerSpec& spec = world_.topology.server(src).spec;
    if (replication_bytes_[src.value()] + config_.unit_size() >
        spec.replication_bandwidth) {
      // Source out of replication bandwidth this epoch.
      drop(ActionKind::kReplicate, a.partition, a.target,
           DropReason::kBandwidth, rule_id);
      continue;
    }
    replication_bytes_[src.value()] += config_.unit_size();
    cluster_.add_replica(a.partition, a.target);
    router_.invalidate_routes_for(a.partition);
    const double cost = transfer_cost(
        world_.topology.server(src).datacenter,
        world_.topology.server(a.target).datacenter, config_.unit_size(),
        spec.replication_bandwidth);
    report.replications += 1;
    report.replication_cost += cost;
    remember(a.partition,
             events_.emit_caused(
                 rule_id != 0 ? rule_id : cause_of(a.partition),
                 ReplicaAdded{epoch_, a.partition, src, a.target, cost,
                              a.why}));
    if (config_.redundancy == RedundancyMode::kErasure &&
        stripe_lost_[a.partition.value()] != 0 &&
        cluster_.replica_count(a.partition) >= config_.ec_k) {
      stripe_lost_[a.partition.value()] = 0;
      remember(a.partition,
               events_.emit_caused(cause_of(a.partition),
                                   StripeReconstructed{epoch_, a.partition}));
    }
  }

  for (const MigrateAction& a : actions.migrations) {
    const std::uint64_t rule_id = rule_fired(a.partition, a.why);
    if (!a.from.valid() || !a.to.valid() ||
        !cluster_.has_replica(a.partition, a.from) ||
        cluster_.primary_of(a.partition) == a.from) {
      drop(ActionKind::kMigrate, a.partition, a.to, DropReason::kInvalid,
           rule_id);
      continue;
    }
    if (!cluster_.can_accept(a.to, a.partition)) {
      drop(ActionKind::kMigrate, a.partition, a.to,
           classify_rejected_target(cluster_, world_.topology, config_, a.to,
                                    a.partition),
           rule_id);
      continue;
    }
    const ServerSpec& spec = world_.topology.server(a.from).spec;
    if (migration_bytes_[a.from.value()] + config_.unit_size() >
        spec.migration_bandwidth) {
      drop(ActionKind::kMigrate, a.partition, a.to, DropReason::kBandwidth,
           rule_id);
      continue;
    }
    migration_bytes_[a.from.value()] += config_.unit_size();
    cluster_.remove_replica(a.partition, a.from);
    cluster_.add_replica(a.partition, a.to);
    router_.invalidate_routes_for(a.partition);
    const double cost = transfer_cost(
        world_.topology.server(a.from).datacenter,
        world_.topology.server(a.to).datacenter, config_.unit_size(),
        spec.migration_bandwidth);
    report.migrations += 1;
    report.migration_cost += cost;
    remember(a.partition,
             events_.emit_caused(
                 rule_id != 0 ? rule_id : cause_of(a.partition),
                 MigrationExecuted{epoch_, a.partition, a.from, a.to, cost,
                                   a.why}));
  }

  for (const SuicideAction& a : actions.suicides) {
    const std::uint64_t rule_id = rule_fired(a.partition, a.why);
    if (!a.server.valid() || !cluster_.has_replica(a.partition, a.server) ||
        cluster_.primary_of(a.partition) == a.server ||
        (config_.redundancy == RedundancyMode::kErasure &&
         cluster_.replica_count(a.partition) <= config_.ec_k)) {
      // The EC guard keeps a stripe from suiciding below k live
      // fragments — a self-inflicted reconstruction failure.
      drop(ActionKind::kSuicide, a.partition, a.server, DropReason::kInvalid,
           rule_id);
      continue;
    }
    cluster_.remove_replica(a.partition, a.server);
    router_.invalidate_routes_for(a.partition);
    report.suicides += 1;
    remember(a.partition,
             events_.emit_caused(rule_id != 0 ? rule_id : cause_of(a.partition),
                                 Suicide{epoch_, a.partition, a.server,
                                         a.why}));
  }

  if (report.repairs_starved > kStarvedRepairWarnThreshold) {
    log(LogLevel::kWarn,
        "epoch %u: %u availability-floor repairs starved on node caps "
        "(raise max_vnodes / partitions_hint)",
        epoch_, report.repairs_starved);
  }
}

EpochReport Simulation::step() {
  // The profiler's epoch window spans from here until the next
  // begin_epoch (or finalize), so metric collection performed by the
  // caller between steps lands inside this epoch's window.
  if (profiler_ != nullptr) profiler_->begin_epoch(epoch_);

  EpochReport report;
  report.epoch = epoch_;

  QueryBatch batch;
  {
    const ScopedTimer timer(profiler_, Phase::kWorkloadGen);
    batch = workload_->generate(epoch_, rng_workload_);
    if (traffic_multiplier_ != 1.0) {
      for (QueryFlow& flow : batch) flow.queries *= traffic_multiplier_;
    }
  }
  {
    const ScopedTimer timer(profiler_, Phase::kRouting);
    propagate(batch);
  }
  {
    const ScopedTimer timer(profiler_, Phase::kStatsUpdate);
    stats_.update(traffic_, pool_.get());
    if (events_.enabled()) emit_traffic_shifts();

    report.total_queries = traffic_.total_queries();
    double unserved = 0.0;
    for (std::uint32_t p = 0; p < config_.partitions; ++p) {
      unserved += traffic_.unserved(PartitionId{p});
    }
    report.unserved_queries = unserved;
    report.mean_path_length = traffic_.mean_path_length();

    events_.emit(QueryRoutedSummary{epoch_, report.total_queries,
                                    report.unserved_queries,
                                    report.mean_path_length});
  }

  Actions actions;
  {
    const ScopedTimer timer(profiler_, Phase::kPolicyDecide);
    PolicyContext ctx{world_.topology, paths_,      cluster_,
                      stats_,          traffic_,    config_,
                      epoch_,          rng_policy_, pool_.get()};
    actions = policy_->decide(ctx);
  }
  {
    const ScopedTimer timer(profiler_, Phase::kActionApply);
    apply_actions(actions, report);

    report.total_replicas = cluster_.total_replicas();

    cum_replication_cost_ += report.replication_cost;
    cum_migration_cost_ += report.migration_cost;
    cum_migrations_ += report.migrations;
    cum_replications_ += report.replications;

    events_.emit(EpochCompleted{
        epoch_, report.total_queries, report.unserved_queries,
        report.replications, report.migrations, report.suicides,
        report.dropped_actions, report.total_replicas,
        report.replication_cost, report.migration_cost});

    if (telemetry_ != nullptr) update_telemetry(report);
  }

  ++epoch_;
  return report;
}

void Simulation::set_telemetry(MetricRegistry* registry) {
  telemetry_ = registry;
  router_.set_telemetry(registry);
  policy_->set_telemetry(registry);
  if (registry == nullptr) {
    tel_ = TelemetryHandles{};
    return;
  }
  MetricRegistry& reg = *registry;
  tel_.queries = &reg.counter("rfh_queries_total", {},
                              "Queries offered to the cluster");
  tel_.unserved = &reg.counter("rfh_unserved_queries_total", {},
                               "Queries blocked beyond every capacity");
  for (std::size_t k = 0; k < tel_.applied.size(); ++k) {
    tel_.applied[k] = &reg.counter(
        "rfh_actions_applied_total",
        {{"kind", action_kind_name(static_cast<ActionKind>(k))}},
        "Policy actions the engine validated and applied");
  }
  for (std::size_t r = 0; r < kDropReasonCount; ++r) {
    tel_.dropped[r] = &reg.counter(
        "rfh_actions_dropped_total",
        {{"reason", drop_reason_name(static_cast<DropReason>(r))}},
        "Policy actions the engine refused during validation");
  }
  tel_.replication_cost = &reg.counter(
      "rfh_replication_cost_total", {}, "Cumulative Eq. 1 replication cost");
  tel_.migration_cost = &reg.counter("rfh_migration_cost_total", {},
                                     "Cumulative Eq. 1 migration cost");
  tel_.epochs = &reg.counter("rfh_epochs_total", {}, "Epochs simulated");
  tel_.data_losses = &reg.counter(
      "rfh_data_losses_total", {},
      "Partitions that lost every copy and were reseeded empty");
  tel_.repairs_starved = &reg.counter(
      "rfh_repairs_starved_total", {},
      "Availability-floor repairs dropped on a node cap");
  tel_.replicas =
      &reg.gauge("rfh_replicas", {}, "Copy census, primaries included");
  tel_.live_servers = &reg.gauge("rfh_live_servers", {}, "Live servers");
  tel_.epoch = &reg.gauge("rfh_epoch", {}, "Current epoch");
}

void Simulation::update_telemetry(const EpochReport& report) {
  tel_.queries->inc(report.total_queries);
  tel_.unserved->inc(report.unserved_queries);
  tel_.applied[static_cast<std::size_t>(ActionKind::kReplicate)]->inc(
      static_cast<double>(report.replications));
  tel_.applied[static_cast<std::size_t>(ActionKind::kMigrate)]->inc(
      static_cast<double>(report.migrations));
  tel_.applied[static_cast<std::size_t>(ActionKind::kSuicide)]->inc(
      static_cast<double>(report.suicides));
  for (std::size_t r = 0; r < kDropReasonCount; ++r) {
    tel_.dropped[r]->inc(static_cast<double>(report.dropped_by_reason[r]));
  }
  tel_.repairs_starved->inc(static_cast<double>(report.repairs_starved));
  tel_.replication_cost->inc(report.replication_cost);
  tel_.migration_cost->inc(report.migration_cost);
  tel_.epochs->inc(1.0);
  tel_.replicas->set(static_cast<double>(report.total_replicas));
  tel_.live_servers->set(
      static_cast<double>(cluster_.live_server_count()));
  tel_.epoch->set(static_cast<double>(report.epoch));
}

void Simulation::run(Epoch epochs) {
  for (Epoch e = 0; e < epochs; ++e) step();
}

void Simulation::emit_traffic_shifts() {
  for (std::uint32_t p = 0; p < config_.partitions; ++p) {
    const double q = stats_.avg_query(PartitionId{p});
    double& baseline = shift_baseline_[p];
    if (baseline < 0.0) {
      baseline = q;  // first observation establishes the baseline
      continue;
    }
    const double scale = std::max(baseline, 1e-9);
    if (std::abs(q - baseline) < kTrafficShiftThreshold * scale) continue;
    // A sharp move is almost always the echo of the latest disturbance;
    // chain to it so forensic queries connect demand shifts to faults.
    const std::uint64_t id = events_.emit_caused(
        events_.ambient_cause(),
        TrafficShift{epoch_, PartitionId{p}, baseline, q});
    if (id != 0) partition_cause_[p] = id;
    baseline = q;
  }
}

void Simulation::handle_lost_copies(std::span<const ClusterState::LostCopy> lost,
                                    std::span<const std::uint64_t> causes) {
  for (std::size_t i = 0; i < lost.size(); ++i) {
    const ClusterState::LostCopy& copy = lost[i];
    const std::uint64_t cause = i < causes.size() ? causes[i] : 0;
    if (!copy.was_primary) continue;
    // Promote the surviving replica with the highest smoothed traffic.
    ServerId best;
    double best_traffic = -1.0;
    for (const Replica& r : cluster_.replicas_of(copy.partition)) {
      const double tr = stats_.node_traffic(copy.partition, r.server);
      if (!best.valid() || tr > best_traffic ||
          (tr == best_traffic && r.server < best)) {
        best = r.server;
        best_traffic = tr;
      }
    }
    if (best.valid()) {
      cluster_.set_primary(copy.partition, best);
      last_promotions_.push_back(Promotion{copy.partition, best, false});
      const std::uint64_t id = events_.emit_caused(
          cause, PrimaryPromoted{epoch_, copy.partition, best});
      if (id != 0) partition_cause_[copy.partition.value()] = id;
      continue;
    }
    // No surviving copy: the data is lost. Re-seed an empty primary at the
    // ring successor so the keyspace stays owned.
    ++data_losses_;
    if (telemetry_ != nullptr) tel_.data_losses->inc(1.0);
    log(LogLevel::kWarn, "partition %u lost all copies; reseeding",
        copy.partition.value());
    ServerId home;
    ServerId first;
    cluster_.ring().for_each_preference(
        HashRing::partition_key(copy.partition), [&](ServerId candidate) {
          if (!first.valid()) first = candidate;
          if (cluster_.can_accept(candidate, copy.partition)) {
            home = candidate;
            return false;
          }
          return true;
        });
    if (!home.valid()) home = first;
    if (home.valid()) {
      cluster_.add_replica(copy.partition, home, /*primary=*/true);
      last_promotions_.push_back(Promotion{copy.partition, home, true});
      // In EC mode a reseeded stripe starts below k fragments; mark it
      // lost-but-already-counted so the stripe scan doesn't double-count.
      if (config_.redundancy == RedundancyMode::kErasure) {
        stripe_lost_[copy.partition.value()] = 1;
      }
      const std::uint64_t id =
          events_.emit_caused(cause, Reseeded{epoch_, copy.partition, home});
      if (id != 0) partition_cause_[copy.partition.value()] = id;
    }
  }
}

void Simulation::fail_servers(std::span<const ServerId> servers) {
  last_promotions_.clear();
  std::vector<ClusterState::LostCopy> all_lost;
  std::vector<std::uint64_t> lost_causes;  // aligned with all_lost
  std::vector<ServerId> victims;
  victims.reserve(servers.size());
  std::vector<bool> doomed(world_.topology.server_count(), false);
  for (const ServerId s : servers) {
    if (!cluster_.alive(s) || doomed[s.value()]) continue;
    RFH_ASSERT_MSG(cluster_.live_server_count() >
                       static_cast<std::uint32_t>(victims.size()) + 1,
                   "refusing to kill the last live server");
    doomed[s.value()] = true;
    victims.push_back(s);
  }
  cluster_.kill_servers(
      victims, [&](ServerId s, std::span<const ClusterState::LostCopy> lost) {
        // Drop the victim's smoothed traffic so Eq. 17's mean (over
        // *live* servers) no longer carries the ghost of its decaying
        // tr_bar — before the promotion pass below, which reads
        // survivors' stats only.
        stats_.clear_server(s);
        const std::uint64_t failure_id = events_.emit(ServerFailed{epoch_, s});
        for (const ClusterState::LostCopy& copy : lost) {
          all_lost.push_back(copy);
          lost_causes.push_back(failure_id);
          // The failure is now the partition's latest causal antecedent —
          // the promotion/reseed pass below may refine it further.
          if (failure_id != 0 &&
              copy.partition.value() < partition_cause_.size()) {
            partition_cause_[copy.partition.value()] = failure_id;
          }
        }
        // Statistical echoes (TrafficShift) with no tighter per-partition
        // cause chain to the most recent disturbance.
        if (failure_id != 0) events_.set_ambient_cause(failure_id);
      });
  // Liveness changed: relays and dead-DC skips may differ everywhere, and
  // handle_lost_copies below can move primaries.
  router_.invalidate_routes();
  handle_lost_copies(all_lost, lost_causes);
  if (config_.redundancy == RedundancyMode::kErasure) {
    // Stripe-loss scan: a partition whose live fragment count fell below
    // k is reconstruction-infeasible — a data loss even though copies
    // survive. The stripe_lost_ flag dedups partitions hit repeatedly
    // (multiple victims, or losses in earlier failure waves).
    for (std::size_t i = 0; i < all_lost.size(); ++i) {
      const PartitionId p = all_lost[i].partition;
      if (stripe_lost_[p.value()] != 0) continue;
      const std::uint32_t alive_fragments = cluster_.replica_count(p);
      if (alive_fragments == 0 || alive_fragments >= config_.ec_k) continue;
      stripe_lost_[p.value()] = 1;
      ++data_losses_;
      if (telemetry_ != nullptr) tel_.data_losses->inc(1.0);
      log(LogLevel::kWarn,
          "partition %u stripe lost: %u fragments alive, below k=%u",
          p.value(), alive_fragments, config_.ec_k);
      const std::uint64_t id = events_.emit_caused(
          i < lost_causes.size() ? lost_causes[i] : 0,
          StripeLost{epoch_, p, alive_fragments});
      if (id != 0) partition_cause_[p.value()] = id;
    }
  }
}

std::vector<ServerId> Simulation::fail_random_servers(std::uint32_t n) {
  std::vector<ServerId> live;
  for (const Server& s : world_.topology.servers()) {
    if (cluster_.alive(s.id)) live.push_back(s.id);
  }
  RFH_ASSERT(n < live.size());
  const auto picks = rng_failures_.sample_without_replacement(live.size(), n);
  std::vector<ServerId> victims;
  victims.reserve(n);
  for (const std::size_t i : picks) victims.push_back(live[i]);
  fail_servers(victims);
  return victims;
}

std::vector<ServerId> Simulation::fail_datacenter(DatacenterId dc) {
  std::vector<ServerId> victims;
  for (const ServerId s : world_.topology.servers_in(dc)) {
    if (cluster_.alive(s)) victims.push_back(s);
  }
  fail_servers(victims);
  return victims;
}

void Simulation::set_stats_frozen(ServerId s, bool frozen) {
  if (stats_.frozen(s) == frozen) return;
  stats_.set_frozen(s, frozen);
  const std::uint64_t id = events_.emit(StatsFrozen{epoch_, s, frozen});
  if (id != 0) events_.set_ambient_cause(id);
}

void Simulation::recover_servers(std::span<const ServerId> servers) {
  std::vector<ServerId> revived;
  revived.reserve(servers.size());
  std::vector<bool> seen(world_.topology.server_count(), false);
  for (const ServerId s : servers) {
    if (cluster_.alive(s) || seen[s.value()]) continue;
    seen[s.value()] = true;
    revived.push_back(s);
  }
  // One bulk ring join instead of per-server sorted inserts, then emit in
  // span order — the same final state and event sequence the sequential
  // revive-then-emit loop produced.
  cluster_.revive_servers(revived);
  for (const ServerId s : revived) {
    const std::uint64_t id = events_.emit(ServerRecovered{epoch_, s});
    if (id != 0) events_.set_ambient_cause(id);
  }
  if (!revived.empty()) router_.invalidate_routes();
}

namespace {
// Normalized (low id, high id) key for an undirected link. Note:
// std::minmax over rvalues would return dangling references.
std::pair<std::uint32_t, std::uint32_t> link_key(DatacenterId a,
                                                 DatacenterId b) {
  return {std::min(a.value(), b.value()), std::max(a.value(), b.value())};
}
}  // namespace

std::vector<Link> Simulation::active_links() const {
  std::vector<Link> links;
  for (const Link& link : world_.links) {
    const bool disabled =
        std::find(disabled_links_.begin(), disabled_links_.end(),
                  link_key(link.a, link.b)) != disabled_links_.end();
    if (!disabled) links.push_back(link);
  }
  return links;
}

void Simulation::rebuild_network() {
  graph_ = DcGraph(world_.topology.datacenter_count(), active_links());
  RFH_ASSERT_MSG(graph_.connected(),
                 "link failure would partition the network");
  paths_ = ShortestPaths(graph_);
  // router_ holds pointers to world_.topology and paths_, both of which
  // keep their addresses across the reassignment above — but every
  // memoized route was computed against the old path table.
  router_.invalidate_routes();
}

bool Simulation::link_failure_would_partition(DatacenterId a,
                                              DatacenterId b) const {
  std::vector<Link> links;
  const auto key = link_key(a, b);
  for (const Link& link : active_links()) {
    if (link_key(link.a, link.b) != key) links.push_back(link);
  }
  return !DcGraph(world_.topology.datacenter_count(), links).connected();
}

void Simulation::fail_link(DatacenterId a, DatacenterId b) {
  RFH_ASSERT(a != b);
  const auto entry = link_key(a, b);
  if (std::find(disabled_links_.begin(), disabled_links_.end(), entry) !=
      disabled_links_.end()) {
    return;  // already down
  }
  disabled_links_.push_back(entry);
  rebuild_network();
  const std::uint64_t id = events_.emit(LinkFailed{epoch_, a, b});
  if (id != 0) events_.set_ambient_cause(id);
}

void Simulation::restore_link(DatacenterId a, DatacenterId b) {
  const auto entry = link_key(a, b);
  const auto it =
      std::find(disabled_links_.begin(), disabled_links_.end(), entry);
  if (it == disabled_links_.end()) return;
  disabled_links_.erase(it);
  rebuild_network();
  const std::uint64_t id = events_.emit(LinkRestored{epoch_, a, b});
  if (id != 0) events_.set_ambient_cause(id);
}

}  // namespace rfh
