
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/collector.cpp" "src/metrics/CMakeFiles/rfh_metrics.dir/collector.cpp.o" "gcc" "src/metrics/CMakeFiles/rfh_metrics.dir/collector.cpp.o.d"
  "/root/repo/src/metrics/csv.cpp" "src/metrics/CMakeFiles/rfh_metrics.dir/csv.cpp.o" "gcc" "src/metrics/CMakeFiles/rfh_metrics.dir/csv.cpp.o.d"
  "/root/repo/src/metrics/diversity.cpp" "src/metrics/CMakeFiles/rfh_metrics.dir/diversity.cpp.o" "gcc" "src/metrics/CMakeFiles/rfh_metrics.dir/diversity.cpp.o.d"
  "/root/repo/src/metrics/imbalance.cpp" "src/metrics/CMakeFiles/rfh_metrics.dir/imbalance.cpp.o" "gcc" "src/metrics/CMakeFiles/rfh_metrics.dir/imbalance.cpp.o.d"
  "/root/repo/src/metrics/utilization.cpp" "src/metrics/CMakeFiles/rfh_metrics.dir/utilization.cpp.o" "gcc" "src/metrics/CMakeFiles/rfh_metrics.dir/utilization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rfh_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/rfh_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rfh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/rfh_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rfh_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ring/CMakeFiles/rfh_ring.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/rfh_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
