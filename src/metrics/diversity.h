// Geographic diversity of replica placement (paper Section II-A's
// availability levels).
//
// The paper grades a *pair* of servers 1..5 by the failure domain they
// share (same server .. different datacenters). For a partition, what
// matters for surviving a domain failure is the most-separated pair of
// copies: a partition with max pairwise level 5 survives the loss of any
// single datacenter. The diversity level of a partition is therefore the
// maximum availability level over its copy pairs (0 for a partition with
// fewer than two copies — no redundancy at all).
#pragma once

#include <cstdint>

#include "sim/cluster.h"
#include "topology/topology.h"

namespace rfh {

/// Max pairwise availability level among p's copies; 0 when r < 2.
std::uint32_t partition_diversity_level(const ClusterState& cluster,
                                        const Topology& topology,
                                        PartitionId p);

/// Mean partition diversity level over all partitions.
double mean_diversity_level(const ClusterState& cluster,
                            const Topology& topology);

/// Fraction of partitions that survive the loss of any single datacenter
/// (copies span at least two datacenters).
double datacenter_survivable_fraction(const ClusterState& cluster,
                                      const Topology& topology);

}  // namespace rfh
