#include "net/shortest_paths.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "topology/world.h"

namespace rfh {
namespace {

// Floyd-Warshall oracle.
std::vector<double> floyd_warshall(std::size_t n,
                                   const std::vector<Link>& links) {
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> d(n * n, inf);
  for (std::size_t i = 0; i < n; ++i) d[i * n + i] = 0.0;
  for (const Link& l : links) {
    d[l.a.value() * n + l.b.value()] =
        std::min(d[l.a.value() * n + l.b.value()], l.km);
    d[l.b.value() * n + l.a.value()] =
        std::min(d[l.b.value() * n + l.a.value()], l.km);
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        d[i * n + j] = std::min(d[i * n + j], d[i * n + k] + d[k * n + j]);
      }
    }
  }
  return d;
}

std::vector<Link> random_connected_links(std::size_t n, Rng& rng) {
  std::vector<Link> links;
  // Spanning chain plus random extra edges.
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    links.push_back(Link{DatacenterId{i}, DatacenterId{i + 1},
                         1.0 + rng.uniform_real() * 10.0});
  }
  const std::size_t extra = n;
  for (std::size_t e = 0; e < extra; ++e) {
    const auto a = static_cast<std::uint32_t>(rng.uniform(n));
    const auto b = static_cast<std::uint32_t>(rng.uniform(n));
    if (a == b) continue;
    links.push_back(Link{DatacenterId{a}, DatacenterId{b},
                         1.0 + rng.uniform_real() * 10.0});
  }
  return links;
}

class DijkstraRandomGraphTest : public ::testing::TestWithParam<int> {};

TEST_P(DijkstraRandomGraphTest, MatchesFloydWarshall) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 4 + rng.uniform(12);
  const auto links = random_connected_links(n, rng);
  const DcGraph graph(n, links);
  const ShortestPaths paths(graph);
  const auto oracle = floyd_warshall(n, links);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      EXPECT_NEAR(paths.distance_km(DatacenterId{i}, DatacenterId{j}),
                  oracle[i * n + j], 1e-9)
          << "i=" << i << " j=" << j;
    }
  }
}

TEST_P(DijkstraRandomGraphTest, PathsAreValidAndMatchDistances) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  const std::size_t n = 4 + rng.uniform(12);
  const auto links = random_connected_links(n, rng);
  const DcGraph graph(n, links);
  const ShortestPaths paths(graph);

  auto edge_km = [&](DatacenterId a, DatacenterId b) {
    double best = std::numeric_limits<double>::infinity();
    for (const Edge& e : graph.neighbors(a)) {
      if (e.to == b) best = std::min(best, e.km);
    }
    return best;
  };

  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      const auto p = paths.path(DatacenterId{i}, DatacenterId{j});
      ASSERT_GE(p.size(), 1u);
      EXPECT_EQ(p.front(), DatacenterId{i});
      EXPECT_EQ(p.back(), DatacenterId{j});
      double total = 0.0;
      for (std::size_t k = 0; k + 1 < p.size(); ++k) {
        const double km = edge_km(p[k], p[k + 1]);
        ASSERT_TRUE(std::isfinite(km)) << "path uses a non-edge";
        total += km;
      }
      EXPECT_NEAR(total, paths.distance_km(DatacenterId{i}, DatacenterId{j}),
                  1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraRandomGraphTest,
                         ::testing::Range(0, 8));

TEST(ShortestPaths, SelfPathIsSingleton) {
  const World world = build_paper_world();
  const DcGraph graph(world.topology.datacenter_count(), world.links);
  const ShortestPaths paths(graph);
  const auto p = paths.path(world.dc[3], world.dc[3]);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0], world.dc[3]);
  EXPECT_EQ(paths.hop_count(world.dc[3], world.dc[3]), 0u);
  EXPECT_DOUBLE_EQ(paths.distance_km(world.dc[3], world.dc[3]), 0.0);
}

TEST(ShortestPaths, DeterministicAcrossConstructions) {
  const World world = build_paper_world();
  const DcGraph graph(world.topology.datacenter_count(), world.links);
  const ShortestPaths a(graph);
  const ShortestPaths b(graph);
  for (const DatacenterId from : world.dc) {
    for (const DatacenterId to : world.dc) {
      EXPECT_EQ(a.path(from, to), b.path(from, to));
    }
  }
}

TEST(ShortestPaths, PaperWorldAsiaFlowsTransitGateways) {
  // The running example of Section II-A: queries from the Asian
  // datacenters towards A funnel through a small set of gateway
  // datacenters. Verify the structure our link set induces.
  const World world = build_paper_world();
  const DcGraph graph(world.topology.datacenter_count(), world.links);
  const ShortestPaths paths(graph);

  // J (Osaka) reaches A via I (Tokyo) and D (Vancouver).
  const auto from_j = paths.path(world.by_letter('J'), world.by_letter('A'));
  ASSERT_GE(from_j.size(), 3u);
  EXPECT_EQ(from_j[1], world.by_letter('I'));
  EXPECT_NE(std::find(from_j.begin(), from_j.end(), world.by_letter('D')),
            from_j.end());

  // H (Beijing) reaches A via F (Zurich).
  const auto from_h = paths.path(world.by_letter('H'), world.by_letter('A'));
  EXPECT_NE(std::find(from_h.begin(), from_h.end(), world.by_letter('F')),
            from_h.end());
}

TEST(ShortestPaths, TransitCountsOnALine) {
  // 0-1-2-3: paths to 3 transit through 1 and 2.
  std::vector<Link> links;
  for (std::uint32_t i = 0; i < 3; ++i) {
    links.push_back(Link{DatacenterId{i}, DatacenterId{i + 1}, 1.0});
  }
  const DcGraph graph(4, links);
  const ShortestPaths paths(graph);
  const auto counts = paths.transit_counts(DatacenterId{3});
  EXPECT_EQ(counts[0], 0u);  // endpoint of its own path only
  EXPECT_EQ(counts[1], 1u);  // transited by 0
  EXPECT_EQ(counts[2], 2u);  // transited by 0 and 1
  EXPECT_EQ(counts[3], 0u);  // destination never counts
}

TEST(ShortestPaths, TransitCountsIdentifyPaperHubs) {
  const World world = build_paper_world();
  const DcGraph graph(world.topology.datacenter_count(), world.links);
  const ShortestPaths paths(graph);
  const auto counts = paths.transit_counts(world.by_letter('A'));
  // The gateway datacenters carry strictly more transit than the leaf
  // datacenters G, H, J (which are nobody's transit towards A).
  const auto at = [&](char c) {
    return counts[world.by_letter(c).value()];
  };
  EXPECT_EQ(at('G'), 0u);
  EXPECT_EQ(at('J'), 0u);
  EXPECT_GT(at('D'), 0u);
  EXPECT_GT(at('F'), 0u);
}

TEST(ShortestPathsDeath, UnreachableDestination) {
  const std::vector<Link> links{Link{DatacenterId{0}, DatacenterId{1}, 1.0}};
  const DcGraph graph(3, links);
  const ShortestPaths paths(graph);
  EXPECT_TRUE(std::isinf(paths.distance_km(DatacenterId{0}, DatacenterId{2})));
  EXPECT_DEATH(paths.path(DatacenterId{0}, DatacenterId{2}), "");
}

}  // namespace
}  // namespace rfh
