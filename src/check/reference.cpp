#include "check/reference.h"

#include <algorithm>

#include "common/assert.h"
#include "common/availability.h"
#include "common/erlang.h"
#include "ring/hash.h"
#include "ring/rendezvous.h"
#include "ring/ring.h"
#include "sim/engine.h"

namespace rfh {

namespace {

// RfhPolicy's default Options, transcribed as constants: the harness
// always runs the engine with PolicyKind::kRfh defaults, so the oracle
// hard-codes the same knobs rather than sharing the Options struct.
constexpr std::uint32_t kTopHubs = 3;
constexpr std::uint32_t kOverloadStreakEpochs = 3;
constexpr std::uint32_t kColdStreakEpochs = 6;
constexpr std::uint32_t kMaxSuicidesPerEpoch = 1;

std::pair<std::uint32_t, std::uint32_t> link_key(DatacenterId a,
                                                 DatacenterId b) {
  return {std::min(a.value(), b.value()), std::max(a.value(), b.value())};
}

}  // namespace

ReferenceEngine::ReferenceEngine(const Scenario& scenario)
    : world_(build_paper_world(scenario.world)),
      config_(scenario.sim),
      workload_(make_workload(scenario, world_)),
      rng_workload_(Rng(config_.seed).fork(kWorkloadStreamTag)),
      replicas_(config_.partitions),
      storage_used_(world_.topology.server_count(), 0),
      copies_on_(world_.topology.server_count(), 0),
      alive_(world_.topology.server_count(), 0),
      live_by_dc_(world_.topology.datacenter_count()),
      e_node_traffic_(config_.partitions * world_.topology.server_count(), 0.0),
      e_served_(config_.partitions * world_.topology.server_count(), 0.0),
      e_requester_queries_(
          config_.partitions * world_.topology.datacenter_count(), 0.0),
      e_partition_queries_(config_.partitions, 0.0),
      e_unserved_(config_.partitions, 0.0),
      e_server_work_(world_.topology.server_count(), 0.0),
      avg_query_(config_.partitions, 0.0),
      node_traffic_(config_.partitions * world_.topology.server_count(), 0.0),
      node_traffic_sum_(config_.partitions, 0.0),
      requester_queries_(
          config_.partitions * world_.topology.datacenter_count(), 0.0),
      server_arrival_(world_.topology.server_count(), 0.0),
      stats_frozen_(world_.topology.server_count(), 0),
      overload_streak_(config_.partitions, 0),
      replication_bytes_(world_.topology.server_count(), 0),
      migration_bytes_(world_.topology.server_count(), 0),
      stripe_lost_(config_.partitions, 0) {
  // Bring every server up in topology order — the same insertion order the
  // engine's ClusterState uses, which fixes the ring's token layout.
  for (const Server& s : world_.topology.servers()) {
    alive_[s.id.value()] = 1;
    ++live_count_;
    ring_add(s.id);
  }
  rebuild_live_by_dc();
  graph_ = std::make_unique<DcGraph>(world_.topology.datacenter_count(),
                                     world_.links);
  RFH_ASSERT_MSG(graph_->connected(), "datacenter graph must be connected");
  paths_ = std::make_unique<ShortestPaths>(*graph_);
  seed_primaries();
}

// --- naive ring ------------------------------------------------------------

void ReferenceEngine::ring_add(ServerId s) {
  RFH_ASSERT(!ring_tokens_.contains(s));
  std::vector<std::uint64_t>& tokens = ring_tokens_[s];
  for (std::uint32_t i = 0; i < config_.ring_tokens_per_server; ++i) {
    std::uint64_t pos = hash_combine(hash64(std::uint64_t{s.value()}),
                                     hash64(std::uint64_t{i}));
    // Same collision probe as HashRing::add_server: advance past occupied
    // positions so every server owns exactly tokens_per_server positions.
    while (ring_.contains(pos)) ++pos;
    ring_.emplace(pos, s);
    tokens.push_back(pos);
  }
}

void ReferenceEngine::ring_remove(ServerId s) {
  const auto it = ring_tokens_.find(s);
  RFH_ASSERT(it != ring_tokens_.end());
  for (const std::uint64_t pos : it->second) {
    ring_.erase(pos);
  }
  ring_tokens_.erase(it);
}

std::vector<ServerId> ReferenceEngine::preference_list(std::uint64_t key,
                                                       std::size_t n) const {
  RFH_ASSERT_MSG(!ring_.empty(), "ring is empty");
  const std::size_t want = std::min(n, ring_tokens_.size());
  std::vector<ServerId> walk;
  walk.reserve(want);
  auto it = ring_.lower_bound(key);
  for (std::size_t step = 0; step < ring_.size() && walk.size() < want;
       ++step) {
    if (it == ring_.end()) it = ring_.begin();
    const ServerId candidate = it->second;
    if (std::find(walk.begin(), walk.end(), candidate) == walk.end()) {
      walk.push_back(candidate);
    }
    ++it;
  }
  return walk;
}

// --- cluster bookkeeping ---------------------------------------------------

void ReferenceEngine::add_replica(PartitionId p, ServerId s, bool primary) {
  RFH_ASSERT(alive_[s.value()] != 0);
  RFH_ASSERT(!has_replica(p, s));
  replicas_[p.value()].push_back(Replica{s, primary});
  storage_used_[s.value()] += config_.unit_size();
  copies_on_[s.value()] += 1;
  total_replicas_ += 1;
}

void ReferenceEngine::remove_replica(PartitionId p, ServerId s) {
  auto& list = replicas_[p.value()];
  const auto it = std::find_if(
      list.begin(), list.end(),
      [s](const Replica& r) { return r.server == s; });
  RFH_ASSERT(it != list.end());
  list.erase(it);
  storage_used_[s.value()] -= config_.unit_size();
  copies_on_[s.value()] -= 1;
  total_replicas_ -= 1;
}

void ReferenceEngine::set_primary(PartitionId p, ServerId s) {
  bool found = false;
  for (Replica& r : replicas_[p.value()]) {
    if (r.server == s) {
      r.primary = true;
      found = true;
    } else {
      r.primary = false;
    }
  }
  RFH_ASSERT(found);
}

ServerId ReferenceEngine::primary_of(PartitionId p) const {
  for (const Replica& r : replicas_[p.value()]) {
    if (r.primary) return r.server;
  }
  return ServerId::invalid();
}

std::span<const Replica> ReferenceEngine::replicas_of(PartitionId p) const {
  return replicas_[p.value()];
}

double ReferenceEngine::avg_query(PartitionId p) const {
  return avg_query_[p.value()];
}

double ReferenceEngine::node_traffic(PartitionId p, ServerId s) const {
  return node_traffic_[traffic_index(p, s)];
}

bool ReferenceEngine::alive(ServerId s) const {
  return alive_[s.value()] != 0;
}

bool ReferenceEngine::has_replica(PartitionId p, ServerId s) const {
  const auto& list = replicas_[p.value()];
  return std::any_of(list.begin(), list.end(),
                     [s](const Replica& r) { return r.server == s; });
}

bool ReferenceEngine::can_accept(ServerId s, PartitionId p) const {
  if (alive_[s.value()] == 0 || has_replica(p, s)) return false;
  const ServerSpec& spec = world_.topology.server(s).spec;
  if (copies_on_[s.value()] >= spec.max_vnodes) return false;
  if (config_.redundancy == RedundancyMode::kErasure) {
    // Zone-diversity rule: at most m fragments of one stripe per
    // datacenter, so no single DC loss drops a stripe below k.
    const DatacenterId dc = world_.topology.server(s).datacenter;
    std::uint32_t in_dc = 0;
    for (const Replica& r : replicas_[p.value()]) {
      if (world_.topology.server(r.server).datacenter == dc) ++in_dc;
    }
    if (in_dc >= config_.ec_m) return false;
  }
  const auto projected =
      static_cast<double>(storage_used_[s.value()] + config_.unit_size());
  return projected <=
         config_.storage_limit * static_cast<double>(spec.storage_capacity);
}

std::vector<ServerId> ReferenceEngine::hosts_in_dc(PartitionId p,
                                                   DatacenterId dc) const {
  std::vector<ServerId> non_primary;
  std::vector<ServerId> primary;
  for (const Replica& r : replicas_[p.value()]) {
    if (world_.topology.server(r.server).datacenter == dc) {
      (r.primary ? primary : non_primary).push_back(r.server);
    }
  }
  std::sort(non_primary.begin(), non_primary.end());
  non_primary.insert(non_primary.end(), primary.begin(), primary.end());
  return non_primary;
}

void ReferenceEngine::rebuild_live_by_dc() {
  for (auto& list : live_by_dc_) list.clear();
  for (const Server& s : world_.topology.servers()) {
    if (alive_[s.id.value()] != 0) {
      live_by_dc_[s.datacenter.value()].push_back(s.id);
    }
  }
}

void ReferenceEngine::seed_primaries() {
  for (std::uint32_t pv = 0; pv < config_.partitions; ++pv) {
    const PartitionId p{pv};
    const auto preference =
        preference_list(HashRing::partition_key(p), live_count_);
    ServerId home = preference.front();
    for (const ServerId candidate : preference) {
      if (can_accept(candidate, p)) {
        home = candidate;
        break;
      }
    }
    add_replica(p, home, /*primary=*/true);
  }
}

// --- failure mirroring -----------------------------------------------------

void ReferenceEngine::clear_server_stats(ServerId s) {
  server_arrival_[s.value()] = 0.0;
  const std::size_t servers = world_.topology.server_count();
  for (std::uint32_t pv = 0; pv < config_.partitions; ++pv) {
    double& v = node_traffic_[pv * servers + s.value()];
    if (v == 0.0) continue;
    v = 0.0;
    double sum = 0.0;
    for (std::uint32_t k = 0; k < servers; ++k) {
      sum += node_traffic_[pv * servers + k];
    }
    node_traffic_sum_[pv] = sum;
  }
}

void ReferenceEngine::set_stats_frozen(ServerId s, bool frozen) {
  stats_frozen_[s.value()] = frozen ? 1 : 0;
}

void ReferenceEngine::handle_lost_copies(std::span<const LostCopy> lost) {
  for (const LostCopy& copy : lost) {
    if (!copy.was_primary) continue;
    ServerId best;
    double best_traffic = -1.0;
    for (const Replica& r : replicas_[copy.partition.value()]) {
      const double tr = node_traffic_[traffic_index(copy.partition, r.server)];
      if (!best.valid() || tr > best_traffic ||
          (tr == best_traffic && r.server < best)) {
        best = r.server;
        best_traffic = tr;
      }
    }
    if (best.valid()) {
      set_primary(copy.partition, best);
      continue;
    }
    ++data_losses_;
    const auto preference = preference_list(
        HashRing::partition_key(copy.partition), live_count_);
    ServerId home;
    for (const ServerId candidate : preference) {
      if (can_accept(candidate, copy.partition)) {
        home = candidate;
        break;
      }
    }
    if (!home.valid() && !preference.empty()) home = preference.front();
    if (home.valid()) {
      add_replica(copy.partition, home, /*primary=*/true);
      // A reseeded EC stripe starts below k fragments; mark it
      // lost-but-already-counted so fail_servers' scan doesn't
      // double-count (mirrors the engine).
      if (config_.redundancy == RedundancyMode::kErasure) {
        stripe_lost_[copy.partition.value()] = 1;
      }
    }
  }
}

void ReferenceEngine::fail_servers(std::span<const ServerId> servers) {
  std::vector<LostCopy> all_lost;
  for (const ServerId s : servers) {
    if (alive_[s.value()] == 0) continue;
    RFH_ASSERT_MSG(live_count_ > 1, "refusing to kill the last live server");
    for (std::uint32_t pv = 0; pv < config_.partitions; ++pv) {
      const PartitionId p{pv};
      if (has_replica(p, s)) {
        const bool was_primary = primary_of(p) == s;
        remove_replica(p, s);
        all_lost.push_back(LostCopy{p, was_primary});
      }
    }
    alive_[s.value()] = 0;
    live_count_ -= 1;
    ring_remove(s);
    rebuild_live_by_dc();
    clear_server_stats(s);
  }
  handle_lost_copies(all_lost);
  if (config_.redundancy == RedundancyMode::kErasure) {
    // Stripe-loss scan: fewer than k live fragments means the partition
    // cannot be reconstructed — a data loss even though copies survive.
    for (const LostCopy& copy : all_lost) {
      const PartitionId p = copy.partition;
      if (stripe_lost_[p.value()] != 0) continue;
      const auto alive_fragments =
          static_cast<std::uint32_t>(replicas_[p.value()].size());
      if (alive_fragments == 0 || alive_fragments >= config_.ec_k) continue;
      stripe_lost_[p.value()] = 1;
      ++data_losses_;
    }
  }
}

void ReferenceEngine::recover_servers(std::span<const ServerId> servers) {
  for (const ServerId s : servers) {
    if (alive_[s.value()] != 0) continue;
    alive_[s.value()] = 1;
    live_count_ += 1;
    ring_add(s);
    rebuild_live_by_dc();
  }
}

std::vector<Link> ReferenceEngine::active_links() const {
  std::vector<Link> links;
  for (const Link& link : world_.links) {
    const bool disabled =
        std::find(disabled_links_.begin(), disabled_links_.end(),
                  link_key(link.a, link.b)) != disabled_links_.end();
    if (!disabled) links.push_back(link);
  }
  return links;
}

void ReferenceEngine::rebuild_network() {
  graph_ = std::make_unique<DcGraph>(world_.topology.datacenter_count(),
                                     active_links());
  RFH_ASSERT_MSG(graph_->connected(),
                 "link failure would partition the network");
  paths_ = std::make_unique<ShortestPaths>(*graph_);
}

void ReferenceEngine::fail_link(DatacenterId a, DatacenterId b) {
  RFH_ASSERT(a != b);
  const auto entry = link_key(a, b);
  if (std::find(disabled_links_.begin(), disabled_links_.end(), entry) !=
      disabled_links_.end()) {
    return;
  }
  disabled_links_.push_back(entry);
  rebuild_network();
}

void ReferenceEngine::restore_link(DatacenterId a, DatacenterId b) {
  const auto entry = link_key(a, b);
  const auto it =
      std::find(disabled_links_.begin(), disabled_links_.end(), entry);
  if (it == disabled_links_.end()) return;
  disabled_links_.erase(it);
  rebuild_network();
}

// --- per-epoch phases ------------------------------------------------------

void ReferenceEngine::compute_route(PartitionId partition,
                                    DatacenterId requester, ServerId holder,
                                    RefRoute& route) const {
  const DatacenterId holder_dc = world_.topology.server(holder).datacenter;
  const std::vector<DatacenterId> dc_path =
      paths_->path(requester, holder_dc);

  route.stages.clear();
  std::uint32_t hops = 1;  // client -> requester-DC relay
  double latency = kHopLatencyMs;
  for (const DatacenterId dc : dc_path) {
    latency = kHopLatencyMs * hops +
              paths_->distance_km(requester, dc) / kFibreKmPerMs;
    const std::vector<ServerId>& live = live_by_dc_[dc.value()];
    if (live.empty()) {
      ++hops;
      continue;
    }
    const ServerId relay =
        dc == holder_dc ? holder : Router::relay_for(partition, dc, live);
    route.stages.push_back(RouteStage{dc, relay, hops, latency});
    ++hops;
  }
  route.total_hops = hops;
  route.total_latency_ms = latency + kHopLatencyMs;
}

void ReferenceEngine::propagate(const QueryBatch& batch) {
  std::fill(e_node_traffic_.begin(), e_node_traffic_.end(), 0.0);
  std::fill(e_served_.begin(), e_served_.end(), 0.0);
  std::fill(e_requester_queries_.begin(), e_requester_queries_.end(), 0.0);
  std::fill(e_partition_queries_.begin(), e_partition_queries_.end(), 0.0);
  std::fill(e_unserved_.begin(), e_unserved_.end(), 0.0);
  std::fill(e_server_work_.begin(), e_server_work_.end(), 0.0);
  e_total_queries_ = 0.0;
  e_routed_queries_ = 0.0;
  e_path_hops_weighted_ = 0.0;

  const std::size_t datacenters = world_.topology.datacenter_count();
  RefRoute route;
  for (const QueryFlow& flow : batch) {
    e_total_queries_ += flow.queries;
    e_partition_queries_[flow.partition.value()] += flow.queries;
    e_requester_queries_[flow.partition.value() * datacenters +
                         flow.requester.value()] += flow.queries;

    const ServerId holder = primary_of(flow.partition);
    if (!holder.valid()) {
      e_unserved_[flow.partition.value()] += flow.queries;
      continue;
    }

    // k-of-n reconstruction (EC mode): one logical query costs k
    // fragment-reads; below k live fragments nothing can be served.
    // kf is exactly 1.0 in replica mode (every scale is an FP no-op).
    const double kf = static_cast<double>(config_.reconstruction_threshold());
    if (kf > 1.0 &&
        replicas_[flow.partition.value()].size() < config_.ec_k) {
      e_unserved_[flow.partition.value()] += flow.queries;
      continue;
    }

    compute_route(flow.partition, flow.requester, holder, route);
    double residual = flow.queries * kf;
    for (const RouteStage& stage : route.stages) {
      if (residual <= 0.0) break;
      e_node_traffic_[traffic_index(flow.partition, stage.relay)] += residual;
      e_server_work_[stage.relay.value()] += residual;

      for (const ServerId host : hosts_in_dc(flow.partition, stage.dc)) {
        if (residual <= 0.0) break;
        const double cap =
            world_.topology.server(host).spec.per_replica_capacity;
        const double already = e_served_[traffic_index(flow.partition, host)];
        const double take = std::min(residual, std::max(0.0, cap - already));
        if (take <= 0.0) continue;
        e_served_[traffic_index(flow.partition, host)] += take;
        if (host != stage.relay) {
          e_node_traffic_[traffic_index(flow.partition, host)] += take;
          e_server_work_[host.value()] += take;
        }
        e_routed_queries_ += take / kf;
        e_path_hops_weighted_ +=
            take / kf * static_cast<double>(stage.hops_at_entry);
        residual -= take;
      }
    }
    if (residual > 0.0) {
      e_unserved_[flow.partition.value()] += residual / kf;
      e_routed_queries_ += residual / kf;
      e_path_hops_weighted_ +=
          residual / kf * static_cast<double>(route.total_hops);
    }
  }
}

void ReferenceEngine::update_stats() {
  // Direct transcription of Eqs. 9-11 with the same orientation handling
  // and first-epoch initialization as sim/stats.cpp.
  const double alpha_eff =
      config_.alpha_weights_history ? config_.alpha : 1.0 - config_.alpha;
  const double a = stats_initialized_ ? alpha_eff : 0.0;
  const double b = 1.0 - a;
  stats_initialized_ = true;

  const std::size_t servers = world_.topology.server_count();
  const std::size_t datacenters = world_.topology.datacenter_count();
  for (std::uint32_t pv = 0; pv < config_.partitions; ++pv) {
    const double q_avg =
        e_partition_queries_[pv] / static_cast<double>(datacenters);
    avg_query_[pv] = a * avg_query_[pv] + b * q_avg;

    double sum = 0.0;
    for (std::uint32_t s = 0; s < servers; ++s) {
      double& v = node_traffic_[pv * servers + s];
      // A frozen (stalestats) server keeps its stale value; the engine's
      // sparse merge skips its cells the same way.
      if (stats_frozen_[s] == 0) {
        v = a * v + b * e_node_traffic_[pv * servers + s];
      }
      sum += v;
    }
    node_traffic_sum_[pv] = sum;

    for (std::uint32_t j = 0; j < datacenters; ++j) {
      double& v = requester_queries_[pv * datacenters + j];
      v = a * v + b * e_requester_queries_[pv * datacenters + j];
    }
  }
  for (std::uint32_t s = 0; s < servers; ++s) {
    if (stats_frozen_[s] != 0) continue;
    server_arrival_[s] = a * server_arrival_[s] + b * e_server_work_[s];
  }
}

// --- decision tree ---------------------------------------------------------

std::vector<ReferenceEngine::HubCandidate> ReferenceEngine::hub_candidates(
    PartitionId p, double gamma_threshold, bool require_gamma) const {
  std::vector<HubCandidate> out;
  for (const Server& server : world_.topology.servers()) {
    if (alive_[server.id.value()] == 0) continue;
    if (has_replica(p, server.id)) continue;
    const double tr = node_traffic_[traffic_index(p, server.id)];
    if (tr <= 0.0) continue;
    if (require_gamma && tr < gamma_threshold) continue;
    out.push_back(HubCandidate{server.id, tr});
  }
  std::sort(out.begin(), out.end(),
            [](const HubCandidate& a, const HubCandidate& b) {
              if (a.traffic != b.traffic) return a.traffic > b.traffic;
              return a.server < b.server;
            });
  return out;
}

ServerId ReferenceEngine::select_in_dc(DatacenterId dc, PartitionId p) const {
  // Eq. 18: the feasible server with the lowest Erlang-B blocking
  // probability (ties break to the first in live order, i.e. lower id).
  ServerId best;
  double best_bp = 0.0;
  for (const ServerId s : live_by_dc_[dc.value()]) {
    if (!can_accept(s, p)) continue;
    const ServerSpec& spec = world_.topology.server(s).spec;
    const double service_rate = std::max(spec.per_replica_capacity, 1e-9);
    const double offered = server_arrival_[s.value()] / service_rate;
    const double bp = erlang_b(offered, spec.service_channels);
    if (!best.valid() || bp < best_bp) {
      best = s;
      best_bp = bp;
    }
  }
  return best;
}

ServerId ReferenceEngine::pick_target_hub(
    PartitionId p, const std::vector<HubCandidate>& hubs) const {
  for (const HubCandidate& hub : hubs) {
    const DatacenterId dc = world_.topology.server(hub.server).datacenter;
    const ServerId s = select_in_dc(dc, p);
    if (s.valid()) return s;
  }
  return ServerId::invalid();
}

ServerId ReferenceEngine::pick_target_near_owner(PartitionId p) const {
  const ServerId primary = primary_of(p);
  const DatacenterId home = world_.topology.server(primary).datacenter;
  std::vector<DatacenterId> dcs;
  for (const Datacenter& dc : world_.topology.datacenters()) {
    if (dc.id != home) dcs.push_back(dc.id);
  }
  std::sort(dcs.begin(), dcs.end(), [&](DatacenterId a, DatacenterId b) {
    return world_.topology.distance_km(home, a) <
           world_.topology.distance_km(home, b);
  });
  for (const DatacenterId dc : dcs) {
    const ServerId s = select_in_dc(dc, p);
    if (s.valid()) return s;
  }
  return select_in_dc(home, p);
}

bool ReferenceEngine::holder_overloaded(PartitionId p, ServerId primary) const {
  // Eq. 12 with the engine's physical floor and demand clamp
  // (sim/policy.h holder_overloaded).
  const double q_bar = avg_query_[p.value()];
  const double total =
      q_bar * static_cast<double>(world_.topology.datacenter_count());
  const double threshold = std::min(config_.beta * q_bar, 0.9 * total);
  const double tr = node_traffic_[traffic_index(p, primary)];
  if (q_bar <= 0.0) return false;
  const double capacity =
      world_.topology.server(primary).spec.per_replica_capacity;
  return tr >= threshold && tr > capacity;
}

void ReferenceEngine::decide(std::vector<ProposedReplicate>& replications,
                             std::vector<ProposedMigrate>& migrations,
                             std::vector<ProposedSuicide>& suicides) {
  // Eq. 14 floor: min_replicas in replica mode, the k-of-n binomial-tail
  // fragment floor in EC mode.
  const std::uint32_t rmin = config_.availability_floor();

  for (std::uint32_t pv = 0; pv < config_.partitions; ++pv) {
    const PartitionId p{pv};
    const ServerId primary = primary_of(p);
    if (!primary.valid()) continue;

    const double q_bar = avg_query_[pv];
    const auto r = static_cast<std::uint32_t>(replicas_[pv].size());

    // --- 1. Availability floor (Eq. 14) --------------------------------
    if (r < rmin) {
      const auto hubs = hub_candidates(p, /*gamma_threshold=*/0.0,
                                       /*require_gamma=*/false);
      ServerId target = pick_target_hub(p, hubs);
      if (!target.valid()) target = pick_target_near_owner(p);
      if (target.valid()) {
        replications.push_back(
            ProposedReplicate{p, target, DecisionRule::kAvailabilityFloor});
      }
      continue;
    }

    // --- 2. Overload relief (Eqs. 12-13, 16) ---------------------------
    if (holder_overloaded(p, primary)) {
      ++overload_streak_[pv];
    } else {
      overload_streak_[pv] = 0;
    }
    const bool overloaded = overload_streak_[pv] >= kOverloadStreakEpochs;
    bool replicated_this_epoch = false;

    if (overloaded && r < config_.max_replicas_per_partition) {
      auto hubs = hub_candidates(p, config_.gamma * q_bar,
                                 /*require_gamma=*/true);
      bool forced = false;
      if (hubs.empty()) {
        hubs = hub_candidates(p, 0.0, /*require_gamma=*/false);
        forced = true;
      }
      if (hubs.empty()) {
        const DatacenterId home = world_.topology.server(primary).datacenter;
        const ServerId local = select_in_dc(home, p);
        if (local.valid()) {
          replications.push_back(
              ProposedReplicate{p, local, DecisionRule::kOverloadLocal});
          replicated_this_epoch = true;
        }
      }
      if (!hubs.empty()) {
        if (hubs.size() > kTopHubs) hubs.resize(kTopHubs);
        const ServerId target = pick_target_hub(p, hubs);
        if (target.valid()) {
          ServerId victim;
          double victim_traffic = 0.0;
          const auto in_top_dcs = [&](DatacenterId dc) {
            return std::any_of(hubs.begin(), hubs.end(),
                               [&](const HubCandidate& h) {
                                 return world_.topology.server(h.server)
                                            .datacenter == dc;
                               });
          };
          for (const Replica& replica : replicas_[pv]) {
            if (replica.primary) continue;
            const DatacenterId dc =
                world_.topology.server(replica.server).datacenter;
            if (in_top_dcs(dc)) continue;
            const double tr = node_traffic_[traffic_index(p, replica.server)];
            if (tr > std::max(config_.delta * q_bar,
                              0.3 * hubs.front().traffic)) {
              continue;
            }
            if (!victim.valid() || tr < victim_traffic) {
              victim = replica.server;
              victim_traffic = tr;
            }
          }
          const double mean_tr =
              live_count_ == 0
                  ? 0.0
                  : node_traffic_sum_[pv] / static_cast<double>(live_count_);
          if (victim.valid() &&
              hubs.front().traffic - victim_traffic >= config_.mu * mean_tr) {
            migrations.push_back(ProposedMigrate{
                p, victim, target, DecisionRule::kMigrationBenefit});
          } else {
            replications.push_back(ProposedReplicate{
                p, target,
                forced ? DecisionRule::kOverloadForced
                       : DecisionRule::kOverloadHub});
          }
          replicated_this_epoch = true;
        }
      }
    }

    // --- 3. Suicide (Eq. 15) -------------------------------------------
    if (q_bar > 0.0) {
      std::uint32_t remaining = r;
      std::uint32_t done = 0;
      for (const Replica& replica : replicas_[pv]) {
        if (replica.primary) continue;
        const std::uint64_t key =
            (std::uint64_t{pv} << 32) | replica.server.value();
        const double tr = node_traffic_[traffic_index(p, replica.server)];
        if (tr > config_.delta * q_bar) {
          cold_streak_.erase(key);
          continue;
        }
        const std::uint32_t streak = ++cold_streak_[key];
        if (replicated_this_epoch || done >= kMaxSuicidesPerEpoch ||
            remaining <= rmin || streak < kColdStreakEpochs) {
          continue;
        }
        suicides.push_back(
            ProposedSuicide{p, replica.server, DecisionRule::kSuicideCold});
        cold_streak_.erase(key);
        --remaining;
        ++done;
      }
    }
  }
}

// --- action application ----------------------------------------------------

double ReferenceEngine::transfer_cost(DatacenterId from, DatacenterId to,
                                      Bytes bytes,
                                      BytesPerEpoch bandwidth) const {
  const double d = std::max(world_.topology.distance_km(from, to), 1.0);
  const double s_over_b =
      static_cast<double>(bytes) / static_cast<double>(bandwidth);
  return d * config_.failure_rate * s_over_b;
}

void ReferenceEngine::apply(
    const std::vector<ProposedReplicate>& replications,
    const std::vector<ProposedMigrate>& migrations,
    const std::vector<ProposedSuicide>& suicides, RefEpochReport& report) {
  std::fill(replication_bytes_.begin(), replication_bytes_.end(), Bytes{0});
  std::fill(migration_bytes_.begin(), migration_bytes_.end(), Bytes{0});

  const auto drop = [&](DropReason reason) {
    ++report.dropped_actions;
    ++report.dropped_by_reason[static_cast<std::size_t>(reason)];
  };
  const auto classify = [&](ServerId target, PartitionId p) {
    if (alive_[target.value()] == 0) return DropReason::kDeadTarget;
    if (has_replica(p, target)) return DropReason::kInvalid;
    const ServerSpec& spec = world_.topology.server(target).spec;
    if (copies_on_[target.value()] >= spec.max_vnodes) {
      return DropReason::kNodeCap;
    }
    if (config_.redundancy == RedundancyMode::kErasure) {
      const DatacenterId dc = world_.topology.server(target).datacenter;
      std::uint32_t in_dc = 0;
      for (const Replica& r : replicas_[p.value()]) {
        if (world_.topology.server(r.server).datacenter == dc) ++in_dc;
      }
      if (in_dc >= config_.ec_m) return DropReason::kZoneDiversity;
    }
    const auto projected =
        static_cast<double>(storage_used_[target.value()] +
                            config_.unit_size());
    if (projected >
        config_.storage_limit * static_cast<double>(spec.storage_capacity)) {
      return DropReason::kStorageCap;  // the phi limit (Eq. 19)
    }
    RFH_ASSERT_MSG(false, "can_accept rejected for a reason classify missed");
    return DropReason::kUnknown;
  };

  for (const ProposedReplicate& a : replications) {
    const ServerId src = primary_of(a.partition);
    if (!src.valid() || !a.target.valid()) {
      drop(!a.target.valid() ? DropReason::kDeadTarget : DropReason::kInvalid);
      continue;
    }
    if (!can_accept(a.target, a.partition)) {
      drop(classify(a.target, a.partition));
      continue;
    }
    if (static_cast<std::uint32_t>(replicas_[a.partition.value()].size()) >=
        config_.max_replicas_per_partition) {
      drop(DropReason::kNodeCap);
      continue;
    }
    const ServerSpec& spec = world_.topology.server(src).spec;
    if (replication_bytes_[src.value()] + config_.unit_size() >
        spec.replication_bandwidth) {
      drop(DropReason::kBandwidth);
      continue;
    }
    replication_bytes_[src.value()] += config_.unit_size();
    add_replica(a.partition, a.target);
    const double cost = transfer_cost(
        world_.topology.server(src).datacenter,
        world_.topology.server(a.target).datacenter, config_.unit_size(),
        spec.replication_bandwidth);
    report.replications += 1;
    report.replication_cost += cost;
    report.applied.push_back(RefAppliedAction{
        ActionKind::kReplicate, a.partition, src, a.target, a.rule});
    if (config_.redundancy == RedundancyMode::kErasure &&
        stripe_lost_[a.partition.value()] != 0 &&
        replicas_[a.partition.value()].size() >= config_.ec_k) {
      stripe_lost_[a.partition.value()] = 0;
    }
  }

  for (const ProposedMigrate& a : migrations) {
    if (!a.from.valid() || !a.to.valid() ||
        !has_replica(a.partition, a.from) ||
        primary_of(a.partition) == a.from) {
      drop(DropReason::kInvalid);
      continue;
    }
    if (!can_accept(a.to, a.partition)) {
      drop(classify(a.to, a.partition));
      continue;
    }
    const ServerSpec& spec = world_.topology.server(a.from).spec;
    if (migration_bytes_[a.from.value()] + config_.unit_size() >
        spec.migration_bandwidth) {
      drop(DropReason::kBandwidth);
      continue;
    }
    migration_bytes_[a.from.value()] += config_.unit_size();
    remove_replica(a.partition, a.from);
    add_replica(a.partition, a.to);
    const double cost = transfer_cost(
        world_.topology.server(a.from).datacenter,
        world_.topology.server(a.to).datacenter, config_.unit_size(),
        spec.migration_bandwidth);
    report.migrations += 1;
    report.migration_cost += cost;
    report.applied.push_back(RefAppliedAction{
        ActionKind::kMigrate, a.partition, a.from, a.to, a.rule});
  }

  for (const ProposedSuicide& a : suicides) {
    if (!a.server.valid() || !has_replica(a.partition, a.server) ||
        primary_of(a.partition) == a.server ||
        (config_.redundancy == RedundancyMode::kErasure &&
         replicas_[a.partition.value()].size() <= config_.ec_k)) {
      // EC guard: never suicide a stripe down to (or below) k fragments.
      drop(DropReason::kInvalid);
      continue;
    }
    remove_replica(a.partition, a.server);
    report.suicides += 1;
    report.applied.push_back(RefAppliedAction{ActionKind::kSuicide,
                                              a.partition, a.server,
                                              ServerId::invalid(), a.rule});
  }
}

RefEpochReport ReferenceEngine::step() {
  RefEpochReport report;
  report.epoch = epoch_;

  QueryBatch batch = workload_->generate(epoch_, rng_workload_);
  if (traffic_multiplier_ != 1.0) {
    for (QueryFlow& flow : batch) flow.queries *= traffic_multiplier_;
  }
  propagate(batch);
  update_stats();

  report.total_queries = e_total_queries_;
  double unserved = 0.0;
  for (std::uint32_t pv = 0; pv < config_.partitions; ++pv) {
    unserved += e_unserved_[pv];
  }
  report.unserved_queries = unserved;
  report.mean_path_length = e_routed_queries_ > 0.0
                                ? e_path_hops_weighted_ / e_routed_queries_
                                : 0.0;

  std::vector<ProposedReplicate> replications;
  std::vector<ProposedMigrate> migrations;
  std::vector<ProposedSuicide> suicides;
  decide(replications, migrations, suicides);
  apply(replications, migrations, suicides, report);

  report.total_replicas = total_replicas_;
  ++epoch_;
  return report;
}

}  // namespace rfh
