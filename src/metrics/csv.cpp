#include "metrics/csv.h"

#include <algorithm>
#include <iomanip>

namespace rfh {

std::vector<double> extract(const std::vector<EpochMetrics>& series,
                            double EpochMetrics::* field) {
  std::vector<double> out;
  out.reserve(series.size());
  for (const EpochMetrics& m : series) out.push_back(m.*field);
  return out;
}

std::vector<double> extract_u32(const std::vector<EpochMetrics>& series,
                                std::uint32_t EpochMetrics::* field) {
  std::vector<double> out;
  out.reserve(series.size());
  for (const EpochMetrics& m : series) {
    out.push_back(static_cast<double>(m.*field));
  }
  return out;
}

void write_csv(std::ostream& out, const std::vector<NamedSeries>& series) {
  out << "epoch";
  std::size_t rows = 0;
  for (const NamedSeries& s : series) {
    out << ',' << s.name;
    rows = std::max(rows, s.values.size());
  }
  out << '\n';
  const auto flags = out.flags();
  out << std::fixed << std::setprecision(4);
  for (std::size_t row = 0; row < rows; ++row) {
    out << row;
    for (const NamedSeries& s : series) {
      out << ',';
      if (row < s.values.size()) out << s.values[row];
    }
    out << '\n';
  }
  out.flags(flags);
}

}  // namespace rfh
