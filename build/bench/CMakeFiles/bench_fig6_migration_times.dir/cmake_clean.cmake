file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_migration_times.dir/bench_fig6_migration_times.cpp.o"
  "CMakeFiles/bench_fig6_migration_times.dir/bench_fig6_migration_times.cpp.o.d"
  "bench_fig6_migration_times"
  "bench_fig6_migration_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_migration_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
