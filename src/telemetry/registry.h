// Labeled metric registry: counters, gauges and latency histograms.
//
// The second leg of observability (src/obs/ answers *what happened and
// why*; this answers *how much and how fast*). The model is the standard
// production-store shape — Dynamo-style systems instrument request rates
// and operation latencies the same way — reduced to what a single-threaded
// simulator needs:
//
//  * an instrument is (family name, label set) -> Counter / Gauge /
//    HistogramMetric;
//  * handles returned by counter()/gauge()/histogram() are stable for the
//    registry's lifetime, so hot paths resolve them once and bump a plain
//    double thereafter (no map lookup per event);
//  * snapshots export as Prometheus text format (histograms as summaries
//    with precomputed quantiles) or as one JSON document.
//
// Threading: a registry belongs to one Simulation, which is
// single-threaded (the comparative runner gives each policy its own), so
// no atomics or locks anywhere — identical to the EventBus contract.
#pragma once

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/histogram.h"

namespace rfh {

/// Label key/value pairs, e.g. {{"kind", "replicate"}}. Order is
/// significant: the same pairs in a different order name a different
/// series (instrumentation sites use literal lists, so this never bites).
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing value. Fractional increments are allowed
/// (query counts are weighted doubles throughout the simulator).
class Counter {
 public:
  void inc(double delta = 1.0) noexcept { value_ += delta; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Point-in-time value (replica census, current epoch, ...).
class Gauge {
 public:
  void set(double value) noexcept { value_ = value; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Weighted latency/duration distribution over common/histogram.h.
class HistogramMetric {
 public:
  void observe(double value, double weight = 1.0) noexcept {
    hist_.add(weight, value);
  }
  [[nodiscard]] const Histogram& histogram() const noexcept { return hist_; }

 private:
  Histogram hist_;
};

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Find-or-create the instrument for (name, labels). The returned
  /// reference stays valid for the registry's lifetime. Re-requesting an
  /// existing family with a different type asserts.
  Counter& counter(std::string_view name, MetricLabels labels = {},
                   std::string_view help = "");
  Gauge& gauge(std::string_view name, MetricLabels labels = {},
               std::string_view help = "");
  HistogramMetric& histogram(std::string_view name, MetricLabels labels = {},
                             std::string_view help = "");

  /// Lookup without creation (tests, exporters); nullptr when absent.
  [[nodiscard]] const Counter* find_counter(
      std::string_view name, const MetricLabels& labels = {}) const;
  [[nodiscard]] const Gauge* find_gauge(
      std::string_view name, const MetricLabels& labels = {}) const;
  [[nodiscard]] const HistogramMetric* find_histogram(
      std::string_view name, const MetricLabels& labels = {}) const;

  /// Total instruments across all families.
  [[nodiscard]] std::size_t size() const noexcept;
  [[nodiscard]] bool empty() const noexcept { return families_.empty(); }

  /// Prometheus text exposition format: # HELP / # TYPE headers, one
  /// sample line per instrument, histograms as summaries with
  /// Histogram::kSnapshotQuantiles plus _sum and _count.
  void write_prometheus(std::ostream& out) const;
  /// One JSON document: {"schema":"rfh-metrics/1","metrics":[...]}.
  void write_json(std::ostream& out) const;

 private:
  enum class Type { kCounter, kGauge, kHistogram };

  struct Instrument {
    MetricLabels labels;
    // Exactly one is set, matching the family type; unique_ptr keeps the
    // handle address stable while the vector grows.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> hist;
  };

  struct Family {
    std::string name;
    std::string help;
    Type type = Type::kCounter;
    std::vector<Instrument> instruments;  // insertion order
  };

  Family& family(std::string_view name, Type type, std::string_view help);
  Instrument& instrument(Family& fam, MetricLabels labels);
  [[nodiscard]] const Instrument* find(std::string_view name, Type type,
                                       const MetricLabels& labels) const;

  std::vector<Family> families_;  // insertion order, linear lookup
};

}  // namespace rfh
