#include "common/mathutil.h"

#include <cmath>

namespace rfh {

double mean(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double population_stddev(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  const double m = mean(values);
  double acc = 0.0;
  for (const double v : values) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values.size()));
}

double coefficient_of_variation(std::span<const double> values) noexcept {
  const double m = mean(values);
  if (m == 0.0) return 0.0;
  return population_stddev(values) / m;
}

double binomial(std::uint32_t n, std::uint32_t k) noexcept {
  if (k > n) return 0.0;
  if (k > n - k) k = n - k;
  double result = 1.0;
  for (std::uint32_t i = 0; i < k; ++i) {
    result = result * static_cast<double>(n - i) / static_cast<double>(i + 1);
  }
  return result;
}

}  // namespace rfh
