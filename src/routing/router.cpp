#include "routing/router.h"

#include "common/assert.h"
#include "ring/hash.h"
#include "ring/rendezvous.h"
#include "ring/ring.h"
#include "telemetry/registry.h"

namespace rfh {

Router::Router(const Topology& topology, const ShortestPaths& paths)
    : topology_(&topology), paths_(&paths) {
  RFH_ASSERT(topology.datacenter_count() == paths.size());
}

void Router::set_telemetry(MetricRegistry* registry) {
  if (registry == nullptr) {
    routes_ = nullptr;
    stages_ = nullptr;
    dead_skips_ = nullptr;
    memo_hit_counter_ = nullptr;
    memo_miss_counter_ = nullptr;
    return;
  }
  routes_ = &registry->counter("rfh_router_routes_total", {},
                               "Routes computed");
  stages_ = &registry->counter("rfh_router_route_stages_total", {},
                               "Datacenter stages across all routes");
  dead_skips_ = &registry->counter(
      "rfh_router_dead_dc_skips_total", {},
      "Transit datacenters skipped because no server was alive");
  memo_hit_counter_ = &registry->counter(
      "rfh_router_memo_hits_total", {}, "route() calls served from the memo");
  memo_miss_counter_ = &registry->counter(
      "rfh_router_memo_misses_total", {},
      "route() calls that recomputed (cold, invalidated or holder moved)");
}

void Router::set_memo_enabled(bool enabled) {
  memo_enabled_ = enabled;
  ++stamp_;  // drops every entry in O(1)
}

void Router::invalidate_routes() { ++stamp_; }

void Router::invalidate_routes_for(PartitionId partition) {
  if (partition.value() < partition_stamps_.size()) {
    ++partition_stamps_[partition.value()];
  }
  // No stamps row yet means no memo entries for this partition exist.
}

void Router::reserve_memo(std::size_t partitions) const {
  if (memo_rows_.size() < partitions) {
    memo_rows_.resize(partitions);
    partition_stamps_.resize(partitions, 0);
  }
}

Router::MemoEntry& Router::memo_slot(PartitionId partition,
                                     DatacenterId requester) const {
  if (partition.value() >= memo_rows_.size()) {
    // Serial-only growth path (concurrent users pre-size via
    // reserve_memo).
    reserve_memo(std::size_t{partition.value()} + 1);
  }
  std::vector<MemoEntry>& row = memo_rows_[partition.value()];
  if (row.empty()) row.resize(topology_->datacenter_count());
  RFH_ASSERT(requester.value() < row.size());
  return row[requester.value()];
}

ServerId Router::relay_for(PartitionId partition, DatacenterId dc,
                           std::span<const ServerId> live_servers) {
  const std::uint64_t key = hash_combine(HashRing::partition_key(partition),
                                         hash64(std::uint64_t{dc.value()}));
  return rendezvous_pick(key, live_servers);
}

void Router::compute(PartitionId partition, DatacenterId requester,
                     ServerId holder,
                     std::span<const std::vector<ServerId>> live_by_dc,
                     MemoEntry& entry) const {
  const DatacenterId holder_dc = topology_->server(holder).datacenter;
  const std::vector<DatacenterId> dc_path =
      paths_->path(requester, holder_dc);

  entry.holder = holder;
  entry.dead_skips = 0;
  Route& route = entry.route;
  route.stages.clear();
  route.holder = holder;
  route.stages.reserve(dc_path.size());

  std::uint32_t hops = 1;  // client -> requester-DC relay
  double latency = kHopLatencyMs;
  for (const DatacenterId dc : dc_path) {
    RFH_ASSERT(dc.value() < live_by_dc.size());
    // Prefixes of a shortest path are shortest paths, so the cumulative
    // fibre distance to this stage is the all-pairs distance.
    latency = kHopLatencyMs * hops +
              paths_->distance_km(requester, dc) / kFibreKmPerMs;
    const std::vector<ServerId>& live = live_by_dc[dc.value()];
    if (live.empty()) {
      // Dead datacenter: traffic passes through its backbone router but no
      // server can absorb or be a hub there.
      ++entry.dead_skips;
      ++hops;
      continue;
    }
    const ServerId relay = dc == holder_dc
                               ? holder
                               : relay_for(partition, dc, live);
    route.stages.push_back(RouteStage{dc, relay, hops, latency});
    ++hops;
  }
  // Final descent from the holder datacenter's relay to the owning server.
  route.total_hops = hops;
  route.total_latency_ms = latency + kHopLatencyMs;
}

const Route& Router::route(
    PartitionId partition, DatacenterId requester, ServerId holder,
    std::span<const std::vector<ServerId>> live_by_dc, RouteCtx& ctx) const {
  RFH_ASSERT(holder.valid());

  MemoEntry* entry = nullptr;
  bool hit = false;
  if (memo_enabled_) {
    MemoEntry& slot = memo_slot(partition, requester);
    // A populated entry is only trusted when both stamps are current and
    // the primary it was computed for still holds the partition; the
    // owner bumps the stamps on every liveness/link/placement change
    // (DESIGN.md §11), so the holder check is the last line of defence
    // rather than the invalidation mechanism.
    hit = slot.stamp == stamp_ &&
          slot.partition_stamp == partition_stamps_[partition.value()] &&
          slot.holder == holder && !slot.route.stages.empty();
    entry = &slot;
  } else {
    entry = &ctx.scratch;
  }
  if (!hit) {
    compute(partition, requester, holder, live_by_dc, *entry);
    if (memo_enabled_) {
      entry->stamp = stamp_;
      entry->partition_stamp = partition_stamps_[partition.value()];
    }
    ++ctx.memo_misses;
  } else {
    ++ctx.memo_hits;
  }
  // Telemetry is replayed identically for hits and misses, so counter
  // totals are bit-identical with the memo on or off.
  ctx.dead_skips += entry->dead_skips;
  ++ctx.routes;
  ctx.stages += entry->route.stages.size();
  return entry->route;
}

const Route& Router::route(
    PartitionId partition, DatacenterId requester, ServerId holder,
    std::span<const std::vector<ServerId>> live_by_dc) const {
  const Route& result =
      route(partition, requester, holder, live_by_dc, serial_ctx_);
  flush_counts(serial_ctx_);
  return result;
}

void Router::flush_counts(RouteCtx& ctx) const {
  memo_hits_ += ctx.memo_hits;
  memo_misses_ += ctx.memo_misses;
  // Counters hold integer-valued doubles; batching shard tallies into one
  // inc() is exact below 2^53, so totals match the per-route serial incs.
  if (memo_hit_counter_ != nullptr && ctx.memo_hits > 0) {
    memo_hit_counter_->inc(static_cast<double>(ctx.memo_hits));
  }
  if (memo_miss_counter_ != nullptr && ctx.memo_misses > 0) {
    memo_miss_counter_->inc(static_cast<double>(ctx.memo_misses));
  }
  if (dead_skips_ != nullptr && ctx.dead_skips > 0) {
    dead_skips_->inc(static_cast<double>(ctx.dead_skips));
  }
  if (routes_ != nullptr && ctx.routes > 0) {
    routes_->inc(static_cast<double>(ctx.routes));
    stages_->inc(static_cast<double>(ctx.stages));
  }
  ctx.memo_hits = 0;
  ctx.memo_misses = 0;
  ctx.routes = 0;
  ctx.stages = 0;
  ctx.dead_skips = 0;
}

}  // namespace rfh
