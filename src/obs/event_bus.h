// A minimal publish/subscribe bus for simulator events.
//
// Zero-cost when disabled: with no sinks installed, emit() compiles to a
// vector-emptiness check and returns before the Event variant is even
// constructed (the arguments are built lazily by the caller through the
// RFH_OBS_EMIT macro or a guarded `if (bus.enabled())`). With sinks
// installed, every event is dispatched synchronously, in installation
// order — the bus itself never buffers, so a sink sees events exactly
// when they happen and a crashing run still has its trace up to the
// crash point.
//
// Threading: a bus belongs to one Simulation, which is single-threaded;
// the comparative runner gives each policy its own Simulation (and bus),
// so no locking is needed anywhere.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "obs/events.h"

namespace rfh {

/// Interface every trace consumer implements.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void on_event(const Event& event) = 0;
  /// Called when the producer is done (end of run / bus teardown). Sinks
  /// writing framed formats (e.g. the Chrome JSON array) finalize here;
  /// flush() must be idempotent.
  virtual void flush() {}
};

class EventBus {
 public:
  EventBus() = default;
  EventBus(const EventBus&) = delete;
  EventBus& operator=(const EventBus&) = delete;
  EventBus(EventBus&&) = default;
  EventBus& operator=(EventBus&&) = default;
  ~EventBus() {
    for (const std::unique_ptr<EventSink>& sink : owned_) sink->flush();
  }

  /// Install a non-owning sink (caller keeps it alive past the last emit).
  void add_sink(EventSink* sink) {
    if (sink != nullptr) sinks_.push_back(sink);
  }
  /// Install an owning sink (destroyed with the bus, after a final flush).
  void add_sink(std::unique_ptr<EventSink> sink) {
    if (sink == nullptr) return;
    sinks_.push_back(sink.get());
    owned_.push_back(std::move(sink));
  }

  /// True when at least one sink is installed. Instrumentation sites with
  /// non-trivial event construction should guard on this.
  [[nodiscard]] bool enabled() const noexcept { return !sinks_.empty(); }

  [[nodiscard]] std::size_t sink_count() const noexcept {
    return sinks_.size();
  }

  /// Publish one event to every sink. Accepts any Event alternative by
  /// value; the variant is only materialized when a sink is listening.
  template <typename E>
  void emit(E&& event) {
    if (sinks_.empty()) return;
    dispatch(Event(std::forward<E>(event)));
  }

  /// Flush every sink (idempotent). Call before tearing down non-owning
  /// sinks; the destructor only flushes sinks the bus owns, because a
  /// non-owning sink declared after the bus is already gone by then.
  void close() {
    for (EventSink* sink : sinks_) sink->flush();
  }

 private:
  void dispatch(const Event& event) {
    for (EventSink* sink : sinks_) sink->on_event(event);
  }

  std::vector<EventSink*> sinks_;
  std::vector<std::unique_ptr<EventSink>> owned_;
};

}  // namespace rfh
