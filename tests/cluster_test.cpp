#include "sim/cluster.h"

#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "topology/world.h"

namespace rfh {
namespace {

class ClusterTest : public ::testing::Test {
 protected:
  ClusterTest() : world_(build_paper_world()) {
    config_.partitions = 8;
    config_.partition_size = kib(512);
    cluster_ = std::make_unique<ClusterState>(world_.topology, config_);
  }

  World world_;
  SimConfig config_;
  std::unique_ptr<ClusterState> cluster_;
};

TEST_F(ClusterTest, StartsEmptyAndFullyAlive) {
  EXPECT_EQ(cluster_->total_replicas(), 0u);
  EXPECT_EQ(cluster_->live_server_count(), 100u);
  for (const Server& s : world_.topology.servers()) {
    EXPECT_TRUE(cluster_->alive(s.id));
    EXPECT_EQ(cluster_->storage_used(s.id), 0u);
    EXPECT_EQ(cluster_->copies_on(s.id), 0u);
  }
  cluster_->check_invariants();
}

TEST_F(ClusterTest, AddRemoveReplicaBalancesAccounting) {
  const PartitionId p{0};
  cluster_->add_replica(p, ServerId{5}, /*primary=*/true);
  cluster_->add_replica(p, ServerId{17});
  EXPECT_EQ(cluster_->replica_count(p), 2u);
  EXPECT_EQ(cluster_->total_replicas(), 2u);
  EXPECT_EQ(cluster_->storage_used(ServerId{5}), config_.partition_size);
  EXPECT_EQ(cluster_->copies_on(ServerId{17}), 1u);
  EXPECT_TRUE(cluster_->has_replica(p, ServerId{17}));
  cluster_->check_invariants();

  cluster_->remove_replica(p, ServerId{17});
  EXPECT_EQ(cluster_->replica_count(p), 1u);
  EXPECT_EQ(cluster_->storage_used(ServerId{17}), 0u);
  EXPECT_FALSE(cluster_->has_replica(p, ServerId{17}));
  cluster_->check_invariants();
}

TEST_F(ClusterTest, PrimaryTracking) {
  const PartitionId p{1};
  EXPECT_FALSE(cluster_->primary_of(p).valid());
  cluster_->add_replica(p, ServerId{3}, /*primary=*/true);
  cluster_->add_replica(p, ServerId{4});
  EXPECT_EQ(cluster_->primary_of(p), ServerId{3});
  cluster_->set_primary(p, ServerId{4});
  EXPECT_EQ(cluster_->primary_of(p), ServerId{4});
  cluster_->check_invariants();
}

TEST_F(ClusterTest, CanAcceptRejectsDuplicatesAndDead) {
  const PartitionId p{0};
  cluster_->add_replica(p, ServerId{5}, true);
  EXPECT_FALSE(cluster_->can_accept(ServerId{5}, p));  // already hosting
  EXPECT_TRUE(cluster_->can_accept(ServerId{6}, p));
  cluster_->kill_server(ServerId{6});
  EXPECT_FALSE(cluster_->can_accept(ServerId{6}, p));  // dead
}

TEST_F(ClusterTest, CanAcceptEnforcesStorageLimit) {
  // Tiny disks: capacity for exactly 2 copies under the 70% limit.
  WorldOptions options =
      WorldOptions{};
  options.storage_capacity_lo = 3 * config_.partition_size;
  options.storage_capacity_hi = 3 * config_.partition_size;
  const World tiny = build_paper_world(options);
  ClusterState cluster(tiny.topology, config_);
  // 70% of 3 * 512K = 1.05M; one copy (512K) fits, two (1024K) fit,
  // three (1536K) exceed it.
  cluster.add_replica(PartitionId{0}, ServerId{0}, true);
  EXPECT_TRUE(cluster.can_accept(ServerId{0}, PartitionId{1}));
  cluster.add_replica(PartitionId{1}, ServerId{0}, true);
  EXPECT_FALSE(cluster.can_accept(ServerId{0}, PartitionId{2}));
}

TEST_F(ClusterTest, CanAcceptEnforcesVnodeCap) {
  WorldOptions options;
  options.max_vnodes = 2;
  const World tiny = build_paper_world(options);
  ClusterState cluster(tiny.topology, config_);
  cluster.add_replica(PartitionId{0}, ServerId{0}, true);
  cluster.add_replica(PartitionId{1}, ServerId{0}, true);
  EXPECT_FALSE(cluster.can_accept(ServerId{0}, PartitionId{2}));
}

TEST_F(ClusterTest, HostsInDcOrdersPrimaryLast) {
  const PartitionId p{0};
  const DatacenterId dc = world_.dc[0];
  const auto& servers = world_.topology.servers_in(dc);
  cluster_->add_replica(p, servers[3], /*primary=*/true);
  cluster_->add_replica(p, servers[1]);
  cluster_->add_replica(p, servers[2]);
  const auto hosts = cluster_->hosts_in_dc(p, dc);
  ASSERT_EQ(hosts.size(), 3u);
  EXPECT_EQ(hosts[0], servers[1]);  // non-primaries ascending
  EXPECT_EQ(hosts[1], servers[2]);
  EXPECT_EQ(hosts[2], servers[3]);  // primary last
}

TEST_F(ClusterTest, KillServerDropsCopiesAndReportsThem) {
  const PartitionId p0{0};
  const PartitionId p1{1};
  cluster_->add_replica(p0, ServerId{10}, true);
  cluster_->add_replica(p1, ServerId{10});
  cluster_->add_replica(p1, ServerId{11}, true);

  const auto lost = cluster_->kill_server(ServerId{10});
  ASSERT_EQ(lost.size(), 2u);
  EXPECT_EQ(lost[0].partition, p0);
  EXPECT_TRUE(lost[0].was_primary);
  EXPECT_EQ(lost[1].partition, p1);
  EXPECT_FALSE(lost[1].was_primary);

  EXPECT_FALSE(cluster_->alive(ServerId{10}));
  EXPECT_EQ(cluster_->live_server_count(), 99u);
  EXPECT_EQ(cluster_->replica_count(p0), 0u);
  EXPECT_EQ(cluster_->storage_used(ServerId{10}), 0u);
  EXPECT_FALSE(cluster_->ring().contains(ServerId{10}));
  cluster_->check_invariants();
}

TEST_F(ClusterTest, BatchedKillMatchesSequentialKills) {
  const PartitionId p0{0};
  const PartitionId p1{1};
  cluster_->add_replica(p0, ServerId{10}, true);
  cluster_->add_replica(p0, ServerId{20});
  cluster_->add_replica(p1, ServerId{20}, true);
  cluster_->add_replica(p1, ServerId{30});

  const std::vector<ServerId> wave{ServerId{10}, ServerId{20}, ServerId{30}};
  std::vector<ServerId> order;
  std::vector<ClusterState::LostCopy> losses;
  cluster_->kill_servers(
      wave, [&](ServerId s, std::span<const ClusterState::LostCopy> lost) {
        order.push_back(s);
        // Mid-batch, liveness and copies are already gone for this victim.
        EXPECT_FALSE(cluster_->alive(s));
        EXPECT_EQ(cluster_->copies_on(s), 0u);
        losses.insert(losses.end(), lost.begin(), lost.end());
      });

  // Victim order and the per-victim ascending-partition loss report match
  // what sequential kill_server calls produce.
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], ServerId{10});
  EXPECT_EQ(order[1], ServerId{20});
  EXPECT_EQ(order[2], ServerId{30});
  ASSERT_EQ(losses.size(), 4u);
  EXPECT_EQ(losses[0].partition, p0);
  EXPECT_TRUE(losses[0].was_primary);
  EXPECT_EQ(losses[1].partition, p0);
  EXPECT_FALSE(losses[1].was_primary);
  EXPECT_EQ(losses[2].partition, p1);
  EXPECT_TRUE(losses[2].was_primary);
  EXPECT_EQ(losses[3].partition, p1);
  EXPECT_FALSE(losses[3].was_primary);

  EXPECT_EQ(cluster_->live_server_count(), 97u);
  for (const ServerId s : wave) {
    EXPECT_FALSE(cluster_->ring().contains(s));
  }
  cluster_->check_invariants();
}

TEST_F(ClusterTest, BatchedReviveMatchesSequentialRevives) {
  const std::vector<ServerId> wave{ServerId{10}, ServerId{20}, ServerId{30}};
  cluster_->kill_servers(wave, nullptr);
  EXPECT_EQ(cluster_->live_server_count(), 97u);
  cluster_->revive_servers(wave);
  EXPECT_EQ(cluster_->live_server_count(), 100u);
  for (const ServerId s : wave) {
    EXPECT_TRUE(cluster_->alive(s));
    EXPECT_TRUE(cluster_->ring().contains(s));
  }
  cluster_->check_invariants();
}

TEST_F(ClusterTest, LiveByDcExcludesDeadServers) {
  const DatacenterId dc = world_.topology.server(ServerId{10}).datacenter;
  const std::size_t before = cluster_->live_by_dc()[dc.value()].size();
  cluster_->kill_server(ServerId{10});
  EXPECT_EQ(cluster_->live_by_dc()[dc.value()].size(), before - 1);
}

TEST_F(ClusterTest, ReviveRestoresMembership) {
  cluster_->kill_server(ServerId{10});
  cluster_->revive_server(ServerId{10});
  EXPECT_TRUE(cluster_->alive(ServerId{10}));
  EXPECT_EQ(cluster_->live_server_count(), 100u);
  EXPECT_TRUE(cluster_->ring().contains(ServerId{10}));
  EXPECT_TRUE(cluster_->can_accept(ServerId{10}, PartitionId{0}));
  cluster_->check_invariants();
}

TEST_F(ClusterTest, StorageFraction) {
  WorldOptions options;
  options.storage_capacity_lo = 10 * config_.partition_size;
  options.storage_capacity_hi = 10 * config_.partition_size;
  const World tiny = build_paper_world(options);
  ClusterState cluster(tiny.topology, config_);
  EXPECT_DOUBLE_EQ(cluster.storage_fraction(ServerId{0}), 0.0);
  cluster.add_replica(PartitionId{0}, ServerId{0}, true);
  EXPECT_NEAR(cluster.storage_fraction(ServerId{0}), 0.1, 1e-12);
}

TEST_F(ClusterTest, DeathOnMisuse) {
  const PartitionId p{0};
  cluster_->add_replica(p, ServerId{5}, true);
  EXPECT_DEATH(cluster_->add_replica(p, ServerId{5}), "");  // duplicate
  EXPECT_DEATH(cluster_->add_replica(p, ServerId{6}, true),
               "");  // second primary
  EXPECT_DEATH(cluster_->remove_replica(p, ServerId{7}), "");  // absent
  EXPECT_DEATH(cluster_->set_primary(p, ServerId{7}), "");
  cluster_->kill_server(ServerId{9});
  EXPECT_DEATH(cluster_->add_replica(p, ServerId{9}), "");  // dead target
  EXPECT_DEATH(cluster_->kill_server(ServerId{9}), "");     // already dead
  EXPECT_DEATH(cluster_->revive_server(ServerId{5}), "");   // already alive
}

}  // namespace
}  // namespace rfh
