#include "workload/generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "topology/world.h"

namespace rfh {
namespace {

double batch_total(const QueryBatch& batch) {
  double total = 0.0;
  for (const QueryFlow& flow : batch) total += flow.queries;
  return total;
}

WorkloadParams small_params() {
  WorkloadParams p;
  p.partitions = 16;
  p.datacenters = 10;
  p.mean_queries_per_epoch = 300.0;
  p.zipf_exponent = 0.8;
  return p;
}

TEST(UniformWorkload, TotalMatchesPoissonMean) {
  UniformWorkload workload(small_params());
  Rng rng(21);
  double total = 0.0;
  const int epochs = 300;
  for (Epoch e = 0; e < epochs; ++e) {
    total += batch_total(workload.generate(e, rng));
  }
  EXPECT_NEAR(total / epochs, 300.0, 5.0);
}

TEST(UniformWorkload, FlowsAreAggregatedAndValid) {
  UniformWorkload workload(small_params());
  Rng rng(22);
  const QueryBatch batch = workload.generate(0, rng);
  std::map<std::pair<std::uint32_t, std::uint32_t>, int> seen;
  for (const QueryFlow& flow : batch) {
    EXPECT_LT(flow.partition.value(), 16u);
    EXPECT_LT(flow.requester.value(), 10u);
    EXPECT_GT(flow.queries, 0.0);
    ++seen[{flow.partition.value(), flow.requester.value()}];
  }
  for (const auto& [key, count] : seen) {
    EXPECT_EQ(count, 1) << "duplicate flow for partition " << key.first;
  }
}

TEST(UniformWorkload, RequestersRoughlyUniform) {
  UniformWorkload workload(small_params());
  Rng rng(23);
  std::vector<double> per_dc(10, 0.0);
  double total = 0.0;
  for (Epoch e = 0; e < 200; ++e) {
    for (const QueryFlow& flow : workload.generate(e, rng)) {
      per_dc[flow.requester.value()] += flow.queries;
      total += flow.queries;
    }
  }
  for (const double share : per_dc) {
    EXPECT_NEAR(share / total, 0.1, 0.02);
  }
}

TEST(UniformWorkload, ZipfSkewsPartitions) {
  WorkloadParams p = small_params();
  p.zipf_exponent = 1.0;
  UniformWorkload workload(p);
  Rng rng(24);
  std::vector<double> per_partition(p.partitions, 0.0);
  for (Epoch e = 0; e < 200; ++e) {
    for (const QueryFlow& flow : workload.generate(e, rng)) {
      per_partition[flow.partition.value()] += flow.queries;
    }
  }
  EXPECT_GT(per_partition[0], 3.0 * per_partition[p.partitions - 1]);
}

TEST(UniformWorkload, DeterministicUnderSameRngState) {
  UniformWorkload w1(small_params());
  UniformWorkload w2(small_params());
  Rng rng1(25);
  Rng rng2(25);
  for (Epoch e = 0; e < 5; ++e) {
    const QueryBatch b1 = w1.generate(e, rng1);
    const QueryBatch b2 = w2.generate(e, rng2);
    ASSERT_EQ(b1.size(), b2.size());
    for (std::size_t i = 0; i < b1.size(); ++i) {
      EXPECT_EQ(b1[i].partition, b2[i].partition);
      EXPECT_EQ(b1[i].requester, b2[i].requester);
      EXPECT_DOUBLE_EQ(b1[i].queries, b2[i].queries);
    }
  }
}

class FlashCrowdTest : public ::testing::Test {
 protected:
  FlashCrowdTest() : world_(build_paper_world()) {}

  FlashCrowdWorkload make(Epoch total_epochs) {
    return FlashCrowdWorkload(small_params(),
                              FlashCrowdWorkload::paper_stages(world_.dc),
                              total_epochs);
  }

  World world_;
};

TEST_F(FlashCrowdTest, StageBoundariesAreQuarters) {
  FlashCrowdWorkload workload = make(400);
  EXPECT_EQ(workload.stage_at(0), 0u);
  EXPECT_EQ(workload.stage_at(99), 0u);
  EXPECT_EQ(workload.stage_at(100), 1u);
  EXPECT_EQ(workload.stage_at(199), 1u);
  EXPECT_EQ(workload.stage_at(200), 2u);
  EXPECT_EQ(workload.stage_at(300), 3u);
  EXPECT_EQ(workload.stage_at(399), 3u);
  EXPECT_EQ(workload.stage_at(1000), 3u);  // beyond horizon: last stage
}

TEST_F(FlashCrowdTest, HotDatacentersGetEightyPercent) {
  FlashCrowdWorkload workload = make(400);
  Rng rng(26);
  double hot = 0.0;
  double total = 0.0;
  for (Epoch e = 0; e < 80; ++e) {  // stage 1: H, I, J hot
    for (const QueryFlow& flow : workload.generate(e, rng)) {
      total += flow.queries;
      if (flow.requester == world_.by_letter('H') ||
          flow.requester == world_.by_letter('I') ||
          flow.requester == world_.by_letter('J')) {
        hot += flow.queries;
      }
    }
  }
  EXPECT_NEAR(hot / total, 0.8, 0.03);
}

TEST_F(FlashCrowdTest, SecondStageMovesTheCrowd) {
  FlashCrowdWorkload workload = make(400);
  Rng rng(27);
  double hot_abc = 0.0;
  double total = 0.0;
  for (Epoch e = 110; e < 190; ++e) {  // stage 2: A, B, C hot
    for (const QueryFlow& flow : workload.generate(e, rng)) {
      total += flow.queries;
      if (flow.requester == world_.by_letter('A') ||
          flow.requester == world_.by_letter('B') ||
          flow.requester == world_.by_letter('C')) {
        hot_abc += flow.queries;
      }
    }
  }
  EXPECT_NEAR(hot_abc / total, 0.8, 0.03);
}

TEST_F(FlashCrowdTest, FinalStageIsUniform) {
  FlashCrowdWorkload workload = make(400);
  Rng rng(28);
  std::vector<double> per_dc(10, 0.0);
  double total = 0.0;
  for (Epoch e = 310; e < 400; ++e) {
    for (const QueryFlow& flow : workload.generate(e, rng)) {
      per_dc[flow.requester.value()] += flow.queries;
      total += flow.queries;
    }
  }
  for (const double share : per_dc) {
    EXPECT_NEAR(share / total, 0.1, 0.03);
  }
}

TEST_F(FlashCrowdTest, PaperStagesHaveExpectedShape) {
  const auto stages = FlashCrowdWorkload::paper_stages(world_.dc);
  ASSERT_EQ(stages.size(), 4u);
  EXPECT_EQ(stages[0].hot_dcs.size(), 3u);
  EXPECT_EQ(stages[3].hot_dcs.size(), 0u);  // uniform
  EXPECT_DOUBLE_EQ(stages[0].hot_share, 0.8);
  EXPECT_EQ(stages[0].hot_dcs[0], world_.by_letter('H'));
  EXPECT_EQ(stages[1].hot_dcs[0], world_.by_letter('A'));
  EXPECT_EQ(stages[2].hot_dcs[0], world_.by_letter('E'));
}

TEST(HotspotShiftWorkload, RotationMovesTheHotPartition) {
  WorkloadParams p;
  p.partitions = 16;
  p.datacenters = 10;
  p.zipf_exponent = 1.2;
  HotspotShiftWorkload workload(p, /*phase_epochs=*/50, /*shift=*/4);
  Rng rng(29);

  auto hottest_during = [&](Epoch lo, Epoch hi) {
    std::vector<double> per_partition(p.partitions, 0.0);
    for (Epoch e = lo; e < hi; ++e) {
      for (const QueryFlow& flow : workload.generate(e, rng)) {
        per_partition[flow.partition.value()] += flow.queries;
      }
    }
    return static_cast<std::uint32_t>(
        std::max_element(per_partition.begin(), per_partition.end()) -
        per_partition.begin());
  };

  const std::uint32_t first = hottest_during(0, 50);
  const std::uint32_t second = hottest_during(50, 100);
  EXPECT_EQ(first, 0u);
  EXPECT_EQ(second, 4u);  // rotated by shift_per_phase
}

TEST(DiurnalWorkload, MeanSwingsSinusoidally) {
  WorkloadParams p = small_params();
  DiurnalWorkload workload(p, /*period_epochs=*/100, /*amplitude=*/0.6);
  // Analytic means: peak at t=25, trough at t=75.
  EXPECT_NEAR(workload.mean_at(0), 300.0, 1e-9);
  EXPECT_NEAR(workload.mean_at(25), 480.0, 1e-9);
  EXPECT_NEAR(workload.mean_at(75), 120.0, 1e-9);
  // Periodicity.
  EXPECT_DOUBLE_EQ(workload.mean_at(25), workload.mean_at(125));
}

TEST(DiurnalWorkload, SampledTotalsTrackTheModulatedMean) {
  WorkloadParams p = small_params();
  DiurnalWorkload workload(p, 100, 0.6);
  Rng rng(61);
  double peak = 0.0;
  double trough = 0.0;
  const int reps = 40;
  for (int r = 0; r < reps; ++r) {
    peak += batch_total(workload.generate(25, rng));
    trough += batch_total(workload.generate(75, rng));
  }
  EXPECT_NEAR(peak / reps, 480.0, 25.0);
  EXPECT_NEAR(trough / reps, 120.0, 15.0);
}

TEST(SpikeWorkload, SpikesAtThePeriodAndNowhereElse) {
  WorkloadParams p = small_params();
  SpikeWorkload workload(p, /*spike_period=*/40, /*factor=*/10.0,
                         /*width=*/2);
  EXPECT_TRUE(workload.is_spike(0));
  EXPECT_TRUE(workload.is_spike(1));
  EXPECT_FALSE(workload.is_spike(2));
  EXPECT_FALSE(workload.is_spike(39));
  EXPECT_TRUE(workload.is_spike(40));
  EXPECT_TRUE(workload.is_spike(80));
}

TEST(SpikeWorkload, SpikeEpochsCarryTenfoldDemand) {
  WorkloadParams p = small_params();
  SpikeWorkload workload(p, 40, 10.0);
  Rng rng(62);
  double base = 0.0;
  double spike = 0.0;
  const int reps = 30;
  for (int r = 0; r < reps; ++r) {
    base += batch_total(workload.generate(5, rng));
    spike += batch_total(workload.generate(0, rng));
  }
  EXPECT_NEAR(base / reps, 300.0, 25.0);
  EXPECT_NEAR(spike / reps, 3000.0, 120.0);
}

TEST(SpikeWorkloadDeath, RejectsBadParameters) {
  WorkloadParams p = small_params();
  EXPECT_DEATH(SpikeWorkload(p, 1, 10.0, 1), "");   // period <= width
  EXPECT_DEATH(SpikeWorkload(p, 40, 0.5), "");      // factor < 1
  EXPECT_DEATH(SpikeWorkload(p, 40, 10.0, 0), "");  // zero width
}

TEST(DiurnalWorkloadDeath, RejectsBadParameters) {
  WorkloadParams p = small_params();
  EXPECT_DEATH(DiurnalWorkload(p, 0, 0.5), "");
  EXPECT_DEATH(DiurnalWorkload(p, 100, 1.0), "");
  EXPECT_DEATH(DiurnalWorkload(p, 100, -0.1), "");
}

TEST(SampleBatch, RotationWrapsModuloPartitions) {
  WorkloadParams p = small_params();
  ZipfSampler zipf(p.partitions, 5.0);  // extreme skew: almost surely rank 0
  const std::vector<double> weights(10, 1.0);
  Rng rng(30);
  const QueryBatch batch = sample_batch(200.0, zipf, weights,
                                        /*rotation=*/p.partitions + 2, rng);
  double rotated = 0.0;
  double total = 0.0;
  for (const QueryFlow& flow : batch) {
    total += flow.queries;
    if (flow.partition == PartitionId{2}) rotated += flow.queries;
  }
  EXPECT_GT(rotated / total, 0.9);
}

}  // namespace
}  // namespace rfh
