#include "check/case.h"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

namespace rfh {

namespace {

constexpr std::string_view kSchema = "rfh-check-case/1";

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: out += c; break;
    }
  }
  out += '"';
}

/// Tokenizing parser for one flat JSON object of string / number / bool
/// values. Nested containers are rejected — the case format never needs
/// them, and refusing keeps the grammar unambiguous.
class FlatJsonParser {
 public:
  explicit FlatJsonParser(std::string_view text) : text_(text) {}

  /// Parse into key -> raw value; strings are unescaped, numbers and
  /// booleans are kept as their literal spelling.
  bool parse(std::map<std::string, std::string>& fields,
             std::map<std::string, bool>& is_string, std::string& error) {
    skip_ws();
    if (!consume('{')) return fail(error, "expected '{'");
    skip_ws();
    if (consume('}')) return finish(error);
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key, error)) return false;
      skip_ws();
      if (!consume(':')) return fail(error, "expected ':' after key");
      skip_ws();
      std::string value;
      bool quoted = false;
      if (!parse_value(value, quoted, error)) return false;
      if (fields.contains(key)) return fail(error, "duplicate key '" + key + "'");
      fields.emplace(key, std::move(value));
      is_string.emplace(key, quoted);
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return finish(error);
      return fail(error, "expected ',' or '}'");
    }
  }

 private:
  bool finish(std::string& error) {
    skip_ws();
    if (pos_ != text_.size()) return fail(error, "trailing characters");
    return true;
  }

  bool fail(std::string& error, std::string message) {
    error = "offset " + std::to_string(pos_) + ": " + std::move(message);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_string(std::string& out, std::string& error) {
    if (!consume('"')) return fail(error, "expected '\"'");
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        default:
          return fail(error, std::string("unsupported escape '\\") + esc + "'");
      }
    }
    return fail(error, "unterminated string");
  }

  bool parse_value(std::string& out, bool& quoted, std::string& error) {
    if (pos_ < text_.size() && text_[pos_] == '"') {
      quoted = true;
      return parse_string(out, error);
    }
    quoted = false;
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ',' || c == '}' || c == ' ' || c == '\t' || c == '\n' ||
          c == '\r') {
        break;
      }
      if (c == '{' || c == '[') return fail(error, "nested values unsupported");
      ++pos_;
    }
    if (pos_ == start) return fail(error, "empty value");
    out.assign(text_.substr(start, pos_ - start));
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

bool parse_u64_field(const std::string& text, std::uint64_t& out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

bool parse_double_field(const std::string& text, double& out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

}  // namespace

const char* workload_kind_name(WorkloadKind kind) noexcept {
  switch (kind) {
    case WorkloadKind::kUniform: return "uniform";
    case WorkloadKind::kFlashCrowd: return "flash";
    case WorkloadKind::kHotspotShift: return "hotspot";
    case WorkloadKind::kStream: return "stream";
  }
  return "?";
}

Scenario CheckCase::to_scenario() const {
  Scenario s = Scenario::paper_random_query();
  s.workload = workload;
  s.epochs = epochs;
  s.zipf_exponent = zipf;
  s.fault_plan = fault_plan;
  s.world = WorldOptions{};
  s.world.rooms_per_datacenter = rooms_per_datacenter;
  s.world.racks_per_room = racks_per_room;
  s.world.servers_per_rack = servers_per_rack;
  s.world.seed = seed;
  s.sim = SimConfig{};
  s.sim.seed = seed;
  s.sim.partitions = partitions;
  s.sim.alpha = alpha;
  s.sim.alpha_weights_history = alpha_weights_history;
  s.sim.beta = beta;
  s.sim.gamma = gamma;
  s.sim.delta = delta;
  s.sim.mu = mu;
  s.sim.storage_limit = phi;
  s.sim.failure_rate = failure_rate;
  s.sim.min_availability = min_availability;
  s.sim.redundancy = redundancy;
  s.sim.ec_k = ec_k;
  s.sim.ec_m = ec_m;
  return s;
}

std::string CheckCase::to_json() const {
  std::string out = "{\n";
  const auto field = [&](const char* key, const std::string& value,
                         bool is_str, bool last = false) {
    out += "  ";
    append_json_string(out, key);
    out += ": ";
    if (is_str) {
      append_json_string(out, value);
    } else {
      out += value;
    }
    if (!last) out += ',';
    out += '\n';
  };
  field("schema", std::string(kSchema), true);
  field("seed", std::to_string(seed), false);
  field("rooms_per_datacenter", std::to_string(rooms_per_datacenter), false);
  field("racks_per_room", std::to_string(racks_per_room), false);
  field("servers_per_rack", std::to_string(servers_per_rack), false);
  field("partitions", std::to_string(partitions), false);
  field("epochs", std::to_string(epochs), false);
  field("workload", workload_kind_name(workload), true);
  field("zipf", format_double(zipf), false);
  field("alpha", format_double(alpha), false);
  field("alpha_weights_history", alpha_weights_history ? "true" : "false",
        false);
  field("beta", format_double(beta), false);
  field("gamma", format_double(gamma), false);
  field("delta", format_double(delta), false);
  field("mu", format_double(mu), false);
  field("phi", format_double(phi), false);
  field("failure_rate", format_double(failure_rate), false);
  field("min_availability", format_double(min_availability), false);
  // Emitted only when non-default so every pre-EC corpus file stays a
  // byte-identical round-trip.
  if (redundancy != RedundancyMode::kReplica) {
    SimConfig spec;
    spec.redundancy = redundancy;
    spec.ec_k = ec_k;
    spec.ec_m = ec_m;
    field("redundancy", redundancy_spec(spec), true);
  }
  field("fault_plan", fault_plan.empty() ? std::string() : fault_plan.serialize(),
        true, /*last=*/true);
  out += "}\n";
  return out;
}

CheckCase::ParseResult CheckCase::from_json(std::string_view text) {
  ParseResult result;
  std::map<std::string, std::string> fields;
  std::map<std::string, bool> is_string;
  FlatJsonParser parser(text);
  if (!parser.parse(fields, is_string, result.error)) return result;

  const auto fail = [&](std::string message) {
    result.ok = false;
    result.error = std::move(message);
    return result;
  };

  const auto it = fields.find("schema");
  if (it == fields.end() || it->second != kSchema) {
    return fail("missing or unknown schema (want \"" + std::string(kSchema) +
                "\")");
  }

  CheckCase& c = result.value;
  for (const auto& [key, raw] : fields) {
    const bool quoted = is_string.at(key);
    const auto want_plain = [&](const char* what) {
      return !quoted ? std::string()
                     : "field '" + key + "' expects a " + what +
                           ", got a string";
    };
    std::string err;
    if (key == "schema") {
      continue;
    } else if (key == "seed" || key == "rooms_per_datacenter" ||
               key == "racks_per_room" || key == "servers_per_rack" ||
               key == "partitions" || key == "epochs") {
      err = want_plain("non-negative integer");
      std::uint64_t v = 0;
      if (err.empty() && !parse_u64_field(raw, v)) {
        err = "field '" + key + "' expects an integer, got '" + raw + "'";
      }
      if (err.empty()) {
        if (key == "seed") c.seed = v;
        else if (key == "rooms_per_datacenter")
          c.rooms_per_datacenter = static_cast<std::uint32_t>(v);
        else if (key == "racks_per_room")
          c.racks_per_room = static_cast<std::uint32_t>(v);
        else if (key == "servers_per_rack")
          c.servers_per_rack = static_cast<std::uint32_t>(v);
        else if (key == "partitions") c.partitions = static_cast<std::uint32_t>(v);
        else c.epochs = static_cast<Epoch>(v);
      }
    } else if (key == "zipf" || key == "alpha" || key == "beta" ||
               key == "gamma" || key == "delta" || key == "mu" ||
               key == "phi" || key == "failure_rate" ||
               key == "min_availability") {
      err = want_plain("number");
      double v = 0.0;
      if (err.empty() && !parse_double_field(raw, v)) {
        err = "field '" + key + "' expects a number, got '" + raw + "'";
      }
      if (err.empty()) {
        if (key == "zipf") c.zipf = v;
        else if (key == "alpha") c.alpha = v;
        else if (key == "beta") c.beta = v;
        else if (key == "gamma") c.gamma = v;
        else if (key == "delta") c.delta = v;
        else if (key == "mu") c.mu = v;
        else if (key == "phi") c.phi = v;
        else if (key == "failure_rate") c.failure_rate = v;
        else c.min_availability = v;
      }
    } else if (key == "alpha_weights_history") {
      if (quoted || (raw != "true" && raw != "false")) {
        err = "field 'alpha_weights_history' expects true or false";
      } else {
        c.alpha_weights_history = raw == "true";
      }
    } else if (key == "workload") {
      if (!quoted) {
        err = "field 'workload' expects a string";
      } else if (raw == "uniform") {
        c.workload = WorkloadKind::kUniform;
      } else if (raw == "flash") {
        c.workload = WorkloadKind::kFlashCrowd;
      } else if (raw == "hotspot") {
        c.workload = WorkloadKind::kHotspotShift;
      } else if (raw == "stream") {
        c.workload = WorkloadKind::kStream;
      } else {
        err = "unknown workload '" + raw + "'";
      }
    } else if (key == "redundancy") {
      if (!quoted) {
        err = "field 'redundancy' expects a string";
      } else {
        SimConfig spec;
        if (!parse_redundancy(raw, spec, err)) {
          // err already set: an unsupported mode is a hard parse error,
          // never a silent fall-back to replica.
        } else {
          c.redundancy = spec.redundancy;
          c.ec_k = spec.ec_k;
          c.ec_m = spec.ec_m;
        }
      }
    } else if (key == "fault_plan") {
      if (!quoted) {
        err = "field 'fault_plan' expects a string";
      } else if (!raw.empty()) {
        FaultPlan::ParseResult plan = FaultPlan::parse(raw);
        if (!plan.ok) {
          err = "fault_plan: " + plan.error;
        } else {
          c.fault_plan = std::move(plan.plan);
        }
      }
    } else {
      err = "unknown field '" + key + "'";
    }
    if (!err.empty()) return fail(std::move(err));
  }

  // Sanity floors: a zero-sized world or run is never a meaningful case.
  if (c.partitions == 0) return fail("field 'partitions' must be positive");
  if (c.epochs == 0) return fail("field 'epochs' must be positive");
  if (c.rooms_per_datacenter == 0 || c.racks_per_room == 0 ||
      c.servers_per_rack == 0) {
    return fail("world shape fields must be positive");
  }
  if (!(c.alpha > 0.0 && c.alpha < 1.0)) {
    return fail("field 'alpha' must be in (0, 1)");
  }
  if (!(c.phi > 0.0 && c.phi <= 1.0)) {
    return fail("field 'phi' must be in (0, 1]");
  }

  result.ok = true;
  return result;
}

CheckCase::ParseResult CheckCase::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ParseResult result;
    result.error = "cannot open '" + path + "'";
    return result;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_json(buffer.str());
}

bool CheckCase::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << to_json();
  return static_cast<bool>(out);
}

}  // namespace rfh
