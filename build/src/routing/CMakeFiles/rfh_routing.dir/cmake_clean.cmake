file(REMOVE_RECURSE
  "CMakeFiles/rfh_routing.dir/router.cpp.o"
  "CMakeFiles/rfh_routing.dir/router.cpp.o.d"
  "librfh_routing.a"
  "librfh_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfh_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
