# Empty dependencies file for rfh_metrics.
# This may be replaced when dependencies are built.
